#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "ml/cross_validation.h"

namespace kgpip::ml {
namespace {

Table EasyTable(uint64_t seed) {
  DatasetSpec spec;
  spec.name = "cv";
  spec.family = ConceptFamily::kLinear;
  spec.rows = 240;
  spec.label_noise = 0.02;
  spec.seed = seed;
  return GenerateDataset(spec);
}

TEST(CrossValidationTest, FoldsScoreConsistentlyOnEasyData) {
  PipelineSpec spec;
  spec.learner = "logistic_regression";
  auto result = CrossValidate(spec, EasyTable(3),
                              TaskType::kBinaryClassification, 4, 7);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->fold_scores.size(), 4u);
  EXPECT_GT(result->mean, 0.85);
  EXPECT_LT(result->stddev, 0.12);
  for (double s : result->fold_scores) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(CrossValidationTest, DeterministicForSameSeed) {
  PipelineSpec spec;
  spec.learner = "decision_tree";
  auto a = CrossValidate(spec, EasyTable(5),
                         TaskType::kBinaryClassification, 3, 11);
  auto b = CrossValidate(spec, EasyTable(5),
                         TaskType::kBinaryClassification, 3, 11);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->fold_scores.size(), b->fold_scores.size());
  for (size_t i = 0; i < a->fold_scores.size(); ++i) {
    EXPECT_DOUBLE_EQ(a->fold_scores[i], b->fold_scores[i]);
  }
}

TEST(CrossValidationTest, RejectsDegenerateRequests) {
  PipelineSpec spec;
  spec.learner = "knn";
  EXPECT_FALSE(CrossValidate(spec, EasyTable(1),
                             TaskType::kBinaryClassification, 1, 1)
                   .ok());
  DatasetSpec tiny;
  tiny.name = "tiny";
  tiny.rows = 6;
  EXPECT_FALSE(CrossValidate(spec, GenerateDataset(tiny),
                             TaskType::kBinaryClassification, 5, 1)
                   .ok());
}

TEST(CrossValidationTest, RegressionTaskUsesR2) {
  PipelineSpec spec;
  spec.learner = "ridge";
  DatasetSpec data_spec;
  data_spec.name = "cv_reg";
  data_spec.family = ConceptFamily::kLinear;
  data_spec.task = TaskType::kRegression;
  data_spec.rows = 240;
  data_spec.label_noise = 0.02;
  auto result = CrossValidate(spec, GenerateDataset(data_spec),
                              TaskType::kRegression, 3, 5);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->mean, 0.8);
}

}  // namespace
}  // namespace kgpip::ml
