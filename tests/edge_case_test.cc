// Failure-injection and edge-case coverage: empty/degenerate inputs,
// budget exhaustion, artifact corruption, schema drift.
#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "core/kgpip.h"
#include "data/benchmark_registry.h"
#include "data/csv.h"
#include "data/type_inference.h"
#include "hpo/optimizer.h"
#include "ml/featurizer.h"
#include "ml/learner.h"

namespace kgpip {
namespace {

TEST(EdgeCaseTest, EmptyCsvAndHeaderOnly) {
  EXPECT_FALSE(ReadCsvText("", CsvOptions{}).ok());
  auto header_only = ReadCsvText("a,b,c\n", CsvOptions{});
  ASSERT_TRUE(header_only.ok());
  EXPECT_EQ(header_only->num_rows(), 0u);
  EXPECT_EQ(header_only->num_columns(), 3u);
}

TEST(EdgeCaseTest, HeaderlessCsvGetsSyntheticNames) {
  CsvOptions options;
  options.has_header = false;
  auto table = ReadCsvText("1,2\n3,4\n", options);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->column(0).name(), "col_0");
  EXPECT_EQ(table->num_rows(), 2u);
}

TEST(EdgeCaseTest, AllMissingColumnSurvivesInference) {
  Table t("allmiss");
  ASSERT_TRUE(
      t.AddColumn(Column::Categorical("gone", {"", "", ""})).ok());
  ASSERT_TRUE(
      t.AddColumn(Column::Categorical("y", {"a", "b", "a"})).ok());
  t.set_target_name("y");
  ASSERT_TRUE(InferColumnTypes(&t).ok());
  ml::Featurizer featurizer;
  ASSERT_TRUE(featurizer.Fit(t, TaskType::kBinaryClassification).ok());
  auto data = featurizer.Transform(t);
  ASSERT_TRUE(data.ok());
  for (double v : data->x.values) EXPECT_FALSE(std::isnan(v));
}

TEST(EdgeCaseTest, SingleClassTargetRejected) {
  Table t("oneclass");
  ASSERT_TRUE(t.AddColumn(Column::Numeric("x", {1, 2, 3, 4})).ok());
  ASSERT_TRUE(t.AddColumn(
      Column::Categorical("y", {"a", "a", "a", "a"})).ok());
  t.set_target_name("y");
  ml::Featurizer featurizer;
  EXPECT_FALSE(featurizer.Fit(t, TaskType::kBinaryClassification).ok());
}

TEST(EdgeCaseTest, MissingTargetColumn) {
  Table t("notarget");
  ASSERT_TRUE(t.AddColumn(Column::Numeric("x", {1, 2, 3})).ok());
  EXPECT_FALSE(t.TargetColumn().ok());
  t.set_target_name("nope");
  EXPECT_FALSE(t.TargetColumn().ok());
}

TEST(EdgeCaseTest, LearnerOnEmptyData) {
  ml::LabeledData empty;
  empty.task = TaskType::kBinaryClassification;
  empty.num_classes = 2;
  auto learner = ml::CreateLearner(
      "xgboost", TaskType::kBinaryClassification, {}, 1);
  ASSERT_TRUE(learner.ok());
  EXPECT_FALSE((*learner)->Fit(empty).ok());
}

TEST(EdgeCaseTest, BudgetZeroTrialsYieldsNoCandidates) {
  DatasetSpec spec;
  spec.name = "zero_budget";
  spec.rows = 120;
  Table table = GenerateDataset(spec);
  auto evaluator = hpo::TrialEvaluator::Create(
      table, TaskType::kBinaryClassification, 0.25, 1);
  ASSERT_TRUE(evaluator.ok());
  ml::PipelineSpec skeleton;
  skeleton.learner = "decision_tree";
  auto optimizer = hpo::CreateOptimizer("flaml");
  hpo::Budget budget(0, 1e9);
  hpo::TrialGuard guard(&*evaluator, hpo::TrialGuardOptions{});
  auto result =
      (*optimizer)->OptimizeSkeleton(skeleton, &guard, &budget, 1);
  EXPECT_EQ(result.trials, 0);
}

TEST(EdgeCaseTest, DeadlineExpiryStopsOptimization) {
  DatasetSpec spec;
  spec.name = "deadline";
  spec.rows = 150;
  Table table = GenerateDataset(spec);
  auto evaluator = hpo::TrialEvaluator::Create(
      table, TaskType::kBinaryClassification, 0.25, 1);
  ASSERT_TRUE(evaluator.ok());
  ml::PipelineSpec skeleton;
  skeleton.learner = "xgboost";
  auto optimizer = hpo::CreateOptimizer("flaml");
  // Already-expired wall clock: at most the first consume may slip in.
  hpo::Budget budget(1000, 1e-9);
  hpo::TrialGuard guard(&*evaluator, hpo::TrialGuardOptions{});
  auto result =
      (*optimizer)->OptimizeSkeleton(skeleton, &guard, &budget, 1);
  EXPECT_LE(result.trials, 1);
}

TEST(EdgeCaseTest, KgpipArtifactFileRoundTripAndCorruption) {
  BenchmarkRegistry registry;
  auto specs = registry.TrainingSpecs();
  specs.resize(6);
  core::KgpipConfig config;
  config.generator_epochs = 4;
  core::Kgpip kgpip(config);
  codegraph::CorpusOptions corpus;
  corpus.pipelines_per_dataset = 4;
  corpus.noise_scripts_per_dataset = 1;
  ASSERT_TRUE(kgpip.Train(specs, corpus, 3).ok());

  const std::string path = "/tmp/kgpip_artifacts_test.json";
  ASSERT_TRUE(kgpip.SaveFile(path).ok());
  core::Kgpip reloaded(config);
  ASSERT_TRUE(reloaded.LoadFile(path).ok());
  EXPECT_TRUE(reloaded.trained());
  EXPECT_EQ(reloaded.store().NumPipelines(), kgpip.store().NumPipelines());

  // Corrupted artifact file fails cleanly.
  {
    std::ofstream out(path, std::ios::binary);
    out << "{\"store\": 42";
  }
  core::Kgpip broken(config);
  EXPECT_FALSE(broken.LoadFile(path).ok());
  EXPECT_FALSE(broken.trained());
  // Missing file fails cleanly.
  core::Kgpip missing(config);
  EXPECT_FALSE(missing.LoadFile("/tmp/definitely_not_here.json").ok());
  // Untrained save fails cleanly.
  core::Kgpip fresh(config);
  EXPECT_FALSE(fresh.SaveFile(path).ok());
  std::remove(path.c_str());
}

TEST(EdgeCaseTest, FeaturizerHandlesSchemaDrift) {
  // A test table missing one training column and having one extra column:
  // the missing column encodes as zeros/impute, the extra is ignored.
  DatasetSpec spec;
  spec.name = "drift";
  spec.rows = 60;
  spec.num_numeric = 3;
  Table train = GenerateDataset(spec);
  ml::Featurizer featurizer;
  ASSERT_TRUE(featurizer.Fit(train, spec.task).ok());

  Table drifted(train.name());
  drifted.set_target_name(train.target_name());
  for (size_t c = 1; c < train.num_columns(); ++c) {  // drop column 0
    ASSERT_TRUE(drifted.AddColumn(train.column(c)).ok());
  }
  std::vector<double> extra(train.num_rows(), 1.0);
  ASSERT_TRUE(drifted.AddColumn(Column::Numeric("surprise", extra)).ok());
  auto encoded = featurizer.TransformFeatures(drifted);
  ASSERT_TRUE(encoded.ok());
  EXPECT_EQ(encoded->cols, featurizer.output_dims());
}

TEST(EdgeCaseTest, TinyDatasetsStillFit) {
  // 12 rows, 2 features: every learner must either fit or fail cleanly.
  DatasetSpec spec;
  spec.name = "tiny";
  spec.rows = 12;
  spec.num_numeric = 2;
  spec.num_categorical = 0;
  spec.missing_fraction = 0.0;
  Table table = GenerateDataset(spec);
  ml::Featurizer featurizer;
  ASSERT_TRUE(featurizer.Fit(table, spec.task).ok());
  auto data = featurizer.Transform(table);
  ASSERT_TRUE(data.ok());
  for (const auto& info : ml::LearnerRegistry()) {
    if (!info.supports_classification) continue;
    auto learner = ml::CreateLearner(
        info.name, TaskType::kBinaryClassification, {}, 1);
    ASSERT_TRUE(learner.ok());
    Status fitted = (*learner)->Fit(*data);
    if (!fitted.ok()) continue;  // clean failure is acceptable
    auto pred = (*learner)->Predict(data->x);
    EXPECT_EQ(pred.size(), data->rows()) << info.name;
  }
}

}  // namespace
}  // namespace kgpip
