#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "nn/autograd.h"
#include "nn/layers.h"
#include "util/logging.h"

namespace kgpip::nn {
namespace {

TEST(MatrixTest, MatMulKnownValues) {
  Matrix a(2, 3);
  Matrix b(3, 2);
  int v = 1;
  for (size_t i = 0; i < 2; ++i) {
    for (size_t j = 0; j < 3; ++j) a(i, j) = v++;
  }
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 2; ++j) b(i, j) = v++;
  }
  Matrix c = Matrix::MatMul(a, b);
  // a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12]
  EXPECT_DOUBLE_EQ(c(0, 0), 1 * 7 + 2 * 9 + 3 * 11);
  EXPECT_DOUBLE_EQ(c(1, 1), 4 * 8 + 5 * 10 + 6 * 12);
  // Transposed variants agree with explicit transposes.
  Matrix at_b = Matrix::TransposeMatMul(a, a);
  Matrix expected = Matrix::MatMul(a.Transposed(), a);
  for (size_t i = 0; i < at_b.rows(); ++i) {
    for (size_t j = 0; j < at_b.cols(); ++j) {
      EXPECT_NEAR(at_b(i, j), expected(i, j), 1e-12);
    }
  }
}

/// Central-difference gradient check: builds `loss(fn)` twice with a
/// nudged parameter and compares against the autograd gradient.
void CheckGradients(Var param, const std::function<Var()>& loss_fn,
                    double tol = 1e-5) {
  Var loss = loss_fn();
  Backward(loss);
  Matrix analytic = param.grad();
  const double eps = 1e-5;
  for (size_t i = 0; i < param.value().size(); ++i) {
    double saved = param.mutable_value().data()[i];
    param.mutable_value().data()[i] = saved + eps;
    double up = loss_fn().value()(0, 0);
    param.mutable_value().data()[i] = saved - eps;
    double down = loss_fn().value()(0, 0);
    param.mutable_value().data()[i] = saved;
    double numeric = (up - down) / (2.0 * eps);
    ASSERT_NEAR(analytic.data()[i], numeric, tol)
        << "param element " << i;
  }
}

TEST(AutogradTest, MatMulSigmoidChainGradients) {
  Rng rng(3);
  Var w(Matrix::Randn(4, 3, &rng), /*requires_grad=*/true);
  Var x(Matrix::Randn(2, 4, &rng));
  auto loss_fn = [&] { return MeanAll(Sigmoid(MatMul(x, w))); };
  w.ZeroGrad();
  CheckGradients(w, loss_fn);
}

TEST(AutogradTest, GruCellGradients) {
  Rng rng(5);
  ParamStore store;
  GruCell cell(&store, "gru", 3, 3, &rng);
  Var x(Matrix::Randn(2, 3, &rng));
  Var h(Matrix::Randn(2, 3, &rng));
  auto loss_fn = [&] { return MeanAll(cell.Forward(x, h)); };
  for (Var param : store.params()) {
    store.ZeroGrads();
    CheckGradients(param, loss_fn, 1e-4);
  }
}

TEST(AutogradTest, SoftmaxCrossEntropyGradients) {
  Var logits(Matrix(3, 4), true);
  for (size_t i = 0; i < logits.value().size(); ++i) {
    logits.mutable_value().data()[i] = 0.1 * static_cast<double>(i) - 0.5;
  }
  std::vector<int> targets = {1, 3, 0};
  auto loss_fn = [&] { return SoftmaxCrossEntropy(logits, targets); };
  logits.ZeroGrad();
  CheckGradients(logits, loss_fn);
}

TEST(AutogradTest, GatherScatterConcatGradients) {
  Rng rng(9);
  Var a(Matrix::Randn(4, 3, &rng), true);
  std::vector<size_t> idx = {2, 0, 2};
  auto loss_fn = [&] {
    Var gathered = GatherRows(a, idx);
    Var scattered = ScatterAddRows(gathered, {0, 1, 1}, 2);
    Var combined = ConcatCols(scattered, Scale(scattered, 0.5));
    return MeanAll(Tanh(combined));
  };
  a.ZeroGrad();
  CheckGradients(a, loss_fn);
}

TEST(AutogradTest, BceWithLogitsMatchesClosedForm) {
  Var logit(Matrix(1, 1), true);
  logit.mutable_value()(0, 0) = 0.7;
  Var loss = BinaryCrossEntropyWithLogits(logit, 1.0);
  double p = 1.0 / (1.0 + std::exp(-0.7));
  EXPECT_NEAR(loss.value()(0, 0), -std::log(p), 1e-12);
  logit.ZeroGrad();
  Backward(loss);
  EXPECT_NEAR(logit.grad()(0, 0), p - 1.0, 1e-12);
}

TEST(AutogradTest, DeepChainBackwardDoesNotOverflowStack) {
  Var x(Matrix(1, 1), true);
  x.mutable_value()(0, 0) = 0.01;
  Var y = x;
  for (int i = 0; i < 20000; ++i) y = Scale(y, 1.0);
  Var loss = MeanAll(y);
  Backward(loss);  // must not crash
  EXPECT_NEAR(x.grad()(0, 0), 1.0, 1e-12);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  ParamStore store;
  Rng rng(1);
  Var w = store.Create("w", 1, 4, &rng);
  Adam adam(&store, 0.05);
  Matrix target(1, 4);
  for (size_t i = 0; i < 4; ++i) target(0, i) = static_cast<double>(i);
  for (int step = 0; step < 400; ++step) {
    Var diff = Sub(w, Var(target));
    Var loss = MeanAll(Mul(diff, diff));
    Backward(loss);
    adam.Step();
  }
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(w.value()(0, i), target(0, i), 1e-2);
  }
}

TEST(ParamStoreTest, JsonRoundTrip) {
  ParamStore store;
  Rng rng(2);
  Var a = store.Create("a", 2, 3, &rng);
  Var b = store.Create("b", 1, 5, &rng);
  Json json = store.ToJson();

  ParamStore other;
  Rng rng2(99);
  Var a2 = other.Create("a", 2, 3, &rng2);
  Var b2 = other.Create("b", 1, 5, &rng2);
  ASSERT_TRUE(other.FromJson(json).ok());
  for (size_t i = 0; i < a.value().size(); ++i) {
    EXPECT_DOUBLE_EQ(a2.value().data()[i], a.value().data()[i]);
  }
  for (size_t i = 0; i < b.value().size(); ++i) {
    EXPECT_DOUBLE_EQ(b2.value().data()[i], b.value().data()[i]);
  }
  // Shape mismatch rejected.
  ParamStore wrong;
  Rng rng3(1);
  wrong.Create("a", 3, 2, &rng3);
  EXPECT_FALSE(wrong.FromJson(json).ok());
}

}  // namespace
}  // namespace kgpip::nn
