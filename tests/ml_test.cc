#include <cmath>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "util/logging.h"
#include "ml/featurizer.h"
#include "ml/learner.h"
#include "ml/metrics.h"
#include "ml/pipeline.h"
#include "ml/preprocess.h"

namespace kgpip::ml {
namespace {

TEST(MetricsTest, MacroF1PerfectAndWorst) {
  std::vector<double> truth = {0, 0, 1, 1, 2, 2};
  EXPECT_DOUBLE_EQ(MacroF1(truth, truth, 3), 1.0);
  std::vector<double> wrong = {1, 1, 2, 2, 0, 0};
  EXPECT_DOUBLE_EQ(MacroF1(truth, wrong, 3), 0.0);
}

TEST(MetricsTest, MacroF1IgnoresAbsentClasses) {
  // Class 2 never appears in truth; macro averages over classes 0 and 1.
  std::vector<double> truth = {0, 0, 1, 1};
  std::vector<double> pred = {0, 0, 1, 2};
  double f1_0 = 1.0;                 // perfect on class 0
  double f1_1 = 2.0 * 1 / (2 + 1);   // tp=1, fn=1
  EXPECT_NEAR(MacroF1(truth, pred, 3), (f1_0 + f1_1) / 2.0, 1e-12);
}

TEST(MetricsTest, R2KnownValue) {
  std::vector<double> truth = {1, 2, 3, 4};
  std::vector<double> mean_pred(4, 2.5);
  EXPECT_NEAR(R2Score(truth, mean_pred), 0.0, 1e-12);
  EXPECT_NEAR(R2Score(truth, truth), 1.0, 1e-12);
}

/// Shared fixture data: featurized synthetic datasets per family.
LabeledData MakeData(ConceptFamily family, TaskType task, int rows = 400,
                     uint64_t seed = 5) {
  DatasetSpec spec;
  spec.name = "fixture";
  spec.family = family;
  spec.task = task;
  spec.rows = rows;
  spec.num_numeric = 8;
  spec.num_categorical = 2;
  spec.num_classes = task == TaskType::kBinaryClassification ? 2 : 4;
  spec.label_noise = 0.02;
  spec.seed = seed;
  Table table = GenerateDataset(spec);
  Featurizer featurizer;
  KGPIP_CHECK(featurizer.Fit(table, task).ok());
  auto data = featurizer.Transform(table);
  KGPIP_CHECK(data.ok());
  return *data;
}

/// Train/test split of LabeledData by row index parity.
void SplitData(const LabeledData& all, LabeledData* train,
               LabeledData* test) {
  *train = LabeledData{};
  *test = LabeledData{};
  train->task = test->task = all.task;
  train->num_classes = test->num_classes = all.num_classes;
  train->class_names = test->class_names = all.class_names;
  size_t n_test = all.rows() / 4;
  size_t n_train = all.rows() - n_test;
  train->x = FeatureMatrix(n_train, all.x.cols);
  test->x = FeatureMatrix(n_test, all.x.cols);
  size_t tr = 0, te = 0;
  for (size_t r = 0; r < all.rows(); ++r) {
    if (r % 4 == 3) {
      for (size_t c = 0; c < all.x.cols; ++c) {
        test->x.At(te, c) = all.x.At(r, c);
      }
      test->y.push_back(all.y[r]);
      ++te;
    } else {
      for (size_t c = 0; c < all.x.cols; ++c) {
        train->x.At(tr, c) = all.x.At(r, c);
      }
      train->y.push_back(all.y[r]);
      ++tr;
    }
  }
}

double FitAndScore(const std::string& learner_name, ConceptFamily family,
                   TaskType task) {
  LabeledData all = MakeData(family, task);
  LabeledData train, test;
  SplitData(all, &train, &test);
  auto learner = CreateLearner(learner_name, task, HyperParams{}, 7);
  KGPIP_CHECK(learner.ok()) << learner.status().ToString();
  KGPIP_CHECK((*learner)->Fit(train).ok());
  auto pred = (*learner)->Predict(test.x);
  if (IsClassification(task)) {
    return MacroF1(test.y, pred, all.num_classes);
  }
  return R2Score(test.y, pred);
}

struct LearnerCase {
  const char* name;
  ConceptFamily family;
  TaskType task;
  double min_score;
};

class LearnerQualityTest : public ::testing::TestWithParam<LearnerCase> {};

TEST_P(LearnerQualityTest, BeatsThresholdOnAffineFamily) {
  const LearnerCase& c = GetParam();
  double score = FitAndScore(c.name, c.family, c.task);
  EXPECT_GE(score, c.min_score)
      << c.name << " on " << ConceptFamilyName(c.family);
}

INSTANTIATE_TEST_SUITE_P(
    AllLearners, LearnerQualityTest,
    ::testing::Values(
        LearnerCase{"logistic_regression", ConceptFamily::kLinear,
                    TaskType::kBinaryClassification, 0.85},
        LearnerCase{"linear_svm", ConceptFamily::kLinear,
                    TaskType::kBinaryClassification, 0.85},
        LearnerCase{"sgd", ConceptFamily::kLinear,
                    TaskType::kBinaryClassification, 0.85},
        LearnerCase{"gaussian_nb", ConceptFamily::kClusters,
                    TaskType::kBinaryClassification, 0.8},
        LearnerCase{"knn", ConceptFamily::kClusters,
                    TaskType::kBinaryClassification, 0.8},
        LearnerCase{"decision_tree", ConceptFamily::kRules,
                    TaskType::kBinaryClassification, 0.8},
        LearnerCase{"random_forest", ConceptFamily::kRules,
                    TaskType::kBinaryClassification, 0.85},
        LearnerCase{"extra_trees", ConceptFamily::kRules,
                    TaskType::kBinaryClassification, 0.8},
        LearnerCase{"gradient_boosting", ConceptFamily::kInteractions,
                    TaskType::kBinaryClassification, 0.65},
        LearnerCase{"xgboost", ConceptFamily::kInteractions,
                    TaskType::kBinaryClassification, 0.65},
        LearnerCase{"lgbm", ConceptFamily::kInteractions,
                    TaskType::kBinaryClassification, 0.65},
        LearnerCase{"linear_regression", ConceptFamily::kLinear,
                    TaskType::kRegression, 0.85},
        LearnerCase{"ridge", ConceptFamily::kLinear, TaskType::kRegression,
                    0.85},
        LearnerCase{"lasso", ConceptFamily::kSparse, TaskType::kRegression,
                    0.8},
        LearnerCase{"xgboost", ConceptFamily::kRules, TaskType::kRegression,
                    0.75},
        LearnerCase{"knn", ConceptFamily::kClusters, TaskType::kRegression,
                    0.3}),
    [](const ::testing::TestParamInfo<LearnerCase>& info) {
      return std::string(info.param.name) + "_" +
             ConceptFamilyName(info.param.family) + "_" +
             (info.param.task == TaskType::kRegression ? "reg" : "cls");
    });

TEST(LearnerAffinityTest, LinearBeatsTreesOnLinearFamily) {
  double linear = FitAndScore("logistic_regression", ConceptFamily::kLinear,
                              TaskType::kBinaryClassification);
  double tree = FitAndScore("decision_tree", ConceptFamily::kLinear,
                            TaskType::kBinaryClassification);
  EXPECT_GT(linear, tree - 0.02);
}

TEST(LearnerAffinityTest, BoostingBeatsLinearOnInteractions) {
  double boost = FitAndScore("xgboost", ConceptFamily::kInteractions,
                             TaskType::kBinaryClassification);
  double linear = FitAndScore("logistic_regression",
                              ConceptFamily::kInteractions,
                              TaskType::kBinaryClassification);
  EXPECT_GT(boost, linear + 0.1);
}

TEST(LearnerRegistryTest, NamesAndTaskSupport) {
  EXPECT_TRUE(LearnerSupports("xgboost", TaskType::kBinaryClassification));
  EXPECT_TRUE(LearnerSupports("xgboost", TaskType::kRegression));
  EXPECT_FALSE(LearnerSupports("logistic_regression",
                               TaskType::kRegression));
  EXPECT_FALSE(LearnerSupports("ridge", TaskType::kBinaryClassification));
  EXPECT_FALSE(LearnerSupports("no_such_learner",
                               TaskType::kBinaryClassification));
  EXPECT_FALSE(
      CreateLearner("ridge", TaskType::kBinaryClassification, {}, 1).ok());
}

TEST(TransformerTest, StandardScalerZeroMeanUnitVar) {
  LabeledData data = MakeData(ConceptFamily::kLinear,
                              TaskType::kBinaryClassification, 200);
  auto scaler = CreateTransformer("standard_scaler", {}, 1);
  ASSERT_TRUE(scaler.ok());
  ASSERT_TRUE((*scaler)->Fit(data.x, &data.y).ok());
  FeatureMatrix out = (*scaler)->Transform(data.x);
  for (size_t c = 0; c < out.cols; ++c) {
    double mean = 0.0;
    for (size_t r = 0; r < out.rows; ++r) mean += out.At(r, c);
    mean /= static_cast<double>(out.rows);
    EXPECT_NEAR(mean, 0.0, 1e-9);
  }
}

TEST(TransformerTest, MinMaxScalerBounds) {
  LabeledData data = MakeData(ConceptFamily::kLinear,
                              TaskType::kBinaryClassification, 200);
  auto scaler = CreateTransformer("minmax_scaler", {}, 1);
  ASSERT_TRUE(scaler.ok());
  ASSERT_TRUE((*scaler)->Fit(data.x, &data.y).ok());
  FeatureMatrix out = (*scaler)->Transform(data.x);
  for (size_t i = 0; i < out.values.size(); ++i) {
    EXPECT_GE(out.values[i], -1e-12);
    EXPECT_LE(out.values[i], 1.0 + 1e-12);
  }
}

TEST(TransformerTest, SelectKBestReducesWidthAndKeepsSignal) {
  LabeledData data = MakeData(ConceptFamily::kSparse,
                              TaskType::kBinaryClassification, 300);
  HyperParams params;
  params.SetNum("k", 4);
  auto selector = CreateTransformer("select_k_best", params, 1);
  ASSERT_TRUE(selector.ok());
  ASSERT_TRUE((*selector)->Fit(data.x, &data.y).ok());
  FeatureMatrix out = (*selector)->Transform(data.x);
  EXPECT_EQ(out.cols, 4u);
  EXPECT_EQ(out.rows, data.rows());
}

TEST(TransformerTest, SelectKBestRequiresTargets) {
  LabeledData data = MakeData(ConceptFamily::kLinear,
                              TaskType::kBinaryClassification, 100);
  auto selector = CreateTransformer("select_k_best", {}, 1);
  ASSERT_TRUE(selector.ok());
  EXPECT_FALSE((*selector)->Fit(data.x, nullptr).ok());
}

TEST(TransformerTest, PcaProducesRequestedComponents) {
  LabeledData data = MakeData(ConceptFamily::kLinear,
                              TaskType::kBinaryClassification, 200);
  HyperParams params;
  params.SetNum("n_components", 3);
  auto pca = CreateTransformer("pca", params, 1);
  ASSERT_TRUE(pca.ok());
  ASSERT_TRUE((*pca)->Fit(data.x, nullptr).ok());
  FeatureMatrix out = (*pca)->Transform(data.x);
  EXPECT_EQ(out.cols, 3u);
}

TEST(FeaturizerTest, EncodesMixedColumns) {
  DatasetSpec spec;
  spec.name = "mixed";
  spec.rows = 150;
  spec.num_numeric = 3;
  spec.num_categorical = 2;
  spec.num_text = 1;
  spec.family = ConceptFamily::kText;
  spec.task = TaskType::kBinaryClassification;
  Table table = GenerateDataset(spec);
  Featurizer featurizer;
  ASSERT_TRUE(featurizer.Fit(table, spec.task).ok());
  auto data = featurizer.Transform(table);
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  EXPECT_EQ(data->rows(), 150u);
  EXPECT_GT(data->x.cols, 3u + 2u);  // one-hot + text expand the width
  EXPECT_EQ(data->num_classes, 2);
  // No NaNs after imputation.
  for (double v : data->x.values) EXPECT_FALSE(std::isnan(v));
}

TEST(FeaturizerTest, TransformUnseenTableWithSameSchema) {
  DatasetSpec spec;
  spec.name = "schema";
  spec.rows = 100;
  spec.seed = 11;
  Table train = GenerateDataset(spec);
  spec.seed = 12;
  Table test = GenerateDataset(spec);
  Featurizer featurizer;
  ASSERT_TRUE(featurizer.Fit(train, spec.task).ok());
  auto test_data = featurizer.Transform(test);
  ASSERT_TRUE(test_data.ok());
  EXPECT_EQ(test_data->x.cols, featurizer.output_dims());
}

TEST(PipelineTest, EndToEndOnTable) {
  DatasetSpec spec;
  spec.name = "e2e";
  spec.rows = 300;
  spec.family = ConceptFamily::kRules;
  spec.task = TaskType::kBinaryClassification;
  Table table = GenerateDataset(spec);
  auto split = SplitTable(table, 0.25, 3);

  PipelineSpec pspec;
  pspec.preprocessors = {"standard_scaler"};
  pspec.learner = "xgboost";
  auto pipeline = Pipeline::FitOnTable(pspec, split.train, spec.task, 1);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  auto score = pipeline->ScoreTable(split.test);
  ASSERT_TRUE(score.ok());
  EXPECT_GT(*score, 0.8);
}

TEST(PipelineTest, SpecToStringIsReadable) {
  PipelineSpec spec;
  spec.preprocessors = {"standard_scaler", "pca"};
  spec.learner = "lgbm";
  EXPECT_EQ(spec.ToString(), "standard_scaler -> pca -> lgbm");
}

TEST(PipelineTest, UnknownLearnerFails) {
  DatasetSpec spec;
  spec.name = "bad";
  spec.rows = 60;
  Table table = GenerateDataset(spec);
  PipelineSpec pspec;
  pspec.learner = "hal9000";
  EXPECT_FALSE(Pipeline::FitOnTable(pspec, table, spec.task, 1).ok());
}

}  // namespace
}  // namespace kgpip::ml
