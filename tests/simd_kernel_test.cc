// SIMD kernel equivalence suite: the dispatched AVX2/AVX-512 micro-
// kernels (nn/simd_kernels.h) must be BIT-identical to the scalar
// reference at every shape — including every masked-tail and partial-
// register-panel case — because the whole training/serving equivalence
// story (gen_equivalence_test.cc) rests on kernel output being a pure
// function of the math, not of the instruction set. Comparisons are
// memcmp over the raw doubles: "close" is a bug here.
//
// Levels the host cannot execute are skipped (the suite still proves
// scalar==AVX2 on an AVX2-only machine); KGPIP_ISA / ForceIsa dispatch
// plumbing is covered separately, and a final test pins the batched
// GenerateTopK decode to k independent Generate calls byte-for-byte.

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "gen/graph_generator.h"
#include "graph4ml/vocab.h"
#include "nn/fastmath.h"
#include "nn/simd_kernels.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace kgpip {
namespace {

using nn::simd::Isa;

std::vector<Isa> TestableSimdLevels() {
  std::vector<Isa> levels;
  if (nn::simd::IsaSupported(Isa::kAvx2)) levels.push_back(Isa::kAvx2);
  if (nn::simd::IsaSupported(Isa::kAvx512)) levels.push_back(Isa::kAvx512);
  return levels;
}

// Fills with a mix of normals, exact zeros (the GEMM zero-skip path),
// and negative zeros (which the skip must NOT normalize away on the
// SIMD side any differently than the scalar side).
std::vector<double> RandomBuffer(size_t n, Rng* rng) {
  std::vector<double> out(n);
  for (double& v : out) {
    const uint64_t roll = rng->UniformInt(uint64_t{10});
    if (roll == 0) {
      v = 0.0;
    } else if (roll == 1) {
      v = -0.0;
    } else {
      v = rng->Normal();
    }
  }
  return out;
}

void ExpectBitEqual(const std::vector<double>& ref,
                    const std::vector<double>& got, Isa isa,
                    const std::string& what) {
  ASSERT_EQ(ref.size(), got.size());
  if (std::memcmp(ref.data(), got.data(), ref.size() * sizeof(double)) ==
      0) {
    return;
  }
  for (size_t i = 0; i < ref.size(); ++i) {
    uint64_t rb = 0;
    uint64_t gb = 0;
    std::memcpy(&rb, &ref[i], sizeof(rb));
    std::memcpy(&gb, &got[i], sizeof(gb));
    ASSERT_EQ(rb, gb) << what << " diverges from scalar at element " << i
                      << " under " << nn::simd::IsaName(isa) << ": "
                      << ref[i] << " vs " << got[i];
  }
}

// Every M, N, K small enough to enumerate plus the first shapes on
// either side of the vector widths (4 for AVX2, 8 for AVX-512) and of
// the kernel's 2-vector column blocks — so full panels, lone-vector
// columns, masked tails, and single-row remainders all occur.
const size_t kShapeSweep[] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16, 17,
                              31, 32, 33, 64};

TEST(SimdKernelTest, GemmMatchesScalarBitwiseAcrossShapeSweep) {
  const std::vector<Isa> levels = TestableSimdLevels();
  if (levels.empty()) GTEST_SKIP() << "host has no SIMD kernel support";
  Rng rng(11);
  for (size_t m : kShapeSweep) {
    for (size_t n : kShapeSweep) {
      for (size_t k : kShapeSweep) {
        const std::vector<double> a = RandomBuffer(m * k, &rng);
        const std::vector<double> b = RandomBuffer(k * n, &rng);
        std::vector<double> ref(m * n, 0.0);
        nn::simd::GemmRows(Isa::kScalar, a.data(), b.data(), ref.data(), m,
                           k, n);
        for (Isa isa : levels) {
          std::vector<double> got(m * n, 0.0);
          nn::simd::GemmRows(isa, a.data(), b.data(), got.data(), m, k, n);
          ExpectBitEqual(ref, got, isa,
                         "gemm " + std::to_string(m) + "x" +
                             std::to_string(k) + "*" + std::to_string(n));
          if (HasFatalFailure()) return;
        }
      }
    }
  }
}

TEST(SimdKernelTest, BiasRowsMatchesScalarBitwise) {
  const std::vector<Isa> levels = TestableSimdLevels();
  if (levels.empty()) GTEST_SKIP() << "host has no SIMD kernel support";
  Rng rng(12);
  for (size_t rows : {size_t{1}, size_t{3}, size_t{8}}) {
    for (size_t cols : kShapeSweep) {
      const std::vector<double> base = RandomBuffer(rows * cols, &rng);
      const std::vector<double> bias = RandomBuffer(cols, &rng);
      std::vector<double> ref = base;
      nn::simd::BiasRows(Isa::kScalar, ref.data(), bias.data(), rows, cols);
      for (Isa isa : levels) {
        std::vector<double> got = base;
        nn::simd::BiasRows(isa, got.data(), bias.data(), rows, cols);
        ExpectBitEqual(ref, got, isa, "bias cols=" + std::to_string(cols));
        if (HasFatalFailure()) return;
      }
    }
  }
}

TEST(SimdKernelTest, Sq8DotAccumMatchesScalarBitwise) {
  // The SQ8 segment-scan kernel (IVF-SQ8 SimIndex) keeps one ascending-d
  // accumulation chain per score lane, so its output must be a pure
  // function of (codes, weights) — bit-identical at every ISA level.
  // Sweep dims x rows including every partial final panel; the stride is
  // the index's RoundUp8 padding with zero codes in the pad lanes.
  const std::vector<Isa> levels = TestableSimdLevels();
  if (levels.empty()) GTEST_SKIP() << "host has no SIMD kernel support";
  Rng rng(15);
  for (size_t dims : kShapeSweep) {
    for (size_t rows : kShapeSweep) {
      const size_t stride = (rows + 7) / 8 * 8;
      std::vector<uint8_t> codes(dims * stride, 0);
      for (size_t d = 0; d < dims; ++d) {
        for (size_t r = 0; r < rows; ++r) {
          codes[d * stride + r] =
              static_cast<uint8_t>(rng.UniformInt(uint64_t{256}));
        }
      }
      // Weights include exact zeros and negative zeros like every other
      // kernel input; scores start from nonzero values to exercise the
      // accumulate-in-place contract.
      const std::vector<double> w = RandomBuffer(dims, &rng);
      const std::vector<double> init = RandomBuffer(stride, &rng);
      std::vector<double> ref = init;
      nn::simd::Sq8DotAccum(Isa::kScalar, codes.data(), stride, w.data(),
                            dims, ref.data());
      for (Isa isa : levels) {
        std::vector<double> got = init;
        nn::simd::Sq8DotAccum(isa, codes.data(), stride, w.data(), dims,
                              got.data());
        ExpectBitEqual(ref, got, isa,
                       "sq8 dot dims=" + std::to_string(dims) +
                           " rows=" + std::to_string(rows));
        if (HasFatalFailure()) return;
      }
    }
  }
}

TEST(SimdKernelTest, ActivationKernelsMatchScalarBitwise) {
  const std::vector<Isa> levels = TestableSimdLevels();
  if (levels.empty()) GTEST_SKIP() << "host has no SIMD kernel support";
  Rng rng(13);
  for (size_t n : kShapeSweep) {
    // Values spanning the interesting activation regions: the FastExp
    // clamp boundaries, the tanh saturation clamp, zeros of both signs,
    // and ordinary magnitudes.
    std::vector<double> a = RandomBuffer(n, &rng);
    std::vector<double> b = RandomBuffer(n, &rng);
    const double specials[] = {708.5,  -708.5, 707.9, -707.9, 20.5,
                               -20.5,  19.9,   -19.9, 0.0,    -0.0,
                               1e-300, -1e-300};
    for (size_t i = 0; i < n; ++i) {
      if (rng.UniformInt(uint64_t{4}) == 0) {
        a[i] = specials[rng.UniformInt(
            uint64_t{sizeof(specials) / sizeof(specials[0])})];
      }
    }
    const std::vector<double> z = RandomBuffer(n, &rng);

    std::vector<double> ref = a;
    nn::simd::SigmoidN(Isa::kScalar, ref.data(), n);
    for (Isa isa : levels) {
      std::vector<double> got = a;
      nn::simd::SigmoidN(isa, got.data(), n);
      ExpectBitEqual(ref, got, isa, "sigmoid n=" + std::to_string(n));
    }

    ref = a;
    nn::simd::TanhN(Isa::kScalar, ref.data(), n);
    for (Isa isa : levels) {
      std::vector<double> got = a;
      nn::simd::TanhN(isa, got.data(), n);
      ExpectBitEqual(ref, got, isa, "tanh n=" + std::to_string(n));
    }

    std::vector<double> ref2(n);
    nn::simd::AddSigmoidN(Isa::kScalar, a.data(), b.data(), ref2.data(), n);
    for (Isa isa : levels) {
      std::vector<double> got(n);
      nn::simd::AddSigmoidN(isa, a.data(), b.data(), got.data(), n);
      ExpectBitEqual(ref2, got, isa, "add+sigmoid n=" + std::to_string(n));
    }

    nn::simd::AddTanhN(Isa::kScalar, a.data(), b.data(), ref2.data(), n);
    for (Isa isa : levels) {
      std::vector<double> got(n);
      nn::simd::AddTanhN(isa, a.data(), b.data(), got.data(), n);
      ExpectBitEqual(ref2, got, isa, "add+tanh n=" + std::to_string(n));
    }

    nn::simd::MulN(Isa::kScalar, a.data(), b.data(), ref2.data(), n);
    for (Isa isa : levels) {
      std::vector<double> got(n);
      nn::simd::MulN(isa, a.data(), b.data(), got.data(), n);
      ExpectBitEqual(ref2, got, isa, "mul n=" + std::to_string(n));
    }

    nn::simd::GruCombineN(Isa::kScalar, z.data(), a.data(), b.data(),
                          ref2.data(), n);
    for (Isa isa : levels) {
      std::vector<double> got(n);
      nn::simd::GruCombineN(isa, z.data(), a.data(), b.data(), got.data(),
                            n);
      ExpectBitEqual(ref2, got, isa, "gru combine n=" + std::to_string(n));
    }
    if (HasFatalFailure()) return;
  }
}

TEST(SimdKernelTest, ActivationsMatchFastmathReference) {
  // The vector activations must reproduce the *scalar inline* fastmath
  // functions (the tape path) — not merely each other.
  Rng rng(14);
  std::vector<double> x = RandomBuffer(97, &rng);
  x.insert(x.end(), {708.5, -708.5, 20.5, -20.5, 0.0, -0.0});
  for (Isa isa : TestableSimdLevels()) {
    std::vector<double> sig = x;
    nn::simd::SigmoidN(isa, sig.data(), sig.size());
    std::vector<double> th = x;
    nn::simd::TanhN(isa, th.data(), th.size());
    for (size_t i = 0; i < x.size(); ++i) {
      uint64_t got = 0;
      uint64_t want = 0;
      const double s = nn::FastSigmoid(x[i]);
      std::memcpy(&got, &sig[i], sizeof(got));
      std::memcpy(&want, &s, sizeof(want));
      ASSERT_EQ(got, want) << "sigmoid(" << x[i] << ") under "
                           << nn::simd::IsaName(isa);
      const double t = nn::FastTanh(x[i]);
      std::memcpy(&got, &th[i], sizeof(got));
      std::memcpy(&want, &t, sizeof(want));
      ASSERT_EQ(got, want) << "tanh(" << x[i] << ") under "
                           << nn::simd::IsaName(isa);
    }
  }
}

TEST(SimdKernelTest, KgpipIsaEnvOverridesDispatch) {
  // Remember the ambient state to restore (other suites in this process
  // would otherwise observe the override).
  const char* prior = std::getenv("KGPIP_ISA");
  const std::string saved = prior != nullptr ? prior : "";
  const Isa before = nn::simd::ActiveIsa();

  ASSERT_EQ(setenv("KGPIP_ISA", "scalar", 1), 0);
  EXPECT_EQ(nn::simd::RefreshIsaFromEnv(), Isa::kScalar);
  EXPECT_EQ(nn::simd::ActiveIsa(), Isa::kScalar);

  if (nn::simd::IsaSupported(Isa::kAvx2)) {
    ASSERT_EQ(setenv("KGPIP_ISA", "avx2", 1), 0);
    EXPECT_EQ(nn::simd::RefreshIsaFromEnv(), Isa::kAvx2);
  }
  // An unsupported or unknown request clamps to something the host can
  // run instead of crashing on an illegal instruction later.
  ASSERT_EQ(setenv("KGPIP_ISA", "avx9000", 1), 0);
  const Isa clamped = nn::simd::RefreshIsaFromEnv();
  EXPECT_TRUE(nn::simd::IsaSupported(clamped));

  ASSERT_EQ(setenv("KGPIP_ISA", "avx512", 1), 0);
  const Isa wide = nn::simd::RefreshIsaFromEnv();
  EXPECT_TRUE(nn::simd::IsaSupported(wide));
  if (nn::simd::IsaSupported(Isa::kAvx512)) {
    EXPECT_EQ(wide, Isa::kAvx512);
  }

  // ForceIsa applies the same clamp.
  EXPECT_EQ(nn::simd::ForceIsa(Isa::kScalar), Isa::kScalar);
  EXPECT_TRUE(nn::simd::IsaSupported(nn::simd::ForceIsa(Isa::kAvx512)));

  if (saved.empty()) {
    unsetenv("KGPIP_ISA");
    nn::simd::ForceIsa(before);
  } else {
    setenv("KGPIP_ISA", saved.c_str(), 1);
    nn::simd::RefreshIsaFromEnv();
  }
}

TEST(SimdKernelTest, BatchedTopKMatchesIndependentGenerates) {
  // The cross-lane batched decode must be invisible: GenerateTopK(k)
  // and k independent Generate calls on the same forked streams produce
  // byte-identical graphs and log-probs. This is the contract that lets
  // the shard boundaries (and therefore the thread count) vary freely.
  gen::GeneratorConfig config;
  config.vocab_size = graph4ml::PipelineVocab::Get().size();
  config.hidden = 24;
  config.prop_rounds = 2;
  config.max_nodes = 8;
  config.condition_dims = 2;
  gen::GraphGenerator generator(config, 7);

  graph4ml::TypedGraph seed;
  seed.node_types = {graph4ml::PipelineVocab::kDatasetType,
                     graph4ml::PipelineVocab::kReadCsvType};
  seed.edges = {{0, 1}};
  const std::vector<double> condition = {0.25, -1.5};

  for (double temperature : {0.9, 0.0}) {
    const size_t k = 9;
    Rng topk_rng(42);
    const std::vector<gen::GeneratedGraph> batched = generator.GenerateTopK(
        seed, condition, k, &topk_rng, temperature);
    ASSERT_EQ(batched.size(), k);

    Rng single_rng(42);
    std::vector<Rng> lanes = util::ForkRngs(&single_rng, k);
    for (size_t i = 0; i < k; ++i) {
      const gen::GeneratedGraph solo =
          generator.Generate(seed, condition, &lanes[i], temperature);
      EXPECT_EQ(batched[i].graph.node_types, solo.graph.node_types)
          << "lane " << i << " t=" << temperature;
      EXPECT_EQ(batched[i].graph.edges, solo.graph.edges)
          << "lane " << i << " t=" << temperature;
      uint64_t bb = 0;
      uint64_t sb = 0;
      std::memcpy(&bb, &batched[i].log_prob, sizeof(bb));
      std::memcpy(&sb, &solo.log_prob, sizeof(sb));
      EXPECT_EQ(bb, sb) << "lane " << i << " log-prob t=" << temperature;
    }
  }
}

}  // namespace
}  // namespace kgpip
