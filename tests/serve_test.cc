#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <future>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/kgpip.h"
#include "data/benchmark_registry.h"
#include "data/synthetic.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/cache.h"
#include "serve/server.h"
#include "serve/soak_harness.h"
#include "util/fault.h"
#include "util/mutex.h"
#include "util/string_util.h"

namespace kgpip::serve {
namespace {

Table MakeTable(uint64_t seed, int rows = 120) {
  DatasetSpec spec;
  spec.name = "serve_ds";
  spec.family = ConceptFamily::kLinear;
  spec.rows = rows;
  spec.num_numeric = 5;
  spec.seed = seed;
  return GenerateDataset(spec);
}

std::string TempDir(const char* tag) {
  std::string dir = std::filesystem::temp_directory_path() /
                    StrFormat("kgpip_serve_test_%s_%d", tag,
                              static_cast<int>(::getpid()));
  std::filesystem::remove_all(dir);
  return dir;
}

// ---------------------------------------------------------------------------
// TableDigest

TEST(TableDigestTest, IdenticalContentDigestsEqual) {
  EXPECT_EQ(TableDigest(MakeTable(5)), TableDigest(MakeTable(5)));
}

TEST(TableDigestTest, AnyContentChangeChangesTheDigest) {
  Table a = MakeTable(5);
  EXPECT_NE(TableDigest(a), TableDigest(MakeTable(6)));

  Table b = MakeTable(5);
  b.mutable_column(0).mutable_numeric_values()[0] += 1.0;
  EXPECT_NE(TableDigest(a), TableDigest(b));

  Table c = MakeTable(5);
  c.mutable_column(0).set_name("renamed");
  EXPECT_NE(TableDigest(a), TableDigest(c));

  Table d = MakeTable(5);
  d.mutable_column(0).SetMissing(0, true);
  EXPECT_NE(TableDigest(a), TableDigest(d));
}

// ---------------------------------------------------------------------------
// Spec serialization

TEST(SpecJsonTest, RoundTripsNumericAndStringParams) {
  ml::PipelineSpec spec;
  spec.preprocessors = {"standard_scaler", "pca"};
  spec.learner = "random_forest";
  spec.params.SetNum("n_estimators", 120);
  spec.params.SetNum("max_depth", 7);
  spec.params.SetStr("criterion", "gini");

  auto back = SpecFromJson(SpecToJson(spec));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->preprocessors, spec.preprocessors);
  EXPECT_EQ(back->learner, spec.learner);
  EXPECT_EQ(back->params.GetNum("n_estimators", 0), 120);
  EXPECT_EQ(back->params.GetStr("criterion", ""), "gini");
}

TEST(SpecJsonTest, RejectsSpecWithoutLearner) {
  EXPECT_EQ(SpecFromJson(Json::Object()).status().code(),
            StatusCode::kParseError);
}

// ---------------------------------------------------------------------------
// ArtifactCache

TEST(ArtifactCacheTest, MemoryTierRoundTrip) {
  ArtifactCache cache(ArtifactCache::Options{"", 4});
  Json value = Json::Object();
  value.Set("answer", 42);
  ASSERT_TRUE(cache.Put("k1", value).ok());
  auto got = cache.Get("k1");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->Get("answer").AsInt(), 42);
  EXPECT_EQ(cache.Get("absent").status().code(), StatusCode::kNotFound);
}

TEST(ArtifactCacheTest, MemoryTierEvictsLeastRecentlyUsed) {
  ArtifactCache cache(ArtifactCache::Options{"", 2});
  Json v = Json::Object();
  ASSERT_TRUE(cache.Put("a", v).ok());
  ASSERT_TRUE(cache.Put("b", v).ok());
  ASSERT_TRUE(cache.Get("a").ok());   // touch: b is now LRU
  ASSERT_TRUE(cache.Put("c", v).ok());  // evicts b
  EXPECT_TRUE(cache.Get("a").ok());
  EXPECT_TRUE(cache.Get("c").ok());
  EXPECT_EQ(cache.Get("b").status().code(), StatusCode::kNotFound);
}

TEST(ArtifactCacheTest, DiskTierSurvivesRestart) {
  const std::string dir = TempDir("restart");
  Json value = Json::Object();
  value.Set("score", 0.75);
  {
    ArtifactCache cache(ArtifactCache::Options{dir, 8});
    ASSERT_TRUE(cache.Put("model-x", value).ok());
  }
  // A fresh instance (cold memory tier) reads the entry back from disk.
  ArtifactCache reborn(ArtifactCache::Options{dir, 8});
  auto got = reborn.Get("model-x");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_DOUBLE_EQ(got->Get("score").AsDouble(), 0.75);
  std::filesystem::remove_all(dir);
}

TEST(ArtifactCacheTest, TruncatedEntryIsAParseErrorWithByteOffsets) {
  const std::string dir = TempDir("trunc");
  ArtifactCache cache(ArtifactCache::Options{dir, 8});
  Json value = Json::Object();
  value.Set("payload", std::string(256, 'x'));
  ASSERT_TRUE(cache.Put("victim", value).ok());
  const std::string path = cache.PathForKey("victim");

  // Truncate the file mid-payload.
  std::string contents;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    contents = buf.str();
  }
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << contents.substr(0, contents.size() / 2);
  }
  auto loaded = ArtifactCache::LoadEntryFile(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
  EXPECT_NE(loaded.status().message().find("byte offset"),
            std::string::npos)
      << loaded.status().message();
  std::filesystem::remove_all(dir);
}

TEST(ArtifactCacheTest, BitFlippedEntryIsEvictedAndRebuilt) {
  const std::string dir = TempDir("bitflip");
  ArtifactCache cache(ArtifactCache::Options{dir, 8});
  Json value = Json::Object();
  value.Set("score", 0.9);
  ASSERT_TRUE(cache.Put("victim", value).ok());
  const std::string path = cache.PathForKey("victim");

  // Flip a payload bit on disk.
  std::string contents;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    contents = buf.str();
  }
  contents[contents.size() - 3] ^= 0x10;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << contents;
  }

  // Checksum mismatch reports the damaged byte range...
  auto loaded = ArtifactCache::LoadEntryFile(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
  EXPECT_NE(loaded.status().message().find("checksum mismatch"),
            std::string::npos);

  // ...and a cold-cache Get never serves it: evicted, reported missing.
  ArtifactCache reborn(ArtifactCache::Options{dir, 8});
  EXPECT_EQ(reborn.Get("victim").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(reborn.stats().corrupt_evictions, 1);
  EXPECT_FALSE(std::filesystem::exists(path));

  // The rebuild (re-Put) heals the entry.
  ASSERT_TRUE(reborn.Put("victim", value).ok());
  auto healed = reborn.Get("victim");
  ASSERT_TRUE(healed.ok());
  EXPECT_DOUBLE_EQ(healed->Get("score").AsDouble(), 0.9);
  std::filesystem::remove_all(dir);
}

TEST(ArtifactCacheTest, InjectedCorruptionIsCaughtAtReadTime) {
  const std::string dir = TempDir("inject");
  ArtifactCache cache(ArtifactCache::Options{dir, 8});
  Json value = Json::Object();
  value.Set("blob", std::string(128, 'y'));
  {
    util::FaultConfig config;
    config.corrupt_byte_stride = 16;
    util::ScopedFaultInjection scope(config);
    cache.Put("victim", value);
    EXPECT_GT(scope.injector().counters().corrupted_bytes, 0);
  }
  // Memory tier still has the good copy; force the disk read.
  ArtifactCache reborn(ArtifactCache::Options{dir, 8});
  EXPECT_EQ(reborn.Get("victim").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(reborn.stats().corrupt_evictions, 1);
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Server (shares one trained model across all fixture tests)

class ServeFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    BenchmarkRegistry registry;
    auto specs = registry.TrainingSpecs();
    std::vector<DatasetSpec> chosen;
    for (const auto& spec : specs) {
      if (spec.task == TaskType::kRegression) continue;
      chosen.push_back(spec);
      if (chosen.size() >= 12) break;
    }
    core::KgpipConfig config;
    config.top_k = 3;
    config.generator_epochs = 10;
    model_ = new core::Kgpip(config);
    codegraph::CorpusOptions corpus;
    corpus.pipelines_per_dataset = 6;
    auto status = model_->Train(chosen, corpus, 11);
    ASSERT_TRUE(status.ok()) << status.ToString();
  }
  static void TearDownTestSuite() {
    delete model_;
    model_ = nullptr;
  }

  static ServeOptions FastOptions() {
    ServeOptions options;
    options.num_workers = 2;
    options.default_deadline_seconds = 20.0;
    options.grace_seconds = 2.0;
    options.max_trials = 4;
    return options;
  }

  static core::Kgpip* model_;
};

core::Kgpip* ServeFixture::model_ = nullptr;

TEST_F(ServeFixture, StartRequiresATrainedModel) {
  core::Kgpip untrained;
  Server server(&untrained, FastOptions());
  EXPECT_EQ(server.Start().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ServeFixture, ServesAFitRequest) {
  Server server(model_, FastOptions());
  ASSERT_TRUE(server.Start().ok());
  FitRequest request;
  request.table = MakeTable(21);
  request.max_trials = 4;
  ServeResponse response = server.Submit(std::move(request)).get();
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_FALSE(response.result.best_spec.learner.empty());
  EXPECT_FALSE(response.cache_hit);
  EXPECT_EQ(response.result.report.degradation_level, 0);
  server.Stop();
}

TEST_F(ServeFixture, RepeatedIdenticalFitIsACacheHitThatSkipsEmbedding) {
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  obs::Counter* cache_hits = metrics.GetCounter("serve.cache_hits");

  Server server(model_, FastOptions());
  ASSERT_TRUE(server.Start().ok());

  FitRequest first;
  first.table = MakeTable(33);
  ServeResponse cold = server.Submit(std::move(first)).get();
  ASSERT_TRUE(cold.status.ok()) << cold.status.ToString();
  ASSERT_FALSE(cold.cache_hit);

  const int64_t hits_before = cache_hits->value();
  obs::Tracer::Global().Clear();
  obs::Tracer::Global().Enable();
  FitRequest second;
  second.table = MakeTable(33);  // identical content -> identical digest
  ServeResponse warm = server.Submit(std::move(second)).get();
  obs::Tracer::Global().Disable();

  ASSERT_TRUE(warm.status.ok()) << warm.status.ToString();
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_TRUE(warm.result.report.cache_hit);
  EXPECT_EQ(cache_hits->value(), hits_before + 1);
  // Same answer as the cold path.
  EXPECT_EQ(warm.result.best_spec.learner, cold.result.best_spec.learner);

  // The embedding + SimIndex head must not have run: no embed.* span.
  for (const auto& span : obs::Tracer::Global().Snapshot()) {
    EXPECT_FALSE(StartsWith(span.name, "embed."))
        << "cache hit still ran " << span.name;
  }
  obs::Tracer::Global().Clear();
  server.Stop();
}

TEST_F(ServeFixture, QueueFullShedsWithResourceExhausted) {
  ServeOptions options = FastOptions();
  options.max_queue_depth = 0;  // everything sheds at the door
  Server server(model_, options);
  ASSERT_TRUE(server.Start().ok());
  FitRequest request;
  request.table = MakeTable(44);
  ServeResponse response = server.Submit(std::move(request)).get();
  EXPECT_EQ(response.status.code(), StatusCode::kResourceExhausted);
  server.Stop();
}

TEST_F(ServeFixture, TokenBucketLimitsPerTenantAdmissions) {
  ServeOptions options = FastOptions();
  options.tenant_tokens_per_second = 0.001;  // effectively no refill
  options.tenant_burst_tokens = 2.0;
  Server server(model_, options);
  ASSERT_TRUE(server.Start().ok());
  std::vector<std::future<ServeResponse>> futures;
  for (int i = 0; i < 4; ++i) {
    FitRequest request;
    request.tenant = "greedy";
    request.table = MakeTable(33);  // cached from earlier fixture tests
    futures.push_back(server.Submit(std::move(request)));
  }
  int shed = 0;
  for (auto& future : futures) {
    ServeResponse response = future.get();
    if (response.status.code() == StatusCode::kResourceExhausted) ++shed;
  }
  EXPECT_EQ(shed, 2) << "burst of 2 admits exactly 2 of 4";
  server.Stop();
}

TEST_F(ServeFixture, DrainRefusesNewWorkAndFinishesQueuedWork) {
  Server server(model_, FastOptions());
  ASSERT_TRUE(server.Start().ok());
  FitRequest queued;
  queued.table = MakeTable(55);
  std::future<ServeResponse> inflight = server.Submit(std::move(queued));

  server.BeginDrain();
  FitRequest refused_request;
  refused_request.table = MakeTable(56);
  ServeResponse refused = server.Submit(std::move(refused_request)).get();
  EXPECT_EQ(refused.status.code(), StatusCode::kFailedPrecondition);

  // The request admitted before the drain still completes.
  ServeResponse finished = inflight.get();
  EXPECT_TRUE(finished.status.ok()) << finished.status.ToString();
  EXPECT_TRUE(server.AwaitDrained(30.0));
  server.Stop();
}

TEST_F(ServeFixture, AwaitDrainedTimesOutEarlyAndSucceedsLate) {
  Server server(model_, FastOptions());
  ASSERT_TRUE(server.Start().ok());
  std::vector<std::future<ServeResponse>> futures;
  for (int i = 0; i < 4; ++i) {
    FitRequest request;
    request.table = MakeTable(900 + static_cast<uint64_t>(i));
    request.max_trials = 2;
    futures.push_back(server.Submit(std::move(request)));
  }
  server.BeginDrain();
  // Early: a zero-budget wait reports "not drained yet" while work
  // remains — it must neither block nor claim success.
  EXPECT_FALSE(server.AwaitDrained(0.0));
  // Late: the same call with budget observes the drain completing.
  EXPECT_TRUE(server.AwaitDrained(30.0));
  EXPECT_EQ(server.queue_depth(), 0u);
  EXPECT_EQ(server.inflight(), 0u);
  for (std::future<ServeResponse>& future : futures) {
    ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
  }
  server.Stop();
}

TEST_F(ServeFixture, DrainOfAnIdleServerNeverLosesTheWakeup) {
  // Regression: BeginDrain/Stop once stored their flags and notified
  // without holding mu_, so a worker sitting between its wait-predicate
  // check and its block could miss the only notify — hanging the drain
  // and the Stop join. Freshly started idle servers spend their time in
  // exactly that window; cycling them presses on it.
  for (int round = 0; round < 25; ++round) {
    Server server(model_, FastOptions());
    ASSERT_TRUE(server.Start().ok());
    server.BeginDrain();
    EXPECT_TRUE(server.AwaitDrained(10.0)) << "round " << round;
    server.Stop();
  }
}

TEST_F(ServeFixture, ExpiredDeadlineProducesResourceExhausted) {
  ServeOptions options = FastOptions();
  options.num_workers = 1;
  Server server(model_, options);
  ASSERT_TRUE(server.Start().ok());

  // Occupy the single worker with a real fit, then submit a request
  // whose deadline can only expire in the queue.
  FitRequest slow;
  slow.table = MakeTable(66);
  slow.max_trials = 4;
  std::future<ServeResponse> slow_future = server.Submit(std::move(slow));

  FitRequest doomed;
  doomed.table = MakeTable(67);
  doomed.deadline_seconds = 0.001;
  ServeResponse response = server.Submit(std::move(doomed)).get();
  EXPECT_EQ(response.status.code(), StatusCode::kResourceExhausted);

  EXPECT_TRUE(slow_future.get().status.ok());
  server.Stop();
}

TEST_F(ServeFixture, TenantCircuitBreakerOpensAndHalfOpens) {
  ServeOptions options = FastOptions();
  options.breaker_threshold = 2;
  // Generous cooldown: the shed check below must land while the breaker
  // is still cooling even if this thread is descheduled for a while.
  options.breaker_cooldown_seconds = 0.5;
  Server server(model_, options);
  ASSERT_TRUE(server.Start().ok());

  // A table with no target column fails every fit.
  Table poison = MakeTable(77);
  poison.set_target_name("");

  for (int i = 0; i < 2; ++i) {
    FitRequest bad;
    bad.tenant = "flaky";
    bad.table = poison;
    ServeResponse response = server.Submit(std::move(bad)).get();
    EXPECT_FALSE(response.status.ok());
    EXPECT_NE(response.status.code(), StatusCode::kResourceExhausted)
        << "failures before the threshold must be real errors, not sheds";
  }

  // Breaker open: the next request is shed at the door.
  FitRequest shed;
  shed.tenant = "flaky";
  shed.table = MakeTable(33);
  ServeResponse rejected = server.Submit(std::move(shed)).get();
  EXPECT_EQ(rejected.status.code(), StatusCode::kResourceExhausted);

  // Other tenants are unaffected.
  FitRequest other;
  other.tenant = "healthy";
  other.table = MakeTable(33);
  EXPECT_TRUE(server.Submit(std::move(other)).get().status.ok());

  // After the cooldown a half-open probe goes through.
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  FitRequest probe;
  probe.tenant = "flaky";
  probe.table = MakeTable(33);
  EXPECT_TRUE(server.Submit(std::move(probe)).get().status.ok());
  server.Stop();
}

TEST_F(ServeFixture, OverloadDegradesToZeroShot) {
  ServeOptions options = FastOptions();
  options.degrade_queue_depth = 0;  // force rung 2 on every request
  Server server(model_, options);
  ASSERT_TRUE(server.Start().ok());
  FitRequest request;
  request.table = MakeTable(88);  // fresh digest: no cached result
  ServeResponse response = server.Submit(std::move(request)).get();
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_EQ(response.degradation_level, 2);
  EXPECT_EQ(response.result.report.degradation_level, 2);
  EXPECT_EQ(response.result.trials, 0) << "zero-shot must not run HPO";
  EXPECT_FALSE(response.result.best_spec.learner.empty());
  server.Stop();
}

TEST_F(ServeFixture, CorruptResultEntryIsRebuiltByTheDaemon) {
  const std::string dir = TempDir("serve_corrupt");
  ServeOptions options = FastOptions();
  options.cache_dir = dir;
  std::string path;
  {
    Server server(model_, options);
    ASSERT_TRUE(server.Start().ok());
    FitRequest request;
    request.table = MakeTable(99);
    request.max_trials = 4;
    ASSERT_TRUE(server.Submit(std::move(request)).get().status.ok());
    path = server.cache().PathForKey(Server::ResultCacheKey(
        TableDigest(MakeTable(99)), TaskType::kBinaryClassification, 4));
    ASSERT_TRUE(std::filesystem::exists(path));
    server.Stop();
  }
  {
    // Bit-flip the stored result on disk.
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    file.seekp(-4, std::ios::end);
    char byte = 0;
    file.read(&byte, 1);
    byte ^= 0x40;
    file.seekp(-4, std::ios::end);
    file.write(&byte, 1);
  }
  // A restarted daemon (cold memory tier) must detect the damage, evict,
  // re-run the fit, and heal the disk entry.
  Server reborn(model_, options);
  ASSERT_TRUE(reborn.Start().ok());
  FitRequest request;
  request.table = MakeTable(99);
  request.max_trials = 4;
  ServeResponse response = reborn.Submit(std::move(request)).get();
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_FALSE(response.cache_hit) << "a corrupt entry must not be served";
  EXPECT_GE(reborn.cache().stats().corrupt_evictions, 1);
  auto healed = ArtifactCache::LoadEntryFile(path);
  EXPECT_TRUE(healed.ok()) << "rebuild should have rewritten the entry: "
                           << healed.status().ToString();
  reborn.Stop();
  std::filesystem::remove_all(dir);
}

TEST_F(ServeFixture, SoakEveryRequestTerminatesDefinitively) {
  Server server(model_, FastOptions());
  ASSERT_TRUE(server.Start().ok());
  SoakOptions soak;
  soak.num_tenants = 3;
  soak.duration_seconds = 1.5;
  soak.request_deadline_seconds = 10.0;
  soak.poison_fraction = 0.1;
  SoakHarness harness(&server, soak);
  auto summary = harness.Run();
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_EQ(summary->stuck, 0);
  EXPECT_GT(summary->submitted, 0);
  EXPECT_GT(summary->ok, 0);
  EXPECT_GT(summary->cache_hits, 0);
  server.Stop();
}

TEST_F(ServeFixture, SoakUnderInjectedFaultsStaysDefinitive) {
  Server server(model_, FastOptions());
  ASSERT_TRUE(server.Start().ok());
  SoakOptions soak;
  soak.num_tenants = 2;
  soak.duration_seconds = 1.0;
  soak.request_deadline_seconds = 10.0;
  soak.inject_faults = true;
  soak.fault_config.seed = 17;
  soak.fault_config.evaluator_error_rate = 0.2;
  soak.fault_config.nan_score_rate = 0.1;
  soak.fault_config.resource_exhausted_rate = 0.1;
  SoakHarness harness(&server, soak);
  auto summary = harness.Run();
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_EQ(summary->stuck, 0);
  EXPECT_GT(summary->submitted, 0);
  server.Stop();
}

std::atomic<int> g_soak_rank_violations{0};

void RecordSoakRankViolation(const char* acquiring, int acquiring_rank,
                             const char* held, int held_rank) {
  g_soak_rank_violations.fetch_add(1);
  ADD_FAILURE() << "lock-rank violation: acquiring '" << acquiring
                << "' (rank " << acquiring_rank << ") while holding '"
                << held << "' (rank " << held_rank << ")";
}

TEST_F(ServeFixture, SoakIsCleanUnderLockRankChecking) {
  if (!util::LockRankCheckingCompiled()) {
    GTEST_SKIP() << "built with KGPIP_NO_LOCK_RANK";
  }
  // The whole daemon — admission, workers, watchdog, cache, generator
  // engines, pool, metrics — under the runtime rank checker: any lock
  // acquired against the documented order fails the test via the handler
  // (equivalent to running the soak with KGPIP_CHECK_LOCKS=1, but with a
  // recording handler instead of the aborting default).
  g_soak_rank_violations.store(0);
  util::SetLockRankCheckingEnabled(true);
  util::SetLockRankViolationHandler(&RecordSoakRankViolation);

  Server server(model_, FastOptions());
  ASSERT_TRUE(server.Start().ok());
  SoakOptions soak;
  soak.num_tenants = 2;
  soak.duration_seconds = 1.0;
  soak.request_deadline_seconds = 10.0;
  SoakHarness harness(&server, soak);
  auto summary = harness.Run();
  server.Stop();

  util::SetLockRankViolationHandler(nullptr);
  util::SetLockRankCheckingEnabled(false);

  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_GT(summary->submitted, 0);
  EXPECT_EQ(g_soak_rank_violations.load(), 0);
}

// ---------------------------------------------------------------------------
// Observability plane: audit log, request ids, DebugStatus

TEST_F(ServeFixture, ResponseAndAuditShareTheRequestId) {
  Server server(model_, FastOptions());
  ASSERT_TRUE(server.Start().ok());

  FitRequest request;
  request.table = MakeTable(901);
  ServeResponse response = server.Submit(std::move(request)).get();
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_GT(response.request_id, 0u);

  // Respond emits the audit line before the future resolves, so the
  // record is observable the moment .get() returns.
  std::vector<Json> tail = server.audit_log().Tail(1);
  ASSERT_EQ(tail.size(), 1u);
  const Json& record = tail[0];
  EXPECT_EQ(record.Get("request_id").AsInt(),
            static_cast<int64_t>(response.request_id));
  EXPECT_EQ(record.Get("tenant").AsString(), "default");
  EXPECT_EQ(record.Get("outcome").AsString(), "OK");
  EXPECT_EQ(record.Get("cache_tier").AsString(), "none");
  EXPECT_GT(record.Get("total_micros").AsInt(), 0);
  // Phase accounting tiles the total exactly (run = total - queue wait).
  EXPECT_EQ(record.Get("queue_wait_micros").AsInt() +
                record.Get("run_micros").AsInt(),
            record.Get("total_micros").AsInt());
  server.Stop();
}

TEST_F(ServeFixture, RefusalsAreAuditedToo) {
  ServeOptions options = FastOptions();
  options.max_queue_depth = 0;  // everything sheds at the door
  Server server(model_, options);
  ASSERT_TRUE(server.Start().ok());
  FitRequest request;
  request.table = MakeTable(902);
  ServeResponse response = server.Submit(std::move(request)).get();
  ASSERT_EQ(response.status.code(), StatusCode::kResourceExhausted);

  std::vector<Json> tail = server.audit_log().Tail(1);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].Get("request_id").AsInt(),
            static_cast<int64_t>(response.request_id));
  EXPECT_EQ(tail[0].Get("outcome").AsString(),
            StatusCodeName(StatusCode::kResourceExhausted));
  EXPECT_FALSE(tail[0].Get("detail").AsString().empty());
  server.Stop();
}

TEST_F(ServeFixture, SoakWritesExactlyOneAuditLinePerSubmittedRequest) {
  const std::string dir = TempDir("audit");
  std::filesystem::create_directories(dir);
  ServeOptions options = FastOptions();
  options.audit_log_path = dir + "/audit.jsonl";
  Server server(model_, options);
  ASSERT_TRUE(server.Start().ok());

  SoakOptions soak;
  soak.num_tenants = 3;  // acceptance asks for >= 2 tenants + faults
  soak.duration_seconds = 1.0;
  soak.request_deadline_seconds = 10.0;
  soak.poison_fraction = 0.1;
  soak.inject_faults = true;
  soak.fault_config.seed = 23;
  soak.fault_config.evaluator_error_rate = 0.2;
  soak.fault_config.nan_score_rate = 0.1;
  SoakHarness harness(&server, soak);
  auto summary = harness.Run();
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  ASSERT_GT(summary->submitted, 0);
  server.Stop();

  EXPECT_EQ(server.audit_log().records_written(), summary->submitted);
  EXPECT_EQ(server.audit_log().write_errors(), 0);

  // Every line on disk parses. The first line is the metadata header
  // (serving environment: dispatched SIMD level); after it, ids are
  // unique and the file holds one line per submitted request — the
  // wide-event contract.
  std::ifstream in(options.audit_log_path);
  ASSERT_TRUE(in.good());
  std::set<int64_t> ids;
  int64_t lines = 0;
  int64_t headers = 0;
  std::string line;
  while (std::getline(in, line)) {
    ++lines;
    auto parsed = Json::Parse(line);
    ASSERT_TRUE(parsed.ok()) << "line " << lines << ": "
                             << parsed.status().ToString();
    if (parsed->Has("type") &&
        parsed->Get("type").AsString() == "header") {
      ++headers;
      EXPECT_EQ(lines, 1) << "header must be the first line";
      EXPECT_FALSE(parsed->Get("isa_level").AsString().empty());
      continue;
    }
    const int64_t id = parsed->Get("request_id").AsInt();
    EXPECT_TRUE(ids.insert(id).second) << "duplicate audit line for " << id;
    EXPECT_TRUE(StartsWith(parsed->Get("tenant").AsString(), "tenant-"));
    EXPECT_FALSE(parsed->Get("outcome").AsString().empty());
    EXPECT_EQ(parsed->Get("table_digest").AsString().size(), 16u);
  }
  EXPECT_EQ(headers, 1);
  EXPECT_EQ(lines - headers, summary->submitted);
  std::filesystem::remove_all(dir);
}

TEST_F(ServeFixture, AuditRequestIdsMatchTraceSpanIds) {
  Server server(model_, FastOptions());
  ASSERT_TRUE(server.Start().ok());

  obs::Tracer::Global().Clear();
  obs::Tracer::Global().Enable();
  std::set<int64_t> response_ids;
  for (uint64_t seed = 950; seed < 954; ++seed) {
    FitRequest request;
    request.table = MakeTable(seed);
    request.tenant = "traced";
    request.max_trials = 2;
    ServeResponse response = server.Submit(std::move(request)).get();
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    response_ids.insert(static_cast<int64_t>(response.request_id));
  }
  obs::Tracer::Global().Disable();
  server.Stop();

  // Each request's serve.request span carries that request's id — the
  // correlation key that joins traces to audit lines and log records.
  std::set<int64_t> span_ids;
  for (const obs::TraceEvent& event : obs::Tracer::Global().Snapshot()) {
    if (event.request_id == 0) continue;
    EXPECT_TRUE(response_ids.count(static_cast<int64_t>(event.request_id)))
        << "span '" << event.name << "' carries unknown request id "
        << event.request_id;
    EXPECT_EQ(event.tenant, "traced");
    if (event.name == "serve.request") {
      span_ids.insert(static_cast<int64_t>(event.request_id));
    }
  }
  EXPECT_EQ(span_ids, response_ids);

  // And the audit tail agrees with both.
  std::set<int64_t> audit_ids;
  for (const Json& record : server.audit_log().Tail(16)) {
    audit_ids.insert(record.Get("request_id").AsInt());
  }
  EXPECT_EQ(audit_ids, response_ids);
  obs::Tracer::Global().Clear();
}

TEST_F(ServeFixture, DebugStatusMidSoakIsValidJsonAndRankClean) {
  if (!util::LockRankCheckingCompiled()) {
    GTEST_SKIP() << "built with KGPIP_NO_LOCK_RANK";
  }
  g_soak_rank_violations.store(0);
  util::SetLockRankCheckingEnabled(true);
  util::SetLockRankViolationHandler(&RecordSoakRankViolation);

  Server server(model_, FastOptions());
  ASSERT_TRUE(server.Start().ok());
  SoakOptions soak;
  soak.num_tenants = 2;
  soak.duration_seconds = 1.2;
  soak.request_deadline_seconds = 10.0;
  SoakHarness harness(&server, soak);

  std::thread soak_thread([&harness] {
    auto summary = harness.Run();
    EXPECT_TRUE(summary.ok()) << summary.status().ToString();
  });

  // Hammer the introspection path while the daemon is under load: every
  // snapshot must be parseable, structurally complete, and free of
  // lock-order violations (i.e. statusz can never deadlock the server).
  int snapshots = 0;
  Stopwatch watch;
  while (watch.ElapsedSeconds() < 1.0) {
    Json status = server.DebugStatus();
    auto parsed = Json::Parse(status.Dump(2));
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    for (const char* key :
         {"queue", "inflight", "tenants", "cache", "audit", "windows",
          "counters", "pool", "locks", "options", "isa_level"}) {
      EXPECT_TRUE(parsed->Has(key)) << "missing statusz key " << key;
    }
    EXPECT_FALSE(server.DebugStatusText().empty());
    ++snapshots;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  soak_thread.join();
  server.Stop();

  util::SetLockRankViolationHandler(nullptr);
  util::SetLockRankCheckingEnabled(false);

  EXPECT_GT(snapshots, 0);
  EXPECT_EQ(g_soak_rank_violations.load(), 0);
  // Post-soak the snapshot reflects the audit volume.
  EXPECT_GT(server.audit_log().records_written(), 0);
}

}  // namespace
}  // namespace kgpip::serve
