#include <cmath>

#include <gtest/gtest.h>

#include "util/json.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace kgpip {
namespace {

TEST(DeadlineTest, NonPositiveLimitMeansNoDeadline) {
  for (double limit : {0.0, -1.0}) {
    Deadline deadline(limit);
    EXPECT_FALSE(deadline.Expired()) << "limit " << limit;
    EXPECT_TRUE(std::isinf(deadline.RemainingSeconds())) << "limit " << limit;
    // The remaining budget survives the (T - t) / K split used when a
    // trial budget is divided across skeletons.
    EXPECT_TRUE(std::isinf(deadline.RemainingSeconds() / 8.0));
    Deadline derived(deadline.RemainingSeconds() / 8.0);
    EXPECT_FALSE(derived.Expired());
  }
}

TEST(DeadlineTest, PositiveLimitCountsDown) {
  Deadline deadline(3600.0);
  EXPECT_FALSE(deadline.Expired());
  double remaining = deadline.RemainingSeconds();
  EXPECT_GT(remaining, 0.0);
  EXPECT_LE(remaining, 3600.0);
  EXPECT_FALSE(std::isinf(remaining));

  Deadline tiny(1e-9);  // already in the past by the time we check
  EXPECT_TRUE(tiny.Expired());
  EXPECT_DOUBLE_EQ(tiny.RemainingSeconds(), 0.0);
}

TEST(StatusTest, OkAndError) {
  Status ok;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.ToString(), "OK");
  Status err = Status::NotFound("missing thing");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), StatusCode::kNotFound);
  EXPECT_EQ(err.ToString(), "NOT_FOUND: missing thing");
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> good(42);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 42);
  Result<int> bad(Status::InvalidArgument("nope"));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> UseAssignOrReturn(int x) {
  KGPIP_ASSIGN_OR_RETURN(int half, HalveEven(x));
  return half + 1;
}

TEST(ResultTest, AssignOrReturnMacro) {
  Result<int> ok = UseAssignOrReturn(4);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 3);
  Result<int> err = UseAssignOrReturn(3);
  EXPECT_FALSE(err.ok());
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, NormalMomentsRoughlyStandard) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double x = rng.Normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, PermutationIsPermutation) {
  Rng rng(3);
  auto p = rng.Permutation(50);
  std::vector<bool> seen(50, false);
  for (size_t v : p) {
    ASSERT_LT(v, 50u);
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(5);
  std::vector<double> weights = {0.0, 10.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.Categorical(weights), 1u);
  }
}

TEST(StringUtilTest, SplitJoinRoundTrip) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(Join(parts, ","), "a,b,,c");
}

TEST(StringUtilTest, ParseDoubleRejectsGarbage) {
  double v = 0.0;
  EXPECT_TRUE(ParseDouble("3.25", &v));
  EXPECT_DOUBLE_EQ(v, 3.25);
  EXPECT_TRUE(ParseDouble("  -1e3 ", &v));
  EXPECT_DOUBLE_EQ(v, -1000.0);
  EXPECT_FALSE(ParseDouble("3.25x", &v));
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("abc", &v));
}

TEST(StringUtilTest, Fnv1aStable) {
  EXPECT_EQ(Fnv1a64("hello"), Fnv1a64("hello"));
  EXPECT_NE(Fnv1a64("hello"), Fnv1a64("hellp"));
}

TEST(JsonTest, ParseRoundTrip) {
  auto parsed = Json::Parse(
      R"({"name": "kgpip", "k": 5, "nested": {"arr": [1, 2.5, true, null]},
          "text": "a\"b\\c\nd"})");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Json& j = *parsed;
  EXPECT_EQ(j.Get("name").AsString(), "kgpip");
  EXPECT_EQ(j.Get("k").AsInt(), 5);
  EXPECT_EQ(j.Get("nested").Get("arr").size(), 4u);
  EXPECT_DOUBLE_EQ(j.Get("nested").Get("arr").at(1).AsDouble(), 2.5);
  EXPECT_TRUE(j.Get("nested").Get("arr").at(2).AsBool());
  EXPECT_TRUE(j.Get("nested").Get("arr").at(3).is_null());
  EXPECT_EQ(j.Get("text").AsString(), "a\"b\\c\nd");

  // Round trip through Dump.
  auto reparsed = Json::Parse(j.Dump());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->Get("text").AsString(), "a\"b\\c\nd");
  EXPECT_EQ(reparsed->Dump(), j.Dump());
}

TEST(JsonTest, ParseErrors) {
  EXPECT_FALSE(Json::Parse("{").ok());
  EXPECT_FALSE(Json::Parse("[1,]").ok());
  EXPECT_FALSE(Json::Parse("{\"a\" 1}").ok());
  EXPECT_FALSE(Json::Parse("tru").ok());
  EXPECT_FALSE(Json::Parse("1 2").ok());
  EXPECT_FALSE(Json::Parse("\"unterminated").ok());
}

TEST(JsonTest, UnicodeEscape) {
  auto parsed = Json::Parse(R"("Aé")");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->AsString(), "A\xc3\xa9");
}

TEST(StatsTest, MeanAndStdDev) {
  std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Mean(v), 2.5);
  EXPECT_NEAR(StdDev(v), 1.2909944, 1e-6);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(StdDev({1.0}), 0.0);
}

TEST(StatsTest, PearsonPerfectCorrelation) {
  std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y = {2, 4, 6, 8, 10};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
  std::vector<double> z = {5, 4, 3, 2, 1};
  EXPECT_NEAR(PearsonCorrelation(x, z), -1.0, 1e-12);
}

TEST(StatsTest, SpearmanHandlesTies) {
  std::vector<double> x = {1, 2, 2, 3};
  std::vector<double> y = {10, 20, 20, 30};
  EXPECT_NEAR(SpearmanCorrelation(x, y), 1.0, 1e-12);
}

TEST(StatsTest, IncompleteBetaKnownValues) {
  // I_x(1, 1) = x.
  EXPECT_NEAR(RegularizedIncompleteBeta(1.0, 1.0, 0.3), 0.3, 1e-10);
  // I_x(2, 2) = x^2 (3 - 2x).
  double x = 0.4;
  EXPECT_NEAR(RegularizedIncompleteBeta(2.0, 2.0, x),
              x * x * (3.0 - 2.0 * x), 1e-10);
}

TEST(StatsTest, StudentTPValueMatchesReference) {
  // t = 2.0, df = 10 -> two-tailed p ~ 0.07339.
  EXPECT_NEAR(StudentTTwoTailedPValue(2.0, 10.0), 0.07339, 2e-4);
  // Symmetric in t.
  EXPECT_NEAR(StudentTTwoTailedPValue(-2.0, 10.0),
              StudentTTwoTailedPValue(2.0, 10.0), 1e-12);
  // Large |t| -> tiny p.
  EXPECT_LT(StudentTTwoTailedPValue(10.0, 20.0), 1e-6);
}

TEST(StatsTest, PairedTTestDetectsShift) {
  std::vector<double> x, y;
  Rng rng(42);
  for (int i = 0; i < 30; ++i) {
    double base = rng.Normal();
    x.push_back(base + 0.5);
    y.push_back(base + rng.Normal() * 0.1);
  }
  TTestResult r = PairedTTest(x, y);
  EXPECT_LT(r.p_value, 0.01);
  EXPECT_GT(r.t_statistic, 0.0);

  // Identical samples: p = 1.
  TTestResult same = PairedTTest(x, x);
  EXPECT_DOUBLE_EQ(same.p_value, 1.0);
}

TEST(StatsTest, WelchTTest) {
  std::vector<double> x = {5.1, 4.9, 5.2, 5.0, 5.1};
  std::vector<double> y = {3.0, 3.2, 2.9, 3.1, 3.0};
  TTestResult r = WelchTTest(x, y);
  EXPECT_LT(r.p_value, 1e-4);
}

TEST(StatsTest, MeanReciprocalRank) {
  EXPECT_DOUBLE_EQ(MeanReciprocalRank({1, 2, 4}),
                   (1.0 + 0.5 + 0.25) / 3.0);
  EXPECT_DOUBLE_EQ(MeanReciprocalRank({0}), 0.0);  // miss
  EXPECT_DOUBLE_EQ(MeanReciprocalRank({}), 0.0);
}

TEST(StatsTest, SilhouetteSeparatedClusters) {
  std::vector<std::vector<double>> points;
  std::vector<int> labels;
  Rng rng(1);
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 10; ++i) {
      points.push_back({c * 10.0 + rng.Normal() * 0.1,
                        c * -7.0 + rng.Normal() * 0.1});
      labels.push_back(c);
    }
  }
  EXPECT_GT(SilhouetteScore(points, labels), 0.9);
}

}  // namespace
}  // namespace kgpip
