// Work-stealing pool: determinism at any thread count, exception
// propagation, RNG forking, nesting, and stress coverage.
#include "util/thread_pool.h"

#include <atomic>
#include <cmath>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace kgpip::util {
namespace {

/// Runs `fn` under a global pool of each size in `sizes`, returning one
/// result per size. Restores the default (env/hardware) pool afterwards.
template <typename T>
std::vector<T> WithPoolSizes(const std::vector<int>& sizes,
                             const std::function<T()>& fn) {
  std::vector<T> results;
  for (int threads : sizes) {
    ThreadPool::Configure(threads);
    results.push_back(fn());
  }
  ThreadPool::Configure(0);
  return results;
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4}) {
    ThreadPool::Configure(threads);
    constexpr size_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    ThreadPool::Global().ParallelFor(
        kN, [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " at " << threads
                                   << " threads";
    }
  }
  ThreadPool::Configure(0);
}

TEST(ThreadPoolTest, ParallelMapPreservesOrder) {
  auto squares = [] {
    return ThreadPool::Global().ParallelMap<int>(
        256, [](size_t i) { return static_cast<int>(i * i); });
  };
  auto results = WithPoolSizes<std::vector<int>>({1, 3, 8}, squares);
  for (const auto& r : results) {
    ASSERT_EQ(r.size(), 256u);
    for (size_t i = 0; i < r.size(); ++i) {
      ASSERT_EQ(r[i], static_cast<int>(i * i));
    }
  }
}

TEST(ThreadPoolTest, OrderedReductionIsBitIdenticalAcrossThreadCounts) {
  // Sums of irrationals are order-sensitive in floating point; the
  // ordered fold must erase scheduling from the result entirely.
  auto reduce = [] {
    return ThreadPool::Global().ParallelMapReduce<double, double>(
        5000, 0.0,
        [](size_t i) {
          return std::sqrt(static_cast<double>(i)) * 1e-3 +
                 std::sin(static_cast<double>(i));
        },
        [](double& acc, double& v, size_t) { acc += v; });
  };
  auto sums = WithPoolSizes<double>({1, 2, 4, 7}, reduce);
  for (size_t i = 1; i < sums.size(); ++i) {
    ASSERT_EQ(sums[0], sums[i]) << "thread-count-dependent reduction";
  }
}

TEST(ThreadPoolTest, LowestIndexExceptionWins) {
  ThreadPool::Configure(4);
  try {
    ThreadPool::Global().ParallelFor(400, [](size_t i) {
      if (i % 7 == 3) {  // first thrower is index 3
        throw std::runtime_error("item " + std::to_string(i));
      }
    });
    FAIL() << "expected ParallelFor to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "item 3");
  }
  // The pool survives an exceptional loop.
  int sum = 0;
  std::atomic<int> atomic_sum{0};
  ThreadPool::Global().ParallelFor(
      100, [&](size_t i) { atomic_sum += static_cast<int>(i); });
  sum = atomic_sum.load();
  EXPECT_EQ(sum, 4950);
  ThreadPool::Configure(0);
}

TEST(ThreadPoolTest, ExceptionPropagatesFromInlinePool) {
  ThreadPool::Configure(1);
  EXPECT_THROW(ThreadPool::Global().ParallelFor(
                   10, [](size_t) { throw std::logic_error("inline"); }),
               std::logic_error);
  ThreadPool::Configure(0);
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool::Configure(4);
  std::vector<std::atomic<int>> hits(64 * 64);
  ThreadPool::Global().ParallelFor(64, [&](size_t outer) {
    ThreadPool::Global().ParallelFor(64, [&](size_t inner) {
      hits[outer * 64 + inner].fetch_add(1);
    });
  });
  for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
  ThreadPool::Configure(0);
}

TEST(ThreadPoolTest, ForkRngsIsIndependentOfThreadCount) {
  auto draw = [] {
    Rng parent(99);
    std::vector<Rng> forks = ForkRngs(&parent, 16);
    return ThreadPool::Global().ParallelMap<uint64_t>(
        16, [&](size_t i) { return forks[i].Next(); });
  };
  auto streams = WithPoolSizes<std::vector<uint64_t>>({1, 4}, draw);
  ASSERT_EQ(streams[0], streams[1]);
  // Forked streams are distinct from each other.
  std::set<uint64_t> distinct(streams[0].begin(), streams[0].end());
  EXPECT_EQ(distinct.size(), streams[0].size());
}

TEST(ThreadPoolTest, StressManySmallLoops) {
  ThreadPool::Configure(4);
  for (int round = 0; round < 200; ++round) {
    std::atomic<int64_t> total{0};
    size_t n = static_cast<size_t>(1 + (round % 67));
    ThreadPool::Global().ParallelFor(
        n, [&](size_t i) { total += static_cast<int64_t>(i) + 1; });
    ASSERT_EQ(total.load(),
              static_cast<int64_t>(n) * static_cast<int64_t>(n + 1) / 2);
  }
  ThreadPool::Configure(0);
}

TEST(ThreadPoolTest, StressUnevenItemCostsStillCoverAllItems) {
  ThreadPool::Configure(4);
  constexpr size_t kN = 300;
  std::vector<double> out(kN, -1.0);
  ThreadPool::Global().ParallelFor(kN, [&](size_t i) {
    // Skewed costs: early indices do ~100x the work of late ones, so
    // completion relies on stealing from the loaded deques.
    double acc = 0.0;
    size_t spins = (i < 30) ? 20000 : 200;
    for (size_t s = 0; s < spins; ++s) {
      acc += std::sqrt(static_cast<double>(s + i));
    }
    out[i] = acc;
  });
  for (size_t i = 0; i < kN; ++i) ASSERT_GE(out[i], 0.0) << i;
  ThreadPool::Configure(0);
}

TEST(ThreadPoolTest, EmptyAndSingleItemLoops) {
  ThreadPool::Configure(3);
  int calls = 0;
  ThreadPool::Global().ParallelFor(0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  ThreadPool::Global().ParallelFor(1, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
  ThreadPool::Configure(0);
}

TEST(ThreadPoolTest, PlannedThreadsHonoursConfigure) {
  ThreadPool::Configure(5);
  EXPECT_EQ(ThreadPool::PlannedThreads(), 5);
  EXPECT_EQ(ThreadPool::Global().num_lanes(), 5);
  EXPECT_EQ(ThreadPool::Global().num_worker_threads(), 4);
  ThreadPool::Configure(1);
  EXPECT_EQ(ThreadPool::Global().num_worker_threads(), 0);
  ThreadPool::Configure(0);
}

TEST(ThreadPoolTest, PoolMetricsAreRecorded) {
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  obs::Counter* fors = metrics.GetCounter("pool.parallel_fors");
  obs::Counter* tasks = metrics.GetCounter("pool.tasks_executed");
  const int64_t fors_before = fors->value();
  const int64_t tasks_before = tasks->value();
  ThreadPool::Configure(4);
  ThreadPool::Global().ParallelFor(500, [](size_t) {});
  EXPECT_GT(fors->value(), fors_before);
  EXPECT_GT(tasks->value(), tasks_before);
  ThreadPool::Configure(0);
}

}  // namespace
}  // namespace kgpip::util
