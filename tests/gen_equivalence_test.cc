// Equivalence suite for the tape-free inference engine: every path the
// serve-time decoder takes must be byte-identical to the autograd tape
// reference, deterministic across thread counts, and allocation-free in
// steady state.

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "gen/graph_generator.h"
#include "gen/inference_engine.h"
#include "graph4ml/graph4ml.h"
#include "obs/metrics.h"
#include "util/thread_pool.h"

namespace kgpip::gen {
namespace {

using graph4ml::PipelineVocab;
using graph4ml::TypedGraph;

GeneratorConfig SmallConfig() {
  GeneratorConfig config;
  config.vocab_size = PipelineVocab::Get().size();
  config.hidden = 24;
  config.prop_rounds = 2;
  config.max_nodes = 8;
  config.condition_dims = 2;
  config.learning_rate = 5e-3;
  return config;
}

std::vector<GraphExample> TwoModeExamples(int copies) {
  const PipelineVocab& vocab = PipelineVocab::Get();
  const int scaler = vocab.TypeOf("standard_scaler");
  const int logreg = vocab.TypeOf("logistic_regression");
  const int xgb = vocab.TypeOf("xgboost");
  std::vector<GraphExample> examples;
  for (int c = 0; c < copies; ++c) {
    GraphExample a;
    a.graph.node_types = {PipelineVocab::kDatasetType,
                          PipelineVocab::kReadCsvType, scaler, logreg};
    a.graph.edges = {{0, 1}, {1, 2}, {2, 3}};
    a.condition = {1.0, 0.0};
    a.given_nodes = 2;
    examples.push_back(a);

    GraphExample b;
    b.graph.node_types = {PipelineVocab::kDatasetType,
                          PipelineVocab::kReadCsvType, xgb};
    b.graph.edges = {{0, 1}, {1, 2}};
    b.condition = {0.0, 1.0};
    b.given_nodes = 2;
    examples.push_back(b);
  }
  return examples;
}

TypedGraph SeedGraph() {
  TypedGraph seed;
  seed.node_types = {PipelineVocab::kDatasetType,
                     PipelineVocab::kReadCsvType};
  seed.edges = {{0, 1}};
  return seed;
}

void ExpectMatricesByteIdentical(const nn::Matrix& a, const nn::Matrix& b,
                                 const char* what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(double)), 0)
      << what << " values diverged";
}

void ExpectSameGenerated(const GeneratedGraph& a, const GeneratedGraph& b) {
  EXPECT_EQ(a.graph.node_types, b.graph.node_types);
  EXPECT_EQ(a.graph.edges, b.graph.edges);
  EXPECT_EQ(a.log_prob, b.log_prob);  // exact, not approximate
}

TEST(GenEquivalenceTest, TapeFreeDecodeIsByteIdenticalToTape) {
  GraphGenerator generator(SmallConfig(), 7);
  // A few epochs so the weights are trained, not just Xavier noise.
  auto examples = TwoModeExamples(2);
  Rng train_rng(1);
  for (int epoch = 0; epoch < 3; ++epoch) {
    generator.TrainEpoch(examples, &train_rng);
  }
  const TypedGraph seed = SeedGraph();
  const std::vector<double> condition = {1.0, 0.0};
  // Greedy, tempered-below-1, exactly-1, and tempered-above-1 all take
  // different sampling code paths; every one must agree bit-for-bit.
  for (double temperature : {0.0, 0.7, 1.0, 1.5}) {
    for (uint64_t s = 0; s < 8; ++s) {
      Rng fast_rng(s * 13 + 5);
      Rng tape_rng(s * 13 + 5);
      GeneratedGraph fast =
          generator.Generate(seed, condition, &fast_rng, temperature);
      GeneratedGraph tape =
          generator.GenerateTape(seed, condition, &tape_rng, temperature);
      ExpectSameGenerated(fast, tape);
      // Both paths must consume the same number of RNG draws, or later
      // callers sharing the stream would silently diverge.
      EXPECT_EQ(fast_rng.Next(), tape_rng.Next())
          << "RNG consumption diverged at t=" << temperature
          << " seed=" << s;
    }
  }
}

TEST(GenEquivalenceTest, EngineCachesMatchNaiveRecomputeOnEditSequences) {
  GraphGenerator generator(SmallConfig(), 11);
  InferenceEngine engine(&generator);
  const std::vector<double> condition = {0.5, -0.25};
  Rng rng(99);
  const int vocab = generator.config().vocab_size;
  for (int round = 0; round < 6; ++round) {
    TypedGraph seed = SeedGraph();
    engine.Begin(seed, condition);
    // Seed states must match naive InitNode per row.
    for (size_t i = 0; i < seed.node_types.size(); ++i) {
      nn::Matrix ref =
          generator.ReferenceInitNode(seed.node_types[i], condition);
      EXPECT_EQ(std::memcmp(engine.states().data() + i * ref.cols(),
                            ref.data(), ref.cols() * sizeof(double)),
                0)
          << "seed row " << i;
    }
    // A randomized decode-shaped edit sequence. Each propagation is
    // checked against a from-scratch recompute of the previous states;
    // each decision cache is checked against the naive head forward,
    // *re-queried after edge-only edits* to prove the invalidation rule
    // (edges alone must not stale the caches).
    for (int step = 0; step < 4; ++step) {
      nn::Matrix before = engine.states();
      auto edges_before = engine.edges();
      engine.RunPropagation();
      nn::Matrix ref_states =
          generator.ReferencePropagate(before, edges_before);
      ExpectMatricesByteIdentical(engine.states(), ref_states, "states");
      ExpectMatricesByteIdentical(engine.GraphReadout(),
                                  generator.ReferenceReadout(ref_states),
                                  "readout");
      ExpectMatricesByteIdentical(engine.AddNodeLogits(),
                                  generator.ReferenceNodeLogits(ref_states),
                                  "node logits");

      const int type = static_cast<int>(rng.UniformInt(
          static_cast<uint64_t>(vocab)));
      engine.StageNode(type);
      nn::Matrix h_new = generator.ReferenceInitNode(type, condition);
      EXPECT_EQ(engine.EdgeLogitValue(),
                generator.ReferenceEdgeLogit(ref_states, h_new));
      ExpectMatricesByteIdentical(
          engine.ChooseScores(),
          generator.ReferenceChooseScores(ref_states, h_new),
          "choose scores");

      const int num_edges =
          static_cast<int>(rng.UniformInt(engine.num_nodes()));
      for (int e = 0; e < num_edges; ++e) {
        engine.AddEdge(static_cast<int>(rng.UniformInt(engine.num_nodes())));
        // Edge-only edit: every cached decision value stays valid and
        // identical to the reference (which never saw the new edge —
        // the heads don't read edges).
        EXPECT_EQ(engine.EdgeLogitValue(),
                  generator.ReferenceEdgeLogit(ref_states, h_new));
        ExpectMatricesByteIdentical(
            engine.ChooseScores(),
            generator.ReferenceChooseScores(ref_states, h_new),
            "choose scores after AddEdge");
        ExpectMatricesByteIdentical(engine.GraphReadout(),
                                    generator.ReferenceReadout(ref_states),
                                    "readout after AddEdge");
      }
      const uint64_t version_before_commit = engine.state_version();
      engine.CommitStagedNode();
      EXPECT_GT(engine.state_version(), version_before_commit);
      // The committed row is exactly h_new.
      const size_t n = engine.num_nodes();
      EXPECT_EQ(std::memcmp(engine.states().data() + (n - 1) * h_new.cols(),
                            h_new.data(), h_new.cols() * sizeof(double)),
                0);
    }
  }
}

TEST(GenEquivalenceTest, GenerateTopKIsDeterministicAcrossThreadCounts) {
  GeneratorConfig config = SmallConfig();
  const TypedGraph seed = SeedGraph();
  const std::vector<double> condition = {1.0, 0.0};
  const size_t k = 9;
  auto decode_with = [&](int threads) {
    util::ThreadPool::Configure(threads);
    GraphGenerator generator(config, 7);
    Rng rng(42);
    return generator.GenerateTopK(seed, condition, k, &rng,
                                  /*temperature=*/0.9);
  };
  std::vector<GeneratedGraph> t1 = decode_with(1);
  std::vector<GeneratedGraph> t2 = decode_with(2);
  std::vector<GeneratedGraph> t4 = decode_with(4);
  util::ThreadPool::Configure(0);
  ASSERT_EQ(t1.size(), k);
  ASSERT_EQ(t2.size(), k);
  ASSERT_EQ(t4.size(), k);
  for (size_t i = 0; i < k; ++i) {
    ExpectSameGenerated(t1[i], t2[i]);
    ExpectSameGenerated(t1[i], t4[i]);
  }
  // And the candidates are genuine decodes: seed prefix preserved.
  for (const GeneratedGraph& g : t1) {
    ASSERT_GE(g.graph.node_types.size(), seed.node_types.size());
    EXPECT_EQ(g.graph.node_types[0], seed.node_types[0]);
    EXPECT_EQ(g.graph.node_types[1], seed.node_types[1]);
  }
}

TEST(GenEquivalenceTest, SteadyStateDecodeAllocatesNothing) {
  GraphGenerator generator(SmallConfig(), 7);
  const TypedGraph seed = SeedGraph();
  const std::vector<double> condition = {1.0, 0.0};
  obs::Counter* allocs =
      obs::MetricsRegistry::Global().GetCounter("gen.generate_allocs");
  Rng rng(3);
  // Cold decode: the constructor pre-sizes the arena for max_nodes, so
  // even the first decode should not grow any buffer.
  generator.Generate(seed, condition, &rng, 0.9);
  const int64_t after_cold = allocs->value();
  for (int i = 0; i < 5; ++i) {
    generator.Generate(seed, condition, &rng, 0.9);
  }
  EXPECT_EQ(allocs->value(), after_cold)
      << "warm decodes grew workspace buffers";
}

TEST(GenEquivalenceTest, CrossCheckModeVerifiesEveryDecode) {
  GeneratorConfig config = SmallConfig();
  config.cross_check = true;
  GraphGenerator generator(config, 7);
  const TypedGraph seed = SeedGraph();
  const std::vector<double> condition = {1.0, 0.0};
  // KGPIP_CHECK aborts on divergence, so surviving the calls *is* the
  // assertion; run both greedy and sampled paths.
  Rng rng(17);
  GeneratedGraph greedy = generator.Generate(seed, condition, &rng, 0.0);
  GeneratedGraph sampled = generator.Generate(seed, condition, &rng, 1.0);
  EXPECT_FALSE(greedy.graph.node_types.empty());
  EXPECT_FALSE(sampled.graph.node_types.empty());
}

}  // namespace
}  // namespace kgpip::gen
