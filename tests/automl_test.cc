#include <gtest/gtest.h>

#include "automl/al_system.h"
#include "automl/autosklearn_system.h"
#include "automl/flaml_system.h"
#include "automl/meta_features.h"
#include "data/benchmark_registry.h"
#include "hpo/optimizer.h"
#include "hpo/search_space.h"

namespace kgpip {
namespace {

Table MakeEvalTable(ConceptFamily family, TaskType task, uint64_t seed) {
  DatasetSpec spec;
  spec.name = "automl_fixture";
  spec.family = family;
  spec.task = task;
  spec.rows = 320;
  spec.num_numeric = 8;
  spec.num_categorical = 2;
  spec.num_classes = 2;
  spec.seed = seed;
  return GenerateDataset(spec);
}

TEST(SearchSpaceTest, DefaultSampleAndPerturbStayInBounds) {
  hpo::SearchSpace space = hpo::SpaceForLearner("xgboost");
  ASSERT_FALSE(space.empty());
  Rng rng(1);
  ml::HyperParams config = space.DefaultConfig();
  for (int i = 0; i < 200; ++i) {
    config = i % 2 == 0 ? space.Sample(&rng)
                        : space.Perturb(config, 0.3, &rng);
    for (const hpo::ParamSpec& spec : space.params()) {
      if (spec.kind == hpo::ParamSpec::Kind::kChoice) continue;
      double v = config.GetNum(spec.name, spec.default_value);
      EXPECT_GE(v, spec.lo - 1e-9) << spec.name;
      EXPECT_LE(v, spec.hi + 1e-9) << spec.name;
      if (spec.kind == hpo::ParamSpec::Kind::kInt) {
        EXPECT_DOUBLE_EQ(v, std::round(v)) << spec.name;
      }
    }
  }
}

TEST(SearchSpaceTest, JsonRoundTrip) {
  hpo::SearchSpace space =
      hpo::SpaceForSkeleton("logistic_regression", {"select_k_best"});
  auto reloaded = hpo::SearchSpace::FromJson(space.ToJson());
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(reloaded->params().size(), space.params().size());
  // k from select_k_best must be present.
  bool has_k = false;
  for (const auto& p : reloaded->params()) has_k |= p.name == "k";
  EXPECT_TRUE(has_k);
  EXPECT_FALSE(hpo::SearchSpace::FromJson(Json("nope")).ok());
}

TEST(SearchSpaceTest, IntegrationDocumentListsAllLearners) {
  Json doc = hpo::IntegrationDocument();
  const Json& estimators = doc.Get("estimators");
  EXPECT_TRUE(estimators.Has("xgboost"));
  EXPECT_TRUE(estimators.Has("logistic_regression"));
  EXPECT_TRUE(estimators.Get("xgboost").Get("classification").AsBool());
  EXPECT_GT(doc.Get("preprocessors").size(), 3u);
}

TEST(BudgetTest, TrialAccountingAndSplit) {
  hpo::Budget budget(10, 1e9);
  EXPECT_EQ(budget.remaining_trials(), 10);
  EXPECT_TRUE(budget.ConsumeTrial());
  EXPECT_EQ(budget.used_trials(), 1);
  hpo::Budget slice = budget.SplitRemaining(3);
  EXPECT_EQ(slice.max_trials(), 3);
  for (int i = 0; i < 9; ++i) budget.ConsumeTrial();
  EXPECT_TRUE(budget.Exhausted());
  EXPECT_FALSE(budget.ConsumeTrial());
}

TEST(OptimizerTest, CfoImprovesOverDefault) {
  Table table = MakeEvalTable(ConceptFamily::kRules,
                              TaskType::kBinaryClassification, 21);
  auto evaluator = hpo::TrialEvaluator::Create(
      table, TaskType::kBinaryClassification, 0.25, 3);
  ASSERT_TRUE(evaluator.ok());
  ml::PipelineSpec skeleton;
  skeleton.learner = "decision_tree";
  auto optimizer = hpo::CreateOptimizer("flaml");
  ASSERT_TRUE(optimizer.ok());
  hpo::Budget budget(20, 1e9);
  hpo::TrialGuard guard(&*evaluator, hpo::TrialGuardOptions{});
  hpo::OptimizeResult result = (*optimizer)->OptimizeSkeleton(
      skeleton, &guard, &budget, 5);
  EXPECT_EQ(result.trials, 20);
  EXPECT_GT(result.best_score, 0.6);
  // The default config is trial 1; the best must be at least as good.
  EXPECT_GE(result.best_score, evaluator->history()[0].score);
}

TEST(OptimizerTest, UnknownOptimizerRejected) {
  EXPECT_FALSE(hpo::CreateOptimizer("tpot").ok());
}

TEST(MetaFeaturesTest, CapturesShape) {
  Table a = MakeEvalTable(ConceptFamily::kLinear,
                          TaskType::kBinaryClassification, 3);
  auto meta = automl::ComputeMetaFeatures(a);
  ASSERT_EQ(meta.size(), 10u);
  EXPECT_GT(meta[0], 0.0);
  // Self-distance zero, and different shapes differ.
  EXPECT_DOUBLE_EQ(automl::MetaFeatureDistance(meta, meta), 0.0);
  DatasetSpec spec;
  spec.name = "wide";
  spec.rows = 100;
  spec.num_numeric = 16;
  spec.num_text = 1;
  auto other = automl::ComputeMetaFeatures(GenerateDataset(spec));
  EXPECT_GT(automl::MetaFeatureDistance(meta, other), 0.05);
}

class BaselineSystemTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(BaselineSystemTest, FitsRulesDatasetAboveChance) {
  std::unique_ptr<automl::AutoMlSystem> system;
  std::string which = GetParam();
  if (which == "flaml") system = std::make_unique<automl::FlamlSystem>();
  else system = std::make_unique<automl::AutoSklearnSystem>();

  Table table = MakeEvalTable(ConceptFamily::kRules,
                              TaskType::kBinaryClassification, 33);
  auto split = SplitTable(table, 0.25, 5);
  auto result = system->Fit(split.train, TaskType::kBinaryClassification,
                            hpo::Budget(25, 1e9), 7);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->trials, 0);
  EXPECT_FALSE(result->learner_sequence.empty());
  auto test_score = result->fitted.ScoreTable(split.test);
  ASSERT_TRUE(test_score.ok());
  EXPECT_GT(*test_score, 0.6) << which;
}

INSTANTIATE_TEST_SUITE_P(Baselines, BaselineSystemTest,
                         ::testing::Values("flaml", "autosklearn"));

TEST(AlSystemTest, TransfersOnSimpleDataFailsOnText) {
  automl::AlSystem al;
  Table simple = MakeEvalTable(ConceptFamily::kLinear,
                               TaskType::kBinaryClassification, 9);
  auto ok_result = al.Fit(simple, TaskType::kBinaryClassification,
                          hpo::Budget(20, 1e9), 3);
  ASSERT_TRUE(ok_result.ok()) << ok_result.status().ToString();
  EXPECT_LE(ok_result->trials, 5);  // AL barely tunes

  // Text dataset: AL's transferred pipelines cannot vectorize text.
  DatasetSpec text_spec;
  text_spec.name = "al_text";
  text_spec.family = ConceptFamily::kText;
  text_spec.num_text = 1;
  text_spec.rows = 200;
  Table text_table = GenerateDataset(text_spec);
  EXPECT_FALSE(al.Fit(text_table, TaskType::kBinaryClassification,
                      hpo::Budget(20, 1e9), 3)
                   .ok());

  // Many-class dataset outside the analyzed notebooks.
  DatasetSpec many;
  many.name = "al_many";
  many.task = TaskType::kMultiClassification;
  many.num_classes = 10;
  many.rows = 420;
  Table many_table = GenerateDataset(many);
  EXPECT_FALSE(al.Fit(many_table, TaskType::kMultiClassification,
                      hpo::Budget(20, 1e9), 3)
                   .ok());
}

}  // namespace
}  // namespace kgpip
