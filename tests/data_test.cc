#include <gtest/gtest.h>

#include "data/benchmark_registry.h"
#include "data/csv.h"
#include "data/synthetic.h"
#include "data/table.h"
#include "data/type_inference.h"

namespace kgpip {
namespace {

TEST(ColumnTest, NumericMissingFromNan) {
  Column c = Column::Numeric(
      "x", {1.0, std::numeric_limits<double>::quiet_NaN(), 3.0});
  EXPECT_EQ(c.size(), 3u);
  EXPECT_FALSE(c.IsMissing(0));
  EXPECT_TRUE(c.IsMissing(1));
  EXPECT_EQ(c.MissingCount(), 1u);
  EXPECT_EQ(c.DistinctCount(), 2u);
}

TEST(ColumnTest, TakeReordersRows) {
  Column c = Column::Categorical("x", {"a", "b", "c"});
  Column taken = c.Take({2, 0});
  ASSERT_EQ(taken.size(), 2u);
  EXPECT_EQ(taken.StringAt(0), "c");
  EXPECT_EQ(taken.StringAt(1), "a");
}

TEST(TableTest, AddColumnValidatesShape) {
  Table t("test");
  EXPECT_TRUE(t.AddColumn(Column::Numeric("a", {1, 2, 3})).ok());
  EXPECT_FALSE(t.AddColumn(Column::Numeric("b", {1, 2})).ok());
  EXPECT_FALSE(t.AddColumn(Column::Numeric("a", {4, 5, 6})).ok());
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.num_columns(), 1u);
}

TEST(TableTest, SplitPreservesRowCount) {
  Table t("test");
  std::vector<double> values(100);
  for (size_t i = 0; i < 100; ++i) values[i] = static_cast<double>(i);
  ASSERT_TRUE(t.AddColumn(Column::Numeric("a", values)).ok());
  auto split = SplitTable(t, 0.25, 7);
  EXPECT_EQ(split.train.num_rows(), 75u);
  EXPECT_EQ(split.test.num_rows(), 25u);
}

TEST(TableTest, KFoldBalanced) {
  auto folds = KFoldAssignment(10, 3, 1);
  std::vector<int> counts(3, 0);
  for (int f : folds) ++counts[f];
  EXPECT_EQ(counts[0] + counts[1] + counts[2], 10);
  for (int c : counts) EXPECT_GE(c, 3);
}

TEST(CsvTest, ParsesQuotedFields) {
  auto table = ReadCsvText(
      "name,score,notes\n"
      "alice,1.5,\"likes, commas\"\n"
      "bob,2.5,\"quote \"\" inside\"\n",
      CsvOptions{});
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->num_rows(), 2u);
  EXPECT_EQ(table->num_columns(), 3u);
  EXPECT_EQ(table->column(2).StringAt(0), "likes, commas");
  EXPECT_EQ(table->column(2).StringAt(1), "quote \" inside");
}

TEST(CsvTest, MissingValuesAndNaTokens) {
  auto table = ReadCsvText("a,b\n1,NA\n,2\n", CsvOptions{});
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE(table->column(1).IsMissing(0));
  EXPECT_TRUE(table->column(0).IsMissing(1));
}

TEST(CsvTest, RejectsRaggedRows) {
  EXPECT_FALSE(ReadCsvText("a,b\n1,2,3\n", CsvOptions{}).ok());
}

TEST(CsvTest, RoundTripThroughWriter) {
  Table t("rt");
  ASSERT_TRUE(t.AddColumn(Column::Numeric("x", {1.5, -2.0})).ok());
  ASSERT_TRUE(t.AddColumn(
      Column::Categorical("label", {"a,with comma", "plain"})).ok());
  std::string text = WriteCsvText(t);
  auto parsed = ReadCsvText(text, CsvOptions{});
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(InferColumnTypes(&*parsed).ok());
  EXPECT_EQ(parsed->column(0).type(), ColumnType::kNumeric);
  EXPECT_DOUBLE_EQ(parsed->column(0).NumericAt(0), 1.5);
  EXPECT_EQ(parsed->column(1).StringAt(0), "a,with comma");
}

TEST(TypeInferenceTest, DetectsNumericCategoricalText) {
  Table t("ti");
  std::vector<std::string> nums, cats, texts;
  for (int i = 0; i < 50; ++i) {
    nums.push_back(std::to_string(i * 1.5));
    cats.push_back(i % 3 == 0 ? "red" : (i % 3 == 1 ? "green" : "blue"));
    texts.push_back("some much longer free text value number " +
                    std::to_string(i));
  }
  ASSERT_TRUE(t.AddColumn(Column::Categorical("n", nums)).ok());
  ASSERT_TRUE(t.AddColumn(Column::Categorical("c", cats)).ok());
  ASSERT_TRUE(t.AddColumn(Column::Categorical("t", texts)).ok());
  ASSERT_TRUE(InferColumnTypes(&t).ok());
  EXPECT_EQ(t.column(0).type(), ColumnType::kNumeric);
  EXPECT_EQ(t.column(1).type(), ColumnType::kCategorical);
  EXPECT_EQ(t.column(2).type(), ColumnType::kText);
}

TEST(TypeInferenceTest, TaskDetection) {
  Table cls("cls");
  std::vector<std::string> labels;
  std::vector<double> values;
  for (int i = 0; i < 60; ++i) {
    labels.push_back(i % 2 == 0 ? "yes" : "no");
    values.push_back(i * 0.37);
  }
  ASSERT_TRUE(cls.AddColumn(Column::Categorical("y", labels)).ok());
  cls.set_target_name("y");
  auto task = DetectTask(cls);
  ASSERT_TRUE(task.ok());
  EXPECT_EQ(*task, TaskType::kBinaryClassification);

  Table reg("reg");
  ASSERT_TRUE(reg.AddColumn(Column::Numeric("y", values)).ok());
  reg.set_target_name("y");
  task = DetectTask(reg);
  ASSERT_TRUE(task.ok());
  EXPECT_EQ(*task, TaskType::kRegression);

  // Small-integer numeric target -> classification.
  Table int_cls("int_cls");
  std::vector<double> int_labels;
  for (int i = 0; i < 60; ++i) int_labels.push_back(i % 3);
  ASSERT_TRUE(int_cls.AddColumn(Column::Numeric("y", int_labels)).ok());
  int_cls.set_target_name("y");
  task = DetectTask(int_cls);
  ASSERT_TRUE(task.ok());
  EXPECT_EQ(*task, TaskType::kMultiClassification);
}

TEST(SyntheticTest, ShapeMatchesSpec) {
  DatasetSpec spec;
  spec.name = "shape_test";
  spec.rows = 120;
  spec.num_numeric = 5;
  spec.num_categorical = 3;
  spec.num_text = 1;
  spec.num_classes = 3;
  spec.task = TaskType::kMultiClassification;
  Table t = GenerateDataset(spec);
  EXPECT_EQ(t.num_rows(), 120u);
  EXPECT_EQ(t.num_columns(), 10u);  // 5 + 3 + 1 + target
  EXPECT_EQ(t.target_name(), "target");
  EXPECT_EQ(t.CountType(ColumnType::kNumeric), 5u);
  EXPECT_EQ(t.CountType(ColumnType::kCategorical), 3u);
  EXPECT_EQ(t.CountType(ColumnType::kText), 1u);
  auto target = t.TargetColumn();
  ASSERT_TRUE(target.ok());
  EXPECT_LE((*target)->DistinctCount(), 3u);
}

TEST(SyntheticTest, DeterministicForSameSeed) {
  DatasetSpec spec;
  spec.name = "det";
  spec.rows = 50;
  spec.seed = 99;
  Table a = GenerateDataset(spec);
  Table b = GenerateDataset(spec);
  for (size_t c = 0; c < a.num_columns(); ++c) {
    if (a.column(c).type() != ColumnType::kNumeric) continue;
    for (size_t r = 0; r < a.num_rows(); ++r) {
      if (a.column(c).IsMissing(r)) continue;
      EXPECT_DOUBLE_EQ(a.column(c).NumericAt(r), b.column(c).NumericAt(r));
    }
  }
}

TEST(SyntheticTest, RegressionTargetIsNumeric) {
  DatasetSpec spec;
  spec.name = "reg";
  spec.task = TaskType::kRegression;
  spec.family = ConceptFamily::kLinear;
  Table t = GenerateDataset(spec);
  auto target = t.TargetColumn();
  ASSERT_TRUE(target.ok());
  EXPECT_EQ((*target)->type(), ColumnType::kNumeric);
}

TEST(SyntheticTest, TextFamilyInjectsClassKeywords) {
  DatasetSpec spec;
  spec.name = "text";
  spec.family = ConceptFamily::kText;
  spec.num_text = 1;
  spec.num_classes = 3;
  spec.task = TaskType::kMultiClassification;
  Table t = GenerateDataset(spec);
  // Find the text column and check topic keywords appear.
  bool found_keyword = false;
  for (size_t c = 0; c < t.num_columns(); ++c) {
    if (t.column(c).type() != ColumnType::kText) continue;
    for (size_t r = 0; r < t.num_rows() && !found_keyword; ++r) {
      if (t.column(c).IsMissing(r)) continue;
      if (t.column(c).StringAt(r).find("topic") != std::string::npos) {
        found_keyword = true;
      }
    }
  }
  EXPECT_TRUE(found_keyword);
}

TEST(BenchmarkRegistryTest, Has77DatasetsWithTable1Counts) {
  BenchmarkRegistry registry;
  EXPECT_EQ(registry.eval_specs().size(), 77u);
  int automl = 0, pmlb = 0, openml = 0, kaggle = 0;
  int binary = 0, multi = 0, regression = 0;
  for (const DatasetSpec& spec : registry.eval_specs()) {
    if (spec.source == "AutoML") ++automl;
    if (spec.source == "PMLB") ++pmlb;
    if (spec.source == "OpenML") ++openml;
    if (spec.source == "Kaggle") ++kaggle;
    if (spec.task == TaskType::kBinaryClassification) ++binary;
    if (spec.task == TaskType::kMultiClassification) ++multi;
    if (spec.task == TaskType::kRegression) ++regression;
  }
  // Table 1 of the paper.
  EXPECT_EQ(automl, 39);
  EXPECT_EQ(pmlb, 23);
  EXPECT_EQ(openml, 9);
  EXPECT_EQ(kaggle, 6);
  EXPECT_EQ(binary, 35);
  EXPECT_EQ(multi, 26);
  EXPECT_EQ(regression, 16);
}

TEST(BenchmarkRegistryTest, TrivialSubsetMatchesPaper) {
  BenchmarkRegistry registry;
  auto trivial = registry.TrivialSubset();
  ASSERT_EQ(trivial.size(), 5u);
  EXPECT_EQ(trivial[0].name, "kr-vs-kp");
  int binary = 0, multi = 0;
  for (const auto& spec : trivial) {
    if (spec.task == TaskType::kBinaryClassification) ++binary;
    if (spec.task == TaskType::kMultiClassification) ++multi;
  }
  // Paper: "1 binary and 4 multi-class". nomao is binary as well in our
  // registry (it is binary in Table 4), kr-vs-kp binary too.
  EXPECT_EQ(binary + multi, 5);
}

TEST(BenchmarkRegistryTest, TrainingSpecsCoverEvalCombos) {
  BenchmarkRegistry registry;
  auto training = registry.TrainingSpecs();
  EXPECT_GE(training.size(), 80u);
  for (const DatasetSpec& eval : registry.eval_specs()) {
    bool covered = false;
    for (const DatasetSpec& train : training) {
      if (train.family == eval.family && train.domain == eval.domain &&
          train.task == eval.task) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << "no training dataset for " << eval.name;
  }
}

TEST(BenchmarkRegistryTest, Kaggle38HasAllDomains) {
  BenchmarkRegistry registry;
  auto specs = registry.Kaggle38Specs();
  ASSERT_EQ(specs.size(), 38u);
  std::set<std::string> domains;
  for (const auto& spec : specs) domains.insert(DomainName(spec.domain));
  EXPECT_GE(domains.size(), 8u);
}

TEST(BenchmarkRegistryTest, FindByName) {
  BenchmarkRegistry registry;
  auto spec = registry.Find("numerai28.6");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->family, ConceptFamily::kNoise);
  EXPECT_FALSE(registry.Find("not-a-dataset").ok());
}

}  // namespace
}  // namespace kgpip
