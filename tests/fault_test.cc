#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>

#include "core/kgpip.h"
#include "data/benchmark_registry.h"
#include "data/synthetic.h"
#include "hpo/optimizer.h"
#include "hpo/trial_guard.h"
#include "ml/learner.h"
#include "util/fault.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace kgpip {
namespace {

Table MakeTable(uint64_t seed, int rows = 150) {
  DatasetSpec spec;
  spec.name = "fault_ds";
  spec.family = ConceptFamily::kLinear;
  spec.rows = rows;
  spec.seed = seed;
  return GenerateDataset(spec);
}

Result<hpo::TrialEvaluator> MakeEvaluator(const Table& table) {
  return hpo::TrialEvaluator::Create(
      table, TaskType::kBinaryClassification, 0.25, 3);
}

// ---------------------------------------------------------------------------
// FaultInjector

TEST(FaultInjectorTest, InactiveWithoutScope) {
  EXPECT_EQ(util::FaultInjector::Active(), nullptr);
  {
    util::ScopedFaultInjection scope(util::FaultConfig{});
    EXPECT_EQ(util::FaultInjector::Active(), &scope.injector());
  }
  EXPECT_EQ(util::FaultInjector::Active(), nullptr);
}

TEST(FaultInjectorTest, DeterministicForFixedSeed) {
  util::FaultConfig config;
  config.seed = 7;
  config.evaluator_error_rate = 0.5;
  auto draw = [&config]() {
    std::vector<bool> out;
    util::FaultInjector injector(config);
    for (int i = 0; i < 64; ++i) {
      out.push_back(injector.EvaluatorFault("learner").has_value());
    }
    return out;
  };
  std::vector<bool> a = draw();
  EXPECT_EQ(a, draw());
  // A 50% rate must actually produce both outcomes.
  EXPECT_NE(std::count(a.begin(), a.end(), true), 0);
  EXPECT_NE(std::count(a.begin(), a.end(), true), 64);

  // A different seed yields a different sequence.
  config.seed = 8;
  EXPECT_NE(a, draw());
}

TEST(FaultInjectorTest, AlwaysFailLearnersAlwaysFail) {
  util::FaultConfig config;
  config.fail_learners = {"knn"};
  util::FaultInjector injector(config);
  for (int i = 0; i < 8; ++i) {
    auto fault = injector.EvaluatorFault("knn");
    ASSERT_TRUE(fault.has_value());
    EXPECT_EQ(fault->code(), StatusCode::kInternal);
  }
  EXPECT_FALSE(injector.EvaluatorFault("ridge").has_value());
}

TEST(FaultInjectorTest, CorruptsArtifactBytes) {
  util::FaultConfig config;
  config.corrupt_byte_stride = 4;
  util::FaultInjector injector(config);
  std::string payload(16, 'a');
  std::string original = payload;
  injector.CorruptArtifact(&payload);
  EXPECT_NE(payload, original);
  EXPECT_EQ(injector.counters().corrupted_bytes, 4);
}

TEST(FaultInjectorTest, ScopeIsVisibleInsideThreadPoolLanes) {
  // Fault sites inside ParallelFor bodies run on pool worker threads;
  // they must observe the scope installed by the submitting thread, and
  // the shared decision state must stay coherent under that parallelism.
  util::FaultConfig config;
  config.seed = 23;
  config.nan_score_rate = 1.0;
  util::ScopedFaultInjection scope(config);

  constexpr size_t kItems = 512;
  std::atomic<int> seen_active{0};
  std::atomic<int> injected{0};
  util::ThreadPool::Global().ParallelFor(kItems, [&](size_t /*item*/) {
    util::FaultInjector* active = util::FaultInjector::Active();
    if (active == nullptr) return;
    seen_active.fetch_add(1, std::memory_order_relaxed);
    if (active->InjectNanScore("pool_lane")) {
      injected.fetch_add(1, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(seen_active.load(), static_cast<int>(kItems))
      << "a pool lane failed to observe the active injection scope";
  EXPECT_EQ(injected.load(), static_cast<int>(kItems));
  EXPECT_EQ(scope.injector().counters().nan_scores,
            static_cast<int>(kItems));
}

TEST(FaultInjectorTest, ParallelDecisionMultisetMatchesSerial) {
  // Under races only the assignment of call indices to callers may vary
  // — the multiset of decisions for a (site, key) is fixed by the seed.
  util::FaultConfig config;
  config.seed = 31;
  config.nan_score_rate = 0.5;
  constexpr size_t kItems = 256;

  int serial_hits = 0;
  {
    util::FaultInjector injector(config);
    for (size_t i = 0; i < kItems; ++i) {
      if (injector.InjectNanScore("k")) ++serial_hits;
    }
  }
  std::atomic<int> parallel_hits{0};
  {
    util::ScopedFaultInjection scope(config);
    util::ThreadPool::Global().ParallelFor(kItems, [&](size_t /*item*/) {
      if (util::FaultInjector::Active()->InjectNanScore("k")) {
        parallel_hits.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  EXPECT_EQ(parallel_hits.load(), serial_hits);
  EXPECT_NE(serial_hits, 0);
  EXPECT_NE(serial_hits, static_cast<int>(kItems));
}

// ---------------------------------------------------------------------------
// Budget remainder distribution (satellite fix)

TEST(BudgetTest, SplitRemainingDistributesRemainder) {
  hpo::Budget budget(10, 1e9);
  // Ceiling division: the first slice carries the remainder trial
  // instead of dropping it (10 / 3 used to yield 3+3+3 = 9).
  EXPECT_EQ(budget.SplitRemaining(3).max_trials(), 4);

  // The Fit loop re-splits the remainder after each skeleton: no trial
  // is lost in total.
  int total = 0;
  for (int i = 0; i < 3; ++i) {
    hpo::Budget slice = budget.SplitRemaining(3 - i);
    while (slice.ConsumeTrial()) {
      ++total;
      budget.ConsumeTrial();
    }
  }
  EXPECT_EQ(total, 10);
}

// ---------------------------------------------------------------------------
// NaN-safe searchers (satellite fix)

TEST(NanGuardTest, CfoSearchNeverReturnsEmptyIncumbent) {
  hpo::CfoSearch search(hpo::SpaceForLearner("decision_tree"), 1);
  ml::HyperParams first = search.Propose();
  ASSERT_FALSE(first.numeric().empty() && first.strings().empty());
  search.Tell(first, std::nan(""));
  EXPECT_FALSE(search.has_best());
  // Even with only NaN scores told, the incumbent is the last-told
  // config, not an empty one.
  EXPECT_FALSE(search.best_config().numeric().empty() &&
               search.best_config().strings().empty());
  // Proposals from NaN-poisoned state still work.
  ml::HyperParams second = search.Propose();
  search.Tell(second, 0.4);
  EXPECT_TRUE(search.has_best());
  EXPECT_DOUBLE_EQ(search.best_score(), 0.4);
  // A later NaN cannot dethrone the finite best.
  search.Tell(search.Propose(), std::nan(""));
  EXPECT_DOUBLE_EQ(search.best_score(), 0.4);
  search.Tell(search.Propose(),
              std::numeric_limits<double>::infinity());
  EXPECT_DOUBLE_EQ(search.best_score(), 0.4);
}

TEST(NanGuardTest, RandomSearchNeverReturnsEmptyIncumbent) {
  hpo::RandomSearch search(hpo::SpaceForLearner("decision_tree"), 1);
  ml::HyperParams first = search.Propose();
  search.Tell(first, std::nan(""));
  EXPECT_FALSE(search.has_best());
  EXPECT_FALSE(search.best_config().numeric().empty() &&
               search.best_config().strings().empty());
  ml::HyperParams second = search.Propose();
  search.Tell(second, 0.25);
  EXPECT_DOUBLE_EQ(search.best_score(), 0.25);
  search.Tell(search.Propose(), std::nan(""));
  EXPECT_DOUBLE_EQ(search.best_score(), 0.25);
}

// ---------------------------------------------------------------------------
// TrialGuard

TEST(TrialGuardTest, QuarantinesInjectedNanScores) {
  Table table = MakeTable(3);
  auto evaluator = MakeEvaluator(table);
  ASSERT_TRUE(evaluator.ok());
  util::FaultConfig config;
  config.nan_score_rate = 1.0;
  util::ScopedFaultInjection scope(config);
  hpo::TrialGuardOptions options;
  options.circuit_breaker_threshold = 0;  // isolate the quarantine path
  hpo::TrialGuard guard(&*evaluator, options);
  ml::PipelineSpec spec;
  spec.learner = "decision_tree";
  for (int i = 0; i < 5; ++i) {
    hpo::GuardedTrial trial = guard.Evaluate(spec, 100 + i, "g");
    EXPECT_FALSE(trial.ok());
    EXPECT_EQ(trial.failure, hpo::TrialFailure::kNanScore);
  }
  EXPECT_EQ(guard.report().quarantined_scores, 5);
  EXPECT_EQ(guard.report().failures_by_code[StatusCode::kOutOfRange], 5);
  // The quarantined scores were recorded as failures, not NaN, so the
  // evaluator history stays finite.
  for (const hpo::TrialRecord& record : evaluator->history()) {
    EXPECT_TRUE(std::isfinite(record.score));
  }
}

TEST(TrialGuardTest, RetriesTransientFailures) {
  Table table = MakeTable(4);
  auto evaluator = MakeEvaluator(table);
  ASSERT_TRUE(evaluator.ok());
  util::FaultConfig config;
  config.seed = 11;
  config.resource_exhausted_rate = 0.6;
  util::ScopedFaultInjection scope(config);
  hpo::TrialGuardOptions options;
  options.max_retries = 4;
  options.circuit_breaker_threshold = 0;
  hpo::TrialGuard guard(&*evaluator, options);
  ml::PipelineSpec spec;
  spec.learner = "decision_tree";
  int successes = 0;
  for (int i = 0; i < 10; ++i) {
    hpo::GuardedTrial trial = guard.Evaluate(spec, 200 + i, "g");
    if (trial.ok()) ++successes;
  }
  // A 60% transient rate with 4 retries still lands most trials.
  EXPECT_GE(successes, 5);
  EXPECT_GT(guard.report().total_retries, 0);
  EXPECT_GT(guard.report().simulated_backoff_seconds, 0.0);
}

TEST(TrialGuardTest, CircuitBreakerOpensAndRedistributes) {
  Table table = MakeTable(5);
  auto evaluator = MakeEvaluator(table);
  ASSERT_TRUE(evaluator.ok());
  util::FaultConfig config;
  config.fail_learners = {"decision_tree"};
  util::ScopedFaultInjection scope(config);
  hpo::TrialGuardOptions options;
  options.max_retries = 0;
  options.circuit_breaker_threshold = 3;
  hpo::TrialGuard guard(&*evaluator, options);
  ml::PipelineSpec spec;
  spec.learner = "decision_tree";
  for (int i = 0; i < 3; ++i) {
    hpo::GuardedTrial trial = guard.Evaluate(spec, 300 + i, "g");
    EXPECT_EQ(trial.failure, hpo::TrialFailure::kError);
    EXPECT_EQ(trial.code, StatusCode::kInternal);
  }
  EXPECT_TRUE(guard.CircuitOpen("g"));
  // Further trials are rejected without touching the evaluator.
  hpo::GuardedTrial rejected = guard.Evaluate(spec, 999, "g");
  EXPECT_EQ(rejected.failure, hpo::TrialFailure::kCircuitOpen);
  guard.NoteRedistribution("g", 5);

  const hpo::SkeletonReport* report = guard.report().Find("g");
  ASSERT_NE(report, nullptr);
  EXPECT_TRUE(report->abandoned);
  EXPECT_EQ(report->trials, 3);  // the rejected trial does not count
  EXPECT_EQ(report->failures, 3);
  EXPECT_EQ(report->redistributed_trials, 5);
  EXPECT_EQ(guard.report().circuit_breaker_trips, 1);
  // An unrelated group is unaffected.
  EXPECT_FALSE(guard.CircuitOpen("other"));
}

TEST(TrialGuardTest, DeadlineTimesOutSlowTrials) {
  Table table = MakeTable(6);
  auto evaluator = MakeEvaluator(table);
  ASSERT_TRUE(evaluator.ok());
  util::FaultConfig config;
  config.slow_trial_rate = 1.0;
  config.slow_trial_seconds = 10.0;
  util::ScopedFaultInjection scope(config);
  hpo::TrialGuardOptions options;
  options.trial_deadline_seconds = 1.0;
  hpo::TrialGuard guard(&*evaluator, options);
  ml::PipelineSpec spec;
  spec.learner = "decision_tree";
  hpo::GuardedTrial trial = guard.Evaluate(spec, 1, "g");
  EXPECT_EQ(trial.failure, hpo::TrialFailure::kTimeout);
  EXPECT_EQ(guard.report().timeouts, 1);
}

TEST(TrialGuardTest, ReportJsonRoundsUpTheTaxonomy) {
  hpo::RunReport report;
  hpo::SkeletonReport* group = report.FindOrAdd("skeleton_a");
  group->trials = 4;
  group->failures = 2;
  group->abandoned = true;
  report.failures_by_code[StatusCode::kInternal] = 2;
  report.total_trials = 4;
  report.total_failures = 2;
  report.fallback_portfolio = true;
  Json json = report.ToJson();
  EXPECT_EQ(json.Get("total_trials").AsInt(), 4);
  EXPECT_TRUE(json.Get("fallback_portfolio").AsBool());
  EXPECT_EQ(json.Get("failures_by_code").Get("INTERNAL").AsInt(), 2);
  ASSERT_EQ(json.Get("skeletons").size(), 1u);
  EXPECT_TRUE(json.Get("skeletons").at(0).Get("abandoned").AsBool());
  EXPECT_FALSE(report.Summary().empty());
}

// ---------------------------------------------------------------------------
// Graceful degradation in Fit

TEST(DegradationTest, FallbackPortfolioFiltersByTask) {
  auto classification =
      core::FallbackPortfolio(TaskType::kBinaryClassification, 4);
  ASSERT_EQ(classification.size(), 4u);
  for (const auto& s : classification) {
    EXPECT_TRUE(ml::LearnerSupports(s.spec.learner,
                                    TaskType::kBinaryClassification));
  }
  auto regression = core::FallbackPortfolio(TaskType::kRegression, 100);
  ASSERT_GE(regression.size(), 3u);
  for (const auto& s : regression) {
    EXPECT_TRUE(ml::LearnerSupports(s.spec.learner, TaskType::kRegression));
  }
}

TEST(DegradationTest, UntrainedFitFallsBackToPortfolio) {
  // Skeleton prediction cannot work before Train; Fit must degrade to
  // the static portfolio instead of erroring.
  core::Kgpip fresh;
  Table table = MakeTable(9, 200);
  auto split = SplitTable(table, 0.25, 2);
  auto result = fresh.Fit(split.train, TaskType::kBinaryClassification,
                          hpo::Budget(12, 1e9), 5);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->report.fallback_portfolio);
  EXPECT_FALSE(result->best_spec.learner.empty());
  EXPECT_GT(result->report.total_trials, 0);
  auto score = result->fitted.ScoreTable(split.test);
  ASSERT_TRUE(score.ok());
  EXPECT_GT(*score, 0.5);
}

// ---------------------------------------------------------------------------
// Artifact checksum (satellite fix) — header-level failures need no
// trained model.

TEST(ArtifactTest, TruncatedArtifactReportsByteOffsets) {
  const std::string path = "/tmp/kgpip_fault_truncated.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "KGPIP1 0123456789abcdef 400\n{\"store\"";
  }
  core::Kgpip kgpip;
  Status status = kgpip.LoadFile(path);
  EXPECT_EQ(status.code(), StatusCode::kParseError);
  EXPECT_TRUE(Contains(status.message(), "truncated"));
  EXPECT_TRUE(Contains(status.message(), "400"));
  std::remove(path.c_str());
}

TEST(ArtifactTest, ChecksumMismatchReportsByteRange) {
  const std::string path = "/tmp/kgpip_fault_checksum.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "KGPIP1 0000000000000000 2\n{}";
  }
  core::Kgpip kgpip;
  Status status = kgpip.LoadFile(path);
  EXPECT_EQ(status.code(), StatusCode::kParseError);
  EXPECT_TRUE(Contains(status.message(), "checksum mismatch"));
  std::remove(path.c_str());
}

TEST(ArtifactTest, LegacyPayloadWithBadJsonIsAParseError) {
  const std::string path = "/tmp/kgpip_fault_legacy.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "this was never json";
  }
  core::Kgpip kgpip;
  Status status = kgpip.LoadFile(path);
  EXPECT_EQ(status.code(), StatusCode::kParseError);
  EXPECT_TRUE(Contains(status.message(), "JSON"));
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// End-to-end: a trained KGpip under injected faults.

class FaultKgpipFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    BenchmarkRegistry registry;
    auto specs = registry.TrainingSpecs();
    std::vector<DatasetSpec> chosen;
    for (const auto& spec : specs) {
      if (spec.task == TaskType::kRegression) continue;
      chosen.push_back(spec);
      if (chosen.size() >= 8) break;
    }
    core::KgpipConfig config;
    config.top_k = 3;
    config.generator_epochs = 6;
    kgpip_ = new core::Kgpip(config);
    codegraph::CorpusOptions corpus;
    corpus.pipelines_per_dataset = 6;
    corpus.noise_scripts_per_dataset = 1;
    auto status = kgpip_->Train(chosen, corpus, 11);
    ASSERT_TRUE(status.ok()) << status.ToString();
  }
  static void TearDownTestSuite() {
    delete kgpip_;
    kgpip_ = nullptr;
  }

  static core::Kgpip* kgpip_;
};

core::Kgpip* FaultKgpipFixture::kgpip_ = nullptr;

TEST_F(FaultKgpipFixture, SaveLoadRoundTripsWithChecksumHeader) {
  const std::string path = "/tmp/kgpip_fault_roundtrip.bin";
  ASSERT_TRUE(kgpip_->SaveFile(path).ok());
  {
    std::ifstream in(path, std::ios::binary);
    std::string magic(7, '\0');
    in.read(magic.data(), 7);
    EXPECT_EQ(magic, "KGPIP1 ");
  }
  core::Kgpip reloaded(kgpip_->config());
  ASSERT_TRUE(reloaded.LoadFile(path).ok());
  EXPECT_TRUE(reloaded.trained());
  EXPECT_EQ(reloaded.store().NumPipelines(),
            kgpip_->store().NumPipelines());
  std::remove(path.c_str());
}

TEST_F(FaultKgpipFixture, InjectedArtifactCorruptionIsDetectedOnLoad) {
  const std::string path = "/tmp/kgpip_fault_corrupt.bin";
  {
    util::FaultConfig config;
    config.corrupt_byte_stride = 64;
    util::ScopedFaultInjection scope(config);
    ASSERT_TRUE(kgpip_->SaveFile(path).ok());
    EXPECT_GT(scope.injector().counters().corrupted_bytes, 0);
  }
  core::Kgpip broken(kgpip_->config());
  Status status = broken.LoadFile(path);
  EXPECT_EQ(status.code(), StatusCode::kParseError);
  EXPECT_TRUE(Contains(status.message(), "checksum mismatch"))
      << status.ToString();
  EXPECT_FALSE(broken.trained());
  std::remove(path.c_str());
}

TEST_F(FaultKgpipFixture, FitSurvivesInjectedFaultsDeterministically) {
  Table table = MakeTable(21, 260);
  auto split = SplitTable(table, 0.25, 4);
  const uint64_t fit_seed = 17;
  // Fit re-predicts with the same seed, so this preview tells us which
  // skeleton to sabotage.
  auto predicted = kgpip_->PredictSkeletons(
      split.train, TaskType::kBinaryClassification, fit_seed);
  ASSERT_TRUE(predicted.ok()) << predicted.status().ToString();
  const std::string victim = (*predicted)[0].spec.learner;

  auto run = [&]() {
    util::FaultConfig config;
    config.seed = 99;
    config.evaluator_error_rate = 0.3;  // 30% trial failure rate
    config.fail_learners = {victim};    // one always-failing skeleton
    util::ScopedFaultInjection scope(config);
    return kgpip_->Fit(split.train, TaskType::kBinaryClassification,
                       hpo::Budget(30, 1e9), fit_seed);
  };

  auto first = run();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first->best_spec.learner.empty());
  EXPECT_NE(first->best_spec.learner, victim);
  EXPECT_GT(first->report.total_failures, 0);

  // The always-failing skeleton tripped its circuit breaker and released
  // the rest of its slice for redistribution.
  bool found_abandoned = false;
  for (const hpo::SkeletonReport& s : first->report.skeletons) {
    if (s.abandoned && Contains(s.key, victim)) {
      found_abandoned = true;
      EXPECT_GT(s.redistributed_trials, 0) << s.key;
    }
  }
  EXPECT_TRUE(found_abandoned)
      << "no abandoned skeleton for '" << victim << "' in "
      << first->report.ToJson().Dump();

  // Determinism: an identical seed and fault config reproduces the run
  // byte-for-byte. The stage profile is the report's one wall-clock
  // field, so it is cleared before comparing.
  auto second = run();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(first->best_spec.ToString(), second->best_spec.ToString());
  EXPECT_EQ(first->trials, second->trials);
  hpo::RunReport first_report = first->report;
  hpo::RunReport second_report = second->report;
  first_report.stage_profile = obs::StageProfile();
  second_report.stage_profile = obs::StageProfile();
  EXPECT_EQ(first_report.ToJson().Dump(), second_report.ToJson().Dump());
}

}  // namespace
}  // namespace kgpip
