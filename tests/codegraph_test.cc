#include <gtest/gtest.h>

#include "codegraph/analysis/verifier.h"
#include "codegraph/analyzer.h"
#include "data/benchmark_registry.h"
#include "codegraph/corpus.h"
#include "codegraph/ml_api.h"
#include "codegraph/python_ast.h"
#include "graph4ml/filter.h"
#include "graph4ml/graph4ml.h"
#include "graph4ml/vocab.h"

namespace kgpip {
namespace {

/// Structural invariants are checked after every AnalyzeScript in this
/// suite, regardless of build type.
struct EnableVerifier {
  EnableVerifier() {
    codegraph::analysis::CodeGraphVerifier::set_enabled(true);
  }
} enable_verifier_;

using codegraph::AnalyzeScript;
using codegraph::AnalyzerOptions;
using codegraph::CorpusGenerator;
using codegraph::CorpusOptions;
using codegraph::NodeKind;
using codegraph::ParsePython;

constexpr char kExampleScript[] = R"(import pandas as pd
from sklearn.model_selection import train_test_split
from sklearn import svm

df = pd.read_csv('example.csv')
df_train, df_test = train_test_split(df)
X = df_train['X']
model = svm.SVC()
model.fit(X, df_train['Y'])
)";

TEST(PythonParserTest, ParsesFigure2Example) {
  auto module = ParsePython(kExampleScript);
  ASSERT_TRUE(module.ok()) << module.status().ToString();
  EXPECT_EQ(module->statements.size(), 8u);
}

TEST(PythonParserTest, ParsesControlFlowAndKwargs) {
  auto module = ParsePython(
      "import pandas as pd\n"
      "df = pd.read_csv('x.csv')\n"
      "X = df.drop(columns=['target'])\n"
      "for col in df.columns:\n"
      "    print(df[col].nunique())\n"
      "if X.shape:\n"
      "    print('ok')\n"
      "else:\n"
      "    print('no')\n");
  ASSERT_TRUE(module.ok()) << module.status().ToString();
  EXPECT_EQ(module->statements.size(), 5u);
}

TEST(PythonParserTest, ReportsSyntaxErrors) {
  EXPECT_FALSE(ParsePython("x = (1\n").ok());
  EXPECT_FALSE(ParsePython("x = 'unterminated\n").ok());
  EXPECT_FALSE(ParsePython("for x y:\n    pass\n").ok());
}

TEST(AnalyzerTest, ResolvesQualifiedNamesThroughImportsAndTypes) {
  auto graph = AnalyzeScript("fig2.py", kExampleScript);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  // Expect resolved call labels from the Figure 2/3 example.
  bool saw_read_csv = false, saw_svc = false, saw_fit = false,
       saw_split = false;
  for (const auto& node : graph->nodes) {
    if (node.kind != NodeKind::kCall) continue;
    if (node.label == "pandas.read_csv") saw_read_csv = true;
    if (node.label == "sklearn.svm.SVC") saw_svc = true;
    if (node.label == "sklearn.svm.SVC.fit") saw_fit = true;
    if (node.label == "sklearn.model_selection.train_test_split") {
      saw_split = true;
    }
  }
  EXPECT_TRUE(saw_read_csv);
  EXPECT_TRUE(saw_svc);
  EXPECT_TRUE(saw_fit) << "receiver type tracking failed";
  EXPECT_TRUE(saw_split);
  EXPECT_EQ(codegraph::FindReadCsvArgument(*graph), "example.csv");
}

TEST(AnalyzerTest, EmitsAuxiliaryNoiseNodes) {
  auto graph = AnalyzeScript("fig2.py", kExampleScript);
  ASSERT_TRUE(graph.ok());
  EXPECT_GT(graph->CountNodes(NodeKind::kLocation), 0u);
  EXPECT_GT(graph->CountNodes(NodeKind::kParameter), 0u);
  // Raw graphs are far larger than the 5-call pipeline they contain.
  EXPECT_GT(graph->nodes.size(), 30u);
  EXPECT_GT(graph->edges.size(), 30u);
}

TEST(AnalyzerTest, DataFlowFollowsVariables) {
  auto graph = AnalyzeScript(
      "flow.py",
      "import pandas as pd\n"
      "df = pd.read_csv('a.csv')\n"
      "df2 = df.dropna()\n");
  ASSERT_TRUE(graph.ok());
  // The dropna call must have a data-flow edge from the read_csv call.
  int read_csv = -1, dropna = -1;
  for (size_t i = 0; i < graph->nodes.size(); ++i) {
    if (graph->nodes[i].label == "pandas.read_csv") {
      read_csv = static_cast<int>(i);
    }
    if (graph->nodes[i].label == "pandas.DataFrame.dropna") {
      dropna = static_cast<int>(i);
    }
  }
  ASSERT_GE(read_csv, 0);
  ASSERT_GE(dropna, 0);
  bool found_edge = false;
  for (const auto& edge : graph->edges) {
    if (edge.src == read_csv && edge.dst == dropna &&
        edge.kind == codegraph::EdgeKind::kDataFlow) {
      found_edge = true;
    }
  }
  EXPECT_TRUE(found_edge);
}

TEST(AnalyzerTest, FlowSensitiveTypesAcrossBranchReassignment) {
  // A branch reassigns the model variable; the join must see both
  // estimator types, so the fit call resolves against each candidate.
  // The historical "last assignment wins" map dropped the SVC arm.
  auto graph = AnalyzeScript(
      "branch.py",
      "from sklearn import svm\n"
      "from sklearn import tree\n"
      "if flag:\n"
      "    model = svm.SVC()\n"
      "else:\n"
      "    model = tree.DecisionTreeClassifier()\n"
      "model.fit(X, y)\n");
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  bool saw_svc_fit = false, saw_tree_fit = false;
  for (const auto& node : graph->nodes) {
    if (node.kind != NodeKind::kCall) continue;
    if (node.label == "sklearn.svm.SVC.fit") saw_svc_fit = true;
    if (node.label == "sklearn.tree.DecisionTreeClassifier.fit") {
      saw_tree_fit = true;
    }
  }
  EXPECT_TRUE(saw_svc_fit);
  EXPECT_TRUE(saw_tree_fit);
}

TEST(AnalyzerTest, SequentialReassignmentStaysFlowSensitive) {
  auto graph = AnalyzeScript(
      "reassign.py",
      "from sklearn import svm\n"
      "from sklearn import tree\n"
      "model = svm.SVC()\n"
      "model.fit(X, y)\n"
      "model = tree.DecisionTreeClassifier()\n"
      "model.predict(X)\n");
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  bool saw_svc_fit = false, saw_tree_predict = false,
       saw_tree_fit = false;
  for (const auto& node : graph->nodes) {
    if (node.kind != NodeKind::kCall) continue;
    if (node.label == "sklearn.svm.SVC.fit") saw_svc_fit = true;
    if (node.label == "sklearn.tree.DecisionTreeClassifier.fit") {
      saw_tree_fit = true;
    }
    if (node.label == "sklearn.tree.DecisionTreeClassifier.predict") {
      saw_tree_predict = true;
    }
  }
  EXPECT_TRUE(saw_svc_fit) << "fit before reassignment must see SVC";
  EXPECT_TRUE(saw_tree_predict);
  EXPECT_FALSE(saw_tree_fit)
      << "the later assignment must not leak backwards into fit";
}

TEST(AnalyzerTest, FindReadCsvArgumentResolvesAliasedImport) {
  auto graph = AnalyzeScript("alias.py",
                             "import pandas as p\n"
                             "df = p.read_csv('aliased.csv')\n");
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_EQ(codegraph::FindReadCsvArgument(*graph), "aliased.csv");
}

TEST(AnalyzerTest, FindReadCsvArgumentPrefersThePipelineFeed) {
  // The auxiliary test split is read first, but only train.csv flows
  // into the fitted pipeline; program order must not decide.
  auto graph = AnalyzeScript(
      "two_reads.py",
      "import pandas as pd\n"
      "from sklearn import svm\n"
      "meta = pd.read_csv('test.csv')\n"
      "df = pd.read_csv('train.csv')\n"
      "model = svm.SVC()\n"
      "model.fit(df, y)\n");
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_EQ(codegraph::FindReadCsvArgument(*graph), "train.csv");
}

TEST(MlApiTest, CanonicalizationAndReverseLookup) {
  bool is_estimator = false;
  EXPECT_EQ(codegraph::CanonicalizeMlCall("xgboost.XGBClassifier",
                                          &is_estimator),
            "xgboost");
  EXPECT_TRUE(is_estimator);
  EXPECT_EQ(codegraph::CanonicalizeMlCall("xgboost.XGBClassifier.fit",
                                          &is_estimator),
            "xgboost");
  EXPECT_EQ(codegraph::CanonicalizeMlCall(
                "sklearn.preprocessing.StandardScaler.fit_transform",
                &is_estimator),
            "standard_scaler");
  EXPECT_FALSE(is_estimator);
  EXPECT_EQ(codegraph::CanonicalizeMlCall("torch.nn.Linear", nullptr), "");
  // XGBClassifierFoo must not match via prefix.
  EXPECT_EQ(codegraph::CanonicalizeMlCall("xgboost.XGBClassifierFoo",
                                          nullptr),
            "");

  EXPECT_EQ(codegraph::PythonClassFor("xgboost", /*regression=*/true),
            "xgboost.XGBRegressor");
  EXPECT_EQ(codegraph::PythonClassFor("ridge", /*regression=*/true),
            "sklearn.linear_model.Ridge");
}

TEST(CorpusTest, GeneratedPipelinesParseAndAnalyze) {
  DatasetSpec spec;
  spec.name = "corpus_check";
  spec.family = ConceptFamily::kRules;
  spec.task = TaskType::kBinaryClassification;
  CorpusGenerator generator(CorpusOptions{});
  auto scripts = generator.GenerateForDataset(spec);
  ASSERT_EQ(scripts.size(), 20u);
  for (const auto& script : scripts) {
    auto graph = AnalyzeScript(script.name, script.text);
    ASSERT_TRUE(graph.ok()) << script.name << ": "
                            << graph.status().ToString() << "\n"
                            << script.text;
  }
}

TEST(FilterTest, ExtractsPipelineAndReducesGraph) {
  DatasetSpec spec;
  spec.name = "filter_check";
  spec.family = ConceptFamily::kLinear;
  spec.task = TaskType::kBinaryClassification;
  CorpusGenerator generator(CorpusOptions{});
  auto scripts = generator.GenerateForDataset(spec);
  graph4ml::FilterStats stats;
  size_t valid = 0;
  for (const auto& script : scripts) {
    auto graph = AnalyzeScript(script.name, script.text);
    ASSERT_TRUE(graph.ok());
    auto pipeline = graph4ml::FilterCodeGraph(*graph, script.dataset_name,
                                              &stats);
    if (!script.is_ml_pipeline) {
      EXPECT_FALSE(pipeline.valid()) << script.name;
      continue;
    }
    ASSERT_TRUE(pipeline.valid()) << script.name << "\n" << script.text;
    ++valid;
    EXPECT_EQ(pipeline.estimator, script.estimator);
    EXPECT_EQ(pipeline.transformers, script.transformers);
    EXPECT_EQ(pipeline.dataset_name, "filter_check");
    // Chain structure: dataset node first, estimator node last.
    EXPECT_EQ(pipeline.graph.node_types.front(),
              graph4ml::PipelineVocab::kDatasetType);
    EXPECT_EQ(pipeline.graph.num_edges(),
              pipeline.graph.num_nodes() - 1);
  }
  EXPECT_EQ(valid, 12u);
  // Paper §4.5.1: at least 96% fewer nodes and edges after filtering.
  EXPECT_GT(stats.NodeReduction(), 0.9);
  EXPECT_GT(stats.EdgeReduction(), 0.9);
}

TEST(Graph4MlTest, BuildLinksDatasetsAndSerializes) {
  BenchmarkRegistry registry;
  auto training = registry.TrainingSpecs();
  training.resize(6);
  CorpusOptions options;
  options.pipelines_per_dataset = 5;
  options.noise_scripts_per_dataset = 3;
  CorpusGenerator generator(options);
  auto scripts = generator.GenerateCorpus(training);

  graph4ml::Graph4Ml store;
  ASSERT_TRUE(store.Build(scripts).ok());
  EXPECT_EQ(store.scripts_analyzed(), scripts.size());
  EXPECT_EQ(store.NumPipelines(), 6u * 5u);
  EXPECT_EQ(store.NumDatasets(), 6u);
  for (const auto& spec : training) {
    EXPECT_EQ(store.PipelinesFor(spec.name).size(), 5u) << spec.name;
  }
  auto histogram = store.OpHistogram();
  EXPECT_FALSE(histogram.empty());

  // JSON round trip.
  auto reloaded = graph4ml::Graph4Ml::FromJson(store.ToJson());
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(reloaded->NumPipelines(), store.NumPipelines());
  EXPECT_EQ(reloaded->PipelinesFor(training[0].name).size(), 5u);
}

TEST(VocabTest, StableTypesAndEstimatorFlags) {
  const auto& vocab = graph4ml::PipelineVocab::Get();
  EXPECT_GT(vocab.size(), 15);
  EXPECT_EQ(vocab.TypeOf("<dataset>"), 0);
  EXPECT_EQ(vocab.TypeOf("read_csv"), 1);
  int xgb = vocab.TypeOf("xgboost");
  ASSERT_GE(xgb, 2);
  EXPECT_TRUE(vocab.IsEstimator(xgb));
  int scaler = vocab.TypeOf("standard_scaler");
  ASSERT_GE(scaler, 2);
  EXPECT_FALSE(vocab.IsEstimator(scaler));
  EXPECT_TRUE(vocab.IsTransformer(scaler));
  EXPECT_EQ(vocab.TypeOf("nonexistent"), -1);
}

}  // namespace
}  // namespace kgpip
