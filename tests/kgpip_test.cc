#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "automl/flaml_system.h"
#include "core/kgpip.h"
#include "data/benchmark_registry.h"
#include "obs/stage_profile.h"
#include "util/thread_pool.h"

namespace kgpip::core {
namespace {

/// Trains a small KGpip once for the whole suite (generator training is
/// the expensive part).
class KgpipFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    BenchmarkRegistry registry;
    auto specs = registry.TrainingSpecs();
    // A compact but family-diverse subset of the corpus datasets.
    std::vector<DatasetSpec> chosen;
    for (const auto& spec : specs) {
      if (spec.task == TaskType::kRegression) continue;
      chosen.push_back(spec);
      if (chosen.size() >= 16) break;
    }
    KgpipConfig config;
    config.top_k = 3;
    config.generator_epochs = 12;
    config.optimizer = "flaml";
    kgpip_ = new Kgpip(config);
    codegraph::CorpusOptions corpus;
    corpus.pipelines_per_dataset = 8;
    corpus.noise_scripts_per_dataset = 2;
    auto status = kgpip_->Train(chosen, corpus, 11);
    ASSERT_TRUE(status.ok()) << status.ToString();
  }
  static void TearDownTestSuite() {
    delete kgpip_;
    kgpip_ = nullptr;
  }

  static Kgpip* kgpip_;
};

Kgpip* KgpipFixture::kgpip_ = nullptr;

TEST_F(KgpipFixture, TrainedStateAndStore) {
  ASSERT_TRUE(kgpip_->trained());
  EXPECT_GT(kgpip_->store().NumPipelines(), 50u);
  EXPECT_EQ(kgpip_->store().NumDatasets(), 16u);
}

TEST_F(KgpipFixture, NearestDatasetFindsPlausibleNeighbour) {
  DatasetSpec spec;
  spec.name = "unseen_linear";
  spec.family = ConceptFamily::kLinear;
  spec.domain = Domain::kFinance;
  spec.rows = 250;
  Table table = GenerateDataset(spec);
  auto nearest = kgpip_->NearestDataset(table);
  ASSERT_TRUE(nearest.ok()) << nearest.status().ToString();
  EXPECT_GT(nearest->similarity, 0.5);
}

TEST_F(KgpipFixture, PredictSkeletonsIsFastAndValid) {
  DatasetSpec spec;
  spec.name = "unseen_rules";
  spec.family = ConceptFamily::kRules;
  spec.domain = Domain::kGames;
  spec.rows = 250;
  Table table = GenerateDataset(spec);
  Stopwatch watch;
  auto skeletons = kgpip_->PredictSkeletons(
      table, TaskType::kBinaryClassification, 3);
  ASSERT_TRUE(skeletons.ok()) << skeletons.status().ToString();
  // Paper: learner prediction is "almost instantaneous".
  EXPECT_LT(watch.ElapsedSeconds(), 2.0);
  ASSERT_LE(skeletons->size(), 3u);
  ASSERT_GE(skeletons->size(), 1u);
  for (const auto& s : *skeletons) {
    EXPECT_FALSE(s.spec.learner.empty());
    EXPECT_TRUE(ml::LearnerSupports(s.spec.learner,
                                    TaskType::kBinaryClassification));
    EXPECT_LE(s.log_prob, 0.0);
  }
  // Ranked by score.
  for (size_t i = 1; i < skeletons->size(); ++i) {
    EXPECT_GE((*skeletons)[i - 1].log_prob, (*skeletons)[i].log_prob);
  }
}

TEST_F(KgpipFixture, SkeletonsAreDeduplicated) {
  DatasetSpec spec;
  spec.name = "unseen_dedup";
  spec.family = ConceptFamily::kClusters;
  spec.domain = Domain::kVision;
  spec.rows = 250;
  Table table = GenerateDataset(spec);
  auto skeletons = kgpip_->PredictSkeletons(
      table, TaskType::kBinaryClassification, 5);
  ASSERT_TRUE(skeletons.ok());
  std::set<std::string> keys;
  for (const auto& s : *skeletons) {
    EXPECT_TRUE(keys.insert(s.spec.ToString()).second)
        << "duplicate skeleton " << s.spec.ToString();
  }
}

TEST_F(KgpipFixture, FitSplitsBudgetAndBeatsChance) {
  DatasetSpec spec;
  spec.name = "unseen_fit";
  spec.family = ConceptFamily::kLinear;
  spec.domain = Domain::kWeb;
  spec.rows = 320;
  spec.label_noise = 0.05;
  Table table = GenerateDataset(spec);
  auto split = SplitTable(table, 0.25, 9);
  auto result = kgpip_->Fit(split.train, TaskType::kBinaryClassification,
                            hpo::Budget(24, 1e9), 7);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_LE(result->trials, 24);
  EXPECT_GE(result->best_skeleton_rank, 1);
  EXPECT_LE(result->best_skeleton_rank,
            static_cast<int>(result->skeletons.size()));
  auto score = result->fitted.ScoreTable(split.test);
  ASSERT_TRUE(score.ok());
  EXPECT_GT(*score, 0.7);
}

TEST_F(KgpipFixture, ArtifactsJsonRoundTrip) {
  Json artifacts = kgpip_->ToJson();
  KgpipConfig config = kgpip_->config();
  Kgpip reloaded(config);
  auto status = reloaded.LoadJson(artifacts);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_TRUE(reloaded.trained());
  EXPECT_EQ(reloaded.store().NumPipelines(),
            kgpip_->store().NumPipelines());

  DatasetSpec spec;
  spec.name = "unseen_reload";
  spec.family = ConceptFamily::kRules;
  spec.rows = 200;
  Table table = GenerateDataset(spec);
  auto a = kgpip_->PredictSkeletons(table,
                                    TaskType::kBinaryClassification, 3);
  auto b = reloaded.PredictSkeletons(table,
                                     TaskType::kBinaryClassification, 3);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].spec.ToString(), (*b)[i].spec.ToString());
  }
}

TEST_F(KgpipFixture, UntrainedKgpipRefusesToPredict) {
  Kgpip fresh;
  DatasetSpec spec;
  spec.name = "x";
  spec.rows = 50;
  Table table = GenerateDataset(spec);
  EXPECT_FALSE(
      fresh.PredictSkeletons(table, TaskType::kBinaryClassification, 1)
          .ok());
  EXPECT_FALSE(fresh.NearestDataset(table).ok());
}

TEST(KgpipLintGateTest, RejectedSkeletonsConsumeNoTrialBudget) {
  // Four candidates, three of them invalid: the linter must drop the bad
  // ones before the (T - t) / K rule sees them, so the survivor gets the
  // whole trial pool. Works untrained — the gate is in the search phase.
  Kgpip fresh;
  DatasetSpec spec;
  spec.name = "lint_gate";
  spec.family = ConceptFamily::kLinear;
  spec.rows = 200;
  Table table = GenerateDataset(spec);

  std::vector<gen::ScoredSkeleton> candidates(4);
  candidates[0].spec.learner = "ridge";  // regression-only: task-mismatch
  candidates[0].log_prob = -0.5;
  candidates[1].spec.learner = "decision_tree";  // duplicate transformer
  candidates[1].spec.preprocessors = {"standard_scaler", "standard_scaler"};
  candidates[1].log_prob = -0.7;
  candidates[2].spec.learner = "not_a_learner";  // unknown op
  candidates[2].log_prob = -0.9;
  candidates[3].spec.learner = "decision_tree";  // the only valid one
  candidates[3].log_prob = -1.0;

  auto result = fresh.FitWithSkeletons(std::move(candidates), table,
                                       TaskType::kBinaryClassification,
                                       hpo::Budget(8, 1e9), 5);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  const hpo::RunReport& report = result->report;
  EXPECT_EQ(report.lint_rejected, 3);
  EXPECT_EQ(report.lint_rejected_by_code.size(), 3u);
  EXPECT_EQ(report.lint_rejected_by_code.at("lint.task-mismatch"), 1);
  EXPECT_EQ(report.lint_rejected_by_code.at("lint.duplicate-transformer"),
            1);
  EXPECT_EQ(report.lint_rejected_by_code.at("lint.unknown-op"), 1);
  EXPECT_NE(report.Summary().find("lint_rejected=3"), std::string::npos);

  // Only the survivor was searched: every trial belongs to it, and the
  // rejected candidates never appear in the result or the report.
  ASSERT_EQ(result->skeletons.size(), 1u);
  EXPECT_EQ(result->skeletons[0].learner, "decision_tree");
  EXPECT_EQ(result->best_spec.learner, "decision_tree");
  EXPECT_GT(result->trials, 0);
  EXPECT_LE(result->trials, 8);
  for (const std::string& learner : result->learner_sequence) {
    EXPECT_EQ(learner, "decision_tree");
  }
  for (const hpo::SkeletonReport& s : report.skeletons) {
    EXPECT_EQ(s.key.find("ridge"), std::string::npos);
    EXPECT_EQ(s.key.find("not_a_learner"), std::string::npos);
  }

  // Serialized report carries the counters for the bench harness.
  Json json = report.ToJson();
  EXPECT_EQ(json.Get("lint_rejected").AsInt(), 3);
}

TEST(KgpipLintGateTest, AllCandidatesRejectedFailsCleanly) {
  Kgpip fresh;
  DatasetSpec spec;
  spec.name = "lint_gate_empty";
  spec.rows = 120;
  Table table = GenerateDataset(spec);

  std::vector<gen::ScoredSkeleton> candidates(1);
  candidates[0].spec.learner = "not_a_learner";
  auto result = fresh.FitWithSkeletons(std::move(candidates), table,
                                       TaskType::kBinaryClassification,
                                       hpo::Budget(4, 1e9), 5);
  // The last-resort rung may still rescue the run; either way no trial
  // was spent on the rejected candidate.
  if (result.ok()) {
    EXPECT_EQ(result->report.lint_rejected, 1);
    EXPECT_TRUE(result->report.last_resort_pass);
  } else {
    EXPECT_FALSE(result.status().ok());
  }
}

TEST(KgpipDeterminismTest, TrainFitAndArtifactsAreIdenticalAcrossThreadCounts) {
  // The whole stack — corpus generation, mining, table embedding, index
  // build, batched generator training, HPO search — runs through the
  // thread pool. This is the end-to-end contract: the serialized
  // artifacts and the (timing-stripped) run report are byte-identical
  // whether the pool is inline or multi-threaded.
  BenchmarkRegistry registry;
  std::vector<DatasetSpec> chosen;
  for (const auto& spec : registry.TrainingSpecs()) {
    if (spec.task == TaskType::kRegression) continue;
    chosen.push_back(spec);
    if (chosen.size() >= 8) break;
  }
  DatasetSpec eval;
  eval.name = "determinism_eval";
  eval.family = ConceptFamily::kLinear;
  eval.domain = Domain::kWeb;
  eval.rows = 200;
  Table table = GenerateDataset(eval);

  auto run_once = [&]() -> std::string {
    KgpipConfig config;
    config.top_k = 2;
    config.generator_epochs = 4;
    config.candidate_samples = 8;
    Kgpip kgpip(config);
    codegraph::CorpusOptions corpus;
    corpus.pipelines_per_dataset = 6;
    corpus.noise_scripts_per_dataset = 2;
    Status status = kgpip.Train(chosen, corpus, 13);
    EXPECT_TRUE(status.ok()) << status.ToString();
    if (!status.ok()) return "train-failed";
    auto result = kgpip.Fit(table, TaskType::kBinaryClassification,
                            hpo::Budget(8, 1e9), 5);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    if (!result.ok()) return "fit-failed";
    hpo::RunReport report = result->report;
    // Stage timings are wall-clock and legitimately vary run to run;
    // everything else must match exactly.
    report.stage_profile = obs::StageProfile();
    return kgpip.ToJson().Dump() + "\n===\n" + report.ToJson().Dump() +
           "\n===\n" + result->best_spec.ToString();
  };

  util::ThreadPool::Configure(1);
  const std::string baseline = run_once();
  for (int threads : {2, 4}) {
    util::ThreadPool::Configure(threads);
    EXPECT_EQ(run_once(), baseline) << "divergence at " << threads
                                    << " threads";
  }
  util::ThreadPool::Configure(0);
}

TEST_F(KgpipFixture, DiversityAcrossRunsWithSameDataset) {
  // §4.5.3: different runs over the same dataset yield different (but
  // correlated) pipeline lists.
  DatasetSpec spec;
  spec.name = "unseen_diverse";
  spec.family = ConceptFamily::kInteractions;
  spec.domain = Domain::kPhysics;
  spec.rows = 250;
  Table table = GenerateDataset(spec);
  std::set<std::string> first_learners;
  for (uint64_t run = 1; run <= 6; ++run) {
    auto skeletons = kgpip_->PredictSkeletons(
        table, TaskType::kBinaryClassification, run * 101);
    ASSERT_TRUE(skeletons.ok());
    first_learners.insert((*skeletons)[0].spec.learner);
  }
  // Not necessarily all distinct, but not a single deterministic output
  // across six runs either would be typical; we only require the call to
  // be stochastic *somewhere* in the list.
  std::set<std::string> all_specs;
  for (uint64_t run = 1; run <= 6; ++run) {
    auto skeletons = kgpip_->PredictSkeletons(
        table, TaskType::kBinaryClassification, run * 37);
    for (const auto& s : *skeletons) all_specs.insert(s.spec.ToString());
  }
  EXPECT_GT(all_specs.size(), 3u) << "no diversity across runs";
}

TEST(KgpipSegmentSidecarTest, SidecarRoundTripCorruptionAndV0Fallback) {
  // An IVF-configured Kgpip writes a KGSEG1 sidecar next to the JSON
  // artifact; LoadFile must (a) use a clean sidecar, (b) reject a
  // corrupt one and rebuild from the JSON embeddings — repairing the
  // sidecar in place — and (c) rebuild silently when the sidecar is
  // absent (a v0 artifact).
  BenchmarkRegistry registry;
  auto specs = registry.TrainingSpecs();
  specs.resize(6);
  KgpipConfig config;
  config.generator_epochs = 4;
  config.index_cells = 4;
  config.index_nprobe = 2;
  Kgpip kgpip(config);
  codegraph::CorpusOptions corpus;
  corpus.pipelines_per_dataset = 4;
  corpus.noise_scripts_per_dataset = 1;
  ASSERT_TRUE(kgpip.Train(specs, corpus, 3).ok());
  ASSERT_EQ(kgpip.index().num_cells_built(), 4u);

  const std::string path = "/tmp/kgpip_sidecar_test.json";
  const std::string seg = path + ".kgseg";
  ASSERT_TRUE(kgpip.SaveFile(path).ok());
  {
    std::ifstream probe(seg, std::ios::binary);
    ASSERT_TRUE(probe.good()) << "SaveFile wrote no segment sidecar";
  }

  Kgpip reloaded(config);
  ASSERT_TRUE(reloaded.LoadFile(path).ok());
  EXPECT_EQ(reloaded.index().size(), kgpip.index().size());
  EXPECT_EQ(reloaded.index().num_cells_built(), 4u);

  // Flip one payload byte: checksum rejection, rebuild, in-place repair.
  {
    std::fstream f(seg, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(80);
    char byte = 0;
    f.get(byte);
    f.seekp(80);
    f.put(static_cast<char>(byte ^ 0x11));
  }
  Kgpip corrupted(config);
  ASSERT_TRUE(corrupted.LoadFile(path).ok());
  EXPECT_EQ(corrupted.index().size(), kgpip.index().size());
  EXPECT_EQ(corrupted.index().num_cells_built(), 4u);
  // The repaired sidecar now loads cleanly on its own.
  embed::SimIndex repaired(
      [&] {
        embed::SimIndex::Options options;
        options.num_cells = config.index_cells;
        return options;
      }());
  EXPECT_TRUE(repaired.LoadSegments(seg).ok());

  // v0 artifact: no sidecar at all — silent rebuild from embeddings.
  ASSERT_EQ(std::remove(seg.c_str()), 0);
  Kgpip v0(config);
  ASSERT_TRUE(v0.LoadFile(path).ok());
  EXPECT_EQ(v0.index().size(), kgpip.index().size());
  EXPECT_EQ(v0.index().num_cells_built(), 4u);

  std::remove(path.c_str());
  std::remove(seg.c_str());
}

}  // namespace
}  // namespace kgpip::core
