// Property-based tests: invariants that must hold across randomized
// sweeps of seeds / shapes, exercised with parameterized gtest.
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "data/csv.h"
#include "data/synthetic.h"
#include "data/type_inference.h"
#include "embed/embedder.h"
#include "gen/graph_generator.h"
#include "graph4ml/vocab.h"
#include "hpo/search_space.h"
#include "ml/featurizer.h"
#include "ml/learner.h"
#include "ml/metrics.h"
#include "util/json.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/stats.h"

namespace kgpip {
namespace {

// ---------------------------------------------------------------------
// CSV: write -> parse -> infer must reproduce the original table for any
// synthetic dataset shape.
class CsvRoundTripProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsvRoundTripProperty, WriteParseInferPreservesContent) {
  Rng rng(GetParam());
  DatasetSpec spec;
  spec.name = "csv_prop";
  spec.seed = GetParam();
  spec.rows = 40 + static_cast<int>(rng.UniformInt(120));
  spec.num_numeric = 1 + static_cast<int>(rng.UniformInt(6));
  spec.num_categorical = static_cast<int>(rng.UniformInt(4));
  spec.num_text = static_cast<int>(rng.UniformInt(2));
  spec.family = static_cast<ConceptFamily>(rng.UniformInt(7));
  spec.missing_fraction = 0.05;
  Table original = GenerateDataset(spec);

  auto parsed = ReadCsvText(WriteCsvText(original), CsvOptions{});
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  parsed->set_target_name(original.target_name());
  ASSERT_TRUE(InferColumnTypes(&*parsed).ok());

  ASSERT_EQ(parsed->num_rows(), original.num_rows());
  ASSERT_EQ(parsed->num_columns(), original.num_columns());
  for (size_t c = 0; c < original.num_columns(); ++c) {
    const Column& before = original.column(c);
    const Column& after = *&parsed->column(c);
    EXPECT_EQ(after.name(), before.name());
    for (size_t r = 0; r < original.num_rows(); ++r) {
      EXPECT_EQ(after.IsMissing(r), before.IsMissing(r))
          << before.name() << " row " << r;
      if (before.IsMissing(r)) continue;
      if (before.type() == ColumnType::kNumeric) {
        ASSERT_EQ(after.type(), ColumnType::kNumeric) << before.name();
        EXPECT_NEAR(after.NumericAt(r), before.NumericAt(r),
                    1e-6 * std::max(1.0, std::fabs(before.NumericAt(r))));
      } else {
        EXPECT_EQ(after.StringAt(r), before.StringAt(r));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvRoundTripProperty,
                         ::testing::Range<uint64_t>(1, 9));

// ---------------------------------------------------------------------
// Metrics invariants.
class MetricsProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MetricsProperty, BoundsAndPerfectScores) {
  Rng rng(GetParam());
  const int n = 120;
  const int classes = 2 + static_cast<int>(rng.UniformInt(5));
  std::vector<double> truth(n), pred(n);
  for (int i = 0; i < n; ++i) {
    truth[i] = static_cast<double>(rng.UniformInt(classes));
    pred[i] = static_cast<double>(rng.UniformInt(classes));
  }
  double f1 = ml::MacroF1(truth, pred, classes);
  EXPECT_GE(f1, 0.0);
  EXPECT_LE(f1, 1.0);
  EXPECT_DOUBLE_EQ(ml::MacroF1(truth, truth, classes), 1.0);
  double acc = ml::Accuracy(truth, pred);
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 1.0);

  std::vector<double> y(n), y_hat(n);
  for (int i = 0; i < n; ++i) {
    y[i] = rng.Normal() * 3.0;
    y_hat[i] = y[i] + rng.Normal();
  }
  double r2 = ml::R2Score(y, y_hat);
  EXPECT_LE(r2, 1.0);
  EXPECT_DOUBLE_EQ(ml::R2Score(y, y), 1.0);
  // MSE >= 0 and consistent with MAE bound: mse >= mae^2 (Jensen).
  double mse = ml::MeanSquaredError(y, y_hat);
  double mae = ml::MeanAbsoluteError(y, y_hat);
  EXPECT_GE(mse, mae * mae - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricsProperty,
                         ::testing::Range<uint64_t>(1, 9));

// ---------------------------------------------------------------------
// Learners: determinism under a fixed seed, predictions in label range.
struct LearnerProperty {
  const char* name;
  TaskType task;
};

class LearnerInvariantProperty
    : public ::testing::TestWithParam<LearnerProperty> {};

TEST_P(LearnerInvariantProperty, DeterministicAndInRange) {
  const LearnerProperty& param = GetParam();
  DatasetSpec spec;
  spec.name = "learner_prop";
  spec.rows = 150;
  spec.task = param.task;
  spec.num_classes = 3;
  spec.family = ConceptFamily::kRules;
  spec.task = param.task;
  Table table = GenerateDataset(spec);
  ml::Featurizer featurizer;
  ASSERT_TRUE(featurizer.Fit(table, param.task).ok());
  auto data = featurizer.Transform(table);
  ASSERT_TRUE(data.ok());

  auto fit_predict = [&](uint64_t seed) {
    auto learner =
        ml::CreateLearner(param.name, param.task, ml::HyperParams{}, seed);
    KGPIP_CHECK(learner.ok());
    KGPIP_CHECK((*learner)->Fit(*data).ok());
    return (*learner)->Predict(data->x);
  };
  std::vector<double> a = fit_predict(42);
  std::vector<double> b = fit_predict(42);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i], b[i]) << param.name << " not deterministic";
  }
  if (IsClassification(param.task)) {
    for (double v : a) {
      EXPECT_GE(v, 0.0);
      EXPECT_LT(v, data->num_classes);
      EXPECT_DOUBLE_EQ(v, std::round(v));
    }
  } else {
    double lo = *std::min_element(data->y.begin(), data->y.end());
    double hi = *std::max_element(data->y.begin(), data->y.end());
    double span = hi - lo;
    for (double v : a) {
      EXPECT_GE(v, lo - span);
      EXPECT_LE(v, hi + span);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllLearners, LearnerInvariantProperty,
    ::testing::Values(
        LearnerProperty{"logistic_regression",
                        TaskType::kMultiClassification},
        LearnerProperty{"linear_svm", TaskType::kMultiClassification},
        LearnerProperty{"gaussian_nb", TaskType::kMultiClassification},
        LearnerProperty{"knn", TaskType::kMultiClassification},
        LearnerProperty{"decision_tree", TaskType::kMultiClassification},
        LearnerProperty{"random_forest", TaskType::kMultiClassification},
        LearnerProperty{"extra_trees", TaskType::kMultiClassification},
        LearnerProperty{"xgboost", TaskType::kMultiClassification},
        LearnerProperty{"lgbm", TaskType::kRegression},
        LearnerProperty{"ridge", TaskType::kRegression},
        LearnerProperty{"lasso", TaskType::kRegression},
        LearnerProperty{"knn", TaskType::kRegression}),
    [](const ::testing::TestParamInfo<LearnerProperty>& info) {
      return std::string(info.param.name) + "_" +
             (info.param.task == TaskType::kRegression ? "reg" : "cls");
    });

// ---------------------------------------------------------------------
// Search-space sampling invariants over every registered learner.
class SearchSpaceProperty
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SearchSpaceProperty, AllLearnersSampleWithinBounds) {
  Rng rng(GetParam());
  for (const ml::LearnerInfo& info : ml::LearnerRegistry()) {
    hpo::SearchSpace space = hpo::SpaceForLearner(info.name);
    ml::HyperParams config = space.DefaultConfig();
    for (int step = 0; step < 40; ++step) {
      config = step % 3 == 0 ? space.Sample(&rng)
                             : space.Perturb(config, 0.4, &rng);
      for (const hpo::ParamSpec& spec : space.params()) {
        if (spec.kind == hpo::ParamSpec::Kind::kChoice) {
          std::string choice = config.GetStr(spec.name, "");
          EXPECT_NE(std::find(spec.choices.begin(), spec.choices.end(),
                              choice),
                    spec.choices.end())
              << info.name << "." << spec.name;
        } else {
          double v = config.GetNum(spec.name, spec.default_value);
          EXPECT_GE(v, spec.lo - 1e-9) << info.name << "." << spec.name;
          EXPECT_LE(v, spec.hi + 1e-9) << info.name << "." << spec.name;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SearchSpaceProperty,
                         ::testing::Range<uint64_t>(1, 5));

// ---------------------------------------------------------------------
// JSON: randomized documents round-trip through Dump/Parse.
Json RandomJson(Rng* rng, int depth) {
  double u = rng->Uniform();
  if (depth <= 0 || u < 0.35) {
    switch (rng->UniformInt(4)) {
      case 0:
        return Json(rng->Normal() * 100.0);
      case 1:
        return Json(static_cast<int64_t>(rng->UniformInt(100000)));
      case 2:
        return Json(rng->Bernoulli(0.5));
      default: {
        std::string s;
        size_t len = rng->UniformInt(12);
        for (size_t i = 0; i < len; ++i) {
          s += static_cast<char>('a' + rng->UniformInt(26));
        }
        if (rng->Bernoulli(0.2)) s += "\"\\\n\t";
        return Json(std::move(s));
      }
    }
  }
  if (u < 0.7) {
    Json arr = Json::Array();
    size_t n = rng->UniformInt(5);
    for (size_t i = 0; i < n; ++i) {
      arr.Append(RandomJson(rng, depth - 1));
    }
    return arr;
  }
  Json obj = Json::Object();
  size_t n = rng->UniformInt(5);
  for (size_t i = 0; i < n; ++i) {
    obj.Set("key_" + std::to_string(i), RandomJson(rng, depth - 1));
  }
  return obj;
}

class JsonRoundTripProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JsonRoundTripProperty, DumpParseDumpIsStable) {
  Rng rng(GetParam());
  Json doc = RandomJson(&rng, 4);
  std::string once = doc.Dump();
  auto parsed = Json::Parse(once);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << once;
  EXPECT_EQ(parsed->Dump(), once);
  // Pretty-printed form parses back to the same canonical dump.
  auto pretty = Json::Parse(doc.Dump(2));
  ASSERT_TRUE(pretty.ok());
  EXPECT_EQ(pretty->Dump(), once);
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonRoundTripProperty,
                         ::testing::Range<uint64_t>(1, 13));

// ---------------------------------------------------------------------
// Embeddings: unit norm and determinism for every family x domain.
class EmbeddingProperty : public ::testing::TestWithParam<int> {};

TEST_P(EmbeddingProperty, UnitNormDeterministicPerFamilyDomain) {
  int index = GetParam();
  DatasetSpec spec;
  spec.name = "embed_prop";
  spec.family = static_cast<ConceptFamily>(index % 7);
  spec.domain = static_cast<Domain>(index % 10);
  spec.rows = 120;
  spec.num_text = spec.family == ConceptFamily::kText ? 1 : 0;
  Table table = GenerateDataset(spec);
  embed::TableEmbedder embedder;
  auto a = embedder.Embed(table);
  auto b = embedder.Embed(table);
  ASSERT_EQ(a.size(), embed::TableEmbedder::kDims);
  double norm = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i], b[i]);
    norm += a[i] * a[i];
    EXPECT_TRUE(std::isfinite(a[i]));
  }
  EXPECT_NEAR(norm, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(FamilyDomainGrid, EmbeddingProperty,
                         ::testing::Range(0, 14));

// ---------------------------------------------------------------------
// Generator: sampled graphs always start with the seed, respect the node
// cap, and carry non-positive log-probabilities.
class GeneratorProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GeneratorProperty, SampleInvariants) {
  gen::GeneratorConfig config;
  config.vocab_size = graph4ml::PipelineVocab::Get().size();
  config.hidden = 16;
  config.max_nodes = 9;
  gen::GraphGenerator generator(config, GetParam());
  graph4ml::TypedGraph seed;
  seed.node_types = {graph4ml::PipelineVocab::kDatasetType,
                     graph4ml::PipelineVocab::kReadCsvType};
  seed.edges = {{0, 1}};
  Rng rng(GetParam() * 17 + 1);
  for (int i = 0; i < 6; ++i) {
    auto g = generator.Generate(seed, {}, &rng, 1.0);
    ASSERT_GE(g.graph.num_nodes(), 2u);
    EXPECT_LE(g.graph.num_nodes(),
              static_cast<size_t>(config.max_nodes));
    EXPECT_EQ(g.graph.node_types[0],
              graph4ml::PipelineVocab::kDatasetType);
    EXPECT_EQ(g.graph.node_types[1],
              graph4ml::PipelineVocab::kReadCsvType);
    EXPECT_LE(g.log_prob, 1e-9);
    for (const auto& [src, dst] : g.graph.edges) {
      EXPECT_GE(src, 0);
      EXPECT_LT(src, static_cast<int>(g.graph.num_nodes()));
      EXPECT_LT(src, dst);
    }
    for (int type : g.graph.node_types) {
      EXPECT_GE(type, 0);
      EXPECT_LT(type, config.vocab_size);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorProperty,
                         ::testing::Range<uint64_t>(1, 6));

// ---------------------------------------------------------------------
// Statistics: t-test p-values live in [0, 1] and are symmetric in sign;
// ranks behave.
class StatsProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StatsProperty, TTestAndRankInvariants) {
  Rng rng(GetParam());
  std::vector<double> x, y;
  for (int i = 0; i < 25; ++i) {
    x.push_back(rng.Normal());
    y.push_back(rng.Normal() + 0.2);
  }
  TTestResult forward = PairedTTest(x, y);
  TTestResult backward = PairedTTest(y, x);
  EXPECT_GE(forward.p_value, 0.0);
  EXPECT_LE(forward.p_value, 1.0);
  EXPECT_NEAR(forward.p_value, backward.p_value, 1e-9);
  EXPECT_NEAR(forward.t_statistic, -backward.t_statistic, 1e-9);

  // AverageRanks is a permutation-invariant bijection onto [1, n] means.
  std::vector<double> ranks = AverageRanks(x);
  double sum = 0.0;
  for (double r : ranks) sum += r;
  double expected = static_cast<double>(x.size() * (x.size() + 1)) / 2.0;
  EXPECT_NEAR(sum, expected, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatsProperty,
                         ::testing::Range<uint64_t>(1, 9));

// ---------------------------------------------------------------------
// Featurizer: output width is schema-determined, never NaN, and test
// tables with permuted column order encode identically.
TEST(FeaturizerProperty, ColumnOrderIndependentEncoding) {
  DatasetSpec spec;
  spec.name = "order_prop";
  spec.rows = 80;
  spec.num_numeric = 4;
  spec.num_categorical = 2;
  Table table = GenerateDataset(spec);
  ml::Featurizer featurizer;
  ASSERT_TRUE(featurizer.Fit(table, spec.task).ok());
  auto direct = featurizer.TransformFeatures(table);
  ASSERT_TRUE(direct.ok());

  // Rebuild the same table with columns in reverse order.
  Table reversed(table.name());
  reversed.set_target_name(table.target_name());
  for (size_t c = table.num_columns(); c-- > 0;) {
    ASSERT_TRUE(reversed.AddColumn(table.column(c)).ok());
  }
  auto from_reversed = featurizer.TransformFeatures(reversed);
  ASSERT_TRUE(from_reversed.ok());
  ASSERT_EQ(from_reversed->cols, direct->cols);
  for (size_t i = 0; i < direct->values.size(); ++i) {
    EXPECT_DOUBLE_EQ(from_reversed->values[i], direct->values[i]);
  }
}

}  // namespace
}  // namespace kgpip
