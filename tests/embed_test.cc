#include <algorithm>
#include <cstdint>
#include <cstring>

#include <gtest/gtest.h>

#include "data/benchmark_registry.h"
#include "embed/embedder.h"
#include "embed/sim_index.h"
#include "embed/tsne.h"
#include "util/rng.h"
#include "util/stats.h"

namespace kgpip::embed {
namespace {

TEST(EmbedderTest, OutputIsUnitNormAndFixedSize) {
  DatasetSpec spec;
  spec.name = "unit";
  Table table = GenerateDataset(spec);
  TableEmbedder embedder;
  std::vector<double> v = embedder.Embed(table);
  ASSERT_EQ(v.size(), TableEmbedder::kDims);
  double norm = 0.0;
  for (double x : v) norm += x * x;
  EXPECT_NEAR(norm, 1.0, 1e-9);
}

TEST(EmbedderTest, SameRecipeDifferentSeedIsSimilar) {
  TableEmbedder embedder;
  DatasetSpec spec;
  spec.name = "a";
  spec.family = ConceptFamily::kRules;
  spec.domain = Domain::kFinance;
  spec.seed = 1;
  auto va = embedder.Embed(GenerateDataset(spec));
  spec.seed = 2;
  spec.name = "b";
  auto vb = embedder.Embed(GenerateDataset(spec));
  // Different domain and family should be farther.
  DatasetSpec other = spec;
  other.name = "c";
  other.family = ConceptFamily::kText;
  other.domain = Domain::kReviews;
  other.num_text = 1;
  auto vc = embedder.Embed(GenerateDataset(other));
  double same = TableEmbedder::Cosine(va, vb);
  double different = TableEmbedder::Cosine(va, vc);
  EXPECT_GT(same, different + 0.1);
  EXPECT_GT(same, 0.8);
}

TEST(EmbedderTest, NearestNeighbourRecoversFamilyAndDomain) {
  // Index the training corpus; evaluation datasets must retrieve a
  // training dataset with the same (family, domain, task) most of the
  // time — this is the retrieval property KGpip's pipeline prediction
  // rests on.
  BenchmarkRegistry registry;
  TableEmbedder embedder;
  SimIndex index;
  auto training = registry.TrainingSpecs();
  std::map<std::string, const DatasetSpec*> by_name;
  for (const auto& spec : training) {
    ASSERT_TRUE(index.Add(spec.name,
                          embedder.Embed(GenerateDataset(spec))).ok());
    by_name[spec.name] = &spec;
  }
  ASSERT_TRUE(index.Build().ok());

  int family_hits = 0;
  int domain_hits = 0;
  int total = 0;
  for (const auto& eval_spec : registry.eval_specs()) {
    auto query = embedder.Embed(GenerateDataset(eval_spec));
    auto hits = index.Search(query, 1);
    ASSERT_TRUE(hits.ok());
    const DatasetSpec* match = by_name[(*hits)[0].key];
    ASSERT_NE(match, nullptr);
    ++total;
    if (match->family == eval_spec.family) ++family_hits;
    if (match->domain == eval_spec.domain) ++domain_hits;
  }
  // Content embeddings must recover the concept family for most datasets.
  EXPECT_GT(family_hits, total * 6 / 10)
      << "family recall " << family_hits << "/" << total;
  EXPECT_GT(domain_hits, total / 2)
      << "domain recall " << domain_hits << "/" << total;
}

TEST(SimIndexTest, FlatSearchExactOrder) {
  SimIndex index;
  ASSERT_TRUE(index.Add("x", {1.0, 0.0}).ok());
  ASSERT_TRUE(index.Add("y", {0.0, 1.0}).ok());
  ASSERT_TRUE(index.Add("xy", {0.7, 0.7}).ok());
  ASSERT_TRUE(index.Build().ok());
  auto hits = index.Search({1.0, 0.1}, 2);
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 2u);
  EXPECT_EQ((*hits)[0].key, "x");
  EXPECT_EQ((*hits)[1].key, "xy");
  // Dimensionality checks.
  EXPECT_FALSE(index.Add("bad", {1.0}).ok());
  EXPECT_FALSE(index.Search({1.0}, 1).ok());
}

TEST(SimIndexTest, IvfModeFindsNearNeighbours) {
  SimIndex::Options options;
  options.num_cells = 4;
  options.num_probes = 2;
  SimIndex ivf(options);
  kgpip::Rng rng(5);
  // Four well-separated clusters of unit vectors.
  std::vector<std::vector<double>> centers = {
      {1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 1, 0}, {0, 0, 0, 1}};
  for (int c = 0; c < 4; ++c) {
    for (int i = 0; i < 12; ++i) {
      std::vector<double> v = centers[c];
      for (double& x : v) x += rng.Normal() * 0.05;
      ASSERT_TRUE(
          ivf.Add("c" + std::to_string(c) + "_" + std::to_string(i), v)
              .ok());
    }
  }
  ASSERT_TRUE(ivf.Build().ok());
  auto hits = ivf.Search({0.0, 0.98, 0.05, 0.0}, 3);
  ASSERT_TRUE(hits.ok());
  for (const auto& hit : *hits) {
    EXPECT_EQ(hit.key.substr(0, 2), "c1") << hit.key;
  }
}

TEST(SimIndexTest, CosineDecompositionMatchesFusedKernelBitwise) {
  // The index precomputes row norms at Add time and re-assembles cosine
  // from BlockedDot + BlockedSquaredNorm at query time. That split must
  // reproduce the fused BlockedCosine BIT for bit (each accumulator
  // chain is untouched by the split), or precomputing norms would change
  // hit order relative to the pre-IVF flat scan.
  kgpip::Rng rng(7);
  for (size_t dims : {size_t{1}, size_t{2}, size_t{3}, size_t{4}, size_t{5},
                      size_t{7}, size_t{8}, size_t{16}, size_t{17},
                      size_t{32}, size_t{100}}) {
    for (int rep = 0; rep < 8; ++rep) {
      std::vector<double> a(dims);
      std::vector<double> b(dims);
      for (double& x : a) x = rng.Normal();
      for (double& x : b) x = rng.Normal();
      const double fused = BlockedCosine(a.data(), b.data(), dims);
      const double split =
          CosineFromParts(BlockedDot(a.data(), b.data(), dims),
                          BlockedSquaredNorm(a.data(), dims),
                          BlockedSquaredNorm(b.data(), dims));
      uint64_t fused_bits = 0;
      uint64_t split_bits = 0;
      std::memcpy(&fused_bits, &fused, sizeof(fused_bits));
      std::memcpy(&split_bits, &split, sizeof(split_bits));
      EXPECT_EQ(fused_bits, split_bits)
          << "dims=" << dims << " rep=" << rep;
    }
  }
  // Zero vectors take the non-positive-norm guard in both forms.
  std::vector<double> zero(8, 0.0);
  std::vector<double> ones(8, 1.0);
  EXPECT_EQ(BlockedCosine(zero.data(), ones.data(), 8), 0.0);
  EXPECT_EQ(CosineFromParts(BlockedDot(zero.data(), ones.data(), 8),
                            BlockedSquaredNorm(zero.data(), 8),
                            BlockedSquaredNorm(ones.data(), 8)),
            0.0);
}

TEST(SimIndexTest, TopKMatchesFullSortReference) {
  // Regression for the nth_element top-k path: hits (keys, order, and
  // similarity values) must match a stable full-sort reference exactly,
  // including duplicate-vector ties (which order by insertion index).
  SimIndex index;
  kgpip::Rng rng(11);
  constexpr size_t kN = 200;
  constexpr size_t kDims = 16;
  std::vector<std::vector<double>> vectors;
  for (size_t i = 0; i < kN; ++i) {
    std::vector<double> v(kDims);
    if (i % 10 == 3 && i > 10) {
      v = vectors[i - 1];  // exact duplicate => similarity tie
    } else {
      for (double& x : v) x = rng.Normal();
    }
    vectors.push_back(v);
    ASSERT_TRUE(index.Add("k" + std::to_string(i), v).ok());
  }
  ASSERT_TRUE(index.Build().ok());

  std::vector<double> query(kDims);
  for (double& x : query) x = rng.Normal();
  for (size_t k : {size_t{1}, size_t{5}, size_t{17}, kN, kN + 10}) {
    auto hits = index.Search(query, k);
    ASSERT_TRUE(hits.ok());
    // Reference: score everything with the same kernel, stable-sort by
    // similarity descending (stability preserves insertion order ties).
    std::vector<std::pair<double, size_t>> ranked;
    for (size_t i = 0; i < kN; ++i) {
      ranked.emplace_back(
          BlockedCosine(query.data(), vectors[i].data(), kDims), i);
    }
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const auto& a, const auto& b) {
                       return a.first > b.first;
                     });
    ASSERT_EQ(hits->size(), std::min(k, kN)) << "k=" << k;
    for (size_t i = 0; i < hits->size(); ++i) {
      EXPECT_EQ((*hits)[i].key, "k" + std::to_string(ranked[i].second))
          << "k=" << k << " rank " << i;
      EXPECT_EQ((*hits)[i].similarity, ranked[i].first)
          << "k=" << k << " rank " << i;
    }
  }
}

TEST(SimIndexTest, SearchBatchMatchesSequentialSearches) {
  SimIndex index;
  kgpip::Rng rng(23);
  for (size_t i = 0; i < 50; ++i) {
    std::vector<double> v(8);
    for (double& x : v) x = rng.Normal();
    ASSERT_TRUE(index.Add("v" + std::to_string(i), v).ok());
  }
  ASSERT_TRUE(index.Build().ok());
  std::vector<std::vector<double>> queries;
  for (size_t q = 0; q < 12; ++q) {
    std::vector<double> v(8);
    for (double& x : v) x = rng.Normal();
    queries.push_back(v);
  }
  auto batch = index.SearchBatch(queries, 3);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    auto single = index.Search(queries[q], 3);
    ASSERT_TRUE(single.ok());
    ASSERT_EQ((*batch)[q].size(), single->size());
    for (size_t i = 0; i < single->size(); ++i) {
      EXPECT_EQ((*batch)[q][i].key, (*single)[i].key);
      EXPECT_EQ((*batch)[q][i].similarity, (*single)[i].similarity);
    }
  }
  // A bad query anywhere in the batch surfaces as the batch's error.
  queries[4] = {1.0};  // wrong dimensionality
  EXPECT_FALSE(index.SearchBatch(queries, 3).ok());
}

TEST(TsneTest, SeparatesObviousClusters) {
  kgpip::Rng rng(3);
  std::vector<std::vector<double>> points;
  std::vector<int> labels;
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 12; ++i) {
      std::vector<double> p(8, 0.0);
      p[c] = 5.0;
      for (double& x : p) x += rng.Normal() * 0.1;
      points.push_back(p);
      labels.push_back(c);
    }
  }
  TsneOptions options;
  options.iterations = 250;
  auto map = Tsne2D(points, options);
  ASSERT_EQ(map.size(), points.size());
  std::vector<std::vector<double>> mapped;
  for (const auto& [x, y] : map) mapped.push_back({x, y});
  EXPECT_GT(SilhouetteScore(mapped, labels), 0.3);
}

}  // namespace
}  // namespace kgpip::embed
