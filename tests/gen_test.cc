#include <map>

#include <gtest/gtest.h>

#include "codegraph/corpus.h"
#include "data/benchmark_registry.h"
#include "embed/embedder.h"
#include "gen/graph_generator.h"
#include "gen/skeleton.h"
#include "graph4ml/graph4ml.h"
#include "util/thread_pool.h"

namespace kgpip::gen {
namespace {

using graph4ml::PipelineVocab;
using graph4ml::TypedGraph;

/// A tiny deterministic training set: two conditioning signatures mapped
/// to two different chain "pipelines".
std::vector<GraphExample> TwoModeExamples(int copies) {
  const PipelineVocab& vocab = PipelineVocab::Get();
  const int scaler = vocab.TypeOf("standard_scaler");
  const int logreg = vocab.TypeOf("logistic_regression");
  const int xgb = vocab.TypeOf("xgboost");
  std::vector<GraphExample> examples;
  for (int c = 0; c < copies; ++c) {
    GraphExample a;
    a.graph.node_types = {PipelineVocab::kDatasetType,
                          PipelineVocab::kReadCsvType, scaler, logreg};
    a.graph.edges = {{0, 1}, {1, 2}, {2, 3}};
    a.condition = {1.0, 0.0};
    a.given_nodes = 2;
    examples.push_back(a);

    GraphExample b;
    b.graph.node_types = {PipelineVocab::kDatasetType,
                          PipelineVocab::kReadCsvType, xgb};
    b.graph.edges = {{0, 1}, {1, 2}};
    b.condition = {0.0, 1.0};
    b.given_nodes = 2;
    examples.push_back(b);
  }
  return examples;
}

GeneratorConfig SmallConfig() {
  GeneratorConfig config;
  config.vocab_size = PipelineVocab::Get().size();
  config.hidden = 24;
  config.prop_rounds = 2;
  config.max_nodes = 8;
  config.condition_dims = 2;
  config.learning_rate = 5e-3;
  return config;
}

TEST(GraphGeneratorTest, LossDecreasesDuringTraining) {
  GraphGenerator generator(SmallConfig(), 7);
  auto examples = TwoModeExamples(4);
  Rng rng(1);
  double first = generator.TrainEpoch(examples, &rng);
  double last = first;
  for (int epoch = 0; epoch < 30; ++epoch) {
    last = generator.TrainEpoch(examples, &rng);
  }
  EXPECT_LT(last, first * 0.5)
      << "training loss did not decrease: " << first << " -> " << last;
}

TEST(GraphGeneratorTest, BatchedLossesAreBitIdenticalAcrossThreadCounts) {
  // Data-parallel minibatch training must erase the thread count from
  // the numbers completely: per-example gradients are accumulated in
  // example order, so every epoch's loss (and hence every weight) is
  // byte-identical whether the pool is inline or 4-way.
  GeneratorConfig config = SmallConfig();
  config.batch_size = 4;
  auto examples = TwoModeExamples(4);
  auto losses_with = [&](int threads) {
    util::ThreadPool::Configure(threads);
    GraphGenerator generator(config, 7);
    Rng rng(1);
    std::vector<double> losses;
    for (int epoch = 0; epoch < 6; ++epoch) {
      losses.push_back(generator.TrainEpoch(examples, &rng));
    }
    return losses;
  };
  std::vector<double> inline_losses = losses_with(1);
  std::vector<double> pooled_losses = losses_with(4);
  util::ThreadPool::Configure(0);
  ASSERT_EQ(inline_losses.size(), pooled_losses.size());
  for (size_t e = 0; e < inline_losses.size(); ++e) {
    EXPECT_EQ(inline_losses[e], pooled_losses[e]) << "epoch " << e;
  }
  // And training actually learns under batching.
  EXPECT_LT(inline_losses.back(), inline_losses.front());
}

TEST(GraphGeneratorTest, LearnsConditionalModes) {
  GraphGenerator generator(SmallConfig(), 7);
  auto examples = TwoModeExamples(4);
  Rng rng(1);
  for (int epoch = 0; epoch < 60; ++epoch) {
    generator.TrainEpoch(examples, &rng);
  }
  const PipelineVocab& vocab = PipelineVocab::Get();
  TypedGraph seed;
  seed.node_types = {PipelineVocab::kDatasetType,
                     PipelineVocab::kReadCsvType};
  seed.edges = {{0, 1}};
  Rng sample_rng(3);
  // Greedy generation under condition A must produce the A-chain.
  GeneratedGraph a =
      generator.Generate(seed, {1.0, 0.0}, &sample_rng, /*temperature=*/0.0);
  ASSERT_EQ(a.graph.node_types.size(), 4u);
  EXPECT_EQ(a.graph.node_types[2], vocab.TypeOf("standard_scaler"));
  EXPECT_EQ(a.graph.node_types[3], vocab.TypeOf("logistic_regression"));
  GeneratedGraph b =
      generator.Generate(seed, {0.0, 1.0}, &sample_rng, 0.0);
  ASSERT_EQ(b.graph.node_types.size(), 3u);
  EXPECT_EQ(b.graph.node_types[2], vocab.TypeOf("xgboost"));
  // Scores are log-probabilities: non-positive and higher for the learned
  // mode than for the swapped condition.
  EXPECT_LE(a.log_prob, 0.0);
}

TEST(GraphGeneratorTest, LogProbPrefersTrainedGraphs) {
  GraphGenerator generator(SmallConfig(), 7);
  auto examples = TwoModeExamples(4);
  Rng rng(1);
  for (int epoch = 0; epoch < 60; ++epoch) {
    generator.TrainEpoch(examples, &rng);
  }
  const PipelineVocab& vocab = PipelineVocab::Get();
  GraphExample trained = examples[0];  // scaler -> logreg under A
  GraphExample wrong = trained;
  wrong.graph.node_types[3] = vocab.TypeOf("knn");
  EXPECT_GT(generator.LogProb(trained), generator.LogProb(wrong) + 0.5);
}

TEST(GraphGeneratorTest, SamplingIsStochasticAtHighTemperature) {
  GraphGenerator generator(SmallConfig(), 7);
  auto examples = TwoModeExamples(4);
  Rng rng(1);
  for (int epoch = 0; epoch < 20; ++epoch) {
    generator.TrainEpoch(examples, &rng);
  }
  TypedGraph seed;
  seed.node_types = {PipelineVocab::kDatasetType,
                     PipelineVocab::kReadCsvType};
  seed.edges = {{0, 1}};
  Rng sample_rng(11);
  std::set<std::vector<int>> distinct;
  for (int i = 0; i < 12; ++i) {
    GeneratedGraph g =
        generator.Generate(seed, {0.5, 0.5}, &sample_rng, 1.5);
    distinct.insert(g.graph.node_types);
  }
  EXPECT_GT(distinct.size(), 1u) << "no diversity across samples";
}

TEST(GraphGeneratorTest, WeightsJsonRoundTrip) {
  GraphGenerator generator(SmallConfig(), 7);
  auto examples = TwoModeExamples(2);
  Rng rng(1);
  generator.TrainEpoch(examples, &rng);
  Json json = generator.ToJson();

  GraphGenerator reloaded(SmallConfig(), 99);
  ASSERT_TRUE(reloaded.LoadWeights(json).ok());
  EXPECT_NEAR(reloaded.LogProb(examples[0]),
              generator.LogProb(examples[0]), 1e-9);

  GeneratorConfig other = SmallConfig();
  other.hidden = 16;
  GraphGenerator mismatched(other, 1);
  EXPECT_FALSE(mismatched.LoadWeights(json).ok());
}

TEST(SkeletonTest, MapsGraphsAndRejectsInvalid) {
  const PipelineVocab& vocab = PipelineVocab::Get();
  GeneratedGraph g;
  g.graph.node_types = {PipelineVocab::kDatasetType,
                        PipelineVocab::kReadCsvType,
                        vocab.TypeOf("standard_scaler"),
                        vocab.TypeOf("simple_imputer"),
                        vocab.TypeOf("xgboost")};
  g.log_prob = -1.5;
  auto skeleton = GraphToSkeleton(g, TaskType::kBinaryClassification);
  ASSERT_TRUE(skeleton.ok()) << skeleton.status().ToString();
  EXPECT_EQ(skeleton->spec.learner, "xgboost");
  // simple_imputer is featurizer-level: not a FeatureMatrix transformer.
  ASSERT_EQ(skeleton->spec.preprocessors.size(), 1u);
  EXPECT_EQ(skeleton->spec.preprocessors[0], "standard_scaler");
  EXPECT_DOUBLE_EQ(skeleton->log_prob, -1.5);

  // No estimator -> invalid.
  GeneratedGraph no_est;
  no_est.graph.node_types = {PipelineVocab::kDatasetType,
                             vocab.TypeOf("pca")};
  EXPECT_FALSE(GraphToSkeleton(no_est,
                               TaskType::kBinaryClassification).ok());

  // Task-incompatible estimator -> invalid.
  GeneratedGraph reg;
  reg.graph.node_types = {PipelineVocab::kDatasetType,
                          vocab.TypeOf("ridge")};
  EXPECT_FALSE(GraphToSkeleton(reg, TaskType::kBinaryClassification).ok());
  EXPECT_TRUE(GraphToSkeleton(reg, TaskType::kRegression).ok());
}

TEST(GraphGeneratorTest, TrainsOnMinedCorpusAndGeneratesValidPipelines) {
  // End-to-end over the real mining chain: corpus -> analyze -> filter ->
  // train -> conditional generation must produce mostly valid skeletons
  // biased toward the dataset family's affine learners.
  BenchmarkRegistry registry;
  auto specs = registry.TrainingSpecs();
  // Two contrasting families, one domain each.
  std::vector<DatasetSpec> chosen;
  for (const auto& spec : specs) {
    if (spec.task != TaskType::kBinaryClassification) continue;
    if (spec.family == ConceptFamily::kLinear ||
        spec.family == ConceptFamily::kRules) {
      chosen.push_back(spec);
    }
  }
  ASSERT_GE(chosen.size(), 4u);
  chosen.resize(4);

  codegraph::CorpusOptions corpus_options;
  corpus_options.pipelines_per_dataset = 10;
  corpus_options.noise_scripts_per_dataset = 2;
  codegraph::CorpusGenerator corpus(corpus_options);
  graph4ml::Graph4Ml store;
  ASSERT_TRUE(store.Build(corpus.GenerateCorpus(chosen)).ok());

  embed::TableEmbedder embedder;
  std::map<std::string, std::vector<double>> embeddings;
  for (const auto& spec : chosen) {
    embeddings[spec.name] = embedder.Embed(GenerateDataset(spec));
  }

  GeneratorConfig config;
  config.vocab_size = PipelineVocab::Get().size();
  config.hidden = 24;
  config.condition_dims =
      static_cast<int>(embed::TableEmbedder::kDims);
  config.learning_rate = 5e-3;
  GraphGenerator generator(config, 13);

  std::vector<GraphExample> examples;
  for (const auto* pipeline : store.AllPipelines()) {
    GraphExample example;
    example.graph = pipeline->graph;
    example.condition = embeddings[pipeline->dataset_name];
    example.given_nodes = 2;
    examples.push_back(example);
  }
  ASSERT_EQ(examples.size(), 40u);
  Rng rng(3);
  for (int epoch = 0; epoch < 25; ++epoch) {
    generator.TrainEpoch(examples, &rng);
  }

  TypedGraph seed;
  seed.node_types = {PipelineVocab::kDatasetType,
                     PipelineVocab::kReadCsvType};
  seed.edges = {{0, 1}};
  Rng sample_rng(5);
  int valid = 0, total = 0;
  for (const auto& spec : chosen) {
    for (int s = 0; s < 5; ++s) {
      GeneratedGraph g = generator.Generate(seed, embeddings[spec.name],
                                            &sample_rng, 0.8);
      ++total;
      if (GraphToSkeleton(g, spec.task).ok()) ++valid;
    }
  }
  EXPECT_GT(valid, total / 2) << "trained generator mostly invalid";
}

}  // namespace
}  // namespace kgpip::gen
