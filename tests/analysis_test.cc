#include <gtest/gtest.h>

#include <algorithm>

#include "codegraph/analysis/call_graph.h"
#include "codegraph/analysis/dataflow.h"
#include "codegraph/analysis/diagnostic.h"
#include "codegraph/analysis/pass_manager.h"
#include "codegraph/analysis/type_flow.h"
#include "codegraph/analysis/verifier.h"
#include "codegraph/analyzer.h"
#include "codegraph/python_ast.h"
#include "gen/linter.h"
#include "graph4ml/verify.h"
#include "graph4ml/vocab.h"

namespace kgpip::codegraph::analysis {
namespace {

/// The verifier defaults to off under NDEBUG; this suite always wants it.
struct EnableVerifier {
  EnableVerifier() { CodeGraphVerifier::set_enabled(true); }
} enable_verifier_;

Module Parse(const std::string& source) {
  auto module = ParsePython(source);
  KGPIP_CHECK(module.ok()) << module.status().ToString();
  return std::move(*module);
}

std::vector<std::string> CodesOf(const std::vector<Diagnostic>& diags) {
  std::vector<std::string> codes;
  for (const Diagnostic& d : diags) codes.push_back(d.code);
  return codes;
}

bool HasCode(const std::vector<Diagnostic>& diags, const std::string& code) {
  for (const Diagnostic& d : diags) {
    if (d.code == code) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Diagnostics

TEST(DiagnosticTest, RendersSeverityCodeSubjectAndSpan) {
  Diagnostic d = MakeError("parse.unexpected-token", "unexpected ')'",
                           SourceSpan{3, 14});
  d.subject = "fig2.py";
  EXPECT_EQ(d.ToString(),
            "error[parse.unexpected-token] fig2.py line 3:14: "
            "unexpected ')'");
  EXPECT_EQ(SourceSpan{}.ToString(), "");
  EXPECT_EQ((SourceSpan{7, 0}).ToString(), "line 7");
}

TEST(DiagnosticTest, FoldsIntoStatusWithRequestedCode) {
  Diagnostic d = MakeError("lint.no-estimator", "no estimator");
  Status status = d.ToStatus(StatusCode::kInvalidArgument);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("lint.no-estimator"), std::string::npos);
  // Default folding keeps the front-end convention.
  EXPECT_EQ(d.ToStatus().code(), StatusCode::kParseError);
}

TEST(DiagnosticTest, WarningsAreNotErrors) {
  std::vector<Diagnostic> diags = {MakeWarning("lint.positive-score", "w")};
  EXPECT_FALSE(HasErrors(diags));
  diags.push_back(MakeError("lint.cycle", "e"));
  EXPECT_TRUE(HasErrors(diags));
  std::string rendered = RenderDiagnostics(diags);
  EXPECT_NE(rendered.find("warning[lint.positive-score]"), std::string::npos);
  EXPECT_NE(rendered.find("error[lint.cycle]"), std::string::npos);
}

TEST(DiagnosticTest, ParserEmitsStructuredCodes) {
  auto bad = ParsePython("x = (1\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("parse."), std::string::npos);
  auto unterminated = ParsePython("x = 'oops\n");
  ASSERT_FALSE(unterminated.ok());
  EXPECT_NE(unterminated.status().message().find("lex.unterminated-string"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Pass manager

TEST(PassManagerTest, CachesResultsAndRecordsRunOrder) {
  Module module = Parse("x = 1\ny = x\n");
  PassManager pm(&module);
  EXPECT_FALSE(pm.Cached<CfgPass>());
  EXPECT_FALSE(pm.Cached<LivenessPass>());

  // Liveness pulls in the CFG as a dependency; both get cached.
  const LivenessResult& live = pm.Get<LivenessPass>();
  EXPECT_TRUE(pm.Cached<CfgPass>());
  EXPECT_TRUE(pm.Cached<LivenessPass>());

  // Dependencies land in the trace before their dependents.
  ASSERT_EQ(pm.run_order().size(), 2u);
  EXPECT_EQ(pm.run_order()[0], "cfg");
  EXPECT_EQ(pm.run_order()[1], "liveness");

  // Repeat requests return the identical cached object; no re-run.
  const LivenessResult& again = pm.Get<LivenessPass>();
  EXPECT_EQ(&live, &again);
  const Cfg& cfg = pm.Get<CfgPass>();
  EXPECT_EQ(&cfg, &pm.Get<CfgPass>());
  EXPECT_EQ(pm.run_order().size(), 2u);
}

TEST(PassManagerTest, SharedDependencyComputedOnce) {
  Module module = Parse("x = 1\n");
  PassManager pm(&module);
  pm.Get<ReachingDefsPass>();
  pm.Get<LivenessPass>();
  // cfg appears exactly once in the trace even though both passes use it.
  int cfg_runs = static_cast<int>(
      std::count(pm.run_order().begin(), pm.run_order().end(), "cfg"));
  EXPECT_EQ(cfg_runs, 1);
}

// ---------------------------------------------------------------------------
// CFG

TEST(CfgTest, BranchForksAndJoins) {
  Module module = Parse(
      "x = 1\n"
      "if x:\n"
      "    y = 2\n"
      "else:\n"
      "    y = 3\n"
      "print(y)\n");
  PassManager pm(&module);
  const Cfg& cfg = pm.Get<CfgPass>();
  // Pre-order ids: 0 x=1, 1 if, 2 y=2, 3 y=3, 4 print(y).
  ASSERT_EQ(cfg.stmts.size(), 5u);
  auto has_succ = [&](int from, int to) {
    const auto& s = cfg.succ[static_cast<size_t>(from)];
    return std::find(s.begin(), s.end(), to) != s.end();
  };
  EXPECT_TRUE(has_succ(0, 1));
  EXPECT_TRUE(has_succ(1, 2));  // then arm
  EXPECT_TRUE(has_succ(1, 3));  // else arm
  EXPECT_TRUE(has_succ(2, 4));  // join
  EXPECT_TRUE(has_succ(3, 4));
  EXPECT_TRUE(has_succ(4, cfg.exit_id));
  EXPECT_EQ(cfg.IdOf(cfg.stmts[4]), 4);
  EXPECT_EQ(cfg.IdOf(nullptr), -1);
}

TEST(CfgTest, LoopHasBackEdgeAndZeroIterationExit) {
  Module module = Parse(
      "xs = [1]\n"
      "for x in xs:\n"
      "    y = x\n"
      "print(y)\n");
  PassManager pm(&module);
  const Cfg& cfg = pm.Get<CfgPass>();
  // ids: 0 xs=[1], 1 for, 2 y=x, 3 print(y).
  ASSERT_EQ(cfg.stmts.size(), 4u);
  auto has_succ = [&](int from, int to) {
    const auto& s = cfg.succ[static_cast<size_t>(from)];
    return std::find(s.begin(), s.end(), to) != s.end();
  };
  EXPECT_TRUE(has_succ(1, 2));  // into the body
  EXPECT_TRUE(has_succ(2, 1));  // back edge
  EXPECT_TRUE(has_succ(1, 3));  // exit (covers the zero-iteration case)
}

TEST(CfgTest, DefsAndUsesOfStatements) {
  Module module = Parse(
      "a, b = f(c)\n"
      "d[0] = a + b\n");
  const Stmt& unpack = *module.statements[0];
  const Stmt& store = *module.statements[1];
  EXPECT_EQ(Cfg::DefsOf(unpack), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(Cfg::UsesOf(unpack), (std::vector<std::string>{"c", "f"}));
  // Subscript assignment reads both the stored value and the base.
  EXPECT_TRUE(Cfg::DefsOf(store).empty());
  EXPECT_EQ(Cfg::UsesOf(store), (std::vector<std::string>{"a", "b", "d"}));
}

// ---------------------------------------------------------------------------
// Reaching definitions / def-use chains

TEST(ReachingDefsTest, RedefinitionKillsEarlierDef) {
  Module module = Parse(
      "x = 1\n"
      "x = 2\n"
      "print(x)\n");
  PassManager pm(&module);
  const ReachingDefsResult& defs = pm.Get<ReachingDefsPass>();
  EXPECT_EQ(defs.DefsReaching(2, "x"), (std::set<int>{1}));
  EXPECT_TRUE(defs.UsesOfDef(0, "x").empty());
  EXPECT_EQ(defs.UsesOfDef(1, "x"), (std::set<int>{2}));
}

TEST(ReachingDefsTest, BothBranchDefsReachTheJoin) {
  Module module = Parse(
      "x = 1\n"
      "if x:\n"
      "    y = 2\n"
      "else:\n"
      "    y = 3\n"
      "print(y)\n");
  PassManager pm(&module);
  const ReachingDefsResult& defs = pm.Get<ReachingDefsPass>();
  // Pre-order ids: 0 x=1, 1 if, 2 y=2, 3 y=3, 4 print(y).
  EXPECT_EQ(defs.DefsReaching(4, "y"), (std::set<int>{2, 3}));
  EXPECT_EQ(defs.UsesOfDef(2, "y"), (std::set<int>{4}));
  EXPECT_EQ(defs.UsesOfDef(3, "y"), (std::set<int>{4}));
}

TEST(ReachingDefsTest, LoopDefReachesItsOwnBody) {
  Module module = Parse(
      "xs = [1]\n"
      "for x in xs:\n"
      "    y = y + x\n");
  PassManager pm(&module);
  const ReachingDefsResult& defs = pm.Get<ReachingDefsPass>();
  // Around the back edge, the body's own def of y reaches the body.
  EXPECT_TRUE(defs.DefsReaching(2, "y").count(2) > 0);
  EXPECT_TRUE(defs.UsesOfDef(2, "y").count(2) > 0);
}

// ---------------------------------------------------------------------------
// Liveness

TEST(LivenessTest, DetectsDeadStore) {
  Module module = Parse(
      "x = 1\n"
      "x = 2\n"
      "print(x)\n");
  PassManager pm(&module);
  const LivenessResult& live = pm.Get<LivenessPass>();
  EXPECT_FALSE(live.LiveOut(0, "x"));  // overwritten before any read
  EXPECT_TRUE(live.LiveOut(1, "x"));
  ASSERT_EQ(live.dead_stores.size(), 1u);
  EXPECT_EQ(live.dead_stores[0], (std::pair<int, std::string>{0, "x"}));
}

TEST(LivenessTest, BranchReadKeepsDefAlive) {
  Module module = Parse(
      "x = 1\n"
      "if c:\n"
      "    print(x)\n");
  PassManager pm(&module);
  const LivenessResult& live = pm.Get<LivenessPass>();
  EXPECT_TRUE(live.LiveOut(0, "x"));
  EXPECT_TRUE(live.dead_stores.empty());
}

// ---------------------------------------------------------------------------
// Flow-sensitive type propagation

TEST(TypeFlowTest, BranchAssignmentsUnionAtTheJoin) {
  Module module = Parse(
      "from sklearn import svm\n"
      "from sklearn import tree\n"
      "if flag:\n"
      "    model = svm.SVC()\n"
      "else:\n"
      "    model = tree.DecisionTreeClassifier()\n"
      "model.fit(X, y)\n");
  PassManager pm(&module);
  const TypeFlowResult& types = pm.Get<TypeFlowPass>();
  EXPECT_EQ(types.imports.at("svm"), "sklearn.svm");
  const Stmt* fit_stmt = module.statements.back().get();
  const TypeEnv& env = types.EnvAt(fit_stmt);
  ASSERT_TRUE(env.count("model"));
  EXPECT_EQ(env.at("model"),
            (TypeSet{"sklearn.svm.SVC",
                     "sklearn.tree.DecisionTreeClassifier"}));
}

TEST(TypeFlowTest, ReassignmentIsFlowSensitiveNotLastWins) {
  Module module = Parse(
      "from sklearn import svm\n"
      "from sklearn import tree\n"
      "model = svm.SVC()\n"
      "model.fit(X, y)\n"
      "model = tree.DecisionTreeClassifier()\n"
      "model.fit(X, y)\n");
  PassManager pm(&module);
  const TypeFlowResult& types = pm.Get<TypeFlowPass>();
  // The first fit sees SVC; only the second sees the decision tree. The
  // historical "last assignment wins" map got the first one wrong.
  const TypeEnv& first = types.EnvAt(module.statements[3].get());
  const TypeEnv& second = types.EnvAt(module.statements[5].get());
  EXPECT_EQ(first.at("model"), (TypeSet{"sklearn.svm.SVC"}));
  EXPECT_EQ(second.at("model"),
            (TypeSet{"sklearn.tree.DecisionTreeClassifier"}));
}

TEST(TypeFlowTest, MethodChainsAndTupleUnpackingKeepFrameTypes) {
  Module module = Parse(
      "import pandas as pd\n"
      "from sklearn.model_selection import train_test_split\n"
      "df = pd.read_csv('a.csv')\n"
      "df = df.dropna()\n"
      "train, test = train_test_split(df)\n"
      "print(train)\n");
  PassManager pm(&module);
  const TypeFlowResult& types = pm.Get<TypeFlowPass>();
  const TypeEnv& env = types.EnvAt(module.statements.back().get());
  EXPECT_EQ(env.at("df"), (TypeSet{"pandas.DataFrame"}));
  EXPECT_EQ(env.at("train"), (TypeSet{"pandas.DataFrame"}));
  EXPECT_EQ(env.at("test"), (TypeSet{"pandas.DataFrame"}));
}

TEST(TypeFlowTest, ResolvesCalleeCandidatesUnderTheEnv) {
  Module module = Parse("from sklearn import svm\nmodel.fit(X)\n");
  ImportMap imports = CollectImports(module);
  TypeEnv env;
  env["model"] = {"sklearn.svm.SVC", "sklearn.tree.DecisionTreeClassifier"};
  const Expr& call = *module.statements[1]->value;
  std::string via_alias = "unset";
  std::vector<std::string> names =
      ResolveCalleeNames(*call.value, env, imports, &via_alias);
  EXPECT_EQ(names, (std::vector<std::string>{
                       "sklearn.svm.SVC.fit",
                       "sklearn.tree.DecisionTreeClassifier.fit"}));
  EXPECT_TRUE(via_alias.empty());  // resolved via types, not an import
}

// ---------------------------------------------------------------------------
// Call graph

TEST(CallGraphTest, ReachabilityFollowsDataFlowThroughVariables) {
  auto graph = AnalyzeScript("cg.py",
                             "import pandas as pd\n"
                             "from sklearn import svm\n"
                             "df = pd.read_csv('a.csv')\n"
                             "df2 = df.dropna()\n"
                             "model = svm.SVC()\n"
                             "model.fit(df2, y)\n");
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  PassManager pm(nullptr, &*graph);
  const CallGraphResult& calls = pm.Get<CallGraphPass>();
  auto find = [&](const std::string& label) {
    for (int id : calls.call_nodes) {
      if (graph->nodes[static_cast<size_t>(id)].label == label) return id;
    }
    return -1;
  };
  int read_csv = find("pandas.read_csv");
  int dropna = find("pandas.DataFrame.dropna");
  int fit = find("sklearn.svm.SVC.fit");
  ASSERT_GE(read_csv, 0);
  ASSERT_GE(dropna, 0);
  ASSERT_GE(fit, 0);
  EXPECT_TRUE(calls.Reaches(read_csv, dropna));
  EXPECT_TRUE(calls.Reaches(read_csv, fit));  // transitive, via df2
  EXPECT_FALSE(calls.Reaches(fit, read_csv));
  EXPECT_FALSE(calls.Reaches(dropna, dropna));
}

// ---------------------------------------------------------------------------
// CodeGraph verifier

TEST(VerifierTest, AcceptsEveryAnalyzedGraph) {
  auto graph = AnalyzeScript("ok.py",
                             "import pandas as pd\n"
                             "from sklearn import svm\n"
                             "df = pd.read_csv('a.csv')\n"
                             "model = svm.SVC()\n"
                             "model.fit(df, y)\n");
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_TRUE(CodeGraphVerifier::Verify(*graph).empty());
  EXPECT_TRUE(CodeGraphVerifier::Check(*graph).ok());
}

TEST(VerifierTest, CatchesOutOfRangeEdge) {
  CodeGraph graph;
  graph.AddNode(NodeKind::kCall, "print", 1);
  graph.AddEdge(0, 999, EdgeKind::kDataFlow);
  auto diags = CodeGraphVerifier::Verify(graph);
  EXPECT_TRUE(HasCode(diags, "verify.edge-out-of-range")) << CodesOf(diags).size();
  Status status = CodeGraphVerifier::Check(graph);
  EXPECT_EQ(status.code(), StatusCode::kInternal);
}

TEST(VerifierTest, CatchesDataFlowCycle) {
  CodeGraph graph;
  graph.AddNode(NodeKind::kCall, "a", 1);
  graph.AddNode(NodeKind::kVariable, "x", 1);
  graph.AddEdge(0, 1, EdgeKind::kDataFlow);
  graph.AddEdge(1, 0, EdgeKind::kDataFlow);
  auto diags = CodeGraphVerifier::Verify(graph);
  EXPECT_TRUE(HasCode(diags, "verify.dataflow-cycle"));
}

TEST(VerifierTest, CatchesEmptyLabelAndEdgeKindMismatch) {
  CodeGraph graph;
  graph.AddNode(NodeKind::kCall, "", 1);
  graph.AddNode(NodeKind::kVariable, "x", 1);
  // A parameter edge must land on a parameter node.
  graph.AddEdge(0, 1, EdgeKind::kParameter);
  auto diags = CodeGraphVerifier::Verify(graph);
  EXPECT_TRUE(HasCode(diags, "verify.empty-label"));
  EXPECT_TRUE(HasCode(diags, "verify.edge-kind-mismatch"));
}

TEST(VerifierTest, CatchesImportRootedCallCutFromItsImport) {
  // Build a hand-corrupted graph: an import of pandas plus a
  // pandas-rooted call with no data-flow path from the import.
  CodeGraph graph;
  graph.AddNode(NodeKind::kImport, "pandas", 1);
  graph.AddNode(NodeKind::kCall, "pandas.read_csv", 2);
  auto diags = CodeGraphVerifier::Verify(graph);
  EXPECT_TRUE(HasCode(diags, "verify.unreachable-call"));
  // Restoring the root edge clears the diagnostic.
  graph.AddEdge(0, 1, EdgeKind::kDataFlow);
  EXPECT_TRUE(CodeGraphVerifier::Verify(graph).empty());
}

TEST(VerifierTest, UnrootedCallsAreExempt) {
  CodeGraph graph;
  graph.AddNode(NodeKind::kImport, "pandas", 1);
  graph.AddNode(NodeKind::kCall, "print", 2);  // not pandas-rooted
  EXPECT_TRUE(CodeGraphVerifier::Verify(graph).empty());
}

// ---------------------------------------------------------------------------
// Filtered pipeline-graph verifier

graph4ml::PipelineGraph MakeChain(std::vector<int> types,
                                  const std::string& estimator) {
  graph4ml::PipelineGraph out;
  out.script_name = "curated.py";
  out.dataset_name = "d";
  out.estimator = estimator;
  out.graph.node_types = std::move(types);
  for (size_t i = 0; i + 1 < out.graph.node_types.size(); ++i) {
    out.graph.edges.emplace_back(static_cast<int>(i),
                                 static_cast<int>(i + 1));
  }
  return out;
}

TEST(PipelineVerifyTest, AcceptsWellFormedChain) {
  const auto& vocab = graph4ml::PipelineVocab::Get();
  int xgb = vocab.TypeOf("xgboost");
  ASSERT_GE(xgb, graph4ml::PipelineVocab::kFirstOp);
  auto pipeline = MakeChain({graph4ml::PipelineVocab::kDatasetType,
                             graph4ml::PipelineVocab::kReadCsvType, xgb},
                            "xgboost");
  EXPECT_TRUE(graph4ml::VerifyPipelineGraph(pipeline).empty());
}

TEST(PipelineVerifyTest, CatchesCorruptedChains) {
  const auto& vocab = graph4ml::PipelineVocab::Get();
  int xgb = vocab.TypeOf("xgboost");

  auto bad_type = MakeChain({0, 1, 9999}, "");
  EXPECT_TRUE(HasCode(graph4ml::VerifyPipelineGraph(bad_type),
                      "verify.unknown-node-type"));

  auto no_anchor = MakeChain({1, 1, xgb}, "xgboost");
  EXPECT_TRUE(HasCode(graph4ml::VerifyPipelineGraph(no_anchor),
                      "verify.missing-dataset-anchor"));

  auto cyclic = MakeChain({0, 1, xgb}, "xgboost");
  cyclic.graph.edges.back() = {2, 1};  // backward edge
  EXPECT_TRUE(
      HasCode(graph4ml::VerifyPipelineGraph(cyclic), "verify.cycle"));

  auto extra_edge = MakeChain({0, 1, xgb}, "xgboost");
  extra_edge.graph.edges.emplace_back(0, 2);
  EXPECT_TRUE(HasCode(graph4ml::VerifyPipelineGraph(extra_edge),
                      "verify.not-a-chain"));

  auto mismatch = MakeChain({0, 1, xgb}, "ridge");
  EXPECT_TRUE(HasCode(graph4ml::VerifyPipelineGraph(mismatch),
                      "verify.estimator-mismatch"));
}

// ---------------------------------------------------------------------------
// Pipeline linter

gen::GeneratedGraph MakeGenerated(std::vector<int> types) {
  gen::GeneratedGraph out;
  out.graph.node_types = std::move(types);
  for (size_t i = 0; i + 1 < out.graph.node_types.size(); ++i) {
    out.graph.edges.emplace_back(static_cast<int>(i),
                                 static_cast<int>(i + 1));
  }
  out.log_prob = -1.0;
  return out;
}

TEST(LinterTest, AcceptsCuratedValidCandidates) {
  const auto& vocab = graph4ml::PipelineVocab::Get();
  int xgb = vocab.TypeOf("xgboost");
  int scaler = vocab.TypeOf("standard_scaler");
  ASSERT_GE(xgb, 2);
  ASSERT_GE(scaler, 2);
  gen::PipelineLinter linter(TaskType::kBinaryClassification);

  auto report = linter.LintGraph(MakeGenerated({0, 1, scaler, xgb}));
  EXPECT_TRUE(report.ok()) << report.Render();
  EXPECT_TRUE(report.diagnostics.empty());

  ml::PipelineSpec spec;
  spec.learner = "decision_tree";
  spec.preprocessors = {"standard_scaler"};
  EXPECT_TRUE(linter.LintSpec(spec).ok());

  gen::ScoredSkeleton skeleton;
  skeleton.spec = spec;
  skeleton.log_prob = -2.5;
  EXPECT_TRUE(linter.LintSkeleton(skeleton).ok());
}

TEST(LinterTest, RejectsGraphWithoutEstimator) {
  const auto& vocab = graph4ml::PipelineVocab::Get();
  int scaler = vocab.TypeOf("standard_scaler");
  gen::PipelineLinter linter(TaskType::kBinaryClassification);
  auto report = linter.LintGraph(MakeGenerated({0, 1, scaler}));
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.ErrorCodes(),
            (std::vector<std::string>{"lint.no-estimator"}));
}

TEST(LinterTest, RejectsWrongTaskEstimator) {
  const auto& vocab = graph4ml::PipelineVocab::Get();
  int ridge = vocab.TypeOf("ridge");  // regression-only learner
  ASSERT_GE(ridge, 2);
  gen::PipelineLinter linter(TaskType::kBinaryClassification);
  auto report = linter.LintGraph(MakeGenerated({0, 1, ridge}));
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.ErrorCodes(),
            (std::vector<std::string>{"lint.task-mismatch"}));
  // The same candidate is fine once the task matches.
  gen::PipelineLinter regression(TaskType::kRegression);
  EXPECT_TRUE(regression.LintGraph(MakeGenerated({0, 1, ridge})).ok());
}

TEST(LinterTest, RejectsCyclicGraph) {
  const auto& vocab = graph4ml::PipelineVocab::Get();
  int xgb = vocab.TypeOf("xgboost");
  auto generated = MakeGenerated({0, 1, xgb});
  generated.graph.edges.emplace_back(2, 1);  // close a cycle
  gen::PipelineLinter linter(TaskType::kBinaryClassification);
  auto report = linter.LintGraph(generated);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasCode(report.diagnostics, "lint.cycle"));
}

TEST(LinterTest, RejectsUnknownOp) {
  gen::PipelineLinter linter(TaskType::kBinaryClassification);
  auto report = linter.LintGraph(MakeGenerated({0, 1, 9999}));
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasCode(report.diagnostics, "lint.unknown-op"));

  ml::PipelineSpec spec;
  spec.learner = "not_a_learner";
  auto spec_report = linter.LintSpec(spec);
  EXPECT_FALSE(spec_report.ok());
  EXPECT_EQ(spec_report.ErrorCodes(),
            (std::vector<std::string>{"lint.unknown-op"}));
}

TEST(LinterTest, EdgeRangeCheckedBeforeOpChecks) {
  const auto& vocab = graph4ml::PipelineVocab::Get();
  int xgb = vocab.TypeOf("xgboost");
  auto generated = MakeGenerated({0, 1, xgb});
  generated.graph.edges.emplace_back(1, 42);
  gen::PipelineLinter linter(TaskType::kBinaryClassification);
  EXPECT_TRUE(HasCode(linter.LintGraph(generated).diagnostics,
                      "lint.edge-out-of-range"));
}

TEST(LinterTest, GraphLevelDuplicatesWarnButSpecLevelDuplicatesReject) {
  const auto& vocab = graph4ml::PipelineVocab::Get();
  int xgb = vocab.TypeOf("xgboost");
  int scaler = vocab.TypeOf("standard_scaler");
  gen::PipelineLinter linter(TaskType::kBinaryClassification);

  // The skeleton mapper folds graph-level repeats, so they only warn —
  // the Fit gate must not reject more than GraphToSkeleton accepts.
  auto graph_report =
      linter.LintGraph(MakeGenerated({0, 1, scaler, scaler, xgb}));
  EXPECT_TRUE(graph_report.ok());
  EXPECT_TRUE(
      HasCode(graph_report.diagnostics, "lint.duplicate-transformer"));

  // Nothing downstream folds spec-level repeats: hard error.
  ml::PipelineSpec spec;
  spec.learner = "decision_tree";
  spec.preprocessors = {"standard_scaler", "standard_scaler"};
  auto spec_report = linter.LintSpec(spec);
  EXPECT_FALSE(spec_report.ok());
  EXPECT_EQ(spec_report.ErrorCodes(),
            (std::vector<std::string>{"lint.duplicate-transformer"}));
  EXPECT_FALSE(spec_report.diagnostics[0].subject.empty());
}

TEST(LinterTest, PositiveScoreOnlyWarns) {
  gen::PipelineLinter linter(TaskType::kBinaryClassification);
  gen::ScoredSkeleton skeleton;
  skeleton.spec.learner = "decision_tree";
  skeleton.log_prob = 0.5;  // impossible for a log-probability
  auto report = linter.LintSkeleton(skeleton);
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(HasCode(report.diagnostics, "lint.positive-score"));
}

// ---------------------------------------------------------------------------
// Skeleton mapper diagnostics

TEST(SkeletonDiagnosticTest, MapperReportsStructuredRejection) {
  const auto& vocab = graph4ml::PipelineVocab::Get();
  int scaler = vocab.TypeOf("standard_scaler");
  auto generated = MakeGenerated({0, 1, scaler});  // no estimator
  Diagnostic diagnostic;
  auto skeleton = gen::GraphToSkeleton(
      generated, TaskType::kBinaryClassification, &diagnostic);
  ASSERT_FALSE(skeleton.ok());
  EXPECT_EQ(diagnostic.code, "skeleton.no-estimator");
  EXPECT_EQ(skeleton.status().code(), StatusCode::kInvalidArgument);

  Diagnostic unknown;
  auto bad = gen::GraphToSkeleton(MakeGenerated({0, 1, 9999}),
                                  TaskType::kBinaryClassification, &unknown);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(unknown.code, "skeleton.unknown-op");
}

}  // namespace
}  // namespace kgpip::codegraph::analysis
