// Tests for the shared benchmark harness utilities (option parsing and
// score aggregation) — the code every experiment binary depends on.
#include <cmath>

#include <gtest/gtest.h>

#include "bench/harness.h"

namespace kgpip::bench {
namespace {

TEST(ParseOptionsTest, DefaultsAndFlags) {
  const char* argv_defaults[] = {"bench"};
  HarnessOptions defaults =
      ParseOptions(1, const_cast<char**>(argv_defaults));
  EXPECT_EQ(defaults.runs, 3);
  EXPECT_FALSE(defaults.quick);

  const char* argv_quick[] = {"bench", "--quick"};
  HarnessOptions quick = ParseOptions(2, const_cast<char**>(argv_quick));
  EXPECT_TRUE(quick.quick);
  EXPECT_EQ(quick.runs, 1);
  EXPECT_LT(quick.trials, defaults.trials);

  const char* argv_custom[] = {"bench", "--runs=5", "--trials=99",
                               "--seed=123"};
  HarnessOptions custom = ParseOptions(4, const_cast<char**>(argv_custom));
  EXPECT_EQ(custom.runs, 5);
  EXPECT_EQ(custom.trials, 99);
  EXPECT_EQ(custom.seed, 123u);

  // --quick then --trials overrides the quick trial count.
  const char* argv_both[] = {"bench", "--quick", "--trials=33"};
  HarnessOptions both = ParseOptions(3, const_cast<char**>(argv_both));
  EXPECT_TRUE(both.quick);
  EXPECT_EQ(both.trials, 33);
}

TEST(MeanScoreTest, SkipsNansAndHandlesAllFailed) {
  EXPECT_DOUBLE_EQ(MeanScore({0.5, 0.7}), 0.6);
  EXPECT_DOUBLE_EQ(MeanScore({0.5, std::nan(""), 0.7}), 0.6);
  EXPECT_TRUE(std::isnan(MeanScore({std::nan("")})));
  EXPECT_TRUE(std::isnan(MeanScore({})));
}

std::vector<DatasetSpec> ThreeSpecs() {
  DatasetSpec binary;
  binary.name = "b";
  binary.task = TaskType::kBinaryClassification;
  DatasetSpec multi;
  multi.name = "m";
  multi.task = TaskType::kMultiClassification;
  DatasetSpec regression;
  regression.name = "r";
  regression.task = TaskType::kRegression;
  return {binary, multi, regression};
}

TEST(AggregationTest, PerTaskMeansAndFailuresScoreZero) {
  SystemScores scores;
  scores.system = "test";
  scores.scores["b"] = {0.8, 0.9};
  scores.scores["m"] = {0.6};
  scores.scores["r"] = {std::nan("")};  // failed on regression
  auto specs = ThreeSpecs();

  TaskAggregate agg = AggregateByTask(scores, specs);
  EXPECT_NEAR(agg.binary_mean, 0.85, 1e-12);
  EXPECT_NEAR(agg.multi_mean, 0.6, 1e-12);
  EXPECT_NEAR(agg.regression_mean, 0.0, 1e-12);  // failure counts as 0

  std::vector<double> per_dataset = PerDatasetMeans(scores, specs);
  ASSERT_EQ(per_dataset.size(), 3u);
  EXPECT_NEAR(per_dataset[0], 0.85, 1e-12);
  EXPECT_NEAR(per_dataset[1], 0.6, 1e-12);
  EXPECT_NEAR(per_dataset[2], 0.0, 1e-12);
}

TEST(ComparisonToJsonTest, EmitsAggregatesScoresAndRobustness) {
  SystemScores scores;
  scores.system = "test";
  scores.scores["b"] = {0.8, 0.9};
  scores.scores["m"] = {0.6, std::nan("")};  // one failed run
  scores.scores["r"] = {std::nan("")};       // all runs failed
  scores.trial_failures = 4;
  scores.degraded_runs = 1;
  HarnessOptions options;
  options.runs = 2;
  options.trials = 7;

  Json json = ComparisonToJson(ThreeSpecs(), {scores}, options);
  EXPECT_EQ(json.Get("options").Get("trials").AsInt(), 7);
  ASSERT_EQ(json.Get("systems").size(), 1u);
  const Json& entry = json.Get("systems").at(0);
  EXPECT_EQ(entry.Get("system").AsString(), "test");
  EXPECT_NEAR(
      entry.Get("aggregates").Get("binary").Get("mean").AsDouble(), 0.85,
      1e-12);

  // NaN is not representable in strict JSON: failed runs become null,
  // an all-failed dataset's mean becomes null.
  const Json& datasets = entry.Get("datasets");
  EXPECT_TRUE(datasets.Get("m").Get("scores").at(1).is_null());
  EXPECT_TRUE(datasets.Get("r").Get("mean").is_null());
  EXPECT_NEAR(datasets.Get("b").Get("mean").AsDouble(), 0.85, 1e-12);
  EXPECT_EQ(datasets.Get("b").Get("task").AsString(),
            TaskTypeName(TaskType::kBinaryClassification));

  EXPECT_EQ(entry.Get("robustness").Get("trial_failures").AsInt(), 4);
  EXPECT_EQ(entry.Get("robustness").Get("degraded_runs").AsInt(), 1);

  // The dump must round-trip through the strict parser.
  auto parsed = Json::Parse(json.Dump(2));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Get("systems").size(), 1u);
}

TEST(EvaluateOnceTest, ScoresSystemAndReportsFailure) {
  HarnessOptions options;
  options.runs = 1;
  EvalHarness harness(options);
  automl::FlamlSystem flaml;
  DatasetSpec spec;
  spec.name = "harness_probe";
  spec.family = ConceptFamily::kLinear;
  spec.rows = 200;
  double score = harness.EvaluateOnce(flaml, spec, 0, /*trials=*/8);
  EXPECT_FALSE(std::isnan(score));
  EXPECT_GE(score, 0.0);
  EXPECT_LE(score, 1.0);

  // AL on a text dataset fails -> NaN, not a crash.
  automl::AlSystem al;
  DatasetSpec text;
  text.name = "harness_text";
  text.family = ConceptFamily::kText;
  text.num_text = 1;
  text.rows = 150;
  EXPECT_TRUE(std::isnan(harness.EvaluateOnce(al, text, 0, 8)));
}

}  // namespace
}  // namespace kgpip::bench
