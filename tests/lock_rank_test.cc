#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/fault.h"
#include "util/mutex.h"
#include "util/thread_pool.h"

namespace kgpip::util {
namespace {

// Violation recorder installed in place of the aborting default handler:
// the handler returns, so the offending acquisition proceeds and the test
// observes the report instead of dying.
std::atomic<int> g_violations{0};
std::mutex g_record_mu;
std::string g_last_acquiring;
std::string g_last_held;

void RecordViolation(const char* acquiring, int acquiring_rank,
                     const char* held, int held_rank) {
  (void)acquiring_rank;
  (void)held_rank;
  g_violations.fetch_add(1);
  std::lock_guard<std::mutex> lock(g_record_mu);
  g_last_acquiring = acquiring;
  g_last_held = held;
}

/// Every test runs with checking force-enabled and the recording handler;
/// both are restored so the suite leaves process state untouched.
class LockRankTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!LockRankCheckingCompiled()) {
      GTEST_SKIP() << "built with KGPIP_NO_LOCK_RANK";
    }
    g_violations.store(0);
    SetLockRankCheckingEnabled(true);
    SetLockRankViolationHandler(&RecordViolation);
  }
  void TearDown() override {
    SetLockRankViolationHandler(nullptr);  // restore aborting default
    SetLockRankCheckingEnabled(false);
  }
};

TEST_F(LockRankTest, RankNamesAreHumanReadable) {
  EXPECT_STREQ(LockRankName(LockRank::kServeServer), "serve.server");
  EXPECT_STREQ(LockRankName(LockRank::kPoolDeque), "pool.deque");
  EXPECT_STREQ(LockRankName(LockRank::kLeaf), "leaf");
}

TEST_F(LockRankTest, DescendingAcquisitionOrderIsClean) {
  Mutex outer(LockRank::kServeServer, "test.outer");
  Mutex middle(LockRank::kServeCache, "test.middle");
  Mutex inner(LockRank::kObsMetrics, "test.inner");
  {
    MutexLock a(outer);
    MutexLock b(middle);
    MutexLock c(inner);
    const std::vector<std::string> held = HeldLockNamesForTest();
    ASSERT_EQ(held.size(), 3u);
    EXPECT_EQ(held[0], "test.outer");  // outermost first
    EXPECT_EQ(held[2], "test.inner");
  }
  EXPECT_TRUE(HeldLockNamesForTest().empty());
  EXPECT_EQ(g_violations.load(), 0);
}

TEST_F(LockRankTest, OutOfOrderAcquisitionIsReportedWithBothNames) {
  Mutex low(LockRank::kObsMetrics, "test.low");
  Mutex high(LockRank::kServeCache, "test.high");
  {
    MutexLock a(low);
    MutexLock b(high);  // 90 while holding 30: the AB/BA half that hangs
  }
  EXPECT_EQ(g_violations.load(), 1);
  std::lock_guard<std::mutex> lock(g_record_mu);
  EXPECT_EQ(g_last_acquiring, "test.high");
  EXPECT_EQ(g_last_held, "test.low");
}

TEST_F(LockRankTest, EqualRanksMayNotNest) {
  // Two same-rank locks can deadlock AB/BA between threads, so nesting
  // them is rejected even though no cycle exists on this thread yet.
  Mutex a(LockRank::kFault, "test.fault_a");
  Mutex b(LockRank::kFault, "test.fault_b");
  {
    MutexLock la(a);
    MutexLock lb(b);
  }
  EXPECT_EQ(g_violations.load(), 1);
}

TEST_F(LockRankTest, UnrankedMutexesAreExemptEitherSide) {
  Mutex unranked;  // e.g. a function-local test lock
  Mutex ranked(LockRank::kObsTrace, "test.ranked");
  {
    MutexLock a(unranked);
    MutexLock b(ranked);
  }
  {
    MutexLock a(ranked);
    MutexLock b(unranked);
  }
  EXPECT_EQ(g_violations.load(), 0);
}

TEST_F(LockRankTest, TryLockSkipsTheOrderCheckButArmsLaterOnes) {
  Mutex low(LockRank::kFault, "test.try_low");
  Mutex high(LockRank::kServeCache, "test.try_high");
  ASSERT_TRUE(low.TryLock());  // a failed TryLock cannot deadlock
  EXPECT_EQ(g_violations.load(), 0);
  high.Lock();  // ...but the held rank it pushed still polices this
  EXPECT_EQ(g_violations.load(), 1);
  high.Unlock();
  low.Unlock();
}

TEST_F(LockRankTest, ReleaseRestoresTheOuterRankWindow) {
  Mutex outer(LockRank::kServeServer, "test.outer");
  Mutex inner(LockRank::kObsMetrics, "test.inner");
  Mutex middle(LockRank::kServeCache, "test.middle");
  MutexLock a(outer);
  {
    MutexLock b(inner);
  }
  // inner (30) is gone; acquiring 90 under 100 alone is in order again.
  {
    MutexLock c(middle);
  }
  EXPECT_EQ(g_violations.load(), 0);
}

TEST_F(LockRankTest, DisabledCheckingBehavesLikePlainStdMutex) {
  SetLockRankCheckingEnabled(false);
  Mutex low(LockRank::kObsMetrics, "test.low");
  Mutex high(LockRank::kServeCache, "test.high");
  {
    MutexLock a(low);
    MutexLock b(high);  // out of order, but nobody is watching
  }
  EXPECT_EQ(g_violations.load(), 0);
  EXPECT_TRUE(HeldLockNamesForTest().empty());

  // Mutual exclusion is untouched by the toggle.
  Mutex mu(LockRank::kLeaf, "test.counter");
  int counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 5000; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter, 4 * 5000);

  mu.Lock();
  EXPECT_FALSE(mu.TryLock());  // held elsewhere: TryLock must refuse
  mu.Unlock();
}

TEST_F(LockRankTest, CondVarWaitKeepsTheMutexOnTheHeldStack) {
  Mutex mu(LockRank::kServeServer, "test.cv");
  CondVar cv;
  bool ready = false;
  bool saw_lock_in_predicate = false;

  std::thread waiter([&] {
    MutexLock lock(mu);
    cv.Wait(mu, [&] {
      // The predicate runs with the lock held; the rank stack must agree
      // so acquisitions from inside it are checked against test.cv.
      saw_lock_in_predicate = !HeldLockNamesForTest().empty();
      return ready;
    });
  });
  {
    // Store under the mutex: the standard no-lost-wakeup discipline this
    // PR enforces across the codebase.
    MutexLock lock(mu);
    ready = true;
  }
  cv.NotifyAll();
  waiter.join();
  EXPECT_TRUE(saw_lock_in_predicate);
  EXPECT_TRUE(HeldLockNamesForTest().empty());
  EXPECT_EQ(g_violations.load(), 0);
}

TEST_F(LockRankTest, CondVarWaitForTimesOutWithPredicateStillFalse) {
  Mutex mu(LockRank::kServeServer, "test.cv_timeout");
  CondVar cv;
  MutexLock lock(mu);
  EXPECT_FALSE(cv.WaitFor(mu, 0.01, [] { return false; }));
  EXPECT_EQ(g_violations.load(), 0);
}

// End-to-end: the real ranked subsystems (pool registry/wake/loop/deque,
// fault injector, metrics, tracer) nested by real work, with checking on.
// Any ordering regression in the sweep shows up as a recorded violation.
TEST_F(LockRankTest, PoolMetricsTraceFaultNestingIsCleanUnderLoad) {
  obs::Tracer::Global().Enable();
  FaultConfig faults;
  faults.seed = 7;
  faults.nan_score_rate = 0.25;
  ScopedFaultInjection injection(faults);
  std::atomic<int64_t> sum{0};
  ThreadPool& pool = ThreadPool::Global();
  for (int round = 0; round < 3; ++round) {
    pool.ParallelFor(256, [&](size_t item) {
      KGPIP_TRACE_SPAN("lock_rank_test.item");
      obs::MetricsRegistry::Global()
          .GetCounter("lock_rank_test.items")
          ->Increment();
      // Exercises the fault lock from pool lanes; the decision itself is
      // irrelevant here.
      (void)FaultInjector::Active()->InjectNanScore("lock_rank_test");
      sum.fetch_add(static_cast<int64_t>(item));
    });
  }
  obs::Tracer::Global().Disable();
  EXPECT_EQ(sum.load(), 3 * (255 * 256 / 2));
  EXPECT_EQ(g_violations.load(), 0) << "acquiring '" << g_last_acquiring
                                    << "' while holding '" << g_last_held
                                    << "'";
}

}  // namespace
}  // namespace kgpip::util
