// Tests for the observability subsystem (src/obs): metric primitives,
// trace spans + Chrome export, stage profiles, and the end-to-end
// budget-attribution invariant Kgpip::Fit promises (stage seconds sum to
// roughly the fit wall time).
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "core/kgpip.h"
#include "data/synthetic.h"
#include "obs/metrics.h"
#include "obs/sliding_window.h"
#include "obs/stage_profile.h"
#include "obs/trace.h"
#include "util/request_context.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace kgpip {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// ---------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------

TEST(HistogramTest, BucketBoundaries) {
  obs::Histogram h;  // scale 1e-6, growth 2, 48 buckets
  const int last = h.num_buckets() - 1;

  // Underflow bucket: zero, negatives, and anything at or below scale.
  EXPECT_EQ(h.BucketIndex(0.0), 0);
  EXPECT_EQ(h.BucketIndex(-3.5), 0);
  EXPECT_EQ(h.BucketIndex(1e-9), 0);
  EXPECT_EQ(h.BucketIndex(1e-6), 0);  // boundary is inclusive below

  // First exponential bucket: (scale, scale * growth].
  EXPECT_EQ(h.BucketIndex(1.5e-6), 1);
  EXPECT_EQ(h.BucketIndex(2e-6), 1);  // exact boundary stays low
  EXPECT_EQ(h.BucketIndex(2.5e-6), 2);

  // Overflow bucket: +inf, NaN, and anything past the last boundary.
  EXPECT_EQ(h.BucketIndex(kInf), last);
  EXPECT_EQ(h.BucketIndex(std::nan("")), last);
  EXPECT_EQ(h.BucketIndex(1e30), last);

  // Upper bounds are scale * growth^i, +inf at the end.
  EXPECT_DOUBLE_EQ(h.BucketUpperBound(1), 2e-6);
  EXPECT_DOUBLE_EQ(h.BucketUpperBound(2), 4e-6);
  EXPECT_TRUE(std::isinf(h.BucketUpperBound(last)));
}

TEST(HistogramTest, EveryBoundaryLandsInItsOwnBucket) {
  obs::Histogram h;
  // A value exactly on bucket i's upper bound must index bucket i, and a
  // hair above must index i + 1 — across the whole range.
  for (int i = 1; i < h.num_buckets() - 1; ++i) {
    const double bound = h.BucketUpperBound(i);
    EXPECT_EQ(h.BucketIndex(bound), i) << "at bound " << bound;
    if (i + 1 < h.num_buckets() - 1) {
      EXPECT_EQ(h.BucketIndex(bound * 1.001), i + 1);
    }
  }
}

TEST(HistogramTest, AggregatesTrackFiniteSamplesOnly) {
  obs::Histogram h;
  h.Record(1.0);
  h.Record(2.0);
  h.Record(3.0);
  EXPECT_EQ(h.count(), 3);
  EXPECT_DOUBLE_EQ(h.sum(), 6.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 3.0);

  h.Record(kInf);  // counted, but sum/min/max stay finite
  h.Record(std::nan(""));
  EXPECT_EQ(h.count(), 5);
  EXPECT_DOUBLE_EQ(h.sum(), 6.0);
  EXPECT_DOUBLE_EQ(h.max(), 3.0);

  h.Reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

TEST(HistogramTest, ToJsonElidesEmptyBucketsAndMarksOverflow) {
  obs::Histogram h;
  h.Record(1.5e-6);  // bucket 1
  h.Record(kInf);    // overflow bucket
  Json json = h.ToJson();
  EXPECT_EQ(json.Get("count").AsInt(), 2);
  const Json& buckets = json.Get("buckets");
  ASSERT_TRUE(buckets.is_array());
  ASSERT_EQ(buckets.size(), 2u);  // 46 empty buckets elided
  EXPECT_DOUBLE_EQ(buckets.at(0).Get("le").AsDouble(), 2e-6);
  EXPECT_EQ(buckets.at(0).Get("count").AsInt(), 1);
  ASSERT_TRUE(buckets.at(1).Get("le").is_string());
  EXPECT_EQ(buckets.at(1).Get("le").AsString(), "+Inf");
}

// ---------------------------------------------------------------------
// Counters / registry
// ---------------------------------------------------------------------

TEST(MetricsRegistryTest, CounterIncrementsAreThreadSafe) {
  obs::MetricsRegistry registry;  // private registry, no cross-test state
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry] {
      // Lookup inside the thread too: find-or-create must be safe under
      // concurrent first access.
      obs::Counter* counter = registry.GetCounter("test.concurrent");
      obs::Histogram* hist = registry.GetHistogram("test.concurrent_hist");
      for (int i = 0; i < kIncrements; ++i) {
        counter->Increment();
        hist->Record(1e-5);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(registry.GetCounter("test.concurrent")->value(),
            static_cast<int64_t>(kThreads) * kIncrements);
  EXPECT_EQ(registry.GetHistogram("test.concurrent_hist")->count(),
            static_cast<int64_t>(kThreads) * kIncrements);
}

TEST(MetricsRegistryTest, PointersAreStableAcrossReset) {
  obs::MetricsRegistry registry;
  obs::Counter* counter = registry.GetCounter("test.stable");
  obs::Gauge* gauge = registry.GetGauge("test.gauge");
  counter->Increment(5);
  gauge->Set(2.5);
  registry.Reset();
  // Reset zeroes in place; cached pointers keep working.
  EXPECT_EQ(counter->value(), 0);
  EXPECT_DOUBLE_EQ(gauge->value(), 0.0);
  EXPECT_EQ(registry.GetCounter("test.stable"), counter);
  counter->Increment();
  EXPECT_EQ(registry.GetCounter("test.stable")->value(), 1);
}

TEST(MetricsRegistryTest, SnapshotListsAllThreeKinds) {
  obs::MetricsRegistry registry;
  registry.GetCounter("a.count")->Increment(3);
  registry.GetGauge("a.gauge")->Set(1.5);
  registry.GetHistogram("a.hist")->Record(0.25);
  Json json = registry.ToJson();
  EXPECT_EQ(json.Get("counters").Get("a.count").AsInt(), 3);
  EXPECT_DOUBLE_EQ(json.Get("gauges").Get("a.gauge").AsDouble(), 1.5);
  EXPECT_EQ(json.Get("histograms").Get("a.hist").Get("count").AsInt(), 1);
}

// ---------------------------------------------------------------------
// Sliding windows
// ---------------------------------------------------------------------

obs::SlidingWindowHistogram::Options SmallWindow() {
  obs::SlidingWindowHistogram::Options options;
  options.window_seconds = 60.0;  // 6 slices of 10 s each
  options.num_slices = 6;
  return options;
}

TEST(SlidingWindowTest, EmptyWindowSnapshotIsAllZeros) {
  obs::SlidingWindowHistogram window(SmallWindow());
  obs::SlidingWindowHistogram::Snapshot snap = window.SnapshotAt(123.0);
  EXPECT_EQ(snap.count, 0);
  EXPECT_DOUBLE_EQ(snap.sum, 0.0);
  EXPECT_DOUBLE_EQ(snap.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(snap.FractionAbove(1.0), 0.0);
  EXPECT_DOUBLE_EQ(snap.RatePerSecond(), 0.0);
  Json json = snap.ToJson();
  EXPECT_EQ(json.Get("count").AsInt(), 0);
  EXPECT_TRUE(json.Get("p50").is_null());  // no quantiles without samples
}

TEST(SlidingWindowTest, SamplesExpireAsTheWindowSlidesPast) {
  obs::SlidingWindowHistogram window(SmallWindow());
  window.RecordAt(0.010, /*now=*/5.0);   // slice epoch 0
  window.RecordAt(0.020, /*now=*/25.0);  // slice epoch 2

  // Both samples inside the trailing 60 s.
  EXPECT_EQ(window.SnapshotAt(30.0).count, 2);
  EXPECT_DOUBLE_EQ(window.SnapshotAt(30.0).sum, 0.030);

  // At t=65 the window covers epochs [1, 6]: the epoch-0 sample is out.
  obs::SlidingWindowHistogram::Snapshot later = window.SnapshotAt(65.0);
  EXPECT_EQ(later.count, 1);
  EXPECT_DOUBLE_EQ(later.min, 0.020);
  EXPECT_DOUBLE_EQ(later.max, 0.020);

  // Far future: everything expired. No Record needed to "advance" time —
  // snapshots filter stale slices by epoch, there is no sweeper to wait
  // for.
  EXPECT_EQ(window.SnapshotAt(500.0).count, 0);
}

TEST(SlidingWindowTest, RecordRecyclesTheSliceItDisplaces) {
  obs::SlidingWindowHistogram window(SmallWindow());
  window.RecordAt(0.001, /*now=*/5.0);  // epoch 0 -> slot 0
  // Six epochs later the same slot is reused; the old contents must be
  // discarded, not merged.
  window.RecordAt(0.256, /*now=*/365.0);  // epoch 36 -> slot 0
  obs::SlidingWindowHistogram::Snapshot snap = window.SnapshotAt(365.0);
  EXPECT_EQ(snap.count, 1);
  EXPECT_DOUBLE_EQ(snap.min, 0.256);
  EXPECT_DOUBLE_EQ(snap.sum, 0.256);
}

TEST(SlidingWindowTest, QuantilesInterpolateAndClampToObservedRange) {
  obs::SlidingWindowHistogram window(SmallWindow());
  for (int i = 0; i < 80; ++i) window.RecordAt(0.001, 10.0);
  for (int i = 0; i < 20; ++i) window.RecordAt(1.0, 10.0);
  obs::SlidingWindowHistogram::Snapshot snap = window.SnapshotAt(10.0);
  ASSERT_EQ(snap.count, 100);

  // p50 lands in the 1 ms population (bucketed, so allow one ×2 bucket
  // of slack); p99 lands in the 1 s population; both stay inside the
  // observed [min, max].
  const double p50 = snap.Quantile(0.50);
  const double p99 = snap.Quantile(0.99);
  EXPECT_GE(p50, 0.0005);
  EXPECT_LE(p50, 0.002);
  EXPECT_GE(p99, 0.5);
  EXPECT_LE(p99, 1.0);
  EXPECT_GE(snap.Quantile(0.0), snap.min);
  EXPECT_LE(snap.Quantile(1.0), snap.max);

  // SLO-burn numerator: exactly the 1 s cohort sits above 100 ms.
  EXPECT_NEAR(snap.FractionAbove(0.100), 0.20, 0.05);
  EXPECT_DOUBLE_EQ(snap.FractionAbove(2.0), 0.0);
  EXPECT_NEAR(snap.FractionAbove(1e-9), 1.0, 1e-9);
}

TEST(SlidingWindowTest, ConcurrentRecordsAndSnapshotsAreSafe) {
  // 8 threads record while 2 snapshot — under TSan this is the data-race
  // proof for the one-mutex design; everywhere it checks no sample is
  // lost.
  obs::SlidingWindowHistogram window(SmallWindow());
  constexpr int kThreads = 8;
  constexpr int kSamples = 5000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&window, &stop] {
      while (!stop.load()) {
        obs::SlidingWindowHistogram::Snapshot snap = window.SnapshotAt(10.0);
        ASSERT_GE(snap.count, 0);
      }
    });
  }
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&window] {
      for (int i = 0; i < kSamples; ++i) window.RecordAt(1e-3, 10.0);
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true);
  for (std::thread& r : readers) r.join();
  EXPECT_EQ(window.SnapshotAt(10.0).count,
            static_cast<int64_t>(kThreads) * kSamples);
}

TEST(SlidingWindowCounterTest, WindowedCountRotates) {
  obs::SlidingWindowCounter::Options options;
  options.window_seconds = 60.0;
  options.num_slices = 6;
  obs::SlidingWindowCounter counter(options);
  counter.AddAt(3, 5.0);
  counter.AddAt(2, 25.0);
  EXPECT_EQ(counter.WindowedCountAt(30.0), 5);
  EXPECT_EQ(counter.WindowedCountAt(70.0), 2);   // epoch-0 burst aged out
  EXPECT_EQ(counter.WindowedCountAt(500.0), 0);  // everything aged out
}

TEST(MetricsRegistryTest, SlidingMetricsAreStableAndListedInJson) {
  obs::MetricsRegistry registry;
  obs::SlidingWindowHistogram* hist =
      registry.GetSlidingHistogram("w.latency", 30.0, 3);
  obs::SlidingWindowCounter* counter = registry.GetSlidingCounter("w.events");
  EXPECT_EQ(registry.GetSlidingHistogram("w.latency"), hist)
      << "geometry is fixed by the first caller; later lookups share it";
  EXPECT_EQ(registry.GetSlidingCounter("w.events"), counter);
  EXPECT_DOUBLE_EQ(hist->options().window_seconds, 30.0);

  hist->Record(0.015);
  counter->Add(4);
  Json json = registry.ToJson();
  EXPECT_EQ(json.Get("windows").Get("w.latency").Get("count").AsInt(), 1);
  EXPECT_EQ(json.Get("windows").Get("w.events").Get("count").AsInt(), 4);

  registry.Reset();
  EXPECT_EQ(hist->GetSnapshot().count, 0);
  EXPECT_EQ(counter->WindowedCount(), 0);
}

TEST(MetricsRegistryTest, WriteJsonFileIsAtomicAndParses) {
  const std::string dir =
      std::filesystem::temp_directory_path() /
      StrFormat("kgpip_obs_test_%d", static_cast<int>(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/metrics.json";

  obs::MetricsRegistry registry;
  registry.GetCounter("file.count")->Increment(7);
  ASSERT_TRUE(registry.WriteJsonFile(path).ok());
  // Overwrite must also work (rename over an existing snapshot).
  registry.GetCounter("file.count")->Increment();
  ASSERT_TRUE(registry.WriteJsonFile(path).ok());

  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto parsed = Json::Parse(buffer.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Get("counters").Get("file.count").AsInt(), 8);

  // Temp-then-rename leaves no intermediate files behind.
  size_t entries = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    (void)entry;
    ++entries;
  }
  EXPECT_EQ(entries, 1u);
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------
// Trace spans
// ---------------------------------------------------------------------

/// Restores the tracer to disabled + empty whatever a test does.
class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Tracer::Global().Disable();
    obs::Tracer::Global().Clear();
  }
  void TearDown() override {
    obs::Tracer::Global().Disable();
    obs::Tracer::Global().Clear();
  }
};

TEST_F(TracerTest, DisabledSpanIsInactiveAndRecordsNothing) {
  {
    obs::TraceSpan span("never.recorded");
    EXPECT_FALSE(span.active());
    span.SetAttr("ignored", 1.0);  // must be a no-op, not a crash
  }
  EXPECT_EQ(obs::Tracer::Global().num_events(), 0u);
}

TEST_F(TracerTest, SpansNestByDepthAndContainment) {
  obs::Tracer::Global().Enable();
  {
    obs::TraceSpan outer("outer");
    EXPECT_TRUE(outer.active());
    {
      obs::TraceSpan inner("inner");
      EXPECT_TRUE(inner.active());
    }
  }
  obs::Tracer::Global().Disable();

  std::vector<obs::TraceEvent> events = obs::Tracer::Global().Snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Completion order: the inner span ends (and records) first.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[1].name, "outer");
  EXPECT_EQ(events[0].depth, 2);
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_EQ(events[0].tid, events[1].tid);
  // Timestamp containment — what Chrome/Perfetto uses to stack spans.
  const obs::TraceEvent& inner = events[0];
  const obs::TraceEvent& outer = events[1];
  EXPECT_LE(outer.start_us, inner.start_us);
  EXPECT_LE(inner.start_us + inner.dur_us,
            outer.start_us + outer.dur_us + 1e-3);
}

TEST_F(TracerTest, MacroAndAttrsLandInTheEvent) {
  obs::Tracer::Global().Enable();
  {
    obs::TraceSpan span("attrs");
    span.SetAttr("dataset", std::string("demo"));
    span.SetAttr("score", 0.75);
    span.SetAttr("trials", static_cast<int64_t>(12));
    KGPIP_TRACE_SPAN("macro.span");
  }
  obs::Tracer::Global().Disable();
  std::vector<obs::TraceEvent> events = obs::Tracer::Global().Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "macro.span");
  const obs::TraceEvent& attrs = events[1];
  std::set<std::string> keys;
  for (const auto& [key, value] : attrs.args) keys.insert(key);
  EXPECT_TRUE(keys.count("dataset"));
  EXPECT_TRUE(keys.count("score"));
  EXPECT_TRUE(keys.count("trials"));
}

TEST_F(TracerTest, ChromeJsonRoundTripsThroughUtilJson) {
  obs::Tracer::Global().Enable();
  {
    obs::TraceSpan outer("kgpip.fit");
    obs::TraceSpan inner("hpo.trial");
  }
  obs::Tracer::Global().Disable();

  std::string dumped = obs::Tracer::Global().ToChromeJson().Dump(2);
  auto parsed = Json::Parse(dumped);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Get("displayTimeUnit").AsString(), "ms");
  const Json& events = parsed->Get("traceEvents");
  ASSERT_TRUE(events.is_array());
  // Two complete ("X") span events plus process-name ("M") metadata.
  std::set<std::string> names;
  size_t spans = 0;
  for (size_t i = 0; i < events.size(); ++i) {
    const Json& e = events.at(i);
    if (e.Get("ph").AsString() != "X") continue;
    ++spans;
    EXPECT_EQ(e.Get("pid").AsInt(), 1);
    EXPECT_GE(e.Get("dur").AsDouble(), 0.0);
    names.insert(e.Get("name").AsString());
  }
  EXPECT_EQ(spans, 2u);
  EXPECT_TRUE(names.count("kgpip.fit"));
  EXPECT_TRUE(names.count("hpo.trial"));
}

TEST_F(TracerTest, CapacityDropsExcessEventsAndCountsThem) {
  obs::Tracer::Global().set_capacity(3);
  obs::Tracer::Global().Enable();
  for (int i = 0; i < 5; ++i) {
    obs::TraceSpan span("burst");
  }
  obs::Tracer::Global().Disable();
  EXPECT_EQ(obs::Tracer::Global().num_events(), 3u);
  EXPECT_EQ(obs::Tracer::Global().dropped_events(), 2u);
  obs::Tracer::Global().set_capacity(1u << 20);
}

TEST_F(TracerTest, DroppedSpansFeedTheCounterAndTheChromeFooter) {
  obs::Counter* dropped =
      obs::MetricsRegistry::Global().GetCounter("obs.trace.dropped_spans");
  const int64_t before = dropped->value();

  obs::Tracer::Global().set_capacity(2);
  obs::Tracer::Global().Enable();
  for (int i = 0; i < 6; ++i) {
    obs::TraceSpan span("overflow");
  }
  obs::Tracer::Global().Disable();

  // Drops are visible in the lifetime metric (alerting surface) and in
  // the export itself, so a truncated trace is never mistaken for a
  // complete one.
  EXPECT_EQ(dropped->value() - before, 4);
  Json chrome = obs::Tracer::Global().ToChromeJson();
  EXPECT_EQ(chrome.Get("kgpipDroppedEvents").AsInt(), 4);

  obs::Tracer::Global().set_capacity(1u << 20);
  obs::Tracer::Global().Clear();
  // A clean trace exports an explicit zero, not a missing key.
  EXPECT_EQ(obs::Tracer::Global().ToChromeJson().Get("kgpipDroppedEvents")
                .AsInt(),
            0);
}

TEST_F(TracerTest, SpansCaptureTheAmbientRequestContext) {
  obs::Tracer::Global().Enable();
  {
    util::ScopedRequestContext ctx(42, "acme");
    obs::TraceSpan span("ctx.tagged");
  }
  {
    obs::TraceSpan span("ctx.untagged");
  }
  obs::Tracer::Global().Disable();

  std::vector<obs::TraceEvent> events = obs::Tracer::Global().Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].request_id, 42u);
  EXPECT_EQ(events[0].tenant, "acme");
  EXPECT_EQ(events[1].request_id, 0u);

  // Chrome export: tagged spans move to a per-request virtual process
  // (named via an "M" metadata event); untagged spans stay on pid 1.
  Json chrome = obs::Tracer::Global().ToChromeJson();
  int64_t tagged_pid = -1;
  int64_t untagged_pid = -1;
  bool saw_request_process_name = false;
  for (const Json& e : chrome.Get("traceEvents").items()) {
    if (e.Get("name").AsString() == "ctx.tagged") {
      tagged_pid = e.Get("pid").AsInt();
      EXPECT_EQ(e.Get("args").Get("request_id").AsInt(), 42);
      EXPECT_EQ(e.Get("args").Get("tenant").AsString(), "acme");
    } else if (e.Get("name").AsString() == "ctx.untagged") {
      untagged_pid = e.Get("pid").AsInt();
    } else if (e.Get("ph").AsString() == "M" &&
               e.Get("name").AsString() == "process_name") {
      const std::string label = e.Get("args").Get("name").AsString();
      if (label.find("request 42") != std::string::npos &&
          label.find("acme") != std::string::npos) {
        saw_request_process_name = true;
        EXPECT_GT(e.Get("pid").AsInt(), 1);
      }
    }
  }
  EXPECT_GT(tagged_pid, 1);
  EXPECT_EQ(untagged_pid, 1);
  EXPECT_TRUE(saw_request_process_name);
}

TEST_F(TracerTest, PoolChunksInheritTheSubmittersRequestContext) {
  // The propagation contract that makes request-scoped tracing work at
  // all: spans opened inside ParallelFor bodies — which run on pool
  // lanes, not the submitting thread — still carry the submitter's ids.
  util::ThreadPool pool(2);
  obs::Tracer::Global().Enable();
  {
    util::ScopedRequestContext ctx(77, "fanout");
    pool.ParallelFor(8, [](size_t /*item*/) {
      obs::TraceSpan span("pool.chunk_span");
    });
  }
  obs::Tracer::Global().Disable();

  int chunk_spans = 0;
  for (const obs::TraceEvent& event : obs::Tracer::Global().Snapshot()) {
    if (event.name != "pool.chunk_span") continue;
    ++chunk_spans;
    EXPECT_EQ(event.request_id, 77u) << "lost context on a pool lane";
    EXPECT_EQ(event.tenant, "fanout");
  }
  EXPECT_EQ(chunk_spans, 8);

  // The lane restored its own (empty) context afterwards.
  EXPECT_FALSE(util::CurrentRequestContext().active());
}

// ---------------------------------------------------------------------
// Stage profile
// ---------------------------------------------------------------------

TEST(StageProfileTest, AccumulatesInInsertionOrder) {
  obs::StageProfile profile;
  profile.Add("predict", 0.25);
  profile.Add("search", 1.0);
  profile.Add("predict", 0.25);
  ASSERT_EQ(profile.stages.size(), 2u);
  EXPECT_EQ(profile.stages[0].name, "predict");
  EXPECT_DOUBLE_EQ(profile.stages[0].seconds, 0.5);
  EXPECT_EQ(profile.stages[0].count, 2);
  EXPECT_DOUBLE_EQ(profile.StageSeconds("search"), 1.0);
  EXPECT_DOUBLE_EQ(profile.StageSeconds("missing"), 0.0);
  EXPECT_DOUBLE_EQ(profile.SumSeconds(), 1.5);

  Json json = profile.ToJson();
  ASSERT_EQ(json.Get("stages").size(), 2u);
  EXPECT_EQ(json.Get("stages").at(1).Get("name").AsString(), "search");
}

TEST(StageProfileTest, StageTimerMeasuresItsScope) {
  obs::StageProfile profile;
  {
    obs::StageTimer timer(&profile, "work");
    volatile double sink = 0.0;
    for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  }
  EXPECT_GT(profile.StageSeconds("work"), 0.0);
  EXPECT_EQ(profile.stages[0].count, 1);
}

// ---------------------------------------------------------------------
// End-to-end: Fit attaches a stage profile that tiles its wall time
// ---------------------------------------------------------------------

TEST(FitStageProfileTest, StagesCoverFitWallTime) {
  DatasetSpec spec;
  spec.name = "obs_fit";
  spec.rows = 220;
  spec.num_numeric = 6;
  spec.num_categorical = 1;
  Table table = GenerateDataset(spec);

  // Untrained Fit exercises the fallback rung too — six stages total.
  core::Kgpip kgpip;
  Stopwatch watch;
  auto result = kgpip.Fit(table, TaskType::kBinaryClassification,
                          hpo::Budget(8, 1e9), 17);
  const double wall = watch.ElapsedSeconds();
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  const obs::StageProfile& profile = result->report.stage_profile;
  ASSERT_GE(profile.stages.size(), 5u);
  for (const obs::StageProfile::Stage& stage : profile.stages) {
    EXPECT_GT(stage.seconds, 0.0) << stage.name;
    EXPECT_GE(stage.count, 1) << stage.name;
  }
  EXPECT_GT(profile.StageSeconds("fit.predict_skeletons"), 0.0);
  EXPECT_GT(profile.StageSeconds("fit.hpo_search"), 0.0);
  EXPECT_GT(profile.StageSeconds("fit.finalize"), 0.0);

  // The attribution invariant: stage seconds tile the fit, so their sum
  // lands within 10% of the profile's own end-to-end clock, which in
  // turn cannot exceed the caller-observed wall time.
  EXPECT_GT(profile.total_seconds, 0.0);
  EXPECT_LE(profile.total_seconds, wall);
  EXPECT_NEAR(profile.SumSeconds(), profile.total_seconds,
              0.10 * profile.total_seconds);

  // And the report serializes it.
  Json json = result->report.ToJson();
  const Json& stage_json = json.Get("stage_profile");
  ASSERT_TRUE(stage_json.is_object());
  EXPECT_GE(stage_json.Get("stages").size(), 5u);
}

TEST(FitStageProfileTest, EmptyProfileStaysOutOfReportJson) {
  hpo::RunReport report;
  EXPECT_TRUE(report.stage_profile.empty());
  EXPECT_TRUE(report.ToJson().Get("stage_profile").is_null());
}

}  // namespace
}  // namespace kgpip
