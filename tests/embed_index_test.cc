// IVF-SQ8 SimIndex suite: the approximate index's contracts against
// the exact flat scan — recall@10 floor on clustered corpora, byte-
// identity of the full-probe configuration, KGSEG1 segment round-trip
// and corruption rejection (truncation, bit flips, bad magic: reject
// with kParseError and byte offsets, never serve corrupt data), the
// zero-allocation steady state of Search's scratch, and hit-list
// byte-identity across thread counts and ISA levels. Its own binary so
// the sanitizer and isa-determinism CI jobs can run exactly this suite.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "embed/sim_index.h"
#include "nn/simd_kernels.h"
#include "obs/metrics.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace kgpip::embed {
namespace {

using nn::simd::Isa;

// Clustered synthetic corpus: `clusters` well-separated directions with
// small gaussian spread — the regime IVF's coarse quantizer targets,
// shaped like embedded-table corpora (many datasets per concept family).
std::vector<std::vector<double>> ClusteredCorpus(size_t n, size_t dims,
                                                 size_t clusters,
                                                 uint64_t seed) {
  kgpip::Rng rng(seed);
  std::vector<std::vector<double>> centers(clusters);
  for (auto& c : centers) {
    c.resize(dims);
    for (double& x : c) x = rng.Normal() * 4.0;
  }
  std::vector<std::vector<double>> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> v = centers[i % clusters];
    for (double& x : v) x += rng.Normal() * 0.3;
    out.push_back(std::move(v));
  }
  return out;
}

SimIndex BuildIndex(const std::vector<std::vector<double>>& rows,
                    const SimIndex::Options& options) {
  SimIndex index(options);
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_TRUE(index.Add("r" + std::to_string(i), rows[i]).ok());
  }
  EXPECT_TRUE(index.Build().ok());
  return index;
}

// Fraction of the exact index's top-k keys the approximate index also
// returns, averaged over the queries.
double RecallAtK(const SimIndex& approx, const SimIndex& exact,
                 const std::vector<std::vector<double>>& queries, size_t k) {
  size_t hit = 0;
  size_t total = 0;
  for (const auto& q : queries) {
    auto truth = exact.Search(q, k);
    auto got = approx.Search(q, k);
    EXPECT_TRUE(truth.ok()) << truth.status().ToString();
    EXPECT_TRUE(got.ok()) << got.status().ToString();
    if (!truth.ok() || !got.ok()) return 0.0;
    std::set<std::string> want;
    for (const auto& h : *truth) want.insert(h.key);
    for (const auto& h : *got) hit += want.count(h.key);
    total += truth->size();
  }
  return total == 0 ? 0.0 : static_cast<double>(hit) /
                                static_cast<double>(total);
}

// Serialized hit lists — keys plus the raw similarity bytes — so two
// result sets compare byte-for-byte, not "approximately".
std::string HitBytes(const std::vector<SearchHit>& hits) {
  std::string out;
  for (const SearchHit& h : hits) {
    out += h.key;
    out.push_back('=');
    char raw[sizeof(double)];
    std::memcpy(raw, &h.similarity, sizeof(raw));
    out.append(raw, sizeof(raw));
    out.push_back(';');
  }
  return out;
}

std::string SearchAllBytes(const SimIndex& index,
                           const std::vector<std::vector<double>>& queries,
                           size_t k) {
  std::string out;
  for (const auto& q : queries) {
    auto hits = index.Search(q, k);
    EXPECT_TRUE(hits.ok()) << hits.status().ToString();
    if (!hits.ok()) return "<error>";
    out += HitBytes(*hits);
    out.push_back('\n');
  }
  return out;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(SimIndexIvfTest, RecallAtTenMeetsFloorOnThousandRowCorpora) {
  for (uint64_t seed : {uint64_t{1}, uint64_t{2}}) {
    const auto rows = ClusteredCorpus(1000, 16, 20, seed);
    SimIndex::Options options;
    options.num_cells = 32;
    options.num_probes = 8;
    SimIndex ivf = BuildIndex(rows, options);
    ASSERT_GT(ivf.num_cells_built(), 0u);
    ASSERT_TRUE(ivf.quantized());
    SimIndex flat = BuildIndex(rows, SimIndex::Options{});
    ASSERT_EQ(flat.num_cells_built(), 0u);
    const auto queries = ClusteredCorpus(40, 16, 20, seed + 100);
    const double recall = RecallAtK(ivf, flat, queries, 10);
    EXPECT_GE(recall, 0.95) << "seed " << seed;
  }
}

TEST(SimIndexIvfTest, RecallAtTenMeetsFloorAtTenThousandRows) {
  const auto rows = ClusteredCorpus(10000, 24, 64, 3);
  SimIndex::Options options;
  options.num_cells = 100;
  options.num_probes = 8;
  SimIndex ivf = BuildIndex(rows, options);
  ASSERT_EQ(ivf.num_cells_built(), 100u);
  SimIndex flat = BuildIndex(rows, SimIndex::Options{});
  const auto queries = ClusteredCorpus(30, 24, 64, 777);
  EXPECT_GE(RecallAtK(ivf, flat, queries, 10), 0.95);
}

TEST(SimIndexIvfTest, FullProbeQuantizedSearchMatchesFlatByteForByte) {
  // With every cell probed and rerank_k covering every candidate, the
  // quantized approximation only orders candidates for the exact rerank
  // — which then scores with the flat scan's exact kernel. The result
  // must equal the flat index's, keys and similarity bits alike.
  const auto rows = ClusteredCorpus(600, 12, 8, 5);
  SimIndex::Options options;
  options.num_cells = 8;
  options.num_probes = 64;   // > num_cells: probe everything
  options.rerank_k = 10000;  // > n: exact-rerank everything
  SimIndex ivf = BuildIndex(rows, options);
  ASSERT_TRUE(ivf.quantized());
  SimIndex flat = BuildIndex(rows, SimIndex::Options{});
  const auto queries = ClusteredCorpus(12, 12, 8, 99);
  for (size_t k : {size_t{1}, size_t{7}, size_t{600}}) {
    EXPECT_EQ(SearchAllBytes(ivf, queries, k),
              SearchAllBytes(flat, queries, k))
        << "k=" << k;
  }
}

TEST(SimIndexIvfTest, AutoPolicyKeepsSmallCorporaFlat) {
  SimIndex::Options options;
  options.num_cells = -1;  // auto
  const auto rows = ClusteredCorpus(64, 8, 4, 19);
  SimIndex index = BuildIndex(rows, options);
  // Below kAutoIvfMinRows the auto policy must not build cells: the
  // paper-scale corpus keeps the exact flat scan bit for bit.
  EXPECT_EQ(index.num_cells_built(), 0u);
  EXPECT_FALSE(index.quantized());
  ASSERT_LT(rows.size(), SimIndex::kAutoIvfMinRows);
  auto hits = index.Search(rows[3], 3);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ((*hits)[0].key, "r3");
}

TEST(SimIndexIvfTest, SteadyStateSearchDoesNotGrowScratch) {
  // Search reuses per-thread scratch; the embed.index.search_allocs
  // counter ticks only when a scratch vector's capacity grows. After a
  // warm-up pass over every query shape, repeated searches must not
  // allocate — the serve path's per-request allocation budget.
  const auto rows = ClusteredCorpus(1500, 16, 12, 9);
  SimIndex::Options options;
  options.num_cells = 12;
  options.num_probes = 4;
  SimIndex ivf = BuildIndex(rows, options);
  obs::Counter* allocs =
      obs::MetricsRegistry::Global().GetCounter("embed.index.search_allocs");
  const auto queries = ClusteredCorpus(16, 16, 12, 21);
  for (const auto& q : queries) ASSERT_TRUE(ivf.Search(q, 20).ok());
  const int64_t before = allocs->value();
  for (int rep = 0; rep < 3; ++rep) {
    for (const auto& q : queries) ASSERT_TRUE(ivf.Search(q, 20).ok());
  }
  EXPECT_EQ(allocs->value(), before)
      << "steady-state Search grew its scratch";
}

TEST(SimIndexIvfTest, HitListsAreByteIdenticalAcrossThreadCounts) {
  // Build + search under 1, 2, and 4 pool threads: the k-means build,
  // the parallel flat scan (corpus is over the parallel-scan threshold),
  // and SearchBatch must all be invisible in the output.
  const auto rows = ClusteredCorpus(3000, 16, 24, 13);
  const auto queries = ClusteredCorpus(10, 16, 24, 31);
  auto run = [&]() {
    SimIndex::Options options;
    options.num_cells = 24;
    options.num_probes = 6;
    SimIndex ivf = BuildIndex(rows, options);
    SimIndex flat = BuildIndex(rows, SimIndex::Options{});
    std::string blob = SearchAllBytes(ivf, queries, 9);
    blob += SearchAllBytes(flat, queries, 9);
    auto batch = ivf.SearchBatch(queries, 9);
    EXPECT_TRUE(batch.ok());
    if (batch.ok()) {
      for (const auto& hits : *batch) blob += HitBytes(hits);
    }
    return blob;
  };
  util::ThreadPool::Configure(1);
  const std::string baseline = run();
  for (int threads : {2, 4}) {
    util::ThreadPool::Configure(threads);
    EXPECT_EQ(run(), baseline) << "divergence at " << threads << " threads";
  }
  util::ThreadPool::Configure(0);
}

TEST(SimIndexIvfTest, QuantizedSearchIsByteIdenticalAcrossIsaLevels) {
  // The SQ8 kernel is the only ISA-dispatched code on the query path;
  // forcing each supported level must leave hit lists byte-identical.
  const auto rows = ClusteredCorpus(1200, 16, 12, 17);
  SimIndex::Options options;
  options.num_cells = 12;
  options.num_probes = 4;
  SimIndex ivf = BuildIndex(rows, options);
  ASSERT_TRUE(ivf.quantized());
  const auto queries = ClusteredCorpus(12, 16, 12, 41);
  const Isa before = nn::simd::ActiveIsa();
  nn::simd::ForceIsa(Isa::kScalar);
  const std::string baseline = SearchAllBytes(ivf, queries, 8);
  for (Isa isa : {Isa::kAvx2, Isa::kAvx512}) {
    if (!nn::simd::IsaSupported(isa)) continue;
    nn::simd::ForceIsa(isa);
    EXPECT_EQ(SearchAllBytes(ivf, queries, 8), baseline)
        << "divergence under " << nn::simd::IsaName(isa);
  }
  nn::simd::ForceIsa(before);
}

TEST(SimIndexSegmentTest, RoundTripPreservesGeometryAndSearchBits) {
  const auto rows = ClusteredCorpus(800, 12, 10, 7);
  SimIndex::Options options;
  options.num_cells = 10;
  options.num_probes = 3;
  SimIndex built = BuildIndex(rows, options);
  const std::string path = "/tmp/kgpip_embed_segments_roundtrip.kgseg";
  ASSERT_TRUE(built.SaveSegments(path).ok());

  SimIndex loaded(options);
  Status status = loaded.LoadSegments(path);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(loaded.size(), built.size());
  EXPECT_EQ(loaded.dims(), built.dims());
  EXPECT_EQ(loaded.num_cells_built(), built.num_cells_built());
  EXPECT_EQ(loaded.quantized(), built.quantized());
  for (size_t i = 0; i < built.size(); i += 97) {
    EXPECT_EQ(loaded.KeyOf(i), built.KeyOf(i));
  }
  const auto queries = ClusteredCorpus(10, 12, 10, 55);
  EXPECT_EQ(SearchAllBytes(loaded, queries, 5),
            SearchAllBytes(built, queries, 5));
  std::remove(path.c_str());
}

TEST(SimIndexSegmentTest, CorruptSegmentsAreRejectedWithoutDamage) {
  const auto rows = ClusteredCorpus(500, 8, 6, 29);
  SimIndex::Options options;
  options.num_cells = 6;
  SimIndex built = BuildIndex(rows, options);
  const std::string path = "/tmp/kgpip_embed_segments_corrupt.kgseg";
  ASSERT_TRUE(built.SaveSegments(path).ok());
  const std::string good = ReadAll(path);
  ASSERT_GT(good.size(), 200u);
  const auto queries = ClusteredCorpus(6, 8, 6, 67);
  const std::string served = SearchAllBytes(built, queries, 4);

  // Truncation: reject with kParseError; the target index is untouched
  // and keeps serving its previous contents bit for bit.
  WriteAll(path, good.substr(0, good.size() / 2));
  Status truncated = built.LoadSegments(path);
  EXPECT_EQ(truncated.code(), StatusCode::kParseError)
      << truncated.ToString();
  EXPECT_EQ(SearchAllBytes(built, queries, 4), served);

  // A flipped payload byte fails the FNV-1a checksum with byte offsets.
  std::string flipped = good;
  flipped[good.size() / 2] = static_cast<char>(flipped[good.size() / 2] ^ 0x40);
  WriteAll(path, flipped);
  SimIndex fresh(options);
  Status bitflip = fresh.LoadSegments(path);
  EXPECT_EQ(bitflip.code(), StatusCode::kParseError) << bitflip.ToString();
  EXPECT_NE(bitflip.message().find("checksum"), std::string::npos)
      << bitflip.ToString();
  EXPECT_EQ(fresh.size(), 0u);  // left unchanged, never serves corrupt data

  // Wrong magic and a missing file are distinct failures.
  WriteAll(path, "KGSEGX 1 0000000000000000 4\nabcd");
  EXPECT_EQ(fresh.LoadSegments(path).code(), StatusCode::kParseError);
  std::remove(path.c_str());
  EXPECT_EQ(fresh.LoadSegments(path).code(), StatusCode::kIoError);

  // The rebuild path after a rejection: re-add + Build, then serve.
  SimIndex rebuilt = BuildIndex(rows, options);
  EXPECT_EQ(SearchAllBytes(rebuilt, queries, 4), served);
}

}  // namespace
}  // namespace kgpip::embed
