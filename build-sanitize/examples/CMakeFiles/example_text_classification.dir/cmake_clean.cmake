file(REMOVE_RECURSE
  "CMakeFiles/example_text_classification.dir/text_classification.cpp.o"
  "CMakeFiles/example_text_classification.dir/text_classification.cpp.o.d"
  "example_text_classification"
  "example_text_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_text_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
