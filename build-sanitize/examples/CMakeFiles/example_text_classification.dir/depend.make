# Empty dependencies file for example_text_classification.
# This may be replaced when dependencies are built.
