# Empty compiler generated dependencies file for example_compare_systems.
# This may be replaced when dependencies are built.
