file(REMOVE_RECURSE
  "CMakeFiles/example_compare_systems.dir/compare_systems.cpp.o"
  "CMakeFiles/example_compare_systems.dir/compare_systems.cpp.o.d"
  "example_compare_systems"
  "example_compare_systems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_compare_systems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
