
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/compare_systems.cpp" "examples/CMakeFiles/example_compare_systems.dir/compare_systems.cpp.o" "gcc" "examples/CMakeFiles/example_compare_systems.dir/compare_systems.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-sanitize/src/core/CMakeFiles/kgpip_core.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/automl/CMakeFiles/kgpip_automl.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/hpo/CMakeFiles/kgpip_hpo.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/gen/CMakeFiles/kgpip_gen.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/embed/CMakeFiles/kgpip_embed.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/graph4ml/CMakeFiles/kgpip_graph4ml.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/codegraph/CMakeFiles/kgpip_codegraph.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/ml/CMakeFiles/kgpip_ml.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/data/CMakeFiles/kgpip_data.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/nn/CMakeFiles/kgpip_nn.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/util/CMakeFiles/kgpip_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
