file(REMOVE_RECURSE
  "CMakeFiles/example_mine_corpus.dir/mine_corpus.cpp.o"
  "CMakeFiles/example_mine_corpus.dir/mine_corpus.cpp.o.d"
  "example_mine_corpus"
  "example_mine_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_mine_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
