# Empty compiler generated dependencies file for example_mine_corpus.
# This may be replaced when dependencies are built.
