file(REMOVE_RECURSE
  "CMakeFiles/example_save_load_artifacts.dir/save_load_artifacts.cpp.o"
  "CMakeFiles/example_save_load_artifacts.dir/save_load_artifacts.cpp.o.d"
  "example_save_load_artifacts"
  "example_save_load_artifacts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_save_load_artifacts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
