# Empty dependencies file for example_save_load_artifacts.
# This may be replaced when dependencies are built.
