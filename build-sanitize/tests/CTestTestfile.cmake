# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-sanitize/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(kgpip_tests "/root/repo/build-sanitize/tests/kgpip_tests")
set_tests_properties(kgpip_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;22;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(kgpip_fault_tests "/root/repo/build-sanitize/tests/kgpip_fault_tests")
set_tests_properties(kgpip_fault_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;34;add_test;/root/repo/tests/CMakeLists.txt;0;")
