file(REMOVE_RECURSE
  "CMakeFiles/kgpip_tests.dir/automl_test.cc.o"
  "CMakeFiles/kgpip_tests.dir/automl_test.cc.o.d"
  "CMakeFiles/kgpip_tests.dir/codegraph_test.cc.o"
  "CMakeFiles/kgpip_tests.dir/codegraph_test.cc.o.d"
  "CMakeFiles/kgpip_tests.dir/cross_validation_test.cc.o"
  "CMakeFiles/kgpip_tests.dir/cross_validation_test.cc.o.d"
  "CMakeFiles/kgpip_tests.dir/data_test.cc.o"
  "CMakeFiles/kgpip_tests.dir/data_test.cc.o.d"
  "CMakeFiles/kgpip_tests.dir/edge_case_test.cc.o"
  "CMakeFiles/kgpip_tests.dir/edge_case_test.cc.o.d"
  "CMakeFiles/kgpip_tests.dir/embed_test.cc.o"
  "CMakeFiles/kgpip_tests.dir/embed_test.cc.o.d"
  "CMakeFiles/kgpip_tests.dir/gen_test.cc.o"
  "CMakeFiles/kgpip_tests.dir/gen_test.cc.o.d"
  "CMakeFiles/kgpip_tests.dir/harness_test.cc.o"
  "CMakeFiles/kgpip_tests.dir/harness_test.cc.o.d"
  "CMakeFiles/kgpip_tests.dir/kgpip_test.cc.o"
  "CMakeFiles/kgpip_tests.dir/kgpip_test.cc.o.d"
  "CMakeFiles/kgpip_tests.dir/ml_test.cc.o"
  "CMakeFiles/kgpip_tests.dir/ml_test.cc.o.d"
  "CMakeFiles/kgpip_tests.dir/nn_test.cc.o"
  "CMakeFiles/kgpip_tests.dir/nn_test.cc.o.d"
  "CMakeFiles/kgpip_tests.dir/property_test.cc.o"
  "CMakeFiles/kgpip_tests.dir/property_test.cc.o.d"
  "CMakeFiles/kgpip_tests.dir/util_test.cc.o"
  "CMakeFiles/kgpip_tests.dir/util_test.cc.o.d"
  "kgpip_tests"
  "kgpip_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kgpip_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
