# Empty compiler generated dependencies file for kgpip_tests.
# This may be replaced when dependencies are built.
