
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/automl_test.cc" "tests/CMakeFiles/kgpip_tests.dir/automl_test.cc.o" "gcc" "tests/CMakeFiles/kgpip_tests.dir/automl_test.cc.o.d"
  "/root/repo/tests/codegraph_test.cc" "tests/CMakeFiles/kgpip_tests.dir/codegraph_test.cc.o" "gcc" "tests/CMakeFiles/kgpip_tests.dir/codegraph_test.cc.o.d"
  "/root/repo/tests/cross_validation_test.cc" "tests/CMakeFiles/kgpip_tests.dir/cross_validation_test.cc.o" "gcc" "tests/CMakeFiles/kgpip_tests.dir/cross_validation_test.cc.o.d"
  "/root/repo/tests/data_test.cc" "tests/CMakeFiles/kgpip_tests.dir/data_test.cc.o" "gcc" "tests/CMakeFiles/kgpip_tests.dir/data_test.cc.o.d"
  "/root/repo/tests/edge_case_test.cc" "tests/CMakeFiles/kgpip_tests.dir/edge_case_test.cc.o" "gcc" "tests/CMakeFiles/kgpip_tests.dir/edge_case_test.cc.o.d"
  "/root/repo/tests/embed_test.cc" "tests/CMakeFiles/kgpip_tests.dir/embed_test.cc.o" "gcc" "tests/CMakeFiles/kgpip_tests.dir/embed_test.cc.o.d"
  "/root/repo/tests/gen_test.cc" "tests/CMakeFiles/kgpip_tests.dir/gen_test.cc.o" "gcc" "tests/CMakeFiles/kgpip_tests.dir/gen_test.cc.o.d"
  "/root/repo/tests/harness_test.cc" "tests/CMakeFiles/kgpip_tests.dir/harness_test.cc.o" "gcc" "tests/CMakeFiles/kgpip_tests.dir/harness_test.cc.o.d"
  "/root/repo/tests/kgpip_test.cc" "tests/CMakeFiles/kgpip_tests.dir/kgpip_test.cc.o" "gcc" "tests/CMakeFiles/kgpip_tests.dir/kgpip_test.cc.o.d"
  "/root/repo/tests/ml_test.cc" "tests/CMakeFiles/kgpip_tests.dir/ml_test.cc.o" "gcc" "tests/CMakeFiles/kgpip_tests.dir/ml_test.cc.o.d"
  "/root/repo/tests/nn_test.cc" "tests/CMakeFiles/kgpip_tests.dir/nn_test.cc.o" "gcc" "tests/CMakeFiles/kgpip_tests.dir/nn_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/kgpip_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/kgpip_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/util_test.cc" "tests/CMakeFiles/kgpip_tests.dir/util_test.cc.o" "gcc" "tests/CMakeFiles/kgpip_tests.dir/util_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-sanitize/bench/CMakeFiles/kgpip_bench_harness.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/core/CMakeFiles/kgpip_core.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/automl/CMakeFiles/kgpip_automl.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/hpo/CMakeFiles/kgpip_hpo.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/gen/CMakeFiles/kgpip_gen.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/embed/CMakeFiles/kgpip_embed.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/nn/CMakeFiles/kgpip_nn.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/graph4ml/CMakeFiles/kgpip_graph4ml.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/codegraph/CMakeFiles/kgpip_codegraph.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/ml/CMakeFiles/kgpip_ml.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/data/CMakeFiles/kgpip_data.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/util/CMakeFiles/kgpip_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
