# Empty dependencies file for kgpip_fault_tests.
# This may be replaced when dependencies are built.
