file(REMOVE_RECURSE
  "CMakeFiles/kgpip_fault_tests.dir/fault_test.cc.o"
  "CMakeFiles/kgpip_fault_tests.dir/fault_test.cc.o.d"
  "kgpip_fault_tests"
  "kgpip_fault_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kgpip_fault_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
