
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/cross_validation.cc" "src/ml/CMakeFiles/kgpip_ml.dir/cross_validation.cc.o" "gcc" "src/ml/CMakeFiles/kgpip_ml.dir/cross_validation.cc.o.d"
  "/root/repo/src/ml/featurizer.cc" "src/ml/CMakeFiles/kgpip_ml.dir/featurizer.cc.o" "gcc" "src/ml/CMakeFiles/kgpip_ml.dir/featurizer.cc.o.d"
  "/root/repo/src/ml/forest.cc" "src/ml/CMakeFiles/kgpip_ml.dir/forest.cc.o" "gcc" "src/ml/CMakeFiles/kgpip_ml.dir/forest.cc.o.d"
  "/root/repo/src/ml/gbdt.cc" "src/ml/CMakeFiles/kgpip_ml.dir/gbdt.cc.o" "gcc" "src/ml/CMakeFiles/kgpip_ml.dir/gbdt.cc.o.d"
  "/root/repo/src/ml/knn.cc" "src/ml/CMakeFiles/kgpip_ml.dir/knn.cc.o" "gcc" "src/ml/CMakeFiles/kgpip_ml.dir/knn.cc.o.d"
  "/root/repo/src/ml/learner_factory.cc" "src/ml/CMakeFiles/kgpip_ml.dir/learner_factory.cc.o" "gcc" "src/ml/CMakeFiles/kgpip_ml.dir/learner_factory.cc.o.d"
  "/root/repo/src/ml/linear.cc" "src/ml/CMakeFiles/kgpip_ml.dir/linear.cc.o" "gcc" "src/ml/CMakeFiles/kgpip_ml.dir/linear.cc.o.d"
  "/root/repo/src/ml/metrics.cc" "src/ml/CMakeFiles/kgpip_ml.dir/metrics.cc.o" "gcc" "src/ml/CMakeFiles/kgpip_ml.dir/metrics.cc.o.d"
  "/root/repo/src/ml/pipeline.cc" "src/ml/CMakeFiles/kgpip_ml.dir/pipeline.cc.o" "gcc" "src/ml/CMakeFiles/kgpip_ml.dir/pipeline.cc.o.d"
  "/root/repo/src/ml/preprocess.cc" "src/ml/CMakeFiles/kgpip_ml.dir/preprocess.cc.o" "gcc" "src/ml/CMakeFiles/kgpip_ml.dir/preprocess.cc.o.d"
  "/root/repo/src/ml/tree.cc" "src/ml/CMakeFiles/kgpip_ml.dir/tree.cc.o" "gcc" "src/ml/CMakeFiles/kgpip_ml.dir/tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-sanitize/src/data/CMakeFiles/kgpip_data.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/util/CMakeFiles/kgpip_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
