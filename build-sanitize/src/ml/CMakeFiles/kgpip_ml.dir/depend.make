# Empty dependencies file for kgpip_ml.
# This may be replaced when dependencies are built.
