file(REMOVE_RECURSE
  "libkgpip_ml.a"
)
