file(REMOVE_RECURSE
  "CMakeFiles/kgpip_ml.dir/cross_validation.cc.o"
  "CMakeFiles/kgpip_ml.dir/cross_validation.cc.o.d"
  "CMakeFiles/kgpip_ml.dir/featurizer.cc.o"
  "CMakeFiles/kgpip_ml.dir/featurizer.cc.o.d"
  "CMakeFiles/kgpip_ml.dir/forest.cc.o"
  "CMakeFiles/kgpip_ml.dir/forest.cc.o.d"
  "CMakeFiles/kgpip_ml.dir/gbdt.cc.o"
  "CMakeFiles/kgpip_ml.dir/gbdt.cc.o.d"
  "CMakeFiles/kgpip_ml.dir/knn.cc.o"
  "CMakeFiles/kgpip_ml.dir/knn.cc.o.d"
  "CMakeFiles/kgpip_ml.dir/learner_factory.cc.o"
  "CMakeFiles/kgpip_ml.dir/learner_factory.cc.o.d"
  "CMakeFiles/kgpip_ml.dir/linear.cc.o"
  "CMakeFiles/kgpip_ml.dir/linear.cc.o.d"
  "CMakeFiles/kgpip_ml.dir/metrics.cc.o"
  "CMakeFiles/kgpip_ml.dir/metrics.cc.o.d"
  "CMakeFiles/kgpip_ml.dir/pipeline.cc.o"
  "CMakeFiles/kgpip_ml.dir/pipeline.cc.o.d"
  "CMakeFiles/kgpip_ml.dir/preprocess.cc.o"
  "CMakeFiles/kgpip_ml.dir/preprocess.cc.o.d"
  "CMakeFiles/kgpip_ml.dir/tree.cc.o"
  "CMakeFiles/kgpip_ml.dir/tree.cc.o.d"
  "libkgpip_ml.a"
  "libkgpip_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kgpip_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
