file(REMOVE_RECURSE
  "CMakeFiles/kgpip_automl.dir/al_system.cc.o"
  "CMakeFiles/kgpip_automl.dir/al_system.cc.o.d"
  "CMakeFiles/kgpip_automl.dir/autosklearn_system.cc.o"
  "CMakeFiles/kgpip_automl.dir/autosklearn_system.cc.o.d"
  "CMakeFiles/kgpip_automl.dir/flaml_system.cc.o"
  "CMakeFiles/kgpip_automl.dir/flaml_system.cc.o.d"
  "CMakeFiles/kgpip_automl.dir/meta_features.cc.o"
  "CMakeFiles/kgpip_automl.dir/meta_features.cc.o.d"
  "libkgpip_automl.a"
  "libkgpip_automl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kgpip_automl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
