# Empty dependencies file for kgpip_automl.
# This may be replaced when dependencies are built.
