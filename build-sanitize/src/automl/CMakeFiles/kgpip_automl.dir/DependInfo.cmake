
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/automl/al_system.cc" "src/automl/CMakeFiles/kgpip_automl.dir/al_system.cc.o" "gcc" "src/automl/CMakeFiles/kgpip_automl.dir/al_system.cc.o.d"
  "/root/repo/src/automl/autosklearn_system.cc" "src/automl/CMakeFiles/kgpip_automl.dir/autosklearn_system.cc.o" "gcc" "src/automl/CMakeFiles/kgpip_automl.dir/autosklearn_system.cc.o.d"
  "/root/repo/src/automl/flaml_system.cc" "src/automl/CMakeFiles/kgpip_automl.dir/flaml_system.cc.o" "gcc" "src/automl/CMakeFiles/kgpip_automl.dir/flaml_system.cc.o.d"
  "/root/repo/src/automl/meta_features.cc" "src/automl/CMakeFiles/kgpip_automl.dir/meta_features.cc.o" "gcc" "src/automl/CMakeFiles/kgpip_automl.dir/meta_features.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-sanitize/src/hpo/CMakeFiles/kgpip_hpo.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/ml/CMakeFiles/kgpip_ml.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/data/CMakeFiles/kgpip_data.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/util/CMakeFiles/kgpip_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
