file(REMOVE_RECURSE
  "libkgpip_automl.a"
)
