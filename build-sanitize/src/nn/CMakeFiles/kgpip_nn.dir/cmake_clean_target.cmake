file(REMOVE_RECURSE
  "libkgpip_nn.a"
)
