
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/autograd.cc" "src/nn/CMakeFiles/kgpip_nn.dir/autograd.cc.o" "gcc" "src/nn/CMakeFiles/kgpip_nn.dir/autograd.cc.o.d"
  "/root/repo/src/nn/layers.cc" "src/nn/CMakeFiles/kgpip_nn.dir/layers.cc.o" "gcc" "src/nn/CMakeFiles/kgpip_nn.dir/layers.cc.o.d"
  "/root/repo/src/nn/matrix.cc" "src/nn/CMakeFiles/kgpip_nn.dir/matrix.cc.o" "gcc" "src/nn/CMakeFiles/kgpip_nn.dir/matrix.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-sanitize/src/util/CMakeFiles/kgpip_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
