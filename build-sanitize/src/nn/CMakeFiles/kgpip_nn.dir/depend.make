# Empty dependencies file for kgpip_nn.
# This may be replaced when dependencies are built.
