file(REMOVE_RECURSE
  "CMakeFiles/kgpip_nn.dir/autograd.cc.o"
  "CMakeFiles/kgpip_nn.dir/autograd.cc.o.d"
  "CMakeFiles/kgpip_nn.dir/layers.cc.o"
  "CMakeFiles/kgpip_nn.dir/layers.cc.o.d"
  "CMakeFiles/kgpip_nn.dir/matrix.cc.o"
  "CMakeFiles/kgpip_nn.dir/matrix.cc.o.d"
  "libkgpip_nn.a"
  "libkgpip_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kgpip_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
