# Empty dependencies file for kgpip_data.
# This may be replaced when dependencies are built.
