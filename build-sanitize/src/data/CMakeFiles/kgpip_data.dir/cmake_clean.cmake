file(REMOVE_RECURSE
  "CMakeFiles/kgpip_data.dir/benchmark_registry.cc.o"
  "CMakeFiles/kgpip_data.dir/benchmark_registry.cc.o.d"
  "CMakeFiles/kgpip_data.dir/column.cc.o"
  "CMakeFiles/kgpip_data.dir/column.cc.o.d"
  "CMakeFiles/kgpip_data.dir/csv.cc.o"
  "CMakeFiles/kgpip_data.dir/csv.cc.o.d"
  "CMakeFiles/kgpip_data.dir/synthetic.cc.o"
  "CMakeFiles/kgpip_data.dir/synthetic.cc.o.d"
  "CMakeFiles/kgpip_data.dir/table.cc.o"
  "CMakeFiles/kgpip_data.dir/table.cc.o.d"
  "CMakeFiles/kgpip_data.dir/type_inference.cc.o"
  "CMakeFiles/kgpip_data.dir/type_inference.cc.o.d"
  "libkgpip_data.a"
  "libkgpip_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kgpip_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
