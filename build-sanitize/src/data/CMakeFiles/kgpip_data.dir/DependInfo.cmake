
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/benchmark_registry.cc" "src/data/CMakeFiles/kgpip_data.dir/benchmark_registry.cc.o" "gcc" "src/data/CMakeFiles/kgpip_data.dir/benchmark_registry.cc.o.d"
  "/root/repo/src/data/column.cc" "src/data/CMakeFiles/kgpip_data.dir/column.cc.o" "gcc" "src/data/CMakeFiles/kgpip_data.dir/column.cc.o.d"
  "/root/repo/src/data/csv.cc" "src/data/CMakeFiles/kgpip_data.dir/csv.cc.o" "gcc" "src/data/CMakeFiles/kgpip_data.dir/csv.cc.o.d"
  "/root/repo/src/data/synthetic.cc" "src/data/CMakeFiles/kgpip_data.dir/synthetic.cc.o" "gcc" "src/data/CMakeFiles/kgpip_data.dir/synthetic.cc.o.d"
  "/root/repo/src/data/table.cc" "src/data/CMakeFiles/kgpip_data.dir/table.cc.o" "gcc" "src/data/CMakeFiles/kgpip_data.dir/table.cc.o.d"
  "/root/repo/src/data/type_inference.cc" "src/data/CMakeFiles/kgpip_data.dir/type_inference.cc.o" "gcc" "src/data/CMakeFiles/kgpip_data.dir/type_inference.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-sanitize/src/util/CMakeFiles/kgpip_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
