file(REMOVE_RECURSE
  "libkgpip_data.a"
)
