# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-sanitize/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("data")
subdirs("nn")
subdirs("ml")
subdirs("codegraph")
subdirs("graph4ml")
subdirs("embed")
subdirs("gen")
subdirs("hpo")
subdirs("automl")
subdirs("core")
