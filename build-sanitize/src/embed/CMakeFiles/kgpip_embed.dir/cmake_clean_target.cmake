file(REMOVE_RECURSE
  "libkgpip_embed.a"
)
