
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/embed/embedder.cc" "src/embed/CMakeFiles/kgpip_embed.dir/embedder.cc.o" "gcc" "src/embed/CMakeFiles/kgpip_embed.dir/embedder.cc.o.d"
  "/root/repo/src/embed/sim_index.cc" "src/embed/CMakeFiles/kgpip_embed.dir/sim_index.cc.o" "gcc" "src/embed/CMakeFiles/kgpip_embed.dir/sim_index.cc.o.d"
  "/root/repo/src/embed/tsne.cc" "src/embed/CMakeFiles/kgpip_embed.dir/tsne.cc.o" "gcc" "src/embed/CMakeFiles/kgpip_embed.dir/tsne.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-sanitize/src/data/CMakeFiles/kgpip_data.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/util/CMakeFiles/kgpip_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
