# Empty dependencies file for kgpip_embed.
# This may be replaced when dependencies are built.
