file(REMOVE_RECURSE
  "CMakeFiles/kgpip_embed.dir/embedder.cc.o"
  "CMakeFiles/kgpip_embed.dir/embedder.cc.o.d"
  "CMakeFiles/kgpip_embed.dir/sim_index.cc.o"
  "CMakeFiles/kgpip_embed.dir/sim_index.cc.o.d"
  "CMakeFiles/kgpip_embed.dir/tsne.cc.o"
  "CMakeFiles/kgpip_embed.dir/tsne.cc.o.d"
  "libkgpip_embed.a"
  "libkgpip_embed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kgpip_embed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
