file(REMOVE_RECURSE
  "libkgpip_gen.a"
)
