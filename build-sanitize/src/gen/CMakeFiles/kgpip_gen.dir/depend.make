# Empty dependencies file for kgpip_gen.
# This may be replaced when dependencies are built.
