file(REMOVE_RECURSE
  "CMakeFiles/kgpip_gen.dir/graph_generator.cc.o"
  "CMakeFiles/kgpip_gen.dir/graph_generator.cc.o.d"
  "CMakeFiles/kgpip_gen.dir/skeleton.cc.o"
  "CMakeFiles/kgpip_gen.dir/skeleton.cc.o.d"
  "libkgpip_gen.a"
  "libkgpip_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kgpip_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
