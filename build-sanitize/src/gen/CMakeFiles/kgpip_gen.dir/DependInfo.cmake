
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/graph_generator.cc" "src/gen/CMakeFiles/kgpip_gen.dir/graph_generator.cc.o" "gcc" "src/gen/CMakeFiles/kgpip_gen.dir/graph_generator.cc.o.d"
  "/root/repo/src/gen/skeleton.cc" "src/gen/CMakeFiles/kgpip_gen.dir/skeleton.cc.o" "gcc" "src/gen/CMakeFiles/kgpip_gen.dir/skeleton.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-sanitize/src/nn/CMakeFiles/kgpip_nn.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/graph4ml/CMakeFiles/kgpip_graph4ml.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/ml/CMakeFiles/kgpip_ml.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/util/CMakeFiles/kgpip_util.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/codegraph/CMakeFiles/kgpip_codegraph.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/data/CMakeFiles/kgpip_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
