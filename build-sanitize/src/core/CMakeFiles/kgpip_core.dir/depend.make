# Empty dependencies file for kgpip_core.
# This may be replaced when dependencies are built.
