file(REMOVE_RECURSE
  "libkgpip_core.a"
)
