file(REMOVE_RECURSE
  "CMakeFiles/kgpip_core.dir/kgpip.cc.o"
  "CMakeFiles/kgpip_core.dir/kgpip.cc.o.d"
  "libkgpip_core.a"
  "libkgpip_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kgpip_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
