
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codegraph/analyzer.cc" "src/codegraph/CMakeFiles/kgpip_codegraph.dir/analyzer.cc.o" "gcc" "src/codegraph/CMakeFiles/kgpip_codegraph.dir/analyzer.cc.o.d"
  "/root/repo/src/codegraph/code_graph.cc" "src/codegraph/CMakeFiles/kgpip_codegraph.dir/code_graph.cc.o" "gcc" "src/codegraph/CMakeFiles/kgpip_codegraph.dir/code_graph.cc.o.d"
  "/root/repo/src/codegraph/corpus.cc" "src/codegraph/CMakeFiles/kgpip_codegraph.dir/corpus.cc.o" "gcc" "src/codegraph/CMakeFiles/kgpip_codegraph.dir/corpus.cc.o.d"
  "/root/repo/src/codegraph/ml_api.cc" "src/codegraph/CMakeFiles/kgpip_codegraph.dir/ml_api.cc.o" "gcc" "src/codegraph/CMakeFiles/kgpip_codegraph.dir/ml_api.cc.o.d"
  "/root/repo/src/codegraph/python_ast.cc" "src/codegraph/CMakeFiles/kgpip_codegraph.dir/python_ast.cc.o" "gcc" "src/codegraph/CMakeFiles/kgpip_codegraph.dir/python_ast.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-sanitize/src/data/CMakeFiles/kgpip_data.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/ml/CMakeFiles/kgpip_ml.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/util/CMakeFiles/kgpip_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
