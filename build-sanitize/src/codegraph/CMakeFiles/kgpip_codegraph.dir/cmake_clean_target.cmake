file(REMOVE_RECURSE
  "libkgpip_codegraph.a"
)
