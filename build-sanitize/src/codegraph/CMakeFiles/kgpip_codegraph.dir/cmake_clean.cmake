file(REMOVE_RECURSE
  "CMakeFiles/kgpip_codegraph.dir/analyzer.cc.o"
  "CMakeFiles/kgpip_codegraph.dir/analyzer.cc.o.d"
  "CMakeFiles/kgpip_codegraph.dir/code_graph.cc.o"
  "CMakeFiles/kgpip_codegraph.dir/code_graph.cc.o.d"
  "CMakeFiles/kgpip_codegraph.dir/corpus.cc.o"
  "CMakeFiles/kgpip_codegraph.dir/corpus.cc.o.d"
  "CMakeFiles/kgpip_codegraph.dir/ml_api.cc.o"
  "CMakeFiles/kgpip_codegraph.dir/ml_api.cc.o.d"
  "CMakeFiles/kgpip_codegraph.dir/python_ast.cc.o"
  "CMakeFiles/kgpip_codegraph.dir/python_ast.cc.o.d"
  "libkgpip_codegraph.a"
  "libkgpip_codegraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kgpip_codegraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
