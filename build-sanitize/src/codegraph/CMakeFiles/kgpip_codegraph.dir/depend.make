# Empty dependencies file for kgpip_codegraph.
# This may be replaced when dependencies are built.
