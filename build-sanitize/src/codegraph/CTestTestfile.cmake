# CMake generated Testfile for 
# Source directory: /root/repo/src/codegraph
# Build directory: /root/repo/build-sanitize/src/codegraph
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
