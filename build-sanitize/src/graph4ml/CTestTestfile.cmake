# CMake generated Testfile for 
# Source directory: /root/repo/src/graph4ml
# Build directory: /root/repo/build-sanitize/src/graph4ml
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
