# Empty dependencies file for kgpip_graph4ml.
# This may be replaced when dependencies are built.
