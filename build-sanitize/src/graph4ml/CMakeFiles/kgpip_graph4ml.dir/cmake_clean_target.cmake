file(REMOVE_RECURSE
  "libkgpip_graph4ml.a"
)
