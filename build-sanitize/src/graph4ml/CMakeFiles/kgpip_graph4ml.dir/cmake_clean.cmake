file(REMOVE_RECURSE
  "CMakeFiles/kgpip_graph4ml.dir/filter.cc.o"
  "CMakeFiles/kgpip_graph4ml.dir/filter.cc.o.d"
  "CMakeFiles/kgpip_graph4ml.dir/graph4ml.cc.o"
  "CMakeFiles/kgpip_graph4ml.dir/graph4ml.cc.o.d"
  "CMakeFiles/kgpip_graph4ml.dir/vocab.cc.o"
  "CMakeFiles/kgpip_graph4ml.dir/vocab.cc.o.d"
  "libkgpip_graph4ml.a"
  "libkgpip_graph4ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kgpip_graph4ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
