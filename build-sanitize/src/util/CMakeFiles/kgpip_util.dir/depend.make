# Empty dependencies file for kgpip_util.
# This may be replaced when dependencies are built.
