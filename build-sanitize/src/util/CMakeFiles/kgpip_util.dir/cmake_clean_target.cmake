file(REMOVE_RECURSE
  "libkgpip_util.a"
)
