file(REMOVE_RECURSE
  "CMakeFiles/kgpip_util.dir/fault.cc.o"
  "CMakeFiles/kgpip_util.dir/fault.cc.o.d"
  "CMakeFiles/kgpip_util.dir/json.cc.o"
  "CMakeFiles/kgpip_util.dir/json.cc.o.d"
  "CMakeFiles/kgpip_util.dir/logging.cc.o"
  "CMakeFiles/kgpip_util.dir/logging.cc.o.d"
  "CMakeFiles/kgpip_util.dir/stats.cc.o"
  "CMakeFiles/kgpip_util.dir/stats.cc.o.d"
  "CMakeFiles/kgpip_util.dir/status.cc.o"
  "CMakeFiles/kgpip_util.dir/status.cc.o.d"
  "CMakeFiles/kgpip_util.dir/string_util.cc.o"
  "CMakeFiles/kgpip_util.dir/string_util.cc.o.d"
  "libkgpip_util.a"
  "libkgpip_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kgpip_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
