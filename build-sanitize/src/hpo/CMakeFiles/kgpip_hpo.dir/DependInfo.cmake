
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hpo/evaluator.cc" "src/hpo/CMakeFiles/kgpip_hpo.dir/evaluator.cc.o" "gcc" "src/hpo/CMakeFiles/kgpip_hpo.dir/evaluator.cc.o.d"
  "/root/repo/src/hpo/optimizer.cc" "src/hpo/CMakeFiles/kgpip_hpo.dir/optimizer.cc.o" "gcc" "src/hpo/CMakeFiles/kgpip_hpo.dir/optimizer.cc.o.d"
  "/root/repo/src/hpo/search_space.cc" "src/hpo/CMakeFiles/kgpip_hpo.dir/search_space.cc.o" "gcc" "src/hpo/CMakeFiles/kgpip_hpo.dir/search_space.cc.o.d"
  "/root/repo/src/hpo/trial_guard.cc" "src/hpo/CMakeFiles/kgpip_hpo.dir/trial_guard.cc.o" "gcc" "src/hpo/CMakeFiles/kgpip_hpo.dir/trial_guard.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-sanitize/src/ml/CMakeFiles/kgpip_ml.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/data/CMakeFiles/kgpip_data.dir/DependInfo.cmake"
  "/root/repo/build-sanitize/src/util/CMakeFiles/kgpip_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
