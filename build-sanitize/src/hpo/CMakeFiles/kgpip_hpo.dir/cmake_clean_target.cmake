file(REMOVE_RECURSE
  "libkgpip_hpo.a"
)
