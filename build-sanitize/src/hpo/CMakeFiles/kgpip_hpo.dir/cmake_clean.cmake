file(REMOVE_RECURSE
  "CMakeFiles/kgpip_hpo.dir/evaluator.cc.o"
  "CMakeFiles/kgpip_hpo.dir/evaluator.cc.o.d"
  "CMakeFiles/kgpip_hpo.dir/optimizer.cc.o"
  "CMakeFiles/kgpip_hpo.dir/optimizer.cc.o.d"
  "CMakeFiles/kgpip_hpo.dir/search_space.cc.o"
  "CMakeFiles/kgpip_hpo.dir/search_space.cc.o.d"
  "CMakeFiles/kgpip_hpo.dir/trial_guard.cc.o"
  "CMakeFiles/kgpip_hpo.dir/trial_guard.cc.o.d"
  "libkgpip_hpo.a"
  "libkgpip_hpo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kgpip_hpo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
