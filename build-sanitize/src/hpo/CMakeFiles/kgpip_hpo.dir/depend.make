# Empty dependencies file for kgpip_hpo.
# This may be replaced when dependencies are built.
