# Empty dependencies file for bench_fig8_diversity.
# This may be replaced when dependencies are built.
