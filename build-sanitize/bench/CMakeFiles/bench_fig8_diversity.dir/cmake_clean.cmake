file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_diversity.dir/bench_fig8_diversity.cc.o"
  "CMakeFiles/bench_fig8_diversity.dir/bench_fig8_diversity.cc.o.d"
  "bench_fig8_diversity"
  "bench_fig8_diversity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_diversity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
