# Empty compiler generated dependencies file for bench_table5_detailed_scores.
# This may be replaced when dependencies are built.
