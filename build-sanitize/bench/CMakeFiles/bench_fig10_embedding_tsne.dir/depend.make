# Empty dependencies file for bench_fig10_embedding_tsne.
# This may be replaced when dependencies are built.
