file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_embedding_tsne.dir/bench_fig10_embedding_tsne.cc.o"
  "CMakeFiles/bench_fig10_embedding_tsne.dir/bench_fig10_embedding_tsne.cc.o.d"
  "bench_fig10_embedding_tsne"
  "bench_fig10_embedding_tsne.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_embedding_tsne.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
