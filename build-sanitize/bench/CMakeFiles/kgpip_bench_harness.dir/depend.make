# Empty dependencies file for kgpip_bench_harness.
# This may be replaced when dependencies are built.
