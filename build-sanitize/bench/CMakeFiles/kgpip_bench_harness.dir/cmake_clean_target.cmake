file(REMOVE_RECURSE
  "libkgpip_bench_harness.a"
)
