file(REMOVE_RECURSE
  "CMakeFiles/kgpip_bench_harness.dir/harness.cc.o"
  "CMakeFiles/kgpip_bench_harness.dir/harness.cc.o.d"
  "libkgpip_bench_harness.a"
  "libkgpip_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kgpip_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
