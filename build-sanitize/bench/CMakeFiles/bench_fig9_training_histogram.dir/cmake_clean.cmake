file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_training_histogram.dir/bench_fig9_training_histogram.cc.o"
  "CMakeFiles/bench_fig9_training_histogram.dir/bench_fig9_training_histogram.cc.o.d"
  "bench_fig9_training_histogram"
  "bench_fig9_training_histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_training_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
