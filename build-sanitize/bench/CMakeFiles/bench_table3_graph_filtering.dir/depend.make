# Empty dependencies file for bench_table3_graph_filtering.
# This may be replaced when dependencies are built.
