file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_graph_filtering.dir/bench_table3_graph_filtering.cc.o"
  "CMakeFiles/bench_table3_graph_filtering.dir/bench_table3_graph_filtering.cc.o.d"
  "bench_table3_graph_filtering"
  "bench_table3_graph_filtering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_graph_filtering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
