file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_al_comparison.dir/bench_fig6_al_comparison.cc.o"
  "CMakeFiles/bench_fig6_al_comparison.dir/bench_fig6_al_comparison.cc.o.d"
  "bench_fig6_al_comparison"
  "bench_fig6_al_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_al_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
