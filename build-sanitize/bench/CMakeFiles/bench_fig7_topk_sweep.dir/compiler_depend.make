# Empty compiler generated dependencies file for bench_fig7_topk_sweep.
# This may be replaced when dependencies are built.
