#!/bin/bash
# Runs every bench binary, teeing combined output. Before the benches,
# the analysis test suite runs under ASan/UBSan (the sanitize preset) so
# pointer-heavy pass-manager/CFG code gets exercised with checking on.
set -u
out=/root/repo/bench_output.txt
: > "$out"

echo "===== sanitize: kgpip_analysis_tests =====" | tee -a "$out"
cmake -B build-sanitize -S . -DKGPIP_SANITIZE=ON >/dev/null 2>&1 \
  && cmake --build build-sanitize -j "$(nproc)" \
       --target kgpip_analysis_tests >/dev/null 2>>/tmp/bench_stderr.log \
  && ./build-sanitize/tests/kgpip_analysis_tests 2>>/tmp/bench_stderr.log \
       | tail -3 | tee -a "$out" \
  || echo "sanitize run failed (see /tmp/bench_stderr.log)" | tee -a "$out"
echo "" | tee -a "$out"

echo "===== sanitize: kgpip_gen_tests =====" | tee -a "$out"
cmake --build build-sanitize -j "$(nproc)" \
       --target kgpip_gen_tests >/dev/null 2>>/tmp/bench_stderr.log \
  && ./build-sanitize/tests/kgpip_gen_tests 2>>/tmp/bench_stderr.log \
       | tail -3 | tee -a "$out" \
  || echo "sanitize gen run failed (see /tmp/bench_stderr.log)" | tee -a "$out"
echo "" | tee -a "$out"

# Focused decode benches: the tape-vs-tape-free pairs land in their own
# JSON so the inference-engine speedup is a first-class artifact. The
# fresh report is then gated against the checked-in baseline — a decode
# latency regression past 15% fails the whole run (and the CI
# bench-regression job runs the same comparison).
gate_failed=0
if [ -x build/bench/bench_micro ]; then
  echo "===== gen decode benches (BENCH_gen.json) =====" | tee -a "$out"
  build/bench/bench_micro \
      --benchmark_filter='BM_GenGenerate' \
      --benchmark_out=/root/repo/BENCH_gen.json \
      --benchmark_out_format=json 2>>/tmp/bench_stderr.log | tee -a "$out"
  echo "" | tee -a "$out"
  echo "===== decode latency regression gate =====" | tee -a "$out"
  python3 bench/compare_bench.py \
      bench/baselines/BENCH_gen.baseline.json \
      /root/repo/BENCH_gen.json --threshold 0.15 2>&1 | tee -a "$out"
  [ "${PIPESTATUS[0]}" -eq 0 ] || gate_failed=1
  echo "" | tee -a "$out"
fi

# Similarity-index scaling benches: flat vs IVF-SQ8 at 1k/10k/100k rows.
# The JSON carries a recall_at_10 counter next to each IVF timing, so
# the speedup-at-quality claim is one artifact; the checked-in baseline
# gates search/build latency the same way the decode gate does.
if [ -x build/bench/bench_embed ]; then
  echo "===== embed index benches (BENCH_embed.json) =====" | tee -a "$out"
  build/bench/bench_embed \
      --benchmark_out=/root/repo/BENCH_embed.json \
      --benchmark_out_format=json \
      --metrics-out=/root/repo/BENCH_embed_metrics.json \
      2>>/tmp/bench_stderr.log | tee -a "$out"
  echo "" | tee -a "$out"
  echo "===== embed index regression gate =====" | tee -a "$out"
  python3 bench/compare_bench.py \
      bench/baselines/BENCH_embed.baseline.json \
      /root/repo/BENCH_embed.json --threshold 0.15 2>&1 | tee -a "$out"
  [ "${PIPESTATUS[0]}" -eq 0 ] || gate_failed=1
  echo "" | tee -a "$out"
fi
for b in build/bench/*; do
  [ -x "$b" ] || continue
  echo "===== $b =====" | tee -a "$out"
  # Machine-readable outputs land next to the combined text log: the main
  # comparison emits its aggregate rows + obs metrics as JSON, and the
  # micro-benches emit google-benchmark's JSON report.
  extra_args=()
  case "$(basename "$b")" in
    bench_embed)
      # Already ran (with JSON + gate) in the dedicated section above.
      continue
      ;;
    bench_table2_main_comparison)
      extra_args=(--json-out=/root/repo/BENCH_table2_main_comparison.json
                  --metrics-out=/root/repo/BENCH_metrics.json)
      ;;
    bench_serve)
      # Daemon throughput / latency / cache-hit-rate at 1, 2, 4 tenants.
      extra_args=(--quick --json-out=/root/repo/BENCH_serve.json)
      ;;
    bench_micro)
      # The parallel benches register a threads=1 / threads=<hw> pair per
      # case (see ScopedPool in bench_micro.cc), so one run captures the
      # speedup axis in BENCH_micro.json; --metrics-out snapshots the
      # pool counters (steals, tasks, queue depth) the run produced.
      extra_args=(--benchmark_out=/root/repo/BENCH_micro.json
                  --benchmark_out_format=json
                  --metrics-out=/root/repo/BENCH_micro_metrics.json)
      ;;
  esac
  "$b" "${extra_args[@]}" 2>>/tmp/bench_stderr.log | tee -a "$out"
  echo "" | tee -a "$out"
done
echo "ALL_BENCHES_DONE"
# A tripped decode-latency gate fails the run, but only after every
# bench has produced its artifacts.
exit "$gate_failed"
