#!/bin/bash
# Runs every bench binary, teeing combined output.
set -u
out=/root/repo/bench_output.txt
: > "$out"
for b in build/bench/*; do
  [ -x "$b" ] || continue
  echo "===== $b =====" | tee -a "$out"
  "$b" 2>>/tmp/bench_stderr.log | tee -a "$out"
  echo "" | tee -a "$out"
done
echo "ALL_BENCHES_DONE"
