#!/bin/bash
# Runs every bench binary, teeing combined output. Before the benches,
# the analysis test suite runs under ASan/UBSan (the sanitize preset) so
# pointer-heavy pass-manager/CFG code gets exercised with checking on.
set -u
out=/root/repo/bench_output.txt
: > "$out"

echo "===== sanitize: kgpip_analysis_tests =====" | tee -a "$out"
cmake -B build-sanitize -S . -DKGPIP_SANITIZE=ON >/dev/null 2>&1 \
  && cmake --build build-sanitize -j "$(nproc)" \
       --target kgpip_analysis_tests >/dev/null 2>>/tmp/bench_stderr.log \
  && ./build-sanitize/tests/kgpip_analysis_tests 2>>/tmp/bench_stderr.log \
       | tail -3 | tee -a "$out" \
  || echo "sanitize run failed (see /tmp/bench_stderr.log)" | tee -a "$out"
echo "" | tee -a "$out"
for b in build/bench/*; do
  [ -x "$b" ] || continue
  echo "===== $b =====" | tee -a "$out"
  "$b" 2>>/tmp/bench_stderr.log | tee -a "$out"
  echo "" | tee -a "$out"
done
echo "ALL_BENCHES_DONE"
