// Head-to-head on one dataset: FLAML, Auto-Sklearn, AL, KGpipFLAML and
// KGpipAutoSklearn under the same trial budget, with the trial-by-trial
// learner schedule each system followed — a compact view of why
// warm-started learner selection wins.
//
//   $ ./build/examples/example_compare_systems
#include <cmath>
#include <cstdio>

#include "automl/al_system.h"
#include "automl/autosklearn_system.h"
#include "automl/flaml_system.h"
#include "core/kgpip.h"
#include "data/benchmark_registry.h"

using namespace kgpip;  // NOLINT — example brevity

int main() {
  BenchmarkRegistry registry;
  // An interactions-family dataset: boosting wins, linear models fail, so
  // budget spent screening the wrong learners is clearly visible.
  auto spec = registry.Find("higgs");
  if (!spec.ok()) return 1;
  Table table = GenerateDataset(*spec);
  auto split = SplitTable(table, 0.25, 11);
  const int kTrials = 30;

  // Train the KGpip variants (shared artifacts, different host HPO).
  auto training = registry.TrainingSpecs();
  core::KgpipConfig config;
  config.generator_epochs = 15;
  core::Kgpip kgpip_flaml(config);
  codegraph::CorpusOptions corpus;
  corpus.pipelines_per_dataset = 8;
  if (!kgpip_flaml.Train(training, corpus, 5).ok()) return 1;
  config.optimizer = "autosklearn";
  core::Kgpip kgpip_ask(config);
  if (!kgpip_ask.LoadJson(kgpip_flaml.ToJson()).ok()) return 1;

  automl::FlamlSystem flaml;
  automl::AutoSklearnSystem ask;
  automl::AlSystem al;
  const automl::AutoMlSystem* systems[] = {&flaml, &ask, &al, &kgpip_flaml,
                                           &kgpip_ask};

  std::printf("dataset: %s (%s family, %s) — budget %d trials\n\n",
              spec->name.c_str(), ConceptFamilyName(spec->family),
              TaskTypeName(spec->task), kTrials);
  for (const automl::AutoMlSystem* system : systems) {
    auto result = system->Fit(split.train, spec->task,
                              hpo::Budget(kTrials, 300.0), 17);
    if (!result.ok()) {
      std::printf("%-18s FAILED: %s\n", system->name().c_str(),
                  result.status().ToString().c_str());
      continue;
    }
    auto score = result->fitted.ScoreTable(split.test);
    std::printf("%-18s test F1 %.3f  (val %.3f, %d trials)\n",
                system->name().c_str(), score.ok() ? *score : std::nan(""),
                result->validation_score, result->trials);
    std::printf("  best: %s\n", result->best_spec.ToString().c_str());
    std::printf("  learner schedule:");
    std::string last;
    int streak = 0;
    auto flush = [&] {
      if (streak > 0) std::printf(" %s x%d", last.c_str(), streak);
    };
    for (const std::string& learner : result->learner_sequence) {
      if (learner == last) {
        ++streak;
      } else {
        flush();
        last = learner;
        streak = 1;
      }
    }
    flush();
    std::printf("\n\n");
  }
  std::printf("Takeaway: the baselines spend most of the budget screening "
              "learners that cannot fit this\nconcept; KGpip starts on the "
              "right ones and spends the budget tuning them.\n");
  return 0;
}
