// Quickstart: train KGpip on a mined notebook corpus, then let it pick
// and tune a pipeline for an unseen dataset.
//
//   $ ./build/examples/example_quickstart
//
// Walks through the full public API surface: corpus -> Train ->
// PredictSkeletons (instant learner selection) -> Fit (budgeted AutoML).
#include <cstdio>

#include "core/kgpip.h"
#include "data/benchmark_registry.h"

using namespace kgpip;  // NOLINT — example brevity

int main() {
  // 1. Training data: dataset specs whose associated notebook scripts
  //    KGpip will mine. BenchmarkRegistry ships ~100 corpus datasets; a
  //    real deployment would point this at its own script portal dump.
  BenchmarkRegistry registry;
  std::vector<DatasetSpec> corpus_datasets = registry.TrainingSpecs();
  corpus_datasets.resize(24);  // keep the quickstart snappy

  // 2. Configure and train KGpip. Training mines the scripts with static
  //    analysis, filters the code graphs into Graph4ML, embeds every
  //    dataset's content, and fits the conditional graph generator.
  core::KgpipConfig config;
  config.top_k = 3;               // pipelines handed to the optimizer
  config.optimizer = "flaml";     // host HPO: "flaml" or "autosklearn"
  config.generator_epochs = 15;
  core::Kgpip kgpip(config);

  codegraph::CorpusOptions corpus_options;
  corpus_options.pipelines_per_dataset = 8;
  Status trained = kgpip.Train(corpus_datasets, corpus_options, /*seed=*/7);
  if (!trained.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 trained.ToString().c_str());
    return 1;
  }
  std::printf("KGpip trained: %zu pipelines mined from %zu scripts over "
              "%zu datasets\n\n",
              kgpip.store().NumPipelines(), kgpip.store().scripts_analyzed(),
              kgpip.store().NumDatasets());

  // 3. An unseen dataset. Any kgpip::Table works — load one with
  //    ReadCsvFile + InferColumnTypes, or generate one synthetically.
  DatasetSpec unseen;
  unseen.name = "customer-churn";
  unseen.family = ConceptFamily::kRules;
  unseen.domain = Domain::kFinance;
  unseen.rows = 400;
  unseen.num_numeric = 8;
  unseen.num_categorical = 3;
  unseen.seed = 99;
  Table table = GenerateDataset(unseen);
  auto split = SplitTable(table, /*test_fraction=*/0.25, /*seed=*/1);

  // 4. Instant learner selection (no HPO): which pipelines would KGpip
  //    try on data that looks like this?
  auto nearest = kgpip.NearestDataset(split.train);
  if (nearest.ok()) {
    std::printf("nearest seen dataset: %s (cosine %.2f)\n",
                nearest->key.c_str(), nearest->similarity);
  }
  auto skeletons = kgpip.PredictSkeletons(
      split.train, TaskType::kBinaryClassification, /*seed=*/3);
  if (!skeletons.ok()) {
    std::fprintf(stderr, "prediction failed: %s\n",
                 skeletons.status().ToString().c_str());
    return 1;
  }
  std::printf("predicted pipeline skeletons:\n");
  for (const auto& s : *skeletons) {
    std::printf("  score %7.2f   %s\n", s.log_prob,
                s.spec.ToString().c_str());
  }

  // 5. Full AutoML fit under a budget: KGpip splits the budget across
  //    the predicted skeletons ((T - t) / K) and tunes each with the
  //    host optimizer.
  auto result = kgpip.Fit(split.train, TaskType::kBinaryClassification,
                          hpo::Budget(/*max_trials=*/30,
                                      /*max_seconds=*/60.0),
                          /*seed=*/5);
  if (!result.ok()) {
    std::fprintf(stderr, "fit failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("\nbest pipeline: %s\n", result->best_spec.ToString().c_str());
  std::printf("validation macro-F1: %.3f (%d trials, winning skeleton "
              "ranked #%d)\n",
              result->validation_score, result->trials,
              result->best_skeleton_rank);

  auto test_score = result->fitted.ScoreTable(split.test);
  if (test_score.ok()) {
    std::printf("held-out test macro-F1: %.3f\n", *test_score);
  }
  return 0;
}
