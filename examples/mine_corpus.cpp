// Corpus mining walkthrough: the static-analysis half of KGpip on its
// own. Shows a generated "Kaggle notebook", its GraphGen4Code-style code
// graph, the filtered Graph4ML pipeline, and the corpus-level statistics
// that motivate filtering (paper §3.3-3.4).
//
//   $ ./build/examples/example_mine_corpus
#include <cstdio>

#include "codegraph/analyzer.h"
#include "codegraph/corpus.h"
#include "data/benchmark_registry.h"
#include "graph4ml/filter.h"
#include "graph4ml/graph4ml.h"

using namespace kgpip;  // NOLINT — example brevity

int main() {
  // Generate the notebooks of one dataset.
  DatasetSpec spec;
  spec.name = "house-prices";
  spec.family = ConceptFamily::kRules;
  spec.domain = Domain::kSales;
  spec.task = TaskType::kRegression;
  codegraph::CorpusGenerator corpus(codegraph::CorpusOptions{});
  auto scripts = corpus.GenerateForDataset(spec);

  // Show one pipeline script end to end.
  const codegraph::NotebookScript* pipeline_script = nullptr;
  for (const auto& script : scripts) {
    if (script.is_ml_pipeline) {
      pipeline_script = &script;
      break;
    }
  }
  std::printf("=== notebook %s ===\n%s\n", pipeline_script->name.c_str(),
              pipeline_script->text.c_str());

  auto graph = codegraph::AnalyzeScript(pipeline_script->name,
                                        pipeline_script->text);
  if (!graph.ok()) {
    std::fprintf(stderr, "analysis failed: %s\n",
                 graph.status().ToString().c_str());
    return 1;
  }
  std::printf("=== raw code graph ===\n%zu nodes, %zu edges\n",
              graph->nodes.size(), graph->edges.size());
  std::printf("call nodes (resolved through imports and receiver types):\n");
  for (const auto& node : graph->nodes) {
    if (node.kind == codegraph::NodeKind::kCall) {
      std::printf("  line %-3d %s\n", node.line, node.label.c_str());
    }
  }

  graph4ml::FilterStats stats;
  auto filtered = graph4ml::FilterCodeGraph(
      *graph, pipeline_script->dataset_name, &stats);
  std::printf("\n=== filtered Graph4ML pipeline ===\n");
  std::printf("dataset: %s\n", filtered.dataset_name.c_str());
  std::printf("chain:   <dataset> -> read_csv");
  for (const auto& t : filtered.transformers) std::printf(" -> %s",
                                                          t.c_str());
  std::printf(" -> %s\n", filtered.estimator.c_str());
  std::printf("size:    %zu nodes, %zu edges (%.1f%% node reduction)\n",
              filtered.graph.num_nodes(), filtered.graph.num_edges(),
              100.0 * stats.NodeReduction());

  // Whole-corpus statistics across many datasets.
  BenchmarkRegistry registry;
  auto training = registry.TrainingSpecs();
  graph4ml::Graph4Ml store;
  Status built = store.Build(corpus.GenerateCorpus(training));
  if (!built.ok()) {
    std::fprintf(stderr, "corpus build failed: %s\n",
                 built.ToString().c_str());
    return 1;
  }
  std::printf("\n=== corpus statistics (%zu datasets) ===\n",
              training.size());
  std::printf("scripts analyzed: %zu, pipelines kept: %zu\n",
              store.scripts_analyzed(), store.scripts_kept());
  std::printf("node reduction %.1f%%, edge reduction %.1f%%\n",
              100.0 * store.filter_stats().NodeReduction(),
              100.0 * store.filter_stats().EdgeReduction());
  std::printf("top mined operators:\n");
  auto histogram = store.OpHistogram();
  int shown = 0;
  for (auto it = histogram.begin(); it != histogram.end() && shown < 8;
       ++it, ++shown) {
    std::printf("  %-20s %zu\n", it->first.c_str(), it->second);
  }
  return 0;
}
