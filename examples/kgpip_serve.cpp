// kgpip-serve: a long-lived AutoML serving daemon. Loads trained KGpip
// artifacts once, then executes concurrent Fit requests from multiple
// tenants with admission control, deadlines, a crash-safe content-hash
// cache, and graceful SIGTERM drain.
//
//   $ ./build/examples/kgpip_serve [artifact.kgpip]
//
// Without an artifact path it trains a small model in-process first
// (KGPIP_SERVE_ARTIFACT also names a file to load). All serving knobs
// come from KGPIP_SERVE_* environment variables — see ServeOptions or
// the README quickstart. The demo workload drives synthetic tenants
// against the daemon until SIGTERM/SIGINT, then drains and prints the
// soak audit + cache statistics.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/kgpip.h"
#include "data/benchmark_registry.h"
#include "serve/server.h"
#include "serve/soak_harness.h"
#include "util/json.h"
#include "util/string_util.h"

using namespace kgpip;  // NOLINT — example brevity

namespace {

std::atomic<bool> g_shutdown{false};
std::atomic<int> g_statusz_requests{0};

void HandleSignal(int) { g_shutdown.store(true); }

// SIGUSR1 = "show me what you are doing right now". The handler only
// bumps a counter; a poller thread does the actual DebugStatus dump
// (signal handlers must not take locks).
void HandleStatuszSignal(int) {
  g_statusz_requests.fetch_add(1, std::memory_order_relaxed);
}

// Writes the statusz JSON atomically (temp + rename) so a reader polling
// the path never sees a torn document.
void WriteStatuszFile(const std::string& path, const Json& status) {
  const std::string temp = path + ".tmp";
  std::FILE* file = std::fopen(temp.c_str(), "wb");
  if (file == nullptr) {
    std::fprintf(stderr, "kgpip-serve: cannot write statusz to '%s'\n",
                 temp.c_str());
    return;
  }
  const std::string body = status.Dump(2);
  std::fwrite(body.data(), 1, body.size(), file);
  std::fputc('\n', file);
  std::fclose(file);
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    std::fprintf(stderr, "kgpip-serve: statusz rename to '%s' failed\n",
                 path.c_str());
    std::remove(temp.c_str());
  }
}

double EnvSeconds(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  double value = 0.0;
  return ParseDouble(raw, &value) ? value : fallback;
}

int EnvInt(const char* name, int fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  int64_t value = 0;
  return ParseInt64(raw, &value) ? static_cast<int>(value) : fallback;
}

}  // namespace

int main(int argc, char** argv) {
  // 1. Load artifacts once; every request afterwards reuses them.
  core::Kgpip model;
  const char* artifact =
      argc > 1 ? argv[1] : std::getenv("KGPIP_SERVE_ARTIFACT");
  if (artifact != nullptr) {
    Status loaded = model.LoadFile(artifact);
    if (!loaded.ok()) {
      std::fprintf(stderr, "kgpip-serve: cannot load '%s': %s\n", artifact,
                   loaded.ToString().c_str());
      return 1;
    }
    std::printf("kgpip-serve: loaded artifacts from %s\n", artifact);
  } else {
    std::printf(
        "kgpip-serve: no artifact given; training a demo model...\n");
    BenchmarkRegistry registry;
    std::vector<DatasetSpec> corpus = registry.TrainingSpecs();
    corpus.resize(16);
    codegraph::CorpusOptions corpus_options;
    corpus_options.pipelines_per_dataset = 6;
    Status trained = model.Train(corpus, corpus_options, /*seed=*/7);
    if (!trained.ok()) {
      std::fprintf(stderr, "kgpip-serve: training failed: %s\n",
                   trained.ToString().c_str());
      return 1;
    }
  }

  // 2. Start the daemon. Knobs come from the environment so deploys are
  //    tuned without a rebuild.
  serve::ServeOptions options = serve::ServeOptions::FromEnv();
  serve::Server server(&model, options);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "kgpip-serve: start failed: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  // 3. Signals, installed BEFORE the readiness line is printed so an
  //    operator (or CI) reacting to it can immediately signal us:
  //    SIGTERM/SIGINT begin a drain; SIGUSR1 requests a statusz dump.
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGUSR1, HandleStatuszSignal);

  // Statusz poller: on each SIGUSR1 it prints DebugStatusText to stderr
  // and, when KGPIP_SERVE_STATUSZ names a file, atomically rewrites that
  // file with the full DebugStatus JSON.
  const char* statusz_env = std::getenv("KGPIP_SERVE_STATUSZ");
  const std::string statusz_path = statusz_env != nullptr ? statusz_env : "";
  std::atomic<bool> statusz_done{false};
  std::thread statusz_poller([&server, &statusz_path, &statusz_done] {
    int seen = 0;
    while (!statusz_done.load(std::memory_order_acquire)) {
      const int requested = g_statusz_requests.load(std::memory_order_relaxed);
      if (requested != seen) {
        seen = requested;
        const Json status = server.DebugStatus();
        std::fprintf(stderr, "%s", server.DebugStatusText().c_str());
        if (!statusz_path.empty()) {
          WriteStatuszFile(statusz_path, status);
          std::fprintf(stderr, "kgpip-serve: statusz written to %s\n",
                       statusz_path.c_str());
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  });

  std::printf(
      "kgpip-serve: up (%d workers, queue depth %zu, deadline %.1fs, "
      "cache %s)\n",
      options.num_workers, options.max_queue_depth,
      options.default_deadline_seconds,
      options.cache_dir.empty() ? "memory-only" : options.cache_dir.c_str());
  std::fflush(stdout);

  // 4. Demo workload: synthetic tenants in soak rounds until a signal
  //    arrives (KGPIP_SOAK_SECONDS bounds each round; KGPIP_SOAK_ROUNDS
  //    > 0 exits cleanly after that many rounds, for CI; a non-empty
  //    KGPIP_SOAK_FAULTS turns on chaos-mode fault injection).
  serve::SoakOptions soak;
  soak.num_tenants = 4;
  soak.duration_seconds = EnvSeconds("KGPIP_SOAK_SECONDS", 5.0);
  soak.request_deadline_seconds =
      std::min(options.default_deadline_seconds, 10.0);
  if (std::getenv("KGPIP_SOAK_FAULTS") != nullptr) {
    soak.inject_faults = true;
    soak.poison_fraction = 0.05;
    soak.fault_config.seed = 17;
    soak.fault_config.evaluator_error_rate = 0.1;
    soak.fault_config.nan_score_rate = 0.05;
    soak.fault_config.resource_exhausted_rate = 0.05;
    std::printf("kgpip-serve: chaos mode on (injected faults + poison)\n");
  }
  const int max_rounds = EnvInt("KGPIP_SOAK_ROUNDS", 0);
  int round = 0;
  while (!g_shutdown.load() && (max_rounds <= 0 || round < max_rounds)) {
    serve::SoakHarness harness(&server, soak);
    auto summary = harness.Run();
    if (!summary.ok()) {
      std::fprintf(stderr, "kgpip-serve: soak round %d FAILED: %s\n", round,
                   summary.status().ToString().c_str());
      std::fprintf(stderr, "kgpip-serve: statusz at failure:\n%s",
                   server.DebugStatusText().c_str());
      statusz_done.store(true, std::memory_order_release);
      statusz_poller.join();
      server.Stop();
      return 1;
    }
    std::printf("kgpip-serve: round %d  %s\n", round,
                summary->ToString().c_str());
    ++round;
  }

  // 5. Drain and report.
  std::printf("kgpip-serve: %s, draining...\n",
              g_shutdown.load() ? "signal received" : "soak rounds done");
  server.BeginDrain();
  const bool drained = server.AwaitDrained(
      options.default_deadline_seconds + options.grace_seconds);
  if (!drained) {
    // The single most useful artifact for a stuck drain: what was still
    // queued/in flight, at which stage, and for how long.
    std::fprintf(stderr,
                 "kgpip-serve: drain timed out; statusz at timeout:\n%s",
                 server.DebugStatusText().c_str());
  }
  statusz_done.store(true, std::memory_order_release);
  statusz_poller.join();
  if (!statusz_path.empty()) {
    WriteStatuszFile(statusz_path, server.DebugStatus());
  }
  server.Stop();
  const serve::ArtifactCache::Stats cache = server.cache().stats();
  std::printf(
      "kgpip-serve: %s (cache: %lld hits, %lld misses, %lld writes, "
      "%lld corrupt evictions)\n",
      drained ? "drained cleanly" : "drain timed out; forced stop",
      static_cast<long long>(cache.hits),
      static_cast<long long>(cache.misses),
      static_cast<long long>(cache.writes),
      static_cast<long long>(cache.corrupt_evictions));
  return drained ? 0 : 2;
}
