// Text-column AutoML: the scenario that broke AL in the paper's
// evaluation (Kaggle datasets "include datasets with textual features").
// KGpip's automatic featurizer vectorizes text columns and its corpus
// carries tfidf-pipeline knowledge, so text datasets just work — while
// the AL baseline refuses them.
//
//   $ ./build/examples/example_text_classification
#include <cstdio>

#include "automl/al_system.h"
#include "core/kgpip.h"
#include "data/benchmark_registry.h"
#include "data/csv.h"
#include "data/type_inference.h"

using namespace kgpip;  // NOLINT — example brevity

int main() {
  // A sentiment-like dataset: one text column carries the label signal.
  DatasetSpec spec;
  spec.name = "support-ticket-triage";
  spec.family = ConceptFamily::kText;
  spec.domain = Domain::kReviews;
  spec.rows = 360;
  spec.num_numeric = 3;
  spec.num_text = 1;
  spec.num_classes = 3;
  spec.task = TaskType::kMultiClassification;
  Table table = GenerateDataset(spec);

  // Round-trip through CSV to show the full ingestion path a user would
  // take with their own file: parse, infer column types, detect task.
  std::string csv = WriteCsvText(table);
  auto parsed = ReadCsvText(csv, CsvOptions{});
  if (!parsed.ok()) return 1;
  parsed->set_name(spec.name);
  parsed->set_target_name("target");
  if (!InferColumnTypes(&*parsed).ok()) return 1;
  auto task = DetectTask(*parsed);
  if (!task.ok()) return 1;
  std::printf("ingested %zu rows; inferred %zu numeric / %zu categorical "
              "/ %zu text columns; task: %s\n",
              parsed->num_rows(), parsed->CountType(ColumnType::kNumeric),
              parsed->CountType(ColumnType::kCategorical),
              parsed->CountType(ColumnType::kText), TaskTypeName(*task));

  auto split = SplitTable(*parsed, 0.25, 3);

  // AL fails here, exactly as in the paper.
  automl::AlSystem al;
  auto al_result =
      al.Fit(split.train, *task, hpo::Budget(20, 30.0), 1);
  std::printf("\nAL on text data: %s\n",
              al_result.ok() ? "unexpectedly succeeded"
                             : al_result.status().ToString().c_str());

  // KGpip handles it.
  BenchmarkRegistry registry;
  std::vector<DatasetSpec> corpus_datasets;
  for (const auto& s : registry.TrainingSpecs()) {
    // Text-family corpus plus some general classification datasets.
    if (s.family == ConceptFamily::kText ||
        corpus_datasets.size() < 12) {
      corpus_datasets.push_back(s);
    }
  }
  core::KgpipConfig config;
  config.generator_epochs = 15;
  core::Kgpip kgpip(config);
  Status trained =
      kgpip.Train(corpus_datasets, codegraph::CorpusOptions{}, 5);
  if (!trained.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 trained.ToString().c_str());
    return 1;
  }

  auto skeletons = kgpip.PredictSkeletons(split.train, *task, 3);
  if (skeletons.ok()) {
    std::printf("\nKGpip predicted skeletons for the text dataset:\n");
    for (const auto& s : *skeletons) {
      std::printf("  %s\n", s.spec.ToString().c_str());
    }
  }
  auto result =
      kgpip.Fit(split.train, *task, hpo::Budget(24, 120.0), 7);
  if (!result.ok()) {
    std::fprintf(stderr, "fit failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  auto score = result->fitted.ScoreTable(split.test);
  std::printf("\nKGpip best pipeline: %s\n",
              result->best_spec.ToString().c_str());
  if (score.ok()) {
    std::printf("held-out macro-F1: %.3f (random guessing would be "
                "~0.33 on 3 classes)\n", *score);
  }
  return 0;
}
