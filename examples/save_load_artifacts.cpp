// Artifact persistence: train KGpip once, save the mined Graph4ML store,
// generator weights and dataset embeddings to a single JSON artifact,
// then load it into a fresh process-like instance and serve predictions.
// This is the deployment flow for KGpip as an AutoML sub-component.
//
//   $ ./build/examples/example_save_load_artifacts
#include <cstdio>

#include "core/kgpip.h"
#include "data/benchmark_registry.h"

using namespace kgpip;  // NOLINT — example brevity

int main() {
  const std::string artifact_path = "/tmp/kgpip_artifacts.json";

  // ---- Training side (e.g. an offline mining job) ----
  BenchmarkRegistry registry;
  auto corpus_datasets = registry.TrainingSpecs();
  corpus_datasets.resize(20);

  core::KgpipConfig config;
  config.generator_epochs = 12;
  {
    core::Kgpip trainer(config);
    codegraph::CorpusOptions corpus;
    corpus.pipelines_per_dataset = 8;
    Status trained = trainer.Train(corpus_datasets, corpus, 7);
    if (!trained.ok()) {
      std::fprintf(stderr, "training failed: %s\n",
                   trained.ToString().c_str());
      return 1;
    }
    Status saved = trainer.SaveFile(artifact_path);
    if (!saved.ok()) {
      std::fprintf(stderr, "save failed: %s\n", saved.ToString().c_str());
      return 1;
    }
    std::printf("trained and saved artifacts to %s\n",
                artifact_path.c_str());
  }  // trainer destroyed: everything lives in the artifact now

  // ---- Serving side (e.g. inside a host AutoML system) ----
  core::Kgpip server(config);
  Status loaded = server.LoadFile(artifact_path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n", loaded.ToString().c_str());
    return 1;
  }
  std::printf("loaded: %zu pipelines over %zu datasets\n",
              server.store().NumPipelines(), server.store().NumDatasets());

  // Serve skeleton predictions for a few unseen datasets.
  const ConceptFamily families[] = {ConceptFamily::kLinear,
                                    ConceptFamily::kRules,
                                    ConceptFamily::kClusters};
  for (ConceptFamily family : families) {
    DatasetSpec unseen;
    unseen.name = std::string("serve_") + ConceptFamilyName(family);
    unseen.family = family;
    unseen.rows = 220;
    unseen.seed = 1234 + static_cast<uint64_t>(family);
    Table table = GenerateDataset(unseen);
    auto skeletons = server.PredictSkeletons(
        table, TaskType::kBinaryClassification, 3);
    if (!skeletons.ok()) continue;
    std::printf("\n%s-family dataset -> predicted pipelines:\n",
                ConceptFamilyName(family));
    for (const auto& s : *skeletons) {
      std::printf("  %s\n", s.spec.ToString().c_str());
    }
  }
  std::remove(artifact_path.c_str());
  return 0;
}
