// Regenerates the paper's headline comparison:
//   - Table 2: mean (std) per task for FLAML, KGpipFLAML, Auto-Sklearn,
//     KGpipAutoSklearn + paired two-tailed t-tests
//   - Figure 5: the per-dataset score series behind the radar chart
//   - Table 5: detailed per-dataset scores for all systems
// All 77 datasets, `--runs` runs each (default 3, like the paper).
#include <cmath>
#include <cstdio>

#include "bench/harness.h"
#include "util/stats.h"
#include "util/stopwatch.h"

namespace kgpip::bench {
namespace {

int Run(int argc, char** argv) {
  HarnessOptions options = ParseOptions(argc, argv);
  EvalHarness harness(options);
  Stopwatch watch;
  std::fprintf(stderr, "training KGpip (corpus mining + generator)...\n");
  Status trained = harness.TrainKgpip();
  if (!trained.ok()) {
    std::fprintf(stderr, "KGpip training failed: %s\n",
                 trained.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "KGpip trained in %.1fs (%zu pipelines, %zu "
               "datasets mined)\n",
               watch.ElapsedSeconds(),
               harness.kgpip_flaml().store().NumPipelines(),
               harness.kgpip_flaml().store().NumDatasets());

  const std::vector<DatasetSpec>& specs =
      harness.registry().eval_specs();
  std::vector<const automl::AutoMlSystem*> systems = {
      &harness.flaml(), &harness.kgpip_flaml(), &harness.ask(),
      &harness.kgpip_ask()};
  std::vector<SystemScores> all =
      harness.RunComparison(specs, systems, options.trials);

  // ---- Table 2 ----
  std::printf("\nTable 2. Average performance (mean and standard "
              "deviation); %d run(s), budget %d trials.\n",
              options.runs, options.trials);
  std::printf("%-18s %14s %14s %14s %10s\n", "System", "Binary",
              "Multi-class", "Regression", "T-Test");
  PrintRule(76);
  // Paired t-tests: KGpipFLAML vs FLAML, KGpipASK vs ASK (paper pairs).
  auto per_dataset = [&](int i) { return PerDatasetMeans(all[i], specs); };
  TTestResult flaml_test = PairedTTest(per_dataset(1), per_dataset(0));
  TTestResult ask_test = PairedTTest(per_dataset(3), per_dataset(2));
  for (size_t i = 0; i < all.size(); ++i) {
    TaskAggregate agg = AggregateByTask(all[i], specs);
    char ttest[32] = "-";
    if (i == 0) std::snprintf(ttest, sizeof(ttest), "%.4f",
                              flaml_test.p_value);
    if (i == 2) std::snprintf(ttest, sizeof(ttest), "%.4f",
                              ask_test.p_value);
    std::printf("%-18s   %.2f (%.2f)    %.2f (%.2f)    %.2f (%.2f) %10s\n",
                all[i].system.c_str(), agg.binary_mean, agg.binary_std,
                agg.multi_mean, agg.multi_std, agg.regression_mean,
                agg.regression_std, ttest);
  }
  PrintRule(76);
  std::printf("Paired two-tailed t-tests (per-dataset means):\n");
  std::printf("  KGpipFLAML vs FLAML:            t=%+.3f  p=%.4f  %s\n",
              flaml_test.t_statistic, flaml_test.p_value,
              flaml_test.p_value < 0.05 ? "(significant)" : "");
  std::printf("  KGpipAutoSklearn vs AutoSklearn: t=%+.3f  p=%.4f  %s\n",
              ask_test.t_statistic, ask_test.p_value,
              ask_test.p_value < 0.05 ? "(significant)" : "");
  std::printf("Paper reference: p=0.0129 (vs FLAML), p=0.0002 (vs "
              "Auto-Sklearn), both < 0.05;\nKGpip variants beat their "
              "hosts on every task class.\n");

  // ---- Figure 5 series ----
  std::printf("\nFigure 5 data. Per-dataset scores per system (radar "
              "series), grouped by task.\n");
  const TaskType tasks[] = {TaskType::kRegression,
                            TaskType::kBinaryClassification,
                            TaskType::kMultiClassification};
  for (TaskType task : tasks) {
    std::printf("\n[%s]\n", TaskTypeName(task));
    std::printf("%-40s %8s %11s %12s %16s\n", "Dataset", "FLAML",
                "KGpipFLAML", "AutoSklearn", "KGpipAutoSkl");
    for (const DatasetSpec& spec : specs) {
      if (spec.task != task) continue;
      double f = MeanScore(all[0].scores.at(spec.name));
      double kf = MeanScore(all[1].scores.at(spec.name));
      double a = MeanScore(all[2].scores.at(spec.name));
      double ka = MeanScore(all[3].scores.at(spec.name));
      std::printf("%-40s %8.2f %11.2f %12.2f %16.2f\n", spec.name.c_str(),
                  f, kf, a, ka);
    }
  }

  // ---- Table 5 ----
  std::printf("\nTable 5. Detailed F1 / R^2 scores for all systems on all "
              "%zu datasets (averages of %d run(s)).\n",
              specs.size(), options.runs);
  std::printf("%3s %-40s %7s %11s %12s %16s  %-11s %-7s\n", "#", "Dataset",
              "FLAML", "KGpipFLAML", "AutoSklearn", "KGpipAutoSkl", "Task",
              "Source");
  PrintRule(118);
  int index = 1;
  int kgpip_flaml_wins = 0, kgpip_ask_wins = 0;
  for (const DatasetSpec& spec : specs) {
    double f = MeanScore(all[0].scores.at(spec.name));
    double kf = MeanScore(all[1].scores.at(spec.name));
    double a = MeanScore(all[2].scores.at(spec.name));
    double ka = MeanScore(all[3].scores.at(spec.name));
    if (kf >= f - 1e-9) ++kgpip_flaml_wins;
    if (ka >= a - 1e-9) ++kgpip_ask_wins;
    std::printf("%3d %-40s %7.2f %11.2f %12.2f %16.2f  %-11s %-7s\n",
                index++, spec.name.c_str(), f, kf, a, ka,
                TaskTypeName(spec.task), spec.source.c_str());
  }
  PrintRule(118);
  std::printf("KGpipFLAML >= FLAML on %d/%zu datasets; KGpipAutoSklearn >= "
              "Auto-Sklearn on %d/%zu datasets.\n",
              kgpip_flaml_wins, specs.size(), kgpip_ask_wins, specs.size());
  std::printf("\nTotal wall time: %.1fs\n", watch.ElapsedSeconds());

  // ---- Machine-readable outputs ----
  Json comparison = ComparisonToJson(specs, all, options);
  Json ttests = Json::Object();
  auto ttest_row = [](const TTestResult& test) {
    Json row = Json::Object();
    row.Set("t", test.t_statistic);
    row.Set("p", test.p_value);
    return row;
  };
  ttests.Set("kgpip_flaml_vs_flaml", ttest_row(flaml_test));
  ttests.Set("kgpip_ask_vs_ask", ttest_row(ask_test));
  comparison.Set("t_tests", std::move(ttests));
  comparison.Set("wall_seconds", watch.ElapsedSeconds());
  WriteHarnessOutputs(options, &comparison);
  return 0;
}

}  // namespace
}  // namespace kgpip::bench

int main(int argc, char** argv) { return kgpip::bench::Run(argc, argv); }
