// Micro-benchmarks (google-benchmark) for the hot paths of the KGpip
// substrate: CSV scanning, static analysis + filtering, content
// embedding, similarity search, generator decisions, and learner fits.
//
// Machine-readable output: google-benchmark's own --benchmark_out=PATH
// --benchmark_out_format=json for timings, plus --metrics-out=PATH (ours)
// to snapshot the obs::MetricsRegistry the benchmarked code populated.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "codegraph/analyzer.h"
#include "codegraph/corpus.h"
#include "core/kgpip.h"
#include "data/csv.h"
#include "data/synthetic.h"
#include "embed/embedder.h"
#include "embed/sim_index.h"
#include "gen/graph_generator.h"
#include "graph4ml/filter.h"
#include "graph4ml/graph4ml.h"
#include "ml/learner.h"
#include "nn/inference.h"
#include "nn/matrix.h"
#include "obs/metrics.h"
#include "util/thread_pool.h"

namespace kgpip {
namespace {

/// Thread-count axis for the parallel benchmarks: 1 (fully inline) vs the
/// machine's hardware concurrency. run_benches.sh records the pair so the
/// speedup is visible in BENCH_micro.json.
int HardwareThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

/// Applies the benchmark's thread-count argument to the global pool and
/// labels the state. Restores the default pool in ScopedPool's dtor.
class ScopedPool {
 public:
  explicit ScopedPool(benchmark::State& state) {
    const int threads = static_cast<int>(state.range(0));
    util::ThreadPool::Configure(threads);
    state.SetLabel("threads=" + std::to_string(threads));
  }
  ~ScopedPool() { util::ThreadPool::Configure(0); }
};

DatasetSpec DefaultSpec() {
  DatasetSpec spec;
  spec.name = "micro";
  spec.rows = 300;
  spec.num_numeric = 8;
  spec.num_categorical = 2;
  return spec;
}

void BM_CsvRoundTrip(benchmark::State& state) {
  Table table = GenerateDataset(DefaultSpec());
  std::string text = WriteCsvText(table);
  for (auto _ : state) {
    auto parsed = ReadCsvText(text, CsvOptions{});
    benchmark::DoNotOptimize(parsed.ok());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_CsvRoundTrip);

void BM_StaticAnalysis(benchmark::State& state) {
  codegraph::CorpusGenerator corpus(codegraph::CorpusOptions{});
  auto scripts = corpus.GenerateForDataset(DefaultSpec());
  size_t i = 0;
  for (auto _ : state) {
    const auto& script = scripts[i++ % scripts.size()];
    auto graph = codegraph::AnalyzeScript(script.name, script.text);
    benchmark::DoNotOptimize(graph.ok());
  }
}
BENCHMARK(BM_StaticAnalysis);

void BM_GraphFiltering(benchmark::State& state) {
  codegraph::CorpusGenerator corpus(codegraph::CorpusOptions{});
  auto scripts = corpus.GenerateForDataset(DefaultSpec());
  std::vector<codegraph::CodeGraph> graphs;
  for (const auto& script : scripts) {
    auto graph = codegraph::AnalyzeScript(script.name, script.text);
    if (graph.ok()) graphs.push_back(std::move(*graph));
  }
  size_t i = 0;
  for (auto _ : state) {
    auto pipeline =
        graph4ml::FilterCodeGraph(graphs[i++ % graphs.size()], "micro");
    benchmark::DoNotOptimize(pipeline.valid());
  }
}
BENCHMARK(BM_GraphFiltering);

void BM_TableEmbedding(benchmark::State& state) {
  Table table = GenerateDataset(DefaultSpec());
  embed::TableEmbedder embedder;
  for (auto _ : state) {
    auto v = embedder.Embed(table);
    benchmark::DoNotOptimize(v[0]);
  }
}
BENCHMARK(BM_TableEmbedding);

void BM_SimIndexSearch(benchmark::State& state) {
  embed::SimIndex index;
  Rng rng(1);
  std::vector<double> query(embed::TableEmbedder::kDims);
  for (int i = 0; i < 200; ++i) {
    std::vector<double> v(embed::TableEmbedder::kDims);
    for (double& x : v) x = rng.Normal();
    index.Add("d" + std::to_string(i), v);
  }
  index.Build();
  for (double& x : query) x = rng.Normal();
  for (auto _ : state) {
    auto hits = index.Search(query, 5);
    benchmark::DoNotOptimize(hits.ok());
  }
}
BENCHMARK(BM_SimIndexSearch);

void BM_GeneratorSample(benchmark::State& state) {
  gen::GeneratorConfig config;
  config.vocab_size = graph4ml::PipelineVocab::Get().size();
  config.hidden = 32;
  gen::GraphGenerator generator(config, 7);
  graph4ml::TypedGraph seed;
  seed.node_types = {0, 1};
  seed.edges = {{0, 1}};
  Rng rng(3);
  for (auto _ : state) {
    auto g = generator.Generate(seed, {}, &rng, 0.9);
    benchmark::DoNotOptimize(g.graph.num_nodes());
  }
}
BENCHMARK(BM_GeneratorSample);

void BM_GenGenerate(benchmark::State& state) {
  // Tape (range(0) == 1) vs tape-free (range(0) == 0) decode at a given
  // generation cap; the pair quantifies the inference-engine speedup
  // recorded in BENCH_gen.json.
  gen::GeneratorConfig config;
  config.vocab_size = graph4ml::PipelineVocab::Get().size();
  config.hidden = 32;
  config.max_nodes = static_cast<int>(state.range(1));
  gen::GraphGenerator generator(config, 7);
  graph4ml::TypedGraph seed;
  seed.node_types = {0, 1};
  seed.edges = {{0, 1}};
  const bool tape = state.range(0) != 0;
  Rng rng(3);
  for (auto _ : state) {
    auto g = tape ? generator.GenerateTape(seed, {}, &rng, 0.9)
                  : generator.Generate(seed, {}, &rng, 0.9);
    benchmark::DoNotOptimize(g.graph.num_nodes());
  }
  state.SetLabel(std::string(tape ? "tape" : "tape_free") +
                 " max_nodes=" + std::to_string(config.max_nodes));
}
BENCHMARK(BM_GenGenerate)
    ->Args({0, 12})
    ->Args({1, 12})
    ->Args({0, 30})
    ->Args({1, 30});

void BM_GenGenerateTopK(benchmark::State& state) {
  // Batched candidate generation over the pool (one engine per lane).
  ScopedPool pool(state);
  gen::GeneratorConfig config;
  config.vocab_size = graph4ml::PipelineVocab::Get().size();
  config.hidden = 32;
  config.max_nodes = 30;
  gen::GraphGenerator generator(config, 7);
  graph4ml::TypedGraph seed;
  seed.node_types = {0, 1};
  seed.edges = {{0, 1}};
  Rng rng(3);
  for (auto _ : state) {
    auto batch = generator.GenerateTopK(seed, {}, 8, &rng, 0.9);
    benchmark::DoNotOptimize(batch.size());
  }
}
BENCHMARK(BM_GenGenerateTopK)->Arg(1)->Arg(HardwareThreads());

void BM_LearnerFit(benchmark::State& state) {
  static const char* kLearners[] = {"logistic_regression", "decision_tree",
                                    "xgboost", "knn"};
  const char* learner = kLearners[state.range(0)];
  DatasetSpec spec = DefaultSpec();
  Table table = GenerateDataset(spec);
  ml::Featurizer featurizer;
  featurizer.Fit(table, spec.task);
  auto data = featurizer.Transform(table);
  for (auto _ : state) {
    auto model =
        ml::CreateLearner(learner, spec.task, ml::HyperParams{}, 1);
    benchmark::DoNotOptimize(model.value()->Fit(*data).ok());
  }
  state.SetLabel(learner);
}
BENCHMARK(BM_LearnerFit)->DenseRange(0, 3);

void BM_MatMul(benchmark::State& state) {
  // Exercises the dispatched GEMM micro-kernel across MxK * KxN. The
  // square points are the generator-forward-pass shapes (tall
  // activations x weight panel); the ragged points (odd M/N/K, N below
  // one vector width) hit the masked-tail columns and partial register
  // panels, which the aligned shapes never touch.
  const size_t m = static_cast<size_t>(state.range(0));
  const size_t n = static_cast<size_t>(state.range(1));
  const size_t k = static_cast<size_t>(state.range(2));
  Rng rng(2);
  nn::Matrix a = nn::Matrix::Randn(m, k, &rng);
  nn::Matrix b = nn::Matrix::Randn(k, n, &rng);
  for (auto _ : state) {
    nn::Matrix c = nn::Matrix::MatMul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(2 * m * n * k));
}
BENCHMARK(BM_MatMul)
    ->Args({64, 64, 64})
    ->Args({128, 128, 128})
    ->Args({256, 256, 256})
    // Ragged: odd everything (every column is a masked tail at width 8).
    ->Args({33, 31, 33})
    // Tail-only panel: N smaller than one vector register.
    ->Args({64, 3, 64})
    // Odd K with a 2-vector-wide N and a lone trailing row block.
    ->Args({5, 16, 17});

void BM_FusedLinear(benchmark::State& state) {
  // The serve-path fused affine+activation kernel (GEMM + bias
  // broadcast + squash in one pass) at batched-decode shapes: range(0)
  // rows of a range(1)-wide state through a range(1) x range(2) panel.
  // The odd-width points keep the activation tail loop hot.
  const size_t rows = static_cast<size_t>(state.range(0));
  const size_t in = static_cast<size_t>(state.range(1));
  const size_t out_cols = static_cast<size_t>(state.range(2));
  Rng rng(3);
  nn::Matrix x = nn::Matrix::Randn(rows, in, &rng);
  nn::Matrix w = nn::Matrix::Randn(in, out_cols, &rng);
  nn::Matrix b = nn::Matrix::Randn(1, out_cols, &rng);
  nn::Matrix out;
  for (auto _ : state) {
    nn::FusedLinear(x, w, b, nn::Activation::kTanh, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(2 * rows * in * out_cols));
}
BENCHMARK(BM_FusedLinear)
    ->Args({64, 32, 96})    // one group's GRU x-gate panel
    ->Args({240, 32, 96})   // stacked multi-lane panel (30 nodes x 8 lanes)
    ->Args({33, 31, 17})    // ragged: masked tails everywhere
    ->Args({7, 24, 1});     // decision-head shape (scores column)

void BM_ParallelForDispatch(benchmark::State& state) {
  // Pure dispatch overhead: a loop whose body is nearly free measures
  // what the pool costs per ParallelFor call at each thread count.
  ScopedPool pool(state);
  std::vector<double> out(256, 0.0);
  for (auto _ : state) {
    util::ThreadPool::Global().ParallelFor(out.size(), [&](size_t i) {
      out[i] = static_cast<double>(i);
    });
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_ParallelForDispatch)->Arg(1)->Arg(HardwareThreads());

void BM_CorpusAnalysisFanout(benchmark::State& state) {
  // The mining hot path end-to-end: per-script static analysis + filter
  // across a whole corpus, fanned out by Graph4Ml::Build.
  ScopedPool pool(state);
  codegraph::CorpusGenerator corpus(codegraph::CorpusOptions{});
  std::vector<DatasetSpec> specs;
  for (int d = 0; d < 8; ++d) {
    DatasetSpec spec = DefaultSpec();
    spec.name = "micro_" + std::to_string(d);
    specs.push_back(spec);
  }
  auto scripts = corpus.GenerateCorpus(specs);
  for (auto _ : state) {
    graph4ml::Graph4Ml store;
    benchmark::DoNotOptimize(store.Build(scripts).ok());
  }
}
BENCHMARK(BM_CorpusAnalysisFanout)->Arg(1)->Arg(HardwareThreads());

void BM_SimIndexBuild(benchmark::State& state) {
  // IVF k-means over a contiguous buffer; the assignment sweep is the
  // parallel part.
  ScopedPool pool(state);
  Rng rng(4);
  std::vector<std::vector<double>> vectors;
  for (int i = 0; i < 512; ++i) {
    std::vector<double> v(embed::TableEmbedder::kDims);
    for (double& x : v) x = rng.Normal();
    vectors.push_back(std::move(v));
  }
  embed::SimIndex::Options options;
  options.num_cells = 16;
  for (auto _ : state) {
    embed::SimIndex index(options);
    for (size_t i = 0; i < vectors.size(); ++i) {
      index.Add("d" + std::to_string(i), vectors[i]);
    }
    benchmark::DoNotOptimize(index.Build().ok());
  }
}
BENCHMARK(BM_SimIndexBuild)->Arg(1)->Arg(HardwareThreads());

void BM_ForestFit(benchmark::State& state) {
  // Per-tree parallel forest training with forked RNG streams.
  ScopedPool pool(state);
  DatasetSpec spec = DefaultSpec();
  spec.rows = 600;
  Table table = GenerateDataset(spec);
  ml::Featurizer featurizer;
  featurizer.Fit(table, spec.task);
  auto data = featurizer.Transform(table);
  ml::HyperParams params;
  params.SetNum("n_estimators", 40);
  for (auto _ : state) {
    auto model =
        ml::CreateLearner("random_forest", spec.task, params, 1);
    benchmark::DoNotOptimize(model.value()->Fit(*data).ok());
  }
}
BENCHMARK(BM_ForestFit)->Arg(1)->Arg(HardwareThreads());

}  // namespace
}  // namespace kgpip

int main(int argc, char** argv) {
  // Peel off --metrics-out before google-benchmark sees (and rejects) it.
  std::string metrics_out;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--metrics-out=", 14) == 0) {
      metrics_out = argv[i] + 14;
      continue;
    }
    argv[kept++] = argv[i];
  }
  argc = kept;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!metrics_out.empty()) {
    kgpip::Status written =
        kgpip::obs::MetricsRegistry::Global().WriteJsonFile(metrics_out);
    if (!written.ok()) {
      std::fprintf(stderr, "WARNING: %s\n", written.ToString().c_str());
      return 1;
    }
  }
  return 0;
}
