// Micro-benchmarks (google-benchmark) for the hot paths of the KGpip
// substrate: CSV scanning, static analysis + filtering, content
// embedding, similarity search, generator decisions, and learner fits.
//
// Machine-readable output: google-benchmark's own --benchmark_out=PATH
// --benchmark_out_format=json for timings, plus --metrics-out=PATH (ours)
// to snapshot the obs::MetricsRegistry the benchmarked code populated.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "codegraph/analyzer.h"
#include "codegraph/corpus.h"
#include "core/kgpip.h"
#include "data/csv.h"
#include "data/synthetic.h"
#include "embed/embedder.h"
#include "embed/sim_index.h"
#include "gen/graph_generator.h"
#include "graph4ml/filter.h"
#include "ml/learner.h"
#include "obs/metrics.h"

namespace kgpip {
namespace {

DatasetSpec DefaultSpec() {
  DatasetSpec spec;
  spec.name = "micro";
  spec.rows = 300;
  spec.num_numeric = 8;
  spec.num_categorical = 2;
  return spec;
}

void BM_CsvRoundTrip(benchmark::State& state) {
  Table table = GenerateDataset(DefaultSpec());
  std::string text = WriteCsvText(table);
  for (auto _ : state) {
    auto parsed = ReadCsvText(text, CsvOptions{});
    benchmark::DoNotOptimize(parsed.ok());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_CsvRoundTrip);

void BM_StaticAnalysis(benchmark::State& state) {
  codegraph::CorpusGenerator corpus(codegraph::CorpusOptions{});
  auto scripts = corpus.GenerateForDataset(DefaultSpec());
  size_t i = 0;
  for (auto _ : state) {
    const auto& script = scripts[i++ % scripts.size()];
    auto graph = codegraph::AnalyzeScript(script.name, script.text);
    benchmark::DoNotOptimize(graph.ok());
  }
}
BENCHMARK(BM_StaticAnalysis);

void BM_GraphFiltering(benchmark::State& state) {
  codegraph::CorpusGenerator corpus(codegraph::CorpusOptions{});
  auto scripts = corpus.GenerateForDataset(DefaultSpec());
  std::vector<codegraph::CodeGraph> graphs;
  for (const auto& script : scripts) {
    auto graph = codegraph::AnalyzeScript(script.name, script.text);
    if (graph.ok()) graphs.push_back(std::move(*graph));
  }
  size_t i = 0;
  for (auto _ : state) {
    auto pipeline =
        graph4ml::FilterCodeGraph(graphs[i++ % graphs.size()], "micro");
    benchmark::DoNotOptimize(pipeline.valid());
  }
}
BENCHMARK(BM_GraphFiltering);

void BM_TableEmbedding(benchmark::State& state) {
  Table table = GenerateDataset(DefaultSpec());
  embed::TableEmbedder embedder;
  for (auto _ : state) {
    auto v = embedder.Embed(table);
    benchmark::DoNotOptimize(v[0]);
  }
}
BENCHMARK(BM_TableEmbedding);

void BM_SimIndexSearch(benchmark::State& state) {
  embed::SimIndex index;
  Rng rng(1);
  std::vector<double> query(embed::TableEmbedder::kDims);
  for (int i = 0; i < 200; ++i) {
    std::vector<double> v(embed::TableEmbedder::kDims);
    for (double& x : v) x = rng.Normal();
    index.Add("d" + std::to_string(i), v);
  }
  index.Build();
  for (double& x : query) x = rng.Normal();
  for (auto _ : state) {
    auto hits = index.Search(query, 5);
    benchmark::DoNotOptimize(hits.ok());
  }
}
BENCHMARK(BM_SimIndexSearch);

void BM_GeneratorSample(benchmark::State& state) {
  gen::GeneratorConfig config;
  config.vocab_size = graph4ml::PipelineVocab::Get().size();
  config.hidden = 32;
  gen::GraphGenerator generator(config, 7);
  graph4ml::TypedGraph seed;
  seed.node_types = {0, 1};
  seed.edges = {{0, 1}};
  Rng rng(3);
  for (auto _ : state) {
    auto g = generator.Generate(seed, {}, &rng, 0.9);
    benchmark::DoNotOptimize(g.graph.num_nodes());
  }
}
BENCHMARK(BM_GeneratorSample);

void BM_LearnerFit(benchmark::State& state) {
  static const char* kLearners[] = {"logistic_regression", "decision_tree",
                                    "xgboost", "knn"};
  const char* learner = kLearners[state.range(0)];
  DatasetSpec spec = DefaultSpec();
  Table table = GenerateDataset(spec);
  ml::Featurizer featurizer;
  featurizer.Fit(table, spec.task);
  auto data = featurizer.Transform(table);
  for (auto _ : state) {
    auto model =
        ml::CreateLearner(learner, spec.task, ml::HyperParams{}, 1);
    benchmark::DoNotOptimize(model.value()->Fit(*data).ok());
  }
  state.SetLabel(learner);
}
BENCHMARK(BM_LearnerFit)->DenseRange(0, 3);

}  // namespace
}  // namespace kgpip

int main(int argc, char** argv) {
  // Peel off --metrics-out before google-benchmark sees (and rejects) it.
  std::string metrics_out;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--metrics-out=", 14) == 0) {
      metrics_out = argv[i] + 14;
      continue;
    }
    argv[kept++] = argv[i];
  }
  argc = kept;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!metrics_out.empty()) {
    kgpip::Status written =
        kgpip::obs::MetricsRegistry::Global().WriteJsonFile(metrics_out);
    if (!written.ok()) {
      std::fprintf(stderr, "WARNING: %s\n", written.ToString().c_str());
      return 1;
    }
  }
  return 0;
}
