#include "bench/harness.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "obs/metrics.h"
#include "util/stats.h"

namespace kgpip::bench {

HarnessOptions ParseOptions(int argc, char** argv) {
  HarnessOptions options;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--quick") == 0) {
      options.quick = true;
      options.runs = 1;
      options.trials = 14;
      options.half_trials = 8;
      options.generator_epochs = 8;
      options.corpus_pipelines_per_dataset = 6;
      options.corpus_noise_per_dataset = 2;
    } else if (std::strncmp(arg, "--runs=", 7) == 0) {
      options.runs = std::atoi(arg + 7);
    } else if (std::strncmp(arg, "--trials=", 9) == 0) {
      options.trials = std::atoi(arg + 9);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      options.seed = static_cast<uint64_t>(std::atoll(arg + 7));
    } else if (std::strncmp(arg, "--json-out=", 11) == 0) {
      options.json_out = arg + 11;
    } else if (std::strncmp(arg, "--metrics-out=", 14) == 0) {
      options.metrics_out = arg + 14;
    }
  }
  return options;
}

EvalHarness::EvalHarness(HarnessOptions options) : options_(options) {}

Status EvalHarness::TrainKgpip() {
  core::KgpipConfig config;
  config.top_k = 3;
  config.generator_epochs = options_.generator_epochs;
  config.optimizer = "flaml";
  kgpip_flaml_ = std::make_unique<core::Kgpip>(config);

  codegraph::CorpusOptions corpus;
  corpus.pipelines_per_dataset = options_.corpus_pipelines_per_dataset;
  corpus.noise_scripts_per_dataset = options_.corpus_noise_per_dataset;
  corpus.seed = options_.seed;
  KGPIP_RETURN_IF_ERROR(
      kgpip_flaml_->Train(registry_.TrainingSpecs(), corpus,
                          options_.seed));

  // The Auto-Sklearn variant shares every trained artifact; only the host
  // optimizer differs (the paper's point: integration is pluggable).
  config.optimizer = "autosklearn";
  kgpip_ask_ = std::make_unique<core::Kgpip>(config);
  KGPIP_RETURN_IF_ERROR(kgpip_ask_->LoadJson(kgpip_flaml_->ToJson()));
  return Status::Ok();
}

double EvalHarness::EvaluateOnce(const automl::AutoMlSystem& system,
                                 const DatasetSpec& spec, int run_index,
                                 int trials,
                                 automl::AutoMlResult* result_out) {
  DatasetSpec run_spec = spec;
  Table table = GenerateDataset(run_spec);
  auto split = SplitTable(table, 0.25,
                          options_.seed + static_cast<uint64_t>(run_index));
  auto result =
      system.Fit(split.train, spec.task, hpo::Budget(trials, 1e9),
                 options_.seed * 7919 + static_cast<uint64_t>(run_index));
  if (!result.ok()) return std::nan("");
  auto score = result->fitted.ScoreTable(split.test);
  if (!score.ok()) return std::nan("");
  if (result_out != nullptr) *result_out = std::move(*result);
  return std::max(0.0, *score);  // the paper reports floor-0 metrics
}

std::vector<SystemScores> EvalHarness::RunComparison(
    const std::vector<DatasetSpec>& specs,
    const std::vector<const automl::AutoMlSystem*>& systems, int trials) {
  std::vector<SystemScores> out;
  for (const automl::AutoMlSystem* system : systems) {
    SystemScores scores;
    scores.system = system->name();
    for (const DatasetSpec& spec : specs) {
      for (int run = 0; run < options_.runs; ++run) {
        automl::AutoMlResult result;
        double score = EvaluateOnce(*system, spec, run, trials, &result);
        scores.scores[spec.name].push_back(score);
        if (!std::isnan(score)) {
          const hpo::RunReport& report = result.report;
          scores.trial_failures += report.total_failures;
          scores.trial_retries += report.total_retries;
          scores.quarantined_scores += report.quarantined_scores;
          scores.circuit_breaker_trips += report.circuit_breaker_trips;
          if (report.fallback_portfolio || report.last_resort_pass) {
            ++scores.degraded_runs;
          }
          scores.skeleton_ranks[spec.name].push_back(
              result.best_skeleton_rank);
          scores.learner_sequences[spec.name].push_back(
              result.learner_sequence);
          std::vector<std::string> predicted;
          for (const auto& skeleton : result.skeletons) {
            predicted.push_back(skeleton.learner);
          }
          scores.predicted_learners[spec.name].push_back(
              std::move(predicted));
          scores.best_learners[spec.name].push_back(
              result.best_spec.learner);
        }
      }
      std::fprintf(stderr, "  [%s] %s done\n", scores.system.c_str(),
                   spec.name.c_str());
    }
    if (scores.trial_failures > 0 || scores.degraded_runs > 0) {
      std::fprintf(stderr,
                   "  [%s] robustness: %d trial failures, %d retries, "
                   "%d NaN quarantined, %d circuit trips, %d degraded "
                   "runs\n",
                   scores.system.c_str(), scores.trial_failures,
                   scores.trial_retries, scores.quarantined_scores,
                   scores.circuit_breaker_trips, scores.degraded_runs);
    }
    out.push_back(std::move(scores));
  }
  return out;
}

double MeanScore(const std::vector<double>& scores) {
  double sum = 0.0;
  size_t n = 0;
  for (double s : scores) {
    if (std::isnan(s)) continue;
    sum += s;
    ++n;
  }
  return n == 0 ? std::nan("") : sum / static_cast<double>(n);
}

std::vector<double> PerDatasetMeans(const SystemScores& scores,
                                    const std::vector<DatasetSpec>& specs) {
  std::vector<double> out;
  for (const DatasetSpec& spec : specs) {
    auto it = scores.scores.find(spec.name);
    double mean =
        it == scores.scores.end() ? std::nan("") : MeanScore(it->second);
    out.push_back(std::isnan(mean) ? 0.0 : mean);
  }
  return out;
}

TaskAggregate AggregateByTask(const SystemScores& scores,
                              const std::vector<DatasetSpec>& specs) {
  std::vector<double> binary, multi, regression;
  for (const DatasetSpec& spec : specs) {
    auto it = scores.scores.find(spec.name);
    if (it == scores.scores.end()) continue;
    double mean = MeanScore(it->second);
    if (std::isnan(mean)) mean = 0.0;
    switch (spec.task) {
      case TaskType::kBinaryClassification:
        binary.push_back(mean);
        break;
      case TaskType::kMultiClassification:
        multi.push_back(mean);
        break;
      case TaskType::kRegression:
        regression.push_back(mean);
        break;
    }
  }
  TaskAggregate out;
  out.binary_mean = Mean(binary);
  out.binary_std = StdDev(binary);
  out.multi_mean = Mean(multi);
  out.multi_std = StdDev(multi);
  out.regression_mean = Mean(regression);
  out.regression_std = StdDev(regression);
  return out;
}

void PrintRule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

Json ComparisonToJson(const std::vector<DatasetSpec>& specs,
                      const std::vector<SystemScores>& all,
                      const HarnessOptions& options) {
  Json out = Json::Object();
  Json opts = Json::Object();
  opts.Set("runs", options.runs);
  opts.Set("trials", options.trials);
  opts.Set("seed", static_cast<int64_t>(options.seed));
  opts.Set("quick", options.quick);
  out.Set("options", std::move(opts));

  Json systems = Json::Array();
  for (const SystemScores& scores : all) {
    Json entry = Json::Object();
    entry.Set("system", scores.system);

    TaskAggregate agg = AggregateByTask(scores, specs);
    Json aggregates = Json::Object();
    auto task_row = [](double mean, double std_dev) {
      Json row = Json::Object();
      row.Set("mean", mean);
      row.Set("std", std_dev);
      return row;
    };
    aggregates.Set("binary", task_row(agg.binary_mean, agg.binary_std));
    aggregates.Set("multi_class", task_row(agg.multi_mean, agg.multi_std));
    aggregates.Set("regression",
                   task_row(agg.regression_mean, agg.regression_std));
    entry.Set("aggregates", std::move(aggregates));

    Json datasets = Json::Object();
    for (const DatasetSpec& spec : specs) {
      auto it = scores.scores.find(spec.name);
      if (it == scores.scores.end()) continue;
      Json d = Json::Object();
      double mean = MeanScore(it->second);
      // NaN (every run failed) is not representable in strict JSON.
      d.Set("mean", std::isnan(mean) ? Json() : Json(mean));
      Json runs = Json::Array();
      for (double s : it->second) {
        runs.Append(std::isnan(s) ? Json() : Json(s));
      }
      d.Set("scores", std::move(runs));
      d.Set("task", TaskTypeName(spec.task));
      datasets.Set(spec.name, std::move(d));
    }
    entry.Set("datasets", std::move(datasets));

    Json robustness = Json::Object();
    robustness.Set("trial_failures", scores.trial_failures);
    robustness.Set("trial_retries", scores.trial_retries);
    robustness.Set("quarantined_scores", scores.quarantined_scores);
    robustness.Set("circuit_breaker_trips", scores.circuit_breaker_trips);
    robustness.Set("degraded_runs", scores.degraded_runs);
    entry.Set("robustness", std::move(robustness));
    systems.Append(std::move(entry));
  }
  out.Set("systems", std::move(systems));
  return out;
}

void WriteHarnessOutputs(const HarnessOptions& options,
                         const Json* comparison) {
  if (!options.json_out.empty() && comparison != nullptr) {
    std::ofstream out(options.json_out);
    if (out) out << comparison->Dump(2) << "\n";
    if (!out) {
      std::fprintf(stderr, "WARNING: could not write --json-out=%s\n",
                   options.json_out.c_str());
    } else {
      std::fprintf(stderr, "wrote %s\n", options.json_out.c_str());
    }
  }
  if (!options.metrics_out.empty()) {
    Status written =
        obs::MetricsRegistry::Global().WriteJsonFile(options.metrics_out);
    if (!written.ok()) {
      std::fprintf(stderr, "WARNING: %s\n", written.ToString().c_str());
    } else {
      std::fprintf(stderr, "wrote %s\n", options.metrics_out.c_str());
    }
  }
}

}  // namespace kgpip::bench
