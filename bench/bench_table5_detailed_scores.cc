// Regenerates Table 5 standalone: detailed per-dataset F1 / R^2 scores
// for FLAML, KGpipFLAML, Auto-Sklearn and KGpipAutoSklearn on all 77
// datasets. Defaults to a single run (the full 3-run averages come from
// bench_table2_main_comparison, which shares this protocol).
#include <cmath>
#include <cstdio>
#include <cstring>

#include "bench/harness.h"

namespace kgpip::bench {
namespace {

int Run(int argc, char** argv) {
  HarnessOptions options = ParseOptions(argc, argv);
  bool runs_overridden = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--runs=", 7) == 0) runs_overridden = true;
  }
  if (!runs_overridden) options.runs = 1;

  EvalHarness harness(options);
  Status trained = harness.TrainKgpip();
  if (!trained.ok()) {
    std::fprintf(stderr, "KGpip training failed: %s\n",
                 trained.ToString().c_str());
    return 1;
  }
  const std::vector<DatasetSpec>& specs = harness.registry().eval_specs();
  std::vector<const automl::AutoMlSystem*> systems = {
      &harness.flaml(), &harness.kgpip_flaml(), &harness.ask(),
      &harness.kgpip_ask()};
  std::vector<SystemScores> all =
      harness.RunComparison(specs, systems, options.trials);

  std::printf("Table 5. Detailed F1 / R^2 scores on all %zu datasets "
              "(%d run(s), budget %d trials). Best per row marked *.\n",
              specs.size(), options.runs, options.trials);
  std::printf("%3s %-40s %8s %12s %13s %17s  %-11s %-7s\n", "#", "Dataset",
              "FLAML", "KGpipFLAML", "AutoSklearn", "KGpipAutoSkl", "Task",
              "Source");
  PrintRule(122);
  int index = 1;
  for (const DatasetSpec& spec : specs) {
    double scores[4];
    double best = -1.0;
    for (int s = 0; s < 4; ++s) {
      scores[s] = MeanScore(all[s].scores.at(spec.name));
      if (std::isnan(scores[s])) scores[s] = 0.0;
      best = std::max(best, scores[s]);
    }
    auto mark = [&](int s) { return scores[s] >= best - 1e-9 ? '*' : ' '; };
    std::printf("%3d %-40s %7.2f%c %11.2f%c %12.2f%c %16.2f%c  %-11s %-7s\n",
                index++, spec.name.c_str(), scores[0], mark(0), scores[1],
                mark(1), scores[2], mark(2), scores[3], mark(3),
                TaskTypeName(spec.task), spec.source.c_str());
  }
  PrintRule(122);
  return 0;
}

}  // namespace
}  // namespace kgpip::bench

int main(int argc, char** argv) { return kgpip::bench::Run(argc, argv); }
