// Regenerates Table 1 of the paper: benchmark statistics — dataset counts
// per (task, source), with the FLAML / AL usage markers.
#include <cstdio>

#include "bench/harness.h"

namespace kgpip::bench {
namespace {

int Run() {
  BenchmarkRegistry registry;
  const char* sources[] = {"AutoML", "PMLB", "OpenML", "Kaggle"};
  const TaskType tasks[] = {TaskType::kBinaryClassification,
                            TaskType::kMultiClassification,
                            TaskType::kRegression};

  std::printf("Table 1. Benchmark statistics (datasets per source).\n");
  std::printf("%-12s %8s %8s %8s %8s %8s\n", "Task", "AutoML", "PMLB",
              "OpenML", "Kaggle", "Total");
  PrintRule(58);
  int grand_total = 0;
  int column_totals[4] = {0, 0, 0, 0};
  for (TaskType task : tasks) {
    int row_total = 0;
    std::printf("%-12s", TaskTypeName(task));
    for (int s = 0; s < 4; ++s) {
      int count = 0;
      for (const DatasetSpec& spec : registry.eval_specs()) {
        if (spec.task == task && spec.source == sources[s]) ++count;
      }
      std::printf(" %8d", count);
      row_total += count;
      column_totals[s] += count;
    }
    std::printf(" %8d\n", row_total);
    grand_total += row_total;
  }
  PrintRule(58);
  std::printf("%-12s", "Total");
  for (int s = 0; s < 4; ++s) std::printf(" %8d", column_totals[s]);
  std::printf(" %8d\n", grand_total);

  int flaml = 0, al = 0;
  for (const DatasetSpec& spec : registry.eval_specs()) {
    if (spec.used_by_flaml) ++flaml;
    if (spec.used_by_al) ++al;
  }
  std::printf("\nDatasets marked * (used by FLAML): %d\n", flaml);
  std::printf("Datasets marked + (used by AL):    %d\n", al);
  std::printf("\nPaper reference: 39 AutoML + 23 PMLB + 9 OpenML + 6 "
              "Kaggle = 77 datasets.\n");
  return grand_total == 77 ? 0 : 1;
}

}  // namespace
}  // namespace kgpip::bench

int main() { return kgpip::bench::Run(); }
