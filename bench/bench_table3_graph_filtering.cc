// Regenerates Table 3: the code-graph-filtering ablation. One model is
// trained on the *raw* static-analysis code graphs of 82 pipeline scripts
// for a single dataset, the other on the filtered Graph4ML graphs of the
// same scripts. Reported, as in the paper: node/edge counts, training
// time, and the F1 each model's generated pipelines reach on the five
// most trivial AutoML-benchmark datasets.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "bench/harness.h"
#include "codegraph/analyzer.h"
#include "codegraph/corpus.h"
#include "codegraph/ml_api.h"
#include "gen/graph_generator.h"
#include "gen/skeleton.h"
#include "graph4ml/filter.h"
#include "hpo/optimizer.h"
#include "util/stopwatch.h"

namespace kgpip::bench {
namespace {

using codegraph::CodeGraph;
using gen::GeneratedGraph;
using gen::GeneratorConfig;
using gen::GraphExample;
using gen::GraphGenerator;
using graph4ml::PipelineVocab;
using graph4ml::TypedGraph;

/// Raw code graphs use an open label vocabulary; this maps labels to
/// dense type ids (capped) so the generator can model them.
class RawVocab {
 public:
  int TypeOf(const std::string& label) {
    auto it = ids_.find(label);
    if (it != ids_.end()) return it->second;
    int id = static_cast<int>(labels_.size());
    ids_[label] = id;
    labels_.push_back(label);
    return id;
  }
  const std::string& LabelOf(int id) const { return labels_[id]; }
  int size() const { return static_cast<int>(labels_.size()); }

 private:
  std::map<std::string, int> ids_;
  std::vector<std::string> labels_;
};

/// Converts a raw code graph to a typed graph over `vocab`, truncated to
/// `max_nodes` (the 1-core scale-down; the paper trained 175 minutes on
/// full graphs — the *ratio* is what matters here).
TypedGraph RawToTyped(const CodeGraph& graph, RawVocab* vocab,
                      size_t max_nodes) {
  TypedGraph out;
  size_t n = std::min(graph.nodes.size(), max_nodes);
  for (size_t i = 0; i < n; ++i) {
    std::string label = std::string(NodeKindName(graph.nodes[i].kind)) +
                        ":" + graph.nodes[i].label;
    out.node_types.push_back(vocab->TypeOf(label));
  }
  for (const auto& edge : graph.edges) {
    if (edge.src < static_cast<int>(n) && edge.dst < static_cast<int>(n) &&
        edge.src != edge.dst) {
      // The generator's sequential formulation needs dst > src.
      int lo = std::min(edge.src, edge.dst);
      int hi = std::max(edge.src, edge.dst);
      out.edges.emplace_back(lo, hi);
    }
  }
  return out;
}

/// Maps a raw-vocab generated graph back to a skeleton, giving the raw
/// model a fair chance: any generated node whose label canonicalizes to a
/// supported ML op counts.
Result<ml::PipelineSpec> RawGraphToSkeleton(const GeneratedGraph& generated,
                                            const RawVocab& vocab,
                                            TaskType task) {
  ml::PipelineSpec spec;
  for (int type : generated.graph.node_types) {
    if (type < 0 || type >= vocab.size()) continue;
    std::string label = vocab.LabelOf(type);
    size_t colon = label.find(':');
    if (colon == std::string::npos) continue;
    if (label.substr(0, colon) != "call") continue;
    bool is_estimator = false;
    std::string canonical = codegraph::CanonicalizeMlCall(
        label.substr(colon + 1), &is_estimator);
    if (canonical.empty()) continue;
    if (is_estimator) {
      spec.learner = canonical;
    } else if (ml::IsKnownTransformer(canonical)) {
      spec.preprocessors.push_back(canonical);
    }
  }
  if (spec.learner.empty() || !ml::LearnerSupports(spec.learner, task)) {
    return Status::InvalidArgument("no valid estimator generated");
  }
  return spec;
}

struct AblationArm {
  std::string name;
  size_t nodes = 0;
  size_t edges = 0;
  double train_seconds = 0.0;
  std::map<std::string, double> f1;  // per trivial dataset
  double avg_f1 = 0.0;
  int valid_skeletons = 0;
};

int Run(int argc, char** argv) {
  HarnessOptions options = ParseOptions(argc, argv);
  const int epochs = options.quick ? 5 : 15;  // paper: 15 epochs
  const size_t raw_node_cap = options.quick ? 30 : 60;

  // ---- 82 pipeline scripts for ONE classification dataset. ----
  BenchmarkRegistry registry;
  DatasetSpec corpus_spec;
  corpus_spec.name = "ablation_dataset";
  corpus_spec.family = ConceptFamily::kRules;
  corpus_spec.domain = Domain::kGames;
  corpus_spec.task = TaskType::kBinaryClassification;
  corpus_spec.rows = 300;
  codegraph::CorpusOptions corpus_options;
  corpus_options.pipelines_per_dataset = 82;  // paper: 82 pipelines
  corpus_options.noise_scripts_per_dataset = 0;
  corpus_options.seed = options.seed;
  codegraph::CorpusGenerator corpus(corpus_options);
  auto scripts = corpus.GenerateForDataset(corpus_spec);

  // ---- Build both training sets from the exact same scripts. ----
  RawVocab raw_vocab;
  std::vector<GraphExample> raw_examples;
  std::vector<GraphExample> filtered_examples;
  AblationArm raw_arm{"Code Graph"};
  AblationArm filtered_arm{"Filtered Graph"};
  for (const auto& script : scripts) {
    auto graph = codegraph::AnalyzeScript(script.name, script.text);
    if (!graph.ok()) continue;
    raw_arm.nodes += graph->nodes.size();
    raw_arm.edges += graph->edges.size();
    GraphExample raw_example;
    raw_example.graph = RawToTyped(*graph, &raw_vocab, raw_node_cap);
    raw_example.given_nodes = 1;
    raw_examples.push_back(std::move(raw_example));

    auto pipeline =
        graph4ml::FilterCodeGraph(*graph, script.dataset_name);
    if (!pipeline.valid()) continue;
    filtered_arm.nodes += pipeline.graph.num_nodes();
    filtered_arm.edges += pipeline.graph.num_edges();
    GraphExample filtered_example;
    filtered_example.graph = pipeline.graph;
    filtered_example.given_nodes = 2;
    filtered_examples.push_back(std::move(filtered_example));
  }
  std::printf("Table 3 ablation corpus: %zu pipeline scripts for one "
              "dataset.\n", scripts.size());
  std::printf("Raw code graphs:      %zu nodes, %zu edges (generator sees "
              "the first %zu nodes per graph)\n",
              raw_arm.nodes, raw_arm.edges, raw_node_cap);
  std::printf("Filtered graphs:      %zu nodes, %zu edges\n",
              filtered_arm.nodes, filtered_arm.edges);
  std::printf("Reduction:            %.1f%% nodes, %.1f%% edges (paper: "
              ">= 96%%)\n\n",
              100.0 * (1.0 - static_cast<double>(filtered_arm.nodes) /
                                 raw_arm.nodes),
              100.0 * (1.0 - static_cast<double>(filtered_arm.edges) /
                                 raw_arm.edges));

  // ---- Train both models for the same number of epochs. ----
  GeneratorConfig raw_config;
  raw_config.vocab_size = raw_vocab.size();
  raw_config.hidden = 24;
  raw_config.max_nodes = static_cast<int>(raw_node_cap);
  GraphGenerator raw_model(raw_config, options.seed);
  Rng rng(options.seed);
  Stopwatch raw_watch;
  for (int e = 0; e < epochs; ++e) raw_model.TrainEpoch(raw_examples, &rng);
  raw_arm.train_seconds = raw_watch.ElapsedSeconds();

  GeneratorConfig filtered_config;
  filtered_config.vocab_size = PipelineVocab::Get().size();
  filtered_config.hidden = 24;
  filtered_config.max_nodes = 10;
  GraphGenerator filtered_model(filtered_config, options.seed);
  Stopwatch filtered_watch;
  for (int e = 0; e < epochs; ++e) {
    filtered_model.TrainEpoch(filtered_examples, &rng);
  }
  filtered_arm.train_seconds = filtered_watch.ElapsedSeconds();

  // ---- Evaluate generated pipelines on the 5 trivial datasets. ----
  auto trivial = registry.TrivialSubset();
  auto optimizer = hpo::CreateOptimizer("autosklearn");
  const int hpo_trials = options.quick ? 6 : 12;
  auto evaluate_arm = [&](GraphGenerator& model, bool raw,
                          AblationArm* arm) {
    Rng sample_rng(options.seed ^ 0x77);
    for (const DatasetSpec& spec : trivial) {
      Table table = GenerateDataset(spec);
      auto split = SplitTable(table, 0.25, options.seed);
      // Generate up to 3 valid skeletons (paper: 3 graphs per dataset).
      std::vector<ml::PipelineSpec> skeletons;
      for (int attempt = 0; attempt < 12 && skeletons.size() < 3;
           ++attempt) {
        TypedGraph seed_graph;
        if (raw) {
          seed_graph.node_types = {
              raw_examples.front().graph.node_types.front()};
        } else {
          seed_graph.node_types = {PipelineVocab::kDatasetType,
                                   PipelineVocab::kReadCsvType};
          seed_graph.edges = {{0, 1}};
        }
        GeneratedGraph g =
            model.Generate(seed_graph, {}, &sample_rng, 0.9);
        if (raw) {
          auto spec_or = RawGraphToSkeleton(g, raw_vocab, spec.task);
          if (spec_or.ok()) skeletons.push_back(*spec_or);
        } else {
          auto skeleton = gen::GraphToSkeleton(g, spec.task);
          if (skeleton.ok()) skeletons.push_back(skeleton->spec);
        }
      }
      arm->valid_skeletons += static_cast<int>(skeletons.size());
      if (skeletons.empty()) {
        // "the model trained using code graphs did not manage to
        // generate any valid ML pipeline"
        arm->f1[spec.name] = 0.0;
        continue;
      }
      auto evaluator = hpo::TrialEvaluator::Create(
          split.train, spec.task, 0.25, options.seed);
      hpo::TrialGuard guard(&*evaluator, hpo::TrialGuardOptions{});
      double best = 0.0;
      ml::PipelineSpec best_spec;
      for (const auto& skeleton : skeletons) {
        hpo::Budget budget(hpo_trials / static_cast<int>(skeletons.size()) +
                               1, 1e9);
        auto result = (*optimizer)->OptimizeSkeleton(skeleton, &guard,
                                                     &budget, options.seed);
        if (result.best_score > best) {
          best = result.best_score;
          best_spec = result.best_spec;
        }
      }
      double test_f1 = 0.0;
      if (!best_spec.learner.empty()) {
        auto fitted = ml::Pipeline::FitOnTable(best_spec, split.train,
                                               spec.task, options.seed);
        if (fitted.ok()) {
          auto score = fitted->ScoreTable(split.test);
          if (score.ok()) test_f1 = std::max(0.0, *score);
        }
      }
      arm->f1[spec.name] = test_f1;
    }
    double sum = 0.0;
    for (const auto& [name, f1] : arm->f1) sum += f1;
    arm->avg_f1 = arm->f1.empty() ? 0.0 : sum / arm->f1.size();
  };
  evaluate_arm(raw_model, /*raw=*/true, &raw_arm);
  evaluate_arm(filtered_model, /*raw=*/false, &filtered_arm);

  // ---- Table 3 ----
  std::printf("Table 3. Code graphs vs filtered graphs (both trained %d "
              "epochs).\n", epochs);
  std::printf("%-18s %12s %16s\n", "Dataset/Aspect", "Code Graph",
              "Filtered Graph");
  PrintRule(50);
  for (const DatasetSpec& spec : trivial) {
    std::printf("%-18s %12.2f %16.2f\n", spec.name.c_str(),
                raw_arm.f1[spec.name], filtered_arm.f1[spec.name]);
  }
  std::printf("%-18s %12.2f %16.2f\n", "Avg. F1", raw_arm.avg_f1,
              filtered_arm.avg_f1);
  std::printf("%-18s %12zu %16zu\n", "No. Nodes", raw_arm.nodes,
              filtered_arm.nodes);
  std::printf("%-18s %12zu %16zu\n", "No. Edges", raw_arm.edges,
              filtered_arm.edges);
  std::printf("%-18s %11.1fs %15.1fs\n", "Training Time",
              raw_arm.train_seconds, filtered_arm.train_seconds);
  PrintRule(50);
  std::printf("Valid skeletons generated: code-graph model %d, filtered "
              "model %d.\n",
              raw_arm.valid_skeletons, filtered_arm.valid_skeletons);
  std::printf("Training speedup from filtering: %.0fx (paper: 175 min -> "
              "2 min, ~99%% reduction).\n",
              raw_arm.train_seconds /
                  std::max(1e-9, filtered_arm.train_seconds));
  std::printf("Paper reference: code-graph model scores 0.00 everywhere; "
              "filtered model avg F1 = 0.97.\n");
  return 0;
}

}  // namespace
}  // namespace kgpip::bench

int main(int argc, char** argv) { return kgpip::bench::Run(argc, argv); }
