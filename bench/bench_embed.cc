// Similarity-index scaling benches (google-benchmark): flat exact scan
// vs IVF-SQ8 at N in {1k, 10k, 100k} rows of 32-dim clustered vectors —
// the axis the two-level index exists for. Search benches pair each
// timing with a recall_at_10 counter measured against the exact flat
// scan on the same corpus, so BENCH_embed.json records the
// speedup-at-quality claim (IVF-SQ8 at 100k: >= 5x over flat at
// recall@10 >= 0.95), and the checked-in baseline
// (bench/baselines/BENCH_embed.baseline.json) gates regressions via
// bench/compare_bench.py in run_benches.sh and CI.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "embed/sim_index.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace kgpip {
namespace {

constexpr size_t kDims = 32;
constexpr size_t kQueries = 24;

struct Corpus {
  std::vector<std::vector<double>> rows;
  std::vector<std::vector<double>> queries;
};

// Clustered corpus (sqrt(N) well-separated directions, small spread):
// the regime embedded-table corpora live in and the one the coarse
// quantizer is built for. Cached per N — the 100k corpus is ~25 MB and
// feeds four benchmarks.
const Corpus& GetCorpus(size_t n) {
  static auto* cache = new std::map<size_t, Corpus>();
  auto it = cache->find(n);
  if (it != cache->end()) return it->second;
  Rng rng(n);
  const size_t clusters = static_cast<size_t>(std::lround(std::sqrt(
      static_cast<double>(n))));
  std::vector<std::vector<double>> centers(clusters);
  for (auto& c : centers) {
    c.resize(kDims);
    for (double& x : c) x = rng.Normal() * 4.0;
  }
  Corpus corpus;
  corpus.rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> v = centers[i % clusters];
    for (double& x : v) x += rng.Normal() * 0.3;
    corpus.rows.push_back(std::move(v));
  }
  for (size_t q = 0; q < kQueries; ++q) {
    std::vector<double> v = centers[q % clusters];
    for (double& x : v) x += rng.Normal() * 0.3;
    corpus.queries.push_back(std::move(v));
  }
  return (*cache)[n] = std::move(corpus);
}

embed::SimIndex::Options IvfOptions(size_t n) {
  embed::SimIndex::Options options;
  options.num_cells = static_cast<int>(std::lround(std::sqrt(
      static_cast<double>(n))));
  options.num_probes = 8;
  options.rerank_k = 64;
  return options;
}

embed::SimIndex BuildIndex(const Corpus& corpus,
                           const embed::SimIndex::Options& options) {
  embed::SimIndex index(options);
  for (size_t i = 0; i < corpus.rows.size(); ++i) {
    index.Add("r" + std::to_string(i), corpus.rows[i]);
  }
  index.Build();
  return index;
}

// Search benches share one built index per (N, mode): the 100k IVF
// build is seconds of k-means and should not be re-paid per timing run.
const embed::SimIndex& GetIndex(size_t n, bool ivf) {
  static auto* cache = new std::map<std::pair<size_t, bool>, embed::SimIndex>();
  const std::pair<size_t, bool> key{n, ivf};
  auto it = cache->find(key);
  if (it != cache->end()) return it->second;
  const Corpus& corpus = GetCorpus(n);
  embed::SimIndex index = BuildIndex(
      corpus, ivf ? IvfOptions(n) : embed::SimIndex::Options{});
  return cache->emplace(key, std::move(index)).first->second;
}

double RecallAt10(const embed::SimIndex& approx, const embed::SimIndex& exact,
                  const std::vector<std::vector<double>>& queries) {
  size_t hit = 0;
  size_t total = 0;
  for (const auto& q : queries) {
    auto truth = exact.Search(q, 10);
    auto got = approx.Search(q, 10);
    if (!truth.ok() || !got.ok()) return 0.0;
    for (const auto& g : *got) {
      for (const auto& t : *truth) {
        if (g.key == t.key) {
          ++hit;
          break;
        }
      }
    }
    total += truth->size();
  }
  return total == 0 ? 0.0 : static_cast<double>(hit) /
                                static_cast<double>(total);
}

void BM_SimIndexSearchFlat(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Corpus& corpus = GetCorpus(n);
  const embed::SimIndex& index = GetIndex(n, false);
  size_t qi = 0;
  for (auto _ : state) {
    auto hits = index.Search(corpus.queries[qi++ % corpus.queries.size()], 10);
    benchmark::DoNotOptimize(hits.ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_SimIndexSearchFlat)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

void BM_SimIndexSearchIvfSq8(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Corpus& corpus = GetCorpus(n);
  const embed::SimIndex& index = GetIndex(n, true);
  size_t qi = 0;
  for (auto _ : state) {
    auto hits = index.Search(corpus.queries[qi++ % corpus.queries.size()], 10);
    benchmark::DoNotOptimize(hits.ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
  // The quality half of the speedup claim, next to the timing it
  // qualifies. Measured once per run against the exact flat scan.
  state.counters["recall_at_10"] =
      RecallAt10(index, GetIndex(n, false), corpus.queries);
}
BENCHMARK(BM_SimIndexSearchIvfSq8)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

void BM_SimIndexBuildFlat(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Corpus& corpus = GetCorpus(n);
  for (auto _ : state) {
    embed::SimIndex index = BuildIndex(corpus, embed::SimIndex::Options{});
    benchmark::DoNotOptimize(index.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_SimIndexBuildFlat)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_SimIndexBuildIvfSq8(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Corpus& corpus = GetCorpus(n);
  for (auto _ : state) {
    embed::SimIndex index = BuildIndex(corpus, IvfOptions(n));
    benchmark::DoNotOptimize(index.num_cells_built());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_SimIndexBuildIvfSq8)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace kgpip

int main(int argc, char** argv) {
  // Peel off --metrics-out before google-benchmark sees (and rejects)
  // it: a snapshot of the embed.index.* counters/gauges the run drove.
  std::string metrics_out;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--metrics-out=", 14) == 0) {
      metrics_out = argv[i] + 14;
      continue;
    }
    argv[kept++] = argv[i];
  }
  argc = kept;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!metrics_out.empty()) {
    kgpip::Status written =
        kgpip::obs::MetricsRegistry::Global().WriteJsonFile(metrics_out);
    if (!written.ok()) {
      std::fprintf(stderr, "WARNING: %s\n", written.ToString().c_str());
      return 1;
    }
  }
  return 0;
}
