// Serving-daemon bench: drives the soak harness against a live Server at
// 1 / 2 / 4 tenants and reports throughput, latency percentiles, and the
// cache hit rate per concurrency level. `--json-out=PATH` lands the rows
// as machine-readable JSON (run_benches.sh writes BENCH_serve.json).
#include <cstdio>
#include <fstream>
#include <vector>

#include "bench/harness.h"
#include "serve/server.h"
#include "serve/soak_harness.h"
#include "util/json.h"

namespace kgpip::bench {
namespace {

int Run(int argc, char** argv) {
  HarnessOptions options = ParseOptions(argc, argv);

  // Small but real model: the serve path exercises embedding, SimIndex,
  // generation, and HPO, so the bench trains the same way a deploy would.
  BenchmarkRegistry registry;
  std::vector<DatasetSpec> chosen;
  for (const DatasetSpec& spec : registry.TrainingSpecs()) {
    if (spec.task == TaskType::kRegression) continue;
    chosen.push_back(spec);
    if (chosen.size() >= (options.quick ? 8u : 12u)) break;
  }
  core::KgpipConfig config;
  config.top_k = 3;
  config.generator_epochs = options.quick ? 5 : 10;
  core::Kgpip model(config);
  codegraph::CorpusOptions corpus;
  corpus.pipelines_per_dataset = 6;
  Status trained = model.Train(chosen, corpus, options.seed);
  if (!trained.ok()) {
    std::fprintf(stderr, "KGpip training failed: %s\n",
                 trained.ToString().c_str());
    return 1;
  }

  const double duration = options.quick ? 2.0 : 5.0;
  Json rows = Json::Array();
  std::printf("%-8s %10s %10s %10s %10s %10s\n", "tenants", "ok/s", "p50_ms",
              "p99_ms", "hit_rate", "shed");
  for (int tenants : {1, 2, 4}) {
    serve::ServeOptions serve_options;
    serve_options.num_workers = tenants;  // scale workers with offered load
    serve_options.default_deadline_seconds = 10.0;
    serve_options.max_trials = 4;
    serve::Server server(&model, serve_options);
    Status started = server.Start();
    if (!started.ok()) {
      std::fprintf(stderr, "server start failed: %s\n",
                   started.ToString().c_str());
      return 1;
    }

    serve::SoakOptions soak;
    soak.num_tenants = tenants;
    soak.duration_seconds = duration;
    soak.num_datasets = 3;
    soak.request_deadline_seconds = 10.0;
    soak.max_trials = 4;
    soak.seed = options.seed + static_cast<uint64_t>(tenants);
    serve::SoakHarness harness(&server, soak);
    Result<serve::SoakSummary> summary = harness.Run();
    server.Stop();
    if (!summary.ok()) {
      std::fprintf(stderr, "soak at %d tenants failed: %s\n", tenants,
                   summary.status().ToString().c_str());
      return 1;
    }

    const double throughput =
        static_cast<double>(summary->ok) / duration;
    const double hit_rate =
        summary->ok > 0 ? static_cast<double>(summary->cache_hits) /
                              static_cast<double>(summary->ok)
                        : 0.0;
    std::printf("%-8d %10.1f %10.2f %10.2f %10.3f %10lld\n", tenants,
                throughput, summary->p50_latency_seconds * 1e3,
                summary->p99_latency_seconds * 1e3, hit_rate,
                static_cast<long long>(summary->shed));

    Json row = summary->ToJson();
    row.Set("tenants", tenants);
    row.Set("duration_seconds", duration);
    row.Set("throughput_ok_per_second", throughput);
    row.Set("cache_hit_rate", hit_rate);
    rows.Append(std::move(row));
  }

  if (!options.json_out.empty()) {
    Json doc = Json::Object();
    doc.Set("bench", std::string("serve"));
    doc.Set("rows", std::move(rows));
    std::ofstream out(options.json_out);
    if (out) {
      out << doc.Dump(2) << "\n";
      std::fprintf(stderr, "wrote %s\n", options.json_out.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", options.json_out.c_str());
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace kgpip::bench

int main(int argc, char** argv) { return kgpip::bench::Run(argc, argv); }
