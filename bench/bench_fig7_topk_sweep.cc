// Regenerates Figure 7 (+ the §4.5.2 MRR measurement): KGpipFLAML and
// KGpipAutoSklearn as the number of predicted pipeline graphs K varies
// over {3, 5, 7}, under the half ("30 minute") budget, with paired
// t-tests against the host optimizers.
#include <cmath>
#include <cstdio>

#include "bench/harness.h"
#include "util/stats.h"

namespace kgpip::bench {
namespace {

int Run(int argc, char** argv) {
  HarnessOptions options = ParseOptions(argc, argv);
  EvalHarness harness(options);
  Status trained = harness.TrainKgpip();
  if (!trained.ok()) {
    std::fprintf(stderr, "KGpip training failed: %s\n",
                 trained.ToString().c_str());
    return 1;
  }

  // A balanced subset keeps the sweep affordable (3 K-values x 2
  // variants x runs); the paper sweeps the same benchmarks at 30 min.
  std::vector<DatasetSpec> specs;
  {
    int binary = 0, multi = 0, regression = 0;
    for (const DatasetSpec& spec : harness.registry().eval_specs()) {
      int limit = options.quick ? 3 : 8;
      if (spec.task == TaskType::kBinaryClassification &&
          binary++ < limit) {
        specs.push_back(spec);
      } else if (spec.task == TaskType::kMultiClassification &&
                 multi++ < limit) {
        specs.push_back(spec);
      } else if (spec.task == TaskType::kRegression &&
                 regression++ < limit / 2) {
        specs.push_back(spec);
      }
    }
  }
  const int trials = options.half_trials * 2;  // 30-minute analog

  // Baselines once.
  std::vector<const automl::AutoMlSystem*> baseline_systems = {
      &harness.flaml(), &harness.ask()};
  std::vector<SystemScores> baselines =
      harness.RunComparison(specs, baseline_systems, trials);
  std::vector<double> flaml_means = PerDatasetMeans(baselines[0], specs);
  std::vector<double> ask_means = PerDatasetMeans(baselines[1], specs);

  std::printf("Figure 7 data. KGpip with K in {3, 5, 7} predicted graphs "
              "(budget %d trials, %zu datasets, %d run(s)).\n\n",
              trials, specs.size(), options.runs);
  std::printf("%-22s %8s %8s %14s %14s\n", "System", "K", "Mean",
              "p vs FLAML", "p vs ASK");
  PrintRule(72);

  std::vector<int> all_ranks;
  for (int k : {3, 5, 7}) {
    harness.kgpip_flaml().mutable_config().top_k = k;
    harness.kgpip_ask().mutable_config().top_k = k;
    std::vector<const automl::AutoMlSystem*> kgpip_systems = {
        &harness.kgpip_flaml(), &harness.kgpip_ask()};
    std::vector<SystemScores> kgpip_scores =
        harness.RunComparison(specs, kgpip_systems, trials);
    for (size_t v = 0; v < kgpip_scores.size(); ++v) {
      std::vector<double> means = PerDatasetMeans(kgpip_scores[v], specs);
      TTestResult vs_flaml = PairedTTest(means, flaml_means);
      TTestResult vs_ask = PairedTTest(means, ask_means);
      std::printf("%-22s %8d %8.3f %14.4f %14.4f\n",
                  kgpip_scores[v].system.c_str(), k, Mean(means),
                  vs_flaml.p_value, vs_ask.p_value);
      // Collect best-skeleton ranks for the MRR measurement.
      for (const auto& [name, ranks] : kgpip_scores[v].skeleton_ranks) {
        for (int rank : ranks) {
          if (rank > 0) all_ranks.push_back(rank);
        }
      }
    }
  }
  PrintRule(72);
  std::printf("%-22s %8s %8.3f\n", "FLAML", "-", Mean(flaml_means));
  std::printf("%-22s %8s %8.3f\n", "Auto-Sklearn", "-", Mean(ask_means));

  double mrr = MeanReciprocalRank(all_ranks);
  std::printf("\nMean Reciprocal Rank of the winning skeleton in the "
              "generator's predicted order: %.2f\n", mrr);
  std::printf("(paper: MRR = 0.71 — the best pipeline is typically near "
              "the top of the ranked list)\n");
  std::printf("\nPaper reference: KGpip significantly beats FLAML at K=5 "
              "(p=0.03) and K=7 (p=0.01); K=3 is\nweaker (p=0.06); vs "
              "Auto-Sklearn all K are similar-or-better.\n");
  // Restore default K.
  harness.kgpip_flaml().mutable_config().top_k = 3;
  harness.kgpip_ask().mutable_config().top_k = 3;
  return 0;
}

}  // namespace
}  // namespace kgpip::bench

int main(int argc, char** argv) { return kgpip::bench::Run(argc, argv); }
