#ifndef KGPIP_BENCH_HARNESS_H_
#define KGPIP_BENCH_HARNESS_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "automl/al_system.h"
#include "automl/autosklearn_system.h"
#include "automl/flaml_system.h"
#include "core/kgpip.h"
#include "data/benchmark_registry.h"

namespace kgpip::bench {

/// Options shared by the experiment binaries. `--quick` shrinks every
/// knob for smoke runs; the defaults regenerate the paper-shaped tables.
struct HarnessOptions {
  int runs = 3;              // paper: averages over 3 runs
  int trials = 45;           // budget stand-in for the 1 h wall budget
  int half_trials = 22;      // stand-in for the 30 min budget (Fig. 7)
  int generator_epochs = 25;
  int corpus_pipelines_per_dataset = 10;
  int corpus_noise_per_dataset = 6;
  uint64_t seed = 2022;
  bool quick = false;
  /// When non-empty, the binary writes the machine-readable comparison
  /// (aggregate rows + per-dataset scores) to this path on exit.
  std::string json_out;
  /// When non-empty, the binary snapshots the global MetricsRegistry to
  /// this path on exit (every obs counter/gauge/histogram).
  std::string metrics_out;
};

/// Parses --quick, --runs=N, --trials=N, --seed=N, --json-out=PATH,
/// --metrics-out=PATH.
HarnessOptions ParseOptions(int argc, char** argv);

/// Scores of one system over datasets and runs (NaN marks a failed fit,
/// which happens for AL by design).
struct SystemScores {
  std::string system;
  std::map<std::string, std::vector<double>> scores;
  std::map<std::string, std::vector<int>> skeleton_ranks;
  std::map<std::string, std::vector<std::vector<std::string>>>
      learner_sequences;
  std::map<std::string, std::vector<std::vector<std::string>>>
      predicted_learners;  // skeleton learners in rank order (KGpip)
  std::map<std::string, std::vector<std::string>> best_learners;
  /// Robustness accounting aggregated over every successful run's
  /// RunReport (see hpo::RunReport): how often the system degraded and
  /// how much trial-level failure it absorbed along the way.
  int trial_failures = 0;
  int trial_retries = 0;
  int quarantined_scores = 0;
  int circuit_breaker_trips = 0;
  int degraded_runs = 0;  // runs that used a fallback / last-resort rung
};

/// Trains both KGpip variants once and evaluates systems over dataset
/// specs with the shared protocol: 75/25 train/test split per run,
/// Fit(train) under the trial budget, macro-F1 / R² on the test split.
class EvalHarness {
 public:
  explicit EvalHarness(HarnessOptions options);

  /// Mines the corpus and trains the shared KGpip artifacts (one
  /// generator reused by both variants).
  Status TrainKgpip();

  /// Evaluates one system on one dataset spec for `run_index`.
  /// Returns NaN on system failure (AL's brittleness).
  double EvaluateOnce(const automl::AutoMlSystem& system,
                      const DatasetSpec& spec, int run_index, int trials,
                      automl::AutoMlResult* result_out = nullptr);

  /// Full protocol over `specs` for the given systems.
  std::vector<SystemScores> RunComparison(
      const std::vector<DatasetSpec>& specs,
      const std::vector<const automl::AutoMlSystem*>& systems, int trials);

  const HarnessOptions& options() const { return options_; }
  BenchmarkRegistry& registry() { return registry_; }
  core::Kgpip& kgpip_flaml() { return *kgpip_flaml_; }
  core::Kgpip& kgpip_ask() { return *kgpip_ask_; }
  const automl::FlamlSystem& flaml() const { return flaml_; }
  const automl::AutoSklearnSystem& ask() const { return ask_; }
  const automl::AlSystem& al() const { return al_; }

 private:
  HarnessOptions options_;
  BenchmarkRegistry registry_;
  automl::FlamlSystem flaml_;
  automl::AutoSklearnSystem ask_;
  automl::AlSystem al_;
  std::unique_ptr<core::Kgpip> kgpip_flaml_;
  std::unique_ptr<core::Kgpip> kgpip_ask_;
};

/// Mean over the non-NaN entries (empty -> NaN).
double MeanScore(const std::vector<double>& scores);

/// Per-task aggregate rows + paired t-tests for Table 2-style output.
struct TaskAggregate {
  double binary_mean = 0.0, binary_std = 0.0;
  double multi_mean = 0.0, multi_std = 0.0;
  double regression_mean = 0.0, regression_std = 0.0;
};
TaskAggregate AggregateByTask(const SystemScores& scores,
                              const std::vector<DatasetSpec>& specs);

/// Mean per-dataset score vectors (dataset order of `specs`) for paired
/// tests; NaN-failing datasets score 0 (a failed system scores nothing).
std::vector<double> PerDatasetMeans(const SystemScores& scores,
                                    const std::vector<DatasetSpec>& specs);

/// Fixed-width table-row printing helper.
void PrintRule(int width);

/// Machine-readable comparison for `--json-out`: run options, then one
/// entry per system with per-task aggregates, per-dataset mean + raw
/// scores, and the robustness counters.
Json ComparisonToJson(const std::vector<DatasetSpec>& specs,
                      const std::vector<SystemScores>& all,
                      const HarnessOptions& options);

/// Honors --json-out (with `comparison`, when non-null) and
/// --metrics-out; failures are logged, not fatal, so a bad path never
/// loses a finished bench run's stdout tables.
void WriteHarnessOutputs(const HarnessOptions& options,
                         const Json* comparison);

}  // namespace kgpip::bench

#endif  // KGPIP_BENCH_HARNESS_H_
