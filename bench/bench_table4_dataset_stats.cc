// Regenerates Table 4 of the paper: per-dataset statistics (rows, cols,
// numeric/categorical/text features, classes, size, source, papers), plus
// the synthetic generation shape this reproduction actually runs.
#include <cstdio>

#include "bench/harness.h"

namespace kgpip::bench {
namespace {

int Run() {
  BenchmarkRegistry registry;
  std::printf(
      "Table 4. Statistics of all benchmark datasets "
      "(paper-reported scale).\n");
  std::printf("%3s %-40s %9s %6s %6s %5s %5s %8s %8s %-7s %-10s\n", "#",
              "Dataset", "Rows", "Cols", "Num", "Cat", "Text", "Classes",
              "SizeMB", "Source", "Papers");
  PrintRule(118);
  int index = 1;
  for (const DatasetSpec& spec : registry.eval_specs()) {
    std::string papers;
    if (spec.used_by_flaml) papers += "FLAML";
    if (spec.used_by_al) papers += papers.empty() ? "AL" : ",AL";
    char classes[16];
    if (spec.task == TaskType::kRegression) {
      std::snprintf(classes, sizeof(classes), "-");
    } else {
      std::snprintf(classes, sizeof(classes), "%d", spec.paper_classes);
    }
    std::printf("%3d %-40s %9lld %6d %6d %5d %5d %8s %8.1f %-7s %-10s\n",
                index++, spec.name.c_str(),
                static_cast<long long>(spec.paper_rows), spec.paper_cols,
                spec.paper_num, spec.paper_cat, spec.paper_text, classes,
                spec.paper_size_mb, spec.source.c_str(), papers.c_str());
  }
  PrintRule(118);
  std::printf(
      "\nReproduction scale: each dataset is regenerated synthetically "
      "with matching column-type mix,\nconcept family chosen to match its "
      "published difficulty profile, and rows scaled for one core:\n\n");
  std::printf("%3s %-40s %6s %5s %5s %5s %8s %-13s %-10s %6s\n", "#",
              "Dataset", "Rows", "Num", "Cat", "Text", "Classes",
              "Family", "Domain", "Noise");
  PrintRule(112);
  index = 1;
  for (const DatasetSpec& spec : registry.eval_specs()) {
    std::printf("%3d %-40s %6d %5d %5d %5d %8d %-13s %-10s %6.2f\n",
                index++, spec.name.c_str(), spec.rows, spec.num_numeric,
                spec.num_categorical, spec.num_text, spec.num_classes,
                ConceptFamilyName(spec.family), DomainName(spec.domain),
                spec.label_noise);
  }
  return 0;
}

}  // namespace
}  // namespace kgpip::bench

int main() { return kgpip::bench::Run(); }
