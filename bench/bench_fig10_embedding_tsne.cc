// Regenerates Figure 10: the t-SNE map of KGpip's content-based dataset
// embeddings for 38 Kaggle datasets labeled by domain. Prints the 2-D
// coordinates (plottable as-is), an ASCII scatter, and quantifies the
// clustering with a silhouette score plus domain-retrieval precision.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "bench/harness.h"
#include "embed/embedder.h"
#include "embed/sim_index.h"
#include "embed/tsne.h"
#include "util/stats.h"

namespace kgpip::bench {
namespace {

int Run(int argc, char** argv) {
  HarnessOptions options = ParseOptions(argc, argv);
  BenchmarkRegistry registry;
  auto specs = registry.Kaggle38Specs();

  embed::TableEmbedder embedder;
  std::vector<std::vector<double>> embeddings;
  std::vector<int> labels;
  std::map<std::string, int> domain_ids;
  for (const DatasetSpec& spec : specs) {
    embeddings.push_back(embedder.Embed(GenerateDataset(spec)));
    auto [it, unused] = domain_ids.emplace(
        DomainName(spec.domain), static_cast<int>(domain_ids.size()));
    labels.push_back(it->second);
  }

  embed::TsneOptions tsne_options;
  tsne_options.perplexity = 6.0;
  tsne_options.iterations = options.quick ? 150 : 500;
  tsne_options.seed = options.seed;
  auto map = embed::Tsne2D(embeddings, tsne_options);

  std::printf("Figure 10 data. t-SNE of KGpip dataset embeddings, 38 "
              "Kaggle datasets by domain.\n\n");
  std::printf("%-32s %-12s %9s %9s\n", "Dataset", "Domain", "x", "y");
  PrintRule(66);
  for (size_t i = 0; i < specs.size(); ++i) {
    std::printf("%-32s %-12s %9.2f %9.2f\n", specs[i].name.c_str(),
                DomainName(specs[i].domain), map[i].first, map[i].second);
  }

  // ASCII scatter (domains as letters).
  double min_x = 1e18, max_x = -1e18, min_y = 1e18, max_y = -1e18;
  for (const auto& [x, y] : map) {
    min_x = std::min(min_x, x);
    max_x = std::max(max_x, x);
    min_y = std::min(min_y, y);
    max_y = std::max(max_y, y);
  }
  const int kW = 72, kH = 24;
  std::vector<std::string> canvas(kH, std::string(kW, ' '));
  for (size_t i = 0; i < map.size(); ++i) {
    int cx = static_cast<int>((map[i].first - min_x) /
                              std::max(1e-9, max_x - min_x) * (kW - 1));
    int cy = static_cast<int>((map[i].second - min_y) /
                              std::max(1e-9, max_y - min_y) * (kH - 1));
    canvas[kH - 1 - cy][cx] = static_cast<char>('A' + labels[i]);
  }
  std::printf("\nASCII scatter (letter = domain):\n");
  for (const std::string& row : canvas) std::printf("|%s|\n", row.c_str());
  std::printf("Legend:");
  for (const auto& [name, id] : domain_ids) {
    std::printf("  %c=%s", 'A' + id, name.c_str());
  }
  std::printf("\n");

  // Quantitative clustering quality.
  std::vector<std::vector<double>> mapped;
  for (const auto& [x, y] : map) mapped.push_back({x, y});
  double sil_2d = SilhouetteScore(mapped, labels);
  double sil_hd = SilhouetteScore(embeddings, labels);
  std::printf("\nSilhouette by domain: %.2f (t-SNE 2-D), %.2f "
              "(original %zu-D)\n",
              sil_2d, sil_hd, embed::TableEmbedder::kDims);

  // Retrieval check: nearest neighbour shares the domain how often?
  embed::SimIndex index;
  for (size_t i = 0; i < specs.size(); ++i) {
    index.Add(std::to_string(i), embeddings[i]);
  }
  index.Build();
  int hits = 0;
  for (size_t i = 0; i < specs.size(); ++i) {
    auto found = index.Search(embeddings[i], 2);
    if (!found.ok() || found->size() < 2) continue;
    size_t j = static_cast<size_t>(std::stoul((*found)[1].key));
    if (labels[j] == labels[i]) ++hits;
  }
  std::printf("Nearest-neighbour domain precision: %d/%zu (%.0f%%)\n",
              hits, specs.size(), 100.0 * hits / specs.size());
  std::printf("\nPaper reference: datasets from the same domains cluster "
              "together despite never being seen\nwhen learning the "
              "embeddings — no hand-crafted meta-features required.\n");
  return 0;
}

}  // namespace
}  // namespace kgpip::bench

int main(int argc, char** argv) { return kgpip::bench::Run(argc, argv); }
