// Regenerates Figure 6: all systems, including AL, on the datasets from
// AL's evaluation. Like the paper, AL fails on a chunk of them ("it
// failed on many of the datasets during the fitting process"), so the
// comparison table is restricted to the datasets where AL worked, with
// the failure list reported separately.
#include <cmath>
#include <cstdio>

#include "bench/harness.h"
#include "util/stats.h"

namespace kgpip::bench {
namespace {

int Run(int argc, char** argv) {
  HarnessOptions options = ParseOptions(argc, argv);
  EvalHarness harness(options);
  Status trained = harness.TrainKgpip();
  if (!trained.ok()) {
    std::fprintf(stderr, "KGpip training failed: %s\n",
                 trained.ToString().c_str());
    return 1;
  }

  std::vector<DatasetSpec> specs = harness.registry().AlSubset();
  std::vector<const automl::AutoMlSystem*> systems = {
      &harness.al(), &harness.flaml(), &harness.kgpip_flaml(),
      &harness.ask(), &harness.kgpip_ask()};
  std::vector<SystemScores> all =
      harness.RunComparison(specs, systems, options.trials);

  // Split datasets into AL-worked / AL-failed.
  std::vector<DatasetSpec> worked, failed;
  for (const DatasetSpec& spec : specs) {
    double al_mean = MeanScore(all[0].scores.at(spec.name));
    (std::isnan(al_mean) ? failed : worked).push_back(spec);
  }

  std::printf("Figure 6 data. AL evaluation subset: %zu datasets; AL "
              "worked on %zu, failed on %zu.\n",
              specs.size(), worked.size(), failed.size());
  std::printf("\nAL failures (brittleness of dynamic-analysis transfer):\n");
  for (const DatasetSpec& spec : failed) {
    std::printf("  - %s (%s, %s)\n", spec.name.c_str(),
                TaskTypeName(spec.task), spec.source.c_str());
  }

  std::printf("\nScores on the datasets where AL worked:\n");
  std::printf("%-40s %6s %8s %11s %12s %16s\n", "Dataset", "AL", "FLAML",
              "KGpipFLAML", "AutoSklearn", "KGpipAutoSkl");
  PrintRule(100);
  for (const DatasetSpec& spec : worked) {
    std::printf("%-40s", spec.name.c_str());
    std::printf(" %6.2f", MeanScore(all[0].scores.at(spec.name)));
    std::printf(" %8.2f", MeanScore(all[1].scores.at(spec.name)));
    std::printf(" %11.2f", MeanScore(all[2].scores.at(spec.name)));
    std::printf(" %12.2f", MeanScore(all[3].scores.at(spec.name)));
    std::printf(" %16.2f\n", MeanScore(all[4].scores.at(spec.name)));
  }
  PrintRule(100);

  // Per-task means on the worked subset (the numbers quoted in §4.4).
  std::printf("\nMean scores on the AL-worked subset, by task:\n");
  std::printf("%-18s %8s %12s %12s\n", "System", "Binary", "Multi-class",
              "Regression");
  for (const SystemScores& scores : all) {
    TaskAggregate agg = AggregateByTask(scores, worked);
    std::printf("%-18s %8.2f %12.2f %12.2f\n", scores.system.c_str(),
                agg.binary_mean, agg.multi_mean, agg.regression_mean);
  }
  std::printf(
      "\nPaper reference (binary / multi-class F1): AL 0.36/0.36, FLAML "
      "0.74/0.75,\nAuto-Sklearn 0.73/0.68, KGpipFLAML 0.79/0.79, "
      "KGpipAutoSklearn 0.79/0.74 —\nAL trails every system; KGpip "
      "variants lead.\n");
  return 0;
}

}  // namespace
}  // namespace kgpip::bench

int main(int argc, char** argv) { return kgpip::bench::Run(argc, argv); }
