#!/usr/bin/env python3
"""Latency regression gate over google-benchmark JSON reports.

Usage: compare_bench.py BASELINE.json FRESH.json [--threshold 0.15]

Compares per-benchmark timings against a checked-in baseline and fails
(exit 1) when any benchmark regressed more than `threshold`, or when a
baseline benchmark is missing from the fresh report (a silent coverage
loss would otherwise read as "no regression").

A benchmark only counts as regressed when BOTH clocks exceed the
threshold: real_time is what users feel (and the only clock that sees
work done on pool worker threads), but it absorbs co-tenant noise on a
shared CI host; cpu_time is immune to that noise. A genuine slowdown in
the measured code moves both; noise moves only real_time.

A benchmark can appear several times in one report (e.g. the threads=1 /
threads=<hw> pairs collapse to one name on a single-core host); each
side is reduced to its best (minimum) time per clock first, which also
damps one noisy iteration. New benchmarks with no baseline entry are
reported but never fail the gate — they start gating once the baseline
is re-recorded.

The baseline is refreshed deliberately (not on every run) by copying a
fresh report over bench/baselines/BENCH_gen.baseline.json in the same
change that justifies the shift.
"""

import argparse
import json
import sys

_TO_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def best_times_ns(path):
    """{name: (min real_time ns, min cpu_time ns)} over the report."""
    with open(path) as f:
        report = json.load(f)
    best = {}
    for bench in report.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        name = bench["name"]
        unit = _TO_NS[bench.get("time_unit", "ns")]
        real = float(bench["real_time"]) * unit
        cpu = float(bench.get("cpu_time", bench["real_time"])) * unit
        if name in best:
            real = min(real, best[name][0])
            cpu = min(cpu, best[name][1])
        best[name] = (real, cpu)
    return best


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="allowed slowdown fraction (default 0.15)")
    args = parser.parse_args()

    baseline = best_times_ns(args.baseline)
    fresh = best_times_ns(args.fresh)
    if not baseline:
        print(f"regression gate: no benchmarks in {args.baseline}")
        return 1

    limit = 1.0 + args.threshold
    failures = []
    width = max(len(n) for n in baseline) + 2
    print(f"regression gate: threshold +{args.threshold:.0%} over "
          f"{args.baseline} (real AND cpu must regress)")
    for name in sorted(baseline):
        base_real, base_cpu = baseline[name]
        if name not in fresh:
            failures.append(f"{name}: missing from fresh report")
            print(f"  {name:<{width}} MISSING (baseline "
                  f"{base_real / 1e6:.3f} ms)")
            continue
        fresh_real, fresh_cpu = fresh[name]
        real_ratio = fresh_real / base_real
        cpu_ratio = fresh_cpu / base_cpu
        verdict = "ok"
        if real_ratio > limit and cpu_ratio > limit:
            verdict = "REGRESSION"
            failures.append(
                f"{name}: real {base_real / 1e6:.3f} -> "
                f"{fresh_real / 1e6:.3f} ms ({real_ratio:.2f}x), cpu "
                f"{base_cpu / 1e6:.3f} -> {fresh_cpu / 1e6:.3f} ms "
                f"({cpu_ratio:.2f}x)")
        print(f"  {name:<{width}} real {base_real / 1e6:9.3f} -> "
              f"{fresh_real / 1e6:9.3f} ms ({real_ratio:5.2f}x)  cpu "
              f"{base_cpu / 1e6:9.3f} -> {fresh_cpu / 1e6:9.3f} ms "
              f"({cpu_ratio:5.2f}x)  {verdict}")
    for name in sorted(set(fresh) - set(baseline)):
        print(f"  {name:<{width}} new: real {fresh[name][0] / 1e6:.3f} ms "
              f"(not gated)")

    if failures:
        print("regression gate FAILED:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print("regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
