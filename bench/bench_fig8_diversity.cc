// Regenerates Figure 8 and the §4.5.3 diversity analysis:
//   - learners/transformers KGpip selects in the FIRST position,
//   - selections across ALL positions,
//   - learners of the TOP (winning) model,
//   - cross-run correlations of the predicted learner lists for the same
//     dataset (paper: 0.60-0.64 — diverse but not random).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "bench/harness.h"
#include "graph4ml/vocab.h"
#include "util/stats.h"

namespace kgpip::bench {
namespace {

void PrintHistogram(const char* title,
                    const std::map<std::string, int>& counts) {
  std::printf("\n%s\n", title);
  std::vector<std::pair<int, std::string>> ordered;
  int total = 0;
  for (const auto& [name, count] : counts) {
    ordered.emplace_back(count, name);
    total += count;
  }
  std::sort(ordered.rbegin(), ordered.rend());
  for (const auto& [count, name] : ordered) {
    int bars = total > 0 ? count * 50 / total : 0;
    std::printf("  %-22s %5d  ", name.c_str(), count);
    for (int i = 0; i < bars; ++i) std::putchar('#');
    std::putchar('\n');
  }
}

int Run(int argc, char** argv) {
  HarnessOptions options = ParseOptions(argc, argv);
  EvalHarness harness(options);
  Status trained = harness.TrainKgpip();
  if (!trained.ok()) {
    std::fprintf(stderr, "KGpip training failed: %s\n",
                 trained.ToString().c_str());
    return 1;
  }

  // Classification evaluation datasets (Figure 8 reports learner picks).
  std::vector<DatasetSpec> specs;
  for (const DatasetSpec& spec : harness.registry().eval_specs()) {
    if (spec.task == TaskType::kRegression) continue;
    specs.push_back(spec);
    if (options.quick && specs.size() >= 10) break;
  }

  std::map<std::string, int> first_position;
  std::map<std::string, int> all_positions;
  std::map<std::string, int> top_model;
  // Per dataset: the predicted learner list of each run.
  std::map<std::string, std::vector<std::vector<std::string>>> run_lists;

  const int kRuns = 3;
  for (const DatasetSpec& spec : specs) {
    Table table = GenerateDataset(spec);
    auto split = SplitTable(table, 0.25, options.seed);
    for (int run = 0; run < kRuns; ++run) {
      auto skeletons = harness.kgpip_flaml().PredictSkeletons(
          split.train, spec.task,
          options.seed + static_cast<uint64_t>(run) * 7717);
      if (!skeletons.ok()) continue;
      std::vector<std::string> learners;
      for (size_t i = 0; i < skeletons->size(); ++i) {
        const auto& s = (*skeletons)[i];
        if (i == 0) {
          ++first_position[s.spec.learner];
          for (const std::string& p : s.spec.preprocessors) {
            ++first_position[p];
          }
        }
        ++all_positions[s.spec.learner];
        for (const std::string& p : s.spec.preprocessors) {
          ++all_positions[p];
        }
        learners.push_back(s.spec.learner);
      }
      run_lists[spec.name].push_back(std::move(learners));
    }
    // Top model: run one budgeted fit and record the winning learner.
    automl::AutoMlResult result;
    double score = harness.EvaluateOnce(harness.kgpip_flaml(), spec, 0,
                                        options.half_trials, &result);
    if (!std::isnan(score)) ++top_model[result.best_spec.learner];
  }

  PrintHistogram(
      "Figure 8a. Learner/transformer chosen FIRST by KGpip:",
      first_position);
  PrintHistogram(
      "Figure 8b. Learners/transformers selected across ALL positions:",
      all_positions);
  PrintHistogram("Figure 8c. Learner of the TOP (winning) model:",
                 top_model);

  // ---- Cross-run correlation of learner lists (§4.5.3). ----
  // Encode learners as vocabulary ids and correlate the common prefix of
  // each pair of runs, averaged over datasets.
  const auto& vocab = graph4ml::PipelineVocab::Get();
  auto encode = [&](const std::vector<std::string>& learners) {
    std::vector<double> ids;
    for (const std::string& learner : learners) {
      ids.push_back(static_cast<double>(vocab.TypeOf(learner)));
    }
    return ids;
  };
  std::vector<double> pair_correlations[3];  // (1,2), (1,3), (2,3)
  for (const auto& [name, lists] : run_lists) {
    if (lists.size() < 3) continue;
    const std::pair<int, int> pairs[3] = {{0, 1}, {0, 2}, {1, 2}};
    for (int p = 0; p < 3; ++p) {
      std::vector<double> a = encode(lists[pairs[p].first]);
      std::vector<double> b = encode(lists[pairs[p].second]);
      size_t n = std::min(a.size(), b.size());
      if (n < 2) continue;
      a.resize(n);
      b.resize(n);
      pair_correlations[p].push_back(SpearmanCorrelation(a, b));
    }
  }
  std::printf("\nCross-run correlations of predicted learner lists "
              "(same dataset, runs 1/2/3):\n");
  const char* pair_names[3] = {"runs 1-2", "runs 1-3", "runs 2-3"};
  double lo = 1.0, hi = -1.0;
  for (int p = 0; p < 3; ++p) {
    double mean = Mean(pair_correlations[p]);
    lo = std::min(lo, mean);
    hi = std::max(hi, mean);
    std::printf("  %-10s mean correlation %.2f over %zu datasets\n",
                pair_names[p], mean, pair_correlations[p].size());
  }
  std::printf("Range: %.2f - %.2f (paper: 0.60 - 0.64; imperfect "
              "correlation = genuine diversity).\n", lo, hi);
  std::printf("\nPaper reference (Fig. 8): first picks dominated by "
              "xgboost / gradient boosting, broad coverage\nacross all "
              "positions, and wide learner variety among top models.\n");
  return 0;
}

}  // namespace
}  // namespace kgpip::bench

int main(int argc, char** argv) { return kgpip::bench::Run(argc, argv); }
