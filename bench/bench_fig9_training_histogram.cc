// Regenerates Figure 9: the learners and transformers present at least
// 10 times in the mined training pipelines, plus the corpus-mining
// statistics (scripts analyzed vs kept — the paper's 11.7K -> 2,046).
#include <algorithm>
#include <cstdio>

#include "bench/harness.h"
#include "codegraph/corpus.h"
#include "graph4ml/graph4ml.h"

namespace kgpip::bench {
namespace {

int Run(int argc, char** argv) {
  HarnessOptions options = ParseOptions(argc, argv);
  BenchmarkRegistry registry;
  codegraph::CorpusOptions corpus_options;
  corpus_options.pipelines_per_dataset =
      options.corpus_pipelines_per_dataset;
  corpus_options.noise_scripts_per_dataset =
      options.corpus_noise_per_dataset;
  corpus_options.seed = options.seed;
  codegraph::CorpusGenerator corpus(corpus_options);
  graph4ml::Graph4Ml store;
  Status built = store.Build(corpus.GenerateCorpus(registry.TrainingSpecs()));
  if (!built.ok()) {
    std::fprintf(stderr, "corpus build failed: %s\n",
                 built.ToString().c_str());
    return 1;
  }

  std::printf("Corpus mining statistics:\n");
  std::printf("  scripts statically analyzed: %zu\n",
              store.scripts_analyzed());
  std::printf("  ML pipelines kept:           %zu (%.0f%%)\n",
              store.scripts_kept(),
              100.0 * store.scripts_kept() /
                  std::max<size_t>(1, store.scripts_analyzed()));
  std::printf("  datasets covered:            %zu\n", store.NumDatasets());
  std::printf("  graph reduction:             %.1f%% nodes, %.1f%% edges\n",
              100.0 * store.filter_stats().NodeReduction(),
              100.0 * store.filter_stats().EdgeReduction());
  std::printf("  (paper: 11.7K scripts -> 2,046 pipelines for 104 "
              "datasets; >= 96%% reduction)\n");

  auto histogram = store.OpHistogram();
  std::vector<std::pair<size_t, std::string>> ordered;
  for (const auto& [name, count] : histogram) {
    ordered.emplace_back(count, name);
  }
  std::sort(ordered.rbegin(), ordered.rend());

  std::printf("\nFigure 9. Learners and transformers present >= 10 times "
              "in the training pipelines:\n");
  std::printf("%-22s %6s\n", "Operator", "Count");
  PrintRule(40);
  size_t shown = 0;
  for (const auto& [count, name] : ordered) {
    if (count < 10) continue;
    std::printf("%-22s %6zu  ", name.c_str(), count);
    size_t bars = count * 40 / ordered.front().first;
    for (size_t i = 0; i < bars; ++i) std::putchar('#');
    std::putchar('\n');
    ++shown;
  }
  PrintRule(40);
  std::printf("%zu operators above the 10-occurrence threshold.\n", shown);
  return 0;
}

}  // namespace
}  // namespace kgpip::bench

int main(int argc, char** argv) { return kgpip::bench::Run(argc, argv); }
