#ifndef KGPIP_ML_KNN_H_
#define KGPIP_ML_KNN_H_

#include <vector>

#include "ml/learner.h"

namespace kgpip::ml {

/// Brute-force k-nearest-neighbours with internal standardization.
/// Majority vote for classification, neighbour mean for regression.
class KnnLearner : public Learner {
 public:
  KnnLearner(TaskType task, const HyperParams& params, uint64_t seed);

  Status Fit(const LabeledData& data) override;
  std::vector<double> Predict(const FeatureMatrix& x) const override;
  std::string name() const override { return "knn"; }

 private:
  TaskType task_;
  int k_;
  bool distance_weighted_;
  int num_classes_ = 0;
  FeatureMatrix train_x_;  // standardized
  std::vector<double> train_y_;
  std::vector<double> feature_mean_;
  std::vector<double> feature_std_;
  bool fitted_ = false;
};

/// Gaussian naive Bayes (classification only).
class GaussianNbLearner : public Learner {
 public:
  GaussianNbLearner(TaskType task, const HyperParams& params, uint64_t seed);

  Status Fit(const LabeledData& data) override;
  std::vector<double> Predict(const FeatureMatrix& x) const override;
  std::string name() const override { return "gaussian_nb"; }

 private:
  int num_classes_ = 0;
  double var_smoothing_;
  std::vector<double> priors_;          // per class
  std::vector<double> means_;           // class * features
  std::vector<double> variances_;      // class * features
  size_t num_features_ = 0;
  bool fitted_ = false;
};

}  // namespace kgpip::ml

#endif  // KGPIP_ML_KNN_H_
