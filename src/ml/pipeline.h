#ifndef KGPIP_ML_PIPELINE_H_
#define KGPIP_ML_PIPELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "ml/featurizer.h"
#include "ml/learner.h"
#include "ml/preprocess.h"

namespace kgpip::ml {

/// A pipeline skeleton: the (pre-processors, estimator) pair the graph
/// generator emits, before hyper-parameter optimization fills in `params`.
struct PipelineSpec {
  std::vector<std::string> preprocessors;
  std::string learner;
  HyperParams params;

  std::string ToString() const;
};

/// A fitted end-to-end pipeline: featurizer -> transformers -> learner.
class Pipeline {
 public:
  Pipeline() = default;

  /// Builds and fits a pipeline on a raw Table. The featurizer runs first
  /// (imputation, one-hot, text vectorization), then each transformer in
  /// `spec.preprocessors`, then the learner.
  static Result<Pipeline> FitOnTable(const PipelineSpec& spec,
                                     const Table& train, TaskType task,
                                     uint64_t seed,
                                     FeaturizerOptions options = {});

  /// Fits on already-featurized data reusing an external featurizer
  /// (shared across HPO trials to avoid recomputation).
  static Result<Pipeline> FitOnData(const PipelineSpec& spec,
                                    const LabeledData& train, TaskType task,
                                    uint64_t seed);

  /// Predicts class indices / values for a raw table. Requires the
  /// pipeline to have been fitted with FitOnTable.
  Result<std::vector<double>> PredictTable(const Table& table) const;

  /// Predicts from featurized data.
  Result<std::vector<double>> PredictData(const FeatureMatrix& x) const;

  /// Scores against a raw test table: macro-F1 for classification, R^2
  /// for regression (the paper's metrics).
  Result<double> ScoreTable(const Table& test) const;

  /// Scores featurized data.
  Result<double> ScoreData(const LabeledData& test) const;

  const PipelineSpec& spec() const { return spec_; }
  TaskType task() const { return task_; }

 private:
  Status FitTransformersAndLearner(const LabeledData& train, uint64_t seed);

  PipelineSpec spec_;
  TaskType task_ = TaskType::kBinaryClassification;
  int num_classes_ = 0;
  std::shared_ptr<Featurizer> featurizer_;  // null when fit on LabeledData
  std::vector<std::shared_ptr<Transformer>> transformers_;
  std::shared_ptr<Learner> learner_;
};

}  // namespace kgpip::ml

#endif  // KGPIP_ML_PIPELINE_H_
