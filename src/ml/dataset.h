#ifndef KGPIP_ML_DATASET_H_
#define KGPIP_ML_DATASET_H_

#include <string>
#include <vector>

#include "data/table.h"

namespace kgpip::ml {

/// Dense row-major numeric feature matrix — what learners consume after
/// featurization.
struct FeatureMatrix {
  size_t rows = 0;
  size_t cols = 0;
  std::vector<double> values;

  FeatureMatrix() = default;
  FeatureMatrix(size_t r, size_t c) : rows(r), cols(c), values(r * c, 0.0) {}

  double& At(size_t r, size_t c) { return values[r * cols + c]; }
  double At(size_t r, size_t c) const { return values[r * cols + c]; }
  const double* Row(size_t r) const { return values.data() + r * cols; }
  double* Row(size_t r) { return values.data() + r * cols; }
};

/// A featurized supervised dataset. For classification, `y` holds class
/// indices (0..num_classes-1) and `class_names` maps them back to labels.
struct LabeledData {
  FeatureMatrix x;
  std::vector<double> y;
  TaskType task = TaskType::kBinaryClassification;
  int num_classes = 0;
  std::vector<std::string> class_names;

  size_t rows() const { return x.rows; }
};

}  // namespace kgpip::ml

#endif  // KGPIP_ML_DATASET_H_
