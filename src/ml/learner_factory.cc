#include <memory>

#include "ml/forest.h"
#include "ml/gbdt.h"
#include "ml/knn.h"
#include "ml/learner.h"
#include "ml/linear.h"
#include "ml/tree.h"

namespace kgpip::ml {

const std::vector<LearnerInfo>& LearnerRegistry() {
  static const std::vector<LearnerInfo>& kRegistry =
      *new std::vector<LearnerInfo>{
          {"logistic_regression", true, false, 1.0},
          {"linear_svm", true, false, 1.0},
          {"sgd", true, true, 0.8},
          {"gaussian_nb", true, false, 0.3},
          {"knn", true, true, 0.5},
          {"decision_tree", true, true, 0.6},
          {"random_forest", true, true, 3.0},
          {"extra_trees", true, true, 2.5},
          {"gradient_boosting", true, true, 4.0},
          {"xgboost", true, true, 4.5},
          {"lgbm", true, true, 4.0},
          {"linear_regression", false, true, 0.8},
          {"ridge", false, true, 0.8},
          {"lasso", false, true, 1.0},
      };
  return kRegistry;
}

bool LearnerSupports(const std::string& name, TaskType task) {
  for (const LearnerInfo& info : LearnerRegistry()) {
    if (info.name == name) {
      return IsClassification(task) ? info.supports_classification
                                    : info.supports_regression;
    }
  }
  return false;
}

Result<std::unique_ptr<Learner>> CreateLearner(const std::string& name,
                                               TaskType task,
                                               const HyperParams& params,
                                               uint64_t seed) {
  if (!LearnerSupports(name, task)) {
    return Status::InvalidArgument("learner '" + name +
                                   "' does not support task " +
                                   TaskTypeName(task));
  }
  using L = LinearLearner;
  std::unique_ptr<Learner> out;
  if (name == "logistic_regression") {
    out = std::make_unique<L>(name, task, L::Loss::kSoftmax,
                              L::Penalty::kL2, params, seed);
  } else if (name == "linear_svm") {
    out = std::make_unique<L>(name, task, L::Loss::kHinge, L::Penalty::kL2,
                              params, seed);
  } else if (name == "sgd") {
    L::Loss loss = IsClassification(task) ? L::Loss::kSoftmax
                                          : L::Loss::kSquared;
    out = std::make_unique<L>(name, task, loss, L::Penalty::kL2, params,
                              seed);
  } else if (name == "linear_regression") {
    out = std::make_unique<L>(name, task, L::Loss::kSquared,
                              L::Penalty::kNone, params, seed);
  } else if (name == "ridge") {
    out = std::make_unique<L>(name, task, L::Loss::kSquared,
                              L::Penalty::kL2, params, seed);
  } else if (name == "lasso") {
    out = std::make_unique<L>(name, task, L::Loss::kSquared,
                              L::Penalty::kL1, params, seed);
  } else if (name == "gaussian_nb") {
    out = std::make_unique<GaussianNbLearner>(task, params, seed);
  } else if (name == "knn") {
    out = std::make_unique<KnnLearner>(task, params, seed);
  } else if (name == "decision_tree") {
    out = std::make_unique<DecisionTreeLearner>(task, params, seed);
  } else if (name == "random_forest") {
    out = std::make_unique<ForestLearner>(name, task, /*extra_trees=*/false,
                                          params, seed);
  } else if (name == "extra_trees") {
    out = std::make_unique<ForestLearner>(name, task, /*extra_trees=*/true,
                                          params, seed);
  } else if (name == "gradient_boosting" || name == "xgboost" ||
             name == "lgbm") {
    out = std::make_unique<GbdtLearner>(name, task, params, seed);
  } else {
    return Status::NotFound("unknown learner '" + name + "'");
  }
  return out;
}

}  // namespace kgpip::ml
