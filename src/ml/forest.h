#ifndef KGPIP_ML_FOREST_H_
#define KGPIP_ML_FOREST_H_

#include <vector>

#include "ml/tree.h"

namespace kgpip::ml {

/// Bagged tree ensemble behind two registry names:
///   - "random_forest": bootstrap rows + sqrt-fraction features + best
///     splits
///   - "extra_trees": full rows + random thresholds
/// Classification predicts by majority vote; regression by mean.
class ForestLearner : public Learner {
 public:
  ForestLearner(std::string registry_name, TaskType task, bool extra_trees,
                const HyperParams& params, uint64_t seed);

  Status Fit(const LabeledData& data) override;
  std::vector<double> Predict(const FeatureMatrix& x) const override;
  std::string name() const override { return registry_name_; }

  size_t num_trees() const { return trees_.size(); }

 private:
  std::string registry_name_;
  TaskType task_;
  bool extra_trees_;
  int n_estimators_;
  TreeParams tree_params_;
  Rng rng_;
  int num_classes_ = 0;
  std::vector<Tree> trees_;
  bool fitted_ = false;
};

}  // namespace kgpip::ml

#endif  // KGPIP_ML_FOREST_H_
