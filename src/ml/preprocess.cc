#include "ml/preprocess.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"
#include "util/rng.h"

namespace kgpip::ml {

namespace {

class StandardScaler : public Transformer {
 public:
  Status Fit(const FeatureMatrix& x, const std::vector<double>*) override {
    mean_.assign(x.cols, 0.0);
    std_.assign(x.cols, 0.0);
    if (x.rows == 0) return Status::InvalidArgument("empty input");
    for (size_t r = 0; r < x.rows; ++r) {
      for (size_t c = 0; c < x.cols; ++c) mean_[c] += x.At(r, c);
    }
    for (double& m : mean_) m /= static_cast<double>(x.rows);
    for (size_t r = 0; r < x.rows; ++r) {
      for (size_t c = 0; c < x.cols; ++c) {
        double d = x.At(r, c) - mean_[c];
        std_[c] += d * d;
      }
    }
    for (double& s : std_) {
      s = std::sqrt(s / static_cast<double>(x.rows));
      if (s < 1e-9) s = 1.0;
    }
    return Status::Ok();
  }
  FeatureMatrix Transform(const FeatureMatrix& x) const override {
    FeatureMatrix out(x.rows, x.cols);
    for (size_t r = 0; r < x.rows; ++r) {
      for (size_t c = 0; c < x.cols; ++c) {
        out.At(r, c) = (x.At(r, c) - mean_[c]) / std_[c];
      }
    }
    return out;
  }
  std::string name() const override { return "standard_scaler"; }

 private:
  std::vector<double> mean_;
  std::vector<double> std_;
};

class MinMaxScaler : public Transformer {
 public:
  Status Fit(const FeatureMatrix& x, const std::vector<double>*) override {
    lo_.assign(x.cols, 1e300);
    hi_.assign(x.cols, -1e300);
    if (x.rows == 0) return Status::InvalidArgument("empty input");
    for (size_t r = 0; r < x.rows; ++r) {
      for (size_t c = 0; c < x.cols; ++c) {
        lo_[c] = std::min(lo_[c], x.At(r, c));
        hi_[c] = std::max(hi_[c], x.At(r, c));
      }
    }
    return Status::Ok();
  }
  FeatureMatrix Transform(const FeatureMatrix& x) const override {
    FeatureMatrix out(x.rows, x.cols);
    for (size_t r = 0; r < x.rows; ++r) {
      for (size_t c = 0; c < x.cols; ++c) {
        double range = hi_[c] - lo_[c];
        out.At(r, c) = range > 1e-12 ? (x.At(r, c) - lo_[c]) / range : 0.0;
      }
    }
    return out;
  }
  std::string name() const override { return "minmax_scaler"; }

 private:
  std::vector<double> lo_;
  std::vector<double> hi_;
};

class Normalizer : public Transformer {
 public:
  Status Fit(const FeatureMatrix&, const std::vector<double>*) override {
    return Status::Ok();
  }
  FeatureMatrix Transform(const FeatureMatrix& x) const override {
    FeatureMatrix out(x.rows, x.cols);
    for (size_t r = 0; r < x.rows; ++r) {
      double norm = 0.0;
      for (size_t c = 0; c < x.cols; ++c) norm += x.At(r, c) * x.At(r, c);
      norm = std::sqrt(norm);
      if (norm < 1e-12) norm = 1.0;
      for (size_t c = 0; c < x.cols; ++c) out.At(r, c) = x.At(r, c) / norm;
    }
    return out;
  }
  std::string name() const override { return "normalizer"; }
};

class VarianceThreshold : public Transformer {
 public:
  explicit VarianceThreshold(double threshold) : threshold_(threshold) {}
  Status Fit(const FeatureMatrix& x, const std::vector<double>*) override {
    keep_.clear();
    if (x.rows == 0) return Status::InvalidArgument("empty input");
    for (size_t c = 0; c < x.cols; ++c) {
      double mean = 0.0;
      for (size_t r = 0; r < x.rows; ++r) mean += x.At(r, c);
      mean /= static_cast<double>(x.rows);
      double var = 0.0;
      for (size_t r = 0; r < x.rows; ++r) {
        double d = x.At(r, c) - mean;
        var += d * d;
      }
      var /= static_cast<double>(x.rows);
      if (var > threshold_) keep_.push_back(c);
    }
    if (keep_.empty()) keep_.push_back(0);  // never drop everything
    return Status::Ok();
  }
  FeatureMatrix Transform(const FeatureMatrix& x) const override {
    FeatureMatrix out(x.rows, keep_.size());
    for (size_t r = 0; r < x.rows; ++r) {
      for (size_t i = 0; i < keep_.size(); ++i) {
        out.At(r, i) = x.At(r, keep_[i]);
      }
    }
    return out;
  }
  std::string name() const override { return "variance_threshold"; }

 private:
  double threshold_;
  std::vector<size_t> keep_;
};

/// Univariate F-score style feature selection: ranks features by absolute
/// correlation with the target and keeps the top k.
class SelectKBest : public Transformer {
 public:
  explicit SelectKBest(int k) : k_(k) {}
  Status Fit(const FeatureMatrix& x, const std::vector<double>* y) override {
    if (y == nullptr || y->size() != x.rows) {
      return Status::InvalidArgument("select_k_best requires targets");
    }
    std::vector<std::pair<double, size_t>> scored(x.cols);
    double y_mean =
        std::accumulate(y->begin(), y->end(), 0.0) /
        std::max<double>(1.0, static_cast<double>(y->size()));
    for (size_t c = 0; c < x.cols; ++c) {
      double x_mean = 0.0;
      for (size_t r = 0; r < x.rows; ++r) x_mean += x.At(r, c);
      x_mean /= static_cast<double>(x.rows);
      double sxy = 0.0, sxx = 0.0, syy = 0.0;
      for (size_t r = 0; r < x.rows; ++r) {
        double dx = x.At(r, c) - x_mean;
        double dy = (*y)[r] - y_mean;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
      }
      double corr = sxx > 0 && syy > 0 ? std::fabs(sxy) /
                                             std::sqrt(sxx * syy)
                                       : 0.0;
      scored[c] = {corr, c};
    }
    std::sort(scored.rbegin(), scored.rend());
    size_t keep_count = std::min<size_t>(
        x.cols, static_cast<size_t>(std::max(1, k_)));
    keep_.clear();
    for (size_t i = 0; i < keep_count; ++i) keep_.push_back(scored[i].second);
    std::sort(keep_.begin(), keep_.end());
    return Status::Ok();
  }
  FeatureMatrix Transform(const FeatureMatrix& x) const override {
    FeatureMatrix out(x.rows, keep_.size());
    for (size_t r = 0; r < x.rows; ++r) {
      for (size_t i = 0; i < keep_.size(); ++i) {
        out.At(r, i) = x.At(r, keep_[i]);
      }
    }
    return out;
  }
  std::string name() const override { return "select_k_best"; }

 private:
  int k_;
  std::vector<size_t> keep_;
};

/// PCA via power iteration with deflation (top-k components on the
/// standardized data).
class Pca : public Transformer {
 public:
  Pca(int components, uint64_t seed) : components_(components), rng_(seed) {}

  Status Fit(const FeatureMatrix& x, const std::vector<double>*) override {
    if (x.rows < 2) return Status::InvalidArgument("pca needs >= 2 rows");
    const size_t d = x.cols;
    mean_.assign(d, 0.0);
    for (size_t r = 0; r < x.rows; ++r) {
      for (size_t c = 0; c < d; ++c) mean_[c] += x.At(r, c);
    }
    for (double& m : mean_) m /= static_cast<double>(x.rows);
    // Covariance matrix (d x d); d stays small in this library.
    std::vector<double> cov(d * d, 0.0);
    for (size_t r = 0; r < x.rows; ++r) {
      for (size_t a = 0; a < d; ++a) {
        double da = x.At(r, a) - mean_[a];
        for (size_t b = a; b < d; ++b) {
          cov[a * d + b] += da * (x.At(r, b) - mean_[b]);
        }
      }
    }
    for (size_t a = 0; a < d; ++a) {
      for (size_t b = a; b < d; ++b) {
        cov[a * d + b] /= static_cast<double>(x.rows - 1);
        cov[b * d + a] = cov[a * d + b];
      }
    }
    size_t k = std::min<size_t>(static_cast<size_t>(
                                    std::max(1, components_)),
                                d);
    components_matrix_.assign(k * d, 0.0);
    std::vector<double> v(d), next(d);
    for (size_t comp = 0; comp < k; ++comp) {
      for (double& vi : v) vi = rng_.Normal();
      for (int iter = 0; iter < 60; ++iter) {
        std::fill(next.begin(), next.end(), 0.0);
        for (size_t a = 0; a < d; ++a) {
          for (size_t b = 0; b < d; ++b) {
            next[a] += cov[a * d + b] * v[b];
          }
        }
        double norm = 0.0;
        for (double nv : next) norm += nv * nv;
        norm = std::sqrt(norm);
        if (norm < 1e-12) break;
        for (size_t a = 0; a < d; ++a) v[a] = next[a] / norm;
      }
      // Deflate.
      double lambda = 0.0;
      for (size_t a = 0; a < d; ++a) {
        double av = 0.0;
        for (size_t b = 0; b < d; ++b) av += cov[a * d + b] * v[b];
        lambda += v[a] * av;
      }
      for (size_t a = 0; a < d; ++a) {
        for (size_t b = 0; b < d; ++b) {
          cov[a * d + b] -= lambda * v[a] * v[b];
        }
      }
      for (size_t a = 0; a < d; ++a) {
        components_matrix_[comp * d + a] = v[a];
      }
    }
    num_components_ = k;
    return Status::Ok();
  }

  FeatureMatrix Transform(const FeatureMatrix& x) const override {
    FeatureMatrix out(x.rows, num_components_);
    const size_t d = mean_.size();
    for (size_t r = 0; r < x.rows; ++r) {
      for (size_t comp = 0; comp < num_components_; ++comp) {
        double s = 0.0;
        for (size_t c = 0; c < d; ++c) {
          s += (x.At(r, c) - mean_[c]) * components_matrix_[comp * d + c];
        }
        out.At(r, comp) = s;
      }
    }
    return out;
  }
  std::string name() const override { return "pca"; }

 private:
  int components_;
  Rng rng_;
  size_t num_components_ = 0;
  std::vector<double> mean_;
  std::vector<double> components_matrix_;
};

}  // namespace

const std::vector<std::string>& TransformerRegistry() {
  static const std::vector<std::string>& kNames =
      *new std::vector<std::string>{
          "standard_scaler",    "minmax_scaler", "normalizer",
          "variance_threshold", "select_k_best", "pca",
      };
  return kNames;
}

bool IsKnownTransformer(const std::string& name) {
  const auto& names = TransformerRegistry();
  return std::find(names.begin(), names.end(), name) != names.end();
}

Result<std::unique_ptr<Transformer>> CreateTransformer(
    const std::string& name, const HyperParams& params, uint64_t seed) {
  std::unique_ptr<Transformer> out;
  if (name == "standard_scaler") {
    out = std::make_unique<StandardScaler>();
  } else if (name == "minmax_scaler") {
    out = std::make_unique<MinMaxScaler>();
  } else if (name == "normalizer") {
    out = std::make_unique<Normalizer>();
  } else if (name == "variance_threshold") {
    out = std::make_unique<VarianceThreshold>(
        params.GetNum("threshold", 1e-8));
  } else if (name == "select_k_best") {
    out = std::make_unique<SelectKBest>(params.GetInt("k", 10));
  } else if (name == "pca") {
    out = std::make_unique<Pca>(params.GetInt("n_components", 8), seed);
  } else {
    return Status::NotFound("unknown transformer '" + name + "'");
  }
  return out;
}

}  // namespace kgpip::ml
