#include "ml/forest.h"

#include <cmath>
#include <numeric>

#include "util/logging.h"
#include "util/thread_pool.h"

namespace kgpip::ml {

ForestLearner::ForestLearner(std::string registry_name, TaskType task,
                             bool extra_trees, const HyperParams& params,
                             uint64_t seed)
    : registry_name_(std::move(registry_name)),
      task_(task),
      extra_trees_(extra_trees),
      n_estimators_(params.GetInt("n_estimators", 30)),
      rng_(seed) {
  tree_params_.max_depth = params.GetInt("max_depth", 12);
  tree_params_.min_samples_leaf = params.GetInt("min_samples_leaf", 1);
  tree_params_.min_samples_split = params.GetInt("min_samples_split", 2);
  tree_params_.max_features = params.GetNum("max_features", -1.0);
  tree_params_.random_thresholds = extra_trees_;
}

Status ForestLearner::Fit(const LabeledData& data) {
  if (data.rows() == 0) return Status::InvalidArgument("empty dataset");
  num_classes_ = data.num_classes;
  trees_.clear();
  TreeParams params = tree_params_;
  if (params.max_features < 0.0) {
    // sklearn default: sqrt(features) for classification, all for
    // regression forests.
    params.max_features =
        IsClassification(task_)
            ? std::sqrt(static_cast<double>(data.x.cols)) /
                  static_cast<double>(data.x.cols)
            : 1.0;
  }
  const size_t n = data.rows();
  std::vector<double> grad;
  std::vector<double> hess;
  if (!IsClassification(task_)) {
    grad.resize(n);
    hess.assign(n, 1.0);
    for (size_t i = 0; i < n; ++i) grad[i] = -data.y[i];
  }
  // Trees are independent given their bootstrap sample and RNG stream.
  // Forking one stream per tree up front decouples each tree's draws
  // from scheduling, so the fitted forest is identical at any thread
  // count (though it differs from the old single-stream sequential fit).
  std::vector<Rng> tree_rngs =
      util::ForkRngs(&rng_, static_cast<size_t>(n_estimators_));
  trees_ = util::ThreadPool::Global().ParallelMap<Tree>(
      static_cast<size_t>(n_estimators_), [&](size_t t) {
        Rng* rng = &tree_rngs[t];
        std::vector<size_t> rows(n);
        if (extra_trees_) {
          std::iota(rows.begin(), rows.end(), 0);
        } else {
          for (size_t i = 0; i < n; ++i) rows[i] = rng->UniformInt(n);
        }
        if (IsClassification(task_)) {
          return FitClassificationTree(data.x, data.y, num_classes_, rows,
                                       params, rng);
        }
        TreeParams p = params;
        p.lambda = 0.0;
        return FitGradientTree(data.x, grad, hess, rows, p, rng);
      });
  fitted_ = true;
  return Status::Ok();
}

std::vector<double> ForestLearner::Predict(const FeatureMatrix& x) const {
  KGPIP_CHECK(fitted_);
  std::vector<double> out(x.rows, 0.0);
  if (IsClassification(task_)) {
    std::vector<int> votes(static_cast<size_t>(num_classes_));
    for (size_t r = 0; r < x.rows; ++r) {
      std::fill(votes.begin(), votes.end(), 0);
      for (const Tree& tree : trees_) {
        int c = static_cast<int>(std::lround(tree.Evaluate(x.Row(r))));
        if (c >= 0 && c < num_classes_) ++votes[static_cast<size_t>(c)];
      }
      int best = 0;
      for (int c = 1; c < num_classes_; ++c) {
        if (votes[c] > votes[best]) best = c;
      }
      out[r] = static_cast<double>(best);
    }
  } else {
    for (size_t r = 0; r < x.rows; ++r) {
      double sum = 0.0;
      for (const Tree& tree : trees_) sum += tree.Evaluate(x.Row(r));
      out[r] = trees_.empty() ? 0.0
                              : sum / static_cast<double>(trees_.size());
    }
  }
  return out;
}

}  // namespace kgpip::ml
