#ifndef KGPIP_ML_TREE_H_
#define KGPIP_ML_TREE_H_

#include <memory>
#include <vector>

#include "ml/learner.h"
#include "util/rng.h"

namespace kgpip::ml {

/// One node of a binary decision tree, stored in a flat vector.
struct TreeNode {
  int feature = -1;        // -1 marks a leaf
  double threshold = 0.0;  // go left when x[feature] <= threshold
  int left = -1;
  int right = -1;
  double value = 0.0;      // leaf prediction (class index or score)
};

/// Shared tree-construction knobs.
struct TreeParams {
  int max_depth = 10;
  int min_samples_leaf = 2;
  int min_samples_split = 4;
  /// Fraction of features examined per split (<=0 or >=1: all).
  double max_features = 1.0;
  /// Extra-trees style: draw one random threshold per feature instead of
  /// scanning every cut point.
  bool random_thresholds = false;
  /// L2 regularization on leaf values (gradient trees only).
  double lambda = 1.0;
};

/// A fitted tree; Evaluate routes a row to its leaf value.
class Tree {
 public:
  double Evaluate(const double* row) const;
  const std::vector<TreeNode>& nodes() const { return nodes_; }
  bool empty() const { return nodes_.empty(); }

  std::vector<TreeNode>& mutable_nodes() { return nodes_; }

 private:
  std::vector<TreeNode> nodes_;
};

/// Fits a gradient tree in the XGBoost formulation: each row carries a
/// gradient g_i and hessian h_i; leaves predict -sum(g)/(sum(h)+lambda) and
/// splits maximize the matching gain. With g = -(residual) and h = 1 this
/// reduces to a plain least-squares regression tree predicting the mean.
Tree FitGradientTree(const FeatureMatrix& x, const std::vector<double>& grad,
                     const std::vector<double>& hess,
                     const std::vector<size_t>& rows,
                     const TreeParams& params, Rng* rng);

/// Fits a Gini-impurity classification tree whose leaves predict the
/// majority class index.
Tree FitClassificationTree(const FeatureMatrix& x,
                           const std::vector<double>& y, int num_classes,
                           const std::vector<size_t>& rows,
                           const TreeParams& params, Rng* rng);

/// Single CART decision tree exposed through the Learner interface.
class DecisionTreeLearner : public Learner {
 public:
  DecisionTreeLearner(TaskType task, const HyperParams& params,
                      uint64_t seed);

  Status Fit(const LabeledData& data) override;
  std::vector<double> Predict(const FeatureMatrix& x) const override;
  std::string name() const override { return "decision_tree"; }

 private:
  TaskType task_;
  TreeParams tree_params_;
  Rng rng_;
  Tree tree_;
  bool fitted_ = false;
};

}  // namespace kgpip::ml

#endif  // KGPIP_ML_TREE_H_
