#ifndef KGPIP_ML_GBDT_H_
#define KGPIP_ML_GBDT_H_

#include <string>
#include <vector>

#include "ml/tree.h"

namespace kgpip::ml {

/// Histogram-free gradient-boosted trees in the XGBoost second-order
/// formulation. Serves three registry names with different presets:
///   - "gradient_boosting": sklearn-like (depth 3, lr 0.1)
///   - "xgboost": deeper trees, column subsampling
///   - "lgbm": more estimators, lighter trees, row subsampling
/// Classification boosts one score tree per class per round (softmax);
/// regression boosts squared error.
class GbdtLearner : public Learner {
 public:
  GbdtLearner(std::string registry_name, TaskType task,
              const HyperParams& params, uint64_t seed);

  Status Fit(const LabeledData& data) override;
  std::vector<double> Predict(const FeatureMatrix& x) const override;
  std::string name() const override { return registry_name_; }

  /// Raw per-class scores for one row (classification).
  std::vector<double> ScoreRow(const double* row) const;

  int rounds_used() const { return rounds_used_; }

 private:
  std::string registry_name_;
  TaskType task_;
  int n_estimators_;
  double learning_rate_;
  double subsample_;
  TreeParams tree_params_;
  Rng rng_;

  int num_classes_ = 0;
  double base_score_ = 0.0;
  /// trees_[round * score_dims + k]
  std::vector<Tree> trees_;
  int score_dims_ = 1;
  int rounds_used_ = 0;
  bool fitted_ = false;
};

}  // namespace kgpip::ml

#endif  // KGPIP_ML_GBDT_H_
