#include "ml/featurizer.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"

namespace kgpip::ml {

namespace {

/// Splits text into lowercase whitespace tokens.
std::vector<std::string> Tokenize(const std::string& text) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : text) {
    if (c == ' ' || c == '\t' || c == '\n') {
      if (!current.empty()) {
        tokens.push_back(AsciiToLower(current));
        current.clear();
      }
    } else {
      current += c;
    }
  }
  if (!current.empty()) tokens.push_back(AsciiToLower(current));
  return tokens;
}

size_t HashBucket(const std::string& token, size_t dims) {
  return Fnv1a64(token) % dims;
}

double Median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  size_t n = values.size();
  return n % 2 == 1 ? values[n / 2]
                    : 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

}  // namespace

Status Featurizer::Fit(const Table& train, TaskType task) {
  task_ = task;
  plans_.clear();
  class_names_.clear();
  output_dims_ = 0;

  KGPIP_ASSIGN_OR_RETURN(const Column* target, train.TargetColumn());

  // Class dictionary for classification.
  if (IsClassification(task_)) {
    for (size_t r = 0; r < target->size(); ++r) {
      if (target->IsMissing(r)) continue;
      std::string label = target->type() == ColumnType::kNumeric
                              ? StrFormat("%g", target->NumericAt(r))
                              : target->StringAt(r);
      if (std::find(class_names_.begin(), class_names_.end(), label) ==
          class_names_.end()) {
        class_names_.push_back(label);
      }
    }
    std::sort(class_names_.begin(), class_names_.end());
    if (class_names_.size() < 2) {
      return Status::InvalidArgument(
          "classification target has fewer than 2 classes");
    }
  }

  for (size_t ci = 0; ci < train.num_columns(); ++ci) {
    const Column& col = train.column(ci);
    if (col.name() == train.target_name()) continue;
    ColumnPlan plan;
    plan.name = col.name();
    plan.type = col.type();
    plan.first_output = output_dims_;
    switch (col.type()) {
      case ColumnType::kNumeric: {
        std::vector<double> present;
        for (size_t r = 0; r < col.size(); ++r) {
          if (!col.IsMissing(r)) present.push_back(col.NumericAt(r));
        }
        if (options_.median_impute) {
          plan.impute_value = Median(std::move(present));
        } else {
          double mean = 0.0;
          for (double v : present) mean += v;
          plan.impute_value =
              present.empty() ? 0.0
                              : mean / static_cast<double>(present.size());
        }
        plan.width = 1;
        break;
      }
      case ColumnType::kCategorical: {
        // Count level frequencies; keep the most common levels.
        std::map<std::string, size_t> counts;
        for (size_t r = 0; r < col.size(); ++r) {
          if (!col.IsMissing(r)) ++counts[col.StringAt(r)];
        }
        std::vector<std::pair<size_t, std::string>> ordered;
        for (const auto& [level, count] : counts) {
          ordered.emplace_back(count, level);
        }
        std::sort(ordered.rbegin(), ordered.rend());
        size_t keep = std::min<size_t>(
            ordered.size(), static_cast<size_t>(options_.max_one_hot));
        for (size_t i = 0; i < keep; ++i) {
          plan.levels[ordered[i].second] = i;
        }
        // +1 slot for other/missing.
        plan.width = keep + 1;
        break;
      }
      case ColumnType::kText: {
        const size_t dims = static_cast<size_t>(options_.text_dims);
        plan.idf.assign(dims, 0.0);
        size_t docs = 0;
        std::vector<bool> seen(dims);
        for (size_t r = 0; r < col.size(); ++r) {
          if (col.IsMissing(r)) continue;
          ++docs;
          std::fill(seen.begin(), seen.end(), false);
          for (const std::string& token : Tokenize(col.StringAt(r))) {
            seen[HashBucket(token, dims)] = true;
          }
          for (size_t d = 0; d < dims; ++d) {
            if (seen[d]) plan.idf[d] += 1.0;
          }
        }
        for (double& df : plan.idf) {
          df = options_.text_tfidf && docs > 0
                   ? std::log((1.0 + static_cast<double>(docs)) /
                              (1.0 + df)) +
                         1.0
                   : 1.0;
        }
        plan.width = dims;
        break;
      }
    }
    output_dims_ += plan.width;
    plans_.push_back(std::move(plan));
  }
  if (output_dims_ == 0) {
    return Status::InvalidArgument("table has no feature columns");
  }
  fitted_ = true;
  return Status::Ok();
}

void Featurizer::EncodeRow(const Table& table,
                           const std::vector<size_t>& column_indices,
                           size_t row, double* out) const {
  for (size_t p = 0; p < plans_.size(); ++p) {
    const ColumnPlan& plan = plans_[p];
    double* slot = out + plan.first_output;
    const size_t col_index = column_indices[p];
    if (col_index == static_cast<size_t>(-1)) continue;  // zeros
    const Column& col = table.column(col_index);
    switch (plan.type) {
      case ColumnType::kNumeric:
        slot[0] = col.IsMissing(row) || col.type() != ColumnType::kNumeric
                      ? plan.impute_value
                      : col.NumericAt(row);
        if (std::isnan(slot[0])) slot[0] = plan.impute_value;
        break;
      case ColumnType::kCategorical: {
        size_t bucket = plan.levels.size();  // other/missing slot
        if (!col.IsMissing(row) && col.type() != ColumnType::kNumeric) {
          auto it = plan.levels.find(col.StringAt(row));
          if (it != plan.levels.end()) bucket = it->second;
        }
        slot[bucket] = 1.0;
        break;
      }
      case ColumnType::kText: {
        if (col.IsMissing(row) || col.type() == ColumnType::kNumeric) break;
        const size_t dims = plan.idf.size();
        for (const std::string& token : Tokenize(col.StringAt(row))) {
          slot[HashBucket(token, dims)] += 1.0;
        }
        for (size_t d = 0; d < dims; ++d) slot[d] *= plan.idf[d];
        break;
      }
    }
  }
}

Result<FeatureMatrix> Featurizer::TransformFeatures(
    const Table& table) const {
  if (!fitted_) return Status::FailedPrecondition("featurizer not fitted");
  // Map each plan to the matching column in this table (by name).
  std::vector<size_t> column_indices(plans_.size(),
                                     static_cast<size_t>(-1));
  for (size_t p = 0; p < plans_.size(); ++p) {
    auto idx = table.FindColumn(plans_[p].name);
    if (idx.has_value()) column_indices[p] = *idx;
  }
  FeatureMatrix out(table.num_rows(), output_dims_);
  for (size_t r = 0; r < table.num_rows(); ++r) {
    EncodeRow(table, column_indices, r, out.Row(r));
  }
  return out;
}

Result<LabeledData> Featurizer::Transform(const Table& table) const {
  KGPIP_ASSIGN_OR_RETURN(FeatureMatrix x, TransformFeatures(table));
  KGPIP_ASSIGN_OR_RETURN(const Column* target, table.TargetColumn());
  LabeledData data;
  data.x = std::move(x);
  data.task = task_;
  data.y.resize(table.num_rows(), 0.0);
  if (IsClassification(task_)) {
    data.num_classes = static_cast<int>(class_names_.size());
    data.class_names = class_names_;
    for (size_t r = 0; r < table.num_rows(); ++r) {
      std::string label = target->type() == ColumnType::kNumeric
                              ? StrFormat("%g", target->NumericAt(r))
                              : target->StringAt(r);
      auto it = std::find(class_names_.begin(), class_names_.end(), label);
      data.y[r] = it == class_names_.end()
                      ? 0.0
                      : static_cast<double>(it - class_names_.begin());
    }
  } else {
    if (target->type() != ColumnType::kNumeric) {
      return Status::InvalidArgument("regression target must be numeric");
    }
    double mean = 0.0;
    size_t count = 0;
    for (size_t r = 0; r < target->size(); ++r) {
      if (!target->IsMissing(r)) {
        mean += target->NumericAt(r);
        ++count;
      }
    }
    mean = count > 0 ? mean / static_cast<double>(count) : 0.0;
    for (size_t r = 0; r < table.num_rows(); ++r) {
      data.y[r] = target->IsMissing(r) ? mean : target->NumericAt(r);
    }
  }
  return data;
}

}  // namespace kgpip::ml
