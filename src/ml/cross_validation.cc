#include "ml/cross_validation.h"

#include <cmath>
#include <optional>

#include "util/stats.h"
#include "util/thread_pool.h"

namespace kgpip::ml {

Result<CrossValResult> CrossValidate(const PipelineSpec& spec,
                                     const Table& table, TaskType task,
                                     int folds, uint64_t seed) {
  if (folds < 2) {
    return Status::InvalidArgument("cross validation needs >= 2 folds");
  }
  if (table.num_rows() < static_cast<size_t>(2 * folds)) {
    return Status::InvalidArgument("too few rows for " +
                                   std::to_string(folds) + " folds");
  }
  std::vector<int> assignment = KFoldAssignment(table.num_rows(), folds,
                                                seed);
  // Folds are independent (each gets its own derived seed), so they fan
  // out over the pool; scores are collected in fold order and the first
  // (lowest-fold) failure is returned.
  std::vector<std::optional<Result<double>>> fold_results(
      static_cast<size_t>(folds));
  util::ThreadPool::Global().ParallelFor(
      static_cast<size_t>(folds), [&](size_t fold) {
        std::vector<size_t> train_rows, test_rows;
        for (size_t r = 0; r < table.num_rows(); ++r) {
          (assignment[r] == static_cast<int>(fold) ? test_rows : train_rows)
              .push_back(r);
        }
        Table train = table.TakeRows(train_rows);
        Table test = table.TakeRows(test_rows);
        Result<Pipeline> pipeline =
            Pipeline::FitOnTable(spec, train, task, seed + fold);
        if (!pipeline.ok()) {
          fold_results[fold] = pipeline.status();
          return;
        }
        fold_results[fold] = pipeline->ScoreTable(test);
      });
  CrossValResult result;
  for (std::optional<Result<double>>& r : fold_results) {
    if (!r->ok()) return r->status();
    result.fold_scores.push_back(**r);
  }
  result.mean = Mean(result.fold_scores);
  result.stddev = StdDev(result.fold_scores);
  return result;
}

}  // namespace kgpip::ml
