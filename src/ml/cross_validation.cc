#include "ml/cross_validation.h"

#include <cmath>

#include "util/stats.h"

namespace kgpip::ml {

Result<CrossValResult> CrossValidate(const PipelineSpec& spec,
                                     const Table& table, TaskType task,
                                     int folds, uint64_t seed) {
  if (folds < 2) {
    return Status::InvalidArgument("cross validation needs >= 2 folds");
  }
  if (table.num_rows() < static_cast<size_t>(2 * folds)) {
    return Status::InvalidArgument("too few rows for " +
                                   std::to_string(folds) + " folds");
  }
  std::vector<int> assignment = KFoldAssignment(table.num_rows(), folds,
                                                seed);
  CrossValResult result;
  for (int fold = 0; fold < folds; ++fold) {
    std::vector<size_t> train_rows, test_rows;
    for (size_t r = 0; r < table.num_rows(); ++r) {
      (assignment[r] == fold ? test_rows : train_rows).push_back(r);
    }
    Table train = table.TakeRows(train_rows);
    Table test = table.TakeRows(test_rows);
    KGPIP_ASSIGN_OR_RETURN(
        Pipeline pipeline,
        Pipeline::FitOnTable(spec, train, task,
                             seed + static_cast<uint64_t>(fold)));
    KGPIP_ASSIGN_OR_RETURN(double score, pipeline.ScoreTable(test));
    result.fold_scores.push_back(score);
  }
  result.mean = Mean(result.fold_scores);
  result.stddev = StdDev(result.fold_scores);
  return result;
}

}  // namespace kgpip::ml
