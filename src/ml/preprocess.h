#ifndef KGPIP_ML_PREPROCESS_H_
#define KGPIP_ML_PREPROCESS_H_

#include <memory>
#include <string>
#include <vector>

#include "ml/dataset.h"
#include "ml/hyperparams.h"
#include "util/status.h"

namespace kgpip::ml {

/// A fitted feature-space transformation (sklearn-preprocessor analog).
/// `y` is only consulted by supervised selectors (select_k_best).
class Transformer {
 public:
  virtual ~Transformer() = default;
  virtual Status Fit(const FeatureMatrix& x,
                     const std::vector<double>* y) = 0;
  virtual FeatureMatrix Transform(const FeatureMatrix& x) const = 0;
  virtual std::string name() const = 0;
};

/// All transformer registry names.
const std::vector<std::string>& TransformerRegistry();

bool IsKnownTransformer(const std::string& name);

/// Instantiates a transformer by registry name:
///   "standard_scaler", "minmax_scaler", "normalizer",
///   "variance_threshold", "select_k_best", "pca".
Result<std::unique_ptr<Transformer>> CreateTransformer(
    const std::string& name, const HyperParams& params, uint64_t seed);

}  // namespace kgpip::ml

#endif  // KGPIP_ML_PREPROCESS_H_
