#ifndef KGPIP_ML_METRICS_H_
#define KGPIP_ML_METRICS_H_

#include <vector>

namespace kgpip::ml {

/// Fraction of exact matches between integer class predictions and truth.
double Accuracy(const std::vector<double>& y_true,
                const std::vector<double>& y_pred);

/// Macro-averaged F1 over the classes present in `y_true` — the paper's
/// classification metric ("We used Macro F1 for classification tasks to
/// account for data imbalance").
double MacroF1(const std::vector<double>& y_true,
               const std::vector<double>& y_pred, int num_classes);

/// Coefficient of determination — the paper's regression metric.
double R2Score(const std::vector<double>& y_true,
               const std::vector<double>& y_pred);

double MeanSquaredError(const std::vector<double>& y_true,
                        const std::vector<double>& y_pred);

double MeanAbsoluteError(const std::vector<double>& y_true,
                         const std::vector<double>& y_pred);

}  // namespace kgpip::ml

#endif  // KGPIP_ML_METRICS_H_
