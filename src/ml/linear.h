#ifndef KGPIP_ML_LINEAR_H_
#define KGPIP_ML_LINEAR_H_

#include <string>
#include <vector>

#include "ml/learner.h"
#include "util/rng.h"

namespace kgpip::ml {

/// Family of linear models behind several registry names:
///   - "logistic_regression": softmax + L1/L2 penalty
///   - "linear_svm": one-vs-rest hinge + L2
///   - "sgd": configurable loss (log/hinge/squared)
///   - "linear_regression" / "ridge" / "lasso": squared loss with
///     none / L2 / L1 penalty
///
/// All variants standardize features internally (means/stds learned at
/// fit) and train with full-batch gradient descent plus momentum; L1 is
/// applied as a proximal soft-threshold step.
class LinearLearner : public Learner {
 public:
  enum class Loss { kSoftmax, kHinge, kSquared };
  enum class Penalty { kNone, kL1, kL2 };

  LinearLearner(std::string registry_name, TaskType task, Loss loss,
                Penalty penalty, const HyperParams& params, uint64_t seed);

  Status Fit(const LabeledData& data) override;
  std::vector<double> Predict(const FeatureMatrix& x) const override;
  std::string name() const override { return registry_name_; }

  /// Raw decision scores (n x outputs), post-standardization.
  std::vector<double> DecisionScores(const FeatureMatrix& x) const;

 private:
  void StandardizeInto(const FeatureMatrix& x,
                       FeatureMatrix* standardized) const;

  std::string registry_name_;
  TaskType task_;
  Loss loss_;
  Penalty penalty_;
  double alpha_;
  double learning_rate_;
  int epochs_;
  Rng rng_;

  // Fitted state.
  size_t num_features_ = 0;
  int num_outputs_ = 0;  // classes, or 1 for regression
  std::vector<double> weights_;  // (features x outputs), column-major rows
  std::vector<double> bias_;     // per output
  std::vector<double> feature_mean_;
  std::vector<double> feature_std_;
  bool fitted_ = false;
};

}  // namespace kgpip::ml

#endif  // KGPIP_ML_LINEAR_H_
