#include "ml/linear.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace kgpip::ml {

LinearLearner::LinearLearner(std::string registry_name, TaskType task,
                             Loss loss, Penalty penalty,
                             const HyperParams& params, uint64_t seed)
    : registry_name_(std::move(registry_name)),
      task_(task),
      loss_(loss),
      penalty_(penalty),
      alpha_(params.GetNum("alpha", 1e-3)),
      learning_rate_(params.GetNum("lr", 0.15)),
      epochs_(params.GetInt("epochs", 120)),
      rng_(seed) {
  // "sgd" exposes its loss as a hyper-parameter, sklearn-style.
  std::string loss_name = params.GetStr("loss", "");
  if (!loss_name.empty()) {
    if (loss_name == "hinge") loss_ = Loss::kHinge;
    else if (loss_name == "log") loss_ = Loss::kSoftmax;
    else if (loss_name == "squared") loss_ = Loss::kSquared;
  }
  std::string penalty_name = params.GetStr("penalty", "");
  if (!penalty_name.empty()) {
    if (penalty_name == "l1") penalty_ = Penalty::kL1;
    else if (penalty_name == "l2") penalty_ = Penalty::kL2;
    else if (penalty_name == "none") penalty_ = Penalty::kNone;
  }
  if (task_ == TaskType::kRegression && loss_ != Loss::kSquared) {
    loss_ = Loss::kSquared;
  }
}

void LinearLearner::StandardizeInto(const FeatureMatrix& x,
                                    FeatureMatrix* standardized) const {
  *standardized = FeatureMatrix(x.rows, x.cols);
  for (size_t r = 0; r < x.rows; ++r) {
    for (size_t c = 0; c < x.cols; ++c) {
      standardized->At(r, c) =
          (x.At(r, c) - feature_mean_[c]) / feature_std_[c];
    }
  }
}

Status LinearLearner::Fit(const LabeledData& data) {
  if (data.rows() == 0) return Status::InvalidArgument("empty dataset");
  const size_t n = data.rows();
  num_features_ = data.x.cols;
  num_outputs_ = IsClassification(task_) ? std::max(2, data.num_classes) : 1;

  // Standardization statistics.
  feature_mean_.assign(num_features_, 0.0);
  feature_std_.assign(num_features_, 0.0);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < num_features_; ++c) {
      feature_mean_[c] += data.x.At(r, c);
    }
  }
  for (double& m : feature_mean_) m /= static_cast<double>(n);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < num_features_; ++c) {
      double d = data.x.At(r, c) - feature_mean_[c];
      feature_std_[c] += d * d;
    }
  }
  for (double& s : feature_std_) {
    s = std::sqrt(s / static_cast<double>(n));
    if (s < 1e-9) s = 1.0;
  }

  FeatureMatrix xs;
  StandardizeInto(data.x, &xs);

  const int k = num_outputs_;
  weights_.assign(num_features_ * static_cast<size_t>(k), 0.0);
  bias_.assign(static_cast<size_t>(k), 0.0);
  std::vector<double> w_velocity(weights_.size(), 0.0);
  std::vector<double> b_velocity(bias_.size(), 0.0);
  std::vector<double> grad_w(weights_.size());
  std::vector<double> grad_b(bias_.size());
  std::vector<double> scores(static_cast<size_t>(k));
  const double momentum = 0.9;
  const double inv_n = 1.0 / static_cast<double>(n);

  for (int epoch = 0; epoch < epochs_; ++epoch) {
    std::fill(grad_w.begin(), grad_w.end(), 0.0);
    std::fill(grad_b.begin(), grad_b.end(), 0.0);
    const double lr =
        learning_rate_ / (1.0 + 0.02 * static_cast<double>(epoch));
    for (size_t r = 0; r < n; ++r) {
      const double* row = xs.Row(r);
      for (int c = 0; c < k; ++c) {
        double s = bias_[c];
        const double* w = weights_.data() + static_cast<size_t>(c);
        for (size_t f = 0; f < num_features_; ++f) {
          s += row[f] * w[f * static_cast<size_t>(k)];
        }
        scores[c] = s;
      }
      // Per-output error signal, by loss.
      if (loss_ == Loss::kSquared) {
        double err = scores[0] - data.y[r];
        grad_b[0] += err * inv_n;
        for (size_t f = 0; f < num_features_; ++f) {
          grad_w[f * static_cast<size_t>(k)] += err * row[f] * inv_n;
        }
      } else if (loss_ == Loss::kSoftmax) {
        double max_s = *std::max_element(scores.begin(), scores.end());
        double z = 0.0;
        for (int c = 0; c < k; ++c) z += std::exp(scores[c] - max_s);
        int target = static_cast<int>(data.y[r]);
        for (int c = 0; c < k; ++c) {
          double p = std::exp(scores[c] - max_s) / z;
          double err = (p - (c == target ? 1.0 : 0.0)) * inv_n;
          grad_b[c] += err;
          for (size_t f = 0; f < num_features_; ++f) {
            grad_w[f * static_cast<size_t>(k) + c] += err * row[f];
          }
        }
      } else {  // hinge, one-vs-rest
        int target = static_cast<int>(data.y[r]);
        for (int c = 0; c < k; ++c) {
          double sign = c == target ? 1.0 : -1.0;
          if (sign * scores[c] < 1.0) {
            double err = -sign * inv_n;
            grad_b[c] += err;
            for (size_t f = 0; f < num_features_; ++f) {
              grad_w[f * static_cast<size_t>(k) + c] += err * row[f];
            }
          }
        }
      }
    }
    // L2 penalty folds into the gradient; L1 is proximal below.
    if (penalty_ == Penalty::kL2) {
      for (size_t i = 0; i < weights_.size(); ++i) {
        grad_w[i] += alpha_ * weights_[i];
      }
    }
    for (size_t i = 0; i < weights_.size(); ++i) {
      w_velocity[i] = momentum * w_velocity[i] - lr * grad_w[i];
      weights_[i] += w_velocity[i];
    }
    for (size_t i = 0; i < bias_.size(); ++i) {
      b_velocity[i] = momentum * b_velocity[i] - lr * grad_b[i];
      bias_[i] += b_velocity[i];
    }
    if (penalty_ == Penalty::kL1) {
      const double shrink = lr * alpha_;
      for (double& w : weights_) {
        if (w > shrink) w -= shrink;
        else if (w < -shrink) w += shrink;
        else w = 0.0;
      }
    }
  }
  fitted_ = true;
  return Status::Ok();
}

std::vector<double> LinearLearner::DecisionScores(
    const FeatureMatrix& x) const {
  KGPIP_CHECK(fitted_);
  const int k = num_outputs_;
  std::vector<double> out(x.rows * static_cast<size_t>(k));
  for (size_t r = 0; r < x.rows; ++r) {
    for (int c = 0; c < k; ++c) {
      double s = bias_[c];
      for (size_t f = 0; f < num_features_; ++f) {
        double v = (x.At(r, f) - feature_mean_[f]) / feature_std_[f];
        s += v * weights_[f * static_cast<size_t>(k) + c];
      }
      out[r * static_cast<size_t>(k) + c] = s;
    }
  }
  return out;
}

std::vector<double> LinearLearner::Predict(const FeatureMatrix& x) const {
  std::vector<double> scores = DecisionScores(x);
  std::vector<double> out(x.rows);
  if (!IsClassification(task_)) {
    for (size_t r = 0; r < x.rows; ++r) out[r] = scores[r];
    return out;
  }
  const size_t k = static_cast<size_t>(num_outputs_);
  for (size_t r = 0; r < x.rows; ++r) {
    size_t best = 0;
    for (size_t c = 1; c < k; ++c) {
      if (scores[r * k + c] > scores[r * k + best]) best = c;
    }
    out[r] = static_cast<double>(best);
  }
  return out;
}

}  // namespace kgpip::ml
