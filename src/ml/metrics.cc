#include "ml/metrics.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace kgpip::ml {

double Accuracy(const std::vector<double>& y_true,
                const std::vector<double>& y_pred) {
  KGPIP_CHECK(y_true.size() == y_pred.size());
  if (y_true.empty()) return 0.0;
  size_t hits = 0;
  for (size_t i = 0; i < y_true.size(); ++i) {
    if (std::lround(y_true[i]) == std::lround(y_pred[i])) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(y_true.size());
}

double MacroF1(const std::vector<double>& y_true,
               const std::vector<double>& y_pred, int num_classes) {
  KGPIP_CHECK(y_true.size() == y_pred.size());
  if (y_true.empty() || num_classes <= 0) return 0.0;
  std::vector<long> tp(num_classes, 0), fp(num_classes, 0),
      fn(num_classes, 0);
  std::vector<bool> present(num_classes, false);
  for (size_t i = 0; i < y_true.size(); ++i) {
    int t = static_cast<int>(std::lround(y_true[i]));
    int p = static_cast<int>(std::lround(y_pred[i]));
    t = std::clamp(t, 0, num_classes - 1);
    p = std::clamp(p, 0, num_classes - 1);
    present[t] = true;
    if (t == p) {
      ++tp[t];
    } else {
      ++fn[t];
      ++fp[p];
    }
  }
  double f1_sum = 0.0;
  int counted = 0;
  for (int c = 0; c < num_classes; ++c) {
    if (!present[c]) continue;  // macro over classes present in y_true
    double denom = 2.0 * tp[c] + fp[c] + fn[c];
    f1_sum += denom > 0.0 ? 2.0 * tp[c] / denom : 0.0;
    ++counted;
  }
  return counted > 0 ? f1_sum / counted : 0.0;
}

double R2Score(const std::vector<double>& y_true,
               const std::vector<double>& y_pred) {
  KGPIP_CHECK(y_true.size() == y_pred.size());
  if (y_true.size() < 2) return 0.0;
  double mean = 0.0;
  for (double v : y_true) mean += v;
  mean /= static_cast<double>(y_true.size());
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (size_t i = 0; i < y_true.size(); ++i) {
    ss_res += (y_true[i] - y_pred[i]) * (y_true[i] - y_pred[i]);
    ss_tot += (y_true[i] - mean) * (y_true[i] - mean);
  }
  if (ss_tot <= 0.0) return ss_res <= 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

double MeanSquaredError(const std::vector<double>& y_true,
                        const std::vector<double>& y_pred) {
  KGPIP_CHECK(y_true.size() == y_pred.size());
  if (y_true.empty()) return 0.0;
  double s = 0.0;
  for (size_t i = 0; i < y_true.size(); ++i) {
    s += (y_true[i] - y_pred[i]) * (y_true[i] - y_pred[i]);
  }
  return s / static_cast<double>(y_true.size());
}

double MeanAbsoluteError(const std::vector<double>& y_true,
                         const std::vector<double>& y_pred) {
  KGPIP_CHECK(y_true.size() == y_pred.size());
  if (y_true.empty()) return 0.0;
  double s = 0.0;
  for (size_t i = 0; i < y_true.size(); ++i) {
    s += std::fabs(y_true[i] - y_pred[i]);
  }
  return s / static_cast<double>(y_true.size());
}

}  // namespace kgpip::ml
