#include "ml/knn.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace kgpip::ml {

KnnLearner::KnnLearner(TaskType task, const HyperParams& params,
                       uint64_t seed)
    : task_(task),
      k_(params.GetInt("n_neighbors", 5)),
      distance_weighted_(params.GetStr("weights", "uniform") == "distance") {
  (void)seed;
}

Status KnnLearner::Fit(const LabeledData& data) {
  if (data.rows() == 0) return Status::InvalidArgument("empty dataset");
  num_classes_ = data.num_classes;
  const size_t n = data.rows();
  const size_t d = data.x.cols;
  feature_mean_.assign(d, 0.0);
  feature_std_.assign(d, 0.0);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < d; ++c) feature_mean_[c] += data.x.At(r, c);
  }
  for (double& m : feature_mean_) m /= static_cast<double>(n);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < d; ++c) {
      double diff = data.x.At(r, c) - feature_mean_[c];
      feature_std_[c] += diff * diff;
    }
  }
  for (double& s : feature_std_) {
    s = std::sqrt(s / static_cast<double>(n));
    if (s < 1e-9) s = 1.0;
  }
  train_x_ = FeatureMatrix(n, d);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < d; ++c) {
      train_x_.At(r, c) = (data.x.At(r, c) - feature_mean_[c]) /
                          feature_std_[c];
    }
  }
  train_y_ = data.y;
  fitted_ = true;
  return Status::Ok();
}

std::vector<double> KnnLearner::Predict(const FeatureMatrix& x) const {
  KGPIP_CHECK(fitted_);
  const size_t n = train_x_.rows;
  const size_t d = train_x_.cols;
  const size_t k = std::min<size_t>(static_cast<size_t>(std::max(1, k_)), n);
  std::vector<double> out(x.rows);
  std::vector<std::pair<double, size_t>> dists(n);
  std::vector<double> query(d);
  for (size_t q = 0; q < x.rows; ++q) {
    for (size_t c = 0; c < d; ++c) {
      query[c] = (x.At(q, c) - feature_mean_[c]) / feature_std_[c];
    }
    for (size_t r = 0; r < n; ++r) {
      const double* row = train_x_.Row(r);
      double s = 0.0;
      for (size_t c = 0; c < d; ++c) {
        double diff = query[c] - row[c];
        s += diff * diff;
      }
      dists[r] = {s, r};
    }
    std::partial_sort(dists.begin(), dists.begin() + k, dists.end());
    if (IsClassification(task_)) {
      std::vector<double> votes(static_cast<size_t>(num_classes_), 0.0);
      for (size_t i = 0; i < k; ++i) {
        double w = distance_weighted_
                       ? 1.0 / (std::sqrt(dists[i].first) + 1e-9)
                       : 1.0;
        votes[static_cast<size_t>(train_y_[dists[i].second])] += w;
      }
      size_t best = 0;
      for (size_t c = 1; c < votes.size(); ++c) {
        if (votes[c] > votes[best]) best = c;
      }
      out[q] = static_cast<double>(best);
    } else {
      double sum = 0.0;
      double weight = 0.0;
      for (size_t i = 0; i < k; ++i) {
        double w = distance_weighted_
                       ? 1.0 / (std::sqrt(dists[i].first) + 1e-9)
                       : 1.0;
        sum += w * train_y_[dists[i].second];
        weight += w;
      }
      out[q] = sum / weight;
    }
  }
  return out;
}

GaussianNbLearner::GaussianNbLearner(TaskType task, const HyperParams& params,
                                     uint64_t seed)
    : var_smoothing_(params.GetNum("var_smoothing", 1e-9)) {
  (void)seed;
  KGPIP_CHECK(IsClassification(task)) << "gaussian_nb is classification-only";
}

Status GaussianNbLearner::Fit(const LabeledData& data) {
  if (data.rows() == 0) return Status::InvalidArgument("empty dataset");
  num_classes_ = std::max(2, data.num_classes);
  num_features_ = data.x.cols;
  const size_t n = data.rows();
  const size_t kc = static_cast<size_t>(num_classes_);
  priors_.assign(kc, 0.0);
  means_.assign(kc * num_features_, 0.0);
  variances_.assign(kc * num_features_, 0.0);
  std::vector<double> counts(kc, 0.0);
  for (size_t r = 0; r < n; ++r) {
    size_t c = static_cast<size_t>(data.y[r]);
    counts[c] += 1.0;
    for (size_t f = 0; f < num_features_; ++f) {
      means_[c * num_features_ + f] += data.x.At(r, f);
    }
  }
  for (size_t c = 0; c < kc; ++c) {
    priors_[c] = counts[c] / static_cast<double>(n);
    if (counts[c] > 0.0) {
      for (size_t f = 0; f < num_features_; ++f) {
        means_[c * num_features_ + f] /= counts[c];
      }
    }
  }
  double max_var = 0.0;
  for (size_t r = 0; r < n; ++r) {
    size_t c = static_cast<size_t>(data.y[r]);
    for (size_t f = 0; f < num_features_; ++f) {
      double diff = data.x.At(r, f) - means_[c * num_features_ + f];
      variances_[c * num_features_ + f] += diff * diff;
    }
  }
  for (size_t c = 0; c < kc; ++c) {
    for (size_t f = 0; f < num_features_; ++f) {
      if (counts[c] > 0.0) variances_[c * num_features_ + f] /= counts[c];
      max_var = std::max(max_var, variances_[c * num_features_ + f]);
    }
  }
  const double eps = var_smoothing_ * std::max(max_var, 1.0);
  for (double& v : variances_) v += eps;
  fitted_ = true;
  return Status::Ok();
}

std::vector<double> GaussianNbLearner::Predict(const FeatureMatrix& x) const {
  KGPIP_CHECK(fitted_);
  std::vector<double> out(x.rows);
  const size_t kc = static_cast<size_t>(num_classes_);
  for (size_t r = 0; r < x.rows; ++r) {
    double best_score = -1e300;
    size_t best = 0;
    for (size_t c = 0; c < kc; ++c) {
      double score = priors_[c] > 0.0 ? std::log(priors_[c]) : -1e300;
      for (size_t f = 0; f < num_features_; ++f) {
        double var = variances_[c * num_features_ + f];
        double diff = x.At(r, f) - means_[c * num_features_ + f];
        score += -0.5 * std::log(2.0 * M_PI * var) -
                 diff * diff / (2.0 * var);
      }
      if (score > best_score) {
        best_score = score;
        best = c;
      }
    }
    out[r] = static_cast<double>(best);
  }
  return out;
}

}  // namespace kgpip::ml
