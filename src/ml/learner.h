#ifndef KGPIP_ML_LEARNER_H_
#define KGPIP_ML_LEARNER_H_

#include <memory>
#include <string>
#include <vector>

#include "ml/dataset.h"
#include "ml/hyperparams.h"
#include "util/status.h"

namespace kgpip::ml {

/// Base interface for every estimator (the library's equivalent of an
/// sklearn / XGBoost / LightGBM model).
class Learner {
 public:
  virtual ~Learner() = default;

  /// Trains on featurized data. Must be called before Predict.
  virtual Status Fit(const LabeledData& data) = 0;

  /// Predicts a class index (classification) or value (regression) per
  /// row. Precondition: a successful Fit.
  virtual std::vector<double> Predict(const FeatureMatrix& x) const = 0;

  /// Registry name, e.g. "xgboost".
  virtual std::string name() const = 0;
};

/// Capability record for one registered learner.
struct LearnerInfo {
  std::string name;
  bool supports_classification = false;
  bool supports_regression = false;
  /// Relative fit cost, used by cost-frugal optimizers (FLAML-style ECI).
  double relative_cost = 1.0;
};

/// All learners known to the library (stable order).
const std::vector<LearnerInfo>& LearnerRegistry();

/// True if `name` is registered and supports `task`.
bool LearnerSupports(const std::string& name, TaskType task);

/// Instantiates a learner by registry name. `params` carries
/// hyper-parameters; `seed` feeds any internal randomness.
Result<std::unique_ptr<Learner>> CreateLearner(const std::string& name,
                                               TaskType task,
                                               const HyperParams& params,
                                               uint64_t seed);

}  // namespace kgpip::ml

#endif  // KGPIP_ML_LEARNER_H_
