#ifndef KGPIP_ML_HYPERPARAMS_H_
#define KGPIP_ML_HYPERPARAMS_H_

#include <map>
#include <string>

#include "util/json.h"

namespace kgpip::ml {

/// A flat bag of named hyper-parameters (numeric or string). Learners read
/// the keys they understand and ignore the rest, so one bag can configure a
/// whole pipeline.
class HyperParams {
 public:
  HyperParams() = default;

  void SetNum(const std::string& key, double value) {
    numeric_[key] = value;
  }
  void SetStr(const std::string& key, std::string value) {
    strings_[key] = std::move(value);
  }

  double GetNum(const std::string& key, double fallback) const {
    auto it = numeric_.find(key);
    return it == numeric_.end() ? fallback : it->second;
  }
  int GetInt(const std::string& key, int fallback) const {
    auto it = numeric_.find(key);
    return it == numeric_.end() ? fallback : static_cast<int>(it->second);
  }
  std::string GetStr(const std::string& key,
                     const std::string& fallback) const {
    auto it = strings_.find(key);
    return it == strings_.end() ? fallback : it->second;
  }
  bool HasNum(const std::string& key) const { return numeric_.count(key); }
  bool HasStr(const std::string& key) const { return strings_.count(key); }

  const std::map<std::string, double>& numeric() const { return numeric_; }
  const std::map<std::string, std::string>& strings() const {
    return strings_;
  }

  Json ToJson() const {
    Json out = Json::Object();
    for (const auto& [k, v] : numeric_) out.Set(k, Json(v));
    for (const auto& [k, v] : strings_) out.Set(k, Json(v));
    return out;
  }

  /// Compact "k=v,k=v" rendering for logs and benchmark output.
  std::string ToString() const {
    std::string out;
    for (const auto& [k, v] : numeric_) {
      if (!out.empty()) out += ",";
      out += k + "=" + std::to_string(v);
    }
    for (const auto& [k, v] : strings_) {
      if (!out.empty()) out += ",";
      out += k + "=" + v;
    }
    return out;
  }

 private:
  std::map<std::string, double> numeric_;
  std::map<std::string, std::string> strings_;
};

}  // namespace kgpip::ml

#endif  // KGPIP_ML_HYPERPARAMS_H_
