#include "ml/pipeline.h"

#include "ml/metrics.h"
#include "util/string_util.h"

namespace kgpip::ml {

std::string PipelineSpec::ToString() const {
  std::string out;
  for (const std::string& p : preprocessors) {
    out += p;
    out += " -> ";
  }
  out += learner;
  std::string params_str = params.ToString();
  if (!params_str.empty()) out += " {" + params_str + "}";
  return out;
}

Status Pipeline::FitTransformersAndLearner(const LabeledData& train,
                                           uint64_t seed) {
  transformers_.clear();
  LabeledData current = train;
  uint64_t salt = 0;
  for (const std::string& name : spec_.preprocessors) {
    KGPIP_ASSIGN_OR_RETURN(
        std::unique_ptr<Transformer> transformer,
        CreateTransformer(name, spec_.params, seed + (++salt)));
    KGPIP_RETURN_IF_ERROR(transformer->Fit(current.x, &current.y));
    current.x = transformer->Transform(current.x);
    transformers_.push_back(std::move(transformer));
  }
  KGPIP_ASSIGN_OR_RETURN(std::unique_ptr<Learner> learner,
                         CreateLearner(spec_.learner, task_, spec_.params,
                                       seed));
  KGPIP_RETURN_IF_ERROR(learner->Fit(current));
  learner_ = std::move(learner);
  num_classes_ = current.num_classes;
  return Status::Ok();
}

Result<Pipeline> Pipeline::FitOnTable(const PipelineSpec& spec,
                                      const Table& train, TaskType task,
                                      uint64_t seed,
                                      FeaturizerOptions options) {
  Pipeline p;
  p.spec_ = spec;
  p.task_ = task;
  p.featurizer_ = std::make_shared<Featurizer>(options);
  KGPIP_RETURN_IF_ERROR(p.featurizer_->Fit(train, task));
  KGPIP_ASSIGN_OR_RETURN(LabeledData data, p.featurizer_->Transform(train));
  KGPIP_RETURN_IF_ERROR(p.FitTransformersAndLearner(data, seed));
  return p;
}

Result<Pipeline> Pipeline::FitOnData(const PipelineSpec& spec,
                                     const LabeledData& train, TaskType task,
                                     uint64_t seed) {
  Pipeline p;
  p.spec_ = spec;
  p.task_ = task;
  KGPIP_RETURN_IF_ERROR(p.FitTransformersAndLearner(train, seed));
  return p;
}

Result<std::vector<double>> Pipeline::PredictData(
    const FeatureMatrix& x) const {
  if (learner_ == nullptr) {
    return Status::FailedPrecondition("pipeline not fitted");
  }
  FeatureMatrix current = x;
  for (const auto& transformer : transformers_) {
    current = transformer->Transform(current);
  }
  return learner_->Predict(current);
}

Result<std::vector<double>> Pipeline::PredictTable(
    const Table& table) const {
  if (featurizer_ == nullptr) {
    return Status::FailedPrecondition(
        "pipeline was fitted on featurized data; use PredictData");
  }
  KGPIP_ASSIGN_OR_RETURN(FeatureMatrix x,
                         featurizer_->TransformFeatures(table));
  return PredictData(x);
}

Result<double> Pipeline::ScoreData(const LabeledData& test) const {
  KGPIP_ASSIGN_OR_RETURN(std::vector<double> pred, PredictData(test.x));
  if (IsClassification(task_)) {
    return MacroF1(test.y, pred,
                   std::max(test.num_classes, num_classes_));
  }
  return R2Score(test.y, pred);
}

Result<double> Pipeline::ScoreTable(const Table& test) const {
  if (featurizer_ == nullptr) {
    return Status::FailedPrecondition(
        "pipeline was fitted on featurized data; use ScoreData");
  }
  KGPIP_ASSIGN_OR_RETURN(LabeledData data, featurizer_->Transform(test));
  return ScoreData(data);
}

}  // namespace kgpip::ml
