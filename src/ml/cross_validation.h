#ifndef KGPIP_ML_CROSS_VALIDATION_H_
#define KGPIP_ML_CROSS_VALIDATION_H_

#include <vector>

#include "ml/pipeline.h"

namespace kgpip::ml {

/// Result of a k-fold evaluation.
struct CrossValResult {
  std::vector<double> fold_scores;
  double mean = 0.0;
  double stddev = 0.0;
};

/// Stratification-free k-fold cross validation of a pipeline spec on a
/// raw table: featurization is refit inside every fold (no leakage).
/// Scores are macro-F1 / R² by task.
Result<CrossValResult> CrossValidate(const PipelineSpec& spec,
                                     const Table& table, TaskType task,
                                     int folds, uint64_t seed);

}  // namespace kgpip::ml

#endif  // KGPIP_ML_CROSS_VALIDATION_H_
