#ifndef KGPIP_ML_FEATURIZER_H_
#define KGPIP_ML_FEATURIZER_H_

#include <map>
#include <string>
#include <vector>

#include "data/table.h"
#include "ml/dataset.h"
#include "util/status.h"

namespace kgpip::ml {

/// Options for automatic dataset preparation (paper §3.6: "KGpip applies
/// different preprocessing techniques on the given dataset (D) and
/// produces a pre-processed dataset (D')").
struct FeaturizerOptions {
  /// Dimensionality of the hashed text embedding per text column.
  int text_dims = 32;
  /// Weight text token counts by inverse document frequency.
  bool text_tfidf = true;
  /// Categorical levels beyond this cap collapse into an "other" bucket.
  int max_one_hot = 16;
  /// Impute numerics with the median (otherwise mean).
  bool median_impute = true;
};

/// Turns typed Tables into dense numeric LabeledData:
///   - numeric columns: missing values imputed (median/mean)
///   - categorical columns: one-hot with rare-level collapsing, missing as
///     its own level
///   - text columns: hashed bag-of-words with optional tf-idf weighting
///     (the paper's "vectoring textual columns using word embeddings")
///   - target: class-name dictionary (classification) or raw value
/// Fit on the training split; Transform applies the frozen encoding.
class Featurizer {
 public:
  explicit Featurizer(FeaturizerOptions options = {})
      : options_(options) {}

  /// Learns the encoding from `train`. `task` fixes target handling.
  Status Fit(const Table& train, TaskType task);

  /// Encodes features + target. Unseen class labels map to class 0.
  Result<LabeledData> Transform(const Table& table) const;

  /// Encodes features only (no target required).
  Result<FeatureMatrix> TransformFeatures(const Table& table) const;

  TaskType task() const { return task_; }
  int num_classes() const { return static_cast<int>(class_names_.size()); }
  const std::vector<std::string>& class_names() const { return class_names_; }
  size_t output_dims() const { return output_dims_; }
  bool fitted() const { return fitted_; }

 private:
  struct ColumnPlan {
    std::string name;
    ColumnType type = ColumnType::kNumeric;
    // Numeric: imputation value.
    double impute_value = 0.0;
    // Categorical: level -> one-hot slot; slot `levels.size()` is "other".
    std::map<std::string, size_t> levels;
    // Text: idf per hash bucket.
    std::vector<double> idf;
    size_t first_output = 0;
    size_t width = 0;
  };

  void EncodeRow(const Table& table,
                 const std::vector<size_t>& column_indices, size_t row,
                 double* out) const;

  FeaturizerOptions options_;
  TaskType task_ = TaskType::kBinaryClassification;
  std::vector<ColumnPlan> plans_;
  std::vector<std::string> class_names_;
  size_t output_dims_ = 0;
  bool fitted_ = false;
};

}  // namespace kgpip::ml

#endif  // KGPIP_ML_FEATURIZER_H_
