#include "ml/gbdt.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"

namespace kgpip::ml {

namespace {

struct Preset {
  int n_estimators;
  double learning_rate;
  int max_depth;
  double subsample;
  double colsample;
};

Preset PresetFor(const std::string& registry_name) {
  if (registry_name == "xgboost") {
    return {40, 0.25, 6, 1.0, 0.8};
  }
  if (registry_name == "lgbm") {
    return {60, 0.15, 5, 0.9, 1.0};
  }
  return {40, 0.1, 3, 1.0, 1.0};  // gradient_boosting
}

}  // namespace

GbdtLearner::GbdtLearner(std::string registry_name, TaskType task,
                         const HyperParams& params, uint64_t seed)
    : registry_name_(std::move(registry_name)), task_(task), rng_(seed) {
  Preset preset = PresetFor(registry_name_);
  n_estimators_ = params.GetInt("n_estimators", preset.n_estimators);
  learning_rate_ = params.GetNum("learning_rate", preset.learning_rate);
  subsample_ = params.GetNum("subsample", preset.subsample);
  tree_params_.max_depth = params.GetInt("max_depth", preset.max_depth);
  tree_params_.min_samples_leaf = params.GetInt("min_samples_leaf", 3);
  tree_params_.min_samples_split = 2 * tree_params_.min_samples_leaf;
  tree_params_.max_features = params.GetNum("colsample", preset.colsample);
  tree_params_.lambda = params.GetNum("lambda", 1.0);
}

Status GbdtLearner::Fit(const LabeledData& data) {
  if (data.rows() == 0) return Status::InvalidArgument("empty dataset");
  const size_t n = data.rows();
  num_classes_ = data.num_classes;
  trees_.clear();
  rounds_used_ = 0;

  const bool classification = IsClassification(task_);
  score_dims_ = classification ? std::max(2, num_classes_) : 1;

  // Base score: log-odds-free zero init for classification, mean target
  // for regression.
  if (classification) {
    base_score_ = 0.0;
  } else {
    base_score_ = 0.0;
    for (double v : data.y) base_score_ += v;
    base_score_ /= static_cast<double>(n);
  }

  // Running scores per row (and per class for classification).
  std::vector<double> scores(n * static_cast<size_t>(score_dims_),
                             classification ? 0.0 : base_score_);
  std::vector<double> grad(n);
  std::vector<double> hess(n);
  std::vector<double> probs(static_cast<size_t>(score_dims_));

  for (int round = 0; round < n_estimators_; ++round) {
    // Row subsample for this round.
    std::vector<size_t> rows;
    rows.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      if (subsample_ >= 1.0 || rng_.Bernoulli(subsample_)) {
        rows.push_back(i);
      }
    }
    if (rows.empty()) rows.push_back(rng_.UniformInt(n));

    if (classification) {
      for (int k = 0; k < score_dims_; ++k) {
        // Softmax gradients for class k.
        for (size_t i = 0; i < n; ++i) {
          const double* s =
              scores.data() + i * static_cast<size_t>(score_dims_);
          double max_s = s[0];
          for (int c = 1; c < score_dims_; ++c) {
            max_s = std::max(max_s, s[c]);
          }
          double z = 0.0;
          for (int c = 0; c < score_dims_; ++c) {
            probs[c] = std::exp(s[c] - max_s);
            z += probs[c];
          }
          double p = probs[k] / z;
          double y = static_cast<int>(data.y[i]) == k ? 1.0 : 0.0;
          grad[i] = p - y;
          hess[i] = std::max(p * (1.0 - p), 1e-6);
        }
        Tree tree =
            FitGradientTree(data.x, grad, hess, rows, tree_params_, &rng_);
        for (size_t i = 0; i < n; ++i) {
          scores[i * static_cast<size_t>(score_dims_) +
                 static_cast<size_t>(k)] +=
              learning_rate_ * tree.Evaluate(data.x.Row(i));
        }
        trees_.push_back(std::move(tree));
      }
    } else {
      for (size_t i = 0; i < n; ++i) {
        grad[i] = scores[i] - data.y[i];
        hess[i] = 1.0;
      }
      Tree tree =
          FitGradientTree(data.x, grad, hess, rows, tree_params_, &rng_);
      for (size_t i = 0; i < n; ++i) {
        scores[i] += learning_rate_ * tree.Evaluate(data.x.Row(i));
      }
      trees_.push_back(std::move(tree));
    }
    ++rounds_used_;
  }
  fitted_ = true;
  return Status::Ok();
}

std::vector<double> GbdtLearner::ScoreRow(const double* row) const {
  std::vector<double> s(static_cast<size_t>(score_dims_),
                        IsClassification(task_) ? 0.0 : base_score_);
  size_t tree_index = 0;
  for (int round = 0; round < rounds_used_; ++round) {
    for (int k = 0; k < (IsClassification(task_) ? score_dims_ : 1); ++k) {
      s[static_cast<size_t>(k)] +=
          learning_rate_ * trees_[tree_index].Evaluate(row);
      ++tree_index;
    }
  }
  return s;
}

std::vector<double> GbdtLearner::Predict(const FeatureMatrix& x) const {
  KGPIP_CHECK(fitted_);
  std::vector<double> out(x.rows);
  for (size_t r = 0; r < x.rows; ++r) {
    std::vector<double> s = ScoreRow(x.Row(r));
    if (IsClassification(task_)) {
      size_t best = 0;
      for (size_t c = 1; c < s.size(); ++c) {
        if (s[c] > s[best]) best = c;
      }
      out[r] = static_cast<double>(best);
    } else {
      out[r] = s[0];
    }
  }
  return out;
}

}  // namespace kgpip::ml
