#include "ml/tree.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"

namespace kgpip::ml {

double Tree::Evaluate(const double* row) const {
  if (nodes_.empty()) return 0.0;
  int idx = 0;
  while (nodes_[idx].feature >= 0) {
    const TreeNode& n = nodes_[idx];
    idx = row[n.feature] <= n.threshold ? n.left : n.right;
  }
  return nodes_[idx].value;
}

namespace {

/// Chooses the feature subset scanned at one split.
std::vector<int> SampleFeatures(size_t num_features, double max_features,
                                Rng* rng) {
  std::vector<int> all(num_features);
  std::iota(all.begin(), all.end(), 0);
  if (max_features <= 0.0 || max_features >= 1.0) return all;
  size_t keep = std::max<size_t>(
      1, static_cast<size_t>(std::lround(
             max_features * static_cast<double>(num_features))));
  rng->Shuffle(all);
  all.resize(keep);
  return all;
}

struct GradientSplit {
  int feature = -1;
  double threshold = 0.0;
  double gain = 0.0;
  std::vector<size_t> left_rows;
  std::vector<size_t> right_rows;
};

double LeafObjective(double sum_g, double sum_h, double lambda) {
  return sum_g * sum_g / (sum_h + lambda);
}

/// Builder state shared across the recursion for gradient trees.
struct GradientBuilder {
  const FeatureMatrix* x;
  const std::vector<double>* grad;
  const std::vector<double>* hess;
  TreeParams params;
  Rng* rng;
  std::vector<TreeNode>* nodes;

  int Build(const std::vector<size_t>& rows, int depth) {
    double sum_g = 0.0;
    double sum_h = 0.0;
    for (size_t r : rows) {
      sum_g += (*grad)[r];
      sum_h += (*hess)[r];
    }
    const double leaf_value = -sum_g / (sum_h + params.lambda);
    const bool can_split =
        depth < params.max_depth &&
        rows.size() >= static_cast<size_t>(params.min_samples_split);
    GradientSplit best;
    if (can_split) best = FindSplit(rows, sum_g, sum_h);
    int node_index = static_cast<int>(nodes->size());
    nodes->push_back(TreeNode{});
    if (best.feature < 0) {
      (*nodes)[node_index].value = leaf_value;
      return node_index;
    }
    (*nodes)[node_index].feature = best.feature;
    (*nodes)[node_index].threshold = best.threshold;
    int left = Build(best.left_rows, depth + 1);
    int right = Build(best.right_rows, depth + 1);
    (*nodes)[node_index].left = left;
    (*nodes)[node_index].right = right;
    return node_index;
  }

  GradientSplit FindSplit(const std::vector<size_t>& rows, double sum_g,
                          double sum_h) {
    GradientSplit best;
    const double parent_obj =
        LeafObjective(sum_g, sum_h, params.lambda);
    std::vector<int> features =
        SampleFeatures(x->cols, params.max_features, rng);
    const size_t min_leaf = static_cast<size_t>(params.min_samples_leaf);
    std::vector<std::pair<double, size_t>> sorted;
    sorted.reserve(rows.size());
    for (int f : features) {
      sorted.clear();
      for (size_t r : rows) sorted.emplace_back(x->At(r, f), r);
      std::sort(sorted.begin(), sorted.end());
      if (sorted.front().first == sorted.back().first) continue;
      if (params.random_thresholds) {
        double lo = sorted.front().first;
        double hi = sorted.back().first;
        double threshold = rng->Uniform(lo, hi);
        double left_g = 0.0;
        double left_h = 0.0;
        size_t left_count = 0;
        for (const auto& [v, r] : sorted) {
          if (v <= threshold) {
            left_g += (*grad)[r];
            left_h += (*hess)[r];
            ++left_count;
          }
        }
        if (left_count < min_leaf || rows.size() - left_count < min_leaf) {
          continue;
        }
        double gain = LeafObjective(left_g, left_h, params.lambda) +
                      LeafObjective(sum_g - left_g, sum_h - left_h,
                                    params.lambda) -
                      parent_obj;
        if (gain > best.gain) {
          best.gain = gain;
          best.feature = f;
          best.threshold = threshold;
        }
      } else {
        double left_g = 0.0;
        double left_h = 0.0;
        for (size_t i = 0; i + 1 < sorted.size(); ++i) {
          left_g += (*grad)[sorted[i].second];
          left_h += (*hess)[sorted[i].second];
          if (sorted[i].first == sorted[i + 1].first) continue;
          size_t left_count = i + 1;
          if (left_count < min_leaf ||
              sorted.size() - left_count < min_leaf) {
            continue;
          }
          double gain = LeafObjective(left_g, left_h, params.lambda) +
                        LeafObjective(sum_g - left_g, sum_h - left_h,
                                      params.lambda) -
                        parent_obj;
          if (gain > best.gain) {
            best.gain = gain;
            best.feature = f;
            best.threshold =
                0.5 * (sorted[i].first + sorted[i + 1].first);
          }
        }
      }
    }
    if (best.feature >= 0) {
      for (size_t r : rows) {
        if (x->At(r, best.feature) <= best.threshold) {
          best.left_rows.push_back(r);
        } else {
          best.right_rows.push_back(r);
        }
      }
      if (best.left_rows.size() < min_leaf ||
          best.right_rows.size() < min_leaf) {
        best.feature = -1;
      }
    }
    return best;
  }
};

/// Builder for Gini classification trees.
struct GiniBuilder {
  const FeatureMatrix* x;
  const std::vector<double>* y;
  int num_classes;
  TreeParams params;
  Rng* rng;
  std::vector<TreeNode>* nodes;

  static double Gini(const std::vector<double>& counts, double total) {
    if (total <= 0.0) return 0.0;
    double g = 1.0;
    for (double c : counts) {
      double p = c / total;
      g -= p * p;
    }
    return g;
  }

  int Build(const std::vector<size_t>& rows, int depth) {
    std::vector<double> counts(num_classes, 0.0);
    for (size_t r : rows) {
      counts[static_cast<size_t>((*y)[r])] += 1.0;
    }
    int majority = 0;
    bool pure = false;
    for (int c = 1; c < num_classes; ++c) {
      if (counts[c] > counts[majority]) majority = c;
    }
    pure = counts[majority] == static_cast<double>(rows.size());
    int node_index = static_cast<int>(nodes->size());
    nodes->push_back(TreeNode{});
    const bool can_split =
        !pure && depth < params.max_depth &&
        rows.size() >= static_cast<size_t>(params.min_samples_split);
    if (can_split) {
      auto [feature, threshold, gain] = FindSplit(rows, counts);
      if (feature >= 0 && gain > 1e-12) {
        std::vector<size_t> left_rows, right_rows;
        for (size_t r : rows) {
          if (x->At(r, feature) <= threshold) {
            left_rows.push_back(r);
          } else {
            right_rows.push_back(r);
          }
        }
        const size_t min_leaf =
            static_cast<size_t>(params.min_samples_leaf);
        if (left_rows.size() >= min_leaf &&
            right_rows.size() >= min_leaf) {
          (*nodes)[node_index].feature = feature;
          (*nodes)[node_index].threshold = threshold;
          int left = Build(left_rows, depth + 1);
          int right = Build(right_rows, depth + 1);
          (*nodes)[node_index].left = left;
          (*nodes)[node_index].right = right;
          return node_index;
        }
      }
    }
    (*nodes)[node_index].value = static_cast<double>(majority);
    return node_index;
  }

  std::tuple<int, double, double> FindSplit(
      const std::vector<size_t>& rows, const std::vector<double>& counts) {
    const double total = static_cast<double>(rows.size());
    const double parent_gini = Gini(counts, total);
    int best_feature = -1;
    double best_threshold = 0.0;
    double best_gain = 0.0;
    std::vector<int> features =
        SampleFeatures(x->cols, params.max_features, rng);
    std::vector<std::pair<double, size_t>> sorted;
    std::vector<double> left_counts(num_classes, 0.0);
    const size_t min_leaf = static_cast<size_t>(params.min_samples_leaf);
    for (int f : features) {
      sorted.clear();
      for (size_t r : rows) sorted.emplace_back(x->At(r, f), r);
      std::sort(sorted.begin(), sorted.end());
      if (sorted.front().first == sorted.back().first) continue;
      std::fill(left_counts.begin(), left_counts.end(), 0.0);
      if (params.random_thresholds) {
        double threshold =
            rng->Uniform(sorted.front().first, sorted.back().first);
        double left_total = 0.0;
        for (const auto& [v, r] : sorted) {
          if (v <= threshold) {
            left_counts[static_cast<size_t>((*y)[r])] += 1.0;
            left_total += 1.0;
          }
        }
        if (left_total < static_cast<double>(min_leaf) ||
            total - left_total < static_cast<double>(min_leaf)) {
          continue;
        }
        std::vector<double> right_counts(num_classes);
        for (int c = 0; c < num_classes; ++c) {
          right_counts[c] = counts[c] - left_counts[c];
        }
        double gain = parent_gini -
                      (left_total / total) * Gini(left_counts, left_total) -
                      ((total - left_total) / total) *
                          Gini(right_counts, total - left_total);
        if (gain > best_gain) {
          best_gain = gain;
          best_feature = f;
          best_threshold = threshold;
        }
      } else {
        double left_total = 0.0;
        for (size_t i = 0; i + 1 < sorted.size(); ++i) {
          left_counts[static_cast<size_t>((*y)[sorted[i].second])] += 1.0;
          left_total += 1.0;
          if (sorted[i].first == sorted[i + 1].first) continue;
          if (left_total < static_cast<double>(min_leaf) ||
              total - left_total < static_cast<double>(min_leaf)) {
            continue;
          }
          double right_total = total - left_total;
          double left_gini = Gini(left_counts, left_total);
          double right_gini = 1.0;
          {
            double g = 1.0;
            for (int c = 0; c < num_classes; ++c) {
              double p = (counts[c] - left_counts[c]) / right_total;
              g -= p * p;
            }
            right_gini = g;
          }
          double gain = parent_gini -
                        (left_total / total) * left_gini -
                        (right_total / total) * right_gini;
          if (gain > best_gain) {
            best_gain = gain;
            best_feature = f;
            best_threshold =
                0.5 * (sorted[i].first + sorted[i + 1].first);
          }
        }
      }
    }
    return {best_feature, best_threshold, best_gain};
  }
};

}  // namespace

Tree FitGradientTree(const FeatureMatrix& x, const std::vector<double>& grad,
                     const std::vector<double>& hess,
                     const std::vector<size_t>& rows,
                     const TreeParams& params, Rng* rng) {
  KGPIP_CHECK(grad.size() == x.rows && hess.size() == x.rows);
  Tree tree;
  if (rows.empty()) return tree;
  GradientBuilder builder{&x, &grad, &hess, params, rng,
                          &tree.mutable_nodes()};
  builder.Build(rows, 0);
  return tree;
}

Tree FitClassificationTree(const FeatureMatrix& x,
                           const std::vector<double>& y, int num_classes,
                           const std::vector<size_t>& rows,
                           const TreeParams& params, Rng* rng) {
  KGPIP_CHECK(y.size() == x.rows);
  Tree tree;
  if (rows.empty()) return tree;
  GiniBuilder builder{&x, &y, num_classes, params, rng,
                      &tree.mutable_nodes()};
  builder.Build(rows, 0);
  return tree;
}

DecisionTreeLearner::DecisionTreeLearner(TaskType task,
                                         const HyperParams& params,
                                         uint64_t seed)
    : task_(task), rng_(seed) {
  tree_params_.max_depth = params.GetInt("max_depth", 10);
  tree_params_.min_samples_leaf = params.GetInt("min_samples_leaf", 2);
  tree_params_.min_samples_split =
      params.GetInt("min_samples_split",
                    2 * tree_params_.min_samples_leaf);
  tree_params_.max_features = params.GetNum("max_features", 1.0);
}

Status DecisionTreeLearner::Fit(const LabeledData& data) {
  if (data.rows() == 0) return Status::InvalidArgument("empty dataset");
  std::vector<size_t> rows(data.rows());
  std::iota(rows.begin(), rows.end(), 0);
  if (IsClassification(task_)) {
    tree_ = FitClassificationTree(data.x, data.y, data.num_classes, rows,
                                  tree_params_, &rng_);
  } else {
    // Least-squares regression tree: g = -y, h = 1 gives mean leaves.
    std::vector<double> grad(data.rows());
    std::vector<double> hess(data.rows(), 1.0);
    for (size_t i = 0; i < data.rows(); ++i) grad[i] = -data.y[i];
    TreeParams p = tree_params_;
    p.lambda = 0.0;
    tree_ = FitGradientTree(data.x, grad, hess, rows, p, &rng_);
  }
  fitted_ = true;
  return Status::Ok();
}

std::vector<double> DecisionTreeLearner::Predict(
    const FeatureMatrix& x) const {
  KGPIP_CHECK(fitted_);
  std::vector<double> out(x.rows);
  for (size_t r = 0; r < x.rows; ++r) out[r] = tree_.Evaluate(x.Row(r));
  return out;
}

}  // namespace kgpip::ml
