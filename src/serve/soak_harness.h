#ifndef KGPIP_SERVE_SOAK_HARNESS_H_
#define KGPIP_SERVE_SOAK_HARNESS_H_

#include <cstdint>
#include <string>

#include "serve/server.h"
#include "util/fault.h"
#include "util/json.h"

namespace kgpip::serve {

/// Chaos-soak configuration. The defaults finish in a few seconds so the
/// harness can run inside ctest; CI's chaos job stretches
/// `duration_seconds` (KGPIP_SOAK_SECONDS) to a real soak.
struct SoakOptions {
  int num_tenants = 4;
  double duration_seconds = 5.0;
  /// Distinct synthetic datasets shared by all tenants. Small pools mean
  /// many repeated digests, i.e. heavy cache traffic.
  int num_datasets = 3;
  double request_deadline_seconds = 10.0;
  int max_trials = 4;
  /// Fraction of requests submitted with a broken table (no target
  /// column) so server-side failures and tenant breakers get exercised.
  double poison_fraction = 0.0;
  /// Installs a ScopedFaultInjection around the run (must not already be
  /// inside one — scopes do not nest).
  bool inject_faults = false;
  util::FaultConfig fault_config;
  /// Pause between a tenant's submissions; 0 hammers as fast as the
  /// previous future resolves.
  double think_time_seconds = 0.0;
  uint64_t seed = 42;
};

/// What the soak observed. The robustness contract under test:
/// `stuck == 0` (every accepted request produced a definite Status within
/// deadline + grace) and `indefinite == 0` (no response ever carried a
/// default-constructed / meaningless status).
struct SoakSummary {
  int64_t submitted = 0;
  int64_t ok = 0;
  int64_t shed = 0;          // kResourceExhausted refusals and cancels
  int64_t failed = 0;        // other error statuses
  int64_t cache_hits = 0;
  int64_t degraded = 0;      // served at rung >= 1
  int64_t stuck = 0;         // future not ready within deadline + grace
  double p50_latency_seconds = 0.0;
  double p99_latency_seconds = 0.0;
  double max_latency_seconds = 0.0;

  Json ToJson() const;
  std::string ToString() const;
};

/// Drives N synthetic tenants against a running Server for a fixed wall
/// clock, mixing repeated datasets (cache hits), fresh fits, optional
/// poison requests, and optional injected faults — then audits that the
/// daemon's robustness contract held.
class SoakHarness {
 public:
  SoakHarness(Server* server, SoakOptions options);

  /// Runs the soak. Fails (kInternal) iff the contract was violated:
  /// a stuck request, or a latency past deadline + grace.
  Result<SoakSummary> Run();

 private:
  Server* server_;
  SoakOptions options_;
};

}  // namespace kgpip::serve

#endif  // KGPIP_SERVE_SOAK_HARNESS_H_
