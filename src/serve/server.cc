#include "serve/server.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "nn/simd_kernels.h"
#include "obs/metrics.h"
#include "obs/sliding_window.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/request_context.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace kgpip::serve {

namespace {

// The three Env readers below run once, from FromEnv() at daemon startup
// before any worker thread exists, and the environment is never mutated.
double EnvDouble(const char* name, double fallback) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe) -- startup-time getenv, see above.
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  double value = 0.0;
  return ParseDouble(raw, &value) ? value : fallback;
}

int64_t EnvInt(const char* name, int64_t fallback) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe) -- startup-time getenv, see above.
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  int64_t value = 0;
  return ParseInt64(raw, &value) ? value : fallback;
}

std::string EnvStr(const char* name, std::string fallback) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe) -- startup-time getenv, see above.
  const char* raw = std::getenv(name);
  return raw == nullptr ? fallback : std::string(raw);
}

obs::Counter* ServeCounter(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name);
}

constexpr int kWindowSlices = 6;

const char* CacheTierName(int tier) {
  switch (tier) {
    case 1:
      return "result";
    case 2:
      return "query";
    default:
      return "none";
  }
}

}  // namespace

ServeOptions ServeOptions::FromEnv() {
  ServeOptions o;
  o.num_workers = static_cast<int>(
      EnvInt("KGPIP_SERVE_WORKERS", o.num_workers));
  o.max_queue_depth = static_cast<size_t>(std::max<int64_t>(
      1, EnvInt("KGPIP_SERVE_QUEUE_DEPTH",
                static_cast<int64_t>(o.max_queue_depth))));
  o.default_deadline_seconds =
      EnvDouble("KGPIP_SERVE_DEADLINE_SECONDS", o.default_deadline_seconds);
  o.grace_seconds = EnvDouble("KGPIP_SERVE_GRACE_SECONDS", o.grace_seconds);
  o.tenant_tokens_per_second =
      EnvDouble("KGPIP_SERVE_TENANT_RATE", o.tenant_tokens_per_second);
  o.tenant_burst_tokens =
      EnvDouble("KGPIP_SERVE_TENANT_BURST", o.tenant_burst_tokens);
  o.breaker_threshold = static_cast<int>(
      EnvInt("KGPIP_SERVE_BREAKER_THRESHOLD", o.breaker_threshold));
  o.breaker_cooldown_seconds =
      EnvDouble("KGPIP_SERVE_BREAKER_COOLDOWN", o.breaker_cooldown_seconds);
  o.degrade_queue_depth = static_cast<size_t>(std::max<int64_t>(
      1, EnvInt("KGPIP_SERVE_DEGRADE_DEPTH",
                static_cast<int64_t>(o.degrade_queue_depth))));
  o.max_trials =
      static_cast<int>(EnvInt("KGPIP_SERVE_MAX_TRIALS", o.max_trials));
  o.cache_dir = EnvStr("KGPIP_SERVE_CACHE_DIR", o.cache_dir);
  o.cache_memory_entries = static_cast<size_t>(std::max<int64_t>(
      1, EnvInt("KGPIP_SERVE_CACHE_ENTRIES",
                static_cast<int64_t>(o.cache_memory_entries))));
  o.audit_log_path = EnvStr("KGPIP_SERVE_AUDIT_LOG", o.audit_log_path);
  o.audit_max_bytes = static_cast<size_t>(std::max<int64_t>(
      1024, EnvInt("KGPIP_SERVE_AUDIT_MAX_BYTES",
                   static_cast<int64_t>(o.audit_max_bytes))));
  o.audit_ring_entries = static_cast<size_t>(std::max<int64_t>(
      1, EnvInt("KGPIP_SERVE_AUDIT_RING",
                static_cast<int64_t>(o.audit_ring_entries))));
  o.window_seconds =
      std::max(0.1, EnvDouble("KGPIP_SERVE_WINDOW_SECONDS", o.window_seconds));
  o.slo_target_seconds =
      std::max(0.0, EnvDouble("KGPIP_SERVE_SLO_TARGET", o.slo_target_seconds));
  return o;
}

Json SpecToJson(const ml::PipelineSpec& spec) {
  Json out = Json::Object();
  Json pre = Json::Array();
  for (const std::string& p : spec.preprocessors) pre.Append(p);
  out.Set("preprocessors", std::move(pre));
  out.Set("learner", spec.learner);
  Json num = Json::Object();
  for (const auto& [k, v] : spec.params.numeric()) num.Set(k, v);
  out.Set("params_num", std::move(num));
  Json str = Json::Object();
  for (const auto& [k, v] : spec.params.strings()) str.Set(k, v);
  out.Set("params_str", std::move(str));
  return out;
}

Result<ml::PipelineSpec> SpecFromJson(const Json& json) {
  if (!json.is_object() || !json.Get("learner").is_string()) {
    return Status::ParseError("pipeline spec JSON lacks a learner");
  }
  ml::PipelineSpec spec;
  spec.learner = json.Get("learner").AsString();
  for (const Json& p : json.Get("preprocessors").items()) {
    if (!p.is_string()) {
      return Status::ParseError("non-string preprocessor in spec JSON");
    }
    spec.preprocessors.push_back(p.AsString());
  }
  for (const auto& [k, v] : json.Get("params_num").members()) {
    if (!v.is_number()) {
      return Status::ParseError("non-numeric hyper-parameter '" + k + "'");
    }
    spec.params.SetNum(k, v.AsDouble());
  }
  for (const auto& [k, v] : json.Get("params_str").members()) {
    if (!v.is_string()) {
      return Status::ParseError("non-string hyper-parameter '" + k + "'");
    }
    spec.params.SetStr(k, v.AsString());
  }
  return spec;
}

std::string Server::ResultCacheKey(uint64_t digest, TaskType task,
                                   int max_trials) {
  return StrFormat("result-%016llx-%s-t%d",
                   static_cast<unsigned long long>(digest),
                   TaskTypeName(task), max_trials);
}

std::string Server::QueryCacheKey(uint64_t digest) {
  return StrFormat("query-%016llx", static_cast<unsigned long long>(digest));
}

Server::Server(const core::Kgpip* model, ServeOptions options)
    : model_(model),
      options_(options),
      cache_(ArtifactCache::Options{options.cache_dir,
                                    options.cache_memory_entries}),
      audit_(AuditLog::Options{options.audit_log_path,
                               options.audit_max_bytes,
                               options.audit_ring_entries}) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (model_ == nullptr || !model_->trained()) {
    return Status::FailedPrecondition(
        "kgpip-serve needs a trained model (Train or LoadFile first)");
  }
  util::MutexLock lock(mu_);
  if (started_) return Status::FailedPrecondition("server already started");
  started_ = true;
  const int workers = std::max(1, options_.num_workers);
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
  watchdog_ = std::thread([this] { WatchdogLoop(); });
  return Status::Ok();
}

void Server::Respond(const std::shared_ptr<Pending>& pending,
                     ServeResponse response) {
  // Worker and watchdog can race to resolve one request; first wins.
  if (pending->responded.exchange(true, std::memory_order_acq_rel)) return;
  response.latency_seconds = pending->admitted.ElapsedSeconds();
  response.request_id = pending->id;
  pending->state.store(RequestState::kDone, std::memory_order_release);

  // The winner writes the request's life story — audit line + windowed
  // samples — BEFORE resolving the promise, so a caller that observes
  // its future ready also observes its own audit record. No server lock
  // is held here; audit (rank 95) and window (rank 15) locks are leaves
  // from this path.
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  const double latency = response.latency_seconds;
  const int64_t total_micros = static_cast<int64_t>(latency * 1e6);
  const int64_t queued_micros =
      pending->queue_wait_micros.load(std::memory_order_acquire);

  AuditRecord record;
  record.request_id = pending->id;
  record.tenant = pending->request.tenant;
  record.table_digest = pending->digest;
  // A request that never reached a worker spent its whole life queued.
  record.queue_wait_micros = queued_micros >= 0 ? queued_micros : total_micros;
  record.run_micros = std::max<int64_t>(0, total_micros -
                                               record.queue_wait_micros);
  record.total_micros = total_micros;
  record.degradation_level = response.degradation_level;
  record.cache_tier =
      CacheTierName(pending->cache_tier.load(std::memory_order_acquire));
  record.breaker_half_open = pending->breaker_half_open;
  record.bucket_tokens = pending->bucket_tokens;
  record.retries = response.status.ok() ? response.result.report.total_retries
                                        : 0;
  record.outcome = response.status.code();
  if (!response.status.ok()) record.detail = response.status.message();
  audit_.Append(record);

  metrics
      .GetSlidingHistogram("serve.window.latency_seconds." + record.tenant,
                           options_.window_seconds, kWindowSlices)
      ->Record(latency);
  metrics
      .GetSlidingCounter("serve.window.requests", options_.window_seconds,
                         kWindowSlices)
      ->Add(1);
  if (response.status.code() == StatusCode::kResourceExhausted) {
    metrics
        .GetSlidingCounter("serve.window.sheds", options_.window_seconds,
                           kWindowSlices)
        ->Add(1);
  }
  if (response.cache_hit) {
    metrics
        .GetSlidingCounter("serve.window.cache_hits", options_.window_seconds,
                           kWindowSlices)
        ->Add(1);
  }

  pending->promise.set_value(std::move(response));
}

Status Server::AdmitLocked(Pending& pending) {
  const FitRequest& request = pending.request;
  if (draining_.load(std::memory_order_acquire) ||
      stopping_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("server is draining; not admitting");
  }
  TenantState& tenant = tenants_[request.tenant];

  if (tenant.breaker_open) {
    if (tenant.breaker_opened.ElapsedSeconds() <
        options_.breaker_cooldown_seconds) {
      return Status::ResourceExhausted(
          "tenant '" + request.tenant +
          "' circuit breaker is open (cooling down)");
    }
    // Half-open: admit one probe. One more failure re-opens immediately.
    tenant.breaker_open = false;
    tenant.consecutive_failures = std::max(0, options_.breaker_threshold - 1);
    pending.breaker_half_open = true;
  }

  if (options_.tenant_tokens_per_second > 0.0) {
    if (!tenant.bucket_started) {
      tenant.bucket_started = true;
      tenant.tokens = options_.tenant_burst_tokens;
      tenant.since_refill.Reset();
    }
    tenant.tokens = std::min(
        options_.tenant_burst_tokens,
        tenant.tokens + tenant.since_refill.ElapsedSeconds() *
                            options_.tenant_tokens_per_second);
    tenant.since_refill.Reset();
    if (tenant.tokens < 1.0) {
      pending.bucket_tokens = tenant.tokens;
      return Status::ResourceExhausted(
          "tenant '" + request.tenant + "' is over its request budget");
    }
    tenant.tokens -= 1.0;
    pending.bucket_tokens = tenant.tokens;  // balance after paying admission
  }

  if (queue_.size() >= options_.max_queue_depth) {
    return Status::ResourceExhausted(StrFormat(
        "request queue is full (%d queued); load shed",
        static_cast<int>(queue_.size())));
  }
  return Status::Ok();
}

std::future<ServeResponse> Server::Submit(FitRequest request) {
  static obs::Counter* submitted = ServeCounter("serve.requests");
  static obs::Counter* sheds = ServeCounter("serve.sheds");
  static obs::Gauge* depth =
      obs::MetricsRegistry::Global().GetGauge("serve.queue_depth");
  submitted->Increment();

  auto pending = std::make_shared<Pending>();
  pending->deadline_seconds = request.deadline_seconds > 0.0
                                  ? request.deadline_seconds
                                  : options_.default_deadline_seconds;
  pending->request = std::move(request);
  pending->id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  // Digest up front (outside mu_): the audit line attributes even a
  // refusal to a dataset, and the cache probes in Execute reuse it.
  pending->digest = TableDigest(pending->request.table);
  std::future<ServeResponse> future = pending->promise.get_future();

  Status admitted;
  {
    util::MutexLock lock(mu_);
    admitted = AdmitLocked(*pending);
    if (admitted.ok()) {
      queue_.push_back(pending);
      depth->Set(static_cast<double>(queue_.size()));
    }
  }
  if (!admitted.ok()) {
    if (admitted.code() == StatusCode::kResourceExhausted) {
      sheds->Increment();
    }
    ServeResponse refused;
    refused.status = admitted;
    Respond(pending, std::move(refused));
    return future;
  }
  cv_.NotifyOne();
  return future;
}

void Server::WorkerLoop(int worker_index) {
  static obs::Counter* ok_count = ServeCounter("serve.responses_ok");
  static obs::Counter* failed = ServeCounter("serve.responses_error");
  static obs::Counter* degraded = ServeCounter("serve.degraded_requests");
  static obs::Gauge* depth =
      obs::MetricsRegistry::Global().GetGauge("serve.queue_depth");
  (void)worker_index;

  for (;;) {
    std::shared_ptr<Pending> pending;
    int rung = 0;
    {
      util::MutexLock lock(mu_);
      // Thread-safety analysis cannot see that Wait runs the predicate
      // with mu_ held (the lock lives inside CondVar), so the lambda is
      // exempted rather than the loop.
      cv_.Wait(mu_, [this]() KGPIP_NO_THREAD_SAFETY_ANALYSIS {
        return !queue_.empty() || stopping_.load(std::memory_order_acquire) ||
               (draining_.load(std::memory_order_acquire) && queue_.empty());
      });
      if (queue_.empty()) {
        if (stopping_.load(std::memory_order_acquire) ||
            draining_.load(std::memory_order_acquire)) {
          return;
        }
        continue;
      }
      pending = queue_.front();
      queue_.pop_front();
      depth->Set(static_cast<double>(queue_.size()));
      // The queue depth *behind* this request decides the degradation
      // rung: a deep backlog means every queued caller is burning its
      // deadline, so each request gets a cheaper treatment.
      if (queue_.size() >= 2 * options_.degrade_queue_depth) {
        rung = 2;
      } else if (queue_.size() >= options_.degrade_queue_depth) {
        rung = 1;
      }
      if (pending->state.load(std::memory_order_acquire) ==
          RequestState::kDone) {
        continue;  // watchdog already failed it while queued
      }
      pending->state.store(RequestState::kRunning, std::memory_order_release);
      inflight_.push_back(pending);
    }
    pending->queue_wait_micros.store(
        static_cast<int64_t>(pending->admitted.ElapsedSeconds() * 1e6),
        std::memory_order_release);

    // Everything this request does from here — spans, log records, pool
    // chunks fanned out inside Fit — carries its id/tenant.
    util::ScopedRequestContext request_scope(pending->id,
                                             pending->request.tenant);
    ServeResponse response;
    if (pending->cancel.cancelled() ||
        pending->admitted.ElapsedSeconds() >= pending->deadline_seconds) {
      response.status = Status::ResourceExhausted(
          "deadline expired before the request left the queue");
    } else {
      response = Execute(*pending, rung);
    }
    if (rung > 0 && response.status.ok() && !response.cache_hit) {
      degraded->Increment();
    }
    const bool succeeded = response.status.ok();
    (succeeded ? ok_count : failed)->Increment();
    const std::string tenant = pending->request.tenant;
    const double latency = pending->admitted.ElapsedSeconds();
    // Breaker state must advance before the caller's future resolves:
    // a client that observes failure N and immediately resubmits has to
    // hit an already-open breaker, not a stale one.
    RecordOutcomeForTenant(tenant, succeeded);
    Respond(pending, std::move(response));

    obs::MetricsRegistry::Global()
        .GetHistogram("serve.latency_seconds." + tenant)
        ->Record(latency);
    {
      util::MutexLock lock(mu_);
      inflight_.erase(std::remove(inflight_.begin(), inflight_.end(), pending),
                      inflight_.end());
      if (queue_.empty() && inflight_.empty()) drained_cv_.NotifyAll();
    }
  }
}

void Server::RecordOutcomeForTenant(const std::string& tenant, bool ok) {
  static obs::Counter* trips = ServeCounter("serve.breaker_trips");
  util::MutexLock lock(mu_);
  TenantState& state = tenants_[tenant];
  if (ok) {
    state.consecutive_failures = 0;
    return;
  }
  ++state.consecutive_failures;
  if (!state.breaker_open && options_.breaker_threshold > 0 &&
      state.consecutive_failures >= options_.breaker_threshold) {
    state.breaker_open = true;
    state.breaker_opened.Reset();
    trips->Increment();
    KGPIP_LOG(Warning) << "serve: circuit breaker opened for tenant '"
                       << tenant << "' after " << state.consecutive_failures
                       << " consecutive failures";
  }
}

void Server::ExportWindowGauges() {
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  std::vector<std::string> tenants;
  {
    util::MutexLock lock(mu_);
    tenants.reserve(tenants_.size());
    for (const auto& [name, state] : tenants_) tenants.push_back(name);
  }
  for (const std::string& tenant : tenants) {
    const obs::SlidingWindowHistogram::Snapshot window =
        metrics
            .GetSlidingHistogram("serve.window.latency_seconds." + tenant,
                                 options_.window_seconds, kWindowSlices)
            ->GetSnapshot();
    metrics.GetGauge("serve.window.p50_seconds." + tenant)
        ->Set(window.Quantile(0.50));
    metrics.GetGauge("serve.window.p99_seconds." + tenant)
        ->Set(window.Quantile(0.99));
    // SLO burn: the fraction of this tenant's windowed requests slower
    // than the target. 1.0 = every recent request blew the SLO.
    metrics.GetGauge("serve.slo_burn." + tenant)
        ->Set(window.FractionAbove(options_.slo_target_seconds));
  }
  const int64_t requests =
      metrics
          .GetSlidingCounter("serve.window.requests", options_.window_seconds,
                             kWindowSlices)
          ->WindowedCount();
  const int64_t sheds =
      metrics
          .GetSlidingCounter("serve.window.sheds", options_.window_seconds,
                             kWindowSlices)
          ->WindowedCount();
  const int64_t hits =
      metrics
          .GetSlidingCounter("serve.window.cache_hits",
                             options_.window_seconds, kWindowSlices)
          ->WindowedCount();
  const double denom = requests > 0 ? static_cast<double>(requests) : 1.0;
  metrics.GetGauge("serve.window.shed_rate")
      ->Set(static_cast<double>(sheds) / denom);
  metrics.GetGauge("serve.window.cache_hit_rate")
      ->Set(static_cast<double>(hits) / denom);
}

void Server::WatchdogLoop() {
  static obs::Counter* cancels = ServeCounter("serve.deadline_cancels");
  const auto period = std::chrono::duration<double>(
      std::max(0.001, options_.watchdog_period_seconds));
  Stopwatch since_gauge_export;
  while (!stopping_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(period);
    if (since_gauge_export.ElapsedSeconds() >= 1.0) {
      since_gauge_export.Reset();
      ExportWindowGauges();
    }
    std::vector<std::shared_ptr<Pending>> expired_queued;
    {
      util::MutexLock lock(mu_);
      for (const auto& pending : queue_) {
        if (pending->state.load(std::memory_order_acquire) ==
                RequestState::kQueued &&
            pending->admitted.ElapsedSeconds() >= pending->deadline_seconds) {
          expired_queued.push_back(pending);
        }
      }
      for (const auto& pending : inflight_) {
        if (pending->admitted.ElapsedSeconds() >= pending->deadline_seconds &&
            !pending->cancel.cancelled()) {
          // Cooperative cancel: SimIndex scans and the optimizer loop
          // poll this token, so the request unwinds with best-so-far
          // (or kResourceExhausted) well inside the grace window.
          pending->cancel.Cancel();
          cancels->Increment();
        }
      }
    }
    for (const auto& pending : expired_queued) {
      // Fail still-queued expired requests directly — they must not wait
      // for a worker to notice them.
      ServeResponse response;
      response.status = Status::ResourceExhausted(
          "deadline exceeded while queued");
      cancels->Increment();
      Respond(pending, std::move(response));
    }
  }
}

ServeResponse Server::ZeroShot(Pending& pending) {
  KGPIP_TRACE_SPAN("serve.zero_shot");
  static obs::Counter* zero_shots = ServeCounter("serve.zero_shot_fits");
  zero_shots->Increment();
  pending.stage.store("zero_shot", std::memory_order_release);
  const FitRequest& req = pending.request;
  ServeResponse response;
  response.degradation_level = 2;

  // No embedding, no SimIndex, no HPO: cached nearest-neighbour skeletons
  // if this digest was seen before, else the static fallback portfolio.
  std::vector<gen::ScoredSkeleton> skeletons;
  Result<Json> query = cache_.Get(QueryCacheKey(pending.digest));
  if (query.ok() && query->Get("nearest_key").is_string()) {
    auto predicted = model_->PredictSkeletonsFromNearest(
        query->Get("nearest_key").AsString(), req.task, req.seed);
    if (predicted.ok()) {
      skeletons = std::move(*predicted);
      pending.cache_tier.store(2, std::memory_order_release);
    }
  }
  if (skeletons.empty()) {
    skeletons = core::FallbackPortfolio(req.task, 1);
  }
  if (skeletons.empty()) {
    response.status = Status::Internal("no zero-shot skeleton available");
    return response;
  }

  automl::AutoMlResult result;
  result.best_spec = skeletons.front().spec;
  result.report.degradation_level = 2;
  result.report.notes =
      "zero-shot: overload degradation served the top-1 skeleton with "
      "default hyper-parameters (no HPO)";
  Status finalized = automl::FinalizeResult(result.best_spec, req.table,
                                            req.task, req.seed, &result);
  if (!finalized.ok()) {
    response.status = finalized;
    return response;
  }
  response.result = std::move(result);
  return response;
}

ServeResponse Server::Execute(Pending& pending, int degradation_level) {
  KGPIP_TRACE_SPAN("serve.request");
  static obs::Counter* cache_hits = ServeCounter("serve.cache_hits");
  static obs::Counter* query_hits = ServeCounter("serve.query_cache_hits");

  const FitRequest& req = pending.request;
  ServeResponse response;
  response.degradation_level = degradation_level;

  const uint64_t digest = pending.digest;  // computed once at Submit
  int trials = std::min(std::max(1, req.max_trials),
                        std::max(1, options_.max_trials));
  const std::string result_key = ResultCacheKey(digest, req.task, trials);
  pending.stage.store("cache_probe", std::memory_order_release);

  // Tier 1: a completed result for this exact table content. A hit skips
  // embedding, SimIndex, and the whole search — only the final refit runs.
  {
    Result<Json> entry = cache_.Get(result_key);
    if (entry.ok()) {
      Result<ml::PipelineSpec> spec = SpecFromJson(entry->Get("spec"));
      if (spec.ok()) {
        automl::AutoMlResult result;
        result.best_spec = *spec;
        result.validation_score = entry->Get("validation_score").AsDouble();
        result.trials = static_cast<int>(entry->Get("trials").AsInt());
        result.report.cache_hit = true;
        result.report.notes = "served from content-hash cache";
        Status finalized = automl::FinalizeResult(
            result.best_spec, req.table, req.task, req.seed, &result);
        if (finalized.ok()) {
          cache_hits->Increment();
          pending.cache_tier.store(1, std::memory_order_release);
          response.cache_hit = true;
          response.degradation_level = 0;
          response.result = std::move(result);
          return response;
        }
      }
      // Entry parsed as JSON but is semantically unusable (e.g. written
      // by an older artifact generation): heal by eviction + rebuild.
      cache_.Evict(result_key);
    }
  }

  if (degradation_level >= 2) return ZeroShot(pending);

  // Tier 2: skeleton prediction. The query cache maps this digest to its
  // nearest training dataset, so repeats skip embedding + SimIndex and
  // re-enter at the generation tail.
  std::vector<gen::ScoredSkeleton> skeletons;
  bool used_fallback = false;
  std::string fallback_reason;
  const std::string query_key = QueryCacheKey(digest);
  Result<Json> cached_query = cache_.Get(query_key);
  if (cached_query.ok() && cached_query->Get("nearest_key").is_string()) {
    auto predicted = model_->PredictSkeletonsFromNearest(
        cached_query->Get("nearest_key").AsString(), req.task, req.seed);
    if (predicted.ok()) {
      query_hits->Increment();
      pending.cache_tier.store(2, std::memory_order_release);
      skeletons = std::move(*predicted);
    } else {
      // Stale key (older artifacts): evict and fall through to the full
      // embed + SimIndex path below.
      cache_.Evict(query_key);
    }
  }
  if (skeletons.empty()) {
    pending.stage.store("embed_query", std::memory_order_release);
    auto nearest = model_->NearestDataset(req.table, &pending.cancel);
    if (nearest.ok()) {
      Json entry = Json::Object();
      entry.Set("nearest_key", nearest->key);
      entry.Set("similarity", nearest->similarity);
      cache_.Put(query_key, entry);
      auto predicted = model_->PredictSkeletonsFromNearest(
          nearest->key, req.task, req.seed);
      if (predicted.ok()) skeletons = std::move(*predicted);
    } else if (pending.cancel.cancelled()) {
      response.status = Status::ResourceExhausted(
          "deadline exceeded during similarity search");
      return response;
    }
    if (skeletons.empty()) {
      used_fallback = true;
      fallback_reason = nearest.ok()
                            ? "skeleton generation produced no candidates"
                            : nearest.status().ToString();
      skeletons = core::FallbackPortfolio(
          req.task, std::max(1, model_->config().top_k));
      if (skeletons.empty()) {
        response.status =
            Status::Internal("no candidate skeletons available");
        return response;
      }
    }
  }

  if (degradation_level == 1) {
    // Rung 1: keep the cheapest viable search — top-1 skeleton, half the
    // trial budget.
    skeletons.resize(1);
    trials = std::max(1, trials / 2);
  }

  // Deadline propagation: the remaining request time bounds both the
  // whole search (hpo::Budget wall-clock) and each trial (guard
  // override); the cancel token covers everything in between.
  const double remaining = std::max(
      0.1, pending.deadline_seconds - pending.admitted.ElapsedSeconds());
  hpo::TrialGuardOptions guard = model_->config().guard;
  if (guard.trial_deadline_seconds <= 0.0 ||
      guard.trial_deadline_seconds > remaining) {
    guard.trial_deadline_seconds = remaining;
  }
  core::FitOverrides overrides;
  overrides.guard = &guard;
  overrides.cancel = &pending.cancel;

  pending.stage.store("fit", std::memory_order_release);
  Result<automl::AutoMlResult> fitted = [&]() {
    KGPIP_TRACE_SPAN("serve.fit");
    return model_->FitWithSkeletons(std::move(skeletons), req.table,
                                    req.task, hpo::Budget(trials, remaining),
                                    req.seed, overrides);
  }();
  if (!fitted.ok()) {
    response.status = fitted.status();
    return response;
  }
  fitted->report.degradation_level = degradation_level;
  if (used_fallback) {
    fitted->report.fallback_portfolio = true;
    if (!fitted->report.notes.empty()) fitted->report.notes += "; ";
    fitted->report.notes += "serve fallback portfolio: " + fallback_reason;
  }

  // Only a full-quality answer may seed the result cache — a degraded or
  // cancelled search must not masquerade as rung 0 for future callers.
  if (degradation_level == 0 && !pending.cancel.cancelled() &&
      !fitted->report.returned_best_so_far) {
    Json entry = Json::Object();
    entry.Set("spec", SpecToJson(fitted->best_spec));
    entry.Set("validation_score", fitted->validation_score);
    entry.Set("trials", fitted->trials);
    cache_.Put(result_key, entry);
  }
  response.result = std::move(*fitted);
  return response;
}

size_t Server::queue_depth() const {
  util::MutexLock lock(mu_);
  return queue_.size();
}

size_t Server::inflight() const {
  util::MutexLock lock(mu_);
  return inflight_.size();
}

Json Server::DebugStatus() const {
  // Phase 1: copy queue/in-flight/tenant state under mu_ into plain
  // structs, then release. Every later sample (cache, audit, metrics)
  // takes only locks that rank BELOW kServeServer, so this is safe to
  // call concurrently with a soak under the rank checker.
  struct QueueEntry {
    uint64_t id;
    std::string tenant;
    double age_seconds;
    double deadline_seconds;
  };
  struct FlightEntry {
    uint64_t id;
    std::string tenant;
    const char* stage;
    double elapsed_seconds;
    double deadline_seconds;
    bool cancelled;
  };
  struct TenantEntry {
    std::string name;
    double tokens;
    bool bucket_started;
    int consecutive_failures;
    bool breaker_open;
    double breaker_open_seconds;
  };
  std::vector<QueueEntry> queued;
  std::vector<FlightEntry> running;
  std::vector<TenantEntry> tenants;
  bool draining = false;
  bool stopping = false;
  {
    util::MutexLock lock(mu_);
    queued.reserve(queue_.size());
    for (const auto& pending : queue_) {
      queued.push_back({pending->id, pending->request.tenant,
                        pending->admitted.ElapsedSeconds(),
                        pending->deadline_seconds});
    }
    running.reserve(inflight_.size());
    for (const auto& pending : inflight_) {
      running.push_back({pending->id, pending->request.tenant,
                         pending->stage.load(std::memory_order_acquire),
                         pending->admitted.ElapsedSeconds(),
                         pending->deadline_seconds,
                         pending->cancel.cancelled()});
    }
    tenants.reserve(tenants_.size());
    for (const auto& [name, state] : tenants_) {
      tenants.push_back({name, state.tokens, state.bucket_started,
                         state.consecutive_failures, state.breaker_open,
                         state.breaker_open
                             ? state.breaker_opened.ElapsedSeconds()
                             : 0.0});
    }
    draining = draining_.load(std::memory_order_acquire);
    stopping = stopping_.load(std::memory_order_acquire);
  }

  Json out = Json::Object();
  out.Set("draining", draining);
  out.Set("stopping", stopping);
  // Which SIMD kernel tier every decode in this process dispatches to
  // (also exported as the nn.isa_level gauge and stamped into the audit
  // log's header line).
  out.Set("isa_level", nn::simd::IsaName(nn::simd::ActiveIsa()));

  Json queue = Json::Array();
  for (const QueueEntry& entry : queued) {
    Json e = Json::Object();
    e.Set("id", static_cast<int64_t>(entry.id));
    e.Set("tenant", entry.tenant);
    e.Set("age_seconds", entry.age_seconds);
    e.Set("deadline_seconds", entry.deadline_seconds);
    queue.Append(std::move(e));
  }
  out.Set("queue", std::move(queue));

  Json inflight = Json::Array();
  for (const FlightEntry& entry : running) {
    Json e = Json::Object();
    e.Set("id", static_cast<int64_t>(entry.id));
    e.Set("tenant", entry.tenant);
    e.Set("stage", entry.stage);
    e.Set("elapsed_seconds", entry.elapsed_seconds);
    e.Set("deadline_seconds", entry.deadline_seconds);
    e.Set("cancelled", entry.cancelled);
    inflight.Append(std::move(e));
  }
  out.Set("inflight", std::move(inflight));

  Json tenant_states = Json::Object();
  for (const TenantEntry& entry : tenants) {
    Json t = Json::Object();
    t.Set("tokens", entry.tokens);
    t.Set("bucket_started", entry.bucket_started);
    t.Set("consecutive_failures", entry.consecutive_failures);
    t.Set("breaker_open", entry.breaker_open);
    if (entry.breaker_open) {
      t.Set("breaker_open_seconds", entry.breaker_open_seconds);
    }
    tenant_states.Set(entry.name, std::move(t));
  }
  out.Set("tenants", std::move(tenant_states));

  {
    const ArtifactCache::Stats stats = cache_.stats();
    Json c = Json::Object();
    c.Set("hits", stats.hits);
    c.Set("misses", stats.misses);
    c.Set("writes", stats.writes);
    c.Set("corrupt_evictions", stats.corrupt_evictions);
    c.Set("dir", options_.cache_dir.empty() ? "memory-only"
                                            : options_.cache_dir);
    out.Set("cache", std::move(c));
  }

  {
    Json a = Json::Object();
    a.Set("records_written", audit_.records_written());
    a.Set("write_errors", audit_.write_errors());
    a.Set("path", options_.audit_log_path.empty() ? "ring-only"
                                                  : options_.audit_log_path);
    Json tail = Json::Array();
    for (Json& record : audit_.Tail(8)) tail.Append(std::move(record));
    a.Set("tail", std::move(tail));
    out.Set("audit", std::move(a));
  }

  // Metrics (registry lock rank 30, window locks 15 — both below any
  // lock this thread still holds, i.e. none).
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  {
    // Shape and traffic of the similarity index behind skeleton
    // prediction and the zero-shot rung (gauges set at SimIndex
    // build/load; counters accumulate per query).
    Json e = Json::Object();
    e.Set("size",
          static_cast<int64_t>(metrics.GetGauge("embed.index.size")->value()));
    e.Set("cells", static_cast<int64_t>(
                       metrics.GetGauge("embed.index.cells")->value()));
    e.Set("quantized",
          metrics.GetGauge("embed.index.quantized")->value() != 0.0);
    e.Set("sq8_max_abs_error",
          metrics.GetGauge("embed.index.sq8_max_abs_error")->value());
    e.Set("cells_probed",
          metrics.GetCounter("embed.index.cells_probed")->value());
    e.Set("candidates_scanned",
          metrics.GetCounter("embed.index.candidates_scanned")->value());
    e.Set("reranked", metrics.GetCounter("embed.index.reranked")->value());
    e.Set("search_allocs",
          metrics.GetCounter("embed.index.search_allocs")->value());
    out.Set("embed_index", std::move(e));
  }
  {
    Json counters = Json::Object();
    for (const char* name :
         {"serve.requests", "serve.sheds", "serve.responses_ok",
          "serve.responses_error", "serve.degraded_requests",
          "serve.cache_hits", "serve.query_cache_hits",
          "serve.zero_shot_fits", "serve.deadline_cancels",
          "serve.breaker_trips", "obs.trace.dropped_spans"}) {
      counters.Set(name, metrics.GetCounter(name)->value());
    }
    out.Set("counters", std::move(counters));
  }
  {
    Json windows = Json::Object();
    for (const TenantEntry& entry : tenants) {
      windows.Set("latency_seconds." + entry.name,
                  metrics
                      .GetSlidingHistogram(
                          "serve.window.latency_seconds." + entry.name,
                          options_.window_seconds, kWindowSlices)
                      ->GetSnapshot()
                      .ToJson());
    }
    windows.Set("shed_rate",
                metrics.GetGauge("serve.window.shed_rate")->value());
    windows.Set("cache_hit_rate",
                metrics.GetGauge("serve.window.cache_hit_rate")->value());
    out.Set("windows", std::move(windows));
  }
  {
    Json pool = Json::Object();
    pool.Set("planned_threads", util::ThreadPool::PlannedThreads());
    pool.Set("tasks_executed",
             metrics.GetCounter("pool.tasks_executed")->value());
    pool.Set("steals", metrics.GetCounter("pool.steals")->value());
    pool.Set("parallel_fors",
             metrics.GetCounter("pool.parallel_fors")->value());
    out.Set("pool", std::move(pool));
  }
  {
    Json locks = Json::Object();
    locks.Set("rank_checking_compiled", util::LockRankCheckingCompiled());
    locks.Set("rank_checking_enabled", util::LockRankCheckingEnabled());
    out.Set("locks", std::move(locks));
  }
  {
    Json opts = Json::Object();
    opts.Set("num_workers", options_.num_workers);
    opts.Set("max_queue_depth", options_.max_queue_depth);
    opts.Set("default_deadline_seconds", options_.default_deadline_seconds);
    opts.Set("degrade_queue_depth", options_.degrade_queue_depth);
    opts.Set("window_seconds", options_.window_seconds);
    opts.Set("slo_target_seconds", options_.slo_target_seconds);
    out.Set("options", std::move(opts));
  }
  return out;
}

std::string Server::DebugStatusText() const {
  const Json status = DebugStatus();
  std::string text;
  text += StrFormat("kgpip-serve statusz  draining=%d stopping=%d\n",
                    status.Get("draining").AsBool() ? 1 : 0,
                    status.Get("stopping").AsBool() ? 1 : 0);
  const Json& queue = status.Get("queue");
  text += StrFormat("queue (%d):\n", static_cast<int>(queue.size()));
  for (const Json& e : queue.items()) {
    text += StrFormat("  #%lld %s  age %.2fs / deadline %.1fs\n",
                      static_cast<long long>(e.Get("id").AsInt()),
                      e.Get("tenant").AsString().c_str(),
                      e.Get("age_seconds").AsDouble(),
                      e.Get("deadline_seconds").AsDouble());
  }
  const Json& inflight = status.Get("inflight");
  text += StrFormat("inflight (%d):\n", static_cast<int>(inflight.size()));
  for (const Json& e : inflight.items()) {
    text += StrFormat("  #%lld %s  stage=%s  %.2fs / %.1fs%s\n",
                      static_cast<long long>(e.Get("id").AsInt()),
                      e.Get("tenant").AsString().c_str(),
                      e.Get("stage").AsString().c_str(),
                      e.Get("elapsed_seconds").AsDouble(),
                      e.Get("deadline_seconds").AsDouble(),
                      e.Get("cancelled").AsBool() ? "  CANCELLED" : "");
  }
  text += "tenants:\n";
  for (const auto& [name, t] : status.Get("tenants").members()) {
    text += StrFormat(
        "  %s  tokens=%.1f  consecutive_failures=%lld  breaker=%s\n",
        name.c_str(), t.Get("tokens").AsDouble(),
        static_cast<long long>(t.Get("consecutive_failures").AsInt()),
        t.Get("breaker_open").AsBool() ? "OPEN" : "closed");
  }
  const Json& cache = status.Get("cache");
  text += StrFormat("cache: %lld hits / %lld misses / %lld writes (%s)\n",
                    static_cast<long long>(cache.Get("hits").AsInt()),
                    static_cast<long long>(cache.Get("misses").AsInt()),
                    static_cast<long long>(cache.Get("writes").AsInt()),
                    cache.Get("dir").AsString().c_str());
  const Json& audit = status.Get("audit");
  text += StrFormat("audit: %lld records (%lld errors) -> %s\n",
                    static_cast<long long>(
                        audit.Get("records_written").AsInt()),
                    static_cast<long long>(audit.Get("write_errors").AsInt()),
                    audit.Get("path").AsString().c_str());
  text += StrFormat("windows: shed_rate=%.3f cache_hit_rate=%.3f\n",
                    status.Get("windows").Get("shed_rate").AsDouble(),
                    status.Get("windows").Get("cache_hit_rate").AsDouble());
  for (const auto& [name, w] : status.Get("windows").members()) {
    if (!w.is_object()) continue;
    text += StrFormat("  %s  n=%lld p50=%.3fs p99=%.3fs\n", name.c_str(),
                      static_cast<long long>(w.Get("count").AsInt()),
                      w.Get("p50").AsDouble(), w.Get("p99").AsDouble());
  }
  return text;
}

void Server::BeginDrain() {
  {
    // The store must land under mu_: a worker evaluates its wait
    // predicate with mu_ held, so holding mu_ here forces this store to
    // sequence either before that evaluation (predicate sees draining)
    // or after the worker has blocked (the notify below wakes it).
    // Storing without the lock left a window — predicate false, store +
    // notify, then block — that lost the wakeup and hung the drain.
    util::MutexLock lock(mu_);
    draining_.store(true, std::memory_order_release);
  }
  cv_.NotifyAll();
}

bool Server::AwaitDrained(double timeout_seconds) {
  util::MutexLock lock(mu_);
  // Predicate runs with mu_ held inside WaitFor; analysis can't see
  // through the CondVar, so the lambda is exempted.
  return drained_cv_.WaitFor(
      mu_, timeout_seconds, [this]() KGPIP_NO_THREAD_SAFETY_ANALYSIS {
        return queue_.empty() && inflight_.empty();
      });
}

void Server::Stop() {
  std::vector<std::thread> workers;
  std::thread watchdog;
  {
    util::MutexLock lock(mu_);
    if (!started_) return;
    // Same lost-wakeup discipline as BeginDrain: the stores workers wait
    // on must happen under mu_ or a worker can block right past them and
    // the joins below deadlock.
    draining_.store(true, std::memory_order_release);
    stopping_.store(true, std::memory_order_release);
    // Swap the handles out so the joins run without mu_ (a worker's last
    // act is to reacquire mu_ to deregister from inflight_).
    workers.swap(workers_);
    watchdog.swap(watchdog_);
  }
  cv_.NotifyAll();
  for (std::thread& worker : workers) {
    if (worker.joinable()) worker.join();
  }
  if (watchdog.joinable()) watchdog.join();

  // Workers are gone; anything still queued gets a definite refusal.
  std::deque<std::shared_ptr<Pending>> leftover;
  {
    util::MutexLock lock(mu_);
    leftover.swap(queue_);
    started_ = false;
  }
  drained_cv_.NotifyAll();
  for (const auto& pending : leftover) {
    ServeResponse response;
    response.status =
        Status::FailedPrecondition("server stopped before execution");
    Respond(pending, std::move(response));
  }
}

}  // namespace kgpip::serve
