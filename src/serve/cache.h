#ifndef KGPIP_SERVE_CACHE_H_
#define KGPIP_SERVE_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <string>
#include <utility>

#include "data/table.h"
#include "util/json.h"
#include "util/mutex.h"
#include "util/status.h"

namespace kgpip::serve {

/// FNV-1a content digest of a table: column names, declared types,
/// missing masks, and cell values (numeric cells hash their raw IEEE-754
/// bits, so two tables digest equal iff their contents are bit-equal).
/// This is the daemon's cache key: a repeated fit over the same dataset
/// digests identically and short-circuits embedding + SimIndex.
uint64_t TableDigest(const Table& table);

/// Crash-safe content-addressed cache for serving artifacts: embedding +
/// SimIndex query results and completed fit results, keyed by dataset
/// digest. Two tiers:
///
///   * an in-memory LRU map (bounded by `max_memory_entries`) absorbing
///     the steady-state hit path without touching disk;
///   * an on-disk entry-per-file store under `dir` surviving restarts.
///
/// Disk entries are written atomically (write to a temp file in the same
/// directory, then rename over the final name) and carry a checksummed
/// header `KGCACHE1 <fnv1a> <size>\n`, so a torn write, truncation, or
/// bit flip is *detected at read time* — the corrupt entry is evicted
/// (unlinked) and reported as a miss, never served. All methods are
/// thread-safe; serve workers share one cache.
class ArtifactCache {
 public:
  struct Options {
    /// On-disk directory; empty = memory-only cache. Created on first
    /// Put if missing.
    std::string dir;
    size_t max_memory_entries = 256;
  };

  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t writes = 0;
    int64_t corrupt_evictions = 0;
  };

  explicit ArtifactCache(Options options);

  /// Looks `key` up (memory tier first, then disk). A corrupt disk entry
  /// is evicted and the lookup reports kNotFound; the caller rebuilds
  /// and re-Puts, healing the cache.
  Result<Json> Get(const std::string& key);

  /// Stores `value` under `key` in both tiers. Disk failures degrade to
  /// memory-only (logged, counted) — the daemon never fails a request
  /// because its cache directory did.
  Status Put(const std::string& key, const Json& value);

  /// Drops `key` from both tiers (used when a cached entry turns out to
  /// be stale against the loaded model artifacts).
  void Evict(const std::string& key);

  /// The on-disk path `key` maps to ("" for a memory-only cache). Keys
  /// are sanitized into filenames with an appended digest so distinct
  /// keys never collide.
  std::string PathForKey(const std::string& key) const;

  Stats stats() const {
    util::MutexLock lock(mu_);
    return stats_;
  }
  const Options& options() const { return options_; }

  /// Parses + verifies one entry file. Exposed for tests and repair
  /// tooling: truncation, header damage, and payload corruption all
  /// return kParseError with a byte-offset diagnostic.
  static Result<Json> LoadEntryFile(const std::string& path);

  /// Atomically writes `payload` (already serialized) with a checksummed
  /// header: temp file in the target directory, then rename.
  static Status WriteEntryFile(const std::string& path,
                               const std::string& payload);

 private:
  /// Memory-tier insert; caller holds `mu_`.
  void PutMemoryLocked(const std::string& key, Json value)
      KGPIP_REQUIRES(mu_);

  Options options_;
  /// Guards the memory tier + stats only; disk I/O runs outside it so a
  /// slow filesystem never blocks the steady-state hit path.
  mutable util::Mutex mu_{util::LockRank::kServeCache, "serve.cache"};
  Stats stats_ KGPIP_GUARDED_BY(mu_);
  /// LRU list front = most recent; map points into the list.
  std::list<std::pair<std::string, Json>> lru_ KGPIP_GUARDED_BY(mu_);
  std::map<std::string, std::list<std::pair<std::string, Json>>::iterator>
      memory_ KGPIP_GUARDED_BY(mu_);
};

}  // namespace kgpip::serve

#endif  // KGPIP_SERVE_CACHE_H_
