#include "serve/soak_harness.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "data/synthetic.h"
#include "util/logging.h"
#include "util/mutex.h"
#include "util/string_util.h"

namespace kgpip::serve {

namespace {

/// Deterministic per-tenant splitmix64 stream for request shaping.
uint64_t Mix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

double Percentile(std::vector<double>* sorted, double p) {
  if (sorted->empty()) return 0.0;
  std::sort(sorted->begin(), sorted->end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted->size()));
  idx = std::min(idx, sorted->size() - 1);
  return (*sorted)[idx];
}

}  // namespace

Json SoakSummary::ToJson() const {
  Json out = Json::Object();
  out.Set("submitted", submitted);
  out.Set("ok", ok);
  out.Set("shed", shed);
  out.Set("failed", failed);
  out.Set("cache_hits", cache_hits);
  out.Set("degraded", degraded);
  out.Set("stuck", stuck);
  out.Set("p50_latency_seconds", p50_latency_seconds);
  out.Set("p99_latency_seconds", p99_latency_seconds);
  out.Set("max_latency_seconds", max_latency_seconds);
  return out;
}

std::string SoakSummary::ToString() const {
  return StrFormat(
      "submitted=%lld ok=%lld shed=%lld failed=%lld cache_hits=%lld "
      "degraded=%lld stuck=%lld p50=%.3fs p99=%.3fs max=%.3fs",
      static_cast<long long>(submitted), static_cast<long long>(ok),
      static_cast<long long>(shed), static_cast<long long>(failed),
      static_cast<long long>(cache_hits), static_cast<long long>(degraded),
      static_cast<long long>(stuck), p50_latency_seconds,
      p99_latency_seconds, max_latency_seconds);
}

SoakHarness::SoakHarness(Server* server, SoakOptions options)
    : server_(server), options_(options) {}

Result<SoakSummary> SoakHarness::Run() {
  // One shared dataset pool: identical specs generate identical tables,
  // so tenants repeatedly hitting the same digest exercise the cache.
  std::vector<Table> pool;
  const int num_datasets = std::max(1, options_.num_datasets);
  pool.reserve(static_cast<size_t>(num_datasets));
  for (int i = 0; i < num_datasets; ++i) {
    DatasetSpec spec;
    spec.name = StrFormat("soak_ds_%d", i);
    spec.rows = 120;
    spec.num_numeric = 5;
    spec.num_categorical = 1;
    spec.family = static_cast<ConceptFamily>(i % 5);
    spec.seed = options_.seed + static_cast<uint64_t>(i);
    pool.push_back(GenerateDataset(spec));
  }
  Table poison("soak_poison");  // no target column: every fit must fail
  {
    DatasetSpec spec;
    spec.name = "soak_poison";
    spec.rows = 40;
    spec.num_numeric = 3;
    spec.seed = options_.seed + 977;
    poison = GenerateDataset(spec);
    poison.set_target_name("");
  }

  std::unique_ptr<util::ScopedFaultInjection> faults;
  if (options_.inject_faults) {
    faults = std::make_unique<util::ScopedFaultInjection>(
        options_.fault_config);
  }

  const double wait_budget_seconds = options_.request_deadline_seconds +
                                     server_->options().grace_seconds + 2.0;
  // kClient: tenant threads hold it only around summary bookkeeping and
  // never while calling into the server, but Submit() does take the
  // server's locks, so the harness lock ranks above everything in-daemon.
  // Audited for lost wakeups: tenant threads block on a std::future, not
  // on this mutex, and every wait_for carries deadline + grace — no
  // wait here depends on a notify racing a predicate.
  util::Mutex mu(util::LockRank::kClient, "soak.summary");
  SoakSummary summary;
  std::vector<double> latencies;

  std::vector<std::thread> tenants;
  tenants.reserve(static_cast<size_t>(std::max(1, options_.num_tenants)));
  for (int t = 0; t < std::max(1, options_.num_tenants); ++t) {
    tenants.emplace_back([&, t] {
      uint64_t rng = Mix(options_.seed ^ (0x5151ULL * (t + 1)));
      const std::string tenant = StrFormat("tenant-%d", t);
      Deadline run_deadline(options_.duration_seconds);
      int request_index = 0;
      while (!run_deadline.Expired()) {
        rng = Mix(rng);
        const bool poisoned =
            options_.poison_fraction > 0.0 &&
            static_cast<double>(rng % 1000) / 1000.0 <
                options_.poison_fraction;
        FitRequest request;
        request.tenant = tenant;
        request.table =
            poisoned ? poison : pool[static_cast<size_t>(rng) % pool.size()];
        request.task = TaskType::kBinaryClassification;
        request.max_trials = options_.max_trials;
        request.deadline_seconds = options_.request_deadline_seconds;
        request.seed = rng;
        ++request_index;

        std::future<ServeResponse> future =
            server_->Submit(std::move(request));
        {
          util::MutexLock lock(mu);
          ++summary.submitted;
        }
        const auto wait = std::chrono::duration<double>(wait_budget_seconds);
        if (future.wait_for(wait) != std::future_status::ready) {
          // Contract violation: the request neither completed nor was
          // shed/cancelled inside deadline + grace. Leave the future
          // unread (the promise may still fire) and record the breach.
          util::MutexLock lock(mu);
          ++summary.stuck;
          continue;
        }
        ServeResponse response = future.get();
        {
          util::MutexLock lock(mu);
          if (response.status.ok()) {
            ++summary.ok;
            if (response.cache_hit) ++summary.cache_hits;
            if (response.degradation_level > 0) ++summary.degraded;
          } else if (response.status.code() ==
                     StatusCode::kResourceExhausted) {
            ++summary.shed;
          } else {
            ++summary.failed;
          }
          latencies.push_back(response.latency_seconds);
        }
        if (options_.think_time_seconds > 0.0) {
          std::this_thread::sleep_for(
              std::chrono::duration<double>(options_.think_time_seconds));
        }
      }
      (void)request_index;
    });
  }
  for (std::thread& tenant : tenants) tenant.join();
  faults.reset();

  summary.p50_latency_seconds = Percentile(&latencies, 0.50);
  summary.p99_latency_seconds = Percentile(&latencies, 0.99);
  summary.max_latency_seconds =
      latencies.empty() ? 0.0
                        : *std::max_element(latencies.begin(),
                                            latencies.end());

  if (summary.stuck > 0) {
    return Status::Internal(StrFormat(
        "soak contract violated: %lld request(s) stuck past deadline + "
        "grace (%s)",
        static_cast<long long>(summary.stuck),
        summary.ToString().c_str()));
  }
  if (summary.max_latency_seconds > wait_budget_seconds) {
    return Status::Internal(StrFormat(
        "soak contract violated: max latency %.3fs exceeds deadline + "
        "grace %.3fs (%s)",
        summary.max_latency_seconds, wait_budget_seconds,
        summary.ToString().c_str()));
  }
  return summary;
}

}  // namespace kgpip::serve
