#include "serve/audit_log.h"

#include <cstdio>
#include <utility>

#include "nn/simd_kernels.h"
#include "obs/metrics.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace kgpip::serve {

Json AuditRecord::ToJson() const {
  Json out = Json::Object();
  out.Set("request_id", static_cast<int64_t>(request_id));
  out.Set("tenant", tenant);
  out.Set("table_digest",
          StrFormat("%016llx", static_cast<unsigned long long>(table_digest)));
  out.Set("queue_wait_micros", queue_wait_micros);
  out.Set("run_micros", run_micros);
  out.Set("total_micros", total_micros);
  out.Set("degradation_level", degradation_level);
  out.Set("cache_tier", cache_tier);
  out.Set("breaker_half_open", breaker_half_open);
  out.Set("bucket_tokens", bucket_tokens);
  out.Set("retries", retries);
  out.Set("outcome", StatusCodeName(outcome));
  if (!detail.empty()) out.Set("detail", detail);
  return out;
}

AuditLog::AuditLog(Options options) : options_(std::move(options)) {
  if (options_.ring_capacity == 0) options_.ring_capacity = 1;
  util::MutexLock lock(mu_);
  OpenLocked();
}

AuditLog::~AuditLog() {
  util::MutexLock lock(mu_);
  if (file_ != nullptr) std::fclose(file_);
  file_ = nullptr;
}

void AuditLog::OpenLocked() {
  if (options_.path.empty()) return;
  file_ = std::fopen(options_.path.c_str(), "ab");
  if (file_ == nullptr) {
    if (!error_logged_) {
      error_logged_ = true;
      KGPIP_LOG(Warning) << "audit log: cannot open '" << options_.path
                         << "' for append; records go to the ring only";
    }
    ++errors_;
    return;
  }
  const long at = std::ftell(file_);
  bytes_ = at > 0 ? static_cast<size_t>(at) : 0;
  if (bytes_ == 0) WriteHeaderLocked();
}

void AuditLog::WriteHeaderLocked() {
  // One self-describing line at the top of every fresh file (initial
  // open and each post-rotate generation). It pins the serving
  // environment the records were produced under — today the dispatched
  // SIMD level, which decides which kernel paths executed — so a log
  // can be attributed to a kernel configuration after the fact. The
  // header is metadata, not a wide event: it stays out of the ring and
  // out of records_written, and readers skip lines with
  // "type":"header".
  const nn::simd::Isa isa = nn::simd::ActiveIsa();
  Json header = Json::Object();
  header.Set("type", "header");
  header.Set("isa_level", nn::simd::IsaName(isa));
  header.Set("isa_level_value", static_cast<int64_t>(isa));
  // Similarity-index shape at open time (gauges set when the index is
  // built or loaded): whether retrieval-backed records in this file ran
  // against a flat exact scan or probed IVF-SQ8 segments.
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  header.Set("embed_index_size", static_cast<int64_t>(
                                     metrics.GetGauge("embed.index.size")
                                         ->value()));
  header.Set("embed_index_cells", static_cast<int64_t>(
                                      metrics.GetGauge("embed.index.cells")
                                          ->value()));
  header.Set("embed_index_quantized",
             metrics.GetGauge("embed.index.quantized")->value() != 0.0);
  std::string line = header.Dump();
  line.push_back('\n');
  const size_t wrote = std::fwrite(line.data(), 1, line.size(), file_);
  if (wrote != line.size() || std::fflush(file_) != 0) {
    ++errors_;
    return;
  }
  bytes_ += line.size();
}

void AuditLog::RotateLocked() {
  if (file_ == nullptr) return;
  std::fclose(file_);
  file_ = nullptr;
  const std::string previous = options_.path + ".1";
  // One rotated generation; an older .1 is superseded. Failure to rename
  // is tolerated — OpenLocked reopens and the file just keeps growing.
  std::remove(previous.c_str());
  if (std::rename(options_.path.c_str(), previous.c_str()) != 0) {
    KGPIP_LOG(Warning) << "audit log: rotate rename to '" << previous
                       << "' failed; continuing in place";
  }
  bytes_ = 0;
  OpenLocked();
}

void AuditLog::Append(const AuditRecord& record) {
  Json json = record.ToJson();
  // The line is fully built before any I/O: one fwrite of a complete
  // "...}\n" per record means a crash tears at most the last line and
  // concurrent appends (stdio locks per call) never interleave.
  std::string line = json.Dump();
  line.push_back('\n');
  util::MutexLock lock(mu_);
  ring_.push_back(std::move(json));
  while (ring_.size() > options_.ring_capacity) ring_.pop_front();
  ++written_;
  if (options_.path.empty()) return;
  if (file_ != nullptr && bytes_ + line.size() > options_.max_bytes) {
    RotateLocked();
  }
  if (file_ == nullptr) {
    OpenLocked();  // retry after an earlier failure
    if (file_ == nullptr) return;
  }
  const size_t wrote = std::fwrite(line.data(), 1, line.size(), file_);
  if (wrote != line.size() || std::fflush(file_) != 0) {
    ++errors_;
    if (!error_logged_) {
      error_logged_ = true;
      KGPIP_LOG(Warning) << "audit log: write to '" << options_.path
                         << "' failed; later failures counted silently";
    }
    return;
  }
  bytes_ += line.size();
}

std::vector<Json> AuditLog::Tail(size_t n) const {
  util::MutexLock lock(mu_);
  const size_t have = ring_.size();
  const size_t take = n < have ? n : have;
  std::vector<Json> out;
  out.reserve(take);
  for (size_t i = have - take; i < have; ++i) out.push_back(ring_[i]);
  return out;
}

int64_t AuditLog::records_written() const {
  util::MutexLock lock(mu_);
  return written_;
}

int64_t AuditLog::write_errors() const {
  util::MutexLock lock(mu_);
  return errors_;
}

}  // namespace kgpip::serve
