#ifndef KGPIP_SERVE_AUDIT_LOG_H_
#define KGPIP_SERVE_AUDIT_LOG_H_

#include <cstdint>
#include <cstdio>
#include <deque>
#include <string>
#include <vector>

#include "util/json.h"
#include "util/mutex.h"
#include "util/status.h"

namespace kgpip::serve {

/// The wide event: one record summarizing a finished request's whole
/// life. The server emits exactly one per submitted request — the emit
/// site is fused with the promise-resolution winner (Server::Respond),
/// which is already exactly-once across the worker/watchdog/shed races.
struct AuditRecord {
  uint64_t request_id = 0;
  std::string tenant;
  /// Content digest of the request table (0 when the request was refused
  /// before the table was hashed — never happens today; Submit digests
  /// up front precisely so refusals are attributable to a dataset).
  uint64_t table_digest = 0;
  int64_t queue_wait_micros = 0;
  int64_t run_micros = 0;
  int64_t total_micros = 0;
  /// Degradation rung the request was served at (0 full fit, 1 skeleton
  /// budget cut, 2 zero-shot).
  int degradation_level = 0;
  /// Which cache answered: "result" (tier 1), "query" (tier 2), "none".
  std::string cache_tier = "none";
  /// Tenant breaker/bucket state observed at admission, under the server
  /// lock: was this a half-open probe, and how many tokens remained
  /// after paying for admission (-1 = bucket disabled).
  bool breaker_half_open = false;
  double bucket_tokens = -1.0;
  /// Trial retries spent (hpo::RunReport::total_retries); 0 for refusals
  /// and cache hits.
  int retries = 0;
  StatusCode outcome = StatusCode::kOk;
  /// Status message for non-OK outcomes ("" for OK).
  std::string detail;

  Json ToJson() const;
};

/// Append-only wide-event sink: one JSON line per record (JSONL), built
/// fully in memory and handed to the OS as a single O_APPEND write, so a
/// crash can tear at most the final line and concurrent appenders never
/// interleave. The file rotates to `<path>.1` when it would exceed
/// `max_bytes` (one generation is enough: the audit trail is a flight
/// recorder, not an archive). A bounded in-memory ring keeps the most
/// recent records for statusz tail inspection without touching disk.
///
/// With an empty path the ring still works — tests and memory-only
/// deployments get tail inspection for free.
class AuditLog {
 public:
  struct Options {
    std::string path;             // empty = in-memory ring only
    size_t max_bytes = 8u << 20;  // rotate threshold
    size_t ring_capacity = 256;   // tail entries kept in memory
  };

  explicit AuditLog(Options options);
  ~AuditLog();

  AuditLog(const AuditLog&) = delete;
  AuditLog& operator=(const AuditLog&) = delete;

  /// Appends one record (single write + flush). Errors are counted and
  /// logged once, never surfaced to the request path: the daemon does
  /// not fail requests because its flight recorder did.
  void Append(const AuditRecord& record);

  /// Most recent `n` records, oldest first.
  std::vector<Json> Tail(size_t n) const;

  int64_t records_written() const;
  int64_t write_errors() const;
  const Options& options() const { return options_; }

 private:
  void OpenLocked() KGPIP_REQUIRES(mu_);
  /// Writes the "type":"header" metadata line (serving environment:
  /// dispatched SIMD level) at the top of a fresh file. Not a wide
  /// event: excluded from the ring and records_written.
  void WriteHeaderLocked() KGPIP_REQUIRES(mu_);
  void RotateLocked() KGPIP_REQUIRES(mu_);

  Options options_;
  mutable util::Mutex mu_{util::LockRank::kServeAudit, "serve.audit"};
  std::FILE* file_ KGPIP_GUARDED_BY(mu_) = nullptr;
  size_t bytes_ KGPIP_GUARDED_BY(mu_) = 0;
  int64_t written_ KGPIP_GUARDED_BY(mu_) = 0;
  int64_t errors_ KGPIP_GUARDED_BY(mu_) = 0;
  bool error_logged_ KGPIP_GUARDED_BY(mu_) = false;
  std::deque<Json> ring_ KGPIP_GUARDED_BY(mu_);
};

}  // namespace kgpip::serve

#endif  // KGPIP_SERVE_AUDIT_LOG_H_
