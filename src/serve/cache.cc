#include "serve/cache.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/fault.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace kgpip::serve {

namespace {

constexpr char kEntryMagic[] = "KGCACHE1";

/// Incremental FNV-1a, bit-compatible with util::Fnv1a64 over the same
/// byte sequence.
struct Fnv1a {
  uint64_t h = 0xCBF29CE484222325ULL;
  void Bytes(const void* data, size_t n) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 0x100000001B3ULL;
    }
  }
  void Str(const std::string& s) {
    Bytes(s.data(), s.size());
    Byte(0);  // terminator so "ab","c" != "a","bc"
  }
  void Byte(unsigned char b) {
    h ^= b;
    h *= 0x100000001B3ULL;
  }
  void U64(uint64_t v) { Bytes(&v, sizeof(v)); }
  void F64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
};

}  // namespace

uint64_t TableDigest(const Table& table) {
  Fnv1a fnv;
  fnv.U64(table.num_rows());
  fnv.U64(table.num_columns());
  fnv.Str(table.target_name());
  for (const Column& col : table.columns()) {
    fnv.Str(col.name());
    fnv.Byte(static_cast<unsigned char>(col.type()));
    const size_t rows = col.size();
    for (size_t r = 0; r < rows; ++r) {
      const bool missing = col.IsMissing(r);
      fnv.Byte(missing ? 1 : 0);
      if (missing) continue;
      if (col.type() == ColumnType::kNumeric) {
        fnv.F64(col.NumericAt(r));
      } else {
        fnv.Str(col.StringAt(r));
      }
    }
  }
  return fnv.h;
}

ArtifactCache::ArtifactCache(Options options)
    : options_(std::move(options)) {}

std::string ArtifactCache::PathForKey(const std::string& key) const {
  if (options_.dir.empty()) return "";
  // Sanitized key keeps entries human-inspectable; the appended FNV of
  // the raw key guarantees distinct keys never share a file.
  std::string safe;
  safe.reserve(key.size());
  for (char c : key) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_';
    safe.push_back(ok ? c : '_');
  }
  if (safe.size() > 80) safe.resize(80);
  return options_.dir + "/" + safe + "-" +
         StrFormat("%016llx", static_cast<unsigned long long>(Fnv1a64(key))) +
         ".kgc";
}

Result<Json> ArtifactCache::LoadEntryFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("no cache entry at '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string contents = buffer.str();

  const std::string prefix = std::string(kEntryMagic) + " ";
  if (!StartsWith(contents, prefix)) {
    return Status::ParseError(StrFormat(
        "cache entry '%s': bad magic in bytes [0, %llu)", path.c_str(),
        static_cast<unsigned long long>(
            std::min<size_t>(contents.size(), prefix.size()))));
  }
  const size_t eol = contents.find('\n');
  if (eol == std::string::npos) {
    return Status::ParseError(StrFormat(
        "cache entry '%s': unterminated header in the first %llu bytes",
        path.c_str(), static_cast<unsigned long long>(contents.size())));
  }
  unsigned long long checksum = 0, declared = 0;
  if (std::sscanf(contents.c_str(), "KGCACHE1 %16llx %llu", &checksum,
                  &declared) != 2) {
    return Status::ParseError(StrFormat(
        "cache entry '%s': malformed header in bytes [0, %llu)",
        path.c_str(), static_cast<unsigned long long>(eol)));
  }
  const size_t payload_offset = eol + 1;
  const std::string payload = contents.substr(payload_offset);
  if (payload.size() != declared) {
    return Status::ParseError(StrFormat(
        "cache entry '%s': truncated or padded payload — header declares "
        "%llu bytes but %llu are present after byte offset %llu",
        path.c_str(), declared,
        static_cast<unsigned long long>(payload.size()),
        static_cast<unsigned long long>(payload_offset)));
  }
  const uint64_t actual = Fnv1a64(payload);
  if (actual != checksum) {
    return Status::ParseError(StrFormat(
        "cache entry '%s': checksum mismatch over payload bytes "
        "[%llu, %llu) — expected %016llx, got %016llx",
        path.c_str(), static_cast<unsigned long long>(payload_offset),
        static_cast<unsigned long long>(payload_offset + payload.size()),
        checksum, static_cast<unsigned long long>(actual)));
  }
  auto json = Json::Parse(payload);
  if (!json.ok()) {
    return Status::ParseError(StrFormat(
        "cache entry '%s': payload (at byte offset %llu) is not valid "
        "JSON: %s",
        path.c_str(), static_cast<unsigned long long>(payload_offset),
        json.status().message().c_str()));
  }
  return std::move(*json);
}

Status ArtifactCache::WriteEntryFile(const std::string& path,
                                     const std::string& payload) {
  std::string body = payload;
  const uint64_t checksum = Fnv1a64(body);
  if (util::FaultInjector* inject = util::FaultInjector::Active()) {
    // Corruption lands *after* the checksum, exactly like artifact
    // saves: the read path must catch it.
    inject->CorruptArtifact(&body);
  }
  const std::string header =
      StrFormat("%s %016llx %llu\n", kEntryMagic,
                static_cast<unsigned long long>(checksum),
                static_cast<unsigned long long>(body.size()));
  // Write-temp-then-rename: the final name either holds the old entry or
  // the complete new one, never a torn write. The temp name includes the
  // thread id so concurrent writers of one key cannot collide.
  std::ostringstream tid;
  tid << std::this_thread::get_id();
  const std::string tmp = path + ".tmp." + tid.str();
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("cannot open '" + tmp + "' for write");
    out << header << body;
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return Status::IoError("write failed for '" + tmp + "'");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("rename '" + tmp + "' -> '" + path + "' failed");
  }
  return Status::Ok();
}

void ArtifactCache::PutMemoryLocked(const std::string& key, Json value) {
  auto it = memory_.find(key);
  if (it != memory_.end()) {
    lru_.erase(it->second);
    memory_.erase(it);
  }
  lru_.emplace_front(key, std::move(value));
  memory_[key] = lru_.begin();
  while (memory_.size() > options_.max_memory_entries && !lru_.empty()) {
    memory_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

Result<Json> ArtifactCache::Get(const std::string& key) {
  KGPIP_TRACE_SPAN("serve.cache_lookup");
  static obs::Counter* hits =
      obs::MetricsRegistry::Global().GetCounter("serve.cache.entry_hits");
  static obs::Counter* misses =
      obs::MetricsRegistry::Global().GetCounter("serve.cache.entry_misses");
  static obs::Counter* corrupt = obs::MetricsRegistry::Global().GetCounter(
      "serve.cache.corrupt_evictions");
  {
    util::MutexLock lock(mu_);
    auto it = memory_.find(key);
    if (it != memory_.end()) {
      // Touch: move to the LRU front.
      lru_.splice(lru_.begin(), lru_, it->second);
      ++stats_.hits;
      hits->Increment();
      return Json(it->second->second);
    }
  }
  const std::string path = PathForKey(key);
  if (!path.empty()) {
    Result<Json> loaded = LoadEntryFile(path);
    if (loaded.ok()) {
      util::MutexLock lock(mu_);
      PutMemoryLocked(key, Json(*loaded));
      ++stats_.hits;
      hits->Increment();
      return loaded;
    }
    if (loaded.status().code() == StatusCode::kParseError) {
      // Corrupt on disk: evict so the rebuild below re-Puts a good
      // entry; a damaged entry is never served.
      KGPIP_LOG(Warning) << "evicting corrupt cache entry: "
                         << loaded.status().ToString();
      std::remove(path.c_str());
      util::MutexLock lock(mu_);
      ++stats_.corrupt_evictions;
      corrupt->Increment();
    }
  }
  {
    util::MutexLock lock(mu_);
    ++stats_.misses;
  }
  misses->Increment();
  return Status::NotFound("no cache entry for key '" + key + "'");
}

Status ArtifactCache::Put(const std::string& key, const Json& value) {
  static obs::Counter* writes =
      obs::MetricsRegistry::Global().GetCounter("serve.cache.writes");
  {
    util::MutexLock lock(mu_);
    PutMemoryLocked(key, Json(value));
    ++stats_.writes;
  }
  writes->Increment();
  const std::string path = PathForKey(key);
  if (path.empty()) return Status::Ok();
  std::error_code ec;
  std::filesystem::create_directories(options_.dir, ec);
  Status written = WriteEntryFile(path, value.Dump());
  if (!written.ok()) {
    // Disk tier is best-effort: a failed write degrades to memory-only.
    KGPIP_LOG(Warning) << "cache disk write failed: " << written.ToString();
  }
  return written;
}

void ArtifactCache::Evict(const std::string& key) {
  {
    util::MutexLock lock(mu_);
    auto it = memory_.find(key);
    if (it != memory_.end()) {
      lru_.erase(it->second);
      memory_.erase(it);
    }
  }
  const std::string path = PathForKey(key);
  if (!path.empty()) std::remove(path.c_str());
}

}  // namespace kgpip::serve
