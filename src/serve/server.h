#ifndef KGPIP_SERVE_SERVER_H_
#define KGPIP_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "automl/system.h"
#include "core/kgpip.h"
#include "data/table.h"
#include "hpo/trial_guard.h"
#include "serve/audit_log.h"
#include "serve/cache.h"
#include "util/cancel.h"
#include "util/mutex.h"
#include "util/stopwatch.h"

namespace kgpip::serve {

/// Daemon configuration. Every knob has a `KGPIP_SERVE_*` environment
/// override (see FromEnv) so the deployed binary is tuned without a
/// rebuild.
struct ServeOptions {
  /// Worker threads executing requests. Heavy per-request math still
  /// fans out on the shared util::ThreadPool, so this bounds *request*
  /// concurrency, not core usage.       env: KGPIP_SERVE_WORKERS
  int num_workers = 2;
  /// Queued-request bound; admissions past it are shed with
  /// kResourceExhausted.               env: KGPIP_SERVE_QUEUE_DEPTH
  size_t max_queue_depth = 16;
  /// Deadline applied to requests that do not carry one.
  ///                                   env: KGPIP_SERVE_DEADLINE_SECONDS
  double default_deadline_seconds = 30.0;
  /// Extra wall-clock a deadline-cancelled request gets to unwind and
  /// report before the soak harness calls it stuck.
  ///                                   env: KGPIP_SERVE_GRACE_SECONDS
  double grace_seconds = 5.0;
  /// Per-tenant token bucket: sustained admissions/second and burst
  /// capacity. <= 0 rate disables the bucket.
  ///                                   env: KGPIP_SERVE_TENANT_RATE
  double tenant_tokens_per_second = 0.0;
  ///                                   env: KGPIP_SERVE_TENANT_BURST
  double tenant_burst_tokens = 8.0;
  /// Consecutive request failures that open a tenant's circuit breaker;
  /// <= 0 disables breaking.           env: KGPIP_SERVE_BREAKER_THRESHOLD
  int breaker_threshold = 5;
  /// Seconds an open tenant breaker sheds before the next request is let
  /// through as a half-open probe.     env: KGPIP_SERVE_BREAKER_COOLDOWN
  double breaker_cooldown_seconds = 2.0;
  /// Queue depth (sampled at dequeue) at which the degradation ladder
  /// steps down one rung; 2x this depth steps down two.
  ///                                   env: KGPIP_SERVE_DEGRADE_DEPTH
  size_t degrade_queue_depth = 8;
  /// Trial cap per request (requests may ask for less, never more).
  ///                                   env: KGPIP_SERVE_MAX_TRIALS
  int max_trials = 12;
  /// On-disk cache directory; empty = memory-only.
  ///                                   env: KGPIP_SERVE_CACHE_DIR
  std::string cache_dir;
  size_t cache_memory_entries = 256;  // env: KGPIP_SERVE_CACHE_ENTRIES
  /// Watchdog scan period.
  double watchdog_period_seconds = 0.02;
  /// Wide-event audit log (one JSON line per finished request); empty
  /// path keeps the in-memory tail ring only.
  ///                                   env: KGPIP_SERVE_AUDIT_LOG
  std::string audit_log_path;
  /// Size at which the audit file rotates to `<path>.1`.
  ///                                   env: KGPIP_SERVE_AUDIT_MAX_BYTES
  size_t audit_max_bytes = 8u << 20;
  /// Recent audit records kept in memory for statusz tail inspection.
  ///                                   env: KGPIP_SERVE_AUDIT_RING
  size_t audit_ring_entries = 256;
  /// Horizon of the sliding-window serve metrics (per-tenant p50/p99,
  /// shed/hit rates): "the last ~window_seconds", not process lifetime.
  ///                                   env: KGPIP_SERVE_WINDOW_SECONDS
  double window_seconds = 60.0;
  /// Latency target for per-tenant SLO burn gauges: the fraction of a
  /// tenant's windowed requests slower than this.
  ///                                   env: KGPIP_SERVE_SLO_TARGET
  double slo_target_seconds = 5.0;

  /// Defaults overlaid with any KGPIP_SERVE_* environment variables.
  static ServeOptions FromEnv();
};

/// One fit request. The table is copied in (requests outlive the
/// submitting scope once queued).
struct FitRequest {
  std::string tenant = "default";
  Table table;
  TaskType task = TaskType::kBinaryClassification;
  /// Trial budget; clamped to ServeOptions::max_trials.
  int max_trials = 8;
  /// Wall-clock deadline; <= 0 uses ServeOptions::default_deadline_seconds.
  double deadline_seconds = 0.0;
  uint64_t seed = 1;
};

/// Terminal outcome of a request. Exactly one is delivered per accepted
/// submission — the daemon never drops a request silently.
struct ServeResponse {
  Status status;
  /// Valid only when status.ok().
  automl::AutoMlResult result;
  /// True when the answer came from the content-hash cache (embedding,
  /// SimIndex, and HPO all skipped).
  bool cache_hit = false;
  /// Degradation rung served at (mirrors result.report.degradation_level).
  int degradation_level = 0;
  double latency_seconds = 0.0;
  /// Process-unique id assigned at Submit — the correlation key across
  /// trace spans, log records, and the audit line for this request.
  uint64_t request_id = 0;

  ServeResponse() : status(Status::Ok()) {}
};

/// Long-lived serving daemon over one trained (const, thread-safe) Kgpip
/// instance. Robustness model:
///
///   * Admission control: bounded queue + per-tenant token buckets +
///     per-tenant circuit breakers. Overload is shed *at the door* with
///     kResourceExhausted; a draining server refuses with
///     kFailedPrecondition.
///   * Deadlines: each request carries one; a watchdog thread fails
///     still-queued expired requests directly and cooperatively cancels
///     running ones (CancelToken polled inside SimIndex scans and the
///     optimizer loop; the per-trial deadline comes from the request's
///     remaining time via hpo::TrialGuardOptions).
///   * Degradation ladder, sampled from queue depth at dequeue:
///     rung 0 full fit, rung 1 cached-skeleton fit (reduced budget,
///     top-1 skeleton), rung 2 zero-shot top-1 skeleton (no HPO).
///   * Crash-safe caching: results and nearest-neighbour query answers
///     keyed by dataset content digest in an ArtifactCache; a repeated
///     fit of an identical table is a cache hit that skips embedding +
///     SimIndex + HPO entirely. Corrupt entries are evicted and rebuilt.
///
/// Lifecycle: construct -> Start() -> Submit()* -> BeginDrain() ->
/// AwaitDrained() -> Stop(). Stop() without a drain cancels in-flight
/// work. The destructor calls Stop().
class Server {
 public:
  Server(const core::Kgpip* model, ServeOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Spawns workers + watchdog. Fails if the model is not trained.
  Status Start();

  /// Admits or sheds `request`. The returned future always becomes ready
  /// with a definite ServeResponse — immediately (shed/drain refusals
  /// carry the rejection status) or when the request completes, is
  /// cancelled by the watchdog, or fails.
  std::future<ServeResponse> Submit(FitRequest request);

  /// Stops admitting (new Submits get kFailedPrecondition) while letting
  /// queued + running requests finish. SIGTERM handler entry point.
  void BeginDrain();
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  /// Blocks until the queue and all in-flight requests are done, or
  /// `timeout_seconds` elapse. Returns true when fully drained.
  bool AwaitDrained(double timeout_seconds);

  /// Drains admission, wakes everything, joins workers + watchdog.
  /// Requests still pending are failed (kFailedPrecondition), never left
  /// unresolved. Idempotent.
  void Stop();

  size_t queue_depth() const;
  size_t inflight() const;
  const ArtifactCache& cache() const { return cache_; }
  ArtifactCache& mutable_cache() { return cache_; }
  const AuditLog& audit_log() const { return audit_; }
  const ServeOptions& options() const { return options_; }

  /// Live introspection snapshot — the daemon's statusz. Safe to call
  /// from any thread at any time, including mid-soak: the server lock is
  /// held only while copying queue/in-flight/tenant state, then each
  /// subsystem (cache, audit ring, windows, pool, lock-rank info) is
  /// sampled in rank order with it released.
  ///
  /// {"queue": [{id,tenant,age_seconds,deadline_seconds}...],
  ///  "inflight": [{id,tenant,stage,elapsed_seconds,cancelled}...],
  ///  "tenants": {name: {tokens,breaker_open,consecutive_failures}...},
  ///  "cache": {...}, "audit": {...tail...}, "windows": {...},
  ///  "counters": {...}, "pool": {...}, "locks": {...}, "options": {...}}
  Json DebugStatus() const;
  /// The same snapshot rendered for a terminal / SIGUSR1 dump.
  std::string DebugStatusText() const;

  /// Cache key helpers (exposed for tests and repair tooling).
  static std::string ResultCacheKey(uint64_t digest, TaskType task,
                                    int max_trials);
  static std::string QueryCacheKey(uint64_t digest);

 private:
  enum class RequestState { kQueued, kRunning, kDone };

  struct Pending {
    FitRequest request;
    std::promise<ServeResponse> promise;
    /// Guards the one-shot promise across worker/watchdog races.
    std::atomic<bool> responded{false};
    std::atomic<RequestState> state{RequestState::kQueued};
    util::CancelToken cancel;
    Stopwatch admitted;
    double deadline_seconds = 0.0;
    /// Process-unique request id, assigned in Submit before admission so
    /// even refusals are attributable.
    uint64_t id = 0;
    /// Table content digest, computed once in Submit and reused by the
    /// cache probes (the request is immutable after admission).
    uint64_t digest = 0;
    /// Admission-time tenant state (written once under mu_ before the
    /// request is published; read only after it finished).
    bool breaker_half_open = false;
    double bucket_tokens = -1.0;  // post-admission balance; -1 = no bucket
    /// Execution checkpoints for statusz ("queued", "cache_probe",
    /// "fit", ...). Static strings only; updated lock-free by the worker,
    /// read by DebugStatus.
    std::atomic<const char*> stage{"queued"};
    /// Microseconds spent queued (set at dequeue; -1 = never dequeued).
    std::atomic<int64_t> queue_wait_micros{-1};
    /// Cache tier that answered: 0 none, 1 result, 2 query.
    std::atomic<int> cache_tier{0};
  };

  struct TenantState {
    double tokens = 0.0;
    bool bucket_started = false;
    Stopwatch since_refill;
    int consecutive_failures = 0;
    bool breaker_open = false;
    Stopwatch breaker_opened;
  };

  /// Fulfils the promise exactly once; later calls are no-ops. The
  /// winning call also emits the request's wide-event audit line and its
  /// sliding-window samples — fusing those with the promise race is what
  /// makes "exactly one audit line per submitted request" hold across
  /// worker/watchdog/shed/stop outcomes. Must be called with mu_
  /// released (audit + window locks rank below it).
  void Respond(const std::shared_ptr<Pending>& pending,
               ServeResponse response) KGPIP_EXCLUDES(mu_);

  void WorkerLoop(int worker_index);
  void WatchdogLoop();

  /// Publishes per-tenant windowed p50/p99 + SLO burn gauges and global
  /// shed/hit rates (called from the watchdog about once a second).
  void ExportWindowGauges() KGPIP_EXCLUDES(mu_);

  /// Admission check under `mu_`; returns a shed/refusal status or OK.
  /// Stamps the admission-time breaker/bucket observations into
  /// `pending` for the audit line.
  Status AdmitLocked(Pending& pending) KGPIP_REQUIRES(mu_);
  void RecordOutcomeForTenant(const std::string& tenant, bool ok)
      KGPIP_EXCLUDES(mu_);

  /// Executes one request end to end (cache probe, degradation ladder,
  /// fit, cache fill). Never throws; always returns a definite response.
  ServeResponse Execute(Pending& pending, int degradation_level);

  /// Rung 2: top-1 skeleton with default params, refit once, no HPO.
  ServeResponse ZeroShot(Pending& pending);

  const core::Kgpip* model_;
  ServeOptions options_;
  ArtifactCache cache_;
  AuditLog audit_;
  std::atomic<uint64_t> next_request_id_{1};

  /// The daemon's outermost lock (LockRank::kServeServer): admission
  /// queue, tenant state, in-flight set, lifecycle flags. Request
  /// execution (cache, model, pool) always runs with it released.
  mutable util::Mutex mu_{util::LockRank::kServeServer, "serve.server"};
  util::CondVar cv_;
  util::CondVar drained_cv_;
  std::deque<std::shared_ptr<Pending>> queue_ KGPIP_GUARDED_BY(mu_);
  std::vector<std::shared_ptr<Pending>> inflight_ KGPIP_GUARDED_BY(mu_);
  std::map<std::string, TenantState> tenants_ KGPIP_GUARDED_BY(mu_);
  std::vector<std::thread> workers_ KGPIP_GUARDED_BY(mu_);
  std::thread watchdog_ KGPIP_GUARDED_BY(mu_);
  /// Atomics, not mu_-guarded: read on hot admission/worker paths, but
  /// every store happens WITH mu_ held so a cv waiter between its
  /// predicate check and its block (which owns mu_) can never miss the
  /// transition (see BeginDrain/Stop).
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopping_{false};
  bool started_ KGPIP_GUARDED_BY(mu_) = false;
};

/// Serializes a pipeline spec for cache entries (numeric and string
/// hyper-parameters kept apart so the round trip is lossless).
Json SpecToJson(const ml::PipelineSpec& spec);
Result<ml::PipelineSpec> SpecFromJson(const Json& json);

}  // namespace kgpip::serve

#endif  // KGPIP_SERVE_SERVER_H_
