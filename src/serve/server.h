#ifndef KGPIP_SERVE_SERVER_H_
#define KGPIP_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "automl/system.h"
#include "core/kgpip.h"
#include "data/table.h"
#include "hpo/trial_guard.h"
#include "serve/cache.h"
#include "util/cancel.h"
#include "util/mutex.h"
#include "util/stopwatch.h"

namespace kgpip::serve {

/// Daemon configuration. Every knob has a `KGPIP_SERVE_*` environment
/// override (see FromEnv) so the deployed binary is tuned without a
/// rebuild.
struct ServeOptions {
  /// Worker threads executing requests. Heavy per-request math still
  /// fans out on the shared util::ThreadPool, so this bounds *request*
  /// concurrency, not core usage.       env: KGPIP_SERVE_WORKERS
  int num_workers = 2;
  /// Queued-request bound; admissions past it are shed with
  /// kResourceExhausted.               env: KGPIP_SERVE_QUEUE_DEPTH
  size_t max_queue_depth = 16;
  /// Deadline applied to requests that do not carry one.
  ///                                   env: KGPIP_SERVE_DEADLINE_SECONDS
  double default_deadline_seconds = 30.0;
  /// Extra wall-clock a deadline-cancelled request gets to unwind and
  /// report before the soak harness calls it stuck.
  ///                                   env: KGPIP_SERVE_GRACE_SECONDS
  double grace_seconds = 5.0;
  /// Per-tenant token bucket: sustained admissions/second and burst
  /// capacity. <= 0 rate disables the bucket.
  ///                                   env: KGPIP_SERVE_TENANT_RATE
  double tenant_tokens_per_second = 0.0;
  ///                                   env: KGPIP_SERVE_TENANT_BURST
  double tenant_burst_tokens = 8.0;
  /// Consecutive request failures that open a tenant's circuit breaker;
  /// <= 0 disables breaking.           env: KGPIP_SERVE_BREAKER_THRESHOLD
  int breaker_threshold = 5;
  /// Seconds an open tenant breaker sheds before the next request is let
  /// through as a half-open probe.     env: KGPIP_SERVE_BREAKER_COOLDOWN
  double breaker_cooldown_seconds = 2.0;
  /// Queue depth (sampled at dequeue) at which the degradation ladder
  /// steps down one rung; 2x this depth steps down two.
  ///                                   env: KGPIP_SERVE_DEGRADE_DEPTH
  size_t degrade_queue_depth = 8;
  /// Trial cap per request (requests may ask for less, never more).
  ///                                   env: KGPIP_SERVE_MAX_TRIALS
  int max_trials = 12;
  /// On-disk cache directory; empty = memory-only.
  ///                                   env: KGPIP_SERVE_CACHE_DIR
  std::string cache_dir;
  size_t cache_memory_entries = 256;  // env: KGPIP_SERVE_CACHE_ENTRIES
  /// Watchdog scan period.
  double watchdog_period_seconds = 0.02;

  /// Defaults overlaid with any KGPIP_SERVE_* environment variables.
  static ServeOptions FromEnv();
};

/// One fit request. The table is copied in (requests outlive the
/// submitting scope once queued).
struct FitRequest {
  std::string tenant = "default";
  Table table;
  TaskType task = TaskType::kBinaryClassification;
  /// Trial budget; clamped to ServeOptions::max_trials.
  int max_trials = 8;
  /// Wall-clock deadline; <= 0 uses ServeOptions::default_deadline_seconds.
  double deadline_seconds = 0.0;
  uint64_t seed = 1;
};

/// Terminal outcome of a request. Exactly one is delivered per accepted
/// submission — the daemon never drops a request silently.
struct ServeResponse {
  Status status;
  /// Valid only when status.ok().
  automl::AutoMlResult result;
  /// True when the answer came from the content-hash cache (embedding,
  /// SimIndex, and HPO all skipped).
  bool cache_hit = false;
  /// Degradation rung served at (mirrors result.report.degradation_level).
  int degradation_level = 0;
  double latency_seconds = 0.0;

  ServeResponse() : status(Status::Ok()) {}
};

/// Long-lived serving daemon over one trained (const, thread-safe) Kgpip
/// instance. Robustness model:
///
///   * Admission control: bounded queue + per-tenant token buckets +
///     per-tenant circuit breakers. Overload is shed *at the door* with
///     kResourceExhausted; a draining server refuses with
///     kFailedPrecondition.
///   * Deadlines: each request carries one; a watchdog thread fails
///     still-queued expired requests directly and cooperatively cancels
///     running ones (CancelToken polled inside SimIndex scans and the
///     optimizer loop; the per-trial deadline comes from the request's
///     remaining time via hpo::TrialGuardOptions).
///   * Degradation ladder, sampled from queue depth at dequeue:
///     rung 0 full fit, rung 1 cached-skeleton fit (reduced budget,
///     top-1 skeleton), rung 2 zero-shot top-1 skeleton (no HPO).
///   * Crash-safe caching: results and nearest-neighbour query answers
///     keyed by dataset content digest in an ArtifactCache; a repeated
///     fit of an identical table is a cache hit that skips embedding +
///     SimIndex + HPO entirely. Corrupt entries are evicted and rebuilt.
///
/// Lifecycle: construct -> Start() -> Submit()* -> BeginDrain() ->
/// AwaitDrained() -> Stop(). Stop() without a drain cancels in-flight
/// work. The destructor calls Stop().
class Server {
 public:
  Server(const core::Kgpip* model, ServeOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Spawns workers + watchdog. Fails if the model is not trained.
  Status Start();

  /// Admits or sheds `request`. The returned future always becomes ready
  /// with a definite ServeResponse — immediately (shed/drain refusals
  /// carry the rejection status) or when the request completes, is
  /// cancelled by the watchdog, or fails.
  std::future<ServeResponse> Submit(FitRequest request);

  /// Stops admitting (new Submits get kFailedPrecondition) while letting
  /// queued + running requests finish. SIGTERM handler entry point.
  void BeginDrain();
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  /// Blocks until the queue and all in-flight requests are done, or
  /// `timeout_seconds` elapse. Returns true when fully drained.
  bool AwaitDrained(double timeout_seconds);

  /// Drains admission, wakes everything, joins workers + watchdog.
  /// Requests still pending are failed (kFailedPrecondition), never left
  /// unresolved. Idempotent.
  void Stop();

  size_t queue_depth() const;
  size_t inflight() const;
  const ArtifactCache& cache() const { return cache_; }
  ArtifactCache& mutable_cache() { return cache_; }
  const ServeOptions& options() const { return options_; }

  /// Cache key helpers (exposed for tests and repair tooling).
  static std::string ResultCacheKey(uint64_t digest, TaskType task,
                                    int max_trials);
  static std::string QueryCacheKey(uint64_t digest);

 private:
  enum class RequestState { kQueued, kRunning, kDone };

  struct Pending {
    FitRequest request;
    std::promise<ServeResponse> promise;
    /// Guards the one-shot promise across worker/watchdog races.
    std::atomic<bool> responded{false};
    std::atomic<RequestState> state{RequestState::kQueued};
    util::CancelToken cancel;
    Stopwatch admitted;
    double deadline_seconds = 0.0;
  };

  struct TenantState {
    double tokens = 0.0;
    bool bucket_started = false;
    Stopwatch since_refill;
    int consecutive_failures = 0;
    bool breaker_open = false;
    Stopwatch breaker_opened;
  };

  /// Fulfils the promise exactly once; later calls are no-ops.
  static void Respond(const std::shared_ptr<Pending>& pending,
                      ServeResponse response);

  void WorkerLoop(int worker_index);
  void WatchdogLoop();

  /// Admission check under `mu_`; returns a shed/refusal status or OK.
  Status AdmitLocked(const FitRequest& request) KGPIP_REQUIRES(mu_);
  void RecordOutcomeForTenant(const std::string& tenant, bool ok)
      KGPIP_EXCLUDES(mu_);

  /// Executes one request end to end (cache probe, degradation ladder,
  /// fit, cache fill). Never throws; always returns a definite response.
  ServeResponse Execute(Pending& pending, int degradation_level);

  /// Rung 2: top-1 skeleton with default params, refit once, no HPO.
  ServeResponse ZeroShot(Pending& pending);

  const core::Kgpip* model_;
  ServeOptions options_;
  ArtifactCache cache_;

  /// The daemon's outermost lock (LockRank::kServeServer): admission
  /// queue, tenant state, in-flight set, lifecycle flags. Request
  /// execution (cache, model, pool) always runs with it released.
  mutable util::Mutex mu_{util::LockRank::kServeServer, "serve.server"};
  util::CondVar cv_;
  util::CondVar drained_cv_;
  std::deque<std::shared_ptr<Pending>> queue_ KGPIP_GUARDED_BY(mu_);
  std::vector<std::shared_ptr<Pending>> inflight_ KGPIP_GUARDED_BY(mu_);
  std::map<std::string, TenantState> tenants_ KGPIP_GUARDED_BY(mu_);
  std::vector<std::thread> workers_ KGPIP_GUARDED_BY(mu_);
  std::thread watchdog_ KGPIP_GUARDED_BY(mu_);
  /// Atomics, not mu_-guarded: read on hot admission/worker paths, but
  /// every store happens WITH mu_ held so a cv waiter between its
  /// predicate check and its block (which owns mu_) can never miss the
  /// transition (see BeginDrain/Stop).
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopping_{false};
  bool started_ KGPIP_GUARDED_BY(mu_) = false;
};

/// Serializes a pipeline spec for cache entries (numeric and string
/// hyper-parameters kept apart so the round trip is lossless).
Json SpecToJson(const ml::PipelineSpec& spec);
Result<ml::PipelineSpec> SpecFromJson(const Json& json);

}  // namespace kgpip::serve

#endif  // KGPIP_SERVE_SERVER_H_
