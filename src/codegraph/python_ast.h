#ifndef KGPIP_CODEGRAPH_PYTHON_AST_H_
#define KGPIP_CODEGRAPH_PYTHON_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace kgpip::codegraph {

/// AST for the Python subset that data-science notebooks exercise:
/// imports, assignments (incl. tuple unpacking), attribute chains, calls
/// with positional/keyword arguments, subscripts, literals, lists, and
/// `for`/`if` blocks. That is the same surface GraphGen4Code models for
/// flow analysis of ML scripts.

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind {
  kName,       // x
  kAttribute,  // value.attr
  kCall,       // func(args, kw=...)
  kConstant,   // "str" | number
  kList,       // [a, b]
  kSubscript,  // value[index]
  kBinOp,      // a + b (operator kept as text)
};

struct KeywordArg;

struct Expr {
  ExprKind kind = ExprKind::kName;
  // kName: `text` is the identifier. kAttribute: `text` is the attribute.
  // kConstant: `text` is the literal spelling; `is_string` marks strings.
  // kBinOp: `text` is the operator.
  std::string text;
  bool is_string = false;
  ExprPtr value;               // attribute/subscript/call target, binop lhs
  ExprPtr index;               // subscript index, binop rhs
  std::vector<ExprPtr> args;   // call args / list elements
  std::vector<KeywordArg> keywords;
  int line = 0;
};

struct KeywordArg {
  std::string name;
  ExprPtr value;
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

enum class StmtKind {
  kAssign,      // targets = value
  kExpr,        // bare expression (usually a call)
  kImport,      // import module [as alias]
  kImportFrom,  // from module import name [as alias]
  kFor,         // for var in iter: body
  kIf,          // if cond: body [else: orelse]
};

struct Stmt {
  StmtKind kind = StmtKind::kExpr;
  // kAssign: `targets` (Name/Attribute/Subscript), `value`.
  std::vector<ExprPtr> targets;
  ExprPtr value;  // assign RHS, expr-statement, for-iterable, if-condition
  // Imports.
  std::string module;
  std::string imported_name;  // from-import only
  std::string alias;
  // for-loop variable.
  std::string loop_var;
  std::vector<StmtPtr> body;
  std::vector<StmtPtr> orelse;
  int line = 0;
};

struct Module {
  std::vector<StmtPtr> statements;
};

/// Parses a script; reports the first syntax error with its line.
Result<Module> ParsePython(const std::string& source);

/// Renders an expression back to compact Python-ish text (diagnostics).
std::string ExprToString(const Expr& expr);

}  // namespace kgpip::codegraph

#endif  // KGPIP_CODEGRAPH_PYTHON_AST_H_
