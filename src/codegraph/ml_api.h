#ifndef KGPIP_CODEGRAPH_ML_API_H_
#define KGPIP_CODEGRAPH_ML_API_H_

#include <string>
#include <vector>

namespace kgpip::codegraph {

/// One supported ML-framework API: a Python class path and the canonical
/// operator name KGpip uses for it in pipeline skeletons.
struct MlApiEntry {
  /// e.g. "sklearn.ensemble.RandomForestClassifier".
  std::string python_class;
  /// e.g. "random_forest" (matches ml::LearnerRegistry /
  /// ml::TransformerRegistry, or a featurizer-level op).
  std::string canonical;
  bool is_estimator = false;
};

/// Every sklearn / XGBoost / LightGBM class the filter keeps — the paper's
/// target frameworks ("namely, Scikit-learn, XGBoost, and LGBM").
const std::vector<MlApiEntry>& MlApiTable();

/// Maps a resolved qualified call name (possibly with a trailing method,
/// e.g. ".fit") to its canonical op; returns "" for non-ML calls.
std::string CanonicalizeMlCall(const std::string& qualified,
                               bool* is_estimator);

/// Reverse lookup: the Python class used in generated scripts for a
/// canonical op name, picking the classifier or regressor variant.
std::string PythonClassFor(const std::string& canonical, bool regression);

}  // namespace kgpip::codegraph

#endif  // KGPIP_CODEGRAPH_ML_API_H_
