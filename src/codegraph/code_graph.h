#ifndef KGPIP_CODEGRAPH_CODE_GRAPH_H_
#define KGPIP_CODEGRAPH_CODE_GRAPH_H_

#include <string>
#include <vector>

namespace kgpip::codegraph {

/// Node flavours of a GraphGen4Code-style code graph. Beyond call and
/// variable nodes, the real toolkit emits many auxiliary nodes (source
/// locations, parameters, literals, documentation); they dominate graph
/// size and are exactly what KGpip's filter removes.
enum class NodeKind {
  kCall,       // an invocation, labeled with its resolved qualified name
  kVariable,   // a named binding
  kLiteral,    // constant value
  kImport,     // module import
  kParameter,  // one argument slot of a call
  kLocation,   // source position record
  kDoc,        // docstring / comment-ish metadata
  kDataset,    // dataset anchor added by Graph4ML linking
};

const char* NodeKindName(NodeKind kind);

enum class EdgeKind {
  kDataFlow,     // value produced by src flows into dst
  kControlFlow,  // src executes immediately before dst
  kParameter,    // call -> parameter node
  kLocation,     // node -> location record
  kDoc,          // node -> documentation record
};

const char* EdgeKindName(EdgeKind kind);

struct CodeNode {
  NodeKind kind = NodeKind::kCall;
  /// Resolved qualified label, e.g. "sklearn.svm.SVC.fit",
  /// "pandas.read_csv", a variable name, or a literal spelling.
  std::string label;
  int line = 0;
};

struct CodeEdge {
  int src = 0;
  int dst = 0;
  EdgeKind kind = EdgeKind::kDataFlow;
};

/// A per-script code graph.
struct CodeGraph {
  std::string script_name;
  std::vector<CodeNode> nodes;
  std::vector<CodeEdge> edges;

  int AddNode(NodeKind kind, std::string label, int line) {
    nodes.push_back({kind, std::move(label), line});
    return static_cast<int>(nodes.size()) - 1;
  }
  void AddEdge(int src, int dst, EdgeKind kind) {
    edges.push_back({src, dst, kind});
  }
  size_t CountNodes(NodeKind kind) const;
  size_t CountEdges(EdgeKind kind) const;
};

}  // namespace kgpip::codegraph

#endif  // KGPIP_CODEGRAPH_CODE_GRAPH_H_
