#ifndef KGPIP_CODEGRAPH_CORPUS_H_
#define KGPIP_CODEGRAPH_CORPUS_H_

#include <string>
#include <vector>

#include "data/synthetic.h"
#include "util/rng.h"

namespace kgpip::codegraph {

/// One synthetic "Kaggle notebook": Python source plus the association
/// metadata a portal provides (which dataset the script belongs to).
/// Ground-truth fields record what the generator put in, for tests and
/// for the Figure 9 corpus statistics.
struct NotebookScript {
  std::string name;
  std::string dataset_name;
  std::string text;
  /// Canonical estimator this script trains ("" for noise scripts).
  std::string estimator;
  std::vector<std::string> transformers;
  bool is_ml_pipeline = false;
};

struct CorpusOptions {
  /// ML pipelines per dataset (top-of-leaderboard style scripts).
  int pipelines_per_dataset = 12;
  /// EDA-only / unsupported-framework scripts per dataset — the majority
  /// of a real portal dump, which the filter must discard (the paper kept
  /// 2,046 of 11.7K scripts).
  int noise_scripts_per_dataset = 8;
  /// Probability a pipeline's read_csv hides the dataset name (the paper:
  /// "in some cases, the code ... does not explicitly mention the dataset
  /// name"), forcing the portal association to supply it.
  double implicit_dataset_prob = 0.15;
  /// Probability a pipeline uses an off-profile estimator (real
  /// leaderboards are biased toward what works, not unanimous).
  double off_profile_prob = 0.15;
  uint64_t seed = 42;
};

/// Generates notebook scripts for datasets. Estimator choice is biased by
/// each dataset's concept family the same way Kaggle leaderboards are
/// biased: the learners that genuinely fit the data dominate the
/// top-scoring scripts.
class CorpusGenerator {
 public:
  explicit CorpusGenerator(CorpusOptions options = {});

  /// All scripts for one dataset (draws from the generator's own stream).
  std::vector<NotebookScript> GenerateForDataset(const DatasetSpec& spec);

  /// Scripts for a whole list of datasets. Forks one RNG stream per
  /// dataset up front and fans the per-dataset generation out over the
  /// global thread pool; output order and content are identical at any
  /// thread count (and to KGPIP_THREADS=1).
  std::vector<NotebookScript> GenerateCorpus(
      const std::vector<DatasetSpec>& specs);

 private:
  std::vector<NotebookScript> GenerateForDataset(const DatasetSpec& spec,
                                                 Rng* rng) const;
  NotebookScript GeneratePipeline(const DatasetSpec& spec, int index,
                                  Rng* rng) const;
  NotebookScript GenerateNoiseScript(const DatasetSpec& spec, int index,
                                     Rng* rng) const;

  CorpusOptions options_;
  Rng rng_;
};

}  // namespace kgpip::codegraph

#endif  // KGPIP_CODEGRAPH_CORPUS_H_
