#include "codegraph/code_graph.h"

namespace kgpip::codegraph {

const char* NodeKindName(NodeKind kind) {
  switch (kind) {
    case NodeKind::kCall:
      return "call";
    case NodeKind::kVariable:
      return "variable";
    case NodeKind::kLiteral:
      return "literal";
    case NodeKind::kImport:
      return "import";
    case NodeKind::kParameter:
      return "parameter";
    case NodeKind::kLocation:
      return "location";
    case NodeKind::kDoc:
      return "doc";
    case NodeKind::kDataset:
      return "dataset";
  }
  return "?";
}

const char* EdgeKindName(EdgeKind kind) {
  switch (kind) {
    case EdgeKind::kDataFlow:
      return "data_flow";
    case EdgeKind::kControlFlow:
      return "control_flow";
    case EdgeKind::kParameter:
      return "parameter";
    case EdgeKind::kLocation:
      return "location";
    case EdgeKind::kDoc:
      return "doc";
  }
  return "?";
}

size_t CodeGraph::CountNodes(NodeKind kind) const {
  size_t n = 0;
  for (const CodeNode& node : nodes) {
    if (node.kind == kind) ++n;
  }
  return n;
}

size_t CodeGraph::CountEdges(EdgeKind kind) const {
  size_t n = 0;
  for (const CodeEdge& edge : edges) {
    if (edge.kind == kind) ++n;
  }
  return n;
}

}  // namespace kgpip::codegraph
