#include "codegraph/analyzer.h"

#include <map>
#include <set>
#include <vector>

#include "codegraph/analysis/call_graph.h"
#include "codegraph/analysis/pass_manager.h"
#include "codegraph/analysis/type_flow.h"
#include "codegraph/analysis/verifier.h"
#include "codegraph/ml_api.h"
#include "util/string_util.h"

namespace kgpip::codegraph {

namespace {

using analysis::TypeEnv;

/// Per-script graph emission. Types come from the flow-sensitive
/// TypeFlowPass (each statement sees the environment that actually
/// reaches it); this walk only tracks which graph nodes produce each
/// variable's value, forking and merging that node environment at
/// branches so a use after `if/else` draws data flow from both arms.
class Analysis {
 public:
  Analysis(const std::string& script_name, const AnalyzerOptions& options,
           const Module& module)
      : options_(options), pm_(&module) {
    graph_.script_name = script_name;
  }

  Status Run() {
    types_ = &pm_.Get<analysis::TypeFlowPass>();
    return VisitBlock(pm_.module().statements);
  }

  CodeGraph Take() { return std::move(graph_); }

 private:
  /// var -> graph nodes that may produce its current value.
  using NodeEnv = std::map<std::string, std::set<int>>;

  static NodeEnv MergeEnvs(const NodeEnv& a, const NodeEnv& b) {
    NodeEnv out = a;
    for (const auto& [var, nodes] : b) {
      out[var].insert(nodes.begin(), nodes.end());
    }
    return out;
  }

  Status VisitBlock(const std::vector<StmtPtr>& block) {
    for (const StmtPtr& stmt : block) {
      KGPIP_RETURN_IF_ERROR(VisitStmt(*stmt));
    }
    return Status::Ok();
  }

  Status VisitStmt(const Stmt& stmt) {
    current_stmt_ = &stmt;
    switch (stmt.kind) {
      case StmtKind::kImport: {
        std::string alias = stmt.alias.empty() ? stmt.module : stmt.alias;
        int node = graph_.AddNode(NodeKind::kImport, stmt.module, stmt.line);
        import_nodes_[alias] = node;
        MaybeLocation(node, stmt.line);
        return Status::Ok();
      }
      case StmtKind::kImportFrom: {
        std::string alias =
            stmt.alias.empty() ? stmt.imported_name : stmt.alias;
        int node = graph_.AddNode(NodeKind::kImport,
                                  stmt.module + "." + stmt.imported_name,
                                  stmt.line);
        import_nodes_[alias] = node;
        MaybeLocation(node, stmt.line);
        return Status::Ok();
      }
      case StmtKind::kAssign: {
        std::vector<int> value_nodes = VisitExpr(*stmt.value);
        for (const ExprPtr& target : stmt.targets) {
          if (target->kind == ExprKind::kName) {
            // The environment points at the producing nodes so downstream
            // uses flow from them; the variable node itself is metadata.
            int var_node = graph_.AddNode(NodeKind::kVariable, target->text,
                                          stmt.line);
            for (int value : value_nodes) {
              graph_.AddEdge(value, var_node, EdgeKind::kDataFlow);
            }
            if (!value_nodes.empty()) {
              env_[target->text] =
                  std::set<int>(value_nodes.begin(), value_nodes.end());
            }
          } else {
            // Attribute / subscript target: flow into the base object.
            std::vector<int> base_nodes = VisitExpr(*target);
            for (int value : value_nodes) {
              for (int base : base_nodes) {
                graph_.AddEdge(value, base, EdgeKind::kDataFlow);
              }
            }
          }
        }
        return Status::Ok();
      }
      case StmtKind::kExpr:
        VisitExpr(*stmt.value);
        return Status::Ok();
      case StmtKind::kFor: {
        std::vector<int> iter_nodes = VisitExpr(*stmt.value);
        if (!iter_nodes.empty()) {
          env_[stmt.loop_var] =
              std::set<int>(iter_nodes.begin(), iter_nodes.end());
        }
        // The body is emitted once; re-emitting per iteration would both
        // duplicate nodes and thread a value into its own producer,
        // breaking the data-flow DAG invariant. (The type fixpoint still
        // runs in TypeFlowPass, which has no such constraint.)
        return VisitBlock(stmt.body);
      }
      case StmtKind::kIf: {
        VisitExpr(*stmt.value);
        NodeEnv entry = env_;
        KGPIP_RETURN_IF_ERROR(VisitBlock(stmt.body));
        NodeEnv then_env = std::move(env_);
        env_ = entry;
        KGPIP_RETURN_IF_ERROR(VisitBlock(stmt.orelse));
        // Join: a later use may draw its value from either arm (or from
        // before the branch when an arm leaves the variable untouched).
        env_ = MergeEnvs(then_env, env_);
        return Status::Ok();
      }
    }
    return Status::Ok();
  }

  /// Emits graph structure for an expression; returns the nodes that may
  /// produce its value (empty if none).
  std::vector<int> VisitExpr(const Expr& expr) {
    switch (expr.kind) {
      case ExprKind::kName: {
        auto it = env_.find(expr.text);
        if (it == env_.end()) return {};
        return std::vector<int>(it->second.begin(), it->second.end());
      }
      case ExprKind::kConstant:
        return {graph_.AddNode(NodeKind::kLiteral, expr.text, expr.line)};
      case ExprKind::kList: {
        int list_node =
            graph_.AddNode(NodeKind::kLiteral, "[list]", expr.line);
        for (const ExprPtr& item : expr.args) {
          for (int item_node : VisitExpr(*item)) {
            graph_.AddEdge(item_node, list_node, EdgeKind::kDataFlow);
          }
        }
        return {list_node};
      }
      case ExprKind::kSubscript: {
        std::vector<int> base_nodes = VisitExpr(*expr.value);
        VisitExpr(*expr.index);
        // Value flows through the subscript.
        return base_nodes;
      }
      case ExprKind::kBinOp: {
        std::vector<int> nodes = VisitExpr(*expr.value);
        std::vector<int> rhs = VisitExpr(*expr.index);
        nodes.insert(nodes.end(), rhs.begin(), rhs.end());
        return nodes;
      }
      case ExprKind::kAttribute:
        // Bare attribute read (not a call): flows from the base object.
        return VisitExpr(*expr.value);
      case ExprKind::kCall:
        return VisitCall(expr);
    }
    return {};
  }

  std::vector<int> VisitCall(const Expr& call) {
    const TypeEnv& type_env = types_->EnvAt(current_stmt_);
    std::string via_alias;
    std::vector<std::string> candidates = analysis::ResolveCalleeNames(
        *call.value, type_env, types_->imports, &via_alias);
    std::vector<int> receivers = ReceiverNodes(*call.value);

    // One call node per candidate qualified name. The primary (first)
    // candidate carries arguments, control flow and auxiliary nodes; the
    // others exist so downstream consumers (filter, verifier) see every
    // type the receiver may have at this point.
    int primary = -1;
    auto import_it = import_nodes_.find(via_alias);
    for (const std::string& qualified : candidates) {
      int call_node = graph_.AddNode(NodeKind::kCall, qualified, call.line);
      if (primary < 0) primary = call_node;
      for (int receiver : receivers) {
        graph_.AddEdge(receiver, call_node, EdgeKind::kDataFlow);
      }
      // Root the call in its import so "every import-rooted ML call is
      // reachable from an import node" is a checkable invariant.
      if (!via_alias.empty() && import_it != import_nodes_.end()) {
        graph_.AddEdge(import_it->second, call_node, EdgeKind::kDataFlow);
      }
    }

    // Control flow from the previous call in program order.
    if (last_call_node_ >= 0) {
      graph_.AddEdge(last_call_node_, primary, EdgeKind::kControlFlow);
    }
    last_call_node_ = primary;

    int arg_index = 0;
    auto handle_arg = [&](const Expr& arg, const std::string& kw) {
      std::vector<int> arg_nodes = VisitExpr(arg);
      if (options_.emit_parameter_nodes) {
        std::string label = kw.empty()
                                ? "arg" + std::to_string(arg_index)
                                : kw;
        int param = graph_.AddNode(NodeKind::kParameter, label, call.line);
        graph_.AddEdge(primary, param, EdgeKind::kParameter);
        for (int arg_node : arg_nodes) {
          graph_.AddEdge(arg_node, param, EdgeKind::kDataFlow);
        }
      }
      for (int arg_node : arg_nodes) {
        graph_.AddEdge(arg_node, primary, EdgeKind::kDataFlow);
      }
      ++arg_index;
    };
    for (const ExprPtr& arg : call.args) handle_arg(*arg, "");
    for (const KeywordArg& kw : call.keywords) handle_arg(*kw.value, kw.name);

    MaybeLocation(primary, call.line);
    if (options_.emit_doc_nodes && call.line % 4 == 0) {
      int doc = graph_.AddNode(NodeKind::kDoc, "doc", call.line);
      graph_.AddEdge(primary, doc, EdgeKind::kDoc);
    }
    return {primary};
  }

  /// The nodes producing the receiver of an attribute-chain callee
  /// (empty for plain-name callees). A call/subscript base is emitted
  /// here, exactly once.
  std::vector<int> ReceiverNodes(const Expr& func) {
    if (func.kind != ExprKind::kAttribute) return {};
    const Expr* base = &func;
    while (base->kind == ExprKind::kAttribute) base = base->value.get();
    if (base->kind == ExprKind::kName) {
      auto it = env_.find(base->text);
      if (it == env_.end()) return {};
      return std::vector<int>(it->second.begin(), it->second.end());
    }
    return VisitExpr(*base);
  }

  void MaybeLocation(int node, int line) {
    if (!options_.emit_location_nodes) return;
    for (int i = 0; i < options_.location_fanout; ++i) {
      int loc = graph_.AddNode(
          NodeKind::kLocation,
          "L" + std::to_string(line) + ":" + std::to_string(i), line);
      graph_.AddEdge(node, loc, EdgeKind::kLocation);
    }
  }

  AnalyzerOptions options_;
  analysis::PassManager pm_;
  CodeGraph graph_;
  const analysis::TypeFlowResult* types_ = nullptr;
  const Stmt* current_stmt_ = nullptr;
  NodeEnv env_;
  std::map<std::string, int> import_nodes_;  // alias -> import node
  int last_call_node_ = -1;
};

}  // namespace

Result<CodeGraph> AnalyzeScript(const std::string& script_name,
                                const std::string& source,
                                const AnalyzerOptions& options) {
  KGPIP_TRACE_SPAN("codegraph.analyze_script");
  static obs::Counter* analyzed =
      obs::MetricsRegistry::Global().GetCounter("codegraph.scripts_analyzed");
  static obs::Histogram* latency =
      obs::MetricsRegistry::Global().GetHistogram(
          "codegraph.analyze_seconds");
  analyzed->Increment();
  Stopwatch watch;
  struct RecordOnExit {
    obs::Histogram* histogram;
    Stopwatch* watch;
    ~RecordOnExit() { histogram->Record(watch->ElapsedSeconds()); }
  } record{latency, &watch};
  KGPIP_ASSIGN_OR_RETURN(Module module, ParsePython(source));
  Analysis analysis(script_name, options, module);
  KGPIP_RETURN_IF_ERROR(analysis.Run());
  CodeGraph graph = analysis.Take();
  if (analysis::CodeGraphVerifier::enabled()) {
    KGPIP_RETURN_IF_ERROR(analysis::CodeGraphVerifier::Check(graph));
  }
  return graph;
}

std::string FindReadCsvArgument(const CodeGraph& graph) {
  analysis::PassManager pm(nullptr, &graph);
  const analysis::CallGraphResult& calls =
      pm.Get<analysis::CallGraphPass>();

  // Candidate loaders (alias-resolved labels normally read
  // "pandas.read_csv"; tolerate unresolved spellings) and ML sinks.
  std::vector<int> candidates;
  std::vector<int> sinks;
  for (int id : calls.call_nodes) {
    const std::string& label = graph.nodes[static_cast<size_t>(id)].label;
    if (label == "read_csv" || EndsWith(label, ".read_csv")) {
      candidates.push_back(id);
      continue;
    }
    bool is_estimator = false;
    if (!CanonicalizeMlCall(label, &is_estimator).empty()) {
      sinks.push_back(id);
    }
  }

  // Prefer the load whose frame actually feeds the fitted pipeline; a
  // notebook often reads an auxiliary file (test split, lookup table)
  // first, and that one must not win.
  int chosen = -1;
  for (int candidate : candidates) {
    for (int sink : sinks) {
      if (calls.Reaches(candidate, sink)) {
        chosen = candidate;
        break;
      }
    }
    if (chosen >= 0) break;
  }
  if (chosen < 0 && !candidates.empty()) chosen = candidates.front();
  if (chosen < 0) return "";

  for (const CodeEdge& edge : graph.edges) {
    if (edge.dst != chosen || edge.kind != EdgeKind::kDataFlow) continue;
    const CodeNode& src = graph.nodes[static_cast<size_t>(edge.src)];
    if (src.kind == NodeKind::kLiteral) return src.label;
  }
  return "";
}

}  // namespace kgpip::codegraph
