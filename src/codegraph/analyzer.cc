#include "codegraph/analyzer.h"

#include <cctype>
#include <map>

#include "util/string_util.h"

namespace kgpip::codegraph {

namespace {

/// Per-script analysis state.
class Analysis {
 public:
  Analysis(const std::string& script_name, const AnalyzerOptions& options)
      : options_(options) {
    graph_.script_name = script_name;
  }

  Status Run(const Module& module) {
    for (const StmtPtr& stmt : module.statements) {
      KGPIP_RETURN_IF_ERROR(VisitStmt(*stmt));
    }
    return Status::Ok();
  }

  CodeGraph Take() { return std::move(graph_); }

 private:
  Status VisitStmt(const Stmt& stmt) {
    switch (stmt.kind) {
      case StmtKind::kImport: {
        std::string alias = stmt.alias.empty() ? stmt.module : stmt.alias;
        imports_[alias] = stmt.module;
        int node = graph_.AddNode(NodeKind::kImport, stmt.module, stmt.line);
        MaybeLocation(node, stmt.line);
        return Status::Ok();
      }
      case StmtKind::kImportFrom: {
        std::string alias =
            stmt.alias.empty() ? stmt.imported_name : stmt.alias;
        imports_[alias] = stmt.module + "." + stmt.imported_name;
        int node = graph_.AddNode(NodeKind::kImport,
                                  stmt.module + "." + stmt.imported_name,
                                  stmt.line);
        MaybeLocation(node, stmt.line);
        return Status::Ok();
      }
      case StmtKind::kAssign: {
        int value_node = -1;
        std::string value_type;
        VisitExpr(*stmt.value, &value_node, &value_type);
        for (size_t i = 0; i < stmt.targets.size(); ++i) {
          const Expr& target = *stmt.targets[i];
          if (target.kind == ExprKind::kName) {
            // The environment points at the producing node so downstream
            // uses flow from it; the variable node itself is metadata.
            int var_node = graph_.AddNode(NodeKind::kVariable, target.text,
                                          stmt.line);
            if (value_node >= 0) {
              graph_.AddEdge(value_node, var_node, EdgeKind::kDataFlow);
              env_[target.text] = value_node;
            }
            std::string element_type = TupleElementType(
                value_type, stmt.targets.size() > 1 ? i : 0,
                stmt.targets.size() > 1);
            if (!element_type.empty()) {
              var_types_[target.text] = element_type;
            }
          } else {
            // Attribute / subscript target: flow into the base object.
            int base_node = -1;
            std::string base_type;
            VisitExpr(target, &base_node, &base_type);
            if (value_node >= 0 && base_node >= 0) {
              graph_.AddEdge(value_node, base_node, EdgeKind::kDataFlow);
            }
          }
        }
        return Status::Ok();
      }
      case StmtKind::kExpr: {
        int node = -1;
        std::string type;
        VisitExpr(*stmt.value, &node, &type);
        return Status::Ok();
      }
      case StmtKind::kFor: {
        int iter_node = -1;
        std::string iter_type;
        VisitExpr(*stmt.value, &iter_node, &iter_type);
        if (iter_node >= 0) env_[stmt.loop_var] = iter_node;
        for (const StmtPtr& inner : stmt.body) {
          KGPIP_RETURN_IF_ERROR(VisitStmt(*inner));
        }
        return Status::Ok();
      }
      case StmtKind::kIf: {
        int cond_node = -1;
        std::string cond_type;
        VisitExpr(*stmt.value, &cond_node, &cond_type);
        for (const StmtPtr& inner : stmt.body) {
          KGPIP_RETURN_IF_ERROR(VisitStmt(*inner));
        }
        for (const StmtPtr& inner : stmt.orelse) {
          KGPIP_RETURN_IF_ERROR(VisitStmt(*inner));
        }
        return Status::Ok();
      }
    }
    return Status::Ok();
  }

  /// Emits graph structure for an expression; returns the node producing
  /// its value (-1 if none) and the inferred qualified type ("" unknown).
  void VisitExpr(const Expr& expr, int* out_node, std::string* out_type) {
    *out_node = -1;
    out_type->clear();
    switch (expr.kind) {
      case ExprKind::kName: {
        auto it = env_.find(expr.text);
        if (it != env_.end()) *out_node = it->second;
        auto ty = var_types_.find(expr.text);
        if (ty != var_types_.end()) *out_type = ty->second;
        return;
      }
      case ExprKind::kConstant: {
        *out_node = graph_.AddNode(NodeKind::kLiteral, expr.text, expr.line);
        return;
      }
      case ExprKind::kList: {
        int list_node =
            graph_.AddNode(NodeKind::kLiteral, "[list]", expr.line);
        for (const ExprPtr& item : expr.args) {
          int item_node = -1;
          std::string item_type;
          VisitExpr(*item, &item_node, &item_type);
          if (item_node >= 0) {
            graph_.AddEdge(item_node, list_node, EdgeKind::kDataFlow);
          }
        }
        *out_node = list_node;
        return;
      }
      case ExprKind::kSubscript: {
        int base_node = -1;
        std::string base_type;
        VisitExpr(*expr.value, &base_node, &base_type);
        int index_node = -1;
        std::string index_type;
        VisitExpr(*expr.index, &index_node, &index_type);
        // Value flows through the subscript.
        *out_node = base_node;
        *out_type = base_type;
        return;
      }
      case ExprKind::kBinOp: {
        int lhs = -1, rhs = -1;
        std::string lt, rt;
        VisitExpr(*expr.value, &lhs, &lt);
        VisitExpr(*expr.index, &rhs, &rt);
        *out_node = lhs >= 0 ? lhs : rhs;
        *out_type = lt.empty() ? rt : lt;
        return;
      }
      case ExprKind::kAttribute: {
        // Bare attribute read (not a call): flows from the base object.
        int base_node = -1;
        std::string base_type;
        VisitExpr(*expr.value, &base_node, &base_type);
        *out_node = base_node;
        return;
      }
      case ExprKind::kCall: {
        VisitCall(expr, out_node, out_type);
        return;
      }
    }
  }

  void VisitCall(const Expr& call, int* out_node, std::string* out_type) {
    // Resolve the callee's qualified name plus the receiver's value node.
    std::string qualified;
    int receiver_node = -1;
    ResolveCallee(*call.value, &qualified, &receiver_node);
    int call_node = graph_.AddNode(NodeKind::kCall, qualified, call.line);
    if (receiver_node >= 0) {
      graph_.AddEdge(receiver_node, call_node, EdgeKind::kDataFlow);
    }
    // Control flow from the previous call in program order.
    if (last_call_node_ >= 0) {
      graph_.AddEdge(last_call_node_, call_node, EdgeKind::kControlFlow);
    }
    last_call_node_ = call_node;

    int arg_index = 0;
    auto handle_arg = [&](const Expr& arg, const std::string& kw) {
      int arg_node = -1;
      std::string arg_type;
      VisitExpr(arg, &arg_node, &arg_type);
      if (options_.emit_parameter_nodes) {
        std::string label = kw.empty()
                                ? "arg" + std::to_string(arg_index)
                                : kw;
        int param = graph_.AddNode(NodeKind::kParameter, label, call.line);
        graph_.AddEdge(call_node, param, EdgeKind::kParameter);
        if (arg_node >= 0) {
          graph_.AddEdge(arg_node, param, EdgeKind::kDataFlow);
        }
      }
      if (arg_node >= 0) {
        graph_.AddEdge(arg_node, call_node, EdgeKind::kDataFlow);
      }
      ++arg_index;
    };
    for (const ExprPtr& arg : call.args) handle_arg(*arg, "");
    for (const KeywordArg& kw : call.keywords) handle_arg(*kw.value, kw.name);

    MaybeLocation(call_node, call.line);
    if (options_.emit_doc_nodes && call.line % 4 == 0) {
      int doc = graph_.AddNode(NodeKind::kDoc, "doc", call.line);
      graph_.AddEdge(call_node, doc, EdgeKind::kDoc);
    }

    *out_node = call_node;
    *out_type = ReturnTypeOf(qualified);
  }

  /// Resolves `func` (Name or Attribute chain) to a qualified name using
  /// imports and tracked receiver types.
  void ResolveCallee(const Expr& func, std::string* qualified,
                     int* receiver_node) {
    *receiver_node = -1;
    if (func.kind == ExprKind::kName) {
      auto it = imports_.find(func.text);
      *qualified = it != imports_.end() ? it->second : func.text;
      return;
    }
    if (func.kind == ExprKind::kAttribute) {
      // Walk to the base of the chain.
      std::vector<const Expr*> chain;
      const Expr* cur = &func;
      while (cur->kind == ExprKind::kAttribute) {
        chain.push_back(cur);
        cur = cur->value.get();
      }
      std::string base;
      if (cur->kind == ExprKind::kName) {
        const std::string& name = cur->text;
        auto imp = imports_.find(name);
        auto ty = var_types_.find(name);
        auto env = env_.find(name);
        if (env != env_.end()) *receiver_node = env->second;
        if (imp != imports_.end()) {
          base = imp->second;
        } else if (ty != var_types_.end()) {
          base = ty->second;
        } else {
          base = name;
        }
      } else {
        // Call / subscript base: resolve recursively for the value node.
        int node = -1;
        std::string type;
        VisitExpr(*cur, &node, &type);
        *receiver_node = node;
        base = type.empty() ? "<unknown>" : type;
      }
      *qualified = base;
      for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
        *qualified += "." + (*it)->text;
      }
      return;
    }
    *qualified = "<expr>";
  }

  /// Known return types for the APIs the corpus uses; everything else is
  /// unknown. Constructor calls (Capitalized last component) return their
  /// own class.
  static std::string ReturnTypeOf(const std::string& qualified) {
    if (qualified == "pandas.read_csv") return "pandas.DataFrame";
    if (EndsWith(qualified, "train_test_split")) {
      return "tuple[pandas.DataFrame]";
    }
    size_t dot = qualified.find_last_of('.');
    std::string last =
        dot == std::string::npos ? qualified : qualified.substr(dot + 1);
    if (!last.empty() && std::isupper(static_cast<unsigned char>(last[0]))) {
      return qualified;  // constructor
    }
    if (EndsWith(qualified, ".fit_transform") ||
        EndsWith(qualified, ".transform")) {
      return "numpy.ndarray";
    }
    return "";
  }

  /// For tuple unpacking `a, b = f(...)`: element type of slot `i`.
  static std::string TupleElementType(const std::string& value_type,
                                      size_t /*index*/, bool is_tuple) {
    if (!is_tuple) return value_type;
    if (StartsWith(value_type, "tuple[")) {
      return value_type.substr(6, value_type.size() - 7);
    }
    return value_type;
  }

  void MaybeLocation(int node, int line) {
    if (!options_.emit_location_nodes) return;
    for (int i = 0; i < options_.location_fanout; ++i) {
      int loc = graph_.AddNode(
          NodeKind::kLocation,
          "L" + std::to_string(line) + ":" + std::to_string(i), line);
      graph_.AddEdge(node, loc, EdgeKind::kLocation);
    }
  }

  AnalyzerOptions options_;
  CodeGraph graph_;
  std::map<std::string, std::string> imports_;   // alias -> module path
  std::map<std::string, int> env_;               // var -> producing node
  std::map<std::string, std::string> var_types_; // var -> qualified type
  int last_call_node_ = -1;
};

}  // namespace

Result<CodeGraph> AnalyzeScript(const std::string& script_name,
                                const std::string& source,
                                const AnalyzerOptions& options) {
  KGPIP_ASSIGN_OR_RETURN(Module module, ParsePython(source));
  Analysis analysis(script_name, options);
  KGPIP_RETURN_IF_ERROR(analysis.Run(module));
  return analysis.Take();
}

std::string FindReadCsvArgument(const CodeGraph& graph) {
  // Locate the read_csv call node, then its literal data-flow source.
  for (size_t i = 0; i < graph.nodes.size(); ++i) {
    if (graph.nodes[i].kind != NodeKind::kCall) continue;
    if (graph.nodes[i].label != "pandas.read_csv") continue;
    for (const CodeEdge& edge : graph.edges) {
      if (edge.dst != static_cast<int>(i)) continue;
      if (edge.kind != EdgeKind::kDataFlow) continue;
      const CodeNode& src = graph.nodes[static_cast<size_t>(edge.src)];
      if (src.kind == NodeKind::kLiteral) return src.label;
    }
  }
  return "";
}

}  // namespace kgpip::codegraph
