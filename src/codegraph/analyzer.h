#ifndef KGPIP_CODEGRAPH_ANALYZER_H_
#define KGPIP_CODEGRAPH_ANALYZER_H_

#include <string>

#include "codegraph/code_graph.h"
#include "codegraph/python_ast.h"

namespace kgpip::codegraph {

/// Options controlling auxiliary-node emission. The defaults imitate
/// GraphGen4Code's density (a 72-line script yields ~1600 nodes / ~3700
/// edges), which is what makes unfiltered graphs expensive to train on.
struct AnalyzerOptions {
  bool emit_parameter_nodes = true;
  bool emit_location_nodes = true;
  bool emit_doc_nodes = true;
  /// Extra location records per call (real graphs carry several spans).
  int location_fanout = 3;
};

/// Static analysis of one script: resolves imports and receiver types,
/// tracks the flow of objects through calls, and emits a code graph with
/// data-flow, control-flow and auxiliary nodes/edges.
///
/// Receiver types are flow-SENSITIVE (analysis::TypeFlowPass): each
/// statement sees the type environment reaching it, branch joins union
/// the candidates, and a receiver with several possible classes emits
/// one call node per candidate qualified name. Calls are additionally
/// rooted in their import nodes via data-flow edges, and — when the
/// analysis::CodeGraphVerifier is enabled (debug/test builds) — every
/// emitted graph is checked against the structural invariants before
/// being returned.
Result<CodeGraph> AnalyzeScript(const std::string& script_name,
                                const std::string& source,
                                const AnalyzerOptions& options = {});

/// The dataset file argument of the pandas.read_csv call feeding the
/// fitted pipeline ("" if none). Aliased imports are already resolved in
/// call labels; when several read_csv calls exist, the one whose frame
/// reaches an ML estimator/transformer call through data flow wins over
/// earlier auxiliary loads. Graph4ML uses this to link pipelines to
/// dataset nodes when the file name is explicit.
std::string FindReadCsvArgument(const CodeGraph& graph);

}  // namespace kgpip::codegraph

#endif  // KGPIP_CODEGRAPH_ANALYZER_H_
