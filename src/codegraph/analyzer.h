#ifndef KGPIP_CODEGRAPH_ANALYZER_H_
#define KGPIP_CODEGRAPH_ANALYZER_H_

#include <string>

#include "codegraph/code_graph.h"
#include "codegraph/python_ast.h"

namespace kgpip::codegraph {

/// Options controlling auxiliary-node emission. The defaults imitate
/// GraphGen4Code's density (a 72-line script yields ~1600 nodes / ~3700
/// edges), which is what makes unfiltered graphs expensive to train on.
struct AnalyzerOptions {
  bool emit_parameter_nodes = true;
  bool emit_location_nodes = true;
  bool emit_doc_nodes = true;
  /// Extra location records per call (real graphs carry several spans).
  int location_fanout = 3;
};

/// Static analysis of one script: resolves imports and receiver types,
/// tracks the flow of objects through calls, and emits a code graph with
/// data-flow, control-flow and auxiliary nodes/edges.
///
/// Type tracking is flow-insensitive per variable (last assignment wins),
/// which matches the notebooks this corpus contains and is the same
/// practical accuracy class as GraphGen4Code's analysis.
Result<CodeGraph> AnalyzeScript(const std::string& script_name,
                                const std::string& source,
                                const AnalyzerOptions& options = {});

/// Convenience: the dataset file argument of the first pandas.read_csv
/// call in the graph ("" if none). Graph4ML uses this to link pipelines
/// to dataset nodes when the file name is explicit.
std::string FindReadCsvArgument(const CodeGraph& graph);

}  // namespace kgpip::codegraph

#endif  // KGPIP_CODEGRAPH_ANALYZER_H_
