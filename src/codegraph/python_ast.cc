#include "codegraph/python_ast.h"

#include <cctype>

#include "codegraph/analysis/diagnostic.h"
#include "util/string_util.h"

namespace kgpip::codegraph {

namespace {

using analysis::MakeError;
using analysis::SourceSpan;

enum class TokKind {
  kName,
  kNumber,
  kString,
  kOp,       // punctuation / operators
  kNewline,
  kIndent,
  kDedent,
  kEnd,
};

struct Token {
  TokKind kind;
  std::string text;
  int line;
  int col;  // 1-based column of the token's first character

  SourceSpan span() const { return {line, col}; }
};

/// Indentation-aware tokenizer for the supported subset.
class Lexer {
 public:
  explicit Lexer(const std::string& source) : source_(source) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> tokens;
    std::vector<int> indents = {0};
    size_t pos = 0;
    int line = 0;
    const size_t n = source_.size();
    while (pos < n) {
      ++line;
      const size_t line_begin = pos;
      auto col = [&](size_t at) {
        return static_cast<int>(at - line_begin) + 1;
      };
      // Measure indentation.
      int indent = 0;
      while (pos < n && (source_[pos] == ' ' || source_[pos] == '\t')) {
        indent += source_[pos] == '\t' ? 4 : 1;
        ++pos;
      }
      // Blank / comment-only lines don't affect indentation.
      if (pos >= n || source_[pos] == '\n' || source_[pos] == '#') {
        while (pos < n && source_[pos] != '\n') ++pos;
        if (pos < n) ++pos;
        continue;
      }
      if (indent > indents.back()) {
        indents.push_back(indent);
        tokens.push_back({TokKind::kIndent, "", line, 1});
      }
      while (indent < indents.back()) {
        indents.pop_back();
        tokens.push_back({TokKind::kDedent, "", line, 1});
      }
      if (indent != indents.back()) {
        return MakeError("lex.inconsistent-indent",
                         "inconsistent indentation",
                         {line, col(pos)})
            .ToStatus();
      }
      // Tokenize the logical line (no continuations inside brackets across
      // newlines for simplicity; generator emits single-line statements).
      while (pos < n && source_[pos] != '\n') {
        char c = source_[pos];
        if (c == ' ' || c == '\t') {
          ++pos;
          continue;
        }
        if (c == '#') {
          while (pos < n && source_[pos] != '\n') ++pos;
          break;
        }
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
          size_t start = pos;
          while (pos < n &&
                 (std::isalnum(static_cast<unsigned char>(source_[pos])) ||
                  source_[pos] == '_')) {
            ++pos;
          }
          tokens.push_back({TokKind::kName,
                            source_.substr(start, pos - start), line,
                            col(start)});
          continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && pos + 1 < n &&
             std::isdigit(static_cast<unsigned char>(source_[pos + 1])))) {
          size_t start = pos;
          while (pos < n &&
                 (std::isdigit(static_cast<unsigned char>(source_[pos])) ||
                  source_[pos] == '.' || source_[pos] == 'e' ||
                  source_[pos] == 'E' ||
                  ((source_[pos] == '+' || source_[pos] == '-') && pos > start &&
                   (source_[pos - 1] == 'e' || source_[pos - 1] == 'E')))) {
            ++pos;
          }
          tokens.push_back({TokKind::kNumber,
                            source_.substr(start, pos - start), line,
                            col(start)});
          continue;
        }
        if (c == '\'' || c == '"') {
          char quote = c;
          const size_t start = pos;
          ++pos;
          std::string text;
          bool closed = false;
          while (pos < n && source_[pos] != '\n') {
            if (source_[pos] == '\\' && pos + 1 < n) {
              text += source_[pos + 1];
              pos += 2;
              continue;
            }
            if (source_[pos] == quote) {
              ++pos;
              closed = true;
              break;
            }
            text += source_[pos++];
          }
          if (!closed) {
            return MakeError("lex.unterminated-string",
                             "unterminated string literal",
                             {line, col(start)})
                .ToStatus();
          }
          tokens.push_back({TokKind::kString, text, line, col(start)});
          continue;
        }
        // Multi-char operators first.
        static const char* kTwoCharOps[] = {"==", "!=", "<=", ">=", "//",
                                            "**", "+=", "-="};
        bool matched = false;
        for (const char* op : kTwoCharOps) {
          if (pos + 1 < n && source_[pos] == op[0] &&
              source_[pos + 1] == op[1]) {
            tokens.push_back({TokKind::kOp, op, line, col(pos)});
            pos += 2;
            matched = true;
            break;
          }
        }
        if (matched) continue;
        static const std::string kSingleOps = "()[]{},.:=+-*/%<>";
        if (kSingleOps.find(c) != std::string::npos) {
          tokens.push_back({TokKind::kOp, std::string(1, c), line, col(pos)});
          ++pos;
          continue;
        }
        return MakeError("lex.unexpected-char",
                         "unexpected character '" + std::string(1, c) + "'",
                         {line, col(pos)})
            .ToStatus();
      }
      tokens.push_back({TokKind::kNewline, "", line, col(pos)});
      if (pos < n) ++pos;  // consume '\n'
    }
    while (indents.size() > 1) {
      indents.pop_back();
      tokens.push_back({TokKind::kDedent, "", line, 1});
    }
    tokens.push_back({TokKind::kEnd, "", line, 1});
    return tokens;
  }

 private:
  const std::string& source_;
};

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Module> Run() {
    Module module;
    while (!AtEnd()) {
      if (Check(TokKind::kNewline)) {
        Advance();
        continue;
      }
      KGPIP_ASSIGN_OR_RETURN(StmtPtr stmt, ParseStatement());
      module.statements.push_back(std::move(stmt));
    }
    return module;
  }

 private:
  Result<StmtPtr> ParseStatement() {
    const Token& tok = Peek();
    if (tok.kind == TokKind::kName) {
      if (tok.text == "import") return ParseImport();
      if (tok.text == "from") return ParseFromImport();
      if (tok.text == "for") return ParseFor();
      if (tok.text == "if") return ParseIf();
      if (tok.text == "print" || tok.text == "pass") {
        // treat like plain expression statements
      }
    }
    return ParseSimpleStatement();
  }

  Result<StmtPtr> ParseImport() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kImport;
    stmt->line = Peek().line;
    Advance();  // import
    KGPIP_ASSIGN_OR_RETURN(stmt->module, ParseDottedName());
    if (CheckName("as")) {
      Advance();
      KGPIP_ASSIGN_OR_RETURN(stmt->alias, ExpectName());
    }
    KGPIP_RETURN_IF_ERROR(ExpectNewline());
    return stmt;
  }

  Result<StmtPtr> ParseFromImport() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kImportFrom;
    stmt->line = Peek().line;
    Advance();  // from
    KGPIP_ASSIGN_OR_RETURN(stmt->module, ParseDottedName());
    if (!CheckName("import")) {
      return Err("parse.expected-keyword", "expected 'import'");
    }
    Advance();
    KGPIP_ASSIGN_OR_RETURN(stmt->imported_name, ExpectName());
    if (CheckName("as")) {
      Advance();
      KGPIP_ASSIGN_OR_RETURN(stmt->alias, ExpectName());
    }
    KGPIP_RETURN_IF_ERROR(ExpectNewline());
    return stmt;
  }

  Result<StmtPtr> ParseFor() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kFor;
    stmt->line = Peek().line;
    Advance();  // for
    KGPIP_ASSIGN_OR_RETURN(stmt->loop_var, ExpectName());
    if (!CheckName("in")) return Err("parse.expected-keyword", "expected 'in'");
    Advance();
    KGPIP_ASSIGN_OR_RETURN(stmt->value, ParseExpression());
    KGPIP_RETURN_IF_ERROR(ExpectOp(":"));
    KGPIP_RETURN_IF_ERROR(ExpectNewline());
    KGPIP_ASSIGN_OR_RETURN(stmt->body, ParseBlock());
    return stmt;
  }

  Result<StmtPtr> ParseIf() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kIf;
    stmt->line = Peek().line;
    Advance();  // if
    KGPIP_ASSIGN_OR_RETURN(stmt->value, ParseExpression());
    KGPIP_RETURN_IF_ERROR(ExpectOp(":"));
    KGPIP_RETURN_IF_ERROR(ExpectNewline());
    KGPIP_ASSIGN_OR_RETURN(stmt->body, ParseBlock());
    if (CheckName("else")) {
      Advance();
      KGPIP_RETURN_IF_ERROR(ExpectOp(":"));
      KGPIP_RETURN_IF_ERROR(ExpectNewline());
      KGPIP_ASSIGN_OR_RETURN(stmt->orelse, ParseBlock());
    }
    return stmt;
  }

  Result<std::vector<StmtPtr>> ParseBlock() {
    if (!Check(TokKind::kIndent)) {
      return Err("parse.expected-block", "expected indented block");
    }
    Advance();
    std::vector<StmtPtr> body;
    while (!Check(TokKind::kDedent) && !AtEnd()) {
      if (Check(TokKind::kNewline)) {
        Advance();
        continue;
      }
      KGPIP_ASSIGN_OR_RETURN(StmtPtr stmt, ParseStatement());
      body.push_back(std::move(stmt));
    }
    if (Check(TokKind::kDedent)) Advance();
    return body;
  }

  Result<StmtPtr> ParseSimpleStatement() {
    auto stmt = std::make_unique<Stmt>();
    stmt->line = Peek().line;
    KGPIP_ASSIGN_OR_RETURN(ExprPtr first, ParseExpression());
    // Tuple targets: a, b = expr
    std::vector<ExprPtr> targets;
    targets.push_back(std::move(first));
    while (CheckOp(",")) {
      Advance();
      KGPIP_ASSIGN_OR_RETURN(ExprPtr next, ParseExpression());
      targets.push_back(std::move(next));
    }
    if (CheckOp("=")) {
      Advance();
      stmt->kind = StmtKind::kAssign;
      stmt->targets = std::move(targets);
      KGPIP_ASSIGN_OR_RETURN(stmt->value, ParseExpression());
      KGPIP_RETURN_IF_ERROR(ExpectNewline());
      return stmt;
    }
    if (targets.size() != 1) {
      return Err("parse.tuple-without-assign", "tuple expression without '='");
    }
    stmt->kind = StmtKind::kExpr;
    stmt->value = std::move(targets[0]);
    KGPIP_RETURN_IF_ERROR(ExpectNewline());
    return stmt;
  }

  Result<ExprPtr> ParseExpression() {
    KGPIP_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    // Flat binary chain — precedence is irrelevant for flow analysis.
    static const char* kBinOps[] = {"+",  "-",  "*",  "/", "%",  "//",
                                    "**", "==", "!=", "<", "<=", ">",
                                    ">="};
    while (Check(TokKind::kOp)) {
      bool is_bin = false;
      for (const char* op : kBinOps) {
        if (Peek().text == op) {
          is_bin = true;
          break;
        }
      }
      if (!is_bin) break;
      auto bin = std::make_unique<Expr>();
      bin->kind = ExprKind::kBinOp;
      bin->text = Peek().text;
      bin->line = Peek().line;
      Advance();
      bin->value = std::move(lhs);
      KGPIP_ASSIGN_OR_RETURN(bin->index, ParseUnary());
      lhs = std::move(bin);
    }
    return lhs;
  }

  Result<ExprPtr> ParseUnary() {
    if (CheckOp("-") || CheckOp("+")) {
      auto un = std::make_unique<Expr>();
      un->kind = ExprKind::kBinOp;
      un->text = Peek().text;
      un->line = Peek().line;
      Advance();
      auto zero = std::make_unique<Expr>();
      zero->kind = ExprKind::kConstant;
      zero->text = "0";
      un->value = std::move(zero);
      KGPIP_ASSIGN_OR_RETURN(un->index, ParsePostfix());
      return un;
    }
    return ParsePostfix();
  }

  Result<ExprPtr> ParsePostfix() {
    KGPIP_ASSIGN_OR_RETURN(ExprPtr expr, ParseAtom());
    while (true) {
      if (CheckOp(".")) {
        Advance();
        auto attr = std::make_unique<Expr>();
        attr->kind = ExprKind::kAttribute;
        attr->line = Peek().line;
        KGPIP_ASSIGN_OR_RETURN(attr->text, ExpectName());
        attr->value = std::move(expr);
        expr = std::move(attr);
      } else if (CheckOp("(")) {
        Advance();
        auto call = std::make_unique<Expr>();
        call->kind = ExprKind::kCall;
        call->line = Peek().line;
        call->value = std::move(expr);
        while (!CheckOp(")")) {
          // keyword argument?
          if (Check(TokKind::kName) && PeekAhead(1).kind == TokKind::kOp &&
              PeekAhead(1).text == "=") {
            KeywordArg kw;
            kw.name = Peek().text;
            Advance();
            Advance();  // '='
            KGPIP_ASSIGN_OR_RETURN(kw.value, ParseExpression());
            call->keywords.push_back(std::move(kw));
          } else {
            KGPIP_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpression());
            call->args.push_back(std::move(arg));
          }
          if (CheckOp(",")) Advance();
          else break;
        }
        KGPIP_RETURN_IF_ERROR(ExpectOp(")"));
        expr = std::move(call);
      } else if (CheckOp("[")) {
        Advance();
        auto sub = std::make_unique<Expr>();
        sub->kind = ExprKind::kSubscript;
        sub->line = Peek().line;
        sub->value = std::move(expr);
        KGPIP_ASSIGN_OR_RETURN(sub->index, ParseExpression());
        KGPIP_RETURN_IF_ERROR(ExpectOp("]"));
        expr = std::move(sub);
      } else {
        break;
      }
    }
    return expr;
  }

  Result<ExprPtr> ParseAtom() {
    const Token& tok = Peek();
    auto expr = std::make_unique<Expr>();
    expr->line = tok.line;
    switch (tok.kind) {
      case TokKind::kName:
        expr->kind = ExprKind::kName;
        expr->text = tok.text;
        Advance();
        return expr;
      case TokKind::kNumber:
        expr->kind = ExprKind::kConstant;
        expr->text = tok.text;
        Advance();
        return expr;
      case TokKind::kString:
        expr->kind = ExprKind::kConstant;
        expr->text = tok.text;
        expr->is_string = true;
        Advance();
        return expr;
      case TokKind::kOp:
        if (tok.text == "(") {
          Advance();
          KGPIP_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpression());
          KGPIP_RETURN_IF_ERROR(ExpectOp(")"));
          return inner;
        }
        if (tok.text == "[") {
          Advance();
          expr->kind = ExprKind::kList;
          while (!CheckOp("]")) {
            KGPIP_ASSIGN_OR_RETURN(ExprPtr item, ParseExpression());
            expr->args.push_back(std::move(item));
            if (CheckOp(",")) Advance();
            else break;
          }
          KGPIP_RETURN_IF_ERROR(ExpectOp("]"));
          return expr;
        }
        break;
      default:
        break;
    }
    return Err("parse.unexpected-token",
               "unexpected token '" + tok.text + "'");
  }

  Result<std::string> ParseDottedName() {
    KGPIP_ASSIGN_OR_RETURN(std::string name, ExpectName());
    while (CheckOp(".")) {
      Advance();
      KGPIP_ASSIGN_OR_RETURN(std::string part, ExpectName());
      name += "." + part;
    }
    return name;
  }

  Result<std::string> ExpectName() {
    if (!Check(TokKind::kName)) {
      return Err("parse.expected-identifier", "expected identifier");
    }
    std::string text = Peek().text;
    Advance();
    return text;
  }

  Status ExpectOp(const std::string& op) {
    if (!CheckOp(op)) {
      return Err("parse.expected-token", "expected '" + op + "'");
    }
    Advance();
    return Status::Ok();
  }

  Status ExpectNewline() {
    if (Check(TokKind::kNewline) || Check(TokKind::kEnd)) {
      if (Check(TokKind::kNewline)) Advance();
      return Status::Ok();
    }
    return Err("parse.expected-newline", "expected end of line");
  }

  bool AtEnd() const { return Peek().kind == TokKind::kEnd; }
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& PeekAhead(size_t k) const {
    return tokens_[std::min(pos_ + k, tokens_.size() - 1)];
  }
  bool Check(TokKind kind) const { return Peek().kind == kind; }
  bool CheckOp(const std::string& op) const {
    return Peek().kind == TokKind::kOp && Peek().text == op;
  }
  bool CheckName(const std::string& name) const {
    return Peek().kind == TokKind::kName && Peek().text == name;
  }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }

  /// Structured parse error anchored at the current token.
  Status Err(std::string code, std::string what) const {
    return MakeError(std::move(code), std::move(what), Peek().span())
        .ToStatus();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Module> ParsePython(const std::string& source) {
  Lexer lexer(source);
  KGPIP_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Run());
  return Parser(std::move(tokens)).Run();
}

std::string ExprToString(const Expr& expr) {
  switch (expr.kind) {
    case ExprKind::kName:
      return expr.text;
    case ExprKind::kAttribute:
      return ExprToString(*expr.value) + "." + expr.text;
    case ExprKind::kConstant:
      return expr.is_string ? "'" + expr.text + "'" : expr.text;
    case ExprKind::kCall: {
      std::string out = ExprToString(*expr.value) + "(";
      for (size_t i = 0; i < expr.args.size(); ++i) {
        if (i > 0) out += ",";
        out += ExprToString(*expr.args[i]);
      }
      out += ")";
      return out;
    }
    case ExprKind::kList:
      return "[...]";
    case ExprKind::kSubscript:
      return ExprToString(*expr.value) + "[" + ExprToString(*expr.index) +
             "]";
    case ExprKind::kBinOp:
      return ExprToString(*expr.value) + expr.text +
             ExprToString(*expr.index);
  }
  return "?";
}

}  // namespace kgpip::codegraph
