#include "codegraph/ml_api.h"

#include "util/string_util.h"

namespace kgpip::codegraph {

const std::vector<MlApiEntry>& MlApiTable() {
  static const std::vector<MlApiEntry>& kTable =
      *new std::vector<MlApiEntry>{
          // Estimators (classifier / regressor pairs share canonicals).
          {"sklearn.linear_model.LogisticRegression", "logistic_regression",
           true},
          {"sklearn.svm.SVC", "linear_svm", true},
          {"sklearn.svm.LinearSVC", "linear_svm", true},
          {"sklearn.linear_model.SGDClassifier", "sgd", true},
          {"sklearn.linear_model.SGDRegressor", "sgd", true},
          {"sklearn.naive_bayes.GaussianNB", "gaussian_nb", true},
          {"sklearn.neighbors.KNeighborsClassifier", "knn", true},
          {"sklearn.neighbors.KNeighborsRegressor", "knn", true},
          {"sklearn.tree.DecisionTreeClassifier", "decision_tree", true},
          {"sklearn.tree.DecisionTreeRegressor", "decision_tree", true},
          {"sklearn.ensemble.RandomForestClassifier", "random_forest", true},
          {"sklearn.ensemble.RandomForestRegressor", "random_forest", true},
          {"sklearn.ensemble.ExtraTreesClassifier", "extra_trees", true},
          {"sklearn.ensemble.ExtraTreesRegressor", "extra_trees", true},
          {"sklearn.ensemble.GradientBoostingClassifier",
           "gradient_boosting", true},
          {"sklearn.ensemble.GradientBoostingRegressor",
           "gradient_boosting", true},
          {"xgboost.XGBClassifier", "xgboost", true},
          {"xgboost.XGBRegressor", "xgboost", true},
          {"lightgbm.LGBMClassifier", "lgbm", true},
          {"lightgbm.LGBMRegressor", "lgbm", true},
          {"sklearn.linear_model.LinearRegression", "linear_regression",
           true},
          {"sklearn.linear_model.Ridge", "ridge", true},
          {"sklearn.linear_model.Lasso", "lasso", true},
          // Transformers.
          {"sklearn.preprocessing.StandardScaler", "standard_scaler", false},
          {"sklearn.preprocessing.MinMaxScaler", "minmax_scaler", false},
          {"sklearn.preprocessing.Normalizer", "normalizer", false},
          {"sklearn.feature_selection.VarianceThreshold",
           "variance_threshold", false},
          {"sklearn.feature_selection.SelectKBest", "select_k_best", false},
          {"sklearn.decomposition.PCA", "pca", false},
          // Featurizer-level ops; kept in graphs so Graph4ML reflects the
          // full pre-processing surface the paper mines.
          {"sklearn.impute.SimpleImputer", "simple_imputer", false},
          {"sklearn.preprocessing.OneHotEncoder", "one_hot_encoder", false},
          {"sklearn.feature_extraction.text.TfidfVectorizer",
           "tfidf_vectorizer", false},
          {"sklearn.feature_extraction.text.CountVectorizer",
           "count_vectorizer", false},
      };
  return kTable;
}

std::string CanonicalizeMlCall(const std::string& qualified,
                               bool* is_estimator) {
  for (const MlApiEntry& entry : MlApiTable()) {
    if (qualified == entry.python_class ||
        (StartsWith(qualified, entry.python_class) &&
         qualified.size() > entry.python_class.size() &&
         qualified[entry.python_class.size()] == '.')) {
      if (is_estimator != nullptr) *is_estimator = entry.is_estimator;
      return entry.canonical;
    }
  }
  if (is_estimator != nullptr) *is_estimator = false;
  return "";
}

std::string PythonClassFor(const std::string& canonical, bool regression) {
  // Prefer the regressor variant when asked and one exists.
  std::string fallback;
  for (const MlApiEntry& entry : MlApiTable()) {
    if (entry.canonical != canonical) continue;
    bool is_regressor = EndsWith(entry.python_class, "Regressor") ||
                        entry.python_class ==
                            "sklearn.linear_model.LinearRegression" ||
                        entry.python_class == "sklearn.linear_model.Ridge" ||
                        entry.python_class == "sklearn.linear_model.Lasso";
    if (regression == is_regressor) return entry.python_class;
    if (fallback.empty()) fallback = entry.python_class;
  }
  return fallback;
}

}  // namespace kgpip::codegraph
