#include "codegraph/analysis/diagnostic.h"

#include "util/string_util.h"

namespace kgpip::codegraph::analysis {

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

std::string SourceSpan::ToString() const {
  if (line <= 0) return "";
  if (column <= 0) return "line " + std::to_string(line);
  return "line " + std::to_string(line) + ":" + std::to_string(column);
}

std::string Diagnostic::ToString() const {
  std::string out = SeverityName(severity);
  out += "[" + code + "]";
  if (!subject.empty()) out += " " + subject;
  std::string where = span.ToString();
  if (!where.empty()) out += " " + where;
  out += ": " + message;
  return out;
}

Status Diagnostic::ToStatus(StatusCode status_code) const {
  return Status(status_code, ToString());
}

Diagnostic MakeError(std::string code, std::string message,
                     SourceSpan span) {
  Diagnostic d;
  d.severity = Severity::kError;
  d.code = std::move(code);
  d.message = std::move(message);
  d.span = span;
  return d;
}

Diagnostic MakeWarning(std::string code, std::string message,
                       SourceSpan span) {
  Diagnostic d;
  d.severity = Severity::kWarning;
  d.code = std::move(code);
  d.message = std::move(message);
  d.span = span;
  return d;
}

bool HasErrors(const std::vector<Diagnostic>& diags) {
  for (const Diagnostic& d : diags) {
    if (d.severity == Severity::kError) return true;
  }
  return false;
}

std::string RenderDiagnostics(const std::vector<Diagnostic>& diags) {
  std::vector<std::string> lines;
  lines.reserve(diags.size());
  for (const Diagnostic& d : diags) lines.push_back(d.ToString());
  return Join(lines, "\n");
}

}  // namespace kgpip::codegraph::analysis
