#ifndef KGPIP_CODEGRAPH_ANALYSIS_TYPE_FLOW_H_
#define KGPIP_CODEGRAPH_ANALYSIS_TYPE_FLOW_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "codegraph/analysis/pass_manager.h"

namespace kgpip::codegraph::analysis {

/// The qualified types a variable may hold at a program point. More than
/// one element means the paths into this point disagree (e.g. an
/// if/else assigning different estimator classes).
using TypeSet = std::set<std::string>;
using TypeEnv = std::map<std::string, TypeSet>;
using ImportMap = std::map<std::string, std::string>;  // alias -> path

/// Flow-sensitive receiver-type propagation over the statement CFG.
/// Replaces the analyzer's historical "last assignment wins" map: each
/// statement gets the type environment that actually reaches it, with
/// branch joins unioning the candidate sets and loop bodies iterated to
/// a fixpoint.
struct TypeFlowResult {
  ImportMap imports;
  /// Type environment at the entry of every statement (loop headers carry
  /// the post-fixpoint merge, so body types include back-edge bindings).
  std::map<const Stmt*, TypeEnv> stmt_in;

  const TypeEnv& EnvAt(const Stmt* stmt) const;
};

class TypeFlowPass : public AnalysisPass {
 public:
  using Result = TypeFlowResult;
  const char* name() const override { return "type-flow"; }
  TypeFlowResult Run(PassManager& pm) const;
};

/// ---- Shared resolution helpers (used by the pass and by the graph
/// emission walk in analyzer.cc, so both agree on every label). ----

/// Known return types for the APIs the corpus uses; "" when unknown.
/// Constructor calls (Capitalized last component) return their own class.
std::string ReturnTypeOf(const std::string& qualified);

/// For tuple unpacking `a, b = f(...)`: the per-slot element type.
std::string TupleElementType(const std::string& value_type, bool is_tuple);

/// Alias -> module path over the whole module (imports in notebooks are
/// effectively global; nesting them in branches is not a corpus idiom).
ImportMap CollectImports(const Module& module);

/// Candidate qualified names for a callee expression under `env`. Always
/// returns at least one name (falling back to the spelled chain). When
/// the base of the chain resolved through an import, `via_import_alias`
/// (if non-null) receives that alias.
std::vector<std::string> ResolveCalleeNames(const Expr& func,
                                            const TypeEnv& env,
                                            const ImportMap& imports,
                                            std::string* via_import_alias =
                                                nullptr);

/// Possible qualified types of an expression's value (empty = unknown).
TypeSet EvalExprTypes(const Expr& expr, const TypeEnv& env,
                      const ImportMap& imports);

}  // namespace kgpip::codegraph::analysis

#endif  // KGPIP_CODEGRAPH_ANALYSIS_TYPE_FLOW_H_
