#include "codegraph/analysis/dataflow.h"

#include <algorithm>

namespace kgpip::codegraph::analysis {

namespace {

void CollectExprUses(const Expr& expr, std::vector<std::string>* out) {
  switch (expr.kind) {
    case ExprKind::kName:
      out->push_back(expr.text);
      return;
    case ExprKind::kConstant:
      return;
    case ExprKind::kAttribute:
      CollectExprUses(*expr.value, out);
      return;
    case ExprKind::kSubscript:
    case ExprKind::kBinOp:
      CollectExprUses(*expr.value, out);
      if (expr.index != nullptr) CollectExprUses(*expr.index, out);
      return;
    case ExprKind::kCall:
      CollectExprUses(*expr.value, out);
      for (const ExprPtr& arg : expr.args) CollectExprUses(*arg, out);
      for (const KeywordArg& kw : expr.keywords) {
        CollectExprUses(*kw.value, out);
      }
      return;
    case ExprKind::kList:
      for (const ExprPtr& item : expr.args) CollectExprUses(*item, out);
      return;
  }
}

void Dedupe(std::vector<std::string>* names) {
  std::sort(names->begin(), names->end());
  names->erase(std::unique(names->begin(), names->end()), names->end());
}

/// Builds the CFG: assigns pre-order ids, then wires edges block by
/// block. `Wire` returns the dangling node ids whose successor is
/// whatever follows the block.
class CfgBuilder {
 public:
  Cfg Build(const Module& module) {
    Number(module.statements);
    cfg_.exit_id = static_cast<int>(cfg_.stmts.size());
    cfg_.succ.assign(cfg_.stmts.size() + 1, {});
    cfg_.pred.assign(cfg_.stmts.size() + 1, {});
    std::vector<int> out = Wire(module.statements, {});
    for (int id : out) AddEdge(id, cfg_.exit_id);
    return std::move(cfg_);
  }

 private:
  void Number(const std::vector<StmtPtr>& block) {
    for (const StmtPtr& stmt : block) {
      cfg_.ids[stmt.get()] = static_cast<int>(cfg_.stmts.size());
      cfg_.stmts.push_back(stmt.get());
      if (stmt->kind == StmtKind::kIf || stmt->kind == StmtKind::kFor) {
        Number(stmt->body);
        Number(stmt->orelse);
      }
    }
  }

  void AddEdge(int src, int dst) {
    cfg_.succ[static_cast<size_t>(src)].push_back(dst);
    cfg_.pred[static_cast<size_t>(dst)].push_back(src);
  }

  std::vector<int> Wire(const std::vector<StmtPtr>& block,
                        std::vector<int> incoming) {
    for (const StmtPtr& stmt : block) {
      const int id = cfg_.ids.at(stmt.get());
      for (int src : incoming) AddEdge(src, id);
      switch (stmt->kind) {
        case StmtKind::kIf: {
          std::vector<int> out = Wire(stmt->body, {id});
          if (stmt->orelse.empty()) {
            // Condition-false path skips the body.
            out.push_back(id);
          } else {
            std::vector<int> other = Wire(stmt->orelse, {id});
            out.insert(out.end(), other.begin(), other.end());
          }
          incoming = std::move(out);
          break;
        }
        case StmtKind::kFor: {
          std::vector<int> out = Wire(stmt->body, {id});
          // Back edge: end of body re-enters the header...
          for (int src : out) AddEdge(src, id);
          // ...and the loop exits from the header (including the
          // zero-iteration case).
          incoming = {id};
          break;
        }
        default:
          incoming = {id};
          break;
      }
    }
    return incoming;
  }

  Cfg cfg_;
};

}  // namespace

std::vector<std::string> Cfg::DefsOf(const Stmt& stmt) {
  std::vector<std::string> defs;
  switch (stmt.kind) {
    case StmtKind::kAssign:
      for (const ExprPtr& target : stmt.targets) {
        if (target->kind == ExprKind::kName) defs.push_back(target->text);
      }
      break;
    case StmtKind::kFor:
      defs.push_back(stmt.loop_var);
      break;
    default:
      break;
  }
  Dedupe(&defs);
  return defs;
}

std::vector<std::string> Cfg::UsesOf(const Stmt& stmt) {
  std::vector<std::string> uses;
  if (stmt.value != nullptr) CollectExprUses(*stmt.value, &uses);
  if (stmt.kind == StmtKind::kAssign) {
    // `df.col = x` / `df[i] = x` reads `df`.
    for (const ExprPtr& target : stmt.targets) {
      if (target->kind != ExprKind::kName) CollectExprUses(*target, &uses);
    }
  }
  Dedupe(&uses);
  return uses;
}

Cfg CfgPass::Run(PassManager& pm) const {
  return CfgBuilder().Build(pm.module());
}

const std::set<int>& ReachingDefsResult::DefsReaching(
    int stmt_id, const std::string& var) const {
  static const std::set<int> kEmpty;
  if (stmt_id < 0 || stmt_id >= static_cast<int>(in.size())) return kEmpty;
  auto it = in[static_cast<size_t>(stmt_id)].find(var);
  return it == in[static_cast<size_t>(stmt_id)].end() ? kEmpty : it->second;
}

const std::set<int>& ReachingDefsResult::UsesOfDef(
    int def_stmt, const std::string& var) const {
  static const std::set<int> kEmpty;
  auto it = uses.find({def_stmt, var});
  return it == uses.end() ? kEmpty : it->second;
}

ReachingDefsResult ReachingDefsPass::Run(PassManager& pm) const {
  const Cfg& cfg = pm.Get<CfgPass>();
  const size_t n = cfg.stmts.size();
  ReachingDefsResult result;
  result.in.assign(n, {});
  std::vector<std::map<std::string, std::set<int>>> out(n);

  // Forward may-analysis to a fixpoint. The statement count per script is
  // small (tens), so round-robin iteration is plenty.
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t s = 0; s < n; ++s) {
      std::map<std::string, std::set<int>> in_s;
      for (int p : cfg.pred[s]) {
        if (p == cfg.exit_id) continue;
        for (const auto& [var, defs] : out[static_cast<size_t>(p)]) {
          in_s[var].insert(defs.begin(), defs.end());
        }
      }
      std::map<std::string, std::set<int>> out_s = in_s;
      for (const std::string& var : Cfg::DefsOf(*cfg.stmts[s])) {
        out_s[var] = {static_cast<int>(s)};  // kills all other defs
      }
      if (in_s != result.in[s] || out_s != out[s]) {
        result.in[s] = std::move(in_s);
        out[s] = std::move(out_s);
        changed = true;
      }
    }
  }

  for (size_t s = 0; s < n; ++s) {
    for (const std::string& var : Cfg::UsesOf(*cfg.stmts[s])) {
      for (int def : result.DefsReaching(static_cast<int>(s), var)) {
        result.uses[{def, var}].insert(static_cast<int>(s));
      }
    }
  }
  return result;
}

LivenessResult LivenessPass::Run(PassManager& pm) const {
  const Cfg& cfg = pm.Get<CfgPass>();
  const size_t n = cfg.stmts.size();
  LivenessResult result;
  result.live_in.assign(n, {});
  result.live_out.assign(n, {});

  // Backward may-analysis to a fixpoint.
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = n; i-- > 0;) {
      std::set<std::string> live_out;
      for (int succ : cfg.succ[i]) {
        if (succ == cfg.exit_id) continue;
        const auto& in = result.live_in[static_cast<size_t>(succ)];
        live_out.insert(in.begin(), in.end());
      }
      std::set<std::string> live_in = live_out;
      for (const std::string& var : Cfg::DefsOf(*cfg.stmts[i])) {
        live_in.erase(var);
      }
      for (const std::string& var : Cfg::UsesOf(*cfg.stmts[i])) {
        live_in.insert(var);
      }
      if (live_in != result.live_in[i] || live_out != result.live_out[i]) {
        result.live_in[i] = std::move(live_in);
        result.live_out[i] = std::move(live_out);
        changed = true;
      }
    }
  }

  for (size_t s = 0; s < n; ++s) {
    for (const std::string& var : Cfg::DefsOf(*cfg.stmts[s])) {
      if (result.live_out[s].count(var) == 0) {
        result.dead_stores.emplace_back(static_cast<int>(s), var);
      }
    }
  }
  return result;
}

}  // namespace kgpip::codegraph::analysis
