#ifndef KGPIP_CODEGRAPH_ANALYSIS_CALL_GRAPH_H_
#define KGPIP_CODEGRAPH_ANALYSIS_CALL_GRAPH_H_

#include <map>
#include <vector>

#include "codegraph/analysis/pass_manager.h"

namespace kgpip::codegraph::analysis {

/// Call graph distilled from an emitted CodeGraph: one vertex per kCall
/// node, with an edge A -> B when A's result feeds B through data flow
/// (directly or via intermediate non-call nodes such as variables or
/// list literals). Lets clients ask "does this read_csv feed the fitted
/// pipeline?" without re-walking raw edges.
struct CallGraphResult {
  std::vector<int> call_nodes;              // kCall node ids, ascending
  std::map<int, std::vector<int>> callees;  // call id -> directly-fed calls
  std::map<int, std::vector<int>> callers;  // inverse of `callees`

  /// True if data flows (transitively) from call node `src` into `dst`.
  bool Reaches(int src, int dst) const;
};

class CallGraphPass : public AnalysisPass {
 public:
  using Result = CallGraphResult;
  const char* name() const override { return "call-graph"; }
  CallGraphResult Run(PassManager& pm) const;
};

}  // namespace kgpip::codegraph::analysis

#endif  // KGPIP_CODEGRAPH_ANALYSIS_CALL_GRAPH_H_
