#include "codegraph/analysis/type_flow.h"

#include <cctype>

#include "util/string_util.h"

namespace kgpip::codegraph::analysis {

namespace {

TypeEnv MergeEnvs(const TypeEnv& a, const TypeEnv& b) {
  TypeEnv out = a;
  for (const auto& [var, types] : b) {
    out[var].insert(types.begin(), types.end());
  }
  return out;
}

/// Transfer function for a straight-line statement. Assignments whose
/// RHS type is unknown keep the old binding (weak update): notebook
/// chains like `df = df.dropna()` preserve the frame type even though
/// we model only a handful of return types.
void Transfer(const Stmt& stmt, const ImportMap& imports, TypeEnv* env) {
  switch (stmt.kind) {
    case StmtKind::kAssign: {
      TypeSet value_types = EvalExprTypes(*stmt.value, *env, imports);
      const bool is_tuple = stmt.targets.size() > 1;
      TypeSet slot_types;
      for (const std::string& type : value_types) {
        std::string element = TupleElementType(type, is_tuple);
        if (!element.empty()) slot_types.insert(element);
      }
      if (slot_types.empty()) return;
      for (const ExprPtr& target : stmt.targets) {
        if (target->kind == ExprKind::kName) {
          (*env)[target->text] = slot_types;
        }
      }
      return;
    }
    case StmtKind::kFor:
      // The loop variable's element type is unknown in our subset.
      env->erase(stmt.loop_var);
      return;
    default:
      return;
  }
}

/// Walks a block, recording the entry environment of every statement and
/// returning the environment at the block's exit. `if` forks and joins;
/// `for` iterates the body transfer to a fixpoint before the recording
/// walk so body statements see back-edge bindings.
TypeEnv WalkBlock(const std::vector<StmtPtr>& block, TypeEnv env,
                  const ImportMap& imports, bool record,
                  TypeFlowResult* out) {
  for (const StmtPtr& stmt : block) {
    switch (stmt->kind) {
      case StmtKind::kIf: {
        if (record) out->stmt_in[stmt.get()] = env;
        TypeEnv then_env = WalkBlock(stmt->body, env, imports, record, out);
        TypeEnv else_env = stmt->orelse.empty()
                               ? env
                               : WalkBlock(stmt->orelse, env, imports,
                                           record, out);
        env = MergeEnvs(then_env, else_env);
        break;
      }
      case StmtKind::kFor: {
        TypeEnv merged = env;
        merged.erase(stmt->loop_var);
        // Fixpoint over the back edge; type sets only grow under the
        // union merge, so this terminates (bounded by distinct types).
        while (true) {
          TypeEnv after =
              WalkBlock(stmt->body, merged, imports, false, out);
          TypeEnv next = MergeEnvs(merged, after);
          if (next == merged) break;
          merged = std::move(next);
        }
        if (record) {
          out->stmt_in[stmt.get()] = merged;
          WalkBlock(stmt->body, merged, imports, true, out);
        }
        env = std::move(merged);
        break;
      }
      default:
        if (record) out->stmt_in[stmt.get()] = env;
        Transfer(*stmt, imports, &env);
        break;
    }
  }
  return env;
}

void CollectImportsFrom(const std::vector<StmtPtr>& block, ImportMap* out) {
  for (const StmtPtr& stmt : block) {
    switch (stmt->kind) {
      case StmtKind::kImport: {
        std::string alias = stmt->alias.empty() ? stmt->module : stmt->alias;
        (*out)[alias] = stmt->module;
        break;
      }
      case StmtKind::kImportFrom: {
        std::string alias =
            stmt->alias.empty() ? stmt->imported_name : stmt->alias;
        (*out)[alias] = stmt->module + "." + stmt->imported_name;
        break;
      }
      case StmtKind::kIf:
      case StmtKind::kFor:
        CollectImportsFrom(stmt->body, out);
        CollectImportsFrom(stmt->orelse, out);
        break;
      default:
        break;
    }
  }
}

}  // namespace

const TypeEnv& TypeFlowResult::EnvAt(const Stmt* stmt) const {
  static const TypeEnv kEmpty;
  auto it = stmt_in.find(stmt);
  return it == stmt_in.end() ? kEmpty : it->second;
}

TypeFlowResult TypeFlowPass::Run(PassManager& pm) const {
  TypeFlowResult result;
  result.imports = CollectImports(pm.module());
  WalkBlock(pm.module().statements, TypeEnv(), result.imports, true,
            &result);
  return result;
}

std::string ReturnTypeOf(const std::string& qualified) {
  if (qualified == "pandas.read_csv" ||
      EndsWith(qualified, ".read_csv")) {
    return "pandas.DataFrame";
  }
  if (EndsWith(qualified, "train_test_split")) {
    return "tuple[pandas.DataFrame]";
  }
  size_t dot = qualified.find_last_of('.');
  std::string last =
      dot == std::string::npos ? qualified : qualified.substr(dot + 1);
  if (!last.empty() && std::isupper(static_cast<unsigned char>(last[0]))) {
    return qualified;  // constructor
  }
  if (EndsWith(qualified, ".fit_transform") ||
      EndsWith(qualified, ".transform")) {
    return "numpy.ndarray";
  }
  return "";
}

std::string TupleElementType(const std::string& value_type, bool is_tuple) {
  if (!is_tuple) return value_type;
  if (StartsWith(value_type, "tuple[")) {
    return value_type.substr(6, value_type.size() - 7);
  }
  return value_type;
}

ImportMap CollectImports(const Module& module) {
  ImportMap imports;
  CollectImportsFrom(module.statements, &imports);
  return imports;
}

std::vector<std::string> ResolveCalleeNames(const Expr& func,
                                            const TypeEnv& env,
                                            const ImportMap& imports,
                                            std::string* via_import_alias) {
  if (via_import_alias != nullptr) via_import_alias->clear();
  if (func.kind == ExprKind::kName) {
    auto it = imports.find(func.text);
    if (it != imports.end()) {
      if (via_import_alias != nullptr) *via_import_alias = func.text;
      return {it->second};
    }
    return {func.text};
  }
  if (func.kind == ExprKind::kAttribute) {
    // Walk to the base of the chain, then suffix each base candidate.
    std::vector<const Expr*> chain;
    const Expr* cur = &func;
    while (cur->kind == ExprKind::kAttribute) {
      chain.push_back(cur);
      cur = cur->value.get();
    }
    std::string suffix;
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      suffix += "." + (*it)->text;
    }
    std::vector<std::string> bases;
    if (cur->kind == ExprKind::kName) {
      auto imp = imports.find(cur->text);
      if (imp != imports.end()) {
        if (via_import_alias != nullptr) *via_import_alias = cur->text;
        bases.push_back(imp->second);
      } else {
        for (const std::string& type :
             EvalExprTypes(*cur, env, imports)) {
          bases.push_back(type);
        }
        if (bases.empty()) bases.push_back(cur->text);
      }
    } else {
      // Call / subscript base: resolve through its value types.
      for (const std::string& type : EvalExprTypes(*cur, env, imports)) {
        bases.push_back(type);
      }
      if (bases.empty()) bases.push_back("<unknown>");
    }
    std::vector<std::string> names;
    names.reserve(bases.size());
    for (const std::string& base : bases) names.push_back(base + suffix);
    return names;
  }
  return {"<expr>"};
}

TypeSet EvalExprTypes(const Expr& expr, const TypeEnv& env,
                      const ImportMap& imports) {
  switch (expr.kind) {
    case ExprKind::kName: {
      auto it = env.find(expr.text);
      return it == env.end() ? TypeSet() : it->second;
    }
    case ExprKind::kSubscript:
      // Value flows through the subscript (frame column selection).
      return EvalExprTypes(*expr.value, env, imports);
    case ExprKind::kBinOp: {
      TypeSet lhs = EvalExprTypes(*expr.value, env, imports);
      if (!lhs.empty()) return lhs;
      return EvalExprTypes(*expr.index, env, imports);
    }
    case ExprKind::kCall: {
      TypeSet out;
      for (const std::string& name :
           ResolveCalleeNames(*expr.value, env, imports)) {
        std::string type = ReturnTypeOf(name);
        if (!type.empty()) out.insert(type);
      }
      return out;
    }
    case ExprKind::kAttribute:
    case ExprKind::kConstant:
    case ExprKind::kList:
      return {};
  }
  return {};
}

}  // namespace kgpip::codegraph::analysis
