#ifndef KGPIP_CODEGRAPH_ANALYSIS_PASS_MANAGER_H_
#define KGPIP_CODEGRAPH_ANALYSIS_PASS_MANAGER_H_

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <typeindex>
#include <unordered_map>
#include <vector>

#include "codegraph/code_graph.h"
#include "codegraph/python_ast.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace kgpip::codegraph::analysis {

/// Base class of every analysis pass. A pass is a pure function from the
/// analysis unit (the parsed Module and/or the emitted CodeGraph) to an
/// immutable result; concrete passes additionally declare
///
///   using Result = <result struct>;
///   Result Run(PassManager& pm) const;
///
/// Passes may depend on other passes by calling `pm.Get<OtherPass>()`
/// inside Run; the manager caches every result per analysis unit, so a
/// shared dependency (e.g. the CFG) is computed once no matter how many
/// passes consume it.
class AnalysisPass {
 public:
  virtual ~AnalysisPass() = default;
  virtual const char* name() const = 0;
};

/// Runs passes over one script's analysis unit and caches their results.
/// The manager never mutates the module or the graph; results stay valid
/// for its whole lifetime. Not thread-safe (one manager per script, like
/// one LLVM FunctionAnalysisManager per function).
class PassManager {
 public:
  /// Either pointer may be null when that view does not exist yet;
  /// requesting a pass that needs the missing view is a programming error
  /// (checked).
  explicit PassManager(const Module* module, const CodeGraph* graph = nullptr)
      : module_(module), graph_(graph) {}

  const Module& module() const {
    KGPIP_CHECK(module_ != nullptr) << "pass requires the parsed module";
    return *module_;
  }
  const CodeGraph& graph() const {
    KGPIP_CHECK(graph_ != nullptr) << "pass requires the code graph";
    return *graph_;
  }
  bool has_module() const { return module_ != nullptr; }
  bool has_graph() const { return graph_ != nullptr; }

  /// Returns PassT's result, computing (and caching) it on first request.
  /// Every request lands in the global metrics registry (cache hit/miss
  /// counters); a first run is additionally timed into the
  /// "codegraph.pass.run_seconds" histogram and — when tracing is on —
  /// emitted as a "codegraph.pass.<name>" span (dependencies pulled
  /// mid-run nest inside their dependent's span).
  template <typename PassT>
  const typename PassT::Result& Get() {
    static obs::Counter* hits =
        obs::MetricsRegistry::Global().GetCounter("codegraph.pass.cache_hit");
    static obs::Counter* misses = obs::MetricsRegistry::Global().GetCounter(
        "codegraph.pass.cache_miss");
    static obs::Histogram* run_seconds =
        obs::MetricsRegistry::Global().GetHistogram(
            "codegraph.pass.run_seconds");
    const std::type_index key(typeid(PassT));
    auto it = cache_.find(key);
    if (it == cache_.end()) {
      misses->Increment();
      PassT pass;
      KGPIP_CHECK(running_.insert(key).second)
          << "cyclic pass dependency involving " << pass.name();
      auto holder = std::make_shared<Holder<typename PassT::Result>>();
      {
        std::optional<obs::TraceSpan> span;
        if (obs::Tracer::enabled()) {
          span.emplace(std::string("codegraph.pass.") + pass.name());
        }
        Stopwatch watch;
        holder->value = pass.Run(*this);
        // Includes dependency time when this pass pulled one in mid-run
        // (the trace spans disambiguate self vs. dependency time).
        run_seconds->Record(watch.ElapsedSeconds());
      }
      // Recorded on completion, so a dependency pulled in mid-run lands
      // in the trace before its dependent.
      run_order_.push_back(pass.name());
      running_.erase(key);
      it = cache_.emplace(key, std::move(holder)).first;
    } else {
      hits->Increment();
    }
    return static_cast<const Holder<typename PassT::Result>*>(
               it->second.get())
        ->value;
  }

  /// True once PassT has been computed (for cache assertions in tests).
  template <typename PassT>
  bool Cached() const {
    return cache_.count(std::type_index(typeid(PassT))) > 0;
  }

  /// Pass names in first-run order (dependencies before dependents).
  const std::vector<std::string>& run_order() const { return run_order_; }

 private:
  struct HolderBase {
    virtual ~HolderBase() = default;
  };
  template <typename T>
  struct Holder : HolderBase {
    T value;
  };

  const Module* module_;
  const CodeGraph* graph_;
  std::unordered_map<std::type_index, std::shared_ptr<HolderBase>> cache_;
  std::set<std::type_index> running_;
  std::vector<std::string> run_order_;
};

}  // namespace kgpip::codegraph::analysis

#endif  // KGPIP_CODEGRAPH_ANALYSIS_PASS_MANAGER_H_
