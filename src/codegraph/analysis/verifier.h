#ifndef KGPIP_CODEGRAPH_ANALYSIS_VERIFIER_H_
#define KGPIP_CODEGRAPH_ANALYSIS_VERIFIER_H_

#include <vector>

#include "codegraph/analysis/diagnostic.h"
#include "codegraph/code_graph.h"
#include "util/status.h"

namespace kgpip::codegraph::analysis {

/// Structural invariant checker for emitted CodeGraphs, in the spirit of
/// LLVM's module verifier. Invariants:
///
///   * every edge's endpoints are valid node indices;
///   * the data-flow subgraph is a DAG (values cannot feed themselves);
///   * typed edges land on the right node kinds (parameter edges go
///     call -> parameter, location edges end at location nodes, ...);
///   * call, variable, and import nodes carry non-empty labels;
///   * every ML call node whose label is rooted in an imported module is
///     reachable from an import node through data flow (the analyzer
///     emits import -> call root edges to make this checkable).
///
/// The verifier is a gate for analyzer bugs, not for malformed *input*
/// scripts — those fail in the parser. It runs after every AnalyzeScript
/// and FilterCodeGraph when enabled; the default is on in debug builds
/// (!NDEBUG) and off in release builds so benchmarks stay unskewed.
/// Tests enable it explicitly.
class CodeGraphVerifier {
 public:
  /// All violated invariants (empty = graph is well-formed).
  static std::vector<Diagnostic> Verify(const CodeGraph& graph);

  /// Folds Verify into a Status (kInternal on the first error).
  static Status Check(const CodeGraph& graph);

  static bool enabled();
  static void set_enabled(bool on);
};

}  // namespace kgpip::codegraph::analysis

#endif  // KGPIP_CODEGRAPH_ANALYSIS_VERIFIER_H_
