#include "codegraph/analysis/verifier.h"

#include <deque>
#include <set>
#include <string>

#include "util/string_util.h"

namespace kgpip::codegraph::analysis {

namespace {

#ifndef NDEBUG
bool g_verifier_enabled = true;
#else
bool g_verifier_enabled = false;
#endif

Diagnostic GraphError(const CodeGraph& graph, std::string code,
                      std::string message) {
  Diagnostic d = MakeError(std::move(code), std::move(message));
  d.subject = graph.script_name;
  return d;
}

bool InRange(int id, const CodeGraph& graph) {
  return id >= 0 && id < static_cast<int>(graph.nodes.size());
}

/// Kahn's algorithm over the data-flow subgraph; leftovers mean a cycle.
void CheckDataFlowAcyclic(const CodeGraph& graph,
                          std::vector<Diagnostic>* out) {
  const size_t n = graph.nodes.size();
  std::vector<std::vector<int>> succ(n);
  std::vector<int> indegree(n, 0);
  for (const CodeEdge& edge : graph.edges) {
    if (edge.kind != EdgeKind::kDataFlow) continue;
    if (!InRange(edge.src, graph) || !InRange(edge.dst, graph)) continue;
    succ[static_cast<size_t>(edge.src)].push_back(edge.dst);
    ++indegree[static_cast<size_t>(edge.dst)];
  }
  std::deque<int> ready;
  for (size_t i = 0; i < n; ++i) {
    if (indegree[i] == 0) ready.push_back(static_cast<int>(i));
  }
  size_t processed = 0;
  while (!ready.empty()) {
    int cur = ready.front();
    ready.pop_front();
    ++processed;
    for (int next : succ[static_cast<size_t>(cur)]) {
      if (--indegree[static_cast<size_t>(next)] == 0) {
        ready.push_back(next);
      }
    }
  }
  if (processed < n) {
    out->push_back(GraphError(
        graph, "verify.dataflow-cycle",
        "data-flow subgraph has a cycle involving " +
            std::to_string(n - processed) + " node(s)"));
  }
}

void CheckEdgeShapes(const CodeGraph& graph, std::vector<Diagnostic>* out) {
  for (size_t i = 0; i < graph.edges.size(); ++i) {
    const CodeEdge& edge = graph.edges[i];
    if (!InRange(edge.src, graph) || !InRange(edge.dst, graph)) {
      out->push_back(GraphError(
          graph, "verify.edge-out-of-range",
          "edge #" + std::to_string(i) + " (" + std::to_string(edge.src) +
              " -> " + std::to_string(edge.dst) + ") leaves the node range [0, " +
              std::to_string(graph.nodes.size()) + ")"));
      continue;
    }
    const CodeNode& src = graph.nodes[static_cast<size_t>(edge.src)];
    const CodeNode& dst = graph.nodes[static_cast<size_t>(edge.dst)];
    const char* expect = nullptr;
    switch (edge.kind) {
      case EdgeKind::kParameter:
        if (src.kind != NodeKind::kCall || dst.kind != NodeKind::kParameter) {
          expect = "call -> parameter";
        }
        break;
      case EdgeKind::kLocation:
        if (dst.kind != NodeKind::kLocation) expect = "* -> location";
        break;
      case EdgeKind::kDoc:
        if (dst.kind != NodeKind::kDoc) expect = "* -> doc";
        break;
      case EdgeKind::kControlFlow:
        if (src.kind != NodeKind::kCall || dst.kind != NodeKind::kCall) {
          expect = "call -> call";
        }
        break;
      case EdgeKind::kDataFlow:
        break;
    }
    if (expect != nullptr) {
      out->push_back(GraphError(
          graph, "verify.edge-kind-mismatch",
          "edge #" + std::to_string(i) + " (" +
              std::string(EdgeKindName(edge.kind)) + ") must be " + expect +
              ", got " + NodeKindName(src.kind) + " -> " +
              NodeKindName(dst.kind)));
    }
  }
}

void CheckLabels(const CodeGraph& graph, std::vector<Diagnostic>* out) {
  for (size_t i = 0; i < graph.nodes.size(); ++i) {
    const CodeNode& node = graph.nodes[i];
    if (node.kind != NodeKind::kCall && node.kind != NodeKind::kVariable &&
        node.kind != NodeKind::kImport) {
      continue;
    }
    if (node.label.empty()) {
      out->push_back(GraphError(
          graph, "verify.empty-label",
          std::string(NodeKindName(node.kind)) + " node #" +
              std::to_string(i) + " has an empty label"));
    }
  }
}

/// Calls rooted in an imported module must be reachable from an import
/// node via data flow. Calls on unresolved receivers ("print", "df.head"
/// when df's type is unknown) are exempt — nothing roots them.
void CheckImportReachability(const CodeGraph& graph,
                             std::vector<Diagnostic>* out) {
  std::vector<std::string> import_roots;
  std::deque<int> frontier;
  std::set<int> reachable;
  for (size_t i = 0; i < graph.nodes.size(); ++i) {
    if (graph.nodes[i].kind != NodeKind::kImport) continue;
    import_roots.push_back(graph.nodes[i].label);
    if (reachable.insert(static_cast<int>(i)).second) {
      frontier.push_back(static_cast<int>(i));
    }
  }
  if (import_roots.empty()) return;

  std::vector<std::vector<int>> succ(graph.nodes.size());
  for (const CodeEdge& edge : graph.edges) {
    if (edge.kind != EdgeKind::kDataFlow) continue;
    if (!InRange(edge.src, graph) || !InRange(edge.dst, graph)) continue;
    succ[static_cast<size_t>(edge.src)].push_back(edge.dst);
  }
  while (!frontier.empty()) {
    int cur = frontier.front();
    frontier.pop_front();
    for (int next : succ[static_cast<size_t>(cur)]) {
      if (reachable.insert(next).second) frontier.push_back(next);
    }
  }

  for (size_t i = 0; i < graph.nodes.size(); ++i) {
    const CodeNode& node = graph.nodes[i];
    if (node.kind != NodeKind::kCall) continue;
    bool rooted = false;
    for (const std::string& root : import_roots) {
      if (node.label == root || StartsWith(node.label, root + ".")) {
        rooted = true;
        break;
      }
    }
    if (rooted && reachable.count(static_cast<int>(i)) == 0) {
      out->push_back(GraphError(
          graph, "verify.unreachable-call",
          "call node #" + std::to_string(i) + " '" + node.label +
              "' is rooted in an import but not data-flow reachable from "
              "any import node"));
    }
  }
}

}  // namespace

std::vector<Diagnostic> CodeGraphVerifier::Verify(const CodeGraph& graph) {
  std::vector<Diagnostic> diags;
  CheckEdgeShapes(graph, &diags);
  CheckDataFlowAcyclic(graph, &diags);
  CheckLabels(graph, &diags);
  CheckImportReachability(graph, &diags);
  return diags;
}

Status CodeGraphVerifier::Check(const CodeGraph& graph) {
  std::vector<Diagnostic> diags = Verify(graph);
  if (HasErrors(diags)) {
    return Status(StatusCode::kInternal,
                  "code graph verification failed:\n" +
                      RenderDiagnostics(diags));
  }
  return Status::Ok();
}

bool CodeGraphVerifier::enabled() { return g_verifier_enabled; }

void CodeGraphVerifier::set_enabled(bool on) { g_verifier_enabled = on; }

}  // namespace kgpip::codegraph::analysis
