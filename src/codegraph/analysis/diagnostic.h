#ifndef KGPIP_CODEGRAPH_ANALYSIS_DIAGNOSTIC_H_
#define KGPIP_CODEGRAPH_ANALYSIS_DIAGNOSTIC_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace kgpip::codegraph::analysis {

/// Diagnostic severities, ordered. Only kError diagnostics make a result
/// unusable; notes and warnings are advisory.
enum class Severity { kNote = 0, kWarning = 1, kError = 2 };

const char* SeverityName(Severity severity);

/// A half-open source region. Line/column are 1-based; 0 means unknown.
/// Graph-level diagnostics (verifier, linter) usually carry no span.
struct SourceSpan {
  int line = 0;
  int column = 0;

  bool known() const { return line > 0; }
  std::string ToString() const;  // "line 3:14", "line 3", or ""
};

/// One structured diagnostic: the unit every front-end error in the
/// lexer, parser, analyzer, verifier, linter, and skeleton mapper flows
/// through. `code` is a stable dotted identifier ("parse.unexpected-token",
/// "verify.dataflow-cycle", "lint.no-estimator") that tooling and tests
/// match on instead of message substrings.
struct Diagnostic {
  Severity severity = Severity::kError;
  std::string code;
  std::string message;
  SourceSpan span;
  /// What the diagnostic is about: a script name, a graph name, a
  /// skeleton spec. Optional.
  std::string subject;

  /// "error[parse.unexpected-token] fig2.py line 3:14: unexpected ')'".
  std::string ToString() const;

  /// Folds the diagnostic into a Status of `code` (default kParseError,
  /// the front-end convention) with the rendered text as message.
  Status ToStatus(StatusCode status_code = StatusCode::kParseError) const;
};

/// Convenience constructors keeping call sites one line long.
Diagnostic MakeError(std::string code, std::string message,
                     SourceSpan span = {});
Diagnostic MakeWarning(std::string code, std::string message,
                       SourceSpan span = {});

/// True if any diagnostic in `diags` is an error.
bool HasErrors(const std::vector<Diagnostic>& diags);

/// Renders a batch, one per line (used when a Status must carry several).
std::string RenderDiagnostics(const std::vector<Diagnostic>& diags);

}  // namespace kgpip::codegraph::analysis

#endif  // KGPIP_CODEGRAPH_ANALYSIS_DIAGNOSTIC_H_
