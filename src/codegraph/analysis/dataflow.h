#ifndef KGPIP_CODEGRAPH_ANALYSIS_DATAFLOW_H_
#define KGPIP_CODEGRAPH_ANALYSIS_DATAFLOW_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "codegraph/analysis/pass_manager.h"

namespace kgpip::codegraph::analysis {

/// Statement-level control-flow graph over the Python-subset AST. Every
/// statement (including ones nested in `if`/`for` bodies) is one CFG
/// node, identified by its index in `stmts`; `exit_id` is a synthetic
/// exit node. Branches fork at `if` (body vs. orelse), and `for` carries
/// both a loop back edge and a zero-iteration skip edge.
struct Cfg {
  std::vector<const Stmt*> stmts;       // pre-order over the module
  std::vector<std::vector<int>> succ;   // size stmts.size() + 1 (exit)
  std::vector<std::vector<int>> pred;
  std::map<const Stmt*, int> ids;
  int exit_id = 0;

  int IdOf(const Stmt* stmt) const {
    auto it = ids.find(stmt);
    return it == ids.end() ? -1 : it->second;
  }

  /// Variables written by the statement (assignment targets, loop vars).
  static std::vector<std::string> DefsOf(const Stmt& stmt);
  /// Variables read by the statement (every Name in evaluated position,
  /// including the bases of attribute/subscript assignment targets).
  static std::vector<std::string> UsesOf(const Stmt& stmt);
};

class CfgPass : public AnalysisPass {
 public:
  using Result = Cfg;
  const char* name() const override { return "cfg"; }
  Cfg Run(PassManager& pm) const;
};

/// Reaching definitions: which assignments can reach each program point.
/// A definition is identified by (statement id, variable).
struct ReachingDefsResult {
  /// in[s][v] = statement ids whose definition of `v` reaches entry of s.
  std::vector<std::map<std::string, std::set<int>>> in;

  /// Def-use chains: uses[(def_stmt, var)] = statements reading that def.
  std::map<std::pair<int, std::string>, std::set<int>> uses;

  /// The defs of `var` reaching the entry of `stmt_id` (empty set if
  /// none — an unbound or import-only name).
  const std::set<int>& DefsReaching(int stmt_id, const std::string& var) const;
  /// The statements that read the definition made at (def_stmt, var).
  const std::set<int>& UsesOfDef(int def_stmt, const std::string& var) const;
};

class ReachingDefsPass : public AnalysisPass {
 public:
  using Result = ReachingDefsResult;
  const char* name() const override { return "reaching-defs"; }
  ReachingDefsResult Run(PassManager& pm) const;
};

/// Liveness: which variables are still read after each program point.
struct LivenessResult {
  std::vector<std::set<std::string>> live_in;   // per statement id
  std::vector<std::set<std::string>> live_out;

  /// Definitions never read afterwards: (statement id, variable). The
  /// final `model.fit(...)`-style statements keep everything before them
  /// live, so in mined notebooks these are genuinely dead stores.
  std::vector<std::pair<int, std::string>> dead_stores;

  bool LiveOut(int stmt_id, const std::string& var) const {
    return stmt_id >= 0 &&
           stmt_id < static_cast<int>(live_out.size()) &&
           live_out[static_cast<size_t>(stmt_id)].count(var) > 0;
  }
};

class LivenessPass : public AnalysisPass {
 public:
  using Result = LivenessResult;
  const char* name() const override { return "liveness"; }
  LivenessResult Run(PassManager& pm) const;
};

}  // namespace kgpip::codegraph::analysis

#endif  // KGPIP_CODEGRAPH_ANALYSIS_DATAFLOW_H_
