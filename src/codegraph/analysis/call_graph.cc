#include "codegraph/analysis/call_graph.h"

#include <algorithm>
#include <deque>
#include <set>

namespace kgpip::codegraph::analysis {

bool CallGraphResult::Reaches(int src, int dst) const {
  if (src == dst) return false;
  std::set<int> seen{src};
  std::deque<int> frontier{src};
  while (!frontier.empty()) {
    int cur = frontier.front();
    frontier.pop_front();
    auto it = callees.find(cur);
    if (it == callees.end()) continue;
    for (int next : it->second) {
      if (next == dst) return true;
      if (seen.insert(next).second) frontier.push_back(next);
    }
  }
  return false;
}

CallGraphResult CallGraphPass::Run(PassManager& pm) const {
  const CodeGraph& graph = pm.graph();
  CallGraphResult result;

  std::vector<std::vector<int>> flow(graph.nodes.size());
  for (const CodeEdge& edge : graph.edges) {
    if (edge.kind != EdgeKind::kDataFlow) continue;
    if (edge.src < 0 || edge.dst < 0 ||
        edge.src >= static_cast<int>(graph.nodes.size()) ||
        edge.dst >= static_cast<int>(graph.nodes.size())) {
      continue;  // verifier reports these; stay total here
    }
    flow[static_cast<size_t>(edge.src)].push_back(edge.dst);
  }

  for (size_t i = 0; i < graph.nodes.size(); ++i) {
    if (graph.nodes[i].kind == NodeKind::kCall) {
      result.call_nodes.push_back(static_cast<int>(i));
    }
  }

  // From each call, chase data flow through non-call nodes; the first
  // call node hit on a path is a direct callee.
  for (int call : result.call_nodes) {
    std::set<int> seen{call};
    std::deque<int> frontier{call};
    std::set<int> direct;
    while (!frontier.empty()) {
      int cur = frontier.front();
      frontier.pop_front();
      for (int next : flow[static_cast<size_t>(cur)]) {
        if (!seen.insert(next).second) continue;
        if (graph.nodes[static_cast<size_t>(next)].kind == NodeKind::kCall) {
          direct.insert(next);
        } else {
          frontier.push_back(next);
        }
      }
    }
    for (int callee : direct) {
      result.callees[call].push_back(callee);
      result.callers[callee].push_back(call);
    }
  }
  return result;
}

}  // namespace kgpip::codegraph::analysis
