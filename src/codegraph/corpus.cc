#include "codegraph/corpus.h"

#include <algorithm>

#include "codegraph/ml_api.h"
#include "ml/learner.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace kgpip::codegraph {

namespace {

/// Short module alias for a Python class path, e.g.
/// "sklearn.ensemble.RandomForestClassifier" -> import line + usable name.
struct ImportPlan {
  std::string import_line;
  std::string constructor;
};

ImportPlan PlanImport(const std::string& python_class, Rng* rng) {
  size_t dot = python_class.find_last_of('.');
  std::string module = python_class.substr(0, dot);
  std::string cls = python_class.substr(dot + 1);
  if (rng->Bernoulli(0.6)) {
    return {"from " + module + " import " + cls, cls};
  }
  // import sklearn.ensemble as ens; ens.RandomForestClassifier(...)
  size_t last_dot = module.find_last_of('.');
  std::string alias =
      (last_dot == std::string::npos ? module : module.substr(last_dot + 1))
          .substr(0, 3);
  return {"import " + module + " as " + alias, alias + "." + cls};
}

std::string EstimatorKwargs(const std::string& canonical, Rng* rng) {
  if (canonical == "xgboost" || canonical == "lgbm" ||
      canonical == "gradient_boosting") {
    return StrFormat("n_estimators=%d, max_depth=%d",
                     static_cast<int>(rng->UniformInt(50, 300)),
                     static_cast<int>(rng->UniformInt(3, 9)));
  }
  if (canonical == "random_forest" || canonical == "extra_trees") {
    return StrFormat("n_estimators=%d",
                     static_cast<int>(rng->UniformInt(50, 400)));
  }
  if (canonical == "logistic_regression") {
    return StrFormat("C=%.2f", rng->Uniform(0.1, 10.0));
  }
  if (canonical == "knn") {
    return StrFormat("n_neighbors=%d",
                     static_cast<int>(rng->UniformInt(3, 15)));
  }
  if (canonical == "ridge" || canonical == "lasso") {
    return StrFormat("alpha=%.3f", rng->Uniform(0.001, 1.0));
  }
  return "";
}

}  // namespace

CorpusGenerator::CorpusGenerator(CorpusOptions options)
    : options_(options), rng_(options.seed) {}

NotebookScript CorpusGenerator::GeneratePipeline(const DatasetSpec& spec,
                                                 int index, Rng* rng) const {
  NotebookScript script;
  script.name = spec.name + "_kernel_" + std::to_string(index) + ".py";
  script.dataset_name = spec.name;
  script.is_ml_pipeline = true;
  const bool regression = spec.task == TaskType::kRegression;

  // ---- Choose the estimator, leaderboard-style. ----
  std::vector<std::string> affine =
      FamilyAffineLearners(spec.family, spec.task);
  std::string estimator;
  if (rng->Bernoulli(options_.off_profile_prob)) {
    // Off-profile: any supported learner.
    std::vector<std::string> all;
    for (const auto& info : ml::LearnerRegistry()) {
      if (ml::LearnerSupports(info.name, spec.task)) all.push_back(info.name);
    }
    estimator = all[rng->UniformInt(all.size())];
  } else {
    std::vector<double> weights;
    for (size_t i = 0; i < affine.size(); ++i) {
      weights.push_back(1.0 / static_cast<double>((i + 1) * (i + 1)));
    }
    estimator = affine[rng->Categorical(weights)];
  }
  script.estimator = estimator;

  // ---- Choose transformers with family-aware preferences. ----
  std::vector<std::string> transformers;
  switch (spec.family) {
    case ConceptFamily::kSparse:
      if (rng->Bernoulli(0.7)) transformers.push_back("select_k_best");
      if (rng->Bernoulli(0.3)) transformers.push_back("standard_scaler");
      break;
    case ConceptFamily::kText:
      transformers.push_back(rng->Bernoulli(0.7) ? "tfidf_vectorizer"
                                                 : "count_vectorizer");
      break;
    case ConceptFamily::kLinear:
    case ConceptFamily::kClusters:
      if (rng->Bernoulli(0.75)) transformers.push_back("standard_scaler");
      if (rng->Bernoulli(0.15)) transformers.push_back("pca");
      break;
    default:
      if (rng->Bernoulli(0.3)) transformers.push_back("standard_scaler");
      if (rng->Bernoulli(0.15)) transformers.push_back("minmax_scaler");
      if (rng->Bernoulli(0.1)) transformers.push_back("variance_threshold");
      break;
  }
  if (spec.missing_fraction > 0.0 && rng->Bernoulli(0.4)) {
    transformers.insert(transformers.begin(), "simple_imputer");
  }
  script.transformers = transformers;

  // ---- Emit the script text. ----
  std::vector<std::string> lines;
  lines.push_back("import pandas as pd");
  lines.push_back("import numpy as np");
  if (rng->Bernoulli(0.6)) {
    lines.push_back("import matplotlib.pyplot as plt");
  }
  if (rng->Bernoulli(0.3)) lines.push_back("import seaborn as sns");
  lines.push_back("from sklearn.model_selection import train_test_split");
  lines.push_back("from sklearn.metrics import accuracy_score");

  std::vector<ImportPlan> transformer_plans;
  for (const std::string& t : transformers) {
    ImportPlan plan = PlanImport(PythonClassFor(t, regression), rng);
    lines.push_back(plan.import_line);
    transformer_plans.push_back(plan);
  }
  ImportPlan est_plan =
      PlanImport(PythonClassFor(estimator, regression), rng);
  lines.push_back(est_plan.import_line);
  lines.push_back("");

  // Load the dataset (sometimes with an anonymous file name).
  std::string csv = rng->Bernoulli(options_.implicit_dataset_prob)
                        ? "data.csv"
                        : spec.name + ".csv";
  lines.push_back("df = pd.read_csv('" + csv + "')");

  // EDA noise typical of notebooks.
  if (rng->Bernoulli(0.7)) lines.push_back("df.head()");
  if (rng->Bernoulli(0.5)) lines.push_back("df.describe()");
  if (rng->Bernoulli(0.4)) lines.push_back("df.info()");
  if (rng->Bernoulli(0.35)) {
    lines.push_back("plt.figure()");
    lines.push_back("sns.heatmap(df.corr())");
  }
  if (rng->Bernoulli(0.3)) lines.push_back("df = df.dropna()");
  if (rng->Bernoulli(0.25)) {
    lines.push_back("for col in df.columns:");
    lines.push_back("    print(df[col].nunique())");
  }

  lines.push_back("X = df.drop(columns=['target'])");
  lines.push_back("y = df['target']");
  lines.push_back(
      "X_train, X_test, y_train, y_test = train_test_split(X, y, "
      "test_size=0.25)");

  for (size_t i = 0; i < transformer_plans.size(); ++i) {
    std::string var = "prep" + std::to_string(i);
    lines.push_back(var + " = " + transformer_plans[i].constructor + "()");
    lines.push_back("X_train = " + var + ".fit_transform(X_train)");
    lines.push_back("X_test = " + var + ".transform(X_test)");
  }

  lines.push_back("model = " + est_plan.constructor + "(" +
                  EstimatorKwargs(estimator, rng) + ")");
  lines.push_back("model.fit(X_train, y_train)");
  lines.push_back("preds = model.predict(X_test)");
  lines.push_back("score = accuracy_score(y_test, preds)");
  lines.push_back("print(score)");

  script.text = Join(lines, "\n") + "\n";
  return script;
}

NotebookScript CorpusGenerator::GenerateNoiseScript(const DatasetSpec& spec,
                                                    int index,
                                                    Rng* rng) const {
  NotebookScript script;
  script.name = spec.name + "_noise_" + std::to_string(index) + ".py";
  script.dataset_name = spec.name;
  script.is_ml_pipeline = false;
  std::vector<std::string> lines;
  if (rng->Bernoulli(0.5)) {
    // Pure exploratory analysis — no estimator at all.
    lines = {
        "import pandas as pd",
        "import matplotlib.pyplot as plt",
        "import seaborn as sns",
        "",
        "df = pd.read_csv('" + spec.name + ".csv')",
        "df.head()",
        "df.describe()",
        "df.info()",
        "plt.figure()",
        "sns.pairplot(df)",
        "df.groupby('target').mean()",
        "plt.show()",
    };
  } else {
    // Unsupported deep-learning framework — filtered out like the paper's
    // PyTorch/Keras notebooks.
    lines = {
        "import pandas as pd",
        "import torch",
        "import torch.nn as nn",
        "",
        "df = pd.read_csv('" + spec.name + ".csv')",
        "x = torch.tensor(df.values)",
        "model = nn.Sequential(nn.Linear(16, 8), nn.ReLU(), nn.Linear(8, "
        "1))",
        "opt = torch.optim.Adam(model.parameters(), lr=0.001)",
        "loss = nn.MSELoss()",
        "out = model(x)",
        "print(out)",
    };
  }
  script.text = Join(lines, "\n") + "\n";
  return script;
}

std::vector<NotebookScript> CorpusGenerator::GenerateForDataset(
    const DatasetSpec& spec, Rng* rng) const {
  static obs::Counter* pipelines = obs::MetricsRegistry::Global().GetCounter(
      "corpus.pipeline_scripts_generated");
  static obs::Counter* noise = obs::MetricsRegistry::Global().GetCounter(
      "corpus.noise_scripts_generated");
  std::vector<NotebookScript> scripts;
  for (int i = 0; i < options_.pipelines_per_dataset; ++i) {
    scripts.push_back(GeneratePipeline(spec, i, rng));
  }
  pipelines->Increment(options_.pipelines_per_dataset);
  for (int i = 0; i < options_.noise_scripts_per_dataset; ++i) {
    scripts.push_back(GenerateNoiseScript(spec, i, rng));
  }
  noise->Increment(options_.noise_scripts_per_dataset);
  return scripts;
}

std::vector<NotebookScript> CorpusGenerator::GenerateForDataset(
    const DatasetSpec& spec) {
  return GenerateForDataset(spec, &rng_);
}

std::vector<NotebookScript> CorpusGenerator::GenerateCorpus(
    const std::vector<DatasetSpec>& specs) {
  KGPIP_TRACE_SPAN("corpus.generate_corpus");
  // Fork one RNG stream per dataset *before* dispatch: which values a
  // dataset's scripts draw no longer depends on how work interleaves, so
  // the corpus is byte-identical at any thread count.
  std::vector<Rng> forks = util::ForkRngs(&rng_, specs.size());
  std::vector<std::vector<NotebookScript>> per_dataset =
      util::ThreadPool::Global().ParallelMap<std::vector<NotebookScript>>(
          specs.size(), [&](size_t i) {
            return GenerateForDataset(specs[i], &forks[i]);
          });
  std::vector<NotebookScript> all;
  for (std::vector<NotebookScript>& scripts : per_dataset) {
    for (NotebookScript& s : scripts) all.push_back(std::move(s));
  }
  return all;
}

}  // namespace kgpip::codegraph
