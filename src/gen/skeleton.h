#ifndef KGPIP_GEN_SKELETON_H_
#define KGPIP_GEN_SKELETON_H_

#include <string>
#include <vector>

#include "codegraph/analysis/diagnostic.h"
#include "data/table.h"
#include "gen/graph_generator.h"
#include "ml/pipeline.h"

namespace kgpip::gen {

/// A pipeline skeleton extracted from a generated graph, with the
/// generator's sequence score (paper §3.6: KGpip "maps these graphs into
/// ML pipeline skeletons, where each skeleton is a set of pre-processors
/// and an estimator").
struct ScoredSkeleton {
  ml::PipelineSpec spec;
  double log_prob = 0.0;
};

/// Maps a generated graph to a skeleton. Returns an error when the graph
/// is invalid for the task: no estimator node, an estimator that does not
/// support the task, or a node type outside the vocabulary; repeated
/// pre-processor ops are deduplicated (first occurrence wins). When
/// `diagnostic` is non-null it receives the structured finding behind a
/// returned error ("skeleton.unknown-op", "skeleton.no-estimator",
/// "skeleton.task-mismatch") so callers can count rejection reasons
/// without parsing messages. Featurizer-level ops (imputer / one-hot /
/// text vectorizers) are accepted but handled by the automatic
/// featurizer, so they do not appear as FeatureMatrix transformers.
Result<ScoredSkeleton> GraphToSkeleton(
    const GeneratedGraph& generated, TaskType task,
    codegraph::analysis::Diagnostic* diagnostic = nullptr);

}  // namespace kgpip::gen

#endif  // KGPIP_GEN_SKELETON_H_
