#ifndef KGPIP_GEN_SKELETON_H_
#define KGPIP_GEN_SKELETON_H_

#include <string>
#include <vector>

#include "data/table.h"
#include "gen/graph_generator.h"
#include "ml/pipeline.h"

namespace kgpip::gen {

/// A pipeline skeleton extracted from a generated graph, with the
/// generator's sequence score (paper §3.6: KGpip "maps these graphs into
/// ML pipeline skeletons, where each skeleton is a set of pre-processors
/// and an estimator").
struct ScoredSkeleton {
  ml::PipelineSpec spec;
  double log_prob = 0.0;
};

/// Maps a generated graph to a skeleton. Returns an error when the graph
/// is invalid for the task: no estimator node, an estimator that does not
/// support the task, or no nodes beyond the seed. Featurizer-level ops
/// (imputer / one-hot / text vectorizers) are accepted but handled by the
/// automatic featurizer, so they do not appear as FeatureMatrix
/// transformers.
Result<ScoredSkeleton> GraphToSkeleton(const GeneratedGraph& generated,
                                       TaskType task);

}  // namespace kgpip::gen

#endif  // KGPIP_GEN_SKELETON_H_
