#include "gen/graph_generator.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>

#include "gen/inference_engine.h"
#include "nn/fastmath.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace kgpip::gen {

using nn::Var;

GraphGenerator::~GraphGenerator() = default;

GraphGenerator::GraphGenerator(const GeneratorConfig& config, uint64_t seed)
    : config_(config), init_rng_(seed) {
  KGPIP_CHECK(config_.vocab_size > 0);
  // NOLINTNEXTLINE(concurrency-mt-unsafe) -- construction-time getenv on
  // a read-only environment.
  if (std::getenv("KGPIP_GEN_CROSSCHECK") != nullptr) {
    config_.cross_check = true;
  }
  const size_t h = static_cast<size_t>(config_.hidden);
  type_embedding_ = store_.Create(
      "type_embedding", static_cast<size_t>(config_.vocab_size), h,
      &init_rng_);
  init_node_ = nn::Linear(&store_, "init_node", h, h, &init_rng_);
  if (config_.condition_dims > 0) {
    cond_proj_ = nn::Linear(&store_, "cond_proj",
                            static_cast<size_t>(config_.condition_dims), h,
                            &init_rng_);
  }
  msg_fwd_ = nn::Linear(&store_, "msg_fwd", 2 * h, h, &init_rng_);
  msg_bwd_ = nn::Linear(&store_, "msg_bwd", 2 * h, h, &init_rng_);
  update_ = nn::GruCell(&store_, "update", h, h, &init_rng_);
  gate_ = nn::Linear(&store_, "gate", h, h, &init_rng_);
  proj_ = nn::Linear(&store_, "proj", h, h, &init_rng_);
  add_node_ = nn::Linear(&store_, "add_node", h,
                         static_cast<size_t>(config_.vocab_size) + 1,
                         &init_rng_);
  add_edge_ = nn::Linear(&store_, "add_edge", 2 * h, 1, &init_rng_);
  choose_node_ = nn::Linear(&store_, "choose_node", 2 * h, 1, &init_rng_);
  optimizer_ = std::make_unique<nn::Adam>(&store_, config_.learning_rate);
}

Var GraphGenerator::Propagate(
    const Var& states, const std::vector<std::pair<int, int>>& edges) const {
  const size_t n = states.rows();
  Var current = states;
  for (int round = 0; round < config_.prop_rounds; ++round) {
    if (edges.empty()) {
      // Still run the GRU with zero messages so isolated nodes evolve.
      Var zero(nn::Matrix(n, static_cast<size_t>(config_.hidden)));
      current = update_.Forward(zero, current);
      continue;
    }
    std::vector<size_t> srcs, dsts;
    srcs.reserve(edges.size());
    dsts.reserve(edges.size());
    for (const auto& [s, d] : edges) {
      srcs.push_back(static_cast<size_t>(s));
      dsts.push_back(static_cast<size_t>(d));
    }
    // Forward messages: f([h_src, h_dst]) delivered to dst.
    Var h_src = GatherRows(current, srcs);
    Var h_dst = GatherRows(current, dsts);
    Var fwd = Tanh(msg_fwd_.Forward(ConcatCols(h_src, h_dst)));
    Var messages = ScatterAddRows(fwd, dsts, n);
    // Backward messages: f([h_dst, h_src]) delivered to src.
    Var bwd = Tanh(msg_bwd_.Forward(ConcatCols(h_dst, h_src)));
    messages = Add(messages, ScatterAddRows(bwd, srcs, n));
    current = update_.Forward(messages, current);
  }
  return current;
}

Var GraphGenerator::Readout(const Var& states) const {
  // Gated sum over node states.
  Var gates = Sigmoid(gate_.Forward(states));
  Var content = proj_.Forward(states);
  return SumRows(Mul(gates, content));
}

Var GraphGenerator::InitNode(int type,
                             const std::vector<double>& condition) const {
  Var emb = GatherRows(type_embedding_, {static_cast<size_t>(type)});
  Var out = init_node_.Forward(emb);
  if (type == graph4ml::PipelineVocab::kDatasetType &&
      config_.condition_dims > 0 && !condition.empty()) {
    nn::Matrix cond(1, static_cast<size_t>(config_.condition_dims));
    for (size_t i = 0; i < cond.cols() && i < condition.size(); ++i) {
      cond(0, i) = condition[i];
    }
    out = Add(out, cond_proj_.Forward(Var(std::move(cond))));
  }
  return Tanh(out);
}

namespace {

/// Edges whose destination is node `node` (chains have exactly one).
std::vector<int> IncomingSources(const graph4ml::TypedGraph& graph,
                                 int node) {
  std::vector<int> sources;
  for (const auto& [src, dst] : graph.edges) {
    if (dst == node && src < node) sources.push_back(src);
    // Undirected fallback: treat (node, earlier) as an edge to `node`.
    if (src == node && dst < node) sources.push_back(dst);
  }
  return sources;
}

}  // namespace

Var GraphGenerator::SequenceLoss(const GraphExample& example,
                                 int* decisions) const {
  const graph4ml::TypedGraph& g = example.graph;
  const int total = static_cast<int>(g.num_nodes());
  const int given = std::max(1, std::min(example.given_nodes, total));
  int count = 0;

  // Seed states.
  Var states = InitNode(g.node_types[0], example.condition);
  for (int i = 1; i < given; ++i) {
    states = ConcatRows(states, InitNode(g.node_types[i],
                                         example.condition));
  }
  std::vector<std::pair<int, int>> edges;
  for (const auto& e : g.edges) {
    if (e.first < given && e.second < given) edges.push_back(e);
  }

  Var loss(nn::Matrix(1, 1));
  for (int i = given; i <= total; ++i) {
    states = Propagate(states, edges);
    Var h_graph = Readout(states);
    Var node_logits = add_node_.Forward(h_graph);
    const int target_type =
        i < total ? g.node_types[static_cast<size_t>(i)]
                  : config_.vocab_size;  // STOP
    loss = Add(loss, SoftmaxCrossEntropy(node_logits, {target_type}));
    ++count;
    if (i == total) break;

    Var h_new = InitNode(g.node_types[static_cast<size_t>(i)],
                         example.condition);
    std::vector<int> sources = IncomingSources(g, i);
    for (int src : sources) {
      // "Add an edge?" -> yes.
      Var edge_logit = add_edge_.Forward(ConcatCols(h_graph, h_new));
      loss = Add(loss, BinaryCrossEntropyWithLogits(edge_logit, 1.0));
      ++count;
      // "To which node?" -> src.
      nn::Matrix ones(states.rows(), 1, 1.0);
      Var tiled = MatMul(Var(std::move(ones)), h_new);
      Var scores = choose_node_.Forward(ConcatCols(states, tiled));
      // scores is (n x 1); treat as one softmax row.
      Var row = nn::MakeOp(
          scores.value().Transposed(), {scores}, [](nn::VarNode& self) {
            self.parents[0]->EnsureGrad();
            for (size_t c = 0; c < self.grad.cols(); ++c) {
              self.parents[0]->grad(c, 0) += self.grad(0, c);
            }
          });
      loss = Add(loss, SoftmaxCrossEntropy(row, {src}));
      ++count;
      edges.emplace_back(src, i);
    }
    // "Add an edge?" -> no (stop adding edges for this node).
    Var stop_logit = add_edge_.Forward(ConcatCols(h_graph, h_new));
    loss = Add(loss, BinaryCrossEntropyWithLogits(stop_logit, 0.0));
    ++count;
    states = ConcatRows(states, h_new);
  }
  if (decisions != nullptr) *decisions = count;
  return loss;
}

double GraphGenerator::TrainEpoch(const std::vector<GraphExample>& examples,
                                  Rng* rng) {
  if (examples.empty()) return 0.0;
  KGPIP_TRACE_SPAN("gen.train_epoch");
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  static obs::Counter* epochs = metrics.GetCounter("gen.train_epochs");
  static obs::Histogram* epoch_seconds =
      metrics.GetHistogram("gen.train_epoch_seconds");
  static obs::Gauge* loss_gauge = metrics.GetGauge("gen.train_loss");
  Stopwatch watch;
  std::vector<size_t> order = rng->Permutation(examples.size());
  double mean_loss = 0.0;
  if (config_.batch_size <= 1) {
    // Classic per-example SGD: loss → backward → step, one example at a
    // time. Inherently sequential (each step changes the weights the
    // next example sees), so it stays on the calling thread.
    double total_loss = 0.0;
    for (size_t idx : order) {
      int decisions = 0;
      Var loss = SequenceLoss(examples[idx], &decisions);
      total_loss += loss.value()(0, 0);
      nn::Backward(loss);
      optimizer_->Step();
    }
    mean_loss = total_loss / static_cast<double>(examples.size());
  } else {
    mean_loss = TrainEpochBatched(examples, order);
  }
  epochs->Increment();
  epoch_seconds->Record(watch.ElapsedSeconds());
  loss_gauge->Set(mean_loss);
  return mean_loss;
}

void GraphGenerator::CopyWeightsFrom(const GraphGenerator& other) {
  const std::vector<Var>& src = other.store_.params();
  const std::vector<Var>& dst = store_.params();
  KGPIP_CHECK(src.size() == dst.size());
  for (size_t i = 0; i < src.size(); ++i) {
    Var param = dst[i];  // cheap handle; shares the underlying node
    param.mutable_value() = src[i].value();
  }
}

double GraphGenerator::TrainEpochBatched(
    const std::vector<GraphExample>& examples,
    const std::vector<size_t>& order) {
  util::ThreadPool& pool = util::ThreadPool::Global();
  // One replica per lane: a lane processes its batch items serially on
  // its own weight copy, so per-example graphs never share mutable
  // state. Replicas are built lazily and reused across epochs.
  while (replicas_.size() < static_cast<size_t>(pool.num_lanes())) {
    replicas_.push_back(
        std::make_unique<GraphGenerator>(config_, /*seed=*/0));
  }
  const size_t batch = static_cast<size_t>(config_.batch_size);
  const std::vector<Var>& params = store_.params();
  double total_loss = 0.0;
  for (size_t start = 0; start < order.size(); start += batch) {
    const size_t count = std::min(batch, order.size() - start);
    for (auto& replica : replicas_) replica->CopyWeightsFrom(*this);
    std::vector<double> losses(count, 0.0);
    std::vector<std::vector<nn::Matrix>> grads(count);
    pool.ParallelFor(count, [&](size_t b, size_t lane) {
      GraphGenerator& replica = *replicas_[lane];
      int decisions = 0;
      Var loss = replica.SequenceLoss(examples[order[start + b]], &decisions);
      losses[b] = loss.value()(0, 0);
      nn::Backward(loss);
      // Snapshot this example's gradients, then clear the replica for
      // the lane's next item. Params a loss never touched keep an empty
      // grad matrix; the accumulation below skips those.
      const std::vector<Var>& replica_params = replica.store_.params();
      grads[b].reserve(replica_params.size());
      for (const Var& p : replica_params) grads[b].push_back(p.grad());
      replica.store_.ZeroGrads();
    });
    // Accumulate in example order so the summed gradient is one fixed
    // floating-point expression, then take a single Adam step.
    store_.ZeroGrads();
    for (size_t b = 0; b < count; ++b) {
      total_loss += losses[b];
      for (size_t p = 0; p < params.size(); ++p) {
        if (grads[b][p].empty()) continue;
        Var param = params[p];
        param.node()->grad.AddInPlace(grads[b][p]);
      }
    }
    optimizer_->Step();
  }
  return total_loss / static_cast<double>(examples.size());
}

double GraphGenerator::LogProb(const GraphExample& example) const {
  int decisions = 0;
  Var loss = SequenceLoss(example, &decisions);
  return -loss.value()(0, 0);
}

GeneratedGraph GraphGenerator::GenerateTape(
    const graph4ml::TypedGraph& seed, const std::vector<double>& condition,
    Rng* rng, double temperature) const {
  GeneratedGraph out;
  out.graph = seed;
  KGPIP_CHECK(!seed.node_types.empty()) << "seed subgraph required";

  // One softmax per decision, shared between the sample and its
  // log-probability (DecisionDist); buffers live outside the decode loop
  // so a step allocates nothing for them after the first.
  DecisionDist node_dist, choose_dist;

  Var states = InitNode(out.graph.node_types[0], condition);
  for (size_t i = 1; i < out.graph.node_types.size(); ++i) {
    states = ConcatRows(states, InitNode(out.graph.node_types[i],
                                         condition));
  }
  std::vector<std::pair<int, int>> edges = out.graph.edges;

  while (static_cast<int>(out.graph.num_nodes()) < config_.max_nodes) {
    states = Propagate(states, edges);
    Var h_graph = Readout(states);
    nn::Matrix node_logits = add_node_.Forward(h_graph).value();
    node_dist.Compute(node_logits.data(), node_logits.cols(), temperature);
    int picked = node_dist.Sample(rng, temperature);
    out.log_prob += node_dist.LogProbOf(picked);
    if (picked == config_.vocab_size) break;  // STOP

    int new_index = static_cast<int>(out.graph.num_nodes());
    out.graph.node_types.push_back(picked);
    Var h_new = InitNode(picked, condition);

    // Edge loop: Bernoulli "add edge" then categorical "to which node".
    // The heads are re-run every iteration on purpose — this is the
    // naive reference the inference engine's caching is checked against.
    int edge_budget = new_index;  // at most one edge per earlier node
    while (edge_budget-- > 0) {
      nn::Matrix edge_logit =
          add_edge_.Forward(ConcatCols(h_graph, h_new)).value();
      double p_edge = nn::FastSigmoid(edge_logit(0, 0));
      bool add = temperature <= 0.0 ? p_edge >= 0.5
                                    : rng->Bernoulli(p_edge);
      out.log_prob += std::log(std::max(add ? p_edge : 1.0 - p_edge,
                                        1e-12));
      if (!add) break;
      nn::Matrix ones(states.rows(), 1, 1.0);
      Var tiled = MatMul(Var(std::move(ones)), h_new);
      nn::Matrix scores =
          choose_node_.Forward(ConcatCols(states, tiled)).value()
              .Transposed();
      choose_dist.Compute(scores.data(), scores.cols(), temperature);
      int src = choose_dist.Sample(rng, temperature);
      out.log_prob += choose_dist.LogProbOf(src);
      bool duplicate = false;
      for (const auto& [s, d] : edges) {
        if (s == src && d == new_index) duplicate = true;
      }
      if (!duplicate) {
        edges.emplace_back(src, new_index);
        out.graph.edges.emplace_back(src, new_index);
      }
    }
    states = ConcatRows(states, h_new);
  }
  return out;
}

std::unique_ptr<InferenceEngine> GraphGenerator::AcquireEngine() const {
  {
    util::MutexLock lock(engines_mu_);
    if (!engines_.empty()) {
      std::unique_ptr<InferenceEngine> engine = std::move(engines_.back());
      engines_.pop_back();
      return engine;
    }
  }
  // Construction happens outside the lock: it allocates the full decode
  // scratch and only touches this generator's (immutable-here) weights.
  return std::make_unique<InferenceEngine>(this);
}

void GraphGenerator::ReleaseEngine(
    std::unique_ptr<InferenceEngine> engine) const {
  util::MutexLock lock(engines_mu_);
  engines_.push_back(std::move(engine));
}

std::unique_ptr<MultiLaneDecoder> GraphGenerator::AcquireMultiDecoder(
    size_t lanes) const {
  {
    util::MutexLock lock(engines_mu_);
    if (!multi_engines_.empty()) {
      std::unique_ptr<MultiLaneDecoder> decoder =
          std::move(multi_engines_.back());
      multi_engines_.pop_back();
      return decoder;
    }
  }
  return std::make_unique<MultiLaneDecoder>(this, lanes);
}

void GraphGenerator::ReleaseMultiDecoder(
    std::unique_ptr<MultiLaneDecoder> decoder) const {
  util::MutexLock lock(engines_mu_);
  multi_engines_.push_back(std::move(decoder));
}

GeneratedGraph GraphGenerator::GenerateWithEngine(
    InferenceEngine& engine, const graph4ml::TypedGraph& seed,
    const std::vector<double>& condition, Rng* rng,
    double temperature) const {
  if (!config_.cross_check) {
    return engine.Decode(seed, condition, rng, temperature);
  }
  Rng tape_rng = *rng;  // identical stream for the reference decode
  GeneratedGraph out = engine.Decode(seed, condition, rng, temperature);
  GeneratedGraph ref = GenerateTape(seed, condition, &tape_rng, temperature);
  KGPIP_CHECK(out.graph.node_types == ref.graph.node_types)
      << "tape-free decode diverged from tape (node types)";
  KGPIP_CHECK(out.graph.edges == ref.graph.edges)
      << "tape-free decode diverged from tape (edges)";
  KGPIP_CHECK(out.log_prob == ref.log_prob)
      << "tape-free decode diverged from tape (log-prob)";
  return out;
}

GeneratedGraph GraphGenerator::Generate(const graph4ml::TypedGraph& seed,
                                        const std::vector<double>& condition,
                                        Rng* rng,
                                        double temperature) const {
  KGPIP_TRACE_SPAN("gen.generate");
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  static obs::Histogram* generate_seconds =
      metrics.GetHistogram("gen.generate_seconds");
  static obs::Counter* generate_allocs =
      metrics.GetCounter("gen.generate_allocs");
  Stopwatch watch;
  struct RecordOnExit {
    obs::Histogram* hist;
    Stopwatch* watch;
    ~RecordOnExit() { hist->Record(watch->ElapsedSeconds()); }
  } record{generate_seconds, &watch};
  std::unique_ptr<InferenceEngine> engine = AcquireEngine();
  const size_t allocs_before = engine->alloc_events();
  GeneratedGraph out =
      GenerateWithEngine(*engine, seed, condition, rng, temperature);
  generate_allocs->Increment(
      static_cast<int64_t>(engine->alloc_events() - allocs_before));
  ReleaseEngine(std::move(engine));
  return out;
}

std::vector<GeneratedGraph> GraphGenerator::GenerateTopK(
    const graph4ml::TypedGraph& seed, const std::vector<double>& condition,
    size_t k, Rng* rng, double temperature) const {
  KGPIP_TRACE_SPAN("gen.generate_topk");
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  static obs::Histogram* topk_seconds =
      metrics.GetHistogram("gen.generate_topk_seconds");
  static obs::Counter* generate_allocs =
      metrics.GetCounter("gen.generate_allocs");
  if (k == 0) return {};
  Stopwatch watch;
  util::ThreadPool& pool = util::ThreadPool::Global();
  // Fork one stream per candidate *before* dispatch, and write results
  // by candidate index: output is then a function of (seed rng, k) only.
  // The k lanes are cut into one contiguous shard per pool lane; each
  // shard decodes on a MultiLaneDecoder that batches the network
  // evaluations of lanes whose decision histories are still identical.
  // Batching is bitwise output-neutral and lane i consumes only rngs[i]
  // in single-lane draw order, so the shard boundaries — which change
  // with the pool size — cannot change any byte of the output.
  std::vector<Rng> rngs = util::ForkRngs(rng, k);
  std::vector<Rng> tape_rngs;
  if (config_.cross_check) tape_rngs = rngs;  // pre-decode copies
  std::vector<GeneratedGraph> results(k);
  std::atomic<size_t> alloc_delta{0};
  const size_t shards = std::min(k, static_cast<size_t>(pool.num_lanes()));
  pool.ParallelFor(shards, [&](size_t s) {
    const size_t begin = s * k / shards;
    const size_t end = (s + 1) * k / shards;
    std::unique_ptr<MultiLaneDecoder> decoder =
        AcquireMultiDecoder(end - begin);
    const size_t allocs_before = decoder->alloc_events();
    decoder->DecodeLanes(seed, condition, &rngs[begin], &results[begin],
                         end - begin, temperature);
    alloc_delta.fetch_add(decoder->alloc_events() - allocs_before,
                          std::memory_order_relaxed);
    ReleaseMultiDecoder(std::move(decoder));
  });
  if (config_.cross_check) {
    pool.ParallelFor(k, [&](size_t i) {
      GeneratedGraph ref =
          GenerateTape(seed, condition, &tape_rngs[i], temperature);
      KGPIP_CHECK(results[i].graph.node_types == ref.graph.node_types)
          << "batched decode diverged from tape (node types)";
      KGPIP_CHECK(results[i].graph.edges == ref.graph.edges)
          << "batched decode diverged from tape (edges)";
      KGPIP_CHECK(results[i].log_prob == ref.log_prob)
          << "batched decode diverged from tape (log-prob)";
    });
  }
  generate_allocs->Increment(
      static_cast<int64_t>(alloc_delta.load(std::memory_order_relaxed)));
  topk_seconds->Record(watch.ElapsedSeconds());
  return results;
}

nn::Matrix GraphGenerator::ReferencePropagate(
    const nn::Matrix& states,
    const std::vector<std::pair<int, int>>& edges) const {
  return Propagate(Var(states), edges).value();
}

nn::Matrix GraphGenerator::ReferenceReadout(const nn::Matrix& states) const {
  return Readout(Var(states)).value();
}

nn::Matrix GraphGenerator::ReferenceInitNode(
    int type, const std::vector<double>& condition) const {
  return InitNode(type, condition).value();
}

nn::Matrix GraphGenerator::ReferenceNodeLogits(
    const nn::Matrix& states) const {
  return add_node_.Forward(Readout(Var(states))).value();
}

double GraphGenerator::ReferenceEdgeLogit(const nn::Matrix& states,
                                          const nn::Matrix& h_new) const {
  Var h_graph = Readout(Var(states));
  return add_edge_.Forward(ConcatCols(h_graph, Var(h_new))).value()(0, 0);
}

nn::Matrix GraphGenerator::ReferenceChooseScores(
    const nn::Matrix& states, const nn::Matrix& h_new) const {
  nn::Matrix ones(states.rows(), 1, 1.0);
  Var tiled = MatMul(Var(std::move(ones)), Var(h_new));
  return choose_node_.Forward(ConcatCols(Var(states), tiled)).value()
      .Transposed();
}

Json GraphGenerator::ToJson() const {
  Json out = Json::Object();
  Json config = Json::Object();
  config.Set("vocab_size", Json(config_.vocab_size));
  config.Set("hidden", Json(config_.hidden));
  config.Set("prop_rounds", Json(config_.prop_rounds));
  config.Set("max_nodes", Json(config_.max_nodes));
  config.Set("condition_dims", Json(config_.condition_dims));
  out.Set("config", std::move(config));
  out.Set("weights", store_.ToJson());
  return out;
}

Status GraphGenerator::LoadWeights(const Json& json) {
  const Json& config = json.Get("config");
  if (static_cast<int>(config.Get("vocab_size").AsInt()) !=
          config_.vocab_size ||
      static_cast<int>(config.Get("hidden").AsInt()) != config_.hidden) {
    return Status::InvalidArgument(
        "generator config mismatch; construct with matching config");
  }
  return store_.FromJson(json.Get("weights"));
}

}  // namespace kgpip::gen
