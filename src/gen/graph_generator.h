#ifndef KGPIP_GEN_GRAPH_GENERATOR_H_
#define KGPIP_GEN_GRAPH_GENERATOR_H_

#include <memory>
#include <vector>

#include "graph4ml/vocab.h"
#include "nn/layers.h"
#include "util/mutex.h"
#include "util/rng.h"
#include "util/status.h"

namespace kgpip::gen {

class InferenceEngine;
class MultiLaneDecoder;

/// Configuration of the deep graph generative model (Li et al. 2018,
/// adapted for conditional generation from a seed subgraph — KGpip's
/// §3.5 modification).
struct GeneratorConfig {
  int vocab_size = 0;      // node-type count (+1 STOP handled internally)
  int hidden = 32;         // node-state width
  int prop_rounds = 2;     // message-passing rounds per decision
  int max_nodes = 12;      // generation cap
  int condition_dims = 0;  // dataset content-embedding width (0 = off)
  double learning_rate = 3e-3;
  /// Debug mode: every tape-free Generate also runs the tape path on a
  /// copy of the RNG and checks the outputs are identical. Also enabled
  /// by setting the KGPIP_GEN_CROSSCHECK environment variable.
  bool cross_check = false;
  /// Examples per optimizer step. 1 reproduces the classic per-example
  /// SGD loop exactly; >1 computes the per-example gradients of each
  /// minibatch in parallel (data parallelism over model replicas),
  /// accumulates them in example order, and applies one Adam step —
  /// bit-identical at any thread count.
  int batch_size = 1;
};

/// One training example: a node-ordered typed graph (node 0 is the seed /
/// dataset node; each later node connects to earlier ones) plus an
/// optional conditioning vector (the dataset's content embedding).
struct GraphExample {
  graph4ml::TypedGraph graph;
  std::vector<double> condition;
  /// Decisions for the first `given_nodes` nodes are not trained /
  /// generated; they form the conditioning seed subgraph.
  int given_nodes = 1;
};

/// A generated graph with its sequence log-probability (the "score" KGpip
/// attaches to each candidate pipeline).
struct GeneratedGraph {
  graph4ml::TypedGraph graph;
  double log_prob = 0.0;
};

/// DeepGMG-style generator: builds graphs node-by-node —
///   (1) add-node decision over node types (or STOP),
///   (2) add-edge decision,
///   (3) choose-node decision over existing nodes —
/// with node states updated by GRU message passing between decisions.
class GraphGenerator {
 public:
  GraphGenerator(const GeneratorConfig& config, uint64_t seed);
  ~GraphGenerator();

  /// One pass over the examples (shuffled); returns mean sequence loss.
  double TrainEpoch(const std::vector<GraphExample>& examples, Rng* rng);

  /// Generates one graph conditioned on a seed subgraph. `temperature`
  /// scales sampling entropy (0 = greedy argmax). Runs on the tape-free
  /// inference engine — byte-identical to GenerateTape but without
  /// autograd bookkeeping. Engines are checked out of a shared free
  /// list per call, so concurrent calls on the *same* generator are
  /// safe (each caller decodes on private scratch).
  GeneratedGraph Generate(const graph4ml::TypedGraph& seed,
                          const std::vector<double>& condition, Rng* rng,
                          double temperature = 1.0) const;

  /// Reference decode on the autograd tape. Slow; kept as the
  /// ground-truth the inference engine is verified against (and for
  /// cross_check mode).
  GeneratedGraph GenerateTape(const graph4ml::TypedGraph& seed,
                              const std::vector<double>& condition,
                              Rng* rng, double temperature = 1.0) const;

  /// Batched generation: decodes `k` candidates cooperatively. The k
  /// lanes are split into one contiguous shard per thread-pool lane;
  /// each shard runs a MultiLaneDecoder that batches the GRU panels and
  /// decision heads of every lane whose decision history is still
  /// identical (lanes peel off into their own groups as they diverge).
  /// RNG streams are forked from `rng` by candidate index before
  /// dispatch, each lane consumes only its own stream in single-lane
  /// order, and cross-lane batching is bitwise output-neutral, so the
  /// result is byte-identical to k independent Generate calls at any
  /// thread count and ISA level.
  std::vector<GeneratedGraph> GenerateTopK(
      const graph4ml::TypedGraph& seed,
      const std::vector<double>& condition, size_t k, Rng* rng,
      double temperature = 1.0) const;

  // --- Reference forwards (naive tape recomputes, exposed so the
  // equivalence tests can check every inference-engine cache) ---
  nn::Matrix ReferencePropagate(
      const nn::Matrix& states,
      const std::vector<std::pair<int, int>>& edges) const;
  nn::Matrix ReferenceReadout(const nn::Matrix& states) const;
  nn::Matrix ReferenceInitNode(int type,
                               const std::vector<double>& condition) const;
  nn::Matrix ReferenceNodeLogits(const nn::Matrix& states) const;
  double ReferenceEdgeLogit(const nn::Matrix& states,
                            const nn::Matrix& h_new) const;
  nn::Matrix ReferenceChooseScores(const nn::Matrix& states,
                                   const nn::Matrix& h_new) const;

  /// Log-probability the model assigns to a complete graph (teacher
  /// forcing without learning) — used for ranking and tests.
  double LogProb(const GraphExample& example) const;

  const GeneratorConfig& config() const { return config_; }
  size_t num_parameters() const { return store_.TotalSize(); }

  /// Model weights as JSON (with config) and back.
  Json ToJson() const;
  Status LoadWeights(const Json& json);

 private:
  struct StepState;
  friend class InferenceEngine;  // reads weights for tape-free forwards
  friend class MultiLaneDecoder;  // same, for the batched top-k decode

  /// Runs propagation rounds over node states given current edges.
  nn::Var Propagate(const nn::Var& states,
                    const std::vector<std::pair<int, int>>& edges) const;
  /// Graph-level readout (gated sum).
  nn::Var Readout(const nn::Var& states) const;
  /// Initial state for a node of `type` (+ condition for dataset nodes).
  nn::Var InitNode(int type, const std::vector<double>& condition) const;

  /// Shared teacher-forced pass; returns the summed loss Var and the
  /// number of decisions (for Generate/LogProb reuse see .cc).
  nn::Var SequenceLoss(const GraphExample& example, int* decisions) const;

  /// Overwrites this model's parameter values with `other`'s (same
  /// config). Used to sync per-lane training replicas each minibatch.
  void CopyWeightsFrom(const GraphGenerator& other);

  /// Minibatch path of TrainEpoch: per-example gradients fan out over
  /// per-lane replicas; accumulation and the Adam step stay ordered.
  double TrainEpochBatched(const std::vector<GraphExample>& examples,
                           const std::vector<size_t>& order);

  /// Checks a warm engine out of the free list (or builds one when the
  /// list is empty). Pairs with ReleaseEngine; checkout means two
  /// threads can never share decode scratch, no matter how many
  /// concurrent Generate/GenerateTopK calls are in flight.
  std::unique_ptr<InferenceEngine> AcquireEngine() const;
  void ReleaseEngine(std::unique_ptr<InferenceEngine> engine) const;
  /// Same free-list checkout for the batched top-k decoders. `lanes`
  /// only sizes a freshly built decoder; a reused one grows on demand.
  std::unique_ptr<MultiLaneDecoder> AcquireMultiDecoder(size_t lanes) const;
  void ReleaseMultiDecoder(std::unique_ptr<MultiLaneDecoder> decoder) const;
  /// Decode via `engine`, optionally cross-checked against the tape.
  GeneratedGraph GenerateWithEngine(InferenceEngine& engine,
                                    const graph4ml::TypedGraph& seed,
                                    const std::vector<double>& condition,
                                    Rng* rng, double temperature) const;

  GeneratorConfig config_;
  Rng init_rng_;
  nn::ParamStore store_;
  std::unique_ptr<nn::Adam> optimizer_;
  /// Lane-indexed model replicas for data-parallel training (lazy).
  std::vector<std::unique_ptr<GraphGenerator>> replicas_;
  /// Free list of inference engines (mutable decode scratch), guarded
  /// by engines_mu_. Grows lazily to the peak number of concurrent
  /// decodes and keeps warmed-up caches across calls.
  mutable util::Mutex engines_mu_{util::LockRank::kGenEngines,
                                  "gen.engines"};
  mutable std::vector<std::unique_ptr<InferenceEngine>> engines_
      KGPIP_GUARDED_BY(engines_mu_);
  mutable std::vector<std::unique_ptr<MultiLaneDecoder>> multi_engines_
      KGPIP_GUARDED_BY(engines_mu_);

  nn::Var type_embedding_;  // (vocab) x hidden
  nn::Linear init_node_;    // hidden + hidden -> hidden (type emb + hG)
  nn::Linear cond_proj_;    // condition_dims -> hidden
  nn::Linear msg_fwd_;      // 2*hidden -> hidden
  nn::Linear msg_bwd_;      // 2*hidden -> hidden
  nn::GruCell update_;      // hidden -> hidden
  nn::Linear gate_;         // hidden -> hidden (readout gate)
  nn::Linear proj_;         // hidden -> hidden (readout content)
  nn::Linear add_node_;     // hidden -> vocab+1
  nn::Linear add_edge_;     // 2*hidden -> 1
  nn::Linear choose_node_;  // 2*hidden -> 1
};

}  // namespace kgpip::gen

#endif  // KGPIP_GEN_GRAPH_GENERATOR_H_
