#include "gen/skeleton.h"

#include <algorithm>

#include "graph4ml/vocab.h"
#include "ml/learner.h"
#include "ml/preprocess.h"

namespace kgpip::gen {

Result<ScoredSkeleton> GraphToSkeleton(const GeneratedGraph& generated,
                                       TaskType task) {
  const graph4ml::PipelineVocab& vocab = graph4ml::PipelineVocab::Get();
  ScoredSkeleton out;
  out.log_prob = generated.log_prob;

  std::string estimator;
  for (int type : generated.graph.node_types) {
    if (type == graph4ml::PipelineVocab::kDatasetType ||
        type == graph4ml::PipelineVocab::kReadCsvType) {
      continue;
    }
    if (type < 0 || type >= vocab.size()) {
      return Status::InvalidArgument("node type out of vocabulary");
    }
    const std::string& name = vocab.NameOf(type);
    if (vocab.IsEstimator(type)) {
      // Keep the last estimator in generation order (the fitted model).
      estimator = name;
      continue;
    }
    // Featurizer-level ops are legal pipeline members but are realized by
    // the automatic featurizer, not as FeatureMatrix transformers.
    if (!ml::IsKnownTransformer(name)) continue;
    if (std::find(out.spec.preprocessors.begin(),
                  out.spec.preprocessors.end(),
                  name) == out.spec.preprocessors.end()) {
      out.spec.preprocessors.push_back(name);
    }
  }
  if (estimator.empty()) {
    return Status::InvalidArgument(
        "generated graph contains no estimator node");
  }
  if (!ml::LearnerSupports(estimator, task)) {
    return Status::InvalidArgument("estimator '" + estimator +
                                   "' does not support task " +
                                   TaskTypeName(task));
  }
  out.spec.learner = estimator;
  return out;
}

}  // namespace kgpip::gen
