#include "gen/skeleton.h"

#include <algorithm>

#include "graph4ml/vocab.h"
#include "ml/learner.h"
#include "ml/preprocess.h"

namespace kgpip::gen {

namespace {

using codegraph::analysis::Diagnostic;
using codegraph::analysis::MakeError;

/// Records the finding for the caller (when asked) and folds it into the
/// Status the public signature promises.
Status Reject(Diagnostic finding, Diagnostic* out) {
  Status status = finding.ToStatus(StatusCode::kInvalidArgument);
  if (out != nullptr) *out = std::move(finding);
  return status;
}

}  // namespace

Result<ScoredSkeleton> GraphToSkeleton(const GeneratedGraph& generated,
                                       TaskType task,
                                       Diagnostic* diagnostic) {
  const graph4ml::PipelineVocab& vocab = graph4ml::PipelineVocab::Get();
  ScoredSkeleton out;
  out.log_prob = generated.log_prob;

  std::string estimator;
  for (int type : generated.graph.node_types) {
    if (type == graph4ml::PipelineVocab::kDatasetType ||
        type == graph4ml::PipelineVocab::kReadCsvType) {
      continue;
    }
    if (type < 0 || type >= vocab.size()) {
      return Reject(MakeError("skeleton.unknown-op",
                              "node type " + std::to_string(type) +
                                  " out of vocabulary"),
                    diagnostic);
    }
    const std::string& name = vocab.NameOf(type);
    if (vocab.IsEstimator(type)) {
      // Keep the last estimator in generation order (the fitted model).
      estimator = name;
      continue;
    }
    // Featurizer-level ops are legal pipeline members but are realized by
    // the automatic featurizer, not as FeatureMatrix transformers.
    if (!ml::IsKnownTransformer(name)) continue;
    if (std::find(out.spec.preprocessors.begin(),
                  out.spec.preprocessors.end(),
                  name) == out.spec.preprocessors.end()) {
      out.spec.preprocessors.push_back(name);
    }
  }
  if (estimator.empty()) {
    return Reject(MakeError("skeleton.no-estimator",
                            "generated graph contains no estimator node"),
                  diagnostic);
  }
  if (!ml::LearnerSupports(estimator, task)) {
    return Reject(MakeError("skeleton.task-mismatch",
                            "estimator '" + estimator +
                                "' does not support task " +
                                TaskTypeName(task)),
                  diagnostic);
  }
  out.spec.learner = estimator;
  return out;
}

}  // namespace kgpip::gen
