#include "gen/inference_engine.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "nn/inference.h"
#include "util/logging.h"

namespace kgpip::gen {

void DecisionDist::Compute(const double* logits, size_t k,
                           double temperature) {
  KGPIP_CHECK(k > 0);
  k_ = k;
  argmax_ = 0;
  for (size_t c = 1; c < k; ++c) {
    if (logits[c] > logits[argmax_]) argmax_ = c;
  }
  if (k > probs_.capacity()) ++alloc_events_;
  probs_.resize(k);
  nn::SoftmaxRow(logits, k, probs_.data());
  tempered_valid_ = false;
  if (temperature > 0.0 && temperature != 1.0) {
    if (k > tempered_.capacity()) ++alloc_events_;
    tempered_.resize(k);
    // Division (not reciprocal multiply): `logits[c] / t` is the tape
    // expression, and the two are not bit-equal in general.
    for (size_t c = 0; c < k; ++c) tempered_[c] = logits[c] / temperature;
    nn::SoftmaxRow(tempered_.data(), k, tempered_.data());
    tempered_valid_ = true;
  }
}

int DecisionDist::Sample(Rng* rng, double temperature) const {
  if (temperature <= 0.0) return static_cast<int>(argmax_);
  const std::vector<double>& w = tempered_valid_ ? tempered_ : probs_;
  return static_cast<int>(rng->Categorical(w.data(), k_));
}

double DecisionDist::LogProbOf(int pick) const {
  return std::log(std::max(probs_[static_cast<size_t>(pick)], 1e-12));
}

InferenceEngine::InferenceEngine(const GraphGenerator* model)
    : model_(model) {
  // Pre-size every buffer for the generation cap so a first decode is
  // already near alloc-free and warm decodes allocate nothing at all.
  const GeneratorConfig& cfg = model_->config_;
  const size_t h = static_cast<size_t>(cfg.hidden);
  const size_t n_cap = static_cast<size_t>(std::max(cfg.max_nodes, 1));
  const size_t vocab = static_cast<size_t>(cfg.vocab_size);
  const size_t e_cap = n_cap * (n_cap - 1) / 2 + n_cap;
  ws_.states.ReserveElems(n_cap * h);
  ws_.next_states.ReserveElems(n_cap * h);
  ws_.zero_input.ReserveElems(n_cap * h);
  ws_.msg_concat.ReserveElems(e_cap * 2 * h);
  ws_.msg_rows.ReserveElems(e_cap * h);
  ws_.acc_fwd.ReserveElems(n_cap * h);
  ws_.acc_bwd.ReserveElems(n_cap * h);
  ws_.gates.ReserveElems(n_cap * h);
  ws_.content.ReserveElems(n_cap * h);
  ws_.h_graph.ReserveElems(h);
  ws_.node_logits.ReserveElems(vocab + 1);
  ws_.h_new.ReserveElems(h);
  ws_.edge_concat.ReserveElems(2 * h);
  ws_.edge_logit.ReserveElems(1);
  ws_.choose_concat.ReserveElems(n_cap * 2 * h);
  ws_.choose_scores.ReserveElems(n_cap);
  ws_.emb_row.ReserveElems(h);
  ws_.init_tmp.ReserveElems(h);
  ws_.type_init.ReserveElems(vocab * h);
  ws_.type_init_valid.reserve(vocab);
  ws_.cond_in.ReserveElems(static_cast<size_t>(std::max(cfg.condition_dims,
                                                        0)));
  ws_.cond_row.ReserveElems(h);
  ws_.condition.reserve(static_cast<size_t>(std::max(cfg.condition_dims,
                                                     0)));
  ws_.node_dist.Reserve(vocab + 1);
  ws_.choose_dist.Reserve(n_cap);
  ws_.edges.reserve(e_cap);
  ws_.srcs.reserve(e_cap);
  ws_.dsts.reserve(e_cap);
  // The GRU scratch is shaped on first use; reserve its peak here.
  ws_.gru.z.ReserveElems(n_cap * h);
  ws_.gru.r.ReserveElems(n_cap * h);
  ws_.gru.cand.ReserveElems(n_cap * h);
  ws_.gru.tmp.ReserveElems(n_cap * h);
  ws_.gru.rh.ReserveElems(n_cap * h);
  ws_.gru_wx.ReserveElems(h * 3 * h);
  ws_.gru_bx.ReserveElems(3 * h);
  ws_.gru_wh2.ReserveElems(h * 2 * h);
  ws_.gru_bh2.ReserveElems(2 * h);
  ws_.gru_xg.ReserveElems(n_cap * 3 * h);
  ws_.gru_hg.ReserveElems(n_cap * 2 * h);
}

void InferenceEngine::EnsureCondRow() {
  if (ws_.cond_row_valid) return;
  const GeneratorConfig& cfg = model_->config_;
  const size_t dims = static_cast<size_t>(cfg.condition_dims);
  // Same construction as the tape path: zero row, then copy the prefix
  // that both the row and the condition vector cover.
  ws_.Shape(&ws_.cond_in, 1, dims);
  ws_.cond_in.Fill(0.0);
  for (size_t i = 0; i < dims && i < ws_.condition.size(); ++i) {
    ws_.cond_in(0, i) = ws_.condition[i];
  }
  model_->cond_proj_.ForwardValue(ws_.cond_in, &ws_.cond_row);
  ws_.cond_row_valid = true;
}

const double* InferenceEngine::InitRow(int type) {
  const size_t h = static_cast<size_t>(model_->config_.hidden);
  const size_t t = static_cast<size_t>(type);
  KGPIP_CHECK(t < ws_.type_init_valid.size());
  double* row = ws_.type_init.data() + t * h;
  if (ws_.type_init_valid[t]) return row;
  // Tape semantics: Tanh(init_node(emb[type]) [+ cond_proj(condition)]).
  const nn::Matrix& emb = model_->type_embedding_.value();
  ws_.Shape(&ws_.emb_row, 1, h);
  std::memcpy(ws_.emb_row.data(), emb.data() + t * h, h * sizeof(double));
  model_->init_node_.ForwardValue(ws_.emb_row, &ws_.init_tmp);
  if (type == graph4ml::PipelineVocab::kDatasetType &&
      model_->config_.condition_dims > 0 && !ws_.condition.empty()) {
    EnsureCondRow();
    ws_.init_tmp.AddInPlace(ws_.cond_row);
  }
  nn::TanhInPlace(&ws_.init_tmp);
  std::memcpy(row, ws_.init_tmp.data(), h * sizeof(double));
  ws_.type_init_valid[t] = 1;
  return row;
}

void InferenceEngine::Begin(const graph4ml::TypedGraph& seed,
                            const std::vector<double>& condition) {
  KGPIP_CHECK(!seed.node_types.empty()) << "seed subgraph required";
  const GeneratorConfig& cfg = model_->config_;
  const size_t h = static_cast<size_t>(cfg.hidden);
  if (condition.size() > ws_.condition.capacity()) ++ws_.alloc_events;
  ws_.condition.assign(condition.begin(), condition.end());
  ws_.Size(&ws_.type_init_valid, static_cast<size_t>(cfg.vocab_size));
  std::fill(ws_.type_init_valid.begin(), ws_.type_init_valid.end(), 0);
  ws_.Shape(&ws_.type_init, static_cast<size_t>(cfg.vocab_size), h);
  ws_.cond_row_valid = false;

  ws_.Shape(&ws_.states, seed.node_types.size(), h);
  for (size_t i = 0; i < seed.node_types.size(); ++i) {
    const double* row = InitRow(seed.node_types[i]);
    std::memcpy(ws_.states.data() + i * h, row, h * sizeof(double));
  }
  if (seed.edges.size() > ws_.edges.capacity()) ++ws_.alloc_events;
  ws_.edges.assign(seed.edges.begin(), seed.edges.end());
  // Re-pack the fused GRU gate panels: a few KB of copies per decode,
  // and the panels can never go stale across interleaved Fit calls.
  model_->update_.PackFused(&ws_.gru_wx, &ws_.gru_bx, &ws_.gru_wh2,
                            &ws_.gru_bh2);
  staged_type_ = -1;
  ++state_version_;
}

void InferenceEngine::RunPropagation() {
  const GeneratorConfig& cfg = model_->config_;
  const size_t h = static_cast<size_t>(cfg.hidden);
  const size_t n = ws_.states.rows();
  for (int round = 0; round < cfg.prop_rounds; ++round) {
    const nn::Matrix* messages = nullptr;
    if (ws_.edges.empty()) {
      // Zero messages so isolated nodes still evolve (tape behavior).
      ws_.Shape(&ws_.zero_input, n, h);
      ws_.zero_input.Fill(0.0);
      messages = &ws_.zero_input;
    } else {
      const size_t e = ws_.edges.size();
      ws_.Size(&ws_.srcs, e);
      ws_.Size(&ws_.dsts, e);
      for (size_t i = 0; i < e; ++i) {
        ws_.srcs[i] = static_cast<size_t>(ws_.edges[i].first);
        ws_.dsts[i] = static_cast<size_t>(ws_.edges[i].second);
      }
      // Forward messages: tanh(msg_fwd([h_src, h_dst])) scattered to dst.
      ws_.Shape(&ws_.msg_concat, e, 2 * h);
      for (size_t i = 0; i < e; ++i) {
        double* row = ws_.msg_concat.data() + i * 2 * h;
        std::memcpy(row, ws_.states.data() + ws_.srcs[i] * h,
                    h * sizeof(double));
        std::memcpy(row + h, ws_.states.data() + ws_.dsts[i] * h,
                    h * sizeof(double));
      }
      model_->msg_fwd_.ForwardValue(ws_.msg_concat, &ws_.msg_rows,
                                    nn::Activation::kTanh);
      ws_.Shape(&ws_.acc_fwd, n, h);
      ws_.acc_fwd.Fill(0.0);
      for (size_t i = 0; i < e; ++i) {
        double* dst = ws_.acc_fwd.data() + ws_.dsts[i] * h;
        const double* src = ws_.msg_rows.data() + i * h;
        for (size_t j = 0; j < h; ++j) dst[j] += src[j];
      }
      // Backward messages: tanh(msg_bwd([h_dst, h_src])) scattered to src.
      for (size_t i = 0; i < e; ++i) {
        double* row = ws_.msg_concat.data() + i * 2 * h;
        std::memcpy(row, ws_.states.data() + ws_.dsts[i] * h,
                    h * sizeof(double));
        std::memcpy(row + h, ws_.states.data() + ws_.srcs[i] * h,
                    h * sizeof(double));
      }
      model_->msg_bwd_.ForwardValue(ws_.msg_concat, &ws_.msg_rows,
                                    nn::Activation::kTanh);
      ws_.Shape(&ws_.acc_bwd, n, h);
      ws_.acc_bwd.Fill(0.0);
      for (size_t i = 0; i < e; ++i) {
        double* dst = ws_.acc_bwd.data() + ws_.srcs[i] * h;
        const double* src = ws_.msg_rows.data() + i * h;
        for (size_t j = 0; j < h; ++j) dst[j] += src[j];
      }
      // Two separate accumulators, summed afterwards: the tape computes
      // Add(scatter_fwd, scatter_bwd), and folding both scatters into one
      // buffer would change the association.
      ws_.acc_fwd.AddInPlace(ws_.acc_bwd);
      messages = &ws_.acc_fwd;
    }
    nn::GruFusedForward(*messages, ws_.states, ws_.gru_wx, ws_.gru_bx,
                        ws_.gru_wh2, ws_.gru_bh2,
                        model_->update_.hn().weight_value(),
                        model_->update_.hn().bias_value(), &ws_.gru_xg,
                        &ws_.gru_hg, &ws_.gru.z, &ws_.gru.r, &ws_.gru.rh,
                        &ws_.gru.tmp, &ws_.gru.cand, &ws_.next_states);
    std::swap(ws_.states, ws_.next_states);
  }
  ++state_version_;
}

const nn::Matrix& InferenceEngine::GraphReadout() {
  if (readout_state_ == state_version_) return ws_.h_graph;
  const size_t h = static_cast<size_t>(model_->config_.hidden);
  model_->gate_.ForwardValue(ws_.states, &ws_.gates,
                             nn::Activation::kSigmoid);
  model_->proj_.ForwardValue(ws_.states, &ws_.content);
  nn::MulInto(ws_.gates, ws_.content, &ws_.content);
  // SumRows: ascending row order, as the tape op accumulates.
  ws_.Shape(&ws_.h_graph, 1, h);
  ws_.h_graph.Fill(0.0);
  double* out = ws_.h_graph.data();
  for (size_t i = 0; i < ws_.content.rows(); ++i) {
    const double* row = ws_.content.data() + i * h;
    for (size_t j = 0; j < h; ++j) out[j] += row[j];
  }
  readout_state_ = state_version_;
  return ws_.h_graph;
}

const nn::Matrix& InferenceEngine::AddNodeLogits() {
  if (logits_state_ == state_version_) return ws_.node_logits;
  model_->add_node_.ForwardValue(GraphReadout(), &ws_.node_logits);
  logits_state_ = state_version_;
  return ws_.node_logits;
}

void InferenceEngine::StageNode(int type) {
  const size_t h = static_cast<size_t>(model_->config_.hidden);
  const double* row = InitRow(type);
  ws_.Shape(&ws_.h_new, 1, h);
  std::memcpy(ws_.h_new.data(), row, h * sizeof(double));
  staged_type_ = type;
  ++hnew_version_;
}

double InferenceEngine::EdgeLogitValue() {
  if (edge_state_ == state_version_ && edge_hnew_ == hnew_version_) {
    return edge_logit_value_;
  }
  const size_t h = static_cast<size_t>(model_->config_.hidden);
  const nn::Matrix& h_graph = GraphReadout();
  ws_.Shape(&ws_.edge_concat, 1, 2 * h);
  std::memcpy(ws_.edge_concat.data(), h_graph.data(), h * sizeof(double));
  std::memcpy(ws_.edge_concat.data() + h, ws_.h_new.data(),
              h * sizeof(double));
  model_->add_edge_.ForwardValue(ws_.edge_concat, &ws_.edge_logit);
  edge_logit_value_ = ws_.edge_logit(0, 0);
  edge_state_ = state_version_;
  edge_hnew_ = hnew_version_;
  return edge_logit_value_;
}

const nn::Matrix& InferenceEngine::ChooseScores() {
  if (choose_state_ == state_version_ && choose_hnew_ == hnew_version_) {
    return ws_.choose_scores;
  }
  const size_t h = static_cast<size_t>(model_->config_.hidden);
  const size_t n = ws_.states.rows();
  ws_.Shape(&ws_.choose_concat, n, 2 * h);
  const double* hn = ws_.h_new.data();
  for (size_t i = 0; i < n; ++i) {
    double* row = ws_.choose_concat.data() + i * 2 * h;
    std::memcpy(row, ws_.states.data() + i * h, h * sizeof(double));
    // The tape tiles h_new with MatMul(ones(n, 1), h_new), whose kernel
    // computes 0.0 + 1.0 * v per element — replicate that expression
    // (it maps -0.0 to +0.0, unlike a plain copy).
    for (size_t j = 0; j < h; ++j) row[h + j] = 0.0 + 1.0 * hn[j];
  }
  // The head yields an n x 1 column; its row-major flat layout equals the
  // 1 x n transpose the tape takes, so reshaping is the transpose.
  model_->choose_node_.ForwardValue(ws_.choose_concat, &ws_.choose_scores);
  ws_.choose_scores.Reshape(1, n);
  choose_state_ = state_version_;
  choose_hnew_ = hnew_version_;
  return ws_.choose_scores;
}

void InferenceEngine::AddEdge(int src) {
  if (ws_.edges.size() + 1 > ws_.edges.capacity()) ++ws_.alloc_events;
  ws_.edges.emplace_back(src, static_cast<int>(num_nodes()));
}

void InferenceEngine::CommitStagedNode() {
  KGPIP_CHECK(staged_type_ >= 0) << "no staged node";
  const size_t h = static_cast<size_t>(model_->config_.hidden);
  const size_t n = ws_.states.rows();
  ws_.Shape(&ws_.states, n + 1, h);  // keeps the first n rows intact
  std::memcpy(ws_.states.data() + n * h, ws_.h_new.data(),
              h * sizeof(double));
  staged_type_ = -1;
  ++state_version_;
}

GeneratedGraph InferenceEngine::Decode(const graph4ml::TypedGraph& seed,
                                       const std::vector<double>& condition,
                                       Rng* rng, double temperature) {
  const GeneratorConfig& cfg = model_->config_;
  Begin(seed, condition);
  GeneratedGraph out;
  out.graph = seed;
  // The returned graph owns its storage; reserve once up front. (The
  // alloc_events metric tracks the reusable arena, not the output.)
  out.graph.node_types.reserve(static_cast<size_t>(cfg.max_nodes));
  out.graph.edges.reserve(ws_.edges.capacity());

  while (static_cast<int>(num_nodes()) < cfg.max_nodes) {
    RunPropagation();
    const nn::Matrix& logits = AddNodeLogits();
    ws_.node_dist.Compute(logits.data(), logits.cols(), temperature);
    const int picked = ws_.node_dist.Sample(rng, temperature);
    out.log_prob += ws_.node_dist.LogProbOf(picked);
    if (picked == cfg.vocab_size) break;  // STOP

    const int new_index = static_cast<int>(num_nodes());
    out.graph.node_types.push_back(picked);
    StageNode(picked);

    // Edge loop. The edge logit and choose-node scores depend only on
    // (states, h_graph, h_new), all constant until the node commits, so
    // each is computed once and replayed across the budget — the tape
    // path recomputes them (identically) every iteration.
    bool choose_ready = false;
    int edge_budget = new_index;  // at most one edge per earlier node
    while (edge_budget-- > 0) {
      const double p_edge = nn::SigmoidScalar(EdgeLogitValue());
      const bool add = temperature <= 0.0 ? p_edge >= 0.5
                                          : rng->Bernoulli(p_edge);
      out.log_prob += std::log(std::max(add ? p_edge : 1.0 - p_edge,
                                        1e-12));
      if (!add) break;
      const nn::Matrix& scores = ChooseScores();
      if (!choose_ready) {
        ws_.choose_dist.Compute(scores.data(), scores.cols(), temperature);
        choose_ready = true;
      }
      const int src = ws_.choose_dist.Sample(rng, temperature);
      out.log_prob += ws_.choose_dist.LogProbOf(src);
      bool duplicate = false;
      for (const auto& [s, d] : ws_.edges) {
        if (s == src && d == new_index) duplicate = true;
      }
      if (!duplicate) {
        AddEdge(src);
        out.graph.edges.emplace_back(src, new_index);
      }
    }
    CommitStagedNode();
  }
  return out;
}

MultiLaneDecoder::MultiLaneDecoder(const GraphGenerator* model,
                                   size_t lane_capacity)
    : model_(model), lane_capacity_(std::max<size_t>(lane_capacity, 1)) {
  const GeneratorConfig& cfg = model_->config_;
  const size_t h = static_cast<size_t>(cfg.hidden);
  const size_t n_cap = static_cast<size_t>(std::max(cfg.max_nodes, 1));
  const size_t vocab = static_cast<size_t>(cfg.vocab_size);
  const size_t K = lane_capacity_;
  const size_t e_cap = n_cap * (n_cap - 1) / 2 + n_cap;
  const size_t rows_cap = K * n_cap;
  const size_t e_all_cap = K * e_cap;
  states_all_.ReserveElems(rows_cap * h);
  next_states_all_.ReserveElems(rows_cap * h);
  acc_fwd_.ReserveElems(rows_cap * h);
  acc_bwd_.ReserveElems(rows_cap * h);
  msg_concat_.ReserveElems(e_all_cap * 2 * h);
  msg_rows_.ReserveElems(e_all_cap * h);
  gru_.z.ReserveElems(rows_cap * h);
  gru_.r.ReserveElems(rows_cap * h);
  gru_.cand.ReserveElems(rows_cap * h);
  gru_.tmp.ReserveElems(rows_cap * h);
  gru_.rh.ReserveElems(rows_cap * h);
  gru_wx_.ReserveElems(h * 3 * h);
  gru_bx_.ReserveElems(3 * h);
  gru_wh2_.ReserveElems(h * 2 * h);
  gru_bh2_.ReserveElems(2 * h);
  gru_xg_.ReserveElems(rows_cap * 3 * h);
  gru_hg_.ReserveElems(rows_cap * 2 * h);
  gates_.ReserveElems(rows_cap * h);
  content_.ReserveElems(rows_cap * h);
  h_graph_all_.ReserveElems(K * h);
  node_logits_all_.ReserveElems(K * (vocab + 1));
  edge_concat_all_.ReserveElems(K * 2 * h);
  edge_logit_all_.ReserveElems(K);
  choose_concat_all_.ReserveElems(rows_cap * 2 * h);
  choose_scores_all_.ReserveElems(rows_cap);
  emb_row_.ReserveElems(h);
  init_tmp_.ReserveElems(h);
  type_init_.ReserveElems(vocab * h);
  type_init_valid_.reserve(vocab);
  const size_t cond_dims =
      static_cast<size_t>(std::max(cfg.condition_dims, 0));
  cond_in_.ReserveElems(cond_dims);
  cond_row_.ReserveElems(h);
  condition_.reserve(cond_dims);
  node_dists_.resize(K);
  choose_dists_.resize(K);
  for (DecisionDist& d : node_dists_) d.Reserve(vocab + 1);
  for (DecisionDist& d : choose_dists_) d.Reserve(n_cap);
  p_edge_.reserve(K);
  groups_a_.resize(K);
  groups_b_.resize(K);
  for (std::vector<LaneGroup>* gs : {&groups_a_, &groups_b_}) {
    for (LaneGroup& g : *gs) {
      g.lanes.reserve(K);
      g.node_types.reserve(n_cap);
      g.edges.reserve(e_cap);
    }
  }
  lane_pick_.reserve(K);
  lane_pair_.reserve(K);
  lane_log_prob_.reserve(K);
  lane_srcs_.resize(K);
  for (std::vector<int>& v : lane_srcs_) v.reserve(n_cap);
  pair_group_.reserve(K);
  pair_type_.reserve(K);
  gsrcs_.reserve(e_all_cap);
  gdsts_.reserve(e_all_cap);
}

size_t MultiLaneDecoder::alloc_events() const {
  size_t total = alloc_events_;
  for (const DecisionDist& d : node_dists_) total += d.alloc_events();
  for (const DecisionDist& d : choose_dists_) total += d.alloc_events();
  return total;
}

void MultiLaneDecoder::EnsureCondRow() {
  if (cond_row_valid_) return;
  const GeneratorConfig& cfg = model_->config_;
  const size_t dims = static_cast<size_t>(cfg.condition_dims);
  // Same construction as the tape path: zero row, then copy the prefix
  // that both the row and the condition vector cover.
  Shape(&cond_in_, 1, dims);
  cond_in_.Fill(0.0);
  for (size_t i = 0; i < dims && i < condition_.size(); ++i) {
    cond_in_(0, i) = condition_[i];
  }
  model_->cond_proj_.ForwardValue(cond_in_, &cond_row_);
  cond_row_valid_ = true;
}

const double* MultiLaneDecoder::InitRow(int type) {
  const size_t h = static_cast<size_t>(model_->config_.hidden);
  const size_t t = static_cast<size_t>(type);
  KGPIP_CHECK(t < type_init_valid_.size());
  double* row = type_init_.data() + t * h;
  if (type_init_valid_[t]) return row;
  // Tape semantics: Tanh(init_node(emb[type]) [+ cond_proj(condition)]).
  // The cache is decode-global: initial states depend only on (weights,
  // condition), so every lane shares one row per type.
  const nn::Matrix& emb = model_->type_embedding_.value();
  Shape(&emb_row_, 1, h);
  std::memcpy(emb_row_.data(), emb.data() + t * h, h * sizeof(double));
  model_->init_node_.ForwardValue(emb_row_, &init_tmp_);
  if (type == graph4ml::PipelineVocab::kDatasetType &&
      model_->config_.condition_dims > 0 && !condition_.empty()) {
    EnsureCondRow();
    init_tmp_.AddInPlace(cond_row_);
  }
  nn::TanhInPlace(&init_tmp_);
  std::memcpy(row, init_tmp_.data(), h * sizeof(double));
  type_init_valid_[t] = 1;
  return row;
}

void MultiLaneDecoder::PropagateAll(size_t num_groups, size_t n) {
  const GeneratorConfig& cfg = model_->config_;
  const size_t h = static_cast<size_t>(cfg.hidden);
  const std::vector<LaneGroup>& cur = cur_is_a_ ? groups_a_ : groups_b_;
  const size_t n_total = num_groups * n;
  size_t e_all = 0;
  for (size_t g = 0; g < num_groups; ++g) e_all += cur[g].edges.size();
  for (int round = 0; round < cfg.prop_rounds; ++round) {
    // Both scatter accumulators zeroed for every group; a group with no
    // edges keeps +0.0 rows, which is bitwise the single-lane
    // zero-input path (Fill(0.0) there too, and +0.0 + +0.0 == +0.0).
    Shape(&acc_fwd_, n_total, h);
    acc_fwd_.Fill(0.0);
    Shape(&acc_bwd_, n_total, h);
    acc_bwd_.Fill(0.0);
    if (e_all > 0) {
      Size(&gsrcs_, e_all);
      Size(&gdsts_, e_all);
      size_t idx = 0;
      for (size_t g = 0; g < num_groups; ++g) {
        const size_t base = g * n;
        for (const auto& [s, d] : cur[g].edges) {
          gsrcs_[idx] = base + static_cast<size_t>(s);
          gdsts_[idx] = base + static_cast<size_t>(d);
          ++idx;
        }
      }
      // Forward messages: tanh(msg_fwd([h_src, h_dst])) scattered to
      // dst. One GEMM over every group's edges — rows are independent,
      // so stacking cannot change any row's bytes; the scatter visits
      // each group's edges in its own edge order, exactly the
      // single-lane accumulation order per destination row.
      Shape(&msg_concat_, e_all, 2 * h);
      for (size_t i = 0; i < e_all; ++i) {
        double* row = msg_concat_.data() + i * 2 * h;
        std::memcpy(row, states_all_.data() + gsrcs_[i] * h,
                    h * sizeof(double));
        std::memcpy(row + h, states_all_.data() + gdsts_[i] * h,
                    h * sizeof(double));
      }
      model_->msg_fwd_.ForwardValue(msg_concat_, &msg_rows_,
                                    nn::Activation::kTanh);
      for (size_t i = 0; i < e_all; ++i) {
        double* dst = acc_fwd_.data() + gdsts_[i] * h;
        const double* src = msg_rows_.data() + i * h;
        for (size_t j = 0; j < h; ++j) dst[j] += src[j];
      }
      // Backward messages: tanh(msg_bwd([h_dst, h_src])) scattered to
      // src.
      for (size_t i = 0; i < e_all; ++i) {
        double* row = msg_concat_.data() + i * 2 * h;
        std::memcpy(row, states_all_.data() + gdsts_[i] * h,
                    h * sizeof(double));
        std::memcpy(row + h, states_all_.data() + gsrcs_[i] * h,
                    h * sizeof(double));
      }
      model_->msg_bwd_.ForwardValue(msg_concat_, &msg_rows_,
                                    nn::Activation::kTanh);
      for (size_t i = 0; i < e_all; ++i) {
        double* dst = acc_bwd_.data() + gsrcs_[i] * h;
        const double* src = msg_rows_.data() + i * h;
        for (size_t j = 0; j < h; ++j) dst[j] += src[j];
      }
    }
    // Two separate accumulators summed afterwards, as the tape does.
    acc_fwd_.AddInPlace(acc_bwd_);
    // One fused GRU over every group's rows (row-independent).
    nn::GruFusedForward(acc_fwd_, states_all_, gru_wx_, gru_bx_, gru_wh2_,
                        gru_bh2_, model_->update_.hn().weight_value(),
                        model_->update_.hn().bias_value(), &gru_xg_,
                        &gru_hg_, &gru_.z, &gru_.r, &gru_.rh, &gru_.tmp,
                        &gru_.cand, &next_states_all_);
    std::swap(states_all_, next_states_all_);
  }
}

void MultiLaneDecoder::ReadoutAll(size_t num_groups, size_t n) {
  const size_t h = static_cast<size_t>(model_->config_.hidden);
  // Gated-sum readout over the whole stack, then per-group row sums in
  // ascending row order (the tape's SumRows accumulation order).
  model_->gate_.ForwardValue(states_all_, &gates_, nn::Activation::kSigmoid);
  model_->proj_.ForwardValue(states_all_, &content_);
  nn::MulInto(gates_, content_, &content_);
  Shape(&h_graph_all_, num_groups, h);
  h_graph_all_.Fill(0.0);
  for (size_t g = 0; g < num_groups; ++g) {
    double* out = h_graph_all_.data() + g * h;
    for (size_t i = 0; i < n; ++i) {
      const double* row = content_.data() + (g * n + i) * h;
      for (size_t j = 0; j < h; ++j) out[j] += row[j];
    }
  }
  model_->add_node_.ForwardValue(h_graph_all_, &node_logits_all_);
}

void MultiLaneDecoder::DecodeLanes(const graph4ml::TypedGraph& seed,
                                   const std::vector<double>& condition,
                                   Rng* rngs, GeneratedGraph* results,
                                   size_t k, double temperature) {
  KGPIP_CHECK(!seed.node_types.empty()) << "seed subgraph required";
  KGPIP_CHECK(k > 0);
  const GeneratorConfig& cfg = model_->config_;
  const size_t h = static_cast<size_t>(cfg.hidden);
  const size_t vocab = static_cast<size_t>(cfg.vocab_size);

  // Per-decode shared caches (identical for every lane: same weights,
  // same condition).
  if (condition.size() > condition_.capacity()) ++alloc_events_;
  condition_.assign(condition.begin(), condition.end());
  Size(&type_init_valid_, vocab);
  std::fill(type_init_valid_.begin(), type_init_valid_.end(), 0);
  Shape(&type_init_, vocab, h);
  cond_row_valid_ = false;
  model_->update_.PackFused(&gru_wx_, &gru_bx_, &gru_wh2_, &gru_bh2_);

  // Per-lane state.
  Size(&lane_pick_, k);
  Size(&lane_pair_, k);
  Size(&lane_log_prob_, k);
  std::fill(lane_log_prob_.begin(), lane_log_prob_.end(), 0.0);
  if (k > lane_srcs_.size()) {
    ++alloc_events_;
    lane_srcs_.resize(k);
  }
  if (k > groups_a_.size()) {
    ++alloc_events_;
    groups_a_.resize(k);
    groups_b_.resize(k);
  }
  if (k > node_dists_.size()) {
    ++alloc_events_;
    node_dists_.resize(k);
    choose_dists_.resize(k);
  }

  // Every lane starts in one group holding the seed graph.
  size_t n = seed.node_types.size();
  num_groups_ = 1;
  cur_is_a_ = true;
  {
    LaneGroup& g0 = groups_a_[0];
    if (k > g0.lanes.capacity()) ++alloc_events_;
    g0.lanes.clear();
    for (size_t i = 0; i < k; ++i) g0.lanes.push_back(static_cast<int>(i));
    if (seed.node_types.size() > g0.node_types.capacity()) ++alloc_events_;
    g0.node_types.assign(seed.node_types.begin(), seed.node_types.end());
    if (seed.edges.size() > g0.edges.capacity()) ++alloc_events_;
    g0.edges.assign(seed.edges.begin(), seed.edges.end());
  }
  Shape(&states_all_, n, h);
  for (size_t i = 0; i < n; ++i) {
    std::memcpy(states_all_.data() + i * h, InitRow(seed.node_types[i]),
                h * sizeof(double));
  }

  auto finalize = [&](const LaneGroup& g, int lane) {
    GeneratedGraph& out = results[lane];
    out.graph.node_types = g.node_types;
    out.graph.edges = g.edges;
    out.log_prob = lane_log_prob_[static_cast<size_t>(lane)];
  };

  const size_t max_nodes = static_cast<size_t>(std::max(cfg.max_nodes, 0));
  while (n < max_nodes && num_groups_ > 0) {
    std::vector<LaneGroup>& cur = cur_is_a_ ? groups_a_ : groups_b_;
    std::vector<LaneGroup>& next = cur_is_a_ ? groups_b_ : groups_a_;
    const size_t G = num_groups_;
    PropagateAll(G, n);
    ReadoutAll(G, n);

    // Node-type sampling. One distribution per group; each lane draws
    // from its own stream in the single-lane order.
    for (size_t g = 0; g < G; ++g) {
      node_dists_[g].Compute(node_logits_all_.data() + g * (vocab + 1),
                             vocab + 1, temperature);
    }
    pair_group_.clear();
    pair_type_.clear();
    size_t nonstop = 0;
    for (size_t g = 0; g < G; ++g) {
      const size_t pair_begin = pair_group_.size();
      for (int lane : cur[g].lanes) {
        const int pick = node_dists_[g].Sample(&rngs[lane], temperature);
        lane_log_prob_[static_cast<size_t>(lane)] +=
            node_dists_[g].LogProbOf(pick);
        if (pick == cfg.vocab_size) {  // STOP: lane is done, no more draws
          lane_pick_[static_cast<size_t>(lane)] = -1;
          finalize(cur[g], lane);
          continue;
        }
        ++nonstop;
        lane_pick_[static_cast<size_t>(lane)] = pick;
        // Find (or append) this group's (type) pair.
        size_t p = pair_begin;
        for (; p < pair_group_.size(); ++p) {
          if (pair_type_[p] == pick) break;
        }
        if (p == pair_group_.size()) {
          if (pair_group_.size() == pair_group_.capacity()) ++alloc_events_;
          pair_group_.push_back(static_cast<int>(g));
          pair_type_.push_back(pick);
        }
        lane_pair_[static_cast<size_t>(lane)] = static_cast<int>(p);
      }
    }

    const size_t P = pair_group_.size();
    if (P > 0) {
      // Batched decision heads, one row block per (group, staged type).
      // Both heads read only (states, h_graph, h_new) — all constant
      // until the node commits — so one evaluation per pair replays the
      // single-lane per-step cache.
      Shape(&edge_concat_all_, P, 2 * h);
      for (size_t p = 0; p < P; ++p) {
        double* row = edge_concat_all_.data() + p * 2 * h;
        std::memcpy(row,
                    h_graph_all_.data() +
                        static_cast<size_t>(pair_group_[p]) * h,
                    h * sizeof(double));
        std::memcpy(row + h, InitRow(pair_type_[p]), h * sizeof(double));
      }
      model_->add_edge_.ForwardValue(edge_concat_all_, &edge_logit_all_);
      Size(&p_edge_, P);
      for (size_t p = 0; p < P; ++p) {
        p_edge_[p] = nn::SigmoidScalar(edge_logit_all_(p, 0));
      }
      Shape(&choose_concat_all_, P * n, 2 * h);
      for (size_t p = 0; p < P; ++p) {
        const size_t base =
            static_cast<size_t>(pair_group_[p]) * n;
        const double* hn = InitRow(pair_type_[p]);
        for (size_t i = 0; i < n; ++i) {
          double* row = choose_concat_all_.data() + (p * n + i) * 2 * h;
          std::memcpy(row, states_all_.data() + (base + i) * h,
                      h * sizeof(double));
          // The tape tiles h_new with MatMul(ones(n, 1), h_new), whose
          // kernel computes 0.0 + 1.0 * v per element — replicate that
          // expression (it maps -0.0 to +0.0, unlike a plain copy).
          for (size_t j = 0; j < h; ++j) row[h + j] = 0.0 + 1.0 * hn[j];
        }
      }
      model_->choose_node_.ForwardValue(choose_concat_all_,
                                        &choose_scores_all_);
      for (size_t p = 0; p < P; ++p) {
        // The head's (P*n) x 1 output is row-major, so pair p's scores
        // are the contiguous run [p*n, (p+1)*n) — the 1 x n transpose
        // the single-lane path reshapes to.
        choose_dists_[p].Compute(choose_scores_all_.data() + p * n, n,
                                 temperature);
      }
    }

    // Per-lane edge loop: pure sampling against the pair's cached
    // p_edge / choose distribution (no further network evaluation, just
    // like the single-lane cache replay). A duplicate pick is exactly
    // "src already added this step" — prior edges all have dst < n.
    for (size_t g = 0; g < G; ++g) {
      for (int lane : cur[g].lanes) {
        if (lane_pick_[static_cast<size_t>(lane)] < 0) continue;
        std::vector<int>& srcs = lane_srcs_[static_cast<size_t>(lane)];
        srcs.clear();
        const size_t p =
            static_cast<size_t>(lane_pair_[static_cast<size_t>(lane)]);
        int edge_budget = static_cast<int>(n);
        while (edge_budget-- > 0) {
          const double pe = p_edge_[p];
          const bool add = temperature <= 0.0 ? pe >= 0.5
                                              : rngs[lane].Bernoulli(pe);
          lane_log_prob_[static_cast<size_t>(lane)] +=
              std::log(std::max(add ? pe : 1.0 - pe, 1e-12));
          if (!add) break;
          const int src =
              choose_dists_[p].Sample(&rngs[lane], temperature);
          lane_log_prob_[static_cast<size_t>(lane)] +=
              choose_dists_[p].LogProbOf(src);
          bool duplicate = false;
          for (int s : srcs) {
            if (s == src) duplicate = true;
          }
          if (!duplicate) srcs.push_back(src);
        }
      }
    }

    // Partition every parent's surviving lanes into child groups keyed
    // by (type, ordered source sequence) — the scatter accumulation
    // follows edge order, so only an identical ordered history keeps
    // states bitwise shared. Child states are copied as they form; the
    // stack is trimmed to the real child count afterwards (Reshape
    // keeps the prefix).
    Shape(&next_states_all_, nonstop * (n + 1), h);
    size_t next_count = 0;
    for (size_t g = 0; g < G; ++g) {
      const size_t child_begin = next_count;
      const size_t parent_edges = cur[g].edges.size();
      for (int lane : cur[g].lanes) {
        const int pick = lane_pick_[static_cast<size_t>(lane)];
        if (pick < 0) continue;
        const std::vector<int>& srcs =
            lane_srcs_[static_cast<size_t>(lane)];
        size_t c = child_begin;
        for (; c < next_count; ++c) {
          const LaneGroup& cand = next[c];
          if (cand.node_types.back() != pick) continue;
          if (cand.edges.size() != parent_edges + srcs.size()) continue;
          bool same = true;
          for (size_t i = 0; i < srcs.size(); ++i) {
            if (cand.edges[parent_edges + i].first != srcs[i]) same = false;
          }
          if (same) break;
        }
        if (c == next_count) {
          if (next_count == next.size()) {
            ++alloc_events_;
            next.resize(next_count + 1);
          }
          LaneGroup& child = next[next_count];
          child.lanes.clear();
          if (cur[g].node_types.size() + 1 > child.node_types.capacity()) {
            ++alloc_events_;
          }
          child.node_types.assign(cur[g].node_types.begin(),
                                  cur[g].node_types.end());
          child.node_types.push_back(pick);
          if (parent_edges + srcs.size() > child.edges.capacity()) {
            ++alloc_events_;
          }
          child.edges.assign(cur[g].edges.begin(), cur[g].edges.end());
          for (int s : srcs) {
            child.edges.emplace_back(s, static_cast<int>(n));
          }
          // Child states: the parent's rows plus the staged node's row
          // (CommitStagedNode semantics, relocated into the new stack).
          double* dst = next_states_all_.data() + next_count * (n + 1) * h;
          std::memcpy(dst, states_all_.data() + g * n * h,
                      n * h * sizeof(double));
          std::memcpy(dst + n * h, InitRow(pick), h * sizeof(double));
          ++next_count;
        }
        if (next[c].lanes.size() == next[c].lanes.capacity()) {
          ++alloc_events_;
        }
        next[c].lanes.push_back(lane);
      }
    }
    next_states_all_.Reshape(next_count * (n + 1), h);
    std::swap(states_all_, next_states_all_);
    num_groups_ = next_count;
    cur_is_a_ = !cur_is_a_;
    ++n;
  }

  // Lanes still alive hit the node budget; emit their group's graph.
  const std::vector<LaneGroup>& cur = cur_is_a_ ? groups_a_ : groups_b_;
  for (size_t g = 0; g < num_groups_; ++g) {
    for (int lane : cur[g].lanes) finalize(cur[g], lane);
  }
}

}  // namespace kgpip::gen
