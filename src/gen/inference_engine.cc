#include "gen/inference_engine.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "nn/inference.h"
#include "util/logging.h"

namespace kgpip::gen {

void DecisionDist::Compute(const double* logits, size_t k,
                           double temperature) {
  KGPIP_CHECK(k > 0);
  k_ = k;
  argmax_ = 0;
  for (size_t c = 1; c < k; ++c) {
    if (logits[c] > logits[argmax_]) argmax_ = c;
  }
  if (k > probs_.capacity()) ++alloc_events_;
  probs_.resize(k);
  nn::SoftmaxRow(logits, k, probs_.data());
  tempered_valid_ = false;
  if (temperature > 0.0 && temperature != 1.0) {
    if (k > tempered_.capacity()) ++alloc_events_;
    tempered_.resize(k);
    // Division (not reciprocal multiply): `logits[c] / t` is the tape
    // expression, and the two are not bit-equal in general.
    for (size_t c = 0; c < k; ++c) tempered_[c] = logits[c] / temperature;
    nn::SoftmaxRow(tempered_.data(), k, tempered_.data());
    tempered_valid_ = true;
  }
}

int DecisionDist::Sample(Rng* rng, double temperature) const {
  if (temperature <= 0.0) return static_cast<int>(argmax_);
  const std::vector<double>& w = tempered_valid_ ? tempered_ : probs_;
  return static_cast<int>(rng->Categorical(w.data(), k_));
}

double DecisionDist::LogProbOf(int pick) const {
  return std::log(std::max(probs_[static_cast<size_t>(pick)], 1e-12));
}

InferenceEngine::InferenceEngine(const GraphGenerator* model)
    : model_(model) {
  // Pre-size every buffer for the generation cap so a first decode is
  // already near alloc-free and warm decodes allocate nothing at all.
  const GeneratorConfig& cfg = model_->config_;
  const size_t h = static_cast<size_t>(cfg.hidden);
  const size_t n_cap = static_cast<size_t>(std::max(cfg.max_nodes, 1));
  const size_t vocab = static_cast<size_t>(cfg.vocab_size);
  const size_t e_cap = n_cap * (n_cap - 1) / 2 + n_cap;
  ws_.states.ReserveElems(n_cap * h);
  ws_.next_states.ReserveElems(n_cap * h);
  ws_.zero_input.ReserveElems(n_cap * h);
  ws_.msg_concat.ReserveElems(e_cap * 2 * h);
  ws_.msg_rows.ReserveElems(e_cap * h);
  ws_.acc_fwd.ReserveElems(n_cap * h);
  ws_.acc_bwd.ReserveElems(n_cap * h);
  ws_.gates.ReserveElems(n_cap * h);
  ws_.content.ReserveElems(n_cap * h);
  ws_.h_graph.ReserveElems(h);
  ws_.node_logits.ReserveElems(vocab + 1);
  ws_.h_new.ReserveElems(h);
  ws_.edge_concat.ReserveElems(2 * h);
  ws_.edge_logit.ReserveElems(1);
  ws_.choose_concat.ReserveElems(n_cap * 2 * h);
  ws_.choose_scores.ReserveElems(n_cap);
  ws_.emb_row.ReserveElems(h);
  ws_.init_tmp.ReserveElems(h);
  ws_.type_init.ReserveElems(vocab * h);
  ws_.type_init_valid.reserve(vocab);
  ws_.cond_in.ReserveElems(static_cast<size_t>(std::max(cfg.condition_dims,
                                                        0)));
  ws_.cond_row.ReserveElems(h);
  ws_.condition.reserve(static_cast<size_t>(std::max(cfg.condition_dims,
                                                     0)));
  ws_.node_dist.Reserve(vocab + 1);
  ws_.choose_dist.Reserve(n_cap);
  ws_.edges.reserve(e_cap);
  ws_.srcs.reserve(e_cap);
  ws_.dsts.reserve(e_cap);
  // The GRU scratch is shaped on first use; reserve its peak here.
  ws_.gru.z.ReserveElems(n_cap * h);
  ws_.gru.r.ReserveElems(n_cap * h);
  ws_.gru.cand.ReserveElems(n_cap * h);
  ws_.gru.tmp.ReserveElems(n_cap * h);
  ws_.gru.rh.ReserveElems(n_cap * h);
  ws_.gru_wx.ReserveElems(h * 3 * h);
  ws_.gru_bx.ReserveElems(3 * h);
  ws_.gru_wh2.ReserveElems(h * 2 * h);
  ws_.gru_bh2.ReserveElems(2 * h);
  ws_.gru_xg.ReserveElems(n_cap * 3 * h);
  ws_.gru_hg.ReserveElems(n_cap * 2 * h);
}

void InferenceEngine::EnsureCondRow() {
  if (ws_.cond_row_valid) return;
  const GeneratorConfig& cfg = model_->config_;
  const size_t dims = static_cast<size_t>(cfg.condition_dims);
  // Same construction as the tape path: zero row, then copy the prefix
  // that both the row and the condition vector cover.
  ws_.Shape(&ws_.cond_in, 1, dims);
  ws_.cond_in.Fill(0.0);
  for (size_t i = 0; i < dims && i < ws_.condition.size(); ++i) {
    ws_.cond_in(0, i) = ws_.condition[i];
  }
  model_->cond_proj_.ForwardValue(ws_.cond_in, &ws_.cond_row);
  ws_.cond_row_valid = true;
}

const double* InferenceEngine::InitRow(int type) {
  const size_t h = static_cast<size_t>(model_->config_.hidden);
  const size_t t = static_cast<size_t>(type);
  KGPIP_CHECK(t < ws_.type_init_valid.size());
  double* row = ws_.type_init.data() + t * h;
  if (ws_.type_init_valid[t]) return row;
  // Tape semantics: Tanh(init_node(emb[type]) [+ cond_proj(condition)]).
  const nn::Matrix& emb = model_->type_embedding_.value();
  ws_.Shape(&ws_.emb_row, 1, h);
  std::memcpy(ws_.emb_row.data(), emb.data() + t * h, h * sizeof(double));
  model_->init_node_.ForwardValue(ws_.emb_row, &ws_.init_tmp);
  if (type == graph4ml::PipelineVocab::kDatasetType &&
      model_->config_.condition_dims > 0 && !ws_.condition.empty()) {
    EnsureCondRow();
    ws_.init_tmp.AddInPlace(ws_.cond_row);
  }
  nn::TanhInPlace(&ws_.init_tmp);
  std::memcpy(row, ws_.init_tmp.data(), h * sizeof(double));
  ws_.type_init_valid[t] = 1;
  return row;
}

void InferenceEngine::Begin(const graph4ml::TypedGraph& seed,
                            const std::vector<double>& condition) {
  KGPIP_CHECK(!seed.node_types.empty()) << "seed subgraph required";
  const GeneratorConfig& cfg = model_->config_;
  const size_t h = static_cast<size_t>(cfg.hidden);
  if (condition.size() > ws_.condition.capacity()) ++ws_.alloc_events;
  ws_.condition.assign(condition.begin(), condition.end());
  ws_.Size(&ws_.type_init_valid, static_cast<size_t>(cfg.vocab_size));
  std::fill(ws_.type_init_valid.begin(), ws_.type_init_valid.end(), 0);
  ws_.Shape(&ws_.type_init, static_cast<size_t>(cfg.vocab_size), h);
  ws_.cond_row_valid = false;

  ws_.Shape(&ws_.states, seed.node_types.size(), h);
  for (size_t i = 0; i < seed.node_types.size(); ++i) {
    const double* row = InitRow(seed.node_types[i]);
    std::memcpy(ws_.states.data() + i * h, row, h * sizeof(double));
  }
  if (seed.edges.size() > ws_.edges.capacity()) ++ws_.alloc_events;
  ws_.edges.assign(seed.edges.begin(), seed.edges.end());
  // Re-pack the fused GRU gate panels: a few KB of copies per decode,
  // and the panels can never go stale across interleaved Fit calls.
  model_->update_.PackFused(&ws_.gru_wx, &ws_.gru_bx, &ws_.gru_wh2,
                            &ws_.gru_bh2);
  staged_type_ = -1;
  ++state_version_;
}

void InferenceEngine::RunPropagation() {
  const GeneratorConfig& cfg = model_->config_;
  const size_t h = static_cast<size_t>(cfg.hidden);
  const size_t n = ws_.states.rows();
  for (int round = 0; round < cfg.prop_rounds; ++round) {
    const nn::Matrix* messages = nullptr;
    if (ws_.edges.empty()) {
      // Zero messages so isolated nodes still evolve (tape behavior).
      ws_.Shape(&ws_.zero_input, n, h);
      ws_.zero_input.Fill(0.0);
      messages = &ws_.zero_input;
    } else {
      const size_t e = ws_.edges.size();
      ws_.Size(&ws_.srcs, e);
      ws_.Size(&ws_.dsts, e);
      for (size_t i = 0; i < e; ++i) {
        ws_.srcs[i] = static_cast<size_t>(ws_.edges[i].first);
        ws_.dsts[i] = static_cast<size_t>(ws_.edges[i].second);
      }
      // Forward messages: tanh(msg_fwd([h_src, h_dst])) scattered to dst.
      ws_.Shape(&ws_.msg_concat, e, 2 * h);
      for (size_t i = 0; i < e; ++i) {
        double* row = ws_.msg_concat.data() + i * 2 * h;
        std::memcpy(row, ws_.states.data() + ws_.srcs[i] * h,
                    h * sizeof(double));
        std::memcpy(row + h, ws_.states.data() + ws_.dsts[i] * h,
                    h * sizeof(double));
      }
      model_->msg_fwd_.ForwardValue(ws_.msg_concat, &ws_.msg_rows,
                                    nn::Activation::kTanh);
      ws_.Shape(&ws_.acc_fwd, n, h);
      ws_.acc_fwd.Fill(0.0);
      for (size_t i = 0; i < e; ++i) {
        double* dst = ws_.acc_fwd.data() + ws_.dsts[i] * h;
        const double* src = ws_.msg_rows.data() + i * h;
        for (size_t j = 0; j < h; ++j) dst[j] += src[j];
      }
      // Backward messages: tanh(msg_bwd([h_dst, h_src])) scattered to src.
      for (size_t i = 0; i < e; ++i) {
        double* row = ws_.msg_concat.data() + i * 2 * h;
        std::memcpy(row, ws_.states.data() + ws_.dsts[i] * h,
                    h * sizeof(double));
        std::memcpy(row + h, ws_.states.data() + ws_.srcs[i] * h,
                    h * sizeof(double));
      }
      model_->msg_bwd_.ForwardValue(ws_.msg_concat, &ws_.msg_rows,
                                    nn::Activation::kTanh);
      ws_.Shape(&ws_.acc_bwd, n, h);
      ws_.acc_bwd.Fill(0.0);
      for (size_t i = 0; i < e; ++i) {
        double* dst = ws_.acc_bwd.data() + ws_.srcs[i] * h;
        const double* src = ws_.msg_rows.data() + i * h;
        for (size_t j = 0; j < h; ++j) dst[j] += src[j];
      }
      // Two separate accumulators, summed afterwards: the tape computes
      // Add(scatter_fwd, scatter_bwd), and folding both scatters into one
      // buffer would change the association.
      ws_.acc_fwd.AddInPlace(ws_.acc_bwd);
      messages = &ws_.acc_fwd;
    }
    nn::GruFusedForward(*messages, ws_.states, ws_.gru_wx, ws_.gru_bx,
                        ws_.gru_wh2, ws_.gru_bh2,
                        model_->update_.hn().weight_value(),
                        model_->update_.hn().bias_value(), &ws_.gru_xg,
                        &ws_.gru_hg, &ws_.gru.z, &ws_.gru.r, &ws_.gru.rh,
                        &ws_.gru.tmp, &ws_.gru.cand, &ws_.next_states);
    std::swap(ws_.states, ws_.next_states);
  }
  ++state_version_;
}

const nn::Matrix& InferenceEngine::GraphReadout() {
  if (readout_state_ == state_version_) return ws_.h_graph;
  const size_t h = static_cast<size_t>(model_->config_.hidden);
  model_->gate_.ForwardValue(ws_.states, &ws_.gates,
                             nn::Activation::kSigmoid);
  model_->proj_.ForwardValue(ws_.states, &ws_.content);
  nn::MulInto(ws_.gates, ws_.content, &ws_.content);
  // SumRows: ascending row order, as the tape op accumulates.
  ws_.Shape(&ws_.h_graph, 1, h);
  ws_.h_graph.Fill(0.0);
  double* out = ws_.h_graph.data();
  for (size_t i = 0; i < ws_.content.rows(); ++i) {
    const double* row = ws_.content.data() + i * h;
    for (size_t j = 0; j < h; ++j) out[j] += row[j];
  }
  readout_state_ = state_version_;
  return ws_.h_graph;
}

const nn::Matrix& InferenceEngine::AddNodeLogits() {
  if (logits_state_ == state_version_) return ws_.node_logits;
  model_->add_node_.ForwardValue(GraphReadout(), &ws_.node_logits);
  logits_state_ = state_version_;
  return ws_.node_logits;
}

void InferenceEngine::StageNode(int type) {
  const size_t h = static_cast<size_t>(model_->config_.hidden);
  const double* row = InitRow(type);
  ws_.Shape(&ws_.h_new, 1, h);
  std::memcpy(ws_.h_new.data(), row, h * sizeof(double));
  staged_type_ = type;
  ++hnew_version_;
}

double InferenceEngine::EdgeLogitValue() {
  if (edge_state_ == state_version_ && edge_hnew_ == hnew_version_) {
    return edge_logit_value_;
  }
  const size_t h = static_cast<size_t>(model_->config_.hidden);
  const nn::Matrix& h_graph = GraphReadout();
  ws_.Shape(&ws_.edge_concat, 1, 2 * h);
  std::memcpy(ws_.edge_concat.data(), h_graph.data(), h * sizeof(double));
  std::memcpy(ws_.edge_concat.data() + h, ws_.h_new.data(),
              h * sizeof(double));
  model_->add_edge_.ForwardValue(ws_.edge_concat, &ws_.edge_logit);
  edge_logit_value_ = ws_.edge_logit(0, 0);
  edge_state_ = state_version_;
  edge_hnew_ = hnew_version_;
  return edge_logit_value_;
}

const nn::Matrix& InferenceEngine::ChooseScores() {
  if (choose_state_ == state_version_ && choose_hnew_ == hnew_version_) {
    return ws_.choose_scores;
  }
  const size_t h = static_cast<size_t>(model_->config_.hidden);
  const size_t n = ws_.states.rows();
  ws_.Shape(&ws_.choose_concat, n, 2 * h);
  const double* hn = ws_.h_new.data();
  for (size_t i = 0; i < n; ++i) {
    double* row = ws_.choose_concat.data() + i * 2 * h;
    std::memcpy(row, ws_.states.data() + i * h, h * sizeof(double));
    // The tape tiles h_new with MatMul(ones(n, 1), h_new), whose kernel
    // computes 0.0 + 1.0 * v per element — replicate that expression
    // (it maps -0.0 to +0.0, unlike a plain copy).
    for (size_t j = 0; j < h; ++j) row[h + j] = 0.0 + 1.0 * hn[j];
  }
  // The head yields an n x 1 column; its row-major flat layout equals the
  // 1 x n transpose the tape takes, so reshaping is the transpose.
  model_->choose_node_.ForwardValue(ws_.choose_concat, &ws_.choose_scores);
  ws_.choose_scores.Reshape(1, n);
  choose_state_ = state_version_;
  choose_hnew_ = hnew_version_;
  return ws_.choose_scores;
}

void InferenceEngine::AddEdge(int src) {
  if (ws_.edges.size() + 1 > ws_.edges.capacity()) ++ws_.alloc_events;
  ws_.edges.emplace_back(src, static_cast<int>(num_nodes()));
}

void InferenceEngine::CommitStagedNode() {
  KGPIP_CHECK(staged_type_ >= 0) << "no staged node";
  const size_t h = static_cast<size_t>(model_->config_.hidden);
  const size_t n = ws_.states.rows();
  ws_.Shape(&ws_.states, n + 1, h);  // keeps the first n rows intact
  std::memcpy(ws_.states.data() + n * h, ws_.h_new.data(),
              h * sizeof(double));
  staged_type_ = -1;
  ++state_version_;
}

GeneratedGraph InferenceEngine::Decode(const graph4ml::TypedGraph& seed,
                                       const std::vector<double>& condition,
                                       Rng* rng, double temperature) {
  const GeneratorConfig& cfg = model_->config_;
  Begin(seed, condition);
  GeneratedGraph out;
  out.graph = seed;
  // The returned graph owns its storage; reserve once up front. (The
  // alloc_events metric tracks the reusable arena, not the output.)
  out.graph.node_types.reserve(static_cast<size_t>(cfg.max_nodes));
  out.graph.edges.reserve(ws_.edges.capacity());

  while (static_cast<int>(num_nodes()) < cfg.max_nodes) {
    RunPropagation();
    const nn::Matrix& logits = AddNodeLogits();
    ws_.node_dist.Compute(logits.data(), logits.cols(), temperature);
    const int picked = ws_.node_dist.Sample(rng, temperature);
    out.log_prob += ws_.node_dist.LogProbOf(picked);
    if (picked == cfg.vocab_size) break;  // STOP

    const int new_index = static_cast<int>(num_nodes());
    out.graph.node_types.push_back(picked);
    StageNode(picked);

    // Edge loop. The edge logit and choose-node scores depend only on
    // (states, h_graph, h_new), all constant until the node commits, so
    // each is computed once and replayed across the budget — the tape
    // path recomputes them (identically) every iteration.
    bool choose_ready = false;
    int edge_budget = new_index;  // at most one edge per earlier node
    while (edge_budget-- > 0) {
      const double p_edge = nn::SigmoidScalar(EdgeLogitValue());
      const bool add = temperature <= 0.0 ? p_edge >= 0.5
                                          : rng->Bernoulli(p_edge);
      out.log_prob += std::log(std::max(add ? p_edge : 1.0 - p_edge,
                                        1e-12));
      if (!add) break;
      const nn::Matrix& scores = ChooseScores();
      if (!choose_ready) {
        ws_.choose_dist.Compute(scores.data(), scores.cols(), temperature);
        choose_ready = true;
      }
      const int src = ws_.choose_dist.Sample(rng, temperature);
      out.log_prob += ws_.choose_dist.LogProbOf(src);
      bool duplicate = false;
      for (const auto& [s, d] : ws_.edges) {
        if (s == src && d == new_index) duplicate = true;
      }
      if (!duplicate) {
        AddEdge(src);
        out.graph.edges.emplace_back(src, new_index);
      }
    }
    CommitStagedNode();
  }
  return out;
}

}  // namespace kgpip::gen
