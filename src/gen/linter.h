#ifndef KGPIP_GEN_LINTER_H_
#define KGPIP_GEN_LINTER_H_

#include <string>
#include <vector>

#include "codegraph/analysis/diagnostic.h"
#include "data/table.h"
#include "gen/graph_generator.h"
#include "gen/skeleton.h"

namespace kgpip::gen {

/// The linter's verdict on one candidate. `ok()` means no error-severity
/// findings; warnings (estimator-not-last ordering, duplicate graph
/// nodes that the skeleton mapper would fold anyway) never block a
/// candidate on their own.
struct LintReport {
  std::vector<codegraph::analysis::Diagnostic> diagnostics;

  bool ok() const {
    return !codegraph::analysis::HasErrors(diagnostics);
  }
  /// The codes of error-severity findings, in order (for counters).
  std::vector<std::string> ErrorCodes() const;
  std::string Render() const {
    return codegraph::analysis::RenderDiagnostics(diagnostics);
  }
};

/// Statically validates generator output before any training happens.
/// Kgpip::Fit runs LintSpec over every candidate skeleton and skips the
/// rejected ones BEFORE the (T - t) / K budget rule allocates them a
/// slice, so an invalid candidate costs zero HPO trials. Error classes:
///
///   lint.unknown-op            node type / op outside the vocabulary
///   lint.cycle                 generated graph edges form a cycle
///   lint.no-estimator          no estimator anywhere in the candidate
///   lint.task-mismatch         estimator cannot handle the fit task
///   lint.duplicate-transformer the same transformer twice in one spec
///   lint.edge-out-of-range     edge endpoints outside the node range
///
/// plus warning classes lint.estimator-not-last (a transformer sampled
/// after the estimator; the mapper reorders it) and lint.positive-score
/// (a log-probability above zero).
class PipelineLinter {
 public:
  explicit PipelineLinter(TaskType task) : task_(task) {}

  /// Lints raw generator output (graph-level checks: vocabulary, edge
  /// range, acyclicity, estimator presence/ordering/task fit).
  LintReport LintGraph(const GeneratedGraph& generated) const;

  /// Lints a mapped pipeline spec (op-level checks: known learner and
  /// transformers, task fit, duplicates).
  LintReport LintSpec(const ml::PipelineSpec& spec) const;

  /// LintSpec plus skeleton-level sanity (score range).
  LintReport LintSkeleton(const ScoredSkeleton& skeleton) const;

 private:
  TaskType task_;
};

}  // namespace kgpip::gen

#endif  // KGPIP_GEN_LINTER_H_
