#include "gen/linter.h"

#include <algorithm>
#include <set>

#include "graph4ml/vocab.h"
#include "ml/learner.h"
#include "ml/preprocess.h"
#include "obs/metrics.h"

namespace kgpip::gen {

namespace {

using codegraph::analysis::Diagnostic;
using codegraph::analysis::MakeError;
using codegraph::analysis::MakeWarning;
using codegraph::analysis::Severity;

bool IsKnownLearner(const std::string& name) {
  for (const ml::LearnerInfo& info : ml::LearnerRegistry()) {
    if (info.name == name) return true;
  }
  return false;
}

/// Counts a finished lint: total lints, and — when errors are present —
/// one overall rejection plus one "gen.lint_rejected.<code>" per error,
/// so the metrics snapshot shows what the generator gets wrong most.
void CountLintOutcome(const LintReport& report) {
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  static obs::Counter* lints = metrics.GetCounter("gen.lints_run");
  static obs::Counter* rejected = metrics.GetCounter("gen.lint_rejected");
  lints->Increment();
  if (report.ok()) return;
  rejected->Increment();
  for (const Diagnostic& d : report.diagnostics) {
    if (d.severity != Severity::kError) continue;
    metrics.GetCounter("gen.lint_rejected." + d.code)->Increment();
  }
}

/// Kahn's algorithm; true if every node can be scheduled (no cycle).
bool IsAcyclic(const graph4ml::TypedGraph& graph) {
  const int n = static_cast<int>(graph.num_nodes());
  std::vector<std::vector<int>> succ(static_cast<size_t>(n));
  std::vector<int> indegree(static_cast<size_t>(n), 0);
  for (const auto& [src, dst] : graph.edges) {
    if (src < 0 || dst < 0 || src >= n || dst >= n) continue;
    succ[static_cast<size_t>(src)].push_back(dst);
    ++indegree[static_cast<size_t>(dst)];
  }
  std::vector<int> ready;
  for (int i = 0; i < n; ++i) {
    if (indegree[static_cast<size_t>(i)] == 0) ready.push_back(i);
  }
  int processed = 0;
  while (!ready.empty()) {
    int cur = ready.back();
    ready.pop_back();
    ++processed;
    for (int next : succ[static_cast<size_t>(cur)]) {
      if (--indegree[static_cast<size_t>(next)] == 0) ready.push_back(next);
    }
  }
  return processed == n;
}

}  // namespace

std::vector<std::string> LintReport::ErrorCodes() const {
  std::vector<std::string> codes;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::kError) codes.push_back(d.code);
  }
  return codes;
}

LintReport PipelineLinter::LintGraph(const GeneratedGraph& generated) const {
  LintReport report;
  const graph4ml::PipelineVocab& vocab = graph4ml::PipelineVocab::Get();
  const graph4ml::TypedGraph& graph = generated.graph;
  const int n = static_cast<int>(graph.num_nodes());

  bool types_ok = true;
  for (int i = 0; i < n; ++i) {
    int type = graph.node_types[static_cast<size_t>(i)];
    if (type < 0 || type >= vocab.size()) {
      types_ok = false;
      report.diagnostics.push_back(MakeError(
          "lint.unknown-op",
          "node #" + std::to_string(i) + " has type " + std::to_string(type) +
              " outside the vocabulary [0, " + std::to_string(vocab.size()) +
              ")"));
    }
  }
  for (size_t e = 0; e < graph.edges.size(); ++e) {
    const auto& [src, dst] = graph.edges[e];
    if (src < 0 || dst < 0 || src >= n || dst >= n) {
      report.diagnostics.push_back(MakeError(
          "lint.edge-out-of-range",
          "edge #" + std::to_string(e) + " (" + std::to_string(src) +
              " -> " + std::to_string(dst) + ") leaves the node range [0, " +
              std::to_string(n) + ")"));
    }
  }
  if (!IsAcyclic(graph)) {
    report.diagnostics.push_back(MakeError(
        "lint.cycle", "generated graph contains a data-flow cycle"));
  }

  if (!types_ok) {  // op-level checks need valid types
    CountLintOutcome(report);
    return report;
  }

  int last_estimator = -1;
  std::string estimator;
  for (int i = 0; i < n; ++i) {
    int type = graph.node_types[static_cast<size_t>(i)];
    if (vocab.IsEstimator(type)) {
      last_estimator = i;
      estimator = vocab.NameOf(type);
    }
  }
  if (last_estimator < 0) {
    report.diagnostics.push_back(MakeError(
        "lint.no-estimator", "generated graph contains no estimator node"));
    CountLintOutcome(report);
    return report;
  }
  if (!ml::LearnerSupports(estimator, task_)) {
    report.diagnostics.push_back(MakeError(
        "lint.task-mismatch", "estimator '" + estimator +
                                  "' does not support task " +
                                  TaskTypeName(task_)));
  }
  std::set<int> seen_transformers;
  for (int i = 0; i < n; ++i) {
    int type = graph.node_types[static_cast<size_t>(i)];
    if (!vocab.IsTransformer(type)) continue;
    if (i > last_estimator) {
      report.diagnostics.push_back(MakeWarning(
          "lint.estimator-not-last",
          "transformer '" + vocab.NameOf(type) +
              "' sampled after the estimator; the skeleton mapper will "
              "reorder it"));
    }
    if (!seen_transformers.insert(type).second) {
      report.diagnostics.push_back(MakeWarning(
          "lint.duplicate-transformer",
          "transformer '" + vocab.NameOf(type) +
              "' appears more than once; the skeleton mapper deduplicates"));
    }
  }
  CountLintOutcome(report);
  return report;
}

LintReport PipelineLinter::LintSpec(const ml::PipelineSpec& spec) const {
  LintReport report;
  if (spec.learner.empty()) {
    report.diagnostics.push_back(
        MakeError("lint.no-estimator", "pipeline spec has no estimator"));
  } else if (!IsKnownLearner(spec.learner)) {
    report.diagnostics.push_back(MakeError(
        "lint.unknown-op",
        "estimator '" + spec.learner + "' is not a registered learner"));
  } else if (!ml::LearnerSupports(spec.learner, task_)) {
    report.diagnostics.push_back(MakeError(
        "lint.task-mismatch", "estimator '" + spec.learner +
                                  "' does not support task " +
                                  TaskTypeName(task_)));
  }
  std::set<std::string> seen;
  for (const std::string& name : spec.preprocessors) {
    if (!ml::IsKnownTransformer(name)) {
      report.diagnostics.push_back(MakeError(
          "lint.unknown-op",
          "preprocessor '" + name + "' is not a registered transformer"));
      continue;
    }
    if (!seen.insert(name).second) {
      // Spec-level duplicates would fit the same transformer twice per
      // trial; unlike graph-level repeats nothing downstream folds them.
      report.diagnostics.push_back(MakeError(
          "lint.duplicate-transformer",
          "preprocessor '" + name + "' appears more than once in the spec"));
    }
  }
  for (Diagnostic& d : report.diagnostics) d.subject = spec.ToString();
  CountLintOutcome(report);
  return report;
}

LintReport PipelineLinter::LintSkeleton(const ScoredSkeleton& skeleton) const {
  LintReport report = LintSpec(skeleton.spec);
  if (skeleton.log_prob > 0.0) {
    Diagnostic d = MakeWarning(
        "lint.positive-score",
        "log-probability " + std::to_string(skeleton.log_prob) +
            " is above zero");
    d.subject = skeleton.spec.ToString();
    report.diagnostics.push_back(std::move(d));
  }
  return report;
}

}  // namespace kgpip::gen
