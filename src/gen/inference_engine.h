#ifndef KGPIP_GEN_INFERENCE_ENGINE_H_
#define KGPIP_GEN_INFERENCE_ENGINE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "gen/graph_generator.h"
#include "nn/layers.h"
#include "nn/matrix.h"
#include "util/rng.h"

namespace kgpip::gen {

/// Softmax distributions for one sampling decision, computed once and
/// reused for both the sample and its log-probability (the tape path used
/// to run softmax twice per decision). Replicates the tape arithmetic
/// exactly:
///   - greedy (temperature <= 0): first-max-wins argmax over raw logits;
///     no RNG draw. The log-probability still comes from the *unscaled*
///     softmax, as `log_prob_of` always did.
///   - temperature == 1: `logits / 1.0 == logits` bitwise, so the sampling
///     weights ARE the unscaled probabilities — one softmax total.
///   - other temperatures: a second, tempered softmax feeds the sampler;
///     the log-probability still uses the unscaled one.
class DecisionDist {
 public:
  /// Pre-sizes the internal buffers so later Compute calls allocate
  /// nothing for rows up to `k` entries.
  void Reserve(size_t k) {
    probs_.reserve(k);
    tempered_.reserve(k);
  }

  /// Computes the distributions for a row of `k` logits.
  void Compute(const double* logits, size_t k, double temperature);

  /// Draws a pick. Consumes exactly one Uniform() when temperature > 0
  /// and nothing otherwise — the tape path's RNG schedule.
  int Sample(Rng* rng, double temperature) const;

  /// log(max(p_unscaled[pick], 1e-12)), the score the generator sums.
  double LogProbOf(int pick) const;

  /// Buffer growths past reserved capacity (0 in steady state).
  size_t alloc_events() const { return alloc_events_; }

 private:
  std::vector<double> probs_;     // unscaled softmax (always computed)
  std::vector<double> tempered_;  // tempered softmax (t not in {0, 1})
  size_t k_ = 0;
  size_t argmax_ = 0;
  bool tempered_valid_ = false;
  size_t alloc_events_ = 0;
};

/// Every buffer one decode needs, kept alive across decode steps AND
/// across decodes so the steady state performs zero heap allocations.
/// Matrices shrink and regrow via Matrix::Reshape (capacity-preserving);
/// `alloc_events` counts the times any buffer actually had to grow past
/// its reserved capacity — exported as the `gen.generate_allocs` metric
/// and asserted zero on warm decodes by the equivalence tests.
struct GenWorkspace {
  // Propagation.
  nn::Matrix states;       // n x h current node states
  nn::Matrix next_states;  // n x h GRU output per round
  nn::Matrix zero_input;   // n x h zeros for edge-free rounds
  nn::Matrix msg_concat;   // E x 2h gathered [h_a, h_b] pairs
  nn::Matrix msg_rows;     // E x h transformed messages
  nn::Matrix acc_fwd;      // n x h scatter accumulator (messages to dst)
  nn::Matrix acc_bwd;      // n x h scatter accumulator (messages to src)
  nn::GruScratch gru;
  // Fused GRU gate panels (packed per decode by GruCell::PackFused) and
  // the wide affine outputs they produce (see nn::GruFusedForward).
  nn::Matrix gru_wx;   // input x 3h  [xz|xr|xn]
  nn::Matrix gru_bx;   // 1 x 3h
  nn::Matrix gru_wh2;  // h x 2h  [hz|hr]
  nn::Matrix gru_bh2;  // 1 x 2h
  nn::Matrix gru_xg;   // n x 3h x-side affine output
  nn::Matrix gru_hg;   // n x 2h h-side affine output
  // Readout and decision heads.
  nn::Matrix gates;          // n x h readout gate
  nn::Matrix content;        // n x h readout content (reused as product)
  nn::Matrix h_graph;        // 1 x h graph readout
  nn::Matrix node_logits;    // 1 x (vocab + 1)
  nn::Matrix h_new;          // 1 x h staged node state
  nn::Matrix edge_concat;    // 1 x 2h [h_graph, h_new]
  nn::Matrix edge_logit;     // 1 x 1
  nn::Matrix choose_concat;  // n x 2h [states, tiled h_new]
  nn::Matrix choose_scores;  // 1 x n (flat transpose of the n x 1 head)
  // Per-decode caches.
  nn::Matrix emb_row;   // 1 x h gathered type embedding
  nn::Matrix init_tmp;  // 1 x h InitNode staging row
  nn::Matrix type_init; // vocab x h per-type initial states
  std::vector<char> type_init_valid;
  nn::Matrix cond_in;   // 1 x condition_dims
  nn::Matrix cond_row;  // 1 x h projected condition
  bool cond_row_valid = false;
  std::vector<double> condition;  // copy of the caller's condition
  // Sampling.
  DecisionDist node_dist;
  DecisionDist choose_dist;
  // Topology.
  std::vector<std::pair<int, int>> edges;
  std::vector<size_t> srcs, dsts;

  size_t alloc_events = 0;

  /// Reshapes `m`, counting a growth past capacity as an alloc event.
  void Shape(nn::Matrix* m, size_t rows, size_t cols) {
    if (rows * cols > m->CapacityElems()) ++alloc_events;
    m->Reshape(rows, cols);
  }

  /// Capacity-counted resize for index/scalar scratch vectors.
  template <typename T>
  void Size(std::vector<T>* v, size_t n) {
    if (n > v->capacity()) ++alloc_events;
    v->resize(n);
  }

  /// Workspace growths plus the sampling distributions' growths.
  size_t total_alloc_events() const {
    return alloc_events + node_dist.alloc_events() +
           choose_dist.alloc_events();
  }
};

/// Tape-free decoder for GraphGenerator: runs the exact forward
/// arithmetic of the autograd path on raw matrices in a reusable arena,
/// never constructing a `Var`. Outputs are byte-identical to
/// `GraphGenerator::GenerateTape` (test-enforced).
///
/// Incremental propagation cache: decision heads (readout, add-node
/// logits, edge logit, choose-node scores) are memoized against a pair of
/// version counters. *Edge-only* edits (`AddEdge`) leave every cached
/// value valid — the recompute set is empty, which is what turns the
/// O(n^3) per-node edge loop of the tape path into O(n^2). *State* edits
/// (`Begin`, `RunPropagation`, `CommitStagedNode`) bump the state version
/// and invalidate all derived caches; the next query recomputes from
/// scratch into the kept-alive buffers (the exact fallback — the GRU
/// rewrites every row each round, so nothing finer-grained is
/// bit-exactly reusable across propagation calls).
///
/// Not reentrant: one engine decodes one graph at a time. For concurrent
/// generation use GraphGenerator::GenerateTopK, which runs one engine per
/// thread-pool lane.
class InferenceEngine {
 public:
  explicit InferenceEngine(const GraphGenerator* model);

  /// Full conditional decode; the drop-in replacement for the tape path.
  GeneratedGraph Decode(const graph4ml::TypedGraph& seed,
                        const std::vector<double>& condition, Rng* rng,
                        double temperature);

  // --- Stepwise API (used by Decode and by the equivalence tests) ---

  /// Resets to the seed subgraph: per-type init cache cleared, seed node
  /// states materialized, seed edges installed. Bumps the state version.
  void Begin(const graph4ml::TypedGraph& seed,
             const std::vector<double>& condition);

  /// Runs all `prop_rounds` message-passing rounds over the current
  /// states and edges. Bumps the state version.
  void RunPropagation();

  /// Gated-sum graph readout (cached per state version).
  const nn::Matrix& GraphReadout();

  /// Add-node head logits, 1 x (vocab + 1) (cached per state version).
  const nn::Matrix& AddNodeLogits();

  /// Stages a prospective node of `type` (its initial state becomes
  /// `h_new`). Bumps the staged-node version.
  void StageNode(int type);

  /// Add-edge head logit for (graph readout, staged node); cached
  /// against both versions.
  double EdgeLogitValue();

  /// Choose-node head scores, 1 x n; cached against both versions.
  const nn::Matrix& ChooseScores();

  /// Appends edge (src -> staged node). Edge-only edit: decision caches
  /// stay valid; the edge participates in the next RunPropagation.
  void AddEdge(int src);

  /// Appends the staged node's state as a new row of `states`. Bumps the
  /// state version (all decision caches invalidated).
  void CommitStagedNode();

  const nn::Matrix& states() const { return ws_.states; }
  const std::vector<std::pair<int, int>>& edges() const { return ws_.edges; }
  size_t num_nodes() const { return ws_.states.rows(); }
  uint64_t state_version() const { return state_version_; }

  /// Cumulative buffer growths; a warm decode adds zero.
  size_t alloc_events() const { return ws_.total_alloc_events(); }

 private:
  /// Cached initial state row for `type` (tape InitNode semantics).
  const double* InitRow(int type);
  void EnsureCondRow();

  const GraphGenerator* model_;
  GenWorkspace ws_;
  int staged_type_ = -1;
  uint64_t state_version_ = 0;
  uint64_t hnew_version_ = 0;
  // Cache stamps: the versions each derived value was computed at.
  uint64_t readout_state_ = UINT64_MAX;
  uint64_t logits_state_ = UINT64_MAX;
  uint64_t edge_state_ = UINT64_MAX, edge_hnew_ = UINT64_MAX;
  uint64_t choose_state_ = UINT64_MAX, choose_hnew_ = UINT64_MAX;
  double edge_logit_value_ = 0.0;
};

}  // namespace kgpip::gen

#endif  // KGPIP_GEN_INFERENCE_ENGINE_H_
