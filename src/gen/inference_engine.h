#ifndef KGPIP_GEN_INFERENCE_ENGINE_H_
#define KGPIP_GEN_INFERENCE_ENGINE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "gen/graph_generator.h"
#include "nn/layers.h"
#include "nn/matrix.h"
#include "util/rng.h"

namespace kgpip::gen {

/// Softmax distributions for one sampling decision, computed once and
/// reused for both the sample and its log-probability (the tape path used
/// to run softmax twice per decision). Replicates the tape arithmetic
/// exactly:
///   - greedy (temperature <= 0): first-max-wins argmax over raw logits;
///     no RNG draw. The log-probability still comes from the *unscaled*
///     softmax, as `log_prob_of` always did.
///   - temperature == 1: `logits / 1.0 == logits` bitwise, so the sampling
///     weights ARE the unscaled probabilities — one softmax total.
///   - other temperatures: a second, tempered softmax feeds the sampler;
///     the log-probability still uses the unscaled one.
class DecisionDist {
 public:
  /// Pre-sizes the internal buffers so later Compute calls allocate
  /// nothing for rows up to `k` entries.
  void Reserve(size_t k) {
    probs_.reserve(k);
    tempered_.reserve(k);
  }

  /// Computes the distributions for a row of `k` logits.
  void Compute(const double* logits, size_t k, double temperature);

  /// Draws a pick. Consumes exactly one Uniform() when temperature > 0
  /// and nothing otherwise — the tape path's RNG schedule.
  int Sample(Rng* rng, double temperature) const;

  /// log(max(p_unscaled[pick], 1e-12)), the score the generator sums.
  double LogProbOf(int pick) const;

  /// Buffer growths past reserved capacity (0 in steady state).
  size_t alloc_events() const { return alloc_events_; }

 private:
  std::vector<double> probs_;     // unscaled softmax (always computed)
  std::vector<double> tempered_;  // tempered softmax (t not in {0, 1})
  size_t k_ = 0;
  size_t argmax_ = 0;
  bool tempered_valid_ = false;
  size_t alloc_events_ = 0;
};

/// Every buffer one decode needs, kept alive across decode steps AND
/// across decodes so the steady state performs zero heap allocations.
/// Matrices shrink and regrow via Matrix::Reshape (capacity-preserving);
/// `alloc_events` counts the times any buffer actually had to grow past
/// its reserved capacity — exported as the `gen.generate_allocs` metric
/// and asserted zero on warm decodes by the equivalence tests.
struct GenWorkspace {
  // Propagation.
  nn::Matrix states;       // n x h current node states
  nn::Matrix next_states;  // n x h GRU output per round
  nn::Matrix zero_input;   // n x h zeros for edge-free rounds
  nn::Matrix msg_concat;   // E x 2h gathered [h_a, h_b] pairs
  nn::Matrix msg_rows;     // E x h transformed messages
  nn::Matrix acc_fwd;      // n x h scatter accumulator (messages to dst)
  nn::Matrix acc_bwd;      // n x h scatter accumulator (messages to src)
  nn::GruScratch gru;
  // Fused GRU gate panels (packed per decode by GruCell::PackFused) and
  // the wide affine outputs they produce (see nn::GruFusedForward).
  nn::Matrix gru_wx;   // input x 3h  [xz|xr|xn]
  nn::Matrix gru_bx;   // 1 x 3h
  nn::Matrix gru_wh2;  // h x 2h  [hz|hr]
  nn::Matrix gru_bh2;  // 1 x 2h
  nn::Matrix gru_xg;   // n x 3h x-side affine output
  nn::Matrix gru_hg;   // n x 2h h-side affine output
  // Readout and decision heads.
  nn::Matrix gates;          // n x h readout gate
  nn::Matrix content;        // n x h readout content (reused as product)
  nn::Matrix h_graph;        // 1 x h graph readout
  nn::Matrix node_logits;    // 1 x (vocab + 1)
  nn::Matrix h_new;          // 1 x h staged node state
  nn::Matrix edge_concat;    // 1 x 2h [h_graph, h_new]
  nn::Matrix edge_logit;     // 1 x 1
  nn::Matrix choose_concat;  // n x 2h [states, tiled h_new]
  nn::Matrix choose_scores;  // 1 x n (flat transpose of the n x 1 head)
  // Per-decode caches.
  nn::Matrix emb_row;   // 1 x h gathered type embedding
  nn::Matrix init_tmp;  // 1 x h InitNode staging row
  nn::Matrix type_init; // vocab x h per-type initial states
  std::vector<char> type_init_valid;
  nn::Matrix cond_in;   // 1 x condition_dims
  nn::Matrix cond_row;  // 1 x h projected condition
  bool cond_row_valid = false;
  std::vector<double> condition;  // copy of the caller's condition
  // Sampling.
  DecisionDist node_dist;
  DecisionDist choose_dist;
  // Topology.
  std::vector<std::pair<int, int>> edges;
  std::vector<size_t> srcs, dsts;

  size_t alloc_events = 0;

  /// Reshapes `m`, counting a growth past capacity as an alloc event.
  void Shape(nn::Matrix* m, size_t rows, size_t cols) {
    if (rows * cols > m->CapacityElems()) ++alloc_events;
    m->Reshape(rows, cols);
  }

  /// Capacity-counted resize for index/scalar scratch vectors.
  template <typename T>
  void Size(std::vector<T>* v, size_t n) {
    if (n > v->capacity()) ++alloc_events;
    v->resize(n);
  }

  /// Workspace growths plus the sampling distributions' growths.
  size_t total_alloc_events() const {
    return alloc_events + node_dist.alloc_events() +
           choose_dist.alloc_events();
  }
};

/// Tape-free decoder for GraphGenerator: runs the exact forward
/// arithmetic of the autograd path on raw matrices in a reusable arena,
/// never constructing a `Var`. Outputs are byte-identical to
/// `GraphGenerator::GenerateTape` (test-enforced).
///
/// Incremental propagation cache: decision heads (readout, add-node
/// logits, edge logit, choose-node scores) are memoized against a pair of
/// version counters. *Edge-only* edits (`AddEdge`) leave every cached
/// value valid — the recompute set is empty, which is what turns the
/// O(n^3) per-node edge loop of the tape path into O(n^2). *State* edits
/// (`Begin`, `RunPropagation`, `CommitStagedNode`) bump the state version
/// and invalidate all derived caches; the next query recomputes from
/// scratch into the kept-alive buffers (the exact fallback — the GRU
/// rewrites every row each round, so nothing finer-grained is
/// bit-exactly reusable across propagation calls).
///
/// Not reentrant: one engine decodes one graph at a time. For concurrent
/// generation use GraphGenerator::GenerateTopK, which runs one engine per
/// thread-pool lane.
class InferenceEngine {
 public:
  explicit InferenceEngine(const GraphGenerator* model);

  /// Full conditional decode; the drop-in replacement for the tape path.
  GeneratedGraph Decode(const graph4ml::TypedGraph& seed,
                        const std::vector<double>& condition, Rng* rng,
                        double temperature);

  // --- Stepwise API (used by Decode and by the equivalence tests) ---

  /// Resets to the seed subgraph: per-type init cache cleared, seed node
  /// states materialized, seed edges installed. Bumps the state version.
  void Begin(const graph4ml::TypedGraph& seed,
             const std::vector<double>& condition);

  /// Runs all `prop_rounds` message-passing rounds over the current
  /// states and edges. Bumps the state version.
  void RunPropagation();

  /// Gated-sum graph readout (cached per state version).
  const nn::Matrix& GraphReadout();

  /// Add-node head logits, 1 x (vocab + 1) (cached per state version).
  const nn::Matrix& AddNodeLogits();

  /// Stages a prospective node of `type` (its initial state becomes
  /// `h_new`). Bumps the staged-node version.
  void StageNode(int type);

  /// Add-edge head logit for (graph readout, staged node); cached
  /// against both versions.
  double EdgeLogitValue();

  /// Choose-node head scores, 1 x n; cached against both versions.
  const nn::Matrix& ChooseScores();

  /// Appends edge (src -> staged node). Edge-only edit: decision caches
  /// stay valid; the edge participates in the next RunPropagation.
  void AddEdge(int src);

  /// Appends the staged node's state as a new row of `states`. Bumps the
  /// state version (all decision caches invalidated).
  void CommitStagedNode();

  const nn::Matrix& states() const { return ws_.states; }
  const std::vector<std::pair<int, int>>& edges() const { return ws_.edges; }
  size_t num_nodes() const { return ws_.states.rows(); }
  uint64_t state_version() const { return state_version_; }

  /// Cumulative buffer growths; a warm decode adds zero.
  size_t alloc_events() const { return ws_.total_alloc_events(); }

 private:
  /// Cached initial state row for `type` (tape InitNode semantics).
  const double* InitRow(int type);
  void EnsureCondRow();

  const GraphGenerator* model_;
  GenWorkspace ws_;
  int staged_type_ = -1;
  uint64_t state_version_ = 0;
  uint64_t hnew_version_ = 0;
  // Cache stamps: the versions each derived value was computed at.
  uint64_t readout_state_ = UINT64_MAX;
  uint64_t logits_state_ = UINT64_MAX;
  uint64_t edge_state_ = UINT64_MAX, edge_hnew_ = UINT64_MAX;
  uint64_t choose_state_ = UINT64_MAX, choose_hnew_ = UINT64_MAX;
  double edge_logit_value_ = 0.0;
};

/// Structure-of-arrays multi-lane decoder: decodes k candidate lanes at
/// once with every weight GEMM batched across lanes, for
/// GraphGenerator::GenerateTopK.
///
/// Lanes whose full decision histories are identical share one *group*
/// (one graph, one set of node states); each step, ALL groups' rows are
/// stacked into tall matrices so the message, GRU-gate, readout, and
/// decision-head panels run as one GEMM per weight no matter how many
/// groups are live. Lanes peel off into new groups only when their
/// sampled decisions diverge (different node type, or a different
/// ordered source sequence in the edge loop); greedy decodes never
/// split.
///
/// Output is byte-identical to running k independent
/// InferenceEngine::Decode calls on the same forked RNG streams:
///   - every batched GEMM/GRU/readout kernel is row-independent, so
///     stacking group rows cannot change any row's bytes;
///   - per-group row sums (readout) run in the same ascending order;
///   - groups without edges get +0.0 accumulator rows, bitwise the
///     single-lane zero-input path;
///   - the edge logit and choose scores are constant within a step's
///     edge loop (they read states and h_new, not edges), so computing
///     them once per (group, staged type) replays the single-lane
///     cache;
///   - lane L consumes draws only from rngs[L], in the single-lane
///     order (node pick, then bernoulli/choose per edge iteration).
/// The equivalence suite enforces this against the tape decode.
///
/// Not reentrant; GenerateTopK checks decoders out of a free list.
class MultiLaneDecoder {
 public:
  /// `lane_capacity` pre-sizes every buffer; DecodeLanes may exceed it
  /// (buffers grow and the growth is counted in alloc_events).
  MultiLaneDecoder(const GraphGenerator* model, size_t lane_capacity);

  /// Decodes `k` lanes. Lane i reads rngs[i] only and writes results[i].
  void DecodeLanes(const graph4ml::TypedGraph& seed,
                   const std::vector<double>& condition, Rng* rngs,
                   GeneratedGraph* results, size_t k, double temperature);

  /// Cumulative buffer growths; warm same-shape decodes add zero.
  size_t alloc_events() const;

 private:
  /// Lanes with identical decision histories: one shared graph.
  struct LaneGroup {
    std::vector<int> lanes;                   // ascending lane ids
    std::vector<int> node_types;              // includes the seed prefix
    std::vector<std::pair<int, int>> edges;   // group-local node indices
  };

  /// Reshapes `m`, counting a growth past capacity as an alloc event.
  void Shape(nn::Matrix* m, size_t rows, size_t cols) {
    if (rows * cols > m->CapacityElems()) ++alloc_events_;
    m->Reshape(rows, cols);
  }
  template <typename T>
  void Size(std::vector<T>* v, size_t n) {
    if (n > v->capacity()) ++alloc_events_;
    v->resize(n);
  }

  const double* InitRow(int type);
  void EnsureCondRow();
  /// All prop_rounds message-passing rounds over the stacked states.
  void PropagateAll(size_t num_groups, size_t n);
  /// Gated-sum readout + add-node logits for every group.
  void ReadoutAll(size_t num_groups, size_t n);

  const GraphGenerator* model_;
  size_t lane_capacity_;
  size_t alloc_events_ = 0;

  // Stacked per-node buffers: group g owns rows [g*n, (g+1)*n) — every
  // live group has the same node count n (all lanes add exactly one
  // node per step), which is what makes flat stacking possible.
  nn::Matrix states_all_;       // (G*n) x h
  nn::Matrix next_states_all_;  // (G*n) x h
  nn::Matrix acc_fwd_;          // (G*n) x h scatter accumulator
  nn::Matrix acc_bwd_;          // (G*n) x h
  nn::Matrix msg_concat_;       // E_all x 2h gathered pairs
  nn::Matrix msg_rows_;         // E_all x h transformed messages
  nn::GruScratch gru_;
  nn::Matrix gru_wx_, gru_bx_, gru_wh2_, gru_bh2_;  // packed panels
  nn::Matrix gru_xg_;           // (G*n) x 3h
  nn::Matrix gru_hg_;           // (G*n) x 2h
  nn::Matrix gates_, content_;  // (G*n) x h readout
  nn::Matrix h_graph_all_;      // G x h
  nn::Matrix node_logits_all_;  // G x (vocab+1)
  // Stacked decision heads, one row block per live (group, type) pair.
  nn::Matrix edge_concat_all_;    // P x 2h
  nn::Matrix edge_logit_all_;     // P x 1
  nn::Matrix choose_concat_all_;  // (P*n) x 2h
  nn::Matrix choose_scores_all_;  // (P*n) x 1
  // Shared per-decode caches (identical for every lane).
  nn::Matrix emb_row_, init_tmp_;
  nn::Matrix type_init_;  // vocab x h
  std::vector<char> type_init_valid_;
  nn::Matrix cond_in_, cond_row_;
  bool cond_row_valid_ = false;
  std::vector<double> condition_;
  // Sampling distributions: node per group, choose per (group, type).
  std::vector<DecisionDist> node_dists_;
  std::vector<DecisionDist> choose_dists_;
  std::vector<double> p_edge_;  // per pair
  // Group bookkeeping: two slot arrays swapped each step so inner
  // vectors keep their capacity across steps and decodes.
  std::vector<LaneGroup> groups_a_, groups_b_;
  size_t num_groups_ = 0;
  bool cur_is_a_ = true;
  // Per-lane scratch.
  std::vector<int> lane_pick_;             // sampled type this step
  std::vector<int> lane_pair_;             // (group, type) pair index
  std::vector<std::vector<int>> lane_srcs_;  // srcs added this step
  std::vector<double> lane_log_prob_;
  // Pair list scratch.
  std::vector<int> pair_group_, pair_type_;
  // Gather/scatter index scratch (global row indices).
  std::vector<size_t> gsrcs_, gdsts_;
};

}  // namespace kgpip::gen

#endif  // KGPIP_GEN_INFERENCE_ENGINE_H_
