#ifndef KGPIP_CORE_KGPIP_H_
#define KGPIP_CORE_KGPIP_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "automl/system.h"
#include "codegraph/corpus.h"
#include "embed/embedder.h"
#include "embed/sim_index.h"
#include "gen/graph_generator.h"
#include "gen/skeleton.h"
#include "graph4ml/graph4ml.h"
#include "hpo/optimizer.h"
#include "obs/stage_profile.h"
#include "util/cancel.h"
#include "util/stopwatch.h"

namespace kgpip::core {

/// KGpip configuration.
struct KgpipConfig {
  /// Number of predicted pipeline graphs handed to the hyper-parameter
  /// optimizer (the paper varies K in {3, 5, 7}).
  int top_k = 3;
  /// Host optimizer: "flaml" (KGpipFLAML) or "autosklearn"
  /// (KGpipAutoSklearn).
  std::string optimizer = "flaml";
  /// Graph-generator training epochs over the mined corpus.
  int generator_epochs = 30;
  /// Candidates sampled before dedup/ranking (>= top_k).
  int candidate_samples = 16;
  /// Sampling temperature; the stochasticity behind the paper's §4.5.3
  /// "diversity in predicted pipelines".
  double temperature = 0.9;
  int hidden = 32;
  double learning_rate = 5e-3;
  int max_nodes = 10;
  /// Generator minibatch size. >1 trains with data-parallel per-example
  /// gradients (one Adam step per batch, deterministic at any thread
  /// count); 1 is the classic sequential per-example loop.
  int generator_batch_size = 4;
  /// Similarity-index shape: -1 = auto (exact flat scan below
  /// embed::SimIndex::kAutoIvfMinRows datasets — paper-scale corpora are
  /// untouched — IVF beyond), 0 = always flat, >0 = explicit IVF cell
  /// count.
  int index_cells = -1;
  /// IVF cells probed per query.
  int index_nprobe = 8;
  /// IVF candidates exact-reranked per query.
  int index_rerank_k = 64;
  /// SQ8-quantize IVF cell residuals (scanned with the SIMD int8
  /// kernels); false scans probed cells over the exact f64 rows.
  bool index_quantize = true;
  /// Fault-tolerance policy applied to every trial during Fit (NaN
  /// quarantine, bounded retry on transient failures, per-trial deadline,
  /// per-skeleton circuit breaking). See hpo::TrialGuard.
  hpo::TrialGuardOptions guard;
};

/// The static default-skeleton portfolio used when skeleton prediction
/// fails (degradation rung 2): robust default configurations, cheap and
/// reliable learners first, filtered by task support, capped at `k`.
std::vector<gen::ScoredSkeleton> FallbackPortfolio(TaskType task, int k);

/// Per-request knobs the serving daemon threads through a shared (const)
/// Kgpip instance without mutating its config: a trial-guard override
/// (per-request deadlines, retry policy) and a cooperative cancellation
/// token (the watchdog's lever). Both pointers are borrowed — they must
/// outlive the Fit call — and both default to "use the instance config /
/// never cancel".
struct FitOverrides {
  const hpo::TrialGuardOptions* guard = nullptr;
  const util::CancelToken* cancel = nullptr;
};

/// The KGpip system (paper §3): a learner & transformer selection
/// component that (1) mines pipelines from scripts with static analysis,
/// (2) embeds datasets by content for nearest-neighbour lookup,
/// (3) conditionally generates candidate pipeline graphs with a deep
/// graph generator, and (4) delegates hyper-parameter optimization of
/// each predicted skeleton to a host optimizer with budget (T - t) / K.
class Kgpip : public automl::AutoMlSystem {
 public:
  explicit Kgpip(KgpipConfig config = {});

  /// Trains from a corpus of notebook scripts plus the referenced
  /// training datasets (for content embeddings).
  Status Train(const std::vector<DatasetSpec>& training_specs,
               const codegraph::CorpusOptions& corpus_options,
               uint64_t seed);

  /// Trains from a pre-built Graph4ML store and dataset tables.
  Status TrainFromStore(const graph4ml::Graph4Ml& store,
                        const std::map<std::string, Table>& tables,
                        uint64_t seed);

  /// Predicts top-k skeletons for a dataset without running any HPO —
  /// the paper: "if the user desires only to know what learners would
  /// work best ... KGpip can do that almost instantaneously".
  Result<std::vector<gen::ScoredSkeleton>> PredictSkeletons(
      const Table& train, TaskType task, uint64_t seed) const;

  /// The generation tail of PredictSkeletons with the expensive head
  /// (table embedding + SimIndex query) already resolved to a training
  /// dataset key. The serving daemon's content-hash cache stores that
  /// key per dataset digest, so a repeated fit skips embed + SimIndex
  /// entirely and re-enters here. Fails kNotFound for a key the trained
  /// embedding map does not contain (e.g. a stale cache entry from an
  /// older artifact generation).
  Result<std::vector<gen::ScoredSkeleton>> PredictSkeletonsFromNearest(
      const std::string& nearest_key, TaskType task, uint64_t seed) const;

  /// Full AutoML fit (implements automl::AutoMlSystem).
  Result<automl::AutoMlResult> Fit(const Table& train, TaskType task,
                                   hpo::Budget budget,
                                   uint64_t seed) const override;

  /// Runs the search phase of Fit over caller-supplied candidate
  /// skeletons instead of predicted ones (works untrained). Candidates
  /// still pass through the PipelineLinter gate, so an invalid skeleton
  /// is skipped before the (T - t) / K rule allocates it any budget —
  /// rejections are counted in the result's RunReport.
  Result<automl::AutoMlResult> FitWithSkeletons(
      std::vector<gen::ScoredSkeleton> skeletons, const Table& train,
      TaskType task, hpo::Budget budget, uint64_t seed,
      const FitOverrides& overrides = {}) const;
  std::string name() const override {
    return config_.optimizer == "flaml" ? "KGpipFLAML" : "KGpipAutoSklearn";
  }

  /// Name + similarity of the nearest seen dataset for a table. `cancel`
  /// is polled inside the SimIndex scan (see SimIndex::Search).
  Result<embed::SearchHit> NearestDataset(
      const Table& table, const util::CancelToken* cancel = nullptr) const;

  /// The content embedder (serving computes digests/embeddings itself to
  /// key its cache) and the similarity index it queries.
  const embed::TableEmbedder& embedder() const { return embedder_; }
  const embed::SimIndex& index() const { return index_; }

  const graph4ml::Graph4Ml& store() const { return store_; }
  bool trained() const { return trained_; }
  const KgpipConfig& config() const { return config_; }
  KgpipConfig& mutable_config() { return config_; }

  /// Serializes the trained artifacts (store + generator + embeddings).
  Json ToJson() const;
  Status LoadJson(const Json& json);

  /// Artifact persistence: train once, ship the file, load anywhere.
  /// When the index is IVF-built, SaveFile also writes a binary
  /// `<path>.kgseg` segment sidecar (KGSEG1) so LoadFile can skip the
  /// index rebuild; LoadFile falls back to rebuilding from the JSON
  /// embeddings when the sidecar is absent (v0 artifacts), corrupt
  /// (rejected with a logged kParseError, then repaired in place), or
  /// inconsistent with the artifact.
  Status SaveFile(const std::string& path) const;
  Status LoadFile(const std::string& path);

 private:
  /// Shared tail of Fit / FitWithSkeletons: lint gate, per-skeleton HPO
  /// under the (T - t) / K rule, last-resort pass, report assembly.
  /// `profile` carries the stages the caller already timed (e.g. skeleton
  /// prediction) and `fit_watch` the whole fit's clock; RunSearch adds
  /// its own stages and attaches the finished profile to the RunReport.
  Result<automl::AutoMlResult> RunSearch(
      std::vector<gen::ScoredSkeleton> skeletons, const Table& train,
      TaskType task, hpo::Budget budget, uint64_t seed, bool used_fallback,
      const std::string& fallback_reason, obs::StageProfile profile,
      Stopwatch fit_watch, const FitOverrides& overrides = {}) const;

  /// SimIndex options derived from the config's index_* knobs.
  embed::SimIndex::Options IndexOptions() const;
  /// LoadJson body; `build_index` false defers the index to the caller
  /// (LoadFile's segment-sidecar fast path).
  Status LoadJsonImpl(const Json& json, bool build_index);
  /// Re-creates the index from embeddings_ (sidecar fallback).
  Status RebuildIndexFromEmbeddings();
  /// Whether a loaded segment index covers exactly this artifact's
  /// embedding keys (a stale sidecar must never serve).
  bool SegmentsMatchEmbeddings(const embed::SimIndex& index) const;

  KgpipConfig config_;
  bool trained_ = false;
  graph4ml::Graph4Ml store_;
  embed::TableEmbedder embedder_;
  embed::SimIndex index_;
  std::map<std::string, std::vector<double>> embeddings_;
  std::unique_ptr<gen::GraphGenerator> generator_;
  std::unique_ptr<hpo::HpOptimizer> hp_optimizer_;
};

}  // namespace kgpip::core

#endif  // KGPIP_CORE_KGPIP_H_
