#include "core/kgpip.h"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>

#include "data/synthetic.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace kgpip::core {

using graph4ml::PipelineVocab;

Kgpip::Kgpip(KgpipConfig config) : config_(std::move(config)) {
  auto optimizer = hpo::CreateOptimizer(config_.optimizer);
  KGPIP_CHECK(optimizer.ok()) << optimizer.status().ToString();
  hp_optimizer_ = std::move(*optimizer);
}

Status Kgpip::Train(const std::vector<DatasetSpec>& training_specs,
                    const codegraph::CorpusOptions& corpus_options,
                    uint64_t seed) {
  // Mine the corpus with static analysis and build Graph4ML.
  codegraph::CorpusGenerator corpus(corpus_options);
  graph4ml::Graph4Ml store;
  KGPIP_RETURN_IF_ERROR(store.Build(corpus.GenerateCorpus(training_specs)));
  // Materialize the training datasets for content embeddings.
  std::map<std::string, Table> tables;
  for (const DatasetSpec& spec : training_specs) {
    tables.emplace(spec.name, GenerateDataset(spec));
  }
  return TrainFromStore(store, tables, seed);
}

Status Kgpip::TrainFromStore(const graph4ml::Graph4Ml& store,
                             const std::map<std::string, Table>& tables,
                             uint64_t seed) {
  store_ = store;
  embeddings_.clear();
  index_ = embed::SimIndex();
  for (const std::string& name : store_.DatasetNames()) {
    auto it = tables.find(name);
    if (it == tables.end()) {
      return Status::NotFound("no table provided for dataset '" + name +
                              "' referenced by the corpus");
    }
    std::vector<double> embedding = embedder_.Embed(it->second);
    KGPIP_RETURN_IF_ERROR(index_.Add(name, embedding));
    embeddings_[name] = std::move(embedding);
  }
  KGPIP_RETURN_IF_ERROR(index_.Build());

  // Train the conditional graph generator on every mined pipeline.
  gen::GeneratorConfig gen_config;
  gen_config.vocab_size = PipelineVocab::Get().size();
  gen_config.hidden = config_.hidden;
  gen_config.condition_dims =
      static_cast<int>(embed::TableEmbedder::kDims);
  gen_config.max_nodes = config_.max_nodes;
  gen_config.learning_rate = config_.learning_rate;
  generator_ = std::make_unique<gen::GraphGenerator>(gen_config, seed);

  std::vector<gen::GraphExample> examples;
  for (const graph4ml::PipelineGraph* pipeline : store_.AllPipelines()) {
    gen::GraphExample example;
    example.graph = pipeline->graph;
    example.condition = embeddings_[pipeline->dataset_name];
    example.given_nodes = 2;  // dataset node + read_csv seed
    examples.push_back(std::move(example));
  }
  if (examples.empty()) {
    return Status::FailedPrecondition("corpus produced no valid pipelines");
  }
  Rng rng(seed ^ 0x717171);
  for (int epoch = 0; epoch < config_.generator_epochs; ++epoch) {
    double loss = generator_->TrainEpoch(examples, &rng);
    KGPIP_LOG(Info) << "generator epoch " << epoch << " loss " << loss;
  }
  trained_ = true;
  return Status::Ok();
}

Result<embed::SearchHit> Kgpip::NearestDataset(const Table& table) const {
  if (!trained_) return Status::FailedPrecondition("KGpip is not trained");
  std::vector<double> query = embedder_.Embed(table);
  KGPIP_ASSIGN_OR_RETURN(std::vector<embed::SearchHit> hits,
                         index_.Search(query, 1));
  if (hits.empty()) return Status::NotFound("empty similarity index");
  return hits[0];
}

Result<std::vector<gen::ScoredSkeleton>> Kgpip::PredictSkeletons(
    const Table& train, TaskType task, uint64_t seed) const {
  if (!trained_) return Status::FailedPrecondition("KGpip is not trained");
  KGPIP_ASSIGN_OR_RETURN(embed::SearchHit nearest, NearestDataset(train));
  const std::vector<double>& condition = embeddings_.at(nearest.key);

  // Seed subgraph: dataset node flowing into read_csv (paper §3.5).
  graph4ml::TypedGraph seed_graph;
  seed_graph.node_types = {PipelineVocab::kDatasetType,
                           PipelineVocab::kReadCsvType};
  seed_graph.edges = {{0, 1}};

  Rng rng(seed * 0x9E3779B97F4A7C15ULL + 3);
  std::vector<gen::ScoredSkeleton> skeletons;
  std::set<std::string> seen;
  for (int attempt = 0;
       attempt < config_.candidate_samples &&
       static_cast<int>(skeletons.size()) < config_.candidate_samples;
       ++attempt) {
    gen::GeneratedGraph generated = generator_->Generate(
        seed_graph, condition, &rng, config_.temperature);
    auto skeleton = gen::GraphToSkeleton(generated, task);
    if (!skeleton.ok()) continue;  // invalid graphs are discarded
    std::string key = skeleton->spec.ToString();
    if (!seen.insert(key).second) continue;  // dedupe
    skeletons.push_back(std::move(*skeleton));
  }
  // Fallback: if sampling yielded too few valid graphs, reuse the nearest
  // dataset's historical pipelines directly (the generator is a model of
  // exactly that distribution).
  if (static_cast<int>(skeletons.size()) < config_.top_k) {
    for (const graph4ml::PipelineGraph& p :
         store_.PipelinesFor(nearest.key)) {
      gen::GeneratedGraph mimic;
      mimic.graph = p.graph;
      mimic.log_prob = -50.0;  // ranked after sampled graphs
      auto skeleton = gen::GraphToSkeleton(mimic, task);
      if (!skeleton.ok()) continue;
      std::string key = skeleton->spec.ToString();
      if (!seen.insert(key).second) continue;
      skeletons.push_back(std::move(*skeleton));
      if (static_cast<int>(skeletons.size()) >= config_.top_k) break;
    }
  }
  if (skeletons.empty()) {
    return Status::Internal("no valid pipeline graphs generated");
  }
  // Rank by generator score and keep the top-k.
  std::sort(skeletons.begin(), skeletons.end(),
            [](const gen::ScoredSkeleton& a, const gen::ScoredSkeleton& b) {
              return a.log_prob > b.log_prob;
            });
  if (static_cast<int>(skeletons.size()) > config_.top_k) {
    skeletons.resize(static_cast<size_t>(config_.top_k));
  }
  return skeletons;
}

Result<automl::AutoMlResult> Kgpip::Fit(const Table& train, TaskType task,
                                        hpo::Budget budget,
                                        uint64_t seed) const {
  // t: time consumed generating and validating the graphs.
  KGPIP_ASSIGN_OR_RETURN(std::vector<gen::ScoredSkeleton> skeletons,
                         PredictSkeletons(train, task, seed));

  KGPIP_ASSIGN_OR_RETURN(
      hpo::TrialEvaluator evaluator,
      hpo::TrialEvaluator::Create(train, task, 0.25, seed));

  automl::AutoMlResult result;
  for (const gen::ScoredSkeleton& s : skeletons) {
    result.skeletons.push_back(s.spec);
  }

  // The remaining budget is divided equally between the K graphs — the
  // paper's (T - t) / K rule.
  const int k = static_cast<int>(skeletons.size());
  for (int i = 0; i < k; ++i) {
    hpo::Budget slice = budget.SplitRemaining(k - i);
    hpo::OptimizeResult optimized = hp_optimizer_->OptimizeSkeleton(
        skeletons[static_cast<size_t>(i)].spec, &evaluator, &slice,
        seed + static_cast<uint64_t>(i) * 977);
    // Account the slice's trials against the shared budget.
    for (int t = 0; t < optimized.trials; ++t) budget.ConsumeTrial();
    result.trials += optimized.trials;
    for (int t = 0; t < optimized.trials; ++t) {
      result.learner_sequence.push_back(
          skeletons[static_cast<size_t>(i)].spec.learner);
    }
    if (optimized.best_score > result.validation_score) {
      result.validation_score = optimized.best_score;
      result.best_spec = optimized.best_spec;
      result.best_skeleton_rank = i + 1;
    }
  }
  if (result.best_spec.learner.empty()) {
    return Status::Internal("KGpip optimization produced no candidate");
  }
  KGPIP_RETURN_IF_ERROR(automl::FinalizeResult(result.best_spec, train,
                                               task, seed, &result));
  return result;
}

Json Kgpip::ToJson() const {
  Json out = Json::Object();
  out.Set("store", store_.ToJson());
  if (generator_ != nullptr) out.Set("generator", generator_->ToJson());
  Json embeddings = Json::Object();
  for (const auto& [name, vec] : embeddings_) {
    Json arr = Json::Array();
    for (double v : vec) arr.Append(Json(v));
    embeddings.Set(name, std::move(arr));
  }
  out.Set("embeddings", std::move(embeddings));
  return out;
}

Status Kgpip::LoadJson(const Json& json) {
  KGPIP_ASSIGN_OR_RETURN(store_, graph4ml::Graph4Ml::FromJson(
                                     json.Get("store")));
  embeddings_.clear();
  index_ = embed::SimIndex();
  const Json& embeddings = json.Get("embeddings");
  for (const auto& [name, arr] : embeddings.members()) {
    std::vector<double> vec;
    vec.reserve(arr.size());
    for (size_t i = 0; i < arr.size(); ++i) {
      vec.push_back(arr.at(i).AsDouble());
    }
    KGPIP_RETURN_IF_ERROR(index_.Add(name, vec));
    embeddings_[name] = std::move(vec);
  }
  KGPIP_RETURN_IF_ERROR(index_.Build());

  gen::GeneratorConfig gen_config;
  gen_config.vocab_size = PipelineVocab::Get().size();
  gen_config.hidden = config_.hidden;
  gen_config.condition_dims =
      static_cast<int>(embed::TableEmbedder::kDims);
  gen_config.max_nodes = config_.max_nodes;
  gen_config.learning_rate = config_.learning_rate;
  generator_ = std::make_unique<gen::GraphGenerator>(gen_config, 1);
  KGPIP_RETURN_IF_ERROR(generator_->LoadWeights(json.Get("generator")));
  trained_ = true;
  return Status::Ok();
}

Status Kgpip::SaveFile(const std::string& path) const {
  if (!trained_) return Status::FailedPrecondition("KGpip is not trained");
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open '" + path + "' for write");
  out << ToJson().Dump();
  if (!out) return Status::IoError("write failed for '" + path + "'");
  return Status::Ok();
}

Status Kgpip::LoadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  KGPIP_ASSIGN_OR_RETURN(Json json, Json::Parse(buffer.str()));
  return LoadJson(json);
}

}  // namespace kgpip::core
