#include "core/kgpip.h"

#include <algorithm>
#include <fstream>
#include <optional>
#include <set>
#include <sstream>

#include <cstdio>

#include "data/synthetic.h"
#include "gen/linter.h"
#include "ml/learner.h"
#include "obs/stage_profile.h"
#include "obs/trace.h"
#include "util/fault.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace kgpip::core {

using graph4ml::PipelineVocab;

namespace {

/// Artifact header: magic, FNV-1a checksum of the payload, payload size.
constexpr char kArtifactMagic[] = "KGPIP1";

}  // namespace

std::vector<gen::ScoredSkeleton> FallbackPortfolio(TaskType task, int k) {
  // Robust defaults, cheap-and-reliable first; mirrors the spirit of
  // Auto-Sklearn's static portfolio but with empty preprocessor lists so
  // the automatic featurizer does the heavy lifting.
  static const char* kOrder[] = {
      "gradient_boosting", "random_forest", "logistic_regression",
      "ridge",             "extra_trees",   "decision_tree",
      "knn",               "gaussian_nb",   "linear_regression",
      "lasso",
  };
  std::vector<gen::ScoredSkeleton> portfolio;
  int rank = 0;
  for (const char* name : kOrder) {
    if (static_cast<int>(portfolio.size()) >= k) break;
    if (!ml::LearnerSupports(name, task)) continue;
    gen::ScoredSkeleton skeleton;
    skeleton.spec.learner = name;
    // Ranked after any generator-scored skeleton, in portfolio order.
    skeleton.log_prob = -100.0 - rank;
    ++rank;
    portfolio.push_back(std::move(skeleton));
  }
  return portfolio;
}

Kgpip::Kgpip(KgpipConfig config) : config_(std::move(config)) {
  auto optimizer = hpo::CreateOptimizer(config_.optimizer);
  KGPIP_CHECK(optimizer.ok()) << optimizer.status().ToString();
  hp_optimizer_ = std::move(*optimizer);
}

Status Kgpip::Train(const std::vector<DatasetSpec>& training_specs,
                    const codegraph::CorpusOptions& corpus_options,
                    uint64_t seed) {
  // Mine the corpus with static analysis and build Graph4ML.
  codegraph::CorpusGenerator corpus(corpus_options);
  graph4ml::Graph4Ml store;
  KGPIP_RETURN_IF_ERROR(store.Build(corpus.GenerateCorpus(training_specs)));
  // Materialize the training datasets for content embeddings.
  std::map<std::string, Table> tables;
  for (const DatasetSpec& spec : training_specs) {
    tables.emplace(spec.name, GenerateDataset(spec));
  }
  return TrainFromStore(store, tables, seed);
}

embed::SimIndex::Options Kgpip::IndexOptions() const {
  embed::SimIndex::Options options;
  options.num_cells = config_.index_cells;
  options.num_probes = config_.index_nprobe;
  options.rerank_k = config_.index_rerank_k;
  options.quantize = config_.index_quantize;
  return options;
}

Status Kgpip::TrainFromStore(const graph4ml::Graph4Ml& store,
                             const std::map<std::string, Table>& tables,
                             uint64_t seed) {
  store_ = store;
  embeddings_.clear();
  index_ = embed::SimIndex(IndexOptions());
  // Validate every dataset has a table first, then embed the tables in
  // parallel and register them with the index in dataset order so the
  // index layout is independent of the thread count.
  const std::vector<std::string> names = store_.DatasetNames();
  std::vector<const Table*> dataset_tables(names.size(), nullptr);
  for (size_t i = 0; i < names.size(); ++i) {
    auto it = tables.find(names[i]);
    if (it == tables.end()) {
      return Status::NotFound("no table provided for dataset '" + names[i] +
                              "' referenced by the corpus");
    }
    dataset_tables[i] = &it->second;
  }
  std::vector<std::vector<double>> dataset_embeddings =
      util::ThreadPool::Global().ParallelMap<std::vector<double>>(
          names.size(),
          [&](size_t i) { return embedder_.Embed(*dataset_tables[i]); });
  for (size_t i = 0; i < names.size(); ++i) {
    KGPIP_RETURN_IF_ERROR(index_.Add(names[i], dataset_embeddings[i]));
    embeddings_[names[i]] = std::move(dataset_embeddings[i]);
  }
  KGPIP_RETURN_IF_ERROR(index_.Build());

  // Train the conditional graph generator on every mined pipeline.
  gen::GeneratorConfig gen_config;
  gen_config.vocab_size = PipelineVocab::Get().size();
  gen_config.hidden = config_.hidden;
  gen_config.condition_dims =
      static_cast<int>(embed::TableEmbedder::kDims);
  gen_config.max_nodes = config_.max_nodes;
  gen_config.learning_rate = config_.learning_rate;
  gen_config.batch_size = config_.generator_batch_size;
  generator_ = std::make_unique<gen::GraphGenerator>(gen_config, seed);

  std::vector<gen::GraphExample> examples;
  for (const graph4ml::PipelineGraph* pipeline : store_.AllPipelines()) {
    gen::GraphExample example;
    example.graph = pipeline->graph;
    example.condition = embeddings_[pipeline->dataset_name];
    example.given_nodes = 2;  // dataset node + read_csv seed
    examples.push_back(std::move(example));
  }
  if (examples.empty()) {
    return Status::FailedPrecondition("corpus produced no valid pipelines");
  }
  Rng rng(seed ^ 0x717171);
  for (int epoch = 0; epoch < config_.generator_epochs; ++epoch) {
    double loss = generator_->TrainEpoch(examples, &rng);
    KGPIP_LOG(Info) << "generator epoch " << epoch << " loss " << loss;
  }
  trained_ = true;
  return Status::Ok();
}

Result<embed::SearchHit> Kgpip::NearestDataset(
    const Table& table, const util::CancelToken* cancel) const {
  if (!trained_) return Status::FailedPrecondition("KGpip is not trained");
  std::vector<double> query = embedder_.Embed(table);
  KGPIP_ASSIGN_OR_RETURN(std::vector<embed::SearchHit> hits,
                         index_.Search(query, 1, cancel));
  if (hits.empty()) return Status::NotFound("empty similarity index");
  return hits[0];
}

Result<std::vector<gen::ScoredSkeleton>> Kgpip::PredictSkeletons(
    const Table& train, TaskType task, uint64_t seed) const {
  if (!trained_) return Status::FailedPrecondition("KGpip is not trained");
  KGPIP_ASSIGN_OR_RETURN(embed::SearchHit nearest, NearestDataset(train));
  return PredictSkeletonsFromNearest(nearest.key, task, seed);
}

Result<std::vector<gen::ScoredSkeleton>> Kgpip::PredictSkeletonsFromNearest(
    const std::string& nearest_key, TaskType task, uint64_t seed) const {
  if (!trained_) return Status::FailedPrecondition("KGpip is not trained");
  auto condition_it = embeddings_.find(nearest_key);
  if (condition_it == embeddings_.end()) {
    return Status::NotFound("no embedding for dataset key '" + nearest_key +
                            "' (stale cache entry?)");
  }
  const std::vector<double>& condition = condition_it->second;
  const embed::SearchHit nearest{nearest_key, 1.0};

  // Seed subgraph: dataset node flowing into read_csv (paper §3.5).
  graph4ml::TypedGraph seed_graph;
  seed_graph.node_types = {PipelineVocab::kDatasetType,
                           PipelineVocab::kReadCsvType};
  seed_graph.edges = {{0, 1}};

  Rng rng(seed * 0x9E3779B97F4A7C15ULL + 3);
  gen::PipelineLinter linter(task);
  std::vector<gen::ScoredSkeleton> skeletons;
  std::set<std::string> seen;
  // All candidates decode in one batched call: the multi-lane decoder
  // shares GEMM panels and decision-head evaluations across candidates
  // whose decision histories are still identical (one RNG stream per
  // candidate — deterministic at any thread count and SIMD level);
  // lint, mapping, and dedupe then filter in candidate order.
  std::vector<gen::GeneratedGraph> candidates = generator_->GenerateTopK(
      seed_graph, condition,
      static_cast<size_t>(std::max(config_.candidate_samples, 0)), &rng,
      config_.temperature);
  for (gen::GeneratedGraph& generated : candidates) {
    if (static_cast<int>(skeletons.size()) >= config_.candidate_samples) {
      break;
    }
    // Graph-level lint first (vocabulary, acyclicity, estimator/task),
    // then the skeleton mapping; both reject invalid generator output.
    if (!linter.LintGraph(generated).ok()) continue;
    auto skeleton = gen::GraphToSkeleton(generated, task);
    if (!skeleton.ok()) continue;  // invalid graphs are discarded
    std::string key = skeleton->spec.ToString();
    if (!seen.insert(key).second) continue;  // dedupe
    skeletons.push_back(std::move(*skeleton));
  }
  // Fallback: if sampling yielded too few valid graphs, reuse the nearest
  // dataset's historical pipelines directly (the generator is a model of
  // exactly that distribution).
  if (static_cast<int>(skeletons.size()) < config_.top_k) {
    for (const graph4ml::PipelineGraph& p :
         store_.PipelinesFor(nearest.key)) {
      gen::GeneratedGraph mimic;
      mimic.graph = p.graph;
      mimic.log_prob = -50.0;  // ranked after sampled graphs
      auto skeleton = gen::GraphToSkeleton(mimic, task);
      if (!skeleton.ok()) continue;
      std::string key = skeleton->spec.ToString();
      if (!seen.insert(key).second) continue;
      skeletons.push_back(std::move(*skeleton));
      if (static_cast<int>(skeletons.size()) >= config_.top_k) break;
    }
  }
  if (skeletons.empty()) {
    return Status::Internal("no valid pipeline graphs generated");
  }
  // Rank by generator score and keep the top-k.
  std::sort(skeletons.begin(), skeletons.end(),
            [](const gen::ScoredSkeleton& a, const gen::ScoredSkeleton& b) {
              return a.log_prob > b.log_prob;
            });
  if (static_cast<int>(skeletons.size()) > config_.top_k) {
    skeletons.resize(static_cast<size_t>(config_.top_k));
  }
  return skeletons;
}

Result<automl::AutoMlResult> Kgpip::Fit(const Table& train, TaskType task,
                                        hpo::Budget budget,
                                        uint64_t seed) const {
  // Named span (not the macro) so the dataset's shape lands in the
  // args: a per-request trace group read in Perfetto identifies its
  // dataset without cross-referencing the audit log.
  obs::TraceSpan fit_span("kgpip.fit");
  fit_span.SetAttr("rows", static_cast<int64_t>(train.num_rows()));
  fit_span.SetAttr("columns", static_cast<int64_t>(train.num_columns()));
  fit_span.SetAttr("max_trials", static_cast<int64_t>(budget.max_trials()));
  Stopwatch fit_watch;
  obs::StageProfile profile;
  bool used_fallback = false;
  std::string fallback_reason;

  // t: time consumed generating and validating the graphs.
  Result<std::vector<gen::ScoredSkeleton>> predicted = [&] {
    obs::StageTimer timer(&profile, "fit.predict_skeletons");
    return trained_ ? PredictSkeletons(train, task, seed)
                    : Result<std::vector<gen::ScoredSkeleton>>(
                          Status::FailedPrecondition("KGpip is not trained"));
  }();
  std::vector<gen::ScoredSkeleton> skeletons;
  if (predicted.ok()) {
    skeletons = std::move(*predicted);
  } else {
    // Degradation rung 2: skeleton prediction (generator or
    // nearest-dataset lookup) failed. Never return empty-handed — run the
    // static default-skeleton portfolio instead.
    obs::StageTimer timer(&profile, "fit.fallback_portfolio");
    fallback_reason = predicted.status().ToString();
    KGPIP_LOG(Warning) << "skeleton prediction failed ("
                       << fallback_reason
                       << "); using fallback portfolio";
    skeletons = FallbackPortfolio(task, config_.top_k);
    used_fallback = true;
    if (skeletons.empty()) {
      return Status::Internal("no fallback learner supports this task");
    }
  }
  return RunSearch(std::move(skeletons), train, task, budget, seed,
                   used_fallback, fallback_reason, std::move(profile),
                   fit_watch);
}

Result<automl::AutoMlResult> Kgpip::FitWithSkeletons(
    std::vector<gen::ScoredSkeleton> skeletons, const Table& train,
    TaskType task, hpo::Budget budget, uint64_t seed,
    const FitOverrides& overrides) const {
  KGPIP_TRACE_SPAN("kgpip.fit_with_skeletons");
  return RunSearch(std::move(skeletons), train, task, budget, seed,
                   /*used_fallback=*/false, /*fallback_reason=*/"",
                   obs::StageProfile(), Stopwatch(), overrides);
}

Result<automl::AutoMlResult> Kgpip::RunSearch(
    std::vector<gen::ScoredSkeleton> skeletons, const Table& train,
    TaskType task, hpo::Budget budget, uint64_t seed, bool used_fallback,
    const std::string& fallback_reason, obs::StageProfile profile,
    Stopwatch fit_watch, const FitOverrides& overrides) const {
  automl::AutoMlResult result;

  // Static lint gate: drop invalid candidates BEFORE the (T - t) / K
  // rule sees them, so a rejected skeleton consumes zero trial budget
  // and the surviving ones split the whole pool.
  gen::PipelineLinter linter(task);
  int lint_rejected = 0;
  std::map<std::string, int> lint_rejected_by_code;
  {
    obs::StageTimer timer(&profile, "fit.lint_gate");
    std::vector<gen::ScoredSkeleton> accepted;
    accepted.reserve(skeletons.size());
    for (gen::ScoredSkeleton& s : skeletons) {
      gen::LintReport lint = linter.LintSkeleton(s);
      if (!lint.ok()) {
        ++lint_rejected;
        for (const std::string& code : lint.ErrorCodes()) {
          ++lint_rejected_by_code[code];
        }
        KGPIP_LOG(Warning) << "lint rejected skeleton before HPO:\n"
                           << lint.Render();
        continue;
      }
      accepted.push_back(std::move(s));
    }
    skeletons = std::move(accepted);
  }

  std::optional<hpo::TrialEvaluator> evaluator;
  {
    obs::StageTimer timer(&profile, "fit.evaluator_setup");
    auto created = hpo::TrialEvaluator::Create(train, task, 0.25, seed);
    if (!created.ok()) return created.status();
    evaluator.emplace(std::move(*created));
  }
  hpo::TrialGuard guard(
      &*evaluator,
      overrides.guard != nullptr ? *overrides.guard : config_.guard);

  for (const gen::ScoredSkeleton& s : skeletons) {
    result.skeletons.push_back(s.spec);
  }

  // The remaining budget is divided equally between the K graphs — the
  // paper's (T - t) / K rule. A skeleton abandoned by the circuit
  // breaker (or cut short by the wall clock) leaves its unconsumed slice
  // in the shared budget, so the next SplitRemaining redistributes it to
  // the surviving skeletons.
  const int k = static_cast<int>(skeletons.size());
  bool stopped_early = false;
  {
    obs::StageTimer timer(&profile, "fit.hpo_search");
    for (int i = 0; i < k; ++i) {
      if (budget.Exhausted() || util::Cancelled(overrides.cancel)) {
        stopped_early = true;  // best-so-far is returned below
        break;
      }
      hpo::Budget slice = budget.SplitRemaining(k - i);
      hpo::OptimizeResult optimized = hp_optimizer_->OptimizeSkeleton(
          skeletons[static_cast<size_t>(i)].spec, &guard, &slice,
          seed + static_cast<uint64_t>(i) * 977);
      // Account the slice's trials against the shared budget.
      for (int t = 0; t < optimized.trials; ++t) budget.ConsumeTrial();
      result.trials += optimized.trials;
      for (int t = 0; t < optimized.trials; ++t) {
        result.learner_sequence.push_back(
            skeletons[static_cast<size_t>(i)].spec.learner);
      }
      if (optimized.best_score > result.validation_score) {
        result.validation_score = optimized.best_score;
        result.best_spec = optimized.best_spec;
        result.best_skeleton_rank = i + 1;
      }
    }
  }

  // Degradation rung 3: every trial failed (or the budget was zero).
  // One default-config pass over the fallback portfolio, stopping at the
  // first learner that fits — the "never return empty-handed" floor.
  bool last_resort = false;
  if (result.best_spec.learner.empty()) {
    obs::StageTimer timer(&profile, "fit.last_resort");
    last_resort = true;
    uint64_t lr_seed = seed ^ 0xFA11BACCULL;
    for (const gen::ScoredSkeleton& s :
         FallbackPortfolio(task, 1 << 20)) {
      hpo::GuardedTrial trial =
          guard.Evaluate(s.spec, ++lr_seed, "last_resort:" + s.spec.learner);
      ++result.trials;
      result.learner_sequence.push_back(s.spec.learner);
      if (trial.ok() && trial.score > result.validation_score) {
        result.validation_score = trial.score;
        result.best_spec = s.spec;
        break;
      }
    }
  }

  hpo::RunReport report = guard.TakeReport();
  report.fallback_portfolio = used_fallback;
  if (used_fallback) {
    report.notes = "skeleton prediction failed: " + fallback_reason;
  }
  report.last_resort_pass = last_resort;
  report.returned_best_so_far = stopped_early;
  report.lint_rejected = lint_rejected;
  report.lint_rejected_by_code = std::move(lint_rejected_by_code);
  result.report = std::move(report);

  if (result.best_spec.learner.empty()) {
    return Status::Internal("KGpip optimization produced no candidate");
  }
  {
    obs::StageTimer timer(&profile, "fit.finalize");
    KGPIP_RETURN_IF_ERROR(automl::FinalizeResult(result.best_spec, train,
                                                 task, seed, &result));
  }
  // Attach where the budget actually went. total_seconds is the whole
  // fit's clock (Fit hands its watch in), so stage seconds must sum to
  // roughly the fit wall time — the attribution invariant obs_test pins.
  profile.total_seconds = fit_watch.ElapsedSeconds();
  result.report.stage_profile = std::move(profile);
  return result;
}

Json Kgpip::ToJson() const {
  Json out = Json::Object();
  out.Set("store", store_.ToJson());
  if (generator_ != nullptr) out.Set("generator", generator_->ToJson());
  Json embeddings = Json::Object();
  for (const auto& [name, vec] : embeddings_) {
    Json arr = Json::Array();
    for (double v : vec) arr.Append(Json(v));
    embeddings.Set(name, std::move(arr));
  }
  out.Set("embeddings", std::move(embeddings));
  return out;
}

Status Kgpip::LoadJson(const Json& json) {
  return LoadJsonImpl(json, /*build_index=*/true);
}

Status Kgpip::RebuildIndexFromEmbeddings() {
  index_ = embed::SimIndex(IndexOptions());
  for (const auto& [name, vec] : embeddings_) {
    KGPIP_RETURN_IF_ERROR(index_.Add(name, vec));
  }
  return index_.Build();
}

bool Kgpip::SegmentsMatchEmbeddings(const embed::SimIndex& index) const {
  // Keys must match one-to-one; values are not compared because the JSON
  // embeddings may round-trip differently than the sidecar's exact
  // binary rows. Sizes equal + every indexed key present == bijection.
  if (index.size() != embeddings_.size()) return false;
  if (!embeddings_.empty() &&
      index.dims() != embeddings_.begin()->second.size()) {
    return false;
  }
  for (size_t i = 0; i < index.size(); ++i) {
    if (embeddings_.find(index.KeyOf(i)) == embeddings_.end()) return false;
  }
  return true;
}

Status Kgpip::LoadJsonImpl(const Json& json, bool build_index) {
  KGPIP_ASSIGN_OR_RETURN(store_, graph4ml::Graph4Ml::FromJson(
                                     json.Get("store")));
  embeddings_.clear();
  index_ = embed::SimIndex(IndexOptions());
  const Json& embeddings = json.Get("embeddings");
  for (const auto& [name, arr] : embeddings.members()) {
    std::vector<double> vec;
    vec.reserve(arr.size());
    for (size_t i = 0; i < arr.size(); ++i) {
      vec.push_back(arr.at(i).AsDouble());
    }
    if (build_index) {
      KGPIP_RETURN_IF_ERROR(index_.Add(name, vec));
    }
    embeddings_[name] = std::move(vec);
  }
  if (build_index) {
    KGPIP_RETURN_IF_ERROR(index_.Build());
  }

  gen::GeneratorConfig gen_config;
  gen_config.vocab_size = PipelineVocab::Get().size();
  gen_config.hidden = config_.hidden;
  gen_config.condition_dims =
      static_cast<int>(embed::TableEmbedder::kDims);
  gen_config.max_nodes = config_.max_nodes;
  gen_config.learning_rate = config_.learning_rate;
  gen_config.batch_size = config_.generator_batch_size;
  generator_ = std::make_unique<gen::GraphGenerator>(gen_config, 1);
  KGPIP_RETURN_IF_ERROR(generator_->LoadWeights(json.Get("generator")));
  trained_ = true;
  return Status::Ok();
}

Status Kgpip::SaveFile(const std::string& path) const {
  if (!trained_) return Status::FailedPrecondition("KGpip is not trained");
  std::string payload = ToJson().Dump();
  const uint64_t checksum = Fnv1a64(payload);
  const std::string header =
      StrFormat("%s %016llx %llu\n", kArtifactMagic,
                static_cast<unsigned long long>(checksum),
                static_cast<unsigned long long>(payload.size()));
  if (util::FaultInjector* inject = util::FaultInjector::Active()) {
    // Corruption is injected *after* the checksum so LoadFile must
    // catch it.
    inject->CorruptArtifact(&payload);
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open '" + path + "' for write");
  out << header << payload;
  if (!out) return Status::IoError("write failed for '" + path + "'");
  // IVF indexes ship a binary segment sidecar so LoadFile can skip the
  // k-means + quantization rebuild. Flat indexes rebuild instantly and
  // stay sidecar-free, byte-identical to v0 artifacts on disk. Sidecar
  // failure is non-fatal: the JSON artifact alone remains loadable.
  if (index_.num_cells_built() > 0) {
    const Status seg = index_.SaveSegments(path + ".kgseg");
    if (!seg.ok()) {
      KGPIP_LOG(Warning) << "segment sidecar write failed (artifact is "
                            "still loadable): "
                         << seg.ToString();
    }
  }
  return Status::Ok();
}

Status Kgpip::LoadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string contents = buffer.str();

  // Checksummed artifacts lead with "KGPIP1 <fnv1a> <size>\n"; files
  // without the magic are treated as legacy raw-JSON artifacts.
  std::string payload = contents;
  size_t payload_offset = 0;
  if (StartsWith(contents, std::string(kArtifactMagic) + " ")) {
    const size_t eol = contents.find('\n');
    if (eol == std::string::npos) {
      return Status::ParseError(StrFormat(
          "artifact '%s': unterminated header in the first %llu bytes",
          path.c_str(),
          static_cast<unsigned long long>(contents.size())));
    }
    unsigned long long checksum = 0, declared = 0;
    if (std::sscanf(contents.c_str(), "KGPIP1 %16llx %llu", &checksum,
                    &declared) != 2) {
      return Status::ParseError(StrFormat(
          "artifact '%s': malformed header in bytes [0, %llu)",
          path.c_str(), static_cast<unsigned long long>(eol)));
    }
    payload_offset = eol + 1;
    payload = contents.substr(payload_offset);
    if (payload.size() != declared) {
      return Status::ParseError(StrFormat(
          "artifact '%s': truncated or padded payload — header declares "
          "%llu bytes but %llu are present after byte offset %llu",
          path.c_str(), declared,
          static_cast<unsigned long long>(payload.size()),
          static_cast<unsigned long long>(payload_offset)));
    }
    const uint64_t actual = Fnv1a64(payload);
    if (actual != checksum) {
      return Status::ParseError(StrFormat(
          "artifact '%s': checksum mismatch over payload bytes "
          "[%llu, %llu) — expected %016llx, got %016llx",
          path.c_str(), static_cast<unsigned long long>(payload_offset),
          static_cast<unsigned long long>(payload_offset + payload.size()),
          checksum, static_cast<unsigned long long>(actual)));
    }
  }
  auto json = Json::Parse(payload);
  if (!json.ok()) {
    return Status::ParseError(StrFormat(
        "artifact '%s': payload (at byte offset %llu) is not valid "
        "JSON: %s",
        path.c_str(), static_cast<unsigned long long>(payload_offset),
        json.status().message().c_str()));
  }
  // Segment-sidecar fast path: load the prebuilt KGSEG1 index when a
  // valid one sits next to the artifact, else rebuild from the JSON
  // embeddings. A corrupt sidecar is rejected (never served) and
  // repaired in place from the rebuilt index.
  const std::string seg_path = path + ".kgseg";
  KGPIP_RETURN_IF_ERROR(LoadJsonImpl(*json, /*build_index=*/false));
  embed::SimIndex seg_index(IndexOptions());
  const Status seg = seg_index.LoadSegments(seg_path);
  bool rejected = false;
  if (seg.ok()) {
    if (SegmentsMatchEmbeddings(seg_index)) {
      index_ = std::move(seg_index);
      return Status::Ok();
    }
    rejected = true;
    KGPIP_LOG(Warning) << "segment sidecar '" << seg_path
                       << "' does not cover this artifact's embeddings; "
                          "rebuilding index";
  } else if (seg.code() == StatusCode::kParseError) {
    rejected = true;
    KGPIP_LOG(Warning) << "rejecting corrupt segment sidecar: "
                       << seg.ToString() << "; rebuilding index";
  }
  // kIoError means no sidecar at all — the v0 flat-artifact layout —
  // and loads exactly as before, silently.
  KGPIP_RETURN_IF_ERROR(RebuildIndexFromEmbeddings());
  if (rejected) {
    if (index_.num_cells_built() > 0) {
      const Status repair = index_.SaveSegments(seg_path);
      if (!repair.ok()) {
        KGPIP_LOG(Warning) << "segment sidecar repair failed: "
                           << repair.ToString();
      }
    } else {
      std::remove(seg_path.c_str());
    }
  }
  return Status::Ok();
}

}  // namespace kgpip::core
