#ifndef KGPIP_AUTOML_AUTOSKLEARN_SYSTEM_H_
#define KGPIP_AUTOML_AUTOSKLEARN_SYSTEM_H_

#include "automl/system.h"

namespace kgpip::automl {

/// Auto-Sklearn-style baseline (Feurer et al. 2015/2020): a learner
/// selection component driven by shape-based meta-features — a built-in
/// experience database maps meta-feature neighbours to promising learners
/// (v1.0 behaviour), backed by a static cross-dataset portfolio (v2.0
/// behaviour) — followed by random-search refinement of the most
/// promising configurations.
class AutoSklearnSystem : public AutoMlSystem {
 public:
  AutoSklearnSystem() = default;

  Result<AutoMlResult> Fit(const Table& train, TaskType task,
                           hpo::Budget budget,
                           uint64_t seed) const override;
  std::string name() const override { return "Auto-Sklearn"; }
};

}  // namespace kgpip::automl

#endif  // KGPIP_AUTOML_AUTOSKLEARN_SYSTEM_H_
