#ifndef KGPIP_AUTOML_AL_SYSTEM_H_
#define KGPIP_AUTOML_AL_SYSTEM_H_

#include "automl/system.h"

namespace kgpip::automl {

/// AL-style baseline (Cambronero & Rinard 2019): pipelines mined by
/// *dynamic* analysis of a handful of Kaggle notebooks (fewer than 10
/// datasets), transferred to a new dataset via meta-feature nearest
/// neighbour. Faithful to the paper's findings, the system is brittle:
/// it refuses datasets that fall outside its tiny experience (text
/// columns its pipelines cannot vectorize, class counts it never saw) —
/// "it failed on many of the datasets during the fitting process".
class AlSystem : public AutoMlSystem {
 public:
  AlSystem() = default;

  Result<AutoMlResult> Fit(const Table& train, TaskType task,
                           hpo::Budget budget,
                           uint64_t seed) const override;
  std::string name() const override { return "AL"; }
};

}  // namespace kgpip::automl

#endif  // KGPIP_AUTOML_AL_SYSTEM_H_
