#ifndef KGPIP_AUTOML_FLAML_SYSTEM_H_
#define KGPIP_AUTOML_FLAML_SYSTEM_H_

#include "automl/system.h"

namespace kgpip::automl {

/// FLAML-style baseline (Wang et al. 2021): no meta-learning cold start —
/// every supported learner enters the search, scheduled by an estimated-
/// cost-for-improvement rule (cheap learners first, budget flowing toward
/// learners that keep improving), with CFO local search per learner.
class FlamlSystem : public AutoMlSystem {
 public:
  FlamlSystem() = default;

  Result<AutoMlResult> Fit(const Table& train, TaskType task,
                           hpo::Budget budget,
                           uint64_t seed) const override;
  std::string name() const override { return "FLAML"; }
};

}  // namespace kgpip::automl

#endif  // KGPIP_AUTOML_FLAML_SYSTEM_H_
