#include "automl/al_system.h"

#include <algorithm>

#include "automl/meta_features.h"
#include "data/synthetic.h"
#include "hpo/optimizer.h"
#include "ml/learner.h"

namespace kgpip::automl {

namespace {

/// One dynamically-analyzed pipeline in AL's database. AL executed whole
/// notebooks, so each record is a complete frozen pipeline.
struct AlRecord {
  std::vector<double> meta;
  ml::PipelineSpec spec;
  TaskType task;
  int max_classes;
  bool handles_text;
};

/// AL's database covers fewer than 10 datasets (the paper: dynamic
/// analysis "on fewer than 10 datasets").
const std::vector<AlRecord>& AlDatabase() {
  static const std::vector<AlRecord>& kDb = *new std::vector<AlRecord>([] {
    struct Seedling {
      ConceptFamily family;
      TaskType task;
      const char* learner;
      const char* preprocessor;  // "" = none
      int classes;
    };
    const Seedling seeds[] = {
        {ConceptFamily::kLinear, TaskType::kBinaryClassification,
         "logistic_regression", "standard_scaler", 2},
        {ConceptFamily::kRules, TaskType::kBinaryClassification,
         "decision_tree", "", 2},
        {ConceptFamily::kClusters, TaskType::kMultiClassification, "knn",
         "standard_scaler", 4},
        {ConceptFamily::kInteractions, TaskType::kBinaryClassification,
         "gradient_boosting", "", 2},
        {ConceptFamily::kLinear, TaskType::kMultiClassification,
         "linear_svm", "standard_scaler", 3},
        {ConceptFamily::kRules, TaskType::kRegression, "decision_tree", "",
         0},
        {ConceptFamily::kLinear, TaskType::kRegression,
         "linear_regression", "standard_scaler", 0},
    };
    std::vector<AlRecord> db;
    int index = 0;
    for (const Seedling& s : seeds) {
      DatasetSpec spec;
      spec.name = "al_seed";
      spec.family = s.family;
      spec.task = s.task;
      spec.rows = 150;
      spec.num_numeric = 7;
      spec.num_classes = s.classes;
      spec.seed = 0xA1 + static_cast<uint64_t>(index);
      AlRecord record;
      record.meta = ComputeMetaFeatures(GenerateDataset(spec));
      record.spec.learner = s.learner;
      if (s.preprocessor[0] != '\0') {
        record.spec.preprocessors.push_back(s.preprocessor);
      }
      record.task = s.task;
      record.max_classes = s.classes;
      record.handles_text = false;
      db.push_back(std::move(record));
      ++index;
    }
    return db;
  }());
  return kDb;
}

}  // namespace

Result<AutoMlResult> AlSystem::Fit(const Table& train, TaskType task,
                                   hpo::Budget budget,
                                   uint64_t seed) const {
  // Brittleness model, matching the failure modes the paper reports.
  size_t text_columns = train.CountType(ColumnType::kText);
  int classes = 0;
  if (auto target = train.TargetColumn(); target.ok()) {
    classes = static_cast<int>((*target)->DistinctCount());
  }

  // Pick the nearest dynamically-analyzed dataset with a compatible task.
  std::vector<double> meta = ComputeMetaFeatures(train);
  const AlRecord* nearest = nullptr;
  double nearest_distance = 1e300;
  for (const AlRecord& record : AlDatabase()) {
    if (IsClassification(task) != IsClassification(record.task)) continue;
    double d = MetaFeatureDistance(meta, record.meta);
    if (d < nearest_distance) {
      nearest_distance = d;
      nearest = &record;
    }
  }
  if (nearest == nullptr) {
    return Status::FailedPrecondition(
        "AL: no transferable pipeline for this task");
  }
  if (text_columns > 0 && !nearest->handles_text) {
    return Status::FailedPrecondition(
        "AL: transferred pipeline cannot vectorize text columns");
  }
  if (IsClassification(task) && classes > 2 * nearest->max_classes) {
    return Status::FailedPrecondition(
        "AL: class count far outside the analyzed notebooks");
  }
  if (!ml::LearnerSupports(nearest->spec.learner, task)) {
    return Status::FailedPrecondition(
        "AL: transferred estimator incompatible with task");
  }

  // AL replays the transferred pipeline nearly verbatim: a frozen
  // skeleton with a small grid around its original hyper-parameters.
  KGPIP_ASSIGN_OR_RETURN(
      hpo::TrialEvaluator evaluator,
      hpo::TrialEvaluator::Create(train, task, 0.25, seed));
  AutoMlResult result;
  hpo::RandomSearch search(
      hpo::SpaceForSkeleton(nearest->spec.learner,
                            nearest->spec.preprocessors),
      seed);
  // AL does not budget-optimize; it tries only a handful of variants.
  hpo::Budget al_budget(std::min(5, budget.max_trials()), 1e9);
  uint64_t trial_seed = seed;
  while (al_budget.ConsumeTrial()) {
    ml::HyperParams config = search.Propose();
    ml::PipelineSpec spec = nearest->spec;
    for (const auto& [k, v] : config.numeric()) spec.params.SetNum(k, v);
    for (const auto& [k, v] : config.strings()) spec.params.SetStr(k, v);
    auto score = evaluator.Evaluate(spec, ++trial_seed);
    double value = score.ok() ? *score : -1e18;
    search.Tell(config, value);
    ++result.trials;
    result.learner_sequence.push_back(spec.learner);
    if (value > result.validation_score) {
      result.validation_score = value;
      result.best_spec = spec;
    }
  }
  if (result.best_spec.learner.empty()) {
    return Status::Internal("AL produced no candidate");
  }
  KGPIP_RETURN_IF_ERROR(
      FinalizeResult(result.best_spec, train, task, seed, &result));
  return result;
}

}  // namespace kgpip::automl
