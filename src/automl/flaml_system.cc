#include "automl/flaml_system.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "hpo/optimizer.h"
#include "ml/learner.h"

namespace kgpip::automl {

Status FinalizeResult(const ml::PipelineSpec& spec, const Table& train,
                      TaskType task, uint64_t seed, AutoMlResult* result) {
  KGPIP_ASSIGN_OR_RETURN(result->fitted,
                         ml::Pipeline::FitOnTable(spec, train, task, seed));
  result->best_spec = spec;
  return Status::Ok();
}

Result<AutoMlResult> FlamlSystem::Fit(const Table& train, TaskType task,
                                      hpo::Budget budget,
                                      uint64_t seed) const {
  KGPIP_ASSIGN_OR_RETURN(
      hpo::TrialEvaluator evaluator,
      hpo::TrialEvaluator::Create(train, task, 0.25, seed));

  // One CFO state per supported learner.
  struct LearnerState {
    std::string name;
    double cost = 1.0;
    hpo::CfoSearch search;
    double best = -1e18;
    int trials = 0;
  };
  std::vector<LearnerState> states;
  uint64_t salt = 0;
  for (const ml::LearnerInfo& info : ml::LearnerRegistry()) {
    if (!ml::LearnerSupports(info.name, task)) continue;
    states.push_back(LearnerState{
        info.name, info.relative_cost,
        hpo::CfoSearch(hpo::SpaceForLearner(info.name), seed + (++salt)),
        -1e18, 0});
  }
  // Cheap learners first, FLAML-style.
  std::sort(states.begin(), states.end(),
            [](const LearnerState& a, const LearnerState& b) {
              return a.cost < b.cost;
            });

  AutoMlResult result;
  // Trials run through the guard: NaN quarantine, bounded retries, and a
  // per-learner circuit breaker that drops a learner whose trials keep
  // failing instead of letting it eat the whole budget.
  hpo::TrialGuard guard(&evaluator, hpo::TrialGuardOptions{});
  uint64_t trial_seed = seed * 31 + 7;
  int total_trials = 0;
  while (!budget.Exhausted()) {
    // Estimated-cost-for-improvement scheduling: untried learners first
    // (in cost order); afterwards pick the learner with the best
    // score-per-cost upper bound. Circuit-open learners are skipped.
    LearnerState* chosen = nullptr;
    for (LearnerState& s : states) {
      if (s.trials == 0 && !guard.CircuitOpen(s.name)) {
        chosen = &s;
        break;
      }
    }
    if (chosen == nullptr) {
      double best_priority = -1e18;
      for (LearnerState& s : states) {
        if (guard.CircuitOpen(s.name)) continue;
        double exploration =
            0.25 * std::sqrt(std::log(static_cast<double>(total_trials + 2)) /
                            static_cast<double>(s.trials + 1));
        double priority =
            (s.best + exploration) / std::sqrt(s.cost);
        if (priority > best_priority) {
          best_priority = priority;
          chosen = &s;
        }
      }
    }
    if (chosen == nullptr) break;  // every learner abandoned
    if (!budget.ConsumeTrial()) break;
    ml::HyperParams config = chosen->search.Propose();
    ml::PipelineSpec spec;
    spec.learner = chosen->name;
    spec.params = config;
    hpo::GuardedTrial trial = guard.Evaluate(spec, ++trial_seed,
                                             chosen->name);
    double value = trial.ok() ? trial.score
                              : std::numeric_limits<double>::quiet_NaN();
    chosen->search.Tell(config, value);
    if (trial.ok()) chosen->best = std::max(chosen->best, trial.score);
    ++chosen->trials;
    ++total_trials;
    result.learner_sequence.push_back(chosen->name);
    if (trial.ok() && trial.score > result.validation_score) {
      result.validation_score = trial.score;
      result.best_spec = spec;
    }
  }
  result.trials = total_trials;
  result.report = guard.TakeReport();
  if (result.best_spec.learner.empty()) {
    return Status::Internal("FLAML search produced no candidate");
  }
  KGPIP_RETURN_IF_ERROR(
      FinalizeResult(result.best_spec, train, task, seed, &result));
  return result;
}

}  // namespace kgpip::automl
