#ifndef KGPIP_AUTOML_META_FEATURES_H_
#define KGPIP_AUTOML_META_FEATURES_H_

#include <vector>

#include "data/table.h"

namespace kgpip::automl {

/// Classical shape-based dataset meta-features (Auto-Sklearn / AL style):
/// row/column counts, type fractions, class statistics, missingness —
/// deliberately *not* content-based, unlike KGpip's embeddings. This is
/// the representational gap the paper's comparison rests on.
std::vector<double> ComputeMetaFeatures(const Table& table);

/// Euclidean distance between meta-feature vectors.
double MetaFeatureDistance(const std::vector<double>& a,
                           const std::vector<double>& b);

}  // namespace kgpip::automl

#endif  // KGPIP_AUTOML_META_FEATURES_H_
