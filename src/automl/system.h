#ifndef KGPIP_AUTOML_SYSTEM_H_
#define KGPIP_AUTOML_SYSTEM_H_

#include <memory>
#include <string>
#include <vector>

#include "data/table.h"
#include "hpo/evaluator.h"
#include "hpo/trial_guard.h"
#include "ml/pipeline.h"

namespace kgpip::automl {

/// Outcome of one end-to-end AutoML run on a dataset.
struct AutoMlResult {
  ml::PipelineSpec best_spec;
  double validation_score = -1e18;
  int trials = 0;
  /// Structured fault/degradation accounting for the run: per-skeleton
  /// trial counts, failure taxonomy by StatusCode, retries, and which
  /// rungs of the degradation ladder were taken.
  hpo::RunReport report;
  /// Estimator of every trial, in order (Figure 8 / diversity analyses).
  std::vector<std::string> learner_sequence;
  /// Candidate skeletons in predicted rank order (KGpip only).
  std::vector<ml::PipelineSpec> skeletons;
  /// 1-based rank of the skeleton that produced the best pipeline in the
  /// predicted order (KGpip only; -1 otherwise). Drives the MRR metric.
  int best_skeleton_rank = -1;
  /// The best pipeline refit on the full training table.
  ml::Pipeline fitted;
};

/// Common interface of every AutoML system under evaluation.
class AutoMlSystem {
 public:
  virtual ~AutoMlSystem() = default;

  /// Searches for the best pipeline within `budget`; refits it on the
  /// full training table before returning.
  virtual Result<AutoMlResult> Fit(const Table& train, TaskType task,
                                   hpo::Budget budget,
                                   uint64_t seed) const = 0;
  virtual std::string name() const = 0;
};

/// Refits `spec` on the full table and fills `result->fitted`.
Status FinalizeResult(const ml::PipelineSpec& spec, const Table& train,
                      TaskType task, uint64_t seed, AutoMlResult* result);

}  // namespace kgpip::automl

#endif  // KGPIP_AUTOML_SYSTEM_H_
