#include "automl/meta_features.h"

#include <cmath>

namespace kgpip::automl {

std::vector<double> ComputeMetaFeatures(const Table& table) {
  std::vector<double> v(10, 0.0);
  const double rows = static_cast<double>(table.num_rows());
  double features = 0.0, numeric = 0.0, categorical = 0.0, text = 0.0;
  double missing = 0.0;
  for (const Column& col : table.columns()) {
    if (col.name() == table.target_name()) continue;
    features += 1.0;
    switch (col.type()) {
      case ColumnType::kNumeric:
        numeric += 1.0;
        break;
      case ColumnType::kCategorical:
        categorical += 1.0;
        break;
      case ColumnType::kText:
        text += 1.0;
        break;
    }
    missing += static_cast<double>(col.MissingCount());
  }
  if (features < 1.0) features = 1.0;
  v[0] = std::log1p(rows) / 10.0;
  v[1] = std::log1p(features) / 5.0;
  v[2] = numeric / features;
  v[3] = categorical / features;
  v[4] = text / features;
  v[5] = rows > 0.0 ? missing / (rows * features) : 0.0;
  // Target statistics.
  if (auto target = table.TargetColumn(); target.ok()) {
    const Column& t = **target;
    double distinct = static_cast<double>(t.DistinctCount());
    v[6] = t.type() == ColumnType::kNumeric ? 1.0 : 0.0;
    v[7] = std::log1p(distinct) / 5.0;
    v[8] = rows > 0.0 ? distinct / rows : 0.0;
    v[9] = std::log1p(rows / std::max(1.0, distinct)) / 8.0;
  }
  return v;
}

double MetaFeatureDistance(const std::vector<double>& a,
                           const std::vector<double>& b) {
  double s = 0.0;
  for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
    double d = a[i] - b[i];
    s += d * d;
  }
  return std::sqrt(s);
}

}  // namespace kgpip::automl
