#include "automl/autosklearn_system.h"

#include <algorithm>
#include <map>

#include "automl/meta_features.h"
#include "data/synthetic.h"
#include "hpo/optimizer.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "ml/learner.h"

namespace kgpip::automl {

namespace {

/// One record of the built-in experience database: meta-features of a
/// previously "run" dataset plus the learners that worked on it.
struct Experience {
  std::vector<double> meta;
  std::vector<std::string> learners;
};

/// The experience database stands in for Auto-Sklearn's OpenML run
/// history: small datasets spanning families/tasks, with their genuinely
/// best learners. Meta-features here are shape-only, so retrieval is much
/// coarser than KGpip's content embeddings — which is the point of the
/// paper's comparison.
const std::vector<Experience>& ExperienceDatabase() {
  static const std::vector<Experience>& kDb = *new std::vector<Experience>(
      [] {
        std::vector<Experience> db;
        const ConceptFamily families[] = {
            ConceptFamily::kLinear,  ConceptFamily::kRules,
            ConceptFamily::kInteractions, ConceptFamily::kSparse,
            ConceptFamily::kClusters, ConceptFamily::kNoise,
        };
        const TaskType tasks[] = {TaskType::kBinaryClassification,
                                  TaskType::kMultiClassification,
                                  TaskType::kRegression};
        int index = 0;
        for (TaskType task : tasks) {
          for (ConceptFamily family : families) {
            DatasetSpec spec;
            spec.name = "ask_experience";
            spec.family = family;
            spec.task = task;
            spec.rows = 160;
            spec.num_numeric = 6 + (index % 3) * 4;
            spec.num_categorical = index % 3;
            spec.num_classes =
                task == TaskType::kMultiClassification ? 4 : 2;
            spec.seed = 0x4A5 + static_cast<uint64_t>(index);
            Experience exp;
            exp.meta = ComputeMetaFeatures(GenerateDataset(spec));
            exp.learners = FamilyAffineLearners(family, task);
            db.push_back(std::move(exp));
            ++index;
          }
        }
        return db;
      }());
  return kDb;
}

/// The v2.0-style static portfolio: one robust default per learner, in
/// the order Auto-Sklearn would warm-start them.
std::vector<std::string> StaticPortfolio(TaskType task) {
  static const char* kOrder[] = {
      "lgbm",        "xgboost",       "random_forest",
      "gradient_boosting", "extra_trees", "logistic_regression",
      "ridge",       "linear_svm",    "sgd",
      "knn",         "gaussian_nb",   "decision_tree",
      "lasso",       "linear_regression",
  };
  std::vector<std::string> portfolio;
  for (const char* name : kOrder) {
    if (ml::LearnerSupports(name, task)) portfolio.push_back(name);
  }
  return portfolio;
}

}  // namespace

Result<AutoMlResult> AutoSklearnSystem::Fit(const Table& train,
                                            TaskType task,
                                            hpo::Budget budget,
                                            uint64_t seed) const {
  KGPIP_ASSIGN_OR_RETURN(
      hpo::TrialEvaluator evaluator,
      hpo::TrialEvaluator::Create(train, task, 0.25, seed));

  AutoMlResult result;
  // All trials run through the guard: NaN quarantine, bounded retries,
  // and a per-learner circuit breaker feeding the run report.
  hpo::TrialGuard guard(&evaluator, hpo::TrialGuardOptions{});
  uint64_t trial_seed = seed * 131 + 17;

  auto run_trial = [&](const std::string& learner,
                       const ml::HyperParams& config) {
    ml::PipelineSpec spec;
    spec.learner = learner;
    spec.params = config;
    hpo::GuardedTrial trial = guard.Evaluate(spec, ++trial_seed, learner);
    double value = trial.ok() ? trial.score : -1e18;
    result.learner_sequence.push_back(learner);
    ++result.trials;
    if (trial.ok() && trial.score > result.validation_score) {
      result.validation_score = trial.score;
      result.best_spec = spec;
    }
    return value;
  };

  // ---- Meta-learning cold start: learners suggested by the 3 nearest
  // experience records. ----
  std::vector<double> meta = ComputeMetaFeatures(train);
  std::vector<std::pair<double, const Experience*>> neighbours;
  for (const Experience& exp : ExperienceDatabase()) {
    neighbours.emplace_back(MetaFeatureDistance(meta, exp.meta), &exp);
  }
  std::sort(neighbours.begin(), neighbours.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<std::string> suggested;
  for (size_t i = 0; i < neighbours.size() && i < 3; ++i) {
    for (const std::string& learner : neighbours[i].second->learners) {
      if (!ml::LearnerSupports(learner, task)) continue;
      if (std::find(suggested.begin(), suggested.end(), learner) ==
          suggested.end()) {
        suggested.push_back(learner);
      }
    }
  }

  // ---- Phase 1: portfolio defaults (meta-suggested first). ----
  std::vector<std::string> portfolio = suggested;
  for (const std::string& learner : StaticPortfolio(task)) {
    if (std::find(portfolio.begin(), portfolio.end(), learner) ==
        portfolio.end()) {
      portfolio.push_back(learner);
    }
  }
  std::map<std::string, double> learner_best;
  for (const std::string& learner : portfolio) {
    if (!budget.ConsumeTrial()) break;
    double value = run_trial(
        learner, hpo::SpaceForLearner(learner).DefaultConfig());
    learner_best[learner] = value;
  }

  // ---- Phase 2: random-search refinement, biased toward the best
  // learners seen so far. ----
  std::vector<std::pair<double, std::string>> ranked;
  for (const auto& [learner, best] : learner_best) {
    ranked.emplace_back(best, learner);
  }
  std::sort(ranked.rbegin(), ranked.rend());
  std::map<std::string, hpo::RandomSearch> searches;
  Rng pick_rng(seed ^ 0xA5C3);
  while (budget.ConsumeTrial()) {
    // Drop learners whose circuit breaker tripped before picking.
    ranked.erase(std::remove_if(ranked.begin(), ranked.end(),
                                [&](const auto& entry) {
                                  return guard.CircuitOpen(entry.second);
                                }),
                 ranked.end());
    if (ranked.empty()) break;
    // 60% best learner, 25% runner-up, 15% anything from the top five.
    size_t rank = 0;
    double u = pick_rng.Uniform();
    if (ranked.size() > 1 && u > 0.6) rank = 1;
    if (ranked.size() > 2 && u > 0.85) {
      rank = 2 + pick_rng.UniformInt(std::min<size_t>(3,
                                                      ranked.size() - 2));
    }
    rank = std::min(rank, ranked.size() - 1);
    const std::string& learner = ranked[rank].second;
    auto it = searches.find(learner);
    if (it == searches.end()) {
      it = searches
               .emplace(learner,
                        hpo::RandomSearch(hpo::SpaceForLearner(learner),
                                          seed ^ Fnv1a64(learner)))
               .first;
    }
    ml::HyperParams config = it->second.Propose();
    double value = run_trial(learner, config);
    it->second.Tell(config, value);
    // Keep the ranking current so refinement follows improvements.
    for (auto& [best, name] : ranked) {
      if (name == learner) best = std::max(best, value);
    }
    std::sort(ranked.rbegin(), ranked.rend());
  }

  result.report = guard.TakeReport();
  if (result.best_spec.learner.empty()) {
    return Status::Internal("Auto-Sklearn search produced no candidate");
  }
  KGPIP_RETURN_IF_ERROR(
      FinalizeResult(result.best_spec, train, task, seed, &result));
  return result;
}

}  // namespace kgpip::automl
