#include "obs/metrics.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <thread>

#include "obs/sliding_window.h"

namespace kgpip::obs {

Histogram::Histogram() : Histogram(Options()) {}

Histogram::Histogram(Options options)
    : options_(options),
      buckets_(static_cast<size_t>(std::max(2, options.num_buckets))),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {}

int Histogram::BucketIndex(double value) const {
  const int n = num_buckets();
  if (std::isnan(value)) return n - 1;
  if (value <= options_.scale) return 0;
  if (std::isinf(value)) return n - 1;
  // Smallest i with value <= scale * growth^i; bucket index is i.
  const double exponent =
      std::log(value / options_.scale) / std::log(options_.growth);
  // ceil with a tolerance so exact boundaries stay in the lower bucket.
  int i = static_cast<int>(std::ceil(exponent - 1e-9));
  if (i < 1) i = 1;
  if (i > n - 1) i = n - 1;
  return i;
}

double Histogram::BucketUpperBound(int i) const {
  if (i >= num_buckets() - 1) {
    return std::numeric_limits<double>::infinity();
  }
  return options_.scale * std::pow(options_.growth, i);
}

void Histogram::Record(double value) {
  buckets_[static_cast<size_t>(BucketIndex(value))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  if (!std::isfinite(value)) return;  // sum/min/max track finite samples
  sum_.fetch_add(value, std::memory_order_relaxed);
  double seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value,
                                     std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value,
                                     std::memory_order_relaxed)) {
  }
}

Json Histogram::ToJson() const {
  Json out = Json::Object();
  const int64_t n = count();
  out.Set("count", n);
  out.Set("sum", sum());
  if (n > 0 && std::isfinite(min())) {
    out.Set("min", min());
    out.Set("max", max());
  }
  Json buckets = Json::Array();
  for (int i = 0; i < num_buckets(); ++i) {
    const int64_t c = bucket_count(i);
    if (c == 0) continue;
    Json b = Json::Object();
    const double le = BucketUpperBound(i);
    if (std::isinf(le)) {
      b.Set("le", "+Inf");
    } else {
      b.Set("le", le);
    }
    b.Set("count", c);
    buckets.Append(std::move(b));
  }
  out.Set("buckets", std::move(buckets));
  return out;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

// Out of line so the unique_ptr maps over the forward-declared
// sliding-window types instantiate their deleters with complete types.
MetricsRegistry::MetricsRegistry() = default;
MetricsRegistry::~MetricsRegistry() = default;

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  util::MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::make_unique<Counter>()).first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  util::MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  return GetHistogram(name, Histogram::Options());
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         Histogram::Options options) {
  util::MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, std::make_unique<Histogram>(options))
             .first;
  }
  return it->second.get();
}

SlidingWindowHistogram* MetricsRegistry::GetSlidingHistogram(
    const std::string& name) {
  SlidingWindowHistogram::Options defaults;
  return GetSlidingHistogram(name, defaults.window_seconds,
                             defaults.num_slices);
}

SlidingWindowHistogram* MetricsRegistry::GetSlidingHistogram(
    const std::string& name, double window_seconds, int num_slices) {
  util::MutexLock lock(mu_);
  auto it = windows_.find(name);
  if (it == windows_.end()) {
    SlidingWindowHistogram::Options options;
    options.window_seconds = window_seconds;
    options.num_slices = num_slices;
    it = windows_
             .emplace(name, std::make_unique<SlidingWindowHistogram>(options))
             .first;
  }
  return it->second.get();
}

SlidingWindowCounter* MetricsRegistry::GetSlidingCounter(
    const std::string& name) {
  SlidingWindowCounter::Options defaults;
  return GetSlidingCounter(name, defaults.window_seconds,
                           defaults.num_slices);
}

SlidingWindowCounter* MetricsRegistry::GetSlidingCounter(
    const std::string& name, double window_seconds, int num_slices) {
  util::MutexLock lock(mu_);
  auto it = window_counters_.find(name);
  if (it == window_counters_.end()) {
    SlidingWindowCounter::Options options;
    options.window_seconds = window_seconds;
    options.num_slices = num_slices;
    it = window_counters_
             .emplace(name, std::make_unique<SlidingWindowCounter>(options))
             .first;
  }
  return it->second.get();
}

Json MetricsRegistry::ToJson() const {
  util::MutexLock lock(mu_);
  Json out = Json::Object();
  Json counters = Json::Object();
  for (const auto& [name, counter] : counters_) {
    counters.Set(name, counter->value());
  }
  out.Set("counters", std::move(counters));
  Json gauges = Json::Object();
  for (const auto& [name, gauge] : gauges_) {
    gauges.Set(name, gauge->value());
  }
  out.Set("gauges", std::move(gauges));
  Json histograms = Json::Object();
  for (const auto& [name, histogram] : histograms_) {
    histograms.Set(name, histogram->ToJson());
  }
  out.Set("histograms", std::move(histograms));
  // Window locks (kObsWindow) sit below the registry lock held here, so
  // snapshotting them one at a time is in rank order.
  Json windows = Json::Object();
  for (const auto& [name, window] : windows_) {
    windows.Set(name, window->GetSnapshot().ToJson());
  }
  for (const auto& [name, counter] : window_counters_) {
    Json c = Json::Object();
    c.Set("count", counter->WindowedCount());
    c.Set("rate_per_second", counter->RatePerSecond());
    c.Set("window_seconds", counter->options().window_seconds);
    windows.Set(name, std::move(c));
  }
  out.Set("windows", std::move(windows));
  return out;
}

Status MetricsRegistry::WriteJsonFile(const std::string& path) const {
  // Write-temp-then-rename (the serve::ArtifactCache discipline): the
  // final name either holds the previous complete snapshot or the new
  // one, never a torn write from a crash mid-dump. The temp name carries
  // the thread id so concurrent dumpers of one path cannot collide.
  std::ostringstream tid;
  tid << std::this_thread::get_id();
  const std::string tmp = path + ".tmp." + tid.str();
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return Status::IoError("cannot open '" + tmp + "' for write");
    out << ToJson().Dump(2) << "\n";
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return Status::IoError("write failed for '" + tmp + "'");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("rename '" + tmp + "' -> '" + path + "' failed");
  }
  return Status::Ok();
}

void MetricsRegistry::Reset() {
  util::MutexLock lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
  for (auto& [name, window] : windows_) window->Reset();
  for (auto& [name, counter] : window_counters_) counter->Reset();
}

}  // namespace kgpip::obs
