#include "obs/metrics.h"

#include <cmath>
#include <fstream>
#include <limits>

namespace kgpip::obs {

Histogram::Histogram() : Histogram(Options()) {}

Histogram::Histogram(Options options)
    : options_(options),
      buckets_(static_cast<size_t>(std::max(2, options.num_buckets))),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {}

int Histogram::BucketIndex(double value) const {
  const int n = num_buckets();
  if (std::isnan(value)) return n - 1;
  if (value <= options_.scale) return 0;
  if (std::isinf(value)) return n - 1;
  // Smallest i with value <= scale * growth^i; bucket index is i.
  const double exponent =
      std::log(value / options_.scale) / std::log(options_.growth);
  // ceil with a tolerance so exact boundaries stay in the lower bucket.
  int i = static_cast<int>(std::ceil(exponent - 1e-9));
  if (i < 1) i = 1;
  if (i > n - 1) i = n - 1;
  return i;
}

double Histogram::BucketUpperBound(int i) const {
  if (i >= num_buckets() - 1) {
    return std::numeric_limits<double>::infinity();
  }
  return options_.scale * std::pow(options_.growth, i);
}

void Histogram::Record(double value) {
  buckets_[static_cast<size_t>(BucketIndex(value))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  if (!std::isfinite(value)) return;  // sum/min/max track finite samples
  sum_.fetch_add(value, std::memory_order_relaxed);
  double seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value,
                                     std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value,
                                     std::memory_order_relaxed)) {
  }
}

Json Histogram::ToJson() const {
  Json out = Json::Object();
  const int64_t n = count();
  out.Set("count", n);
  out.Set("sum", sum());
  if (n > 0 && std::isfinite(min())) {
    out.Set("min", min());
    out.Set("max", max());
  }
  Json buckets = Json::Array();
  for (int i = 0; i < num_buckets(); ++i) {
    const int64_t c = bucket_count(i);
    if (c == 0) continue;
    Json b = Json::Object();
    const double le = BucketUpperBound(i);
    if (std::isinf(le)) {
      b.Set("le", "+Inf");
    } else {
      b.Set("le", le);
    }
    b.Set("count", c);
    buckets.Append(std::move(b));
  }
  out.Set("buckets", std::move(buckets));
  return out;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  util::MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::make_unique<Counter>()).first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  util::MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  return GetHistogram(name, Histogram::Options());
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         Histogram::Options options) {
  util::MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, std::make_unique<Histogram>(options))
             .first;
  }
  return it->second.get();
}

Json MetricsRegistry::ToJson() const {
  util::MutexLock lock(mu_);
  Json out = Json::Object();
  Json counters = Json::Object();
  for (const auto& [name, counter] : counters_) {
    counters.Set(name, counter->value());
  }
  out.Set("counters", std::move(counters));
  Json gauges = Json::Object();
  for (const auto& [name, gauge] : gauges_) {
    gauges.Set(name, gauge->value());
  }
  out.Set("gauges", std::move(gauges));
  Json histograms = Json::Object();
  for (const auto& [name, histogram] : histograms_) {
    histograms.Set(name, histogram->ToJson());
  }
  out.Set("histograms", std::move(histograms));
  return out;
}

Status MetricsRegistry::WriteJsonFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open '" + path + "' for write");
  out << ToJson().Dump(2) << "\n";
  if (!out) return Status::IoError("write failed for '" + path + "'");
  return Status::Ok();
}

void MetricsRegistry::Reset() {
  util::MutexLock lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace kgpip::obs
