#include "obs/stage_profile.h"

namespace kgpip::obs {

void StageProfile::Add(const std::string& name, double seconds) {
  for (Stage& stage : stages) {
    if (stage.name == name) {
      stage.seconds += seconds;
      ++stage.count;
      return;
    }
  }
  stages.push_back(Stage{name, seconds, 1});
}

double StageProfile::StageSeconds(const std::string& name) const {
  for (const Stage& stage : stages) {
    if (stage.name == name) return stage.seconds;
  }
  return 0.0;
}

double StageProfile::SumSeconds() const {
  double sum = 0.0;
  for (const Stage& stage : stages) sum += stage.seconds;
  return sum;
}

Json StageProfile::ToJson() const {
  Json out = Json::Object();
  out.Set("total_seconds", total_seconds);
  Json list = Json::Array();
  for (const Stage& stage : stages) {
    Json s = Json::Object();
    s.Set("name", stage.name);
    s.Set("seconds", stage.seconds);
    s.Set("count", stage.count);
    list.Append(std::move(s));
  }
  out.Set("stages", std::move(list));
  return out;
}

}  // namespace kgpip::obs
