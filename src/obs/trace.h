#ifndef KGPIP_OBS_TRACE_H_
#define KGPIP_OBS_TRACE_H_

#include <atomic>
#include <string>
#include <utility>
#include <vector>

#include "util/json.h"
#include "util/mutex.h"
#include "util/status.h"

namespace kgpip::obs {

namespace internal_trace {
/// Process-wide tracing toggle; read with a single relaxed load so a
/// disabled span is one predictable branch (the overhead contract in
/// DESIGN.md "Observability").
extern std::atomic<bool> g_enabled;
}  // namespace internal_trace

/// One completed span. Timestamps are microseconds since the process
/// trace epoch (first span or explicit Tracer use), matching the Chrome
/// trace-event "X" (complete-event) encoding.
struct TraceEvent {
  std::string name;
  double start_us = 0.0;
  double dur_us = 0.0;
  int tid = 0;    // per-process dense thread id, assigned on first span
  int depth = 0;  // nesting depth within the thread (1 = top level)
  /// Serve-request identity captured from util::CurrentRequestContext()
  /// when the span began; 0 / empty outside any request. The Chrome
  /// export groups spans into one virtual process per request on these.
  uint64_t request_id = 0;
  std::string tenant;
  std::vector<std::pair<std::string, std::string>> args;
};

/// Process-wide collector of trace spans. Enabled explicitly or by the
/// `KGPIP_TRACE=<path>` environment variable, which also registers an
/// atexit hook exporting Chrome trace-event JSON to `<path>` (load it in
/// chrome://tracing or Perfetto).
class Tracer {
 public:
  static Tracer& Global();

  static bool enabled() {
    return internal_trace::g_enabled.load(std::memory_order_relaxed);
  }

  void Enable() {
    internal_trace::g_enabled.store(true, std::memory_order_relaxed);
  }
  void Disable() {
    internal_trace::g_enabled.store(false, std::memory_order_relaxed);
  }

  /// Enables tracing and exports to `path` at process exit (the
  /// KGPIP_TRACE env path, or an explicit programmatic sink).
  void EnableWithExportPath(std::string path);

  /// Appends a completed span (called by ~TraceSpan). Keeps at most
  /// `capacity()` events; later events are counted as dropped.
  void Record(TraceEvent event);

  /// Microseconds since the trace epoch.
  static double NowMicros();

  std::vector<TraceEvent> Snapshot() const;
  size_t num_events() const;
  size_t dropped_events() const;
  void Clear();

  void set_capacity(size_t capacity);

  /// {"displayTimeUnit": "ms", "traceEvents": [{"name", "cat", "ph": "X",
  ///  "ts", "dur", "pid", "tid", "args"}, ...],
  ///  "kgpipDroppedEvents": <n>} — the footer is always present so a
  /// consumer can assert completeness without guessing.
  ///
  /// Spans that carry a request context are grouped into one virtual
  /// process per request (named via "M" process_name metadata events,
  /// e.g. "request 42 [tenant-1]"); context-free spans stay on pid 1
  /// ("kgpip"). Perfetto/chrome://tracing then shows each request's spans
  /// as one collapsible track group even when workers interleave.
  Json ToChromeJson() const;
  Status WriteChromeTrace(const std::string& path) const;

 private:
  Tracer() = default;

  mutable util::Mutex mu_{util::LockRank::kObsTrace, "obs.trace"};
  std::vector<TraceEvent> events_ KGPIP_GUARDED_BY(mu_);
  size_t capacity_ KGPIP_GUARDED_BY(mu_) = 1u << 20;
  size_t dropped_ KGPIP_GUARDED_BY(mu_) = 0;
  std::string export_path_ KGPIP_GUARDED_BY(mu_);
};

/// RAII span. When tracing is disabled the constructor is a relaxed
/// atomic load plus one branch — no string is built, no clock is read.
/// Spans nest per thread; nesting is recorded both as the `depth`
/// attribute and by timestamp containment (how Chrome/Perfetto stack
/// "X" events on a track).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (!Tracer::enabled()) return;
    Begin(std::string(name));
  }
  /// For dynamic names; callers on hot paths should only build the
  /// string under a `Tracer::enabled()` check of their own.
  explicit TraceSpan(std::string name) {
    if (!Tracer::enabled()) return;
    Begin(std::move(name));
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() {
    if (active_) End();
  }

  /// Attaches a key/value to the span (no-ops when inactive).
  void SetAttr(const std::string& key, std::string value);
  void SetAttr(const std::string& key, double value);
  void SetAttr(const std::string& key, int64_t value);

  bool active() const { return active_; }

 private:
  void Begin(std::string name);
  void End();

  bool active_ = false;
  std::string name_;
  double start_us_ = 0.0;
  int depth_ = 0;
  uint64_t request_id_ = 0;
  std::string tenant_;
  std::vector<std::pair<std::string, std::string>> args_;
};

#define KGPIP_OBS_CONCAT_INNER(a, b) a##b
#define KGPIP_OBS_CONCAT(a, b) KGPIP_OBS_CONCAT_INNER(a, b)

/// KGPIP_TRACE_SPAN("subsystem.verb"); — times the enclosing scope.
#define KGPIP_TRACE_SPAN(name) \
  ::kgpip::obs::TraceSpan KGPIP_OBS_CONCAT(kgpip_trace_span_, __LINE__)(name)

}  // namespace kgpip::obs

#endif  // KGPIP_OBS_TRACE_H_
