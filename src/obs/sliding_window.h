#ifndef KGPIP_OBS_SLIDING_WINDOW_H_
#define KGPIP_OBS_SLIDING_WINDOW_H_

#include <cstdint>
#include <vector>

#include "obs/metrics.h"
#include "util/json.h"
#include "util/mutex.h"

namespace kgpip::obs {

/// Time-decaying variant of obs::Histogram: samples land in one of
/// `num_slices` rotating slices of `window_seconds / num_slices` each;
/// a snapshot merges only the slices that fall inside the trailing
/// window, so p50/p99 (and rates) reflect the last ~window_seconds of
/// traffic instead of process lifetime. The serving watchdog reads these
/// to export per-tenant SLO burn.
///
/// Rotation is driven by the clock of whoever touches the window next: a
/// Record (or Snapshot) whose slice epoch has moved on resets the stale
/// slices it displaces. An idle window therefore keeps stale slice
/// contents in memory, but snapshots filter by epoch, so they are never
/// *reported* — correctness does not depend on a background sweeper.
///
/// All methods are thread-safe behind one mutex (LockRank::kObsWindow).
/// Unlike obs::Histogram this is not lock-free: windowed metrics are
/// recorded once per *request* (not per trial/task), so a short critical
/// section is fine.
///
/// The *At overloads take an explicit `now_seconds` (any monotonic
/// origin) so tests drive rotation deterministically; the clockless
/// forms use the process-wide steady clock.
class SlidingWindowHistogram {
 public:
  struct Options {
    double window_seconds = 60.0;
    int num_slices = 6;
    /// Bucket layout shared by every slice (defaults: 1 µs base, ×2
    /// growth, 48 buckets — same as obs::Histogram).
    Histogram::Options layout;
  };

  /// Merged view of the live slices at snapshot time.
  struct Snapshot {
    int64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  // meaningful only when count > 0
    double max = 0.0;
    double window_seconds = 0.0;
    std::vector<int64_t> buckets;
    Histogram::Options layout;

    /// Approximate quantile (q in [0,1]) by linear interpolation inside
    /// the exponential bucket the target rank lands in. 0 when empty.
    double Quantile(double q) const;
    /// Approximate fraction of windowed samples strictly above
    /// `threshold` (the SLO-burn numerator). 0 when empty.
    double FractionAbove(double threshold) const;
    /// Samples per second over the window.
    double RatePerSecond() const {
      return window_seconds > 0.0 ? static_cast<double>(count) /
                                        window_seconds
                                  : 0.0;
    }

    /// {"count","sum","min","max","window_seconds","p50","p90","p99"}.
    Json ToJson() const;
  };

  SlidingWindowHistogram();
  explicit SlidingWindowHistogram(Options options);

  void Record(double value);
  void RecordAt(double value, double now_seconds);

  Snapshot GetSnapshot() const;
  Snapshot SnapshotAt(double now_seconds) const;

  const Options& options() const { return options_; }

  void Reset();

 private:
  struct Slice {
    int64_t epoch = -1;  // floor(now / slice_seconds); -1 = never used
    int64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::vector<int64_t> buckets;
  };

  double slice_seconds() const {
    return options_.window_seconds / options_.num_slices;
  }

  Options options_;
  /// Reference layout for bucket math (BucketIndex/BucketUpperBound);
  /// never Record()ed into.
  Histogram shape_;
  mutable util::Mutex mu_{util::LockRank::kObsWindow, "obs.window"};
  std::vector<Slice> slices_ KGPIP_GUARDED_BY(mu_);
};

/// Windowed event counter (shed/hit rates): Add() stamps events into the
/// same rotating-slice scheme; WindowedCount/RatePerSecond report the
/// trailing window only. Thread-safe (LockRank::kObsWindow).
class SlidingWindowCounter {
 public:
  struct Options {
    double window_seconds = 60.0;
    int num_slices = 6;
  };

  SlidingWindowCounter();
  explicit SlidingWindowCounter(Options options);

  void Add(int64_t n = 1);
  void AddAt(int64_t n, double now_seconds);

  int64_t WindowedCount() const;
  int64_t WindowedCountAt(double now_seconds) const;
  double RatePerSecond() const {
    return static_cast<double>(WindowedCount()) / options_.window_seconds;
  }

  const Options& options() const { return options_; }

  void Reset();

 private:
  struct Slice {
    int64_t epoch = -1;
    int64_t count = 0;
  };

  double slice_seconds() const {
    return options_.window_seconds / options_.num_slices;
  }

  Options options_;
  mutable util::Mutex mu_{util::LockRank::kObsWindow, "obs.window"};
  std::vector<Slice> slices_ KGPIP_GUARDED_BY(mu_);
};

/// Seconds on the process-wide steady clock (same origin for every
/// window, so cross-metric snapshots line up).
double WindowClockSeconds();

}  // namespace kgpip::obs

#endif  // KGPIP_OBS_SLIDING_WINDOW_H_
