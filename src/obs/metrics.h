#ifndef KGPIP_OBS_METRICS_H_
#define KGPIP_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/json.h"
#include "util/mutex.h"
#include "util/status.h"

namespace kgpip::obs {

/// Monotonic event counter. Increments are lock-free; the pointer
/// returned by `MetricsRegistry::GetCounter` stays valid (and keeps its
/// identity across `Reset`) for the registry's lifetime, so hot paths can
/// cache it in a function-local static.
class Counter {
 public:
  void Increment(int64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-write-wins instantaneous value (e.g. current training loss).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Exponential-bucket histogram for latency-style distributions.
///
/// Bucket layout over `num_buckets` buckets with base `scale` and ratio
/// `growth`:
///   bucket 0:              v <= scale                (underflow; catches
///                                                     0 and negatives)
///   bucket i in [1, n-2]:  scale*growth^(i-1) < v <= scale*growth^i
///   bucket n-1:            everything larger, +inf and NaN (overflow)
///
/// The defaults (1 µs base, x2 growth, 48 buckets) cover 1 µs .. ~39 h
/// when values are seconds. Recording is lock-free; `sum`/`min`/`max`
/// only aggregate finite samples.
class Histogram {
 public:
  struct Options {
    double scale = 1e-6;
    double growth = 2.0;
    int num_buckets = 48;
  };

  Histogram();  // default Options
  explicit Histogram(Options options);

  void Record(double value);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const { return min_.load(std::memory_order_relaxed); }
  double max() const { return max_.load(std::memory_order_relaxed); }
  int64_t bucket_count(int i) const {
    return buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
  }
  int num_buckets() const { return static_cast<int>(buckets_.size()); }
  const Options& options() const { return options_; }

  /// Index of the bucket `value` lands in (see the class comment).
  int BucketIndex(double value) const;
  /// Inclusive upper bound of bucket `i`; +inf for the overflow bucket.
  double BucketUpperBound(int i) const;

  /// {"count", "sum", "min", "max", "buckets": [{"le", "count"}, ...]}
  /// with empty buckets elided; the overflow bucket's "le" is "+Inf".
  Json ToJson() const;

  void Reset();

 private:
  Options options_;
  std::vector<std::atomic<int64_t>> buckets_;
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

class SlidingWindowHistogram;  // obs/sliding_window.h
class SlidingWindowCounter;

/// Thread-safe registry of named metrics. Lookup takes a mutex; returned
/// pointers are stable for the registry's lifetime, so call sites cache
/// them:
///
///   static obs::Counter* hits =
///       obs::MetricsRegistry::Global().GetCounter("embed.cache_hit");
///   hits->Increment();
///
/// Metric names follow the span convention `subsystem.noun[_unit]`
/// (e.g. "hpo.trial_seconds", "codegraph.pass.cache_miss").
class MetricsRegistry {
 public:
  /// The process-wide registry every subsystem reports into.
  static MetricsRegistry& Global();

  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create by name. A histogram's options are fixed by the
  /// first caller; later mismatching options are ignored.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);  // default options
  Histogram* GetHistogram(const std::string& name,
                          Histogram::Options options);

  /// Find-or-create sliding-window metrics (obs/sliding_window.h). The
  /// window geometry is fixed by the first caller; the parameterless
  /// forms use the defaults (60 s over 6 slices). Returned pointers are
  /// stable, same contract as the lifetime metrics above.
  SlidingWindowHistogram* GetSlidingHistogram(const std::string& name);
  SlidingWindowHistogram* GetSlidingHistogram(const std::string& name,
                                              double window_seconds,
                                              int num_slices);
  SlidingWindowCounter* GetSlidingCounter(const std::string& name);
  SlidingWindowCounter* GetSlidingCounter(const std::string& name,
                                          double window_seconds,
                                          int num_slices);

  /// Point-in-time snapshot: {"counters": {...}, "gauges": {...},
  /// "histograms": {...}, "windows": {...}} — windows hold the merged
  /// trailing-window view (count/sum/p50/p90/p99 or count/rate).
  Json ToJson() const;

  /// Snapshot pretty-printed to a file (the bench `--metrics-out` sink).
  /// Written temp-then-rename, like serve::ArtifactCache entries: a
  /// crash mid-dump leaves the previous file intact, never a torn one.
  Status WriteJsonFile(const std::string& path) const;

  /// Zeroes every metric in place. Registered pointers stay valid —
  /// names are never removed, so cached statics survive (tests and the
  /// bench harness reset between phases).
  void Reset();

 private:
  mutable util::Mutex mu_{util::LockRank::kObsMetrics, "obs.metrics"};
  /// Name->metric maps are mu_-guarded; the *metrics themselves* are
  /// lock-free and updated through stable pointers without it.
  std::map<std::string, std::unique_ptr<Counter>> counters_
      KGPIP_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      KGPIP_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      KGPIP_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<SlidingWindowHistogram>> windows_
      KGPIP_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<SlidingWindowCounter>>
      window_counters_ KGPIP_GUARDED_BY(mu_);
};

}  // namespace kgpip::obs

#endif  // KGPIP_OBS_METRICS_H_
