#ifndef KGPIP_OBS_STAGE_PROFILE_H_
#define KGPIP_OBS_STAGE_PROFILE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace.h"
#include "util/json.h"
#include "util/stopwatch.h"

namespace kgpip::obs {

/// Per-stage wall-time breakdown of one run, in first-seen order. This is
/// the budget-attribution answer `Kgpip::Fit` attaches to its RunReport:
/// how much of T went to skeleton prediction vs. lint vs. HPO search.
/// Unlike trace spans, stage timing is always on — a run has a handful of
/// stages, so two clock reads per stage are free.
struct StageProfile {
  struct Stage {
    std::string name;
    double seconds = 0.0;
    int64_t count = 0;
  };

  std::vector<Stage> stages;
  /// End-to-end wall time of the profiled operation; stage seconds sum
  /// to (almost) this when the stages tile the run.
  double total_seconds = 0.0;

  /// Accumulates `seconds` into the stage named `name` (created on first
  /// use, preserving insertion order).
  void Add(const std::string& name, double seconds);

  /// Total seconds of one stage (0 if absent).
  double StageSeconds(const std::string& name) const;

  /// Sum of all stage durations.
  double SumSeconds() const;

  bool empty() const { return stages.empty(); }

  /// {"total_seconds", "stages": [{"name", "seconds", "count"}, ...]}
  Json ToJson() const;
};

/// RAII stage timer: accumulates the scope's wall time into `profile`
/// and — when tracing is enabled — emits a trace span of the same name,
/// so stage attribution and the Chrome trace stay consistent.
class StageTimer {
 public:
  StageTimer(StageProfile* profile, std::string name)
      : profile_(profile), name_(std::move(name)), span_(name_) {}
  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;
  ~StageTimer() {
    if (profile_ != nullptr) profile_->Add(name_, watch_.ElapsedSeconds());
  }

 private:
  StageProfile* profile_;
  std::string name_;
  TraceSpan span_;
  Stopwatch watch_;
};

}  // namespace kgpip::obs

#endif  // KGPIP_OBS_STAGE_PROFILE_H_
