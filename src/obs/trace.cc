#include "obs/trace.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>

#include "obs/metrics.h"
#include "util/request_context.h"
#include "util/string_util.h"

namespace kgpip::obs {

namespace internal_trace {
std::atomic<bool> g_enabled{false};
}  // namespace internal_trace

namespace {

/// Dense per-thread id for trace tracks (std::thread::id is opaque).
int ThisThreadTid() {
  static std::atomic<int> next_tid{1};
  thread_local const int tid = next_tid.fetch_add(1);
  return tid;
}

int& ThisThreadDepth() {
  thread_local int depth = 0;
  return depth;
}

void ExportAtExit();

/// Reads KGPIP_TRACE once at static-init time so every binary linking
/// the library honors the toggle without code changes.
struct TraceEnvInit {
  TraceEnvInit() {
    // NOLINTNEXTLINE(concurrency-mt-unsafe) -- static-init-time getenv,
    // before any thread exists; the environment is never mutated.
    const char* path = std::getenv("KGPIP_TRACE");
    if (path != nullptr && *path != '\0') {
      Tracer::Global().EnableWithExportPath(path);
    }
  }
};
TraceEnvInit g_trace_env_init;

void ExportAtExit() {
  Tracer& tracer = Tracer::Global();
  // NOLINTNEXTLINE(concurrency-mt-unsafe) -- atexit-time getenv; worker
  // threads are joined before exit and the environment is read-only.
  const char* path = std::getenv("KGPIP_TRACE");
  if (path == nullptr || *path == '\0') return;
  Status status = tracer.WriteChromeTrace(path);
  if (!status.ok()) {
    std::fprintf(stderr, "[obs] KGPIP_TRACE export failed: %s\n",
                 status.ToString().c_str());
  }
}

}  // namespace

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::EnableWithExportPath(std::string path) {
  {
    util::MutexLock lock(mu_);
    export_path_ = std::move(path);
  }
  Enable();
  static const bool registered = [] {
    std::atexit(ExportAtExit);
    return true;
  }();
  (void)registered;
}

double Tracer::NowMicros() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return std::chrono::duration<double, std::micro>(Clock::now() - epoch)
      .count();
}

void Tracer::Record(TraceEvent event) {
  // Resolve the drop counter BEFORE taking mu_: GetCounter locks the
  // metrics registry (rank kObsMetrics, above kObsTrace), so fetching it
  // under mu_ would be an out-of-order acquisition.
  static Counter* dropped_spans =
      MetricsRegistry::Global().GetCounter("obs.trace.dropped_spans");
  util::MutexLock lock(mu_);
  if (events_.size() >= capacity_) {
    ++dropped_;
    dropped_spans->Increment();
    return;
  }
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  util::MutexLock lock(mu_);
  return events_;
}

size_t Tracer::num_events() const {
  util::MutexLock lock(mu_);
  return events_.size();
}

size_t Tracer::dropped_events() const {
  util::MutexLock lock(mu_);
  return dropped_;
}

void Tracer::Clear() {
  util::MutexLock lock(mu_);
  events_.clear();
  dropped_ = 0;
}

void Tracer::set_capacity(size_t capacity) {
  util::MutexLock lock(mu_);
  capacity_ = capacity;
}

Json Tracer::ToChromeJson() const {
  util::MutexLock lock(mu_);
  // One virtual process per request (first-appearance order keeps pids
  // stable across exports of the same buffer); pid 1 holds everything
  // recorded outside a request context.
  constexpr int kProcessPid = 1;
  std::map<uint64_t, int> request_pids;
  Json trace_events = Json::Array();
  {
    Json process_meta = Json::Object();
    process_meta.Set("name", "process_name");
    process_meta.Set("ph", "M");
    process_meta.Set("pid", kProcessPid);
    Json meta_args = Json::Object();
    meta_args.Set("name", "kgpip");
    process_meta.Set("args", std::move(meta_args));
    trace_events.Append(std::move(process_meta));
  }
  for (const TraceEvent& event : events_) {
    int pid = kProcessPid;
    if (event.request_id != 0) {
      auto [it, inserted] = request_pids.emplace(
          event.request_id,
          kProcessPid + 1 + static_cast<int>(request_pids.size()));
      pid = it->second;
      if (inserted) {
        Json meta = Json::Object();
        meta.Set("name", "process_name");
        meta.Set("ph", "M");
        meta.Set("pid", pid);
        Json meta_args = Json::Object();
        meta_args.Set("name",
                      StrFormat("request %llu [%s]",
                                static_cast<unsigned long long>(
                                    event.request_id),
                                event.tenant.c_str()));
        meta.Set("args", std::move(meta_args));
        trace_events.Append(std::move(meta));
      }
    }
    Json e = Json::Object();
    e.Set("name", event.name);
    e.Set("cat", "kgpip");
    e.Set("ph", "X");
    e.Set("ts", event.start_us);
    e.Set("dur", event.dur_us);
    e.Set("pid", pid);
    e.Set("tid", event.tid);
    Json args = Json::Object();
    args.Set("depth", event.depth);
    if (event.request_id != 0) {
      args.Set("request_id", static_cast<int64_t>(event.request_id));
      args.Set("tenant", event.tenant);
    }
    for (const auto& [key, value] : event.args) {
      args.Set(key, value);
    }
    e.Set("args", std::move(args));
    trace_events.Append(std::move(e));
  }
  Json out = Json::Object();
  out.Set("displayTimeUnit", "ms");
  out.Set("traceEvents", std::move(trace_events));
  // Always present (0 = complete capture) so consumers can assert on it.
  out.Set("kgpipDroppedEvents", static_cast<int64_t>(dropped_));
  return out;
}

Status Tracer::WriteChromeTrace(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open '" + path + "' for write");
  out << ToChromeJson().Dump() << "\n";
  if (!out) return Status::IoError("write failed for '" + path + "'");
  return Status::Ok();
}

void TraceSpan::Begin(std::string name) {
  active_ = true;
  name_ = std::move(name);
  depth_ = ++ThisThreadDepth();
  // Captured at Begin: the span belongs to whatever request the thread
  // was working for when it opened, even if a pool chunk swaps the
  // thread's context before the destructor runs.
  const util::RequestContext& ctx = util::CurrentRequestContext();
  request_id_ = ctx.request_id;
  if (ctx.active()) tenant_ = ctx.tenant;
  start_us_ = Tracer::NowMicros();
}

void TraceSpan::End() {
  const double end_us = Tracer::NowMicros();
  TraceEvent event;
  event.name = std::move(name_);
  event.start_us = start_us_;
  event.dur_us = end_us - start_us_;
  event.tid = ThisThreadTid();
  event.depth = depth_;
  event.request_id = request_id_;
  event.tenant = std::move(tenant_);
  event.args = std::move(args_);
  --ThisThreadDepth();
  Tracer::Global().Record(std::move(event));
}

void TraceSpan::SetAttr(const std::string& key, std::string value) {
  if (!active_) return;
  args_.emplace_back(key, std::move(value));
}

void TraceSpan::SetAttr(const std::string& key, double value) {
  if (!active_) return;
  args_.emplace_back(key, StrFormat("%g", value));
}

void TraceSpan::SetAttr(const std::string& key, int64_t value) {
  if (!active_) return;
  args_.emplace_back(key, StrFormat("%lld", (long long)value));
}

}  // namespace kgpip::obs
