#include "obs/trace.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "util/string_util.h"

namespace kgpip::obs {

namespace internal_trace {
std::atomic<bool> g_enabled{false};
}  // namespace internal_trace

namespace {

/// Dense per-thread id for trace tracks (std::thread::id is opaque).
int ThisThreadTid() {
  static std::atomic<int> next_tid{1};
  thread_local const int tid = next_tid.fetch_add(1);
  return tid;
}

int& ThisThreadDepth() {
  thread_local int depth = 0;
  return depth;
}

void ExportAtExit();

/// Reads KGPIP_TRACE once at static-init time so every binary linking
/// the library honors the toggle without code changes.
struct TraceEnvInit {
  TraceEnvInit() {
    // NOLINTNEXTLINE(concurrency-mt-unsafe) -- static-init-time getenv,
    // before any thread exists; the environment is never mutated.
    const char* path = std::getenv("KGPIP_TRACE");
    if (path != nullptr && *path != '\0') {
      Tracer::Global().EnableWithExportPath(path);
    }
  }
};
TraceEnvInit g_trace_env_init;

void ExportAtExit() {
  Tracer& tracer = Tracer::Global();
  // NOLINTNEXTLINE(concurrency-mt-unsafe) -- atexit-time getenv; worker
  // threads are joined before exit and the environment is read-only.
  const char* path = std::getenv("KGPIP_TRACE");
  if (path == nullptr || *path == '\0') return;
  Status status = tracer.WriteChromeTrace(path);
  if (!status.ok()) {
    std::fprintf(stderr, "[obs] KGPIP_TRACE export failed: %s\n",
                 status.ToString().c_str());
  }
}

}  // namespace

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::EnableWithExportPath(std::string path) {
  {
    util::MutexLock lock(mu_);
    export_path_ = std::move(path);
  }
  Enable();
  static const bool registered = [] {
    std::atexit(ExportAtExit);
    return true;
  }();
  (void)registered;
}

double Tracer::NowMicros() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return std::chrono::duration<double, std::micro>(Clock::now() - epoch)
      .count();
}

void Tracer::Record(TraceEvent event) {
  util::MutexLock lock(mu_);
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  util::MutexLock lock(mu_);
  return events_;
}

size_t Tracer::num_events() const {
  util::MutexLock lock(mu_);
  return events_.size();
}

size_t Tracer::dropped_events() const {
  util::MutexLock lock(mu_);
  return dropped_;
}

void Tracer::Clear() {
  util::MutexLock lock(mu_);
  events_.clear();
  dropped_ = 0;
}

void Tracer::set_capacity(size_t capacity) {
  util::MutexLock lock(mu_);
  capacity_ = capacity;
}

Json Tracer::ToChromeJson() const {
  util::MutexLock lock(mu_);
  Json trace_events = Json::Array();
  for (const TraceEvent& event : events_) {
    Json e = Json::Object();
    e.Set("name", event.name);
    e.Set("cat", "kgpip");
    e.Set("ph", "X");
    e.Set("ts", event.start_us);
    e.Set("dur", event.dur_us);
    e.Set("pid", 1);
    e.Set("tid", event.tid);
    Json args = Json::Object();
    args.Set("depth", event.depth);
    for (const auto& [key, value] : event.args) {
      args.Set(key, value);
    }
    e.Set("args", std::move(args));
    trace_events.Append(std::move(e));
  }
  Json out = Json::Object();
  out.Set("displayTimeUnit", "ms");
  out.Set("traceEvents", std::move(trace_events));
  if (dropped_ > 0) out.Set("kgpipDroppedEvents", dropped_);
  return out;
}

Status Tracer::WriteChromeTrace(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open '" + path + "' for write");
  out << ToChromeJson().Dump() << "\n";
  if (!out) return Status::IoError("write failed for '" + path + "'");
  return Status::Ok();
}

void TraceSpan::Begin(std::string name) {
  active_ = true;
  name_ = std::move(name);
  depth_ = ++ThisThreadDepth();
  start_us_ = Tracer::NowMicros();
}

void TraceSpan::End() {
  const double end_us = Tracer::NowMicros();
  TraceEvent event;
  event.name = std::move(name_);
  event.start_us = start_us_;
  event.dur_us = end_us - start_us_;
  event.tid = ThisThreadTid();
  event.depth = depth_;
  event.args = std::move(args_);
  --ThisThreadDepth();
  Tracer::Global().Record(std::move(event));
}

void TraceSpan::SetAttr(const std::string& key, std::string value) {
  if (!active_) return;
  args_.emplace_back(key, std::move(value));
}

void TraceSpan::SetAttr(const std::string& key, double value) {
  if (!active_) return;
  args_.emplace_back(key, StrFormat("%g", value));
}

void TraceSpan::SetAttr(const std::string& key, int64_t value) {
  if (!active_) return;
  args_.emplace_back(key, StrFormat("%lld", (long long)value));
}

}  // namespace kgpip::obs
