#include "obs/sliding_window.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

namespace kgpip::obs {

namespace {

int64_t EpochFor(double now_seconds, double slice_seconds) {
  return static_cast<int64_t>(std::floor(now_seconds / slice_seconds));
}

}  // namespace

double WindowClockSeconds() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return std::chrono::duration<double>(Clock::now() - epoch).count();
}

SlidingWindowHistogram::SlidingWindowHistogram()
    : SlidingWindowHistogram(Options()) {}

SlidingWindowHistogram::SlidingWindowHistogram(Options options)
    : options_(options), shape_(options.layout) {
  options_.num_slices = std::max(1, options_.num_slices);
  options_.window_seconds = std::max(1e-9, options_.window_seconds);
  util::MutexLock lock(mu_);
  slices_.resize(static_cast<size_t>(options_.num_slices));
  for (Slice& slice : slices_) {
    slice.buckets.assign(static_cast<size_t>(shape_.num_buckets()), 0);
  }
}

void SlidingWindowHistogram::Record(double value) {
  RecordAt(value, WindowClockSeconds());
}

void SlidingWindowHistogram::RecordAt(double value, double now_seconds) {
  const int64_t epoch = EpochFor(now_seconds, slice_seconds());
  const size_t idx =
      static_cast<size_t>(epoch % options_.num_slices +
                          (epoch % options_.num_slices < 0
                               ? options_.num_slices
                               : 0));
  const int bucket = shape_.BucketIndex(value);
  util::MutexLock lock(mu_);
  Slice& slice = slices_[idx];
  if (slice.epoch != epoch) {
    // This slot last held an older (or never-used) slice; it has aged
    // out of the window by construction, so recycle it in place.
    slice.epoch = epoch;
    slice.count = 0;
    slice.sum = 0.0;
    std::fill(slice.buckets.begin(), slice.buckets.end(), 0);
  }
  ++slice.count;
  slice.buckets[static_cast<size_t>(bucket)]++;
  if (std::isfinite(value)) {
    slice.sum += value;
    if (slice.count == 1 || value < slice.min) slice.min = value;
    if (slice.count == 1 || value > slice.max) slice.max = value;
  }
}

SlidingWindowHistogram::Snapshot SlidingWindowHistogram::GetSnapshot() const {
  return SnapshotAt(WindowClockSeconds());
}

SlidingWindowHistogram::Snapshot SlidingWindowHistogram::SnapshotAt(
    double now_seconds) const {
  Snapshot snap;
  snap.window_seconds = options_.window_seconds;
  snap.layout = options_.layout;
  snap.buckets.assign(static_cast<size_t>(shape_.num_buckets()), 0);
  const int64_t now_epoch = EpochFor(now_seconds, slice_seconds());
  // Live slices: epochs (now_epoch - num_slices, now_epoch]. Anything
  // older is stale data awaiting recycling and must not be reported.
  const int64_t oldest = now_epoch - options_.num_slices + 1;
  bool first = true;
  util::MutexLock lock(mu_);
  for (const Slice& slice : slices_) {
    if (slice.epoch < oldest || slice.epoch > now_epoch) continue;
    if (slice.count == 0) continue;
    snap.count += slice.count;
    snap.sum += slice.sum;
    if (first || slice.min < snap.min) snap.min = slice.min;
    if (first || slice.max > snap.max) snap.max = slice.max;
    first = false;
    for (size_t b = 0; b < slice.buckets.size(); ++b) {
      snap.buckets[b] += slice.buckets[b];
    }
  }
  return snap;
}

void SlidingWindowHistogram::Reset() {
  util::MutexLock lock(mu_);
  for (Slice& slice : slices_) {
    slice.epoch = -1;
    slice.count = 0;
    slice.sum = 0.0;
    slice.min = 0.0;
    slice.max = 0.0;
    std::fill(slice.buckets.begin(), slice.buckets.end(), 0);
  }
}

double SlidingWindowHistogram::Snapshot::Quantile(double q) const {
  if (count <= 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target sample (1-based), then walk the cumulative bucket
  // counts to find the bucket it lands in.
  const double rank = q * static_cast<double>(count);
  Histogram shape(layout);
  int64_t cumulative = 0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b] == 0) continue;
    const int64_t before = cumulative;
    cumulative += buckets[b];
    if (static_cast<double>(cumulative) < rank) continue;
    const int i = static_cast<int>(b);
    const double upper = shape.BucketUpperBound(i);
    const double lower = i == 0 ? 0.0 : shape.BucketUpperBound(i - 1);
    if (std::isinf(upper)) return std::min(max, std::max(lower, min));
    // Linear interpolation on rank within the bucket, clamped to the
    // observed extremes so tiny windows don't report beyond min/max.
    const double frac =
        (rank - static_cast<double>(before)) /
        static_cast<double>(buckets[b]);
    double value = lower + frac * (upper - lower);
    value = std::max(value, min);
    value = std::min(value, max);
    return value;
  }
  return max;
}

double SlidingWindowHistogram::Snapshot::FractionAbove(
    double threshold) const {
  if (count <= 0) return 0.0;
  Histogram shape(layout);
  double above = 0.0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b] == 0) continue;
    const int i = static_cast<int>(b);
    const double upper = shape.BucketUpperBound(i);
    const double lower = i == 0 ? 0.0 : shape.BucketUpperBound(i - 1);
    if (lower >= threshold) {
      above += static_cast<double>(buckets[b]);
    } else if (upper > threshold && !std::isinf(upper)) {
      // Bucket straddles the threshold: assume uniform within it.
      above += static_cast<double>(buckets[b]) * (upper - threshold) /
               (upper - lower);
    } else if (std::isinf(upper) && threshold < std::max(lower, max)) {
      above += static_cast<double>(buckets[b]);
    }
  }
  return std::clamp(above / static_cast<double>(count), 0.0, 1.0);
}

Json SlidingWindowHistogram::Snapshot::ToJson() const {
  Json out = Json::Object();
  out.Set("count", count);
  out.Set("sum", sum);
  out.Set("window_seconds", window_seconds);
  if (count > 0) {
    out.Set("min", min);
    out.Set("max", max);
    out.Set("p50", Quantile(0.50));
    out.Set("p90", Quantile(0.90));
    out.Set("p99", Quantile(0.99));
  }
  return out;
}

SlidingWindowCounter::SlidingWindowCounter()
    : SlidingWindowCounter(Options()) {}

SlidingWindowCounter::SlidingWindowCounter(Options options)
    : options_(options) {
  options_.num_slices = std::max(1, options_.num_slices);
  options_.window_seconds = std::max(1e-9, options_.window_seconds);
  util::MutexLock lock(mu_);
  slices_.resize(static_cast<size_t>(options_.num_slices));
}

void SlidingWindowCounter::Add(int64_t n) { AddAt(n, WindowClockSeconds()); }

void SlidingWindowCounter::AddAt(int64_t n, double now_seconds) {
  const int64_t epoch = EpochFor(now_seconds, slice_seconds());
  const size_t idx =
      static_cast<size_t>(epoch % options_.num_slices +
                          (epoch % options_.num_slices < 0
                               ? options_.num_slices
                               : 0));
  util::MutexLock lock(mu_);
  Slice& slice = slices_[idx];
  if (slice.epoch != epoch) {
    slice.epoch = epoch;
    slice.count = 0;
  }
  slice.count += n;
}

int64_t SlidingWindowCounter::WindowedCount() const {
  return WindowedCountAt(WindowClockSeconds());
}

int64_t SlidingWindowCounter::WindowedCountAt(double now_seconds) const {
  const int64_t now_epoch = EpochFor(now_seconds, slice_seconds());
  const int64_t oldest = now_epoch - options_.num_slices + 1;
  int64_t total = 0;
  util::MutexLock lock(mu_);
  for (const Slice& slice : slices_) {
    if (slice.epoch < oldest || slice.epoch > now_epoch) continue;
    total += slice.count;
  }
  return total;
}

void SlidingWindowCounter::Reset() {
  util::MutexLock lock(mu_);
  for (Slice& slice : slices_) {
    slice.epoch = -1;
    slice.count = 0;
  }
}

}  // namespace kgpip::obs
