#include "embed/tsne.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace kgpip::embed {

namespace {

/// Binary-searches the Gaussian bandwidth for one point so that the
/// conditional distribution's perplexity matches the target.
void ComputeRow(const std::vector<double>& sq_dists, size_t self,
                double perplexity, std::vector<double>* probs) {
  const double target_entropy = std::log(perplexity);
  double beta = 1.0, beta_lo = 0.0, beta_hi = 1e12;
  const size_t n = sq_dists.size();
  for (int iter = 0; iter < 60; ++iter) {
    double sum = 0.0;
    for (size_t j = 0; j < n; ++j) {
      (*probs)[j] = j == self ? 0.0 : std::exp(-beta * sq_dists[j]);
      sum += (*probs)[j];
    }
    if (sum <= 0.0) sum = 1e-12;
    double entropy = 0.0;
    for (size_t j = 0; j < n; ++j) {
      (*probs)[j] /= sum;
      if ((*probs)[j] > 1e-12) {
        entropy -= (*probs)[j] * std::log((*probs)[j]);
      }
    }
    double diff = entropy - target_entropy;
    if (std::fabs(diff) < 1e-5) break;
    if (diff > 0.0) {
      beta_lo = beta;
      beta = beta_hi > 1e11 ? beta * 2.0 : 0.5 * (beta + beta_hi);
    } else {
      beta_hi = beta;
      beta = 0.5 * (beta + beta_lo);
    }
  }
}

}  // namespace

std::vector<std::pair<double, double>> Tsne2D(
    const std::vector<std::vector<double>>& points,
    const TsneOptions& options) {
  const size_t n = points.size();
  std::vector<std::pair<double, double>> out(n, {0.0, 0.0});
  if (n < 3) return out;

  // Pairwise squared distances.
  std::vector<std::vector<double>> sq(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      double s = 0.0;
      for (size_t d = 0; d < points[i].size(); ++d) {
        double diff = points[i][d] - points[j][d];
        s += diff * diff;
      }
      sq[i][j] = sq[j][i] = s;
    }
  }

  // Symmetrized input affinities P.
  double perplexity =
      std::min(options.perplexity, static_cast<double>(n - 1) / 3.0);
  std::vector<std::vector<double>> p(n, std::vector<double>(n, 0.0));
  std::vector<double> row(n);
  for (size_t i = 0; i < n; ++i) {
    ComputeRow(sq[i], i, perplexity, &row);
    for (size_t j = 0; j < n; ++j) p[i][j] = row[j];
  }
  double p_sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      p[i][j] = (p[i][j] + p[j][i]);
      p_sum += p[i][j];
    }
  }
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      p[i][j] = std::max(p[i][j] / p_sum, 1e-12);
    }
  }

  // Gradient descent with momentum on the 2-D map.
  Rng rng(options.seed);
  std::vector<double> y(2 * n), dy(2 * n, 0.0), vy(2 * n, 0.0);
  for (double& v : y) v = rng.Normal() * 1e-2;

  std::vector<std::vector<double>> q(n, std::vector<double>(n, 0.0));
  for (int iter = 0; iter < options.iterations; ++iter) {
    const double exaggeration =
        iter < options.exaggeration_iters ? options.early_exaggeration : 1.0;
    // Student-t affinities Q.
    double q_sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        double dx = y[2 * i] - y[2 * j];
        double dyv = y[2 * i + 1] - y[2 * j + 1];
        double w = 1.0 / (1.0 + dx * dx + dyv * dyv);
        q[i][j] = q[j][i] = w;
        q_sum += 2.0 * w;
      }
    }
    // Gradient.
    std::fill(dy.begin(), dy.end(), 0.0);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        if (i == j) continue;
        double w = q[i][j];
        double qij = std::max(w / q_sum, 1e-12);
        double mult = (exaggeration * p[i][j] - qij) * w;
        dy[2 * i] += 4.0 * mult * (y[2 * i] - y[2 * j]);
        dy[2 * i + 1] += 4.0 * mult * (y[2 * i + 1] - y[2 * j + 1]);
      }
    }
    const double momentum = iter < 100 ? 0.5 : 0.8;
    for (size_t k = 0; k < 2 * n; ++k) {
      vy[k] = momentum * vy[k] - options.learning_rate * dy[k];
      y[k] += vy[k];
    }
    // Re-center.
    double mx = 0.0, my = 0.0;
    for (size_t i = 0; i < n; ++i) {
      mx += y[2 * i];
      my += y[2 * i + 1];
    }
    mx /= static_cast<double>(n);
    my /= static_cast<double>(n);
    for (size_t i = 0; i < n; ++i) {
      y[2 * i] -= mx;
      y[2 * i + 1] -= my;
    }
  }
  for (size_t i = 0; i < n; ++i) out[i] = {y[2 * i], y[2 * i + 1]};
  return out;
}

}  // namespace kgpip::embed
