#ifndef KGPIP_EMBED_EMBEDDER_H_
#define KGPIP_EMBED_EMBEDDER_H_

#include <string>
#include <vector>

#include "data/table.h"

namespace kgpip::embed {

/// Dataset-content embeddings (paper §3.2). Unlike meta-feature systems
/// (Auto-Sklearn, AL), the embedding is computed from the actual content
/// of the dataset: per-column distribution profiles, column-name n-gram
/// embeddings, hashed value embeddings, and feature-target relationship
/// statistics, pooled into one fixed-size vector per table.
///
/// Layout (kDims total):
///   [ 0..11]  table shape & target block
///   [12..19]  feature-target relationship block (corr / binned MI)
///   [20..27]  pooled numeric distribution block
///   [28..43]  column-name n-gram hash block
///   [44..59]  categorical/text content hash block
class TableEmbedder {
 public:
  static constexpr size_t kDims = 60;

  TableEmbedder() = default;

  /// Embeds a table (target column included in the content, as the paper
  /// embeds whole datasets). The result is L2-normalized.
  std::vector<double> Embed(const Table& table) const;

  /// Cosine similarity of two embeddings.
  static double Cosine(const std::vector<double>& a,
                       const std::vector<double>& b);
};

}  // namespace kgpip::embed

#endif  // KGPIP_EMBED_EMBEDDER_H_
